module kfi

go 1.24
