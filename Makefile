GO ?= go

.PHONY: build test vet race bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent farm/journal/transport layer.
race:
	$(GO) test -race ./internal/campaign/... ./internal/crashnet/...

# One-iteration snapshot + predecode benchmarks; rewrites BENCH_snapshot.json
# and BENCH_exec.json.
bench:
	$(GO) test . -run '^$$' -bench Snapshot -benchtime 1x
	$(GO) test . -run '^$$' -bench PredecodeSpeedup -benchtime 1x

# Tier-1 gate + snapshot smoke run (see scripts/verify.sh).
verify:
	sh scripts/verify.sh
