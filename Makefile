GO ?= go

.PHONY: build test vet bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One-iteration snapshot benchmark; rewrites BENCH_snapshot.json.
bench:
	$(GO) test . -run '^$$' -bench Snapshot -benchtime 1x

# Tier-1 gate + snapshot smoke run (see scripts/verify.sh).
verify:
	sh scripts/verify.sh
