GO ?= go

.PHONY: build test vet lint race bench bench-sense bench-harden verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific static checks: gofmt, exhaustive outcome switches, and the
# deterministic-path wall-clock/global-RNG rules (see internal/lint).
lint:
	sh scripts/lint.sh

test:
	$(GO) test ./...

# Race-detector pass over the concurrent farm/journal/transport/control-plane layer.
race:
	$(GO) test -race ./internal/campaign/... ./internal/crashnet/... ./internal/ctlplane/...

# One-iteration snapshot + execution-engine + static-sense benchmarks;
# rewrites BENCH_snapshot.json, BENCH_exec.json, and BENCH_sense.json.
bench:
	$(GO) test . -run '^$$' -bench Snapshot -benchtime 1x
	$(GO) test . -run '^$$' -bench EngineSpeedup -benchtime 1x
	$(GO) test . -run '^$$' -bench StaticSense -benchtime 1x

# One-iteration whole-target static-sense + incremental-cache benchmark on
# both platforms; rewrites BENCH_sense.json (per-target inert fractions,
# pruned-campaign speedup, cold/warm section-cache speedup).
bench-sense:
	$(GO) test . -run '^$$' -bench StaticSense -benchtime 1x

# One-iteration matched hardened-vs-unhardened study on both platforms;
# rewrites BENCH_harden.json (detection coverage + code/cycle overheads).
bench-harden:
	$(GO) test . -run '^$$' -bench BenchmarkHarden -benchtime 1x

# Tier-1 gate + snapshot smoke run (see scripts/verify.sh).
verify:
	sh scripts/verify.sh
