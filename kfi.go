// Package kfi is a fault-injection laboratory reproducing the DSN 2004 study
// "Error Sensitivity of the Linux Kernel Executing on PowerPC G4 and
// Pentium 4 Processors" (Gu, Kalbarczyk, Iyer).
//
// It provides two simulated processors — a P4-class variable-length CISC and
// a G4-class fixed-width RISC — running the same miniature multi-process
// kernel compiled from a common intermediate representation, an NFTAPE-style
// single-bit error injector driven by the processors' debug registers, and
// the campaign/statistics machinery that regenerates every table and figure
// of the paper's evaluation.
//
// Quick start:
//
//	sys, err := kfi.BuildSystem(kfi.P4, kfi.BuildOptions{})
//	res := kfi.InjectOne(sys, kfi.Target{Campaign: kfi.Code, ...})
//
// or run a whole cross-platform study:
//
//	study, err := kfi.RunStudy(kfi.StudyConfig{Seed: 1})
//	fmt.Println(study.Table(kfi.P4)) // the paper's Table 5
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package kfi

import (
	"kfi/internal/campaign"
	"kfi/internal/core"
	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/kir"
	"kfi/internal/machine"
	"kfi/internal/platform"
	"kfi/internal/stats"
	"kfi/internal/tracediff"
)

// Platform identifies one of the two simulated processors.
type Platform = isa.Platform

// The two platforms under study.
const (
	// P4 is the Pentium 4-class CISC target.
	P4 = isa.CISC
	// G4 is the PowerPC G4-class RISC target.
	G4 = isa.RISC
)

// Platforms lists both targets in the paper's order.
var Platforms = []Platform{P4, G4}

// Campaign selects an injection target class.
type Campaign = inject.Campaign

// The four campaigns of the study.
const (
	Stack   = inject.CampStack
	SysRegs = inject.CampSysReg
	Data    = inject.CampData
	Code    = inject.CampCode
)

// AllCampaigns lists the four campaigns in table order.
var AllCampaigns = core.Campaigns

// CrashCause is a platform crash subcategory (the paper's Tables 3 and 4).
type CrashCause = isa.CrashCause

// Crash causes, re-exported for report code (Tables 3 and 4).
const (
	CauseNULLPointer       = isa.CauseNULLPointer
	CauseBadPaging         = isa.CauseBadPaging
	CauseInvalidInstr      = isa.CauseInvalidInstr
	CauseGeneralProtection = isa.CauseGeneralProtection
	CauseKernelPanic       = isa.CauseKernelPanic
	CauseInvalidTSS        = isa.CauseInvalidTSS
	CauseDivideError       = isa.CauseDivideError
	CauseBoundsTrap        = isa.CauseBoundsTrap
	CauseBadArea           = isa.CauseBadArea
	CauseIllegalInstr      = isa.CauseIllegalInstr
	CauseStackOverflow     = isa.CauseStackOverflow
	CauseMachineCheck      = isa.CauseMachineCheck
	CauseAlignment         = isa.CauseAlignment
	CausePanic             = isa.CausePanic
	CauseBusError          = isa.CauseBusError
	CauseBadTrap           = isa.CauseBadTrap
)

// KernelProgOptions selects guest-kernel build variants (ablations).
type KernelProgOptions = kernel.ProgOptions

// Target is one injection; Result is its classified outcome.
type (
	Target = inject.Target
	Result = inject.Result
)

// Outcome classification of one injection.
type Outcome = inject.Outcome

// Injection outcomes (the paper's Table 2, plus Detected for hardened
// guests whose software fault detector caught the error).
const (
	NotActivated  = inject.ONotActivated
	NotManifested = inject.ONotManifested
	FailSilence   = inject.OFailSilence
	Crash         = inject.OCrash
	HangUnknown   = inject.OHangUnknown
	Detected      = inject.ODetected
)

// System is a built, sealed guest system with its golden checksum and
// kernel-usage profile.
type System = core.System

// BuildOptions tune system construction.
type BuildOptions = core.BuildOptions

// BuildSystem constructs one platform's guest system.
func BuildSystem(p Platform, opts BuildOptions) (*System, error) {
	return core.BuildSystem(p, opts)
}

// InjectOne runs a single injection against a built system.
func InjectOne(sys *System, t Target) Result {
	return inject.RunOne(sys.Sys, t, sys.Golden)
}

// NewTargets pre-generates n targets for a campaign (STEP 1 of the paper's
// automated process).
func NewTargets(sys *System, camp Campaign, n int, seed int64) ([]Target, error) {
	gen := campaign.NewGenerator(sys.Sys, sys.Profile, seed, 0)
	return gen.Targets(campaign.Spec{Campaign: camp, N: n, Seed: seed})
}

// RunCampaign executes one campaign of n injections on a built system using
// the default fork-from-golden execution mode (see ExecOptions).
func RunCampaign(sys *System, camp Campaign, n int, seed int64, progress func(done, total int)) (*CampaignOutcome, error) {
	return core.RunCampaignOn(sys, camp, n, seed, progress)
}

// ExecOptions select how campaigns execute injections: the zero value is
// fork-from-golden snapshot scheduling (checkpoint the golden prefix once,
// restore-inject-resume per experiment); Replay forces the paper's literal
// reboot-and-replay-from-boot procedure; SnapshotDir persists golden-prefix
// waypoint snapshots for reuse across invocations; Engine selects the
// execution engine (see EngineKind).
type ExecOptions = campaign.ExecOptions

// EngineKind selects the execution engine a guest runs on. The zero value is
// the platform default (the predecoded interpreter on both built-in
// platforms). Engine choice is a pure speed knob: campaign outcome tables and
// journals are byte-identical across engines.
type EngineKind = platform.EngineKind

// The three execution engines.
const (
	// EngineInterp is the plain fetch-decode-execute step interpreter.
	EngineInterp = platform.EngineInterp
	// EnginePredecode is the interpreter with the per-page predecoded
	// instruction cache.
	EnginePredecode = platform.EnginePredecode
	// EngineTranslate is the basic-block threaded-closure translator.
	EngineTranslate = platform.EngineTranslate
)

// EngineStats are the observability counters an execution engine maintains
// (blocks translated, closure-cache hits, write-generation invalidations,
// interpreter fallbacks).
type EngineStats = platform.EngineStats

// RunCampaignWith is RunCampaign with explicit execution options.
func RunCampaignWith(sys *System, camp Campaign, n int, seed int64,
	progress func(done, total int), exec ExecOptions) (*CampaignOutcome, error) {
	return core.RunCampaignOnWith(sys, camp, n, seed, progress, exec)
}

// Study configuration and results.
type (
	StudyConfig     = core.Config
	StudyResult     = core.StudyResult
	CampaignOutcome = core.CampaignOutcome
	PlatformResult  = core.PlatformResult
)

// RunStudy executes the configured cross-platform study.
func RunStudy(cfg StudyConfig) (*StudyResult, error) {
	return core.Run(cfg)
}

// Statistics helpers re-exported for report generation.
type (
	Counts      = stats.Counts
	CauseDist   = stats.CauseDist
	LatencyHist = stats.LatencyHist
)

// Summarize tallies campaign results into a Table 5/6-style row.
func Summarize(results []Result) Counts { return stats.Summarize(results) }

// CrashCauses builds a crash-cause distribution (the figures' pie charts).
func CrashCauses(results []Result) CauseDist { return stats.CrashCauses(results) }

// Latencies builds a Figure 16 cycles-to-crash histogram.
func Latencies(results []Result) LatencyHist { return stats.Latencies(results) }

// Propagation summarizes how far code-injection crashes traveled from the
// corrupted function (the paper's Figure 7 phenomenon, quantified).
type Propagation = stats.Propagation

// Propagate analyzes code-injection results for error propagation.
func Propagate(results []Result) Propagation { return stats.Propagate(results) }

// Wilson95 returns the 95% Wilson score interval (as percentages) for k
// successes in n trials — the sampling error of a campaign-derived rate.
func Wilson95(k, n int) (lo, hi float64) { return stats.Wilson95(k, n) }

// Divergence is a trace-level comparison of a golden run against an
// injected run: where the instruction streams first split and what each side
// executed next (the instruction-granularity Figure 7 analysis).
type Divergence = tracediff.Divergence

// TraceDiff runs the system clean and with the code-injection target
// applied, locating the first control-flow divergence.
func TraceDiff(sys *System, t Target, context int) (*Divergence, error) {
	return tracediff.Diff(sys.Sys, t, context, 0)
}

// HardenOptions selects the software fault-detection transforms applied to
// the guest kernel (EDDI-style duplication, CFCSS-style control-flow
// signatures). The zero value builds the paper-faithful unhardened kernel.
type HardenOptions = kir.HardenOpts

// ParseHardenOptions parses the CLI/wire form of HardenOptions ("dup",
// "cfsig", "dup+cfsig", "all", "none", or "").
func ParseHardenOptions(s string) (HardenOptions, error) { return kir.ParseHardenOpts(s) }

// HardenStudy is a matched hardened-vs-unhardened comparison on one
// platform; HardenRow is one campaign's outcome pair within it.
type (
	HardenStudy = campaign.HardenStudy
	HardenRow   = campaign.HardenRow
)

// HardenSpec describes one campaign of a hardened study.
type HardenSpec = campaign.Spec

// RunHardenStudy runs matched hardened/unhardened campaigns from the same
// injection plan on one platform (see campaign.RunHardenStudy for the
// matched-plan semantics).
func RunHardenStudy(p Platform, scale int, opts HardenOptions, specs []HardenSpec,
	progress func(done, total int)) (*HardenStudy, error) {
	return campaign.RunHardenStudy(p, scale, opts, specs, progress)
}

// RunResult is the outcome of a single benchmark run (no injection).
type RunResult = machine.RunResult

// GuestSystem exposes the underlying guest (machine, images, processes) for
// advanced use — directed injections, custom workloads, examples.
type GuestSystem = kernel.System
