#!/bin/sh
# lint.sh — repo-specific static checks (see internal/lint):
#
#   - gofmt cleanliness
#   - exhaustive switches over the inject.Outcome constants
#   - no time.Now / global math/rand in deterministic replay packages
#   - no switch/if dispatch on the platform enum outside internal/platform,
#     the ISA packages, and the explicit allowlist (use the registry)
#   - exhaustive switches over the platform.EngineKind constants
#   - no direct core Step() calls outside the engine packages (drive cores
#     through a platform.ExecEngine)
#
#   sh scripts/lint.sh      (or: make lint)
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l cmd internal examples *.go)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:"
    echo "$unformatted"
    exit 1
fi

echo "== kfi-lint"
go run ./cmd/kfi-lint .

echo "lint: OK"
