#!/bin/sh
# verify.sh — the repo's tier-1 gate plus the snapshot-subsystem smoke run.
#
#   sh scripts/verify.sh         (or: make verify)
#
# Runs build, vet, and the full test suite, then a single iteration of the
# Snapshot benchmarks, which rewrites BENCH_snapshot.json in the repo root
# with the replay-from-boot vs restore-from-snapshot numbers on this host.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== lint (gofmt + exhaustive outcome switches + deterministic-path rules)"
sh scripts/lint.sh

echo "== go test ./..."
go test ./...

echo "== go test -race (campaign + crashnet + ctlplane: the concurrent farm/journal/transport/control-plane layer)"
go test -race ./internal/campaign/... ./internal/crashnet/... ./internal/ctlplane/...

echo "== snapshot benchmark smoke (-bench=Snapshot -benchtime=1x)"
go test . -run '^$' -bench Snapshot -benchtime 1x

echo "== BENCH_snapshot.json"
cat BENCH_snapshot.json

echo "== execution-engine benchmark smoke (-short -bench=EngineSpeedup -benchtime=1x)"
go test . -short -run '^$' -bench EngineSpeedup -benchtime 1x

echo "== BENCH_exec.json"
cat BENCH_exec.json

echo "== engine-equivalence smoke (tables + journals byte-identical across engines)"
go test ./internal/campaign/ -run 'TestEngineEquivalence' -count 1

echo "== static-sense benchmark smoke (-short -bench=StaticSense -benchtime=1x)"
go test . -short -run '^$' -bench StaticSense -benchtime 1x

echo "== BENCH_sense.json"
cat BENCH_sense.json

echo "== hardened mini-campaign smoke (-short -bench=BenchmarkHarden -benchtime=1x)"
go test . -short -run '^$' -bench BenchmarkHarden -benchtime 1x

echo "== BENCH_harden.json"
cat BENCH_harden.json

echo "verify: OK"
