package kfi_test

import (
	"strings"
	"testing"

	"kfi"
)

// The root package is a facade; these tests exercise the public API surface
// an external user would touch.

var (
	apiSys    *kfi.System
	apiGolden uint32
)

func apiSystem(t *testing.T) *kfi.System {
	t.Helper()
	if apiSys == nil {
		sys, err := kfi.BuildSystem(kfi.P4, kfi.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		apiSys = sys
		apiGolden = sys.Golden
	}
	return apiSys
}

func TestPublicBuildAndInject(t *testing.T) {
	sys := apiSystem(t)
	if sys.Golden == 0 {
		t.Fatal("zero golden checksum")
	}
	targets, err := kfi.NewTargets(sys, kfi.Code, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 5 {
		t.Fatalf("targets = %d", len(targets))
	}
	for _, tg := range targets {
		res := kfi.InjectOne(sys, tg)
		switch res.Outcome {
		case kfi.NotActivated, kfi.NotManifested, kfi.FailSilence, kfi.Crash, kfi.HangUnknown:
		default:
			t.Errorf("unexpected outcome %v", res.Outcome)
		}
	}
}

func TestPublicRunCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	sys := apiSystem(t)
	oc, err := kfi.RunCampaign(sys, kfi.Stack, 10, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if oc.Counts.Injected != 10 {
		t.Errorf("injected = %d", oc.Counts.Injected)
	}
	if len(oc.Results) != 10 {
		t.Errorf("results = %d", len(oc.Results))
	}
}

func TestPublicConstantsCoherent(t *testing.T) {
	if len(kfi.Platforms) != 2 || kfi.Platforms[0] != kfi.P4 || kfi.Platforms[1] != kfi.G4 {
		t.Errorf("Platforms = %v", kfi.Platforms)
	}
	if len(kfi.AllCampaigns) != 4 {
		t.Errorf("AllCampaigns = %v", kfi.AllCampaigns)
	}
	if kfi.CauseStackOverflow.Platform() != kfi.G4 {
		t.Error("StackOverflow should be a G4 cause")
	}
	if kfi.CauseInvalidTSS.Platform() != kfi.P4 {
		t.Error("InvalidTSS should be a P4 cause")
	}
}

func TestPublicSummaries(t *testing.T) {
	sys := apiSystem(t)
	targets, err := kfi.NewTargets(sys, kfi.Code, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	var results []kfi.Result
	for _, tg := range targets {
		results = append(results, kfi.InjectOne(sys, tg))
	}
	c := kfi.Summarize(results)
	if c.Injected != 8 {
		t.Errorf("summarize injected = %d", c.Injected)
	}
	d := kfi.CrashCauses(results)
	h := kfi.Latencies(results)
	if d.Total != h.Total {
		t.Errorf("cause total %d != latency total %d (both count known crashes)", d.Total, h.Total)
	}
	if d.Total > 0 {
		out := d.Render(kfi.P4)
		if !strings.Contains(out, "Total") {
			t.Errorf("render: %q", out)
		}
	}
}

func TestGuestSystemAccess(t *testing.T) {
	sys := apiSystem(t)
	// Advanced users can reach the guest: symbols, regions, processes.
	if _, ok := sys.Sys.KernelImage.Syms["schedule"]; !ok {
		t.Error("kernel symbol table not reachable")
	}
	if len(sys.Sys.Procs) != 10 {
		t.Errorf("procs = %d, want 10 (idle + 2 daemons + 7 workload)", len(sys.Sys.Procs))
	}
	if got := sys.Sys.ReadProcField(0, "pid"); got != 1 {
		t.Errorf("idle pid = %d", got)
	}
}

func TestFacadeStudyPropagateTraceDiff(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	// A minimal end-to-end pass over the remaining facade surface.
	study, err := kfi.RunStudy(kfi.StudyConfig{
		Seed:      5,
		Platforms: []kfi.Platform{kfi.P4},
		Campaigns: []kfi.Campaign{kfi.Code},
		Counts:    map[kfi.Campaign]int{kfi.Code: 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	results := study.PerPlatform[kfi.P4].Outcomes[kfi.Code].Results
	if len(results) != 12 {
		t.Fatalf("study returned %d results", len(results))
	}
	prop := kfi.Propagate(results)
	if prop.Crashes > 0 && prop.SameFunction+prop.SameSubsystem+prop.CrossSubsystem != prop.Crashes {
		t.Errorf("propagation buckets do not sum: %+v", prop)
	}

	sys, err := kfi.BuildSystem(kfi.P4, kfi.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	targets, err := kfi.NewTargets(sys, kfi.Code, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	d, err := kfi.TraceDiff(sys, targets[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Render() == "" {
		t.Error("empty trace-diff report")
	}
}

func TestWilsonFacade(t *testing.T) {
	lo, hi := kfi.Wilson95(50, 100)
	if lo >= 50 || hi <= 50 {
		t.Errorf("Wilson95(50, 100) = [%f, %f]", lo, hi)
	}
}
