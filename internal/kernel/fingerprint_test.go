package kernel_test

// Kernel-image fingerprints. Every number in EXPERIMENTS.md (and the
// recorded golden checksum 0x3BD6FEAC) depends on the exact bytes the
// compiler emits for the guest kernel. This test pins them: if it fails,
// codegen changed, and every documented campaign result must be re-recorded
// before the new fingerprints are committed here.

import (
	"hash/fnv"
	"testing"

	"kfi/internal/isa"
)

func imageFingerprint(t *testing.T, p isa.Platform) (code, data uint64) {
	t.Helper()
	sys := buildStandard(t, p)
	h := fnv.New64a()
	h.Write(sys.KernelImage.Code)
	code = h.Sum64()
	h.Reset()
	h.Write(sys.KernelImage.Data)
	data = h.Sum64()
	return code, data
}

func TestKernelImageFingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds both systems")
	}
	// Print-and-pin: run with -run Fingerprint -v to read current values.
	cCode, cData := imageFingerprint(t, isa.CISC)
	rCode, rData := imageFingerprint(t, isa.RISC)
	t.Logf("CISC code=%#x data=%#x  RISC code=%#x data=%#x", cCode, cData, rCode, rData)

	want := map[string]uint64{
		"cisc-code": 0xc36ec67891675e51, "cisc-data": 0xf61795ae19f2735e,
		"risc-code": 0x873644d31e08fc06, "risc-data": 0x8ef17456ba39b12e,
	}
	got := map[string]uint64{
		"cisc-code": cCode, "cisc-data": cData, "risc-code": rCode, "risc-data": rData,
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("%s fingerprint %#x, want %#x — codegen changed; re-record EXPERIMENTS.md before updating this constant", k, got[k], w)
		}
	}
}

func TestGoldenChecksumPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("runs both benchmarks")
	}
	// The documented fault-free benchmark checksum. EXPERIMENTS.md's
	// fail-silence classifications all compare against this value.
	const golden = 0x3BD6FEAC
	for _, p := range []isa.Platform{isa.CISC, isa.RISC} {
		sys := buildStandard(t, p)
		sys.Machine.Reboot()
		res := sys.Machine.Run()
		if res.Checksum != golden {
			t.Errorf("[%v] golden checksum %#x, want %#x — workload or kernel behavior changed; re-record EXPERIMENTS.md", p, res.Checksum, golden)
		}
	}
}
