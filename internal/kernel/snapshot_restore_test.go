package kernel_test

import (
	"math/rand"
	"reflect"
	"testing"

	"kfi/internal/isa"
	"kfi/internal/machine"
	"kfi/internal/snapshot"
)

// TestSnapshotRestoreEquivalence checks the fork-from-golden contract at
// system granularity: corrupting a restored machine must classify exactly
// like corrupting a machine that replayed from boot — same outcome, same
// crash record, same cycles and checksum — for a bit flip applied at a
// random checkpoint cycle.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, platform := range []isa.Platform{isa.CISC, isa.RISC} {
		t.Run(platform.Short(), func(t *testing.T) {
			sysA := buildStandard(t, platform)
			mA := sysA.Machine
			clean := sysA.Run()
			if clean.Outcome != machine.OutCompleted {
				t.Fatalf("clean run: %v", clean.Outcome)
			}

			for trial := 0; trial < 3; trial++ {
				trigger := clean.Cycles/10 + uint64(rng.Int63n(int64(clean.Cycles*8/10)))
				bit := uint(rng.Intn(32))

				// Replay leg: boot, run to the trigger, flip a bit in the
				// instruction about to execute, resume.
				mA.Reboot()
				mA.PauseAt = trigger
				if res := mA.Run(); res.Outcome != machine.OutPaused {
					t.Fatalf("trial %d: pause leg ended early: %v", trial, res.Outcome)
				}
				snap := snapshot.Capture(mA)
				pc := mA.Core().PC()
				mA.Mem.FlipBit(pc, bit)
				resReplay := mA.Run()
				mA.Mem.ClearBaseline()

				// Restore leg: fresh system, install the checkpoint, apply
				// the identical corruption, resume.
				sysB := buildStandard(t, platform)
				mB := sysB.Machine
				if _, err := snap.Restore(mB); err != nil {
					t.Fatal(err)
				}
				mB.Mem.FlipBit(pc, bit)
				resRestore := mB.Run()

				if resReplay.Outcome != resRestore.Outcome ||
					resReplay.Checksum != resRestore.Checksum ||
					resReplay.Cycles != resRestore.Cycles ||
					!reflect.DeepEqual(resReplay.Crash, resRestore.Crash) {
					t.Errorf("trial %d (trigger %d, bit %d at pc 0x%x): replay %+v vs restore %+v",
						trial, trigger, bit, pc, resReplay, resRestore)
				}
				t.Logf("trial %d: trigger=%d pc=0x%x bit=%d -> %v", trial, trigger, pc, bit, resReplay.Outcome)
			}
		})
	}
}
