// Package kernel provides the guest operating system: a miniature
// multi-process kernel written once in the kernel IR (internal/kir) and
// compiled to both simulated platforms, plus the per-platform assembly trap
// glue and the host-side system builder that boots it.
//
// The kernel deliberately mirrors the paper's injection surface: a scheduler
// with per-process kernel stacks, spinlocks with SPINLOCK_DEBUG magic checks
// that BUG() into an invalid instruction (Figure 13), a page allocator
// (free_pages_ok, Figure 7), a buffer cache flushed by a kupdate daemon
// (Figure 8), a journaling daemon kjournald (Figure 9), and an skb-based
// network transmit path (alloc_skb, Figure 7's crash site).
package kernel

// Dimensions of the guest system.
const (
	// NPROC is the process-table size (must stay a power of two: the
	// scheduler uses masked round-robin arithmetic).
	NPROC = 16
	// NPAGE and PageSize describe the page-allocator pool.
	NPAGE    = 64
	PageSize = 256
	// NBUF/BufSize describe the buffer cache; NBLOCK the backing disk.
	NBUF    = 16
	BufSize = 64
	NBLOCK  = 64
	// NSKB/SkbSize describe the network buffer pool.
	NSKB    = 16
	SkbSize = 64
	// PipeSize is the pipe ring-buffer capacity (must stay a power of two).
	PipeSize = 128
	// NSYS is the syscall-table size.
	NSYS = 16
	// Timeslice is the scheduler quantum in timer ticks.
	Timeslice = 5
)

// SpinlockMagic is the SPINLOCK_DEBUG magic value checked by
// spin_lock/spin_unlock (the paper's 0xDEAD4EAD).
const SpinlockMagic = 0xDEAD4EAD

// Process states (Linux 2.4 values; TASK_STOPPED=8 as in Figure 8).
const (
	TaskRunning       = 0
	TaskInterruptible = 1
	TaskStopped       = 8
	TaskZombie        = 16
)

// Process flags.
const (
	// PFUser marks workload processes (vs. kernel daemons).
	PFUser = 1
)

// System call numbers.
const (
	SysGetpid = iota
	SysYield
	SysRead
	SysWrite
	SysSend
	SysSleep
	SysExit
	SysMemstress
	SysJiffies
	SysActive
	SysPutResult
	SysGetResult
	SysPipeWrite
	SysPipeRead
)

// Guest memory map (shared by both platforms).
const (
	KCodeBase  = 0x00010000
	KDataBase  = 0x00080000
	KBSSBase   = 0x000C0000
	KHeapBase  = 0x00110000 // page cache / packet pools (not static data)
	PercpuBase = 0x00150000 // per-CPU area (FS segment base / SPRG2 scratch)
	KStackArea = 0x00160000 // NPROC slots of KStackSlot bytes
	KStackSlot = 0x4000
	UCodeBase  = 0x00200000
	UDataBase  = 0x00240000
	UBSSBase   = 0x00260000
	UStackArea = 0x00280000
	UStackSlot = 0x4000
	UStackSize = 0x2000
	MemSize    = 0x00400000
)

// Kernel stack sizes: 4 KiB on the CISC target, 8 KiB on the RISC target,
// matching the paper's platforms ("the average size of the runtime kernel
// stack on the G4 is twice that of the P4 stack").
const (
	KStackSizeCISC = 0x1000
	KStackSizeRISC = 0x2000
)
