package kernel_test

import (
	"testing"

	"kfi/internal/cc"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/machine"
	"kfi/internal/workload"
)

func buildStandard(t *testing.T, platform isa.Platform) *kernel.System {
	t.Helper()
	uimg, err := cc.Compile(workload.Program(1), platform, kernel.UserBases)
	if err != nil {
		t.Fatalf("compile workload: %v", err)
	}
	sys, err := kernel.BuildSystem(platform, uimg, workload.StandardProcs(), kernel.Options{})
	if err != nil {
		t.Fatalf("BuildSystem: %v", err)
	}
	return sys
}

func TestBootAndRunBothPlatforms(t *testing.T) {
	var checksums [2]uint32
	var cycles [2]uint64
	for pi, platform := range []isa.Platform{isa.CISC, isa.RISC} {
		t.Run(platform.Short(), func(t *testing.T) {
			sys := buildStandard(t, platform)
			res := sys.Run()
			if res.Outcome != machine.OutCompleted {
				t.Fatalf("outcome = %v (crash=%+v, cycles=%d)", res.Outcome, res.Crash, res.Cycles)
			}
			if res.Checksum == 0 {
				t.Error("zero checksum")
			}
			checksums[pi] = res.Checksum
			cycles[pi] = res.Cycles
			t.Logf("%v: checksum=0x%08x cycles=%d", platform, res.Checksum, res.Cycles)
		})
	}
	if checksums[0] != 0 && checksums[1] != 0 && checksums[0] != checksums[1] {
		t.Errorf("platforms disagree: p4=0x%08x g4=0x%08x (workload results must be platform-independent)",
			checksums[0], checksums[1])
	}
}

func TestRunIsDeterministic(t *testing.T) {
	sys := buildStandard(t, isa.CISC)
	r1 := sys.Run()
	r2 := sys.Run()
	if r1.Outcome != machine.OutCompleted || r2.Outcome != machine.OutCompleted {
		t.Fatalf("outcomes: %v, %v", r1.Outcome, r2.Outcome)
	}
	if r1.Checksum != r2.Checksum || r1.Cycles != r2.Cycles {
		t.Errorf("runs differ: (0x%x,%d) vs (0x%x,%d)", r1.Checksum, r1.Cycles, r2.Checksum, r2.Cycles)
	}
}

func TestKernelActivityCounters(t *testing.T) {
	sys := buildStandard(t, isa.RISC)
	res := sys.Run()
	if res.Outcome != machine.OutCompleted {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	m := sys.Machine.Mem
	im := sys.KernelImage
	read32 := func(sym string) uint32 { return m.RawRead(im.Sym(sym), 4) }
	if j := read32("jiffies"); j == 0 {
		t.Error("timer never ticked")
	}
	// kstat fields: ctxsw, irqs, syscalls (first three words on both
	// layouts since all are W32).
	kstat := im.Sym("kstat")
	if v := m.RawRead(kstat, 4); v == 0 {
		t.Error("no context switches")
	}
	if v := m.RawRead(kstat+8, 4); v == 0 {
		t.Error("no syscalls recorded")
	}
	// All user workers exited.
	for i, ps := range sys.Procs {
		if !ps.User || ps.Name == "coordinator" {
			continue
		}
		if st := sys.ReadProcField(i, "state"); st != kernel.TaskZombie {
			t.Errorf("proc %s state = %d, want zombie", ps.Name, st)
		}
	}
	// The journal committed at least once.
	if v := m.RawRead(im.Sym("journal")+8, 4); v == 0 {
		t.Logf("note: journal commits = 0 (run may be too short)")
	}
}

func TestProcFieldAccessors(t *testing.T) {
	sys := buildStandard(t, isa.CISC)
	if got := sys.ReadProcField(0, "pid"); got != 1 {
		t.Errorf("idle pid = %d, want 1", got)
	}
	if got := sys.ReadProcField(3, "flags"); got != kernel.PFUser {
		t.Errorf("worker flags = %d, want PFUser", got)
	}
	if got := sys.ReadProcField(2, "kstack"); got != kernel.KStackTop(2) {
		t.Errorf("kstack = 0x%x, want 0x%x", got, kernel.KStackTop(2))
	}
}

func TestStackRegionsRegistered(t *testing.T) {
	sys := buildStandard(t, isa.RISC)
	regions := sys.Machine.Mem.Regions()
	var stacks int
	for _, r := range regions {
		if r.Name == "kstack3" {
			if r.Size() != kernel.KStackSizeRISC {
				t.Errorf("RISC kernel stack size = %d, want %d (8 KiB, as on the G4)",
					r.Size(), kernel.KStackSizeRISC)
			}
		}
	}
	for _, r := range regions {
		_ = r
	}
	sysC := buildStandard(t, isa.CISC)
	if r, ok := sysC.Machine.Mem.RegionByName("kstack3"); !ok || r.Size() != kernel.KStackSizeCISC {
		t.Errorf("CISC kernel stack size = %d, want %d (4 KiB, as on the P4)", r.Size(), kernel.KStackSizeCISC)
	}
	_ = stacks
}

func TestKernelProgramDeterministic(t *testing.T) {
	// The syscall-table construction once used map iteration; this pins the
	// fix — identical IR on every build.
	a := kernel.ProgramWith(kernel.ProgOptions{}).Prog.Dump()
	b := kernel.ProgramWith(kernel.ProgOptions{}).Prog.Dump()
	if a != b {
		t.Fatal("kernel IR differs between two identical builds")
	}
	// The ablation variant genuinely differs.
	if kernel.ProgramWith(kernel.ProgOptions{NoSpinlockDebug: true}).Prog.Dump() == a {
		t.Fatal("NoSpinlockDebug variant is identical to the default kernel")
	}
}
