package kernel_test

// Unit tests for the guest kernel's own functions, executed on both
// simulated processors through the host-call interface. These validate the
// kernel logic the campaigns inject into.

import (
	"testing"

	"kfi/internal/isa"
	"kfi/internal/kernel"
)

func eachPlatform(t *testing.T, f func(t *testing.T, sys *kernel.System)) {
	for _, p := range []isa.Platform{isa.CISC, isa.RISC} {
		p := p
		t.Run(p.Short(), func(t *testing.T) {
			sys := buildStandard(t, p)
			sys.Machine.Reboot()
			f(t, sys)
		})
	}
}

func TestGuestMemcpyMemset(t *testing.T) {
	eachPlatform(t, func(t *testing.T, sys *kernel.System) {
		m := sys.Machine
		scratch := sys.KernelImage.Sym("zone_reserve")
		// memset a pattern, then memcpy it elsewhere and compare.
		if _, err := m.CallGuest("memset", scratch, 0xAB, 24); err != nil {
			t.Fatal(err)
		}
		for i := uint32(0); i < 24; i++ {
			if got := m.Mem.RawRead(scratch+i, 1); got != 0xAB {
				t.Fatalf("memset byte %d = 0x%x", i, got)
			}
		}
		if got := m.Mem.RawRead(scratch+24, 1); got == 0xAB {
			t.Fatal("memset overran its length")
		}
		if _, err := m.CallGuest("memcpy", scratch+64, scratch, 24); err != nil {
			t.Fatal(err)
		}
		for i := uint32(0); i < 24; i++ {
			if got := m.Mem.RawRead(scratch+64+i, 1); got != 0xAB {
				t.Fatalf("memcpy byte %d = 0x%x", i, got)
			}
		}
	})
}

func TestGuestChecksumMatchesHost(t *testing.T) {
	eachPlatform(t, func(t *testing.T, sys *kernel.System) {
		m := sys.Machine
		scratch := sys.KernelImage.Sym("zone_reserve")
		data := []byte("the quick brown fox")
		for i, b := range data {
			m.Mem.RawWrite(scratch+uint32(i), 1, uint32(b))
		}
		got, err := m.CallGuest("csum_partial", scratch, uint32(len(data)))
		if err != nil {
			t.Fatal(err)
		}
		want := uint32(1)
		for _, b := range data {
			want = want*31 + uint32(b)
		}
		if got != want {
			t.Errorf("guest csum = 0x%x, host reference = 0x%x", got, want)
		}
	})
}

func TestGuestPageAllocator(t *testing.T) {
	eachPlatform(t, func(t *testing.T, sys *kernel.System) {
		m := sys.Machine
		nrFree := sys.KernelImage.Sym("nr_free_pages")
		before := m.Mem.RawRead(nrFree, 4)
		if before != kernel.NPAGE {
			t.Fatalf("boot free pages = %d, want %d", before, kernel.NPAGE)
		}
		a1, err := m.CallGuest("alloc_pages")
		if err != nil {
			t.Fatal(err)
		}
		a2, err := m.CallGuest("alloc_pages")
		if err != nil {
			t.Fatal(err)
		}
		if a1 == 0 || a2 == 0 || a1 == a2 {
			t.Fatalf("allocations: 0x%x, 0x%x", a1, a2)
		}
		if got := m.Mem.RawRead(nrFree, 4); got != before-2 {
			t.Errorf("free count = %d, want %d", got, before-2)
		}
		if _, err := m.CallGuest("free_pages_ok", a1); err != nil {
			t.Fatal(err)
		}
		if _, err := m.CallGuest("free_pages_ok", a2); err != nil {
			t.Fatal(err)
		}
		if got := m.Mem.RawRead(nrFree, 4); got != before {
			t.Errorf("free count after release = %d, want %d", got, before)
		}
		// Exhaustion returns 0 rather than crashing.
		var last uint32
		for i := 0; i < kernel.NPAGE+4; i++ {
			last, err = m.CallGuest("alloc_pages")
			if err != nil {
				t.Fatal(err)
			}
		}
		if last != 0 {
			t.Error("exhausted allocator should return 0")
		}
	})
}

func TestGuestDoubleFreeIsBUG(t *testing.T) {
	eachPlatform(t, func(t *testing.T, sys *kernel.System) {
		m := sys.Machine
		a, err := m.CallGuest("alloc_pages")
		if err != nil || a == 0 {
			t.Fatalf("alloc: %v 0x%x", err, a)
		}
		if _, err := m.CallGuest("free_pages_ok", a); err != nil {
			t.Fatal(err)
		}
		// The second free must hit the BUG() check (an exception aborts
		// CallGuest with an error).
		if _, err := m.CallGuest("free_pages_ok", a); err == nil {
			t.Error("double free did not BUG")
		}
	})
}

func TestGuestBufferCache(t *testing.T) {
	eachPlatform(t, func(t *testing.T, sys *kernel.System) {
		m := sys.Machine
		// getblk twice for the same block must return the same buffer.
		b1, err := m.CallGuest("getblk", 7)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := m.CallGuest("getblk", 7)
		if err != nil {
			t.Fatal(err)
		}
		if b1 != b2 {
			t.Errorf("getblk(7) twice = %d then %d", b1, b2)
		}
		b3, err := m.CallGuest("getblk", 9)
		if err != nil {
			t.Fatal(err)
		}
		if b3 == b1 {
			t.Error("different blocks share a buffer while others are free")
		}
	})
}

func TestGuestSpinlockProtocol(t *testing.T) {
	eachPlatform(t, func(t *testing.T, sys *kernel.System) {
		m := sys.Machine
		lk := sys.KernelImage.Sym("net_lock")
		if _, err := m.CallGuest("spin_lock", lk); err != nil {
			t.Fatalf("lock: %v", err)
		}
		lockedOff := sys.KernelImage.Layout.FieldOffset(sys.Src.Lock, sys.Src.Lock.FieldIndex("locked"))
		if got := m.Mem.RawRead(lk+lockedOff, 4); got != 1 {
			t.Errorf("locked = %d after spin_lock", got)
		}
		if _, err := m.CallGuest("spin_unlock", lk); err != nil {
			t.Fatalf("unlock: %v", err)
		}
		if got := m.Mem.RawRead(lk+lockedOff, 4); got != 0 {
			t.Errorf("locked = %d after spin_unlock", got)
		}
		// Unlocking an unlocked lock is a BUG.
		if _, err := m.CallGuest("spin_unlock", lk); err == nil {
			t.Error("unlock of unlocked lock did not BUG")
		}
	})
}

func TestGuestFindNextSkipsBlocked(t *testing.T) {
	eachPlatform(t, func(t *testing.T, sys *kernel.System) {
		m := sys.Machine
		// All boot processes are runnable; from idle (idx 0) the next must
		// be slot 1.
		next, err := m.CallGuest("find_next")
		if err != nil {
			t.Fatal(err)
		}
		if next != 1 {
			t.Errorf("find_next from idle = %d, want 1", next)
		}
		// Block slots 1..3 and re-ask.
		for i := 1; i <= 3; i++ {
			pa := sys.ProcAddr(i)
			off := sys.FieldOffset("state")
			m.Mem.RawWrite(pa+off, 4, kernel.TaskInterruptible)
		}
		next, err = m.CallGuest("find_next")
		if err != nil {
			t.Fatal(err)
		}
		if next != 4 {
			t.Errorf("find_next with 1-3 sleeping = %d, want 4", next)
		}
	})
}

func TestGuestAllocSkbPool(t *testing.T) {
	eachPlatform(t, func(t *testing.T, sys *kernel.System) {
		m := sys.Machine
		seen := make(map[uint32]bool)
		for i := 0; i < kernel.NSKB; i++ {
			h, err := m.CallGuest("alloc_skb", 40)
			if err != nil {
				t.Fatal(err)
			}
			if h == 0 || seen[h] {
				t.Fatalf("allocation %d returned handle %d (seen=%v)", i, h, seen[h])
			}
			seen[h] = true
		}
		// Pool exhausted: drops counted, 0 returned.
		h, err := m.CallGuest("alloc_skb", 40)
		if err != nil {
			t.Fatal(err)
		}
		if h != 0 {
			t.Errorf("exhausted pool returned %d", h)
		}
		ns := sys.KernelImage.Sym("netstats")
		if drops := m.Mem.RawRead(ns+12, 4); drops != 1 {
			t.Errorf("drops = %d, want 1", drops)
		}
		// Free one and reallocate.
		if _, err := m.CallGuest("free_skb", 3); err != nil {
			t.Fatal(err)
		}
		h, err = m.CallGuest("alloc_skb", 40)
		if err != nil || h != 3 {
			t.Errorf("realloc after free = %d (%v), want 3", h, err)
		}
	})
}

func TestGuestPipeRing(t *testing.T) {
	eachPlatform(t, func(t *testing.T, sys *kernel.System) {
		m := sys.Machine
		scratch := sys.KernelImage.Sym("zone_reserve")
		for i := uint32(0); i < 40; i++ {
			m.Mem.RawWrite(scratch+i, 1, 0x40+i)
		}
		// Syscall handlers take (a, b, c); the third argument is unused.
		n, err := m.CallGuest("sys_pipewrite", scratch, 40, 0)
		if err != nil {
			t.Fatal(err)
		}
		if n != 40 {
			t.Fatalf("pipewrite = %d, want 40", n)
		}
		out := scratch + 256
		n, err = m.CallGuest("sys_piperead", out, 24, 0)
		if err != nil {
			t.Fatal(err)
		}
		if n != 24 {
			t.Fatalf("piperead = %d, want 24", n)
		}
		for i := uint32(0); i < 24; i++ {
			if got := m.Mem.RawRead(out+i, 1); got != 0x40+i {
				t.Fatalf("pipe byte %d = 0x%x, want 0x%x", i, got, 0x40+i)
			}
		}
		// Reading more than buffered returns only what is there.
		n, err = m.CallGuest("sys_piperead", out, 100, 0)
		if err != nil {
			t.Fatal(err)
		}
		if n != 16 {
			t.Errorf("drained piperead = %d, want 16", n)
		}
		// Fill to capacity: writes clamp at the ring size.
		big := uint32(kernel.PipeSize)
		wrote := uint32(0)
		for wrote < big {
			n, err = m.CallGuest("sys_pipewrite", scratch, 100, 0)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				break
			}
			wrote += n
		}
		if wrote != big {
			t.Errorf("ring accepted %d bytes, want %d", wrote, big)
		}
	})
}

func TestGuestSyscallDispatcher(t *testing.T) {
	eachPlatform(t, func(t *testing.T, sys *kernel.System) {
		m := sys.Machine
		// Unknown numbers are rejected.
		v, err := m.CallGuest("syscall_entry", 99, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if int32(v) != -1 {
			t.Errorf("bad syscall = %d, want -1", int32(v))
		}
		// sys_jiffies through the dispatcher.
		jaddr := sys.KernelImage.Sym("jiffies")
		m.Mem.RawWrite(jaddr, 4, 1234)
		v, err = m.CallGuest("syscall_entry", kernel.SysJiffies, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if v != 1234 {
			t.Errorf("sys_jiffies via dispatcher = %d", v)
		}
	})
}
