package kernel

import (
	"fmt"

	"kfi/internal/cc"
	"kfi/internal/cisc"
	"kfi/internal/isa"
	"kfi/internal/risc"
)

// Glue holds the addresses of the hand-written trap stubs appended to the
// kernel image.
type Glue struct {
	SyscallStub uint32
	TimerStub   uint32
}

// GlueFunc assembles a platform's trap stubs at base, resolving kernel
// symbols through syms. It returns the stub code and its local labels
// (which must include "syscall_stub" and "timer_stub").
type GlueFunc func(base uint32, syms map[string]uint32) ([]byte, map[string]uint32, error)

var glueFuncs = map[isa.Platform]GlueFunc{}

// RegisterGlue registers a platform's trap-stub assembler. Platform packages
// cannot register themselves here (the kernel layer sits above them), so
// each platform's glue lives in this package and extension platforms call
// RegisterGlue from their own setup code.
func RegisterGlue(p isa.Platform, fn GlueFunc) {
	if fn == nil {
		panic("kernel: RegisterGlue with nil GlueFunc")
	}
	if _, dup := glueFuncs[p]; dup {
		panic(fmt.Sprintf("kernel: glue already registered for %v", p))
	}
	glueFuncs[p] = fn
}

func init() {
	RegisterGlue(isa.CISC, ciscGlue)
	RegisterGlue(isa.RISC, riscGlue)
}

// appendGlue assembles the platform trap stubs at the end of the compiled
// kernel image and registers them as symbols/functions. The stubs are the
// entry.S of this kernel: they bridge the hardware interrupt frame to the
// compiled C-level handlers and return with iret/rfi.
func appendGlue(im *cc.Image) (Glue, error) {
	base := im.CodeBase + uint32(len(im.Code))
	gf, ok := glueFuncs[im.Platform]
	if !ok {
		return Glue{}, fmt.Errorf("kernel: no trap glue registered for %v", im.Platform)
	}
	code, labels, err := gf(base, im.Syms)
	if err != nil {
		return Glue{}, err
	}
	im.Code = append(im.Code, code...)
	var g Glue
	for name, off := range labels {
		addr := base + off
		im.Syms[name] = addr
		switch name {
		case "syscall_stub":
			g.SyscallStub = addr
		case "timer_stub":
			g.TimerStub = addr
		}
	}
	im.Funcs = append(im.Funcs,
		cc.FuncRange{Name: "syscall_stub", Start: im.Syms["syscall_stub"], End: im.Syms["timer_stub"]},
		cc.FuncRange{Name: "timer_stub", Start: im.Syms["timer_stub"], End: base + uint32(len(code))},
	)
	if g.SyscallStub == 0 || g.TimerStub == 0 {
		return Glue{}, fmt.Errorf("kernel: glue stubs missing")
	}
	return g, nil
}

// ciscGlue: the interrupt frame [EIP, mode, oldSP, EFLAGS] has already been
// pushed by the hardware delivery; the stubs bridge to the compiled
// handlers. Syscall arguments arrive in EAX (number), EBX, ECX, EDX.
func ciscGlue(base uint32, syms map[string]uint32) ([]byte, map[string]uint32, error) {
	a := cisc.NewAsm()

	a.Label("syscall_stub")
	// dispatcher(no, a, b, c): push right-to-left.
	a.PushR(cisc.EDX)
	a.PushR(cisc.ECX)
	a.PushR(cisc.EBX)
	a.PushR(cisc.EAX)
	a.CallSym("syscall_entry")
	a.AddRI(cisc.ESP, 16)
	// Result stays in EAX for the user; iret pops the hardware frame.
	a.Iret()

	a.Label("timer_stub")
	// Save the volatile registers the compiled handler may clobber (EBX,
	// ESI, EDI are callee-saved by the compiler; EBP is re-established by
	// the handler prologue; EFLAGS is restored by iret).
	a.PushR(cisc.EAX)
	a.PushR(cisc.ECX)
	a.PushR(cisc.EDX)
	// Touch the per-CPU area through the FS segment: this is the only FS
	// use in the kernel, so FS corruption manifests with very long latency
	// (paper Fig. 16(B)).
	a.MovRI(cisc.ECX, 0)
	a.LoadFS(cisc.EAX, cisc.ECX, 0)
	a.CallSym("timer_tick")
	a.PopR(cisc.EDX)
	a.PopR(cisc.ECX)
	a.PopR(cisc.EAX)
	a.Iret()

	code, err := a.Link(base, syms)
	return code, a.Labels(), err
}

// riscGlue: the frame [PC, mode, oldSP, MSR] is on the kernel stack; rfi
// restores it. Syscall arguments arrive in r0 (number) and r3-r5.
func riscGlue(base uint32, syms map[string]uint32) ([]byte, map[string]uint32, error) {
	a := risc.NewAsm()

	a.Label("syscall_stub")
	a.Stwu(risc.SP, risc.SP, -32)
	a.Stw(30, risc.SP, 24)
	a.Stw(31, risc.SP, 20)
	a.Mr(30, 0) // syscall number
	a.Mflr(0)
	a.Stw(0, risc.SP, 28)
	// dispatcher(no, a, b, c) in r3-r6.
	a.Mr(6, 5)
	a.Mr(5, 4)
	a.Mr(4, 3)
	a.Mr(3, 30)
	a.Bl("syscall_entry")
	a.Lwz(0, risc.SP, 28)
	a.Mtlr(0)
	a.Lwz(30, risc.SP, 24)
	a.Lwz(31, risc.SP, 20)
	a.Addi(risc.SP, risc.SP, 32)
	a.Rfi()

	a.Label("timer_stub")
	// Save every register the interrupted context may hold live: the
	// volatiles r0, r3-r12, the compiler temporaries r30/r31, and LR, CTR,
	// CR (the handler's compiled code clobbers them freely).
	a.Stwu(risc.SP, risc.SP, -96)
	a.Stw(0, risc.SP, 8)
	for i := 0; i < 10; i++ { // r3..r12 at offsets 12..48
		a.Stw(uint8(3+i), risc.SP, int32(12+4*i))
	}
	a.Stw(30, risc.SP, 52)
	a.Stw(31, risc.SP, 56)
	a.Mflr(0)
	a.Stw(0, risc.SP, 60)
	a.Mfctr(0)
	a.Stw(0, risc.SP, 64)
	a.Mfcr(0)
	a.Stw(0, risc.SP, 68)
	a.Bl("timer_tick")
	a.Lwz(0, risc.SP, 68)
	a.Mtcrf(0)
	a.Lwz(0, risc.SP, 64)
	a.Mtctr(0)
	a.Lwz(0, risc.SP, 60)
	a.Mtlr(0)
	a.Lwz(31, risc.SP, 56)
	a.Lwz(30, risc.SP, 52)
	for i := 9; i >= 0; i-- {
		a.Lwz(uint8(3+i), risc.SP, int32(12+4*i))
	}
	a.Lwz(0, risc.SP, 8)
	a.Addi(risc.SP, risc.SP, 96)
	a.Rfi()

	code, err := a.Link(base, syms)
	return code, a.Labels(), err
}
