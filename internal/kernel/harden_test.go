package kernel_test

import (
	"testing"

	"kfi/internal/cc"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/kir"
	"kfi/internal/machine"
	"kfi/internal/workload"
)

func buildHardened(t *testing.T, platform isa.Platform, opts kir.HardenOpts) *kernel.System {
	t.Helper()
	uimg, err := cc.Compile(workload.Program(1), platform, kernel.UserBases)
	if err != nil {
		t.Fatalf("compile workload: %v", err)
	}
	sys, err := kernel.BuildSystem(platform, uimg, workload.StandardProcs(),
		kernel.Options{Harden: opts})
	if err != nil {
		t.Fatalf("BuildSystem(harden=%v): %v", opts, err)
	}
	return sys
}

// TestHardenedKernelFaultFree is the vertical-slice check for the hardening
// layer: a fully hardened kernel (duplication + control-flow signatures) must
// build within the kernel code budget, boot, and run the standard workload to
// completion on both platforms with the same workload checksum as the
// unhardened build. The detector must never fire without an injected fault.
func TestHardenedKernelFaultFree(t *testing.T) {
	for _, platform := range []isa.Platform{isa.CISC, isa.RISC} {
		t.Run(platform.Short(), func(t *testing.T) {
			plain := buildStandard(t, platform)
			want := plain.Run()
			if want.Outcome != machine.OutCompleted {
				t.Fatalf("unhardened outcome = %v", want.Outcome)
			}
			hard := buildHardened(t, platform, kir.HardenOpts{Dup: true, CFSig: true})
			if len(hard.KernelImage.Code) <= len(plain.KernelImage.Code) {
				t.Errorf("hardened code (%d bytes) not larger than unhardened (%d bytes)",
					len(hard.KernelImage.Code), len(plain.KernelImage.Code))
			}
			res := hard.Run()
			if res.Outcome != machine.OutCompleted {
				t.Fatalf("hardened outcome = %v (crash=%+v, cycles=%d)",
					res.Outcome, res.Crash, res.Cycles)
			}
			if res.Checksum != want.Checksum {
				t.Errorf("hardened checksum 0x%08x != unhardened 0x%08x",
					res.Checksum, want.Checksum)
			}
			if res.Cycles <= want.Cycles {
				t.Errorf("hardened run (%d cycles) not slower than unhardened (%d cycles)",
					res.Cycles, want.Cycles)
			}
			ratio := float64(len(hard.KernelImage.Code)) / float64(len(plain.KernelImage.Code))
			t.Logf("%v: code x%.2f, cycles x%.2f (%d -> %d)", platform, ratio,
				float64(res.Cycles)/float64(want.Cycles), want.Cycles, res.Cycles)
		})
	}
}

// TestHardenedKernelSinglePass checks each transform independently builds and
// completes — a regression guard for pass interactions hiding single-pass
// breakage.
func TestHardenedKernelSinglePass(t *testing.T) {
	for _, opts := range []kir.HardenOpts{{Dup: true}, {CFSig: true}} {
		t.Run(opts.String(), func(t *testing.T) {
			sys := buildHardened(t, isa.RISC, opts)
			res := sys.Run()
			if res.Outcome != machine.OutCompleted {
				t.Fatalf("outcome = %v (crash=%+v)", res.Outcome, res.Crash)
			}
		})
	}
}

// TestUnhardenedBuildUnchanged pins the acceptance criterion that zero-value
// Options produce exactly the pre-hardening image: the transform must not
// perturb paper-faithful builds.
func TestUnhardenedBuildUnchanged(t *testing.T) {
	uimg, err := cc.Compile(workload.Program(1), isa.CISC, kernel.UserBases)
	if err != nil {
		t.Fatalf("compile workload: %v", err)
	}
	a, err := kernel.BuildSystem(isa.CISC, uimg, workload.StandardProcs(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := kernel.BuildSystem(isa.CISC, uimg, workload.StandardProcs(),
		kernel.Options{Harden: kir.HardenOpts{}})
	if err != nil {
		t.Fatal(err)
	}
	if string(a.KernelImage.Code) != string(b.KernelImage.Code) {
		t.Error("zero-value Harden changed the kernel code image")
	}
	if string(a.KernelImage.Data) != string(b.KernelImage.Data) {
		t.Error("zero-value Harden changed the kernel data image")
	}
}
