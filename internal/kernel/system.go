package kernel

import (
	"fmt"

	"kfi/internal/cc"
	"kfi/internal/crashnet"
	"kfi/internal/isa"
	"kfi/internal/kir"
	"kfi/internal/machine"
	"kfi/internal/mem"
	"kfi/internal/platform"
)

// ProcSpec describes one process created at boot (process slot 0 is always
// the kernel idle process).
type ProcSpec struct {
	Name string
	// Entry is the symbol of the process entry point.
	Entry string
	// InUserImage selects which image Entry is resolved against.
	InUserImage bool
	// User runs the process in user mode (workload programs); kernel
	// daemons run privileged on their kernel stacks.
	User bool
}

// Options tune the built system.
type Options struct {
	TimerPeriod uint64
	Watchdog    uint64
	MemSize     uint32
	CrashSender crashnet.Sender
	// Prog selects kernel build variants (ablation studies).
	Prog ProgOptions
	// NoStackWrapper disables the G4 exception-entry stack check, turning
	// the G4 kernel's overflow detection off (ablation).
	NoStackWrapper bool
	// Harden applies the software fault-detection transforms (kir.Harden)
	// to the kernel image. The workload image passed to BuildSystem is
	// compiled separately by the caller and stays unhardened: the study
	// measures detection of kernel errors, mirroring the paper's
	// kernel-only injection targets.
	Harden kir.HardenOpts
}

// System is a bootable, sealed guest system ready for injection runs.
type System struct {
	Platform    isa.Platform
	Machine     *machine.Machine
	KernelImage *cc.Image
	UserImage   *cc.Image
	Src         *Source
	// Prog is the KIR program KernelImage was compiled from, with any
	// hardening passes already applied — the program whose accesses the
	// static analyzer must model, since hardening adds loads and stores.
	Prog       *kir.Program
	Procs      []ProcSpec // index 0 is the idle process
	KStackSize uint32
	Glue       Glue
}

// KernelBases are the kernel image load addresses.
var KernelBases = cc.Bases{Code: KCodeBase, Data: KDataBase, BSS: KBSSBase, Heap: KHeapBase}

// UserBases are the workload image load addresses.
var UserBases = cc.Bases{Code: UCodeBase, Data: UDataBase, BSS: UBSSBase}

// KStackTop returns the top of process slot i's kernel stack.
func KStackTop(i int) uint32 { return KStackArea + uint32(i+1)*KStackSlot }

// UStackTop returns the top of process slot i's user stack.
func UStackTop(i int) uint32 { return UStackArea + uint32(i+1)*UStackSlot }

// KStackSize returns the per-platform kernel stack size (4 KiB P4 / 8 KiB
// G4), as declared by the platform descriptor.
func KStackSize(p isa.Platform) uint32 {
	return platform.MustGet(p).KernelStackSize()
}

// BuildSystem compiles the kernel for the platform, appends the trap glue,
// boots it on a fresh machine, installs the workload processes, and seals
// memory so every injection run starts from an identical image.
//
// userImage may be nil when procs contains only kernel daemons.
func BuildSystem(platform isa.Platform, userImage *cc.Image, procs []ProcSpec, opts Options) (*System, error) {
	src := ProgramWith(opts.Prog)
	hprog := kir.Harden(src.Prog, opts.Harden)
	kimg, err := cc.Compile(hprog, platform, KernelBases)
	if err != nil {
		return nil, fmt.Errorf("kernel: compile: %w", err)
	}
	if opts.Harden.Enabled() && opts.Watchdog == 0 {
		// A hardened kernel retires several times the instructions per run;
		// give the hardware watchdog matching headroom so the slowdown is
		// not misclassified as a hang. Explicit Watchdog settings win.
		opts.Watchdog = 160_000_000
	}
	glue, err := appendGlue(kimg)
	if err != nil {
		return nil, fmt.Errorf("kernel: glue: %w", err)
	}

	layout := kimg.Layout
	proc := src.Proc
	fieldOff := func(name string) uint32 {
		i := proc.FieldIndex(name)
		if i < 0 {
			panic(fmt.Sprintf("kernel: task_struct has no field %q", name))
		}
		return layout.FieldOffset(proc, i)
	}
	ksize := KStackSize(platform)

	if opts.MemSize == 0 {
		opts.MemSize = MemSize
	}
	m, err := machine.New(machine.Config{
		Platform:       platform,
		Image:          kimg,
		MemSize:        opts.MemSize,
		TimerPeriod:    opts.TimerPeriod,
		Watchdog:       opts.Watchdog,
		SyscallStub:    glue.SyscallStub,
		TimerStub:      glue.TimerStub,
		BootEntry:      kimg.Sym("kstart"),
		BootSP:         KStackTop(0),
		BootStackLo:    KStackTop(0) - ksize,
		BootStackHi:    KStackTop(0),
		CurrentPtr:     kimg.Sym("current"),
		KStackOff:      fieldOff("kstack"),
		StackLoOff:     fieldOff("stack_lo"),
		StackHiOff:     fieldOff("stack_hi"),
		CtxOff:         fieldOff("ctx"),
		FSBase:         PercpuBase,
		SPRG2Value:     PercpuBase + 0x800,
		CrashSender:    opts.CrashSender,
		NoStackWrapper: opts.NoStackWrapper,
	})
	if err != nil {
		return nil, err
	}

	// Per-CPU area (FS segment target / SPRG2 scratch).
	m.Mem.Map(PercpuBase, 0x2000, mem.Present|mem.Writable)
	m.Mem.AddRegion(mem.Region{Name: "percpu", Kind: mem.KindData, Start: PercpuBase, End: PercpuBase + 0x2000})

	// Kernel stacks: the top ksize bytes of each slot, with an unmapped
	// guard gap below (so overflows fault rather than scribble).
	for i := 0; i < NPROC; i++ {
		top := KStackTop(i)
		m.Mem.Map(top-ksize, ksize, mem.Present|mem.Writable)
		m.Mem.AddRegion(mem.Region{
			Name: fmt.Sprintf("kstack%d", i), Kind: mem.KindStack,
			Start: top - ksize, End: top,
		})
	}

	// Workload image and user stacks.
	allProcs := append([]ProcSpec{{Name: "idle", Entry: "kstart"}}, procs...)
	if len(allProcs) > NPROC {
		return nil, fmt.Errorf("kernel: %d processes exceed NPROC=%d", len(allProcs), NPROC)
	}
	if userImage != nil {
		m.Mem.Map(userImage.CodeBase, uint32(len(userImage.Code)), mem.Present|mem.UserOK)
		m.Mem.Map(userImage.DataBase, uint32(len(userImage.Data))+mem.PageSize, mem.Present|mem.Writable|mem.UserOK)
		if userImage.BSSSize > 0 {
			m.Mem.Map(userImage.BSSBase, userImage.BSSSize, mem.Present|mem.Writable|mem.UserOK)
		}
		copy(m.Mem.RawBytes(userImage.CodeBase, uint32(len(userImage.Code))), userImage.Code)
		copy(m.Mem.RawBytes(userImage.DataBase, uint32(len(userImage.Data))), userImage.Data)
		m.Mem.AddRegion(mem.Region{Name: "utext", Kind: mem.KindUser, Start: userImage.CodeBase, End: userImage.CodeBase + uint32(len(userImage.Code))})
		udataEnd := userImage.DataBase + uint32(len(userImage.Data)) + mem.PageSize
		m.Mem.AddRegion(mem.Region{Name: "udata", Kind: mem.KindUser, Start: userImage.DataBase, End: udataEnd})
		for i := range allProcs {
			if !allProcs[i].User {
				continue
			}
			top := UStackTop(i)
			m.Mem.Map(top-UStackSize, UStackSize, mem.Present|mem.Writable|mem.UserOK)
			m.Mem.AddRegion(mem.Region{
				Name: fmt.Sprintf("ustack%d", i), Kind: mem.KindUser,
				Start: top - UStackSize, End: top,
			})
		}
	}

	// Linear-map the remaining RAM: a 2.4-era kernel maps all of physical
	// memory, so modest pointer corruptions land in mapped (free) RAM and
	// corrupt silently rather than faulting; only wild pointers reach
	// unmapped space. This also removes stack guard gaps — on the P4 an
	// overflowing stack scribbles into adjacent memory undetected, exactly
	// as the paper describes.
	m.Mem.MapFill(0, opts.MemSize, mem.Present|mem.Writable)

	// Run the kernel's one-shot initialization.
	if _, err := m.CallGuest("kmain"); err != nil {
		return nil, fmt.Errorf("kernel: kmain: %w", err)
	}

	// Create the boot-time process table.
	sys := &System{
		Platform:    platform,
		Machine:     m,
		KernelImage: kimg,
		UserImage:   userImage,
		Src:         src,
		Prog:        hprog,
		Procs:       allProcs,
		KStackSize:  ksize,
		Glue:        glue,
	}
	for i, ps := range allProcs {
		pa := sys.ProcAddr(i)
		sys.writeField(pa, "pid", uint32(i+1))
		sys.writeField(pa, "state", TaskRunning)
		sys.writeField(pa, "prio", uint32(i))
		sys.writeField(pa, "ticks", Timeslice)
		flags := uint32(0)
		if ps.User {
			flags = PFUser
		}
		sys.writeField(pa, "flags", flags)
		sys.writeField(pa, "kstack", KStackTop(i))
		// The usable stack floor sits just above the co-located task_struct;
		// a stack pointer below it is an overflow (the G4 wrapper check).
		sys.writeField(pa, "stack_lo", pa+layout.StructSize(proc))
		sys.writeField(pa, "stack_hi", KStackTop(i))
		if i == 0 {
			continue // the idle context is captured at the first switch
		}
		entryImg := kimg
		if ps.InUserImage {
			if userImage == nil {
				return nil, fmt.Errorf("kernel: proc %q needs a user image", ps.Name)
			}
			entryImg = userImage
		}
		sp := KStackTop(i)
		if ps.User {
			sp = UStackTop(i)
		}
		m.Core().InitContext(pa+fieldOff("ctx"), entryImg.Sym(ps.Entry), sp, ps.User)
	}
	// Every stack slot carries a task area (pid 0 marks it unused), so the
	// scheduler and timer can scan all NPROC descriptors unconditionally.
	for i := 0; i < NPROC; i++ {
		m.Mem.RawWrite(kimg.Sym("task_ptrs")+uint32(4*i), 4, sys.ProcAddr(i))
	}
	m.Mem.RawWrite(kimg.Sym("current"), 4, sys.ProcAddr(0))
	m.Mem.RawWrite(kimg.Sym("current_idx"), 4, 0)

	m.Seal()
	return sys, nil
}

// ProcAddr returns the guest address of process slot i's task_struct, which
// lives at the bottom of the process's kernel stack region as on Linux 2.4.
func (s *System) ProcAddr(i int) uint32 {
	return KStackTop(i) - s.KStackSize
}

// FieldOffset returns the platform offset of a task_struct field.
func (s *System) FieldOffset(name string) uint32 {
	return s.KernelImage.Layout.FieldOffset(s.Src.Proc, s.Src.Proc.FieldIndex(name))
}

func (s *System) writeField(procAddr uint32, field string, v uint32) {
	i := s.Src.Proc.FieldIndex(field)
	off := s.KernelImage.Layout.FieldOffset(s.Src.Proc, i)
	w := uint32(s.Src.Proc.Fields[i].Width)
	s.Machine.Mem.RawWrite(procAddr+off, w, v)
}

// ReadProcField reads a task_struct field of process slot i.
func (s *System) ReadProcField(i int, field string) uint32 {
	fi := s.Src.Proc.FieldIndex(field)
	off := s.KernelImage.Layout.FieldOffset(s.Src.Proc, fi)
	w := uint32(s.Src.Proc.Fields[fi].Width)
	return s.Machine.Mem.RawRead(s.ProcAddr(i)+off, w)
}

// LiveKernelSP resolves process slot i's kernel stack pointer right now: the
// CPU's SP when the process is current and in kernel mode, otherwise the
// saved context's SP. Returns 0 when the process is executing in user mode
// (its kernel stack is empty).
func (s *System) LiveKernelSP(i int) uint32 {
	m := s.Machine
	curIdx := int(m.Mem.RawRead(s.KernelImage.Sym("current_idx"), 4))
	core := m.Core()
	if curIdx == i {
		if core.Mode() != isa.KernelMode {
			return 0
		}
		return core.SP()
	}
	ctx := s.ProcAddr(i) + s.FieldOffset("ctx")
	if core.CtxModeUser(ctx) {
		return 0
	}
	return m.Mem.RawRead(ctx+core.CtxSPOffset(), 4)
}

// Run reboots the machine to the sealed image and runs the workload once.
func (s *System) Run() machine.RunResult {
	s.Machine.Reboot()
	return s.Machine.Run()
}

// HostReadGlobals lists kernel globals the host runtime reads directly
// (outside compiled kernel code): the machine's current-task resolution and
// the injectors' stack-address resolution. A static data-liveness analysis
// must treat every byte of these as live even when no compiled instruction
// reads them.
func HostReadGlobals() []string {
	return []string{"current", "current_idx", "task_ptrs"}
}

// HostReadTaskFields lists task_struct fields the host runtime reads
// directly: the machine's stack-overflow checks and context switching, and
// LiveKernelSP's saved-context probe. Like HostReadGlobals, these are live
// regardless of what compiled code does.
func HostReadTaskFields() []string {
	return []string{"kstack", "stack_lo", "stack_hi", "ctx"}
}
