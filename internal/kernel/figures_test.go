package kernel_test

// Directed reproductions of the paper's case studies:
//
//	Figure 7  — undetected stack corruption on the P4 propagating across
//	            subsystems before crashing far from the fault site
//	Figure 8  — a stack error under kupdate on the P4 crashing on a wild
//	            pointer dereference
//	Figure 9  — a corrupted pointer consumed by kjournald on the G4 crashing
//	            quickly with "kernel access of bad area"
//	Figure 13 — a data error in a spinlock's SPINLOCK_DEBUG magic detected as
//	            an Invalid Instruction through BUG() on the P4
//	Figure 14 — a single code bit flip on the P4 transforming one valid
//	            instruction group into a different valid instruction group
//	Figure 15 — a single code bit flip on the G4 turning mflr r0 into
//	            lhax r0,r8,r0

import (
	"encoding/binary"
	"testing"

	"kfi/internal/campaign"
	"kfi/internal/cisc"
	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/machine"
	"kfi/internal/risc"
)

func goldenOf(t *testing.T, sys *kernel.System) uint32 {
	t.Helper()
	res := sys.Run()
	if res.Outcome != machine.OutCompleted {
		t.Fatalf("golden run: %v", res.Outcome)
	}
	return res.Checksum
}

// TestFigure13SpinlockMagicBUG: flipping a bit of a spinlock's magic word in
// the kernel data section makes the next spin_lock/spin_unlock detect the
// corruption and BUG() — an Invalid Instruction crash whose reported cause
// has nothing to do with an instruction error (the paper's diagnosability
// point).
func TestFigure13SpinlockMagicBUG(t *testing.T) {
	sys := buildStandard(t, isa.CISC)
	golden := goldenOf(t, sys)
	magicAddr := sys.KernelImage.Sym("kernel_flag") // magic is field 0
	res := inject.RunOne(sys, inject.Target{
		Campaign: inject.CampData,
		Addr:     magicAddr + 1, // a middle bit of the magic word
		Bit:      6,
	}, golden)
	if res.Outcome != inject.OCrash {
		t.Fatalf("outcome = %v, want crash", res.Outcome)
	}
	if res.Cause != isa.CauseInvalidInstr {
		t.Errorf("cause = %v, want Invalid Instruction (the BUG/ud2 path)", res.Cause)
	}
	if res.CrashFunc != "spin_lock" && res.CrashFunc != "spin_unlock" {
		t.Errorf("crash in %q, want the spinlock check", res.CrashFunc)
	}
	if !res.Activated {
		t.Error("the corrupted magic was read but not marked activated")
	}
}

// TestFigure15MflrToLhax: flip the single bit that turns mflr r0 into
// lhax r0,r8,r0 in a real compiled kernel function and observe the G4 crash.
func TestFigure15MflrToLhax(t *testing.T) {
	sys := buildStandard(t, isa.RISC)
	golden := goldenOf(t, sys)
	im := sys.KernelImage

	// Find an mflr r0 in a hot function's prologue (sys_read is exercised
	// by the fs worker on every benchmark run).
	fr, ok := im.FuncAt(im.Sym("sys_read"))
	if !ok {
		t.Fatal("sys_read not found")
	}
	var mflrAddr uint32
	for addr := fr.Start; addr < fr.End; addr += 4 {
		w := binary.BigEndian.Uint32(im.Code[addr-im.CodeBase:])
		if w == 0x7C0802A6 { // mflr r0
			mflrAddr = addr
			break
		}
	}
	if mflrAddr == 0 {
		t.Fatal("no mflr r0 in sys_read's prologue")
	}

	// The differing bit: 0x7C0802A6 ^ 0x7C0802AE = 0x8, i.e. bit 3 of the
	// last byte (big-endian byte 3).
	res := inject.RunOne(sys, inject.Target{
		Campaign: inject.CampCode,
		Addr:     mflrAddr,
		ByteOff:  3,
		Bit:      3,
		Func:     "sys_read",
	}, golden)
	if res.Outcome != inject.OCrash && res.Outcome != inject.OHangUnknown {
		t.Fatalf("outcome = %v, want a crash (mflr corrupted to lhax)", res.Outcome)
	}
	if res.Outcome == inject.OCrash && res.Cause != isa.CauseBadArea && res.Cause != isa.CauseAlignment {
		t.Errorf("cause = %v, want kernel access of bad area", res.Cause)
	}
	// Verify the flip really decodes as the figure says.
	in, err := risc.Decode(0x7C0802A6 ^ 0x8)
	if err != nil || in.Op != risc.OpLHAX {
		t.Errorf("flipped word decodes as %v (%v), want lhax", in.Op, err)
	}
}

// TestFigure14InstructionGroupChange: on the variable-length CISC target a
// single bit flip can change an instruction's length and re-synchronize the
// following stream into a different valid instruction group.
func TestFigure14InstructionGroupChange(t *testing.T) {
	sys := buildStandard(t, isa.CISC)
	im := sys.KernelImage
	fr, ok := im.FuncAt(im.Sym("memcpy"))
	if !ok {
		t.Fatal("memcpy not found")
	}
	code := im.Code[fr.Start-im.CodeBase : fr.End-im.CodeBase]

	decodeStream := func(bs []byte) []string {
		var out []string
		for off := 0; off < len(bs); {
			in, err := cisc.Decode(bs[off:])
			if err != nil {
				out = append(out, "bad")
				off++
				continue
			}
			out = append(out, in.String())
			off += int(in.Len)
		}
		return out
	}
	_ = decodeStream(code)

	// Search for a flip anywhere in the function that changes an
	// instruction's length yet still decodes into at least three valid
	// follow-on instructions — a different valid instruction group, the
	// Figure 14 phenomenon.
	found := false
	boundaries := []int{0}
	for off := 0; off < len(code); {
		in, err := cisc.Decode(code[off:])
		if err != nil {
			break
		}
		off += int(in.Len)
		boundaries = append(boundaries, off)
	}
	for _, off := range boundaries {
		if found || off+8 > len(code) {
			break
		}
		for bit := 0; bit < 8 && !found; bit++ {
			mut := append([]byte(nil), code...)
			mut[off] ^= 1 << bit
			in0, err0 := cisc.Decode(code[off:])
			in1, err1 := cisc.Decode(mut[off:])
			if err0 != nil || err1 != nil || in0.Len == in1.Len {
				continue
			}
			// The stream re-synchronizes: the next three decodes are valid.
			p := off + int(in1.Len)
			valid := 0
			for i := 0; i < 3 && p < len(mut); i++ {
				next, err := cisc.Decode(mut[p:])
				if err != nil {
					break
				}
				valid++
				p += int(next.Len)
			}
			if valid == 3 {
				t.Logf("flip at +%d bit %d: %q (len %d) became %q (len %d), stream re-synchronized",
					off, bit, in0, in0.Len, in1, in1.Len)
				found = true
			}
		}
	}
	if !found {
		t.Error("no single-bit flip re-synchronized memcpy into a different valid group")
	}
}

// TestFigure7StackCorruptionPropagates: on the P4 a corrupted frame/stack
// pointer is not detected where it happens; the system keeps running and
// crashes somewhere else (the paper's mm → net propagation). We inject into
// free_pages_ok's epilogue region across many bits and require at least one
// crash OUTSIDE the faulted function.
func TestFigure7StackCorruptionPropagates(t *testing.T) {
	sys := buildStandard(t, isa.CISC)
	golden := goldenOf(t, sys)
	im := sys.KernelImage
	fr, ok := im.FuncAt(im.Sym("free_pages_ok"))
	if !ok {
		t.Fatal("free_pages_ok not found")
	}

	propagated := false
	var crashes, total int
	for addr := fr.End - 24; addr < fr.End && !propagated; addr++ {
		for bit := uint(0); bit < 8; bit++ {
			total++
			res := inject.RunOne(sys, inject.Target{
				Campaign: inject.CampCode,
				Addr:     fr.Start, // break at entry; flip in the epilogue
				ByteOff:  uint8(addr - fr.Start),
				Bit:      bit,
				Func:     "free_pages_ok",
			}, golden)
			if res.Outcome == inject.OCrash {
				crashes++
				if res.CrashFunc != "" && res.CrashFunc != "free_pages_ok" {
					t.Logf("propagation: corrupted free_pages_ok, crashed in %s (%v) after %d cycles",
						res.CrashFunc, res.Cause, res.Latency)
					propagated = true
					break
				}
			}
		}
	}
	if crashes == 0 {
		t.Fatalf("no crashes from %d epilogue injections", total)
	}
	if !propagated {
		t.Error("every crash stayed in free_pages_ok; expected undetected propagation")
	}
}

// TestFigure8KupdateStackError: corrupt a live return address in a kernel
// daemon's stack frame while it sleeps; when it wakes, the P4 kernel wanders
// off through the wild pointer and crashes on an invalid memory access.
func TestFigure8KupdateStackError(t *testing.T) {
	sys := buildStandard(t, isa.CISC)
	golden := goldenOf(t, sys)
	_ = golden
	m := sys.Machine

	// Run until mid-benchmark so kupdate has slept inside schedule_timeout.
	m.Reboot()
	m.PauseAt = 400_000
	if res := m.Run(); res.Outcome != machine.OutPaused {
		t.Fatalf("pre-run: %v", res.Outcome)
	}
	const kupdateSlot = 1
	sp := sys.LiveKernelSP(kupdateSlot)
	top := kernel.KStackTop(kupdateSlot)
	if sp == 0 || sp >= top {
		t.Fatalf("kupdate kernel stack not live (sp=0x%x)", sp)
	}
	// Find a stack word that holds a kernel text address — a saved return
	// address — and flip its top bit.
	im := sys.KernelImage
	var target uint32
	for a := sp; a < top; a += 4 {
		v := m.Mem.RawRead(a, 4)
		if v >= im.CodeBase && v < im.CodeBase+uint32(len(im.Code)) {
			target = a
			break
		}
	}
	if target == 0 {
		t.Fatal("no return address found in kupdate's live frames")
	}
	m.Mem.FlipBit(target+3, 7) // most significant bit (little-endian)
	res := m.Run()
	if res.Outcome != machine.OutCrashed && res.Outcome != machine.OutHung {
		t.Fatalf("outcome = %v, want crash from the wild return", res.Outcome)
	}
	if res.Outcome == machine.OutCrashed {
		switch res.Crash.Cause {
		case isa.CauseNULLPointer, isa.CauseBadPaging, isa.CauseInvalidInstr, isa.CauseGeneralProtection:
		default:
			t.Errorf("cause = %v, want an invalid-memory/instruction class crash", res.Crash.Cause)
		}
	}
}

// TestFigure9KjournaldBadArea: corrupt the journal's running-transaction
// pointer; kjournald dereferences it on its next pass and the G4 reports
// "kernel access of bad area" quickly (short crash latency).
func TestFigure9KjournaldBadArea(t *testing.T) {
	sys := buildStandard(t, isa.RISC)
	golden := goldenOf(t, sys)
	jAddr := sys.KernelImage.Sym("journal") // field 0 = j_running_transaction
	// Flip the pointer's top bit: 0x000xxxxx → 0x800xxxxx, far outside RAM.
	res := inject.RunOne(sys, inject.Target{
		Campaign: inject.CampData,
		Addr:     jAddr, // big-endian: byte 0 is the MSB
		Bit:      7,
	}, golden)
	if res.Outcome != inject.OCrash {
		t.Fatalf("outcome = %v, want crash", res.Outcome)
	}
	if res.Cause != isa.CauseBadArea {
		t.Errorf("cause = %v, want kernel access of bad area", res.Cause)
	}
	if res.CrashFunc != "kjournald" && res.CrashFunc != "journal_commit" && res.CrashFunc != "sys_write" {
		t.Errorf("crash in %q, want the journal path", res.CrashFunc)
	}
	// The figure's point: detection is fast once the pointer is consumed.
	if res.Latency > 100_000 {
		t.Errorf("latency = %d cycles, want quick detection", res.Latency)
	}
}

// TestStackOverflowOnlyDetectedOnG4: corrupting the saved back-chain /
// frame pointer produces an explicit Stack Overflow on the G4 (wrapper
// check), while the P4 reports it as some other exception — the paper's
// §5.1 platform contrast.
func TestStackOverflowOnlyDetectedOnG4(t *testing.T) {
	if testing.Short() {
		t.Skip("runs hundreds of injections")
	}
	for _, platform := range []isa.Platform{isa.CISC, isa.RISC} {
		sys := buildStandard(t, platform)
		golden := goldenOf(t, sys)
		prof, err := campaign.ProfileKernel(sys)
		if err != nil {
			t.Fatal(err)
		}
		gen := campaign.NewGenerator(sys, prof, 12345, 2_000_000)
		targets, err := gen.Targets(campaign.Spec{Campaign: inject.CampStack, N: 400})
		if err != nil {
			t.Fatal(err)
		}
		overflow := 0
		for _, tg := range targets {
			res := inject.RunOne(sys, tg, golden)
			if res.Outcome == inject.OCrash && res.Cause == isa.CauseStackOverflow {
				overflow++
			}
		}
		if platform == isa.CISC && overflow != 0 {
			t.Errorf("P4 reported %d Stack Overflow crashes; it has no such detection", overflow)
		}
		if platform == isa.RISC && overflow == 0 {
			t.Errorf("G4 reported no Stack Overflow crashes; the wrapper should catch corrupted stack pointers")
		}
	}
}
