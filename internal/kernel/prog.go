package kernel

import "kfi/internal/kir"

// Source bundles the kernel IR program with the type handles the system
// builder needs to compute guest-structure offsets.
type Source struct {
	Prog *kir.Program
	Proc *kir.Struct
	Lock *kir.Struct
}

// magic is SpinlockMagic reinterpreted as the signed immediate the IR uses.
var (
	magicU uint32 = SpinlockMagic
	magic         = int32(magicU)
)

// ProgOptions select kernel build variants for ablation studies.
type ProgOptions struct {
	// NoSpinlockDebug compiles spin_lock/spin_unlock without the
	// SPINLOCK_DEBUG magic checks (the Figure 13 detection path).
	NoSpinlockDebug bool
}

// Program builds the complete guest-kernel IR with default options.
func Program() *Source { return ProgramWith(ProgOptions{}) }

// ProgramWith builds the guest-kernel IR with the given options.
func ProgramWith(opts ProgOptions) *Source {
	pb := kir.NewProgram()
	s := &Source{}

	// --- types ---
	proc := pb.Struct("task_struct",
		kir.F32("pid"),
		kir.F32("state"),
		kir.F8("prio"),
		kir.F8("ticks"),
		kir.F16("flags"),
		kir.F32("sleep_until"),
		kir.F32("kstack"),
		kir.F32("stack_lo"),
		kir.F32("stack_hi"),
		kir.F32("exit_code"),
		kir.F32("syscalls"),
		kir.FArr("ctx", kir.W32, 40),
	)
	lock := pb.Struct("spinlock_t",
		kir.F32("magic"),
		kir.F32("locked"),
		kir.F16("owner"),
		kir.F8("depth"),
	)
	stat := pb.Struct("kernel_stat",
		kir.F32("ctxsw"), kir.F32("irqs"), kir.F32("syscalls"), kir.F32("panics"))
	page := pb.Struct("page",
		kir.F8("flags"), kir.F8("order"), kir.F16("count"), kir.F32("next"))
	buf := pb.Struct("buffer_head",
		kir.F8("state"), kir.F8("dirty"), kir.F16("blocknr"),
		kir.F32("data"), kir.F32("csum"))
	journal := pb.Struct("journal_t",
		kir.F32("j_running_transaction"), kir.F32("j_commit_sequence"), kir.F32("j_commits"))
	trans := pb.Struct("transaction_t",
		kir.F32("t_state"), kir.F32("t_expires"), kir.F32("t_nblocks"))
	skb := pb.Struct("sk_buff",
		kir.F16("len"), kir.F8("protocol"), kir.F8("used"),
		kir.F32("data"), kir.F32("csum"))
	nst := pb.Struct("net_stats",
		kir.F32("tx_packets"), kir.F32("tx_bytes"), kir.F32("tx_errors"), kir.F32("drops"))
	s.Proc, s.Lock = proc, lock

	// --- globals ---
	pb.GlobalBytes("version_banner", 64, []byte("kfi-kernel 2.4.22-sim (gcc 3.2.2 would be proud)"))
	// Task structs live at the BOTTOM of each process's kernel stack, as on
	// Linux 2.4 (current = SP & ~(stack size - 1)); task_ptrs indexes them.
	pb.GlobalBytes("task_ptrs", 4*NPROC, nil)
	pb.GlobalBytes("current", 4, nil)
	pb.GlobalBytes("current_idx", 4, nil)
	pb.GlobalBytes("jiffies", 4, nil)
	pb.GlobalStruct("kstat", stat, 1)
	// Spinlocks carry their SPINLOCK_DEBUG magic as static data, as in the
	// real kernel's data section (Figure 13 injects into exactly this word).
	for _, name := range []string{"kernel_flag", "page_lock", "buf_lock", "net_lock", "journal_lock"} {
		pb.GlobalStruct(name, lock, 1, SpinlockMagic, 0, 0, 0)
	}
	pb.GlobalStruct("mem_map", page, NPAGE)
	pb.GlobalBytes("free_head", 4, nil)
	pb.GlobalBytes("nr_free_pages", 4, nil)
	pb.GlobalHeap("page_pool", NPAGE*PageSize)
	pb.GlobalStruct("buffer_heads", buf, NBUF)
	pb.GlobalBytes("buf_clock", 4, nil)
	pb.GlobalHeap("buffer_data", NBUF*BufSize)
	pb.GlobalHeap("disk", NBLOCK*BufSize)
	pb.GlobalStruct("journal", journal, 1)
	pb.GlobalStruct("transactions", trans, 2)
	pb.GlobalStruct("skbs", skb, NSKB)
	pb.GlobalHeap("skb_data", NSKB*SkbSize)
	pb.GlobalStruct("netstats", nst, 1)
	pipe := pb.Struct("pipe_inode",
		kir.F32("head"), kir.F32("tail"), kir.F32("count"), kir.F32("waiters"))
	pb.GlobalStruct("pipe0", pipe, 1)
	pb.GlobalHeap("pipe_buf", PipeSize)
	pb.GlobalBytes("sys_call_table", 4*NSYS, nil)
	pb.GlobalBytes("results", 4*NPROC, nil)
	// A sparse reserve zone: most kernel data is rarely touched, which keeps
	// the data-injection activation rate low, as in the paper (~1%).
	pb.GlobalBSS("zone_reserve", 96*1024)

	buildLib(pb)
	buildLocks(pb, lock, opts)
	buildSched(pb, proc, stat)
	buildMM(pb, page, lock)
	buildFS(pb, buf, proc)
	buildJournal(pb, journal, trans, proc)
	buildNet(pb, skb, nst)
	buildPipe(pb, pipe)
	buildSyscalls(pb, proc, stat)
	buildBoot(pb, proc, page, journal, trans)

	s.Prog = pb.Program()
	return s
}

// buildLib emits memcpy/memset/checksum.
func buildLib(pb *kir.ProgramBuilder) {
	// memcpy(dst, src, n): byte copy.
	{
		fb := pb.Func("memcpy", 3, false)
		dst, src, n := fb.Param(0), fb.Param(1), fb.Param(2)
		fb.Block("entry")
		i := fb.Var()
		fb.ConstTo(i, 0)
		fb.Jmp("head")
		fb.Block("head")
		c := fb.Cmp(kir.Lt, i, n)
		fb.Br(c, "body", "done")
		fb.Block("body")
		v := fb.Load(kir.W8, fb.Add(src, i), 0)
		fb.Store(kir.W8, fb.Add(dst, i), 0, v)
		fb.BinImmTo(i, kir.Add, i, 1)
		fb.Jmp("head")
		fb.Block("done")
		fb.Ret(0)
	}
	// memset(p, v, n).
	{
		fb := pb.Func("memset", 3, false)
		p, v, n := fb.Param(0), fb.Param(1), fb.Param(2)
		fb.Block("entry")
		i := fb.Var()
		fb.ConstTo(i, 0)
		fb.Jmp("head")
		fb.Block("head")
		c := fb.Cmp(kir.Lt, i, n)
		fb.Br(c, "body", "done")
		fb.Block("body")
		fb.Store(kir.W8, fb.Add(p, i), 0, v)
		fb.BinImmTo(i, kir.Add, i, 1)
		fb.Jmp("head")
		fb.Block("done")
		fb.Ret(0)
	}
	// csum_partial(p, n) -> h: h = h*31 + byte, seeded with 1.
	{
		fb := pb.Func("csum_partial", 2, true)
		p, n := fb.Param(0), fb.Param(1)
		fb.Block("entry")
		h := fb.Var()
		i := fb.Var()
		fb.ConstTo(h, 1)
		fb.ConstTo(i, 0)
		fb.Jmp("head")
		fb.Block("head")
		c := fb.Cmp(kir.Lt, i, n)
		fb.Br(c, "body", "done")
		fb.Block("body")
		v := fb.Load(kir.W8, fb.Add(p, i), 0)
		h31 := fb.MulI(h, 31)
		fb.BinTo(h, kir.Add, h31, v)
		fb.BinImmTo(i, kir.Add, i, 1)
		fb.Jmp("head")
		fb.Block("done")
		fb.Ret(h)
	}
}

// buildLocks emits spin_lock/spin_unlock with SPINLOCK_DEBUG checks: a
// corrupted magic raises BUG() — an invalid instruction, exactly the Fig. 13
// detection path. Contention on this uniprocessor (only possible through
// state corruption) spins forever with interrupts off, which the hardware
// watchdog reports as a hang.
func buildLocks(pb *kir.ProgramBuilder, lock *kir.Struct, opts ProgOptions) {
	{
		fb := pb.Func("spin_lock", 1, false)
		lk := fb.Param(0)
		fb.Block("entry")
		if opts.NoSpinlockDebug {
			fb.Jmp("irq")
		} else {
			m := fb.LoadField(lock, "magic", lk)
			ok := fb.CmpI(kir.Eq, m, magic)
			fb.Br(ok, "irq", "bad")
			fb.Block("bad")
			fb.Bug()
			fb.Ret(0)
		}
		fb.Block("irq")
		fb.IrqOff()
		fb.Jmp("spin")
		fb.Block("spin")
		l := fb.LoadField(lock, "locked", lk)
		free := fb.CmpI(kir.Eq, l, 0)
		fb.Br(free, "take", "spin")
		fb.Block("take")
		one := fb.Const(1)
		fb.StoreField(lock, "locked", lk, one)
		d := fb.LoadField(lock, "depth", lk)
		fb.StoreField(lock, "depth", lk, fb.AddI(d, 1))
		fb.Ret(0)
	}
	{
		fb := pb.Func("spin_unlock", 1, false)
		lk := fb.Param(0)
		fb.Block("entry")
		if opts.NoSpinlockDebug {
			fb.Jmp("rel")
		} else {
			m := fb.LoadField(lock, "magic", lk)
			ok := fb.CmpI(kir.Eq, m, magic)
			fb.Br(ok, "chk", "bad")
			fb.Block("bad")
			fb.Bug()
			fb.Ret(0)
			fb.Block("chk")
			l := fb.LoadField(lock, "locked", lk)
			held := fb.CmpI(kir.Ne, l, 0)
			fb.Br(held, "rel", "bad2")
			fb.Block("bad2")
			fb.Bug()
			fb.Ret(0)
		}
		fb.Block("rel")
		z := fb.Const(0)
		fb.StoreField(lock, "locked", lk, z)
		fb.IrqOn()
		fb.Ret(0)
	}
}

// buildSched emits the scheduler: find_next, schedule, schedule_timeout,
// wake_sleepers, timer_tick, do_exit.
func buildSched(pb *kir.ProgramBuilder, proc, stat *kir.Struct) {
	// find_next() -> index of the next runnable process (round robin).
	{
		fb := pb.Func("find_next", 0, true)
		fb.Block("entry")
		ci := fb.Load(kir.W32, fb.GlobalAddr("current_idx", 0), 0)
		base := fb.GlobalAddr("task_ptrs", 0)
		i := fb.Var()
		fb.ConstTo(i, 1)
		fb.Jmp("head")
		fb.Block("head")
		c := fb.CmpI(kir.Le, i, NPROC)
		fb.Br(c, "body", "fallback")
		fb.Block("body")
		j := fb.AndI(fb.Add(ci, i), NPROC-1)
		p := fb.Load(kir.W32, fb.Add(base, fb.MulI(j, 4)), 0)
		pid := fb.LoadField(proc, "pid", p)
		alive := fb.CmpI(kir.Ne, pid, 0)
		fb.Br(alive, "chkstate", "next")
		fb.Block("chkstate")
		st := fb.LoadField(proc, "state", p)
		run := fb.CmpI(kir.Eq, st, TaskRunning)
		fb.Br(run, "found", "next")
		fb.Block("found")
		fb.Ret(j)
		fb.Block("next")
		fb.BinImmTo(i, kir.Add, i, 1)
		fb.Jmp("head")
		fb.Block("fallback")
		fb.RetI(0) // the idle process is always runnable
	}
	// schedule(): pick the next process and switch to it.
	{
		fb := pb.Func("schedule", 0, false)
		fb.Block("entry")
		nidx := fb.Call("find_next")
		ci := fb.Load(kir.W32, fb.GlobalAddr("current_idx", 0), 0)
		same := fb.Cmp(kir.Eq, nidx, ci)
		fb.Br(same, "out", "switch")
		fb.Block("switch")
		base := fb.GlobalAddr("task_ptrs", 0)
		prev := fb.Load(kir.W32, fb.GlobalAddr("current", 0), 0)
		next := fb.Load(kir.W32, fb.Add(base, fb.MulI(nidx, 4)), 0)
		fb.Store(kir.W32, fb.GlobalAddr("current", 0), 0, next)
		fb.Store(kir.W32, fb.GlobalAddr("current_idx", 0), 0, nidx)
		ks := fb.GlobalAddr("kstat", 0)
		n := fb.LoadField(stat, "ctxsw", ks)
		fb.StoreField(stat, "ctxsw", ks, fb.AddI(n, 1))
		fb.CtxSw(prev, next)
		fb.Ret(0)
		fb.Block("out")
		fb.Ret(0)
	}
	// schedule_timeout(t): the caller has already set current->state.
	{
		fb := pb.Func("schedule_timeout", 1, false)
		t := fb.Param(0)
		fb.Block("entry")
		cur := fb.Load(kir.W32, fb.GlobalAddr("current", 0), 0)
		j := fb.Load(kir.W32, fb.GlobalAddr("jiffies", 0), 0)
		fb.StoreField(proc, "sleep_until", cur, fb.Add(j, t))
		fb.CallVoid("schedule")
		fb.Ret(0)
	}
	// timer_tick(): jiffies, sleeper wakeup, timeslice accounting.
	{
		fb := pb.Func("timer_tick", 0, false)
		fb.Block("entry")
		jaddr := fb.GlobalAddr("jiffies", 0)
		j0 := fb.Load(kir.W32, jaddr, 0)
		j := fb.AddI(j0, 1)
		fb.Store(kir.W32, jaddr, 0, j)
		ks := fb.GlobalAddr("kstat", 0)
		irqs := fb.LoadField(stat, "irqs", ks)
		fb.StoreField(stat, "irqs", ks, fb.AddI(irqs, 1))
		base := fb.GlobalAddr("task_ptrs", 0)
		i := fb.Var()
		fb.ConstTo(i, 0)
		fb.Jmp("head")
		fb.Block("head")
		c := fb.CmpI(kir.Lt, i, NPROC)
		fb.Br(c, "body", "slice")
		fb.Block("body")
		p := fb.Load(kir.W32, fb.Add(base, fb.MulI(i, 4)), 0)
		st := fb.LoadField(proc, "state", p)
		sleeping := fb.CmpI(kir.Eq, st, TaskInterruptible)
		fb.Br(sleeping, "chkwake", "next")
		fb.Block("chkwake")
		su := fb.LoadField(proc, "sleep_until", p)
		due := fb.Cmp(kir.Le, su, j)
		fb.Br(due, "wake", "next")
		fb.Block("wake")
		z := fb.Const(TaskRunning)
		fb.StoreField(proc, "state", p, z)
		fb.Jmp("next")
		fb.Block("next")
		fb.BinImmTo(i, kir.Add, i, 1)
		fb.Jmp("head")
		fb.Block("slice")
		cur := fb.Load(kir.W32, fb.GlobalAddr("current", 0), 0)
		t := fb.LoadField(proc, "ticks", cur)
		expired := fb.CmpI(kir.Eq, t, 0)
		fb.Br(expired, "resched", "dec")
		fb.Block("dec")
		fb.StoreField(proc, "ticks", cur, fb.SubI(t, 1))
		fb.Ret(0)
		fb.Block("resched")
		ts := fb.Const(Timeslice)
		fb.StoreField(proc, "ticks", cur, ts)
		fb.CallVoid("schedule")
		fb.Ret(0)
	}
	// do_exit(code): zombify and never come back.
	{
		fb := pb.Func("do_exit", 1, false)
		code := fb.Param(0)
		fb.Block("entry")
		cur := fb.Load(kir.W32, fb.GlobalAddr("current", 0), 0)
		fb.StoreField(proc, "exit_code", cur, code)
		zom := fb.Const(TaskZombie)
		fb.StoreField(proc, "state", cur, zom)
		fb.CallVoid("schedule")
		// Returning into a zombie means the scheduler is broken.
		fb.Bug()
		fb.Ret(0)
	}
}

// buildMM emits the page allocator: alloc_pages and free_pages_ok (Fig. 7's
// injection site).
func buildMM(pb *kir.ProgramBuilder, page, lock *kir.Struct) {
	{
		fb := pb.Func("alloc_pages", 0, true)
		fb.Block("entry")
		lk := fb.GlobalAddr("page_lock", 0)
		fb.CallVoid("spin_lock", lk)
		h := fb.Load(kir.W32, fb.GlobalAddr("free_head", 0), 0)
		empty := fb.CmpI(kir.Eq, h, 0)
		fb.Br(empty, "none", "take")
		fb.Block("none")
		fb.CallVoid("spin_unlock", lk)
		fb.RetI(0)
		fb.Block("take")
		idx := fb.SubI(h, 1)
		p := fb.Index(page, fb.GlobalAddr("mem_map", 0), idx)
		nx := fb.LoadField(page, "next", p)
		fb.Store(kir.W32, fb.GlobalAddr("free_head", 0), 0, nx)
		one := fb.Const(1)
		fb.StoreField(page, "count", p, one)
		fb.StoreField(page, "flags", p, one)
		nf := fb.Load(kir.W32, fb.GlobalAddr("nr_free_pages", 0), 0)
		fb.Store(kir.W32, fb.GlobalAddr("nr_free_pages", 0), 0, fb.SubI(nf, 1))
		fb.CallVoid("spin_unlock", lk)
		addr := fb.Add(fb.GlobalAddr("page_pool", 0), fb.MulI(idx, PageSize))
		fb.Ret(addr)
	}
	{
		fb := pb.Func("free_pages_ok", 1, false)
		addr := fb.Param(0)
		fb.Block("entry")
		off := fb.Bin(kir.Sub, addr, fb.GlobalAddr("page_pool", 0))
		idx := fb.BinImm(kir.Shr, off, 8) // PageSize == 256
		valid := fb.CmpI(kir.ULt, idx, NPAGE)
		fb.Br(valid, "chk", "bad")
		fb.Block("bad")
		fb.Bug()
		fb.Ret(0)
		fb.Block("chk")
		p := fb.Index(page, fb.GlobalAddr("mem_map", 0), idx)
		cnt := fb.LoadField(page, "count", p)
		inuse := fb.CmpI(kir.Eq, cnt, 1)
		fb.Br(inuse, "rel", "bad2")
		fb.Block("bad2")
		fb.Bug() // double free
		fb.Ret(0)
		fb.Block("rel")
		z := fb.Const(0)
		fb.StoreField(page, "count", p, z)
		fb.StoreField(page, "flags", p, z)
		lk := fb.GlobalAddr("page_lock", 0)
		fb.CallVoid("spin_lock", lk)
		h := fb.Load(kir.W32, fb.GlobalAddr("free_head", 0), 0)
		fb.StoreField(page, "next", p, h)
		fb.Store(kir.W32, fb.GlobalAddr("free_head", 0), 0, fb.AddI(idx, 1))
		nf := fb.Load(kir.W32, fb.GlobalAddr("nr_free_pages", 0), 0)
		fb.Store(kir.W32, fb.GlobalAddr("nr_free_pages", 0), 0, fb.AddI(nf, 1))
		fb.CallVoid("spin_unlock", lk)
		fb.Ret(0)
	}
}

// buildFS emits the buffer cache: getblk, sync_old_buffers, and the kupdate
// daemon (Fig. 8's injection site).
func buildFS(pb *kir.ProgramBuilder, buf, proc *kir.Struct) {
	// getblk(blocknr) -> buffer index; loads from disk on miss.
	{
		fb := pb.Func("getblk", 1, true)
		want := fb.Param(0)
		fb.Block("entry")
		lk := fb.GlobalAddr("buf_lock", 0)
		fb.CallVoid("spin_lock", lk)
		base := fb.GlobalAddr("buffer_heads", 0)
		i := fb.Var()
		fb.ConstTo(i, 0)
		fb.Jmp("head")
		fb.Block("head")
		c := fb.CmpI(kir.Lt, i, NBUF)
		fb.Br(c, "body", "miss")
		fb.Block("body")
		b := fb.Index(buf, base, i)
		st := fb.LoadField(buf, "state", b)
		valid := fb.CmpI(kir.Ne, st, 0)
		fb.Br(valid, "cmpno", "next")
		fb.Block("cmpno")
		bn := fb.LoadField(buf, "blocknr", b)
		hit := fb.Cmp(kir.Eq, bn, want)
		fb.Br(hit, "found", "next")
		fb.Block("found")
		fb.CallVoid("spin_unlock", lk)
		fb.Ret(i)
		fb.Block("next")
		fb.BinImmTo(i, kir.Add, i, 1)
		fb.Jmp("head")
		fb.Block("miss")
		clk := fb.Load(kir.W32, fb.GlobalAddr("buf_clock", 0), 0)
		victim := fb.AndI(clk, NBUF-1)
		fb.Store(kir.W32, fb.GlobalAddr("buf_clock", 0), 0, fb.AddI(clk, 1))
		vb := fb.Index(buf, base, victim)
		// b_data travels in the buffer head, as on the real kernel: a
		// corrupted pointer here is dereferenced by the copies below.
		vdata := fb.LoadField(buf, "data", vb)
		d := fb.LoadField(buf, "dirty", vb)
		dirty := fb.CmpI(kir.Ne, d, 0)
		fb.Br(dirty, "writeback", "load")
		fb.Block("writeback")
		obn := fb.LoadField(buf, "blocknr", vb)
		odst := fb.Add(fb.GlobalAddr("disk", 0), fb.MulI(obn, BufSize))
		sz := fb.Const(BufSize)
		fb.CallVoid("memcpy", odst, vdata, sz)
		z := fb.Const(0)
		fb.StoreField(buf, "dirty", vb, z)
		fb.Jmp("load")
		fb.Block("load")
		src := fb.Add(fb.GlobalAddr("disk", 0), fb.MulI(want, BufSize))
		sz2 := fb.Const(BufSize)
		fb.CallVoid("memcpy", vdata, src, sz2)
		fb.StoreField(buf, "blocknr", vb, want)
		one := fb.Const(1)
		fb.StoreField(buf, "state", vb, one)
		fb.CallVoid("spin_unlock", lk)
		fb.Ret(victim)
	}
	// sync_old_buffers(): flush dirty buffers back to disk.
	{
		fb := pb.Func("sync_old_buffers", 0, false)
		fb.Block("entry")
		base := fb.GlobalAddr("buffer_heads", 0)
		i := fb.Var()
		fb.ConstTo(i, 0)
		fb.Jmp("head")
		fb.Block("head")
		c := fb.CmpI(kir.Lt, i, NBUF)
		fb.Br(c, "body", "done")
		fb.Block("body")
		b := fb.Index(buf, base, i)
		d := fb.LoadField(buf, "dirty", b)
		dirty := fb.CmpI(kir.Ne, d, 0)
		fb.Br(dirty, "flush", "next")
		fb.Block("flush")
		lk := fb.GlobalAddr("buf_lock", 0)
		fb.CallVoid("spin_lock", lk)
		bn := fb.LoadField(buf, "blocknr", b)
		dst := fb.Add(fb.GlobalAddr("disk", 0), fb.MulI(bn, BufSize))
		src := fb.LoadField(buf, "data", b)
		sz := fb.Const(BufSize)
		fb.CallVoid("memcpy", dst, src, sz)
		z := fb.Const(0)
		fb.StoreField(buf, "dirty", b, z)
		fb.CallVoid("spin_unlock", lk)
		fb.Jmp("next")
		fb.Block("next")
		fb.BinImmTo(i, kir.Add, i, 1)
		fb.Jmp("head")
		fb.Block("done")
		fb.Ret(0)
	}
	// kupdate(): the dirty-buffer flush daemon (the Figure 8 shape: the task
	// pointer lives on the kernel stack and its ->state is stored through it).
	{
		fb := pb.Func("kupdate", 0, false)
		fb.Block("entry")
		fb.Jmp("loop")
		fb.Block("loop")
		tsk := fb.Load(kir.W32, fb.GlobalAddr("current", 0), 0)
		st := fb.Const(TaskInterruptible)
		fb.StoreField(proc, "state", tsk, st)
		iv := fb.Const(40)
		fb.CallVoid("schedule_timeout", iv)
		fb.CallVoid("sync_old_buffers")
		fb.Jmp("loop")
	}
}

// buildJournal emits the journaling machinery and the kjournald daemon (the
// Figure 9 shape: transaction = journal->j_running_transaction, then
// transaction->t_expires).
func buildJournal(pb *kir.ProgramBuilder, journal, trans, proc *kir.Struct) {
	{
		fb := pb.Func("journal_commit", 1, false)
		t := fb.Param(0)
		fb.Block("entry")
		jn := fb.GlobalAddr("journal", 0)
		n := fb.LoadField(journal, "j_commits", jn)
		fb.StoreField(journal, "j_commits", jn, fb.AddI(n, 1))
		seq := fb.LoadField(journal, "j_commit_sequence", jn)
		seq1 := fb.AddI(seq, 1)
		fb.StoreField(journal, "j_commit_sequence", jn, seq1)
		z := fb.Const(0)
		fb.StoreField(trans, "t_nblocks", t, z)
		fb.StoreField(trans, "t_state", t, z)
		// Rotate to the other transaction descriptor.
		idx := fb.AndI(seq1, 1)
		nt := fb.Index(trans, fb.GlobalAddr("transactions", 0), idx)
		one := fb.Const(1)
		fb.StoreField(trans, "t_state", nt, one)
		j := fb.Load(kir.W32, fb.GlobalAddr("jiffies", 0), 0)
		fb.StoreField(trans, "t_expires", nt, fb.AddI(j, 20))
		fb.StoreField(journal, "j_running_transaction", jn, nt)
		fb.Ret(0)
	}
	{
		fb := pb.Func("kjournald", 0, false)
		fb.Block("entry")
		fb.Jmp("loop")
		fb.Block("loop")
		lk := fb.GlobalAddr("journal_lock", 0)
		fb.CallVoid("spin_lock", lk)
		jn := fb.GlobalAddr("journal", 0)
		t := fb.LoadField(journal, "j_running_transaction", jn)
		have := fb.CmpI(kir.Ne, t, 0)
		fb.Br(have, "chk", "skip")
		fb.Block("chk")
		exp := fb.LoadField(trans, "t_expires", t)
		j := fb.Load(kir.W32, fb.GlobalAddr("jiffies", 0), 0)
		due := fb.Cmp(kir.Le, exp, j)
		fb.Br(due, "commit", "skip")
		fb.Block("commit")
		fb.CallVoid("journal_commit", t)
		fb.Jmp("skip")
		fb.Block("skip")
		fb.CallVoid("spin_unlock", lk)
		cur := fb.Load(kir.W32, fb.GlobalAddr("current", 0), 0)
		st := fb.Const(TaskInterruptible)
		fb.StoreField(proc, "state", cur, st)
		iv := fb.Const(25)
		fb.CallVoid("schedule_timeout", iv)
		fb.Jmp("loop")
	}
}

// buildNet emits the network transmit path: alloc_skb (Fig. 7's crash site),
// net_tx, free_skb.
func buildNet(pb *kir.ProgramBuilder, skb, nst *kir.Struct) {
	{
		fb := pb.Func("alloc_skb", 1, true)
		n := fb.Param(0)
		fb.Block("entry")
		lk := fb.GlobalAddr("net_lock", 0)
		fb.CallVoid("spin_lock", lk)
		base := fb.GlobalAddr("skbs", 0)
		i := fb.Var()
		fb.ConstTo(i, 0)
		fb.Jmp("head")
		fb.Block("head")
		c := fb.CmpI(kir.Lt, i, NSKB)
		fb.Br(c, "body", "none")
		fb.Block("body")
		sk := fb.Index(skb, base, i)
		u := fb.LoadField(skb, "used", sk)
		free := fb.CmpI(kir.Eq, u, 0)
		fb.Br(free, "take", "next")
		fb.Block("take")
		one := fb.Const(1)
		fb.StoreField(skb, "used", sk, one)
		fb.StoreField(skb, "len", sk, n)
		data := fb.Add(fb.GlobalAddr("skb_data", 0), fb.MulI(i, SkbSize))
		fb.StoreField(skb, "data", sk, data)
		fb.CallVoid("spin_unlock", lk)
		fb.Ret(fb.AddI(i, 1))
		fb.Block("next")
		fb.BinImmTo(i, kir.Add, i, 1)
		fb.Jmp("head")
		fb.Block("none")
		ns := fb.GlobalAddr("netstats", 0)
		d := fb.LoadField(nst, "drops", ns)
		fb.StoreField(nst, "drops", ns, fb.AddI(d, 1))
		fb.CallVoid("spin_unlock", lk)
		fb.RetI(0)
	}
	{
		fb := pb.Func("free_skb", 1, false)
		h := fb.Param(0)
		fb.Block("entry")
		lk := fb.GlobalAddr("net_lock", 0)
		fb.CallVoid("spin_lock", lk)
		sk := fb.Index(skb, fb.GlobalAddr("skbs", 0), fb.SubI(h, 1))
		z := fb.Const(0)
		fb.StoreField(skb, "used", sk, z)
		fb.CallVoid("spin_unlock", lk)
		fb.Ret(0)
	}
	{
		fb := pb.Func("net_tx", 2, false)
		_, n := fb.Param(0), fb.Param(1)
		fb.Block("entry")
		lk := fb.GlobalAddr("net_lock", 0)
		fb.CallVoid("spin_lock", lk)
		ns := fb.GlobalAddr("netstats", 0)
		pk := fb.LoadField(nst, "tx_packets", ns)
		fb.StoreField(nst, "tx_packets", ns, fb.AddI(pk, 1))
		by := fb.LoadField(nst, "tx_bytes", ns)
		fb.StoreField(nst, "tx_bytes", ns, fb.Add(by, n))
		fb.CallVoid("spin_unlock", lk)
		fb.Ret(0)
	}
}

// buildPipe emits the pipe ring buffer: a single kernel pipe with
// non-blocking reads and writes (user space retries with sys_yield), the
// UnixBench pipe-throughput substrate.
func buildPipe(pb *kir.ProgramBuilder, pipe *kir.Struct) {
	// sys_pipewrite(ubuf, n) -> bytes written
	{
		fb := pb.Func("sys_pipewrite", 3, true)
		fb.Block("entry")
		lk := fb.GlobalAddr("kernel_flag", 0)
		fb.CallVoid("spin_lock", lk)
		pp := fb.GlobalAddr("pipe0", 0)
		cnt := fb.LoadField(pipe, "count", pp)
		space := fb.Bin(kir.Sub, fb.Const(PipeSize), cnt)
		n := fb.AndI(fb.Param(1), PipeSize-1)
		useN := fb.Cmp(kir.Le, n, space)
		m := fb.Var()
		fb.Br(useN, "taken", "clamped")
		fb.Block("taken")
		fb.MovTo(m, n)
		fb.Jmp("copy")
		fb.Block("clamped")
		fb.MovTo(m, space)
		fb.Jmp("copy")
		fb.Block("copy")
		head := fb.LoadField(pipe, "head", pp)
		buf := fb.GlobalAddr("pipe_buf", 0)
		i := fb.Var()
		fb.ConstTo(i, 0)
		fb.Jmp("loop")
		fb.Block("loop")
		c := fb.Cmp(kir.Lt, i, m)
		fb.Br(c, "body", "done")
		fb.Block("body")
		v := fb.Load(kir.W8, fb.Add(fb.Param(0), i), 0)
		slot := fb.AndI(fb.Add(head, i), PipeSize-1)
		fb.Store(kir.W8, fb.Add(buf, slot), 0, v)
		fb.BinImmTo(i, kir.Add, i, 1)
		fb.Jmp("loop")
		fb.Block("done")
		fb.StoreField(pipe, "head", pp, fb.AndI(fb.Add(head, m), PipeSize-1))
		fb.StoreField(pipe, "count", pp, fb.Add(cnt, m))
		fb.CallVoid("spin_unlock", lk)
		fb.Ret(m)
	}
	// sys_piperead(ubuf, n) -> bytes read
	{
		fb := pb.Func("sys_piperead", 3, true)
		fb.Block("entry")
		lk := fb.GlobalAddr("kernel_flag", 0)
		fb.CallVoid("spin_lock", lk)
		pp := fb.GlobalAddr("pipe0", 0)
		cnt := fb.LoadField(pipe, "count", pp)
		n := fb.AndI(fb.Param(1), PipeSize-1)
		useN := fb.Cmp(kir.Le, n, cnt)
		m := fb.Var()
		fb.Br(useN, "taken", "clamped")
		fb.Block("taken")
		fb.MovTo(m, n)
		fb.Jmp("copy")
		fb.Block("clamped")
		fb.MovTo(m, cnt)
		fb.Jmp("copy")
		fb.Block("copy")
		tail := fb.LoadField(pipe, "tail", pp)
		buf := fb.GlobalAddr("pipe_buf", 0)
		i := fb.Var()
		fb.ConstTo(i, 0)
		fb.Jmp("loop")
		fb.Block("loop")
		c := fb.Cmp(kir.Lt, i, m)
		fb.Br(c, "body", "done")
		fb.Block("body")
		slot := fb.AndI(fb.Add(tail, i), PipeSize-1)
		v := fb.Load(kir.W8, fb.Add(buf, slot), 0)
		fb.Store(kir.W8, fb.Add(fb.Param(0), i), 0, v)
		fb.BinImmTo(i, kir.Add, i, 1)
		fb.Jmp("loop")
		fb.Block("done")
		fb.StoreField(pipe, "tail", pp, fb.AndI(fb.Add(tail, m), PipeSize-1))
		fb.StoreField(pipe, "count", pp, fb.Bin(kir.Sub, cnt, m))
		fb.CallVoid("spin_unlock", lk)
		fb.Ret(m)
	}
}

// buildSyscalls emits each sys_* handler and the dispatcher.
func buildSyscalls(pb *kir.ProgramBuilder, proc, stat *kir.Struct) {
	sys := func(name string) *kir.FuncBuilder {
		fb := pb.Func(name, 3, true)
		fb.Block("entry")
		return fb
	}

	{
		fb := sys("sys_getpid")
		cur := fb.Load(kir.W32, fb.GlobalAddr("current", 0), 0)
		fb.Ret(fb.LoadField(proc, "pid", cur))
	}
	{
		fb := sys("sys_yield")
		fb.CallVoid("schedule")
		fb.RetI(0)
	}
	{
		fb := sys("sys_read") // (block, ubuf, n)
		blk := fb.AndI(fb.Param(0), NBLOCK-1)
		n := fb.AndI(fb.Param(2), BufSize-1)
		i := fb.Call("getblk", blk)
		bhS := pb.Program().Struct("buffer_head")
		bh := fb.Index(bhS, fb.GlobalAddr("buffer_heads", 0), i)
		src := fb.LoadField(bhS, "data", bh)
		fb.CallVoid("memcpy", fb.Param(1), src, n)
		fb.Ret(n)
	}
	{
		fb := sys("sys_write") // (block, ubuf, n)
		blk := fb.AndI(fb.Param(0), NBLOCK-1)
		n := fb.AndI(fb.Param(2), BufSize-1)
		i := fb.Call("getblk", blk)
		bufS := pb.Program().Struct("buffer_head")
		b := fb.Index(bufS, fb.GlobalAddr("buffer_heads", 0), i)
		dst := fb.LoadField(bufS, "data", b)
		fb.CallVoid("memcpy", dst, fb.Param(1), n)
		one := fb.Const(1)
		fb.StoreField(bufS, "dirty", b, one)
		sz := fb.Const(BufSize)
		cs := fb.Call("csum_partial", dst, sz)
		fb.StoreField(bufS, "csum", b, cs)
		// Writing dirties the running transaction too.
		jS := pb.Program().Struct("journal_t")
		tS := pb.Program().Struct("transaction_t")
		jn := fb.GlobalAddr("journal", 0)
		t := fb.LoadField(jS, "j_running_transaction", jn)
		hasT := fb.CmpI(kir.Ne, t, 0)
		fb.Br(hasT, "dirtyt", "out")
		fb.Block("dirtyt")
		nb := fb.LoadField(tS, "t_nblocks", t)
		fb.StoreField(tS, "t_nblocks", t, fb.AddI(nb, 1))
		fb.Jmp("out")
		fb.Block("out")
		fb.Ret(n)
	}
	{
		fb := sys("sys_send") // (ubuf, n)
		n := fb.AndI(fb.Param(1), SkbSize-1)
		h := fb.Call("alloc_skb", n)
		got := fb.CmpI(kir.Ne, h, 0)
		fb.Br(got, "copy", "drop")
		fb.Block("drop")
		fb.RetI(-1)
		fb.Block("copy")
		skbS := pb.Program().Struct("sk_buff")
		sk := fb.Index(skbS, fb.GlobalAddr("skbs", 0), fb.SubI(h, 1))
		data := fb.LoadField(skbS, "data", sk)
		fb.CallVoid("memcpy", data, fb.Param(0), n)
		cs := fb.Call("csum_partial", data, n)
		fb.StoreField(skbS, "csum", sk, cs)
		fb.CallVoid("net_tx", h, n)
		fb.CallVoid("free_skb", h)
		fb.Ret(cs)
	}
	{
		fb := sys("sys_sleep") // (ticks)
		cur := fb.Load(kir.W32, fb.GlobalAddr("current", 0), 0)
		st := fb.Const(TaskInterruptible)
		fb.StoreField(proc, "state", cur, st)
		fb.CallVoid("schedule_timeout", fb.Param(0))
		fb.RetI(0)
	}
	{
		fb := sys("sys_exit") // (code)
		fb.CallVoid("do_exit", fb.Param(0))
		fb.RetI(0)
	}
	{
		fb := sys("sys_memstress") // (iterations)
		n := fb.AndI(fb.Param(0), 63)
		i := fb.Var()
		ok := fb.Var()
		fb.ConstTo(i, 0)
		fb.ConstTo(ok, 0)
		fb.Jmp("head")
		fb.Block("head")
		c := fb.Cmp(kir.Lt, i, n)
		fb.Br(c, "body", "done")
		fb.Block("body")
		a := fb.Call("alloc_pages")
		have := fb.CmpI(kir.Ne, a, 0)
		fb.Br(have, "useit", "next")
		fb.Block("useit")
		// Touch the page, then free it through free_pages_ok.
		v := fb.AddI(i, 0x5A)
		sz := fb.Const(32)
		fb.CallVoid("memset", a, v, sz)
		fb.CallVoid("free_pages_ok", a)
		fb.BinImmTo(ok, kir.Add, ok, 1)
		fb.Jmp("next")
		fb.Block("next")
		fb.BinImmTo(i, kir.Add, i, 1)
		fb.Jmp("head")
		fb.Block("done")
		fb.Ret(ok)
	}
	{
		fb := sys("sys_jiffies")
		fb.Ret(fb.Load(kir.W32, fb.GlobalAddr("jiffies", 0), 0))
	}
	{
		fb := sys("sys_active") // count of live user processes
		base := fb.GlobalAddr("task_ptrs", 0)
		i := fb.Var()
		n := fb.Var()
		fb.ConstTo(i, 0)
		fb.ConstTo(n, 0)
		fb.Jmp("head")
		fb.Block("head")
		c := fb.CmpI(kir.Lt, i, NPROC)
		fb.Br(c, "body", "done")
		fb.Block("body")
		p := fb.Load(kir.W32, fb.Add(base, fb.MulI(i, 4)), 0)
		pid := fb.LoadField(proc, "pid", p)
		alive := fb.CmpI(kir.Ne, pid, 0)
		fb.Br(alive, "chkuser", "next")
		fb.Block("chkuser")
		fl := fb.LoadField(proc, "flags", p)
		usr := fb.AndI(fl, PFUser)
		isUser := fb.CmpI(kir.Ne, usr, 0)
		fb.Br(isUser, "chkzombie", "next")
		fb.Block("chkzombie")
		st := fb.LoadField(proc, "state", p)
		gone := fb.CmpI(kir.Eq, st, TaskZombie)
		fb.Br(gone, "next", "count")
		fb.Block("count")
		fb.BinImmTo(n, kir.Add, n, 1)
		fb.Jmp("next")
		fb.Block("next")
		fb.BinImmTo(i, kir.Add, i, 1)
		fb.Jmp("head")
		fb.Block("done")
		fb.Ret(n)
	}
	{
		fb := sys("sys_putresult") // (slot, value)
		lk := fb.GlobalAddr("kernel_flag", 0)
		fb.CallVoid("spin_lock", lk)
		slot := fb.AndI(fb.Param(0), NPROC-1)
		addr := fb.Add(fb.GlobalAddr("results", 0), fb.MulI(slot, 4))
		fb.Store(kir.W32, addr, 0, fb.Param(1))
		fb.CallVoid("spin_unlock", lk)
		fb.RetI(0)
	}
	{
		fb := sys("sys_getresult") // (slot)
		lk := fb.GlobalAddr("kernel_flag", 0)
		fb.CallVoid("spin_lock", lk)
		slot := fb.AndI(fb.Param(0), NPROC-1)
		addr := fb.Add(fb.GlobalAddr("results", 0), fb.MulI(slot, 4))
		v := fb.Load(kir.W32, addr, 0)
		fb.CallVoid("spin_unlock", lk)
		fb.Ret(v)
	}

	// syscall_entry(no, a, b, c): table dispatch.
	{
		fb := pb.Func("syscall_entry", 4, true)
		no := fb.Param(0)
		fb.Block("entry")
		ks := fb.GlobalAddr("kstat", 0)
		n := fb.LoadField(stat, "syscalls", ks)
		fb.StoreField(stat, "syscalls", ks, fb.AddI(n, 1))
		cur := fb.Load(kir.W32, fb.GlobalAddr("current", 0), 0)
		sc := fb.LoadField(proc, "syscalls", cur)
		fb.StoreField(proc, "syscalls", cur, fb.AddI(sc, 1))
		ok := fb.CmpI(kir.ULt, no, NSYS)
		fb.Br(ok, "look", "bad")
		fb.Block("bad")
		fb.RetI(-1)
		fb.Block("look")
		tbl := fb.GlobalAddr("sys_call_table", 0)
		fp := fb.Load(kir.W32, fb.Add(tbl, fb.MulI(no, 4)), 0)
		set := fb.CmpI(kir.Ne, fp, 0)
		fb.Br(set, "go", "bad2")
		fb.Block("bad2")
		fb.RetI(-1)
		fb.Block("go")
		r := fb.CallPtr(fp, true, fb.Param(1), fb.Param(2), fb.Param(3))
		fb.Ret(r)
	}
}

// buildBoot emits kmain (one-shot initialization, called by the boot loader)
// and kstart (the idle loop the machine enters on every reboot).
func buildBoot(pb *kir.ProgramBuilder, proc, page, journal, trans *kir.Struct) {
	{
		fb := pb.Func("kmain", 0, false)
		fb.Block("entry")
		// Page allocator free list.
		base := fb.GlobalAddr("mem_map", 0)
		i := fb.Var()
		fb.ConstTo(i, 0)
		fb.Jmp("pghead")
		fb.Block("pghead")
		c := fb.CmpI(kir.Lt, i, NPAGE)
		fb.Br(c, "pgbody", "pgdone")
		fb.Block("pgbody")
		p := fb.Index(page, base, i)
		last := fb.CmpI(kir.Eq, i, NPAGE-1)
		fb.Br(last, "pglast", "pgmid")
		fb.Block("pglast")
		z := fb.Const(0)
		fb.StoreField(page, "next", p, z)
		fb.Jmp("pgnext")
		fb.Block("pgmid")
		fb.StoreField(page, "next", p, fb.AddI(i, 2))
		fb.Jmp("pgnext")
		fb.Block("pgnext")
		fb.BinImmTo(i, kir.Add, i, 1)
		fb.Jmp("pghead")
		fb.Block("pgdone")
		one := fb.Const(1)
		fb.Store(kir.W32, fb.GlobalAddr("free_head", 0), 0, one)
		np := fb.Const(NPAGE)
		fb.Store(kir.W32, fb.GlobalAddr("nr_free_pages", 0), 0, np)

		// Buffer heads carry their payload pointers (b_data).
		bhS := pb.Program().Struct("buffer_head")
		bbase := fb.GlobalAddr("buffer_heads", 0)
		bd := fb.GlobalAddr("buffer_data", 0)
		bi := fb.Var()
		fb.ConstTo(bi, 0)
		fb.Jmp("bhead")
		fb.Block("bhead")
		bc2 := fb.CmpI(kir.Lt, bi, NBUF)
		fb.Br(bc2, "bbody", "bdone")
		fb.Block("bbody")
		bh := fb.Index(bhS, bbase, bi)
		fb.StoreField(bhS, "data", bh, fb.Add(bd, fb.MulI(bi, BufSize)))
		fb.BinImmTo(bi, kir.Add, bi, 1)
		fb.Jmp("bhead")
		fb.Block("bdone")

		// Journal: transaction 0 running.
		t0 := fb.GlobalAddr("transactions", 0)
		fb.StoreField(trans, "t_state", t0, one)
		exp := fb.Const(20)
		fb.StoreField(trans, "t_expires", t0, exp)
		jn := fb.GlobalAddr("journal", 0)
		fb.StoreField(journal, "j_running_transaction", jn, t0)

		// Syscall table (in syscall-number order; emission must be
		// deterministic so both images are reproducible).
		tbl := fb.GlobalAddr("sys_call_table", 0)
		handlers := []string{
			SysGetpid:    "sys_getpid",
			SysYield:     "sys_yield",
			SysRead:      "sys_read",
			SysWrite:     "sys_write",
			SysSend:      "sys_send",
			SysSleep:     "sys_sleep",
			SysExit:      "sys_exit",
			SysMemstress: "sys_memstress",
			SysJiffies:   "sys_jiffies",
			SysActive:    "sys_active",
			SysPutResult: "sys_putresult",
			SysGetResult: "sys_getresult",
			SysPipeWrite: "sys_pipewrite",
			SysPipeRead:  "sys_piperead",
		}
		for no, name := range handlers {
			fb.Store(kir.W32, tbl, int32(4*no), fb.FuncAddr(name))
		}
		fb.Ret(0)
	}
	{
		fb := pb.Func("kstart", 0, false)
		fb.Block("entry")
		fb.IrqOn()
		fb.Jmp("idle")
		fb.Block("idle")
		fb.Halt()
		fb.Jmp("idle")
	}
}
