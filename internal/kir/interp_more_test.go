package kir

// Direct in-package tests of the reference interpreter: arithmetic oracle
// properties against host semantics, and the builder conveniences the kernel
// source uses (heap globals, field addressing, void calls, syscalls, irq
// toggles, context switches).

import (
	"testing"
	"testing/quick"

	"kfi/internal/isa"
)

// evalBin runs one binary operation through a fresh interpreted program.
func evalBin(t *testing.T, op BinOp, a, b uint32) (uint32, error) {
	t.Helper()
	pb := NewProgram()
	fb := pb.Func("f", 2, true)
	fb.Block("entry")
	fb.Ret(fb.Bin(op, fb.Param(0), fb.Param(1)))
	ip, err := NewInterp(pb.Program(), NewLayout(isa.CISC))
	if err != nil {
		t.Fatal(err)
	}
	return ip.Call("f", a, b)
}

func TestInterpBinOpsMatchHostProperty(t *testing.T) {
	// Oracle property: the interpreter's arithmetic agrees with the host's
	// two's-complement semantics for every operator and operand pair.
	ops := map[BinOp]func(a, b uint32) uint32{
		Add: func(a, b uint32) uint32 { return a + b },
		Sub: func(a, b uint32) uint32 { return a - b },
		Mul: func(a, b uint32) uint32 { return uint32(int32(a) * int32(b)) },
		And: func(a, b uint32) uint32 { return a & b },
		Or:  func(a, b uint32) uint32 { return a | b },
		Xor: func(a, b uint32) uint32 { return a ^ b },
		Shl: func(a, b uint32) uint32 { return a << (b & 31) },
		Shr: func(a, b uint32) uint32 { return a >> (b & 31) },
		Sar: func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) },
	}
	for op, host := range ops {
		op, host := op, host
		prop := func(a, b uint32) bool {
			got, err := evalBin(t, op, a, b)
			return err == nil && got == host(a, b)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("op %d: %v", op, err)
		}
	}
}

func TestInterpDivRemMatchHostProperty(t *testing.T) {
	prop := func(a, b uint32) bool {
		q, qErr := evalBin(t, Div, a, b)
		r, rErr := evalBin(t, Rem, a, b)
		if b == 0 || (int32(a) == -1<<31 && int32(b) == -1) {
			// Division errors must be reported, never a wrong value.
			return qErr == ErrDivide && rErr == ErrDivide
		}
		return qErr == nil && rErr == nil &&
			int32(q) == int32(a)/int32(b) && int32(r) == int32(a)%int32(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
	// The two singular cases explicitly (quick rarely generates them).
	if _, err := evalBin(t, Div, 5, 0); err != ErrDivide {
		t.Errorf("div by zero: %v", err)
	}
	if _, err := evalBin(t, Div, 1<<31, 0xFFFFFFFF); err != ErrDivide {
		t.Errorf("INT_MIN / -1: %v", err)
	}
}

func TestInterpPredicatesMatchHostProperty(t *testing.T) {
	preds := map[Pred]func(a, b uint32) bool{
		Eq:  func(a, b uint32) bool { return a == b },
		Ne:  func(a, b uint32) bool { return a != b },
		Lt:  func(a, b uint32) bool { return int32(a) < int32(b) },
		Le:  func(a, b uint32) bool { return int32(a) <= int32(b) },
		Gt:  func(a, b uint32) bool { return int32(a) > int32(b) },
		Ge:  func(a, b uint32) bool { return int32(a) >= int32(b) },
		ULt: func(a, b uint32) bool { return a < b },
		ULe: func(a, b uint32) bool { return a <= b },
		UGt: func(a, b uint32) bool { return a > b },
		UGe: func(a, b uint32) bool { return a >= b },
	}
	for p, host := range preds {
		p, host := p, host
		prop := func(a, b uint32) bool {
			pb := NewProgram()
			fb := pb.Func("f", 2, true)
			fb.Block("entry")
			fb.Ret(fb.Cmp(p, fb.Param(0), fb.Param(1)))
			ip, err := NewInterp(pb.Program(), NewLayout(isa.RISC))
			if err != nil {
				t.Fatal(err)
			}
			got, err := ip.Call("f", a, b)
			want := uint32(0)
			if host(a, b) {
				want = 1
			}
			return err == nil && got == want
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
			t.Errorf("pred %d: %v", p, err)
		}
		// Equal operands pin the boundary each ordering predicate straddles.
		pb := NewProgram()
		fb := pb.Func("f", 2, true)
		fb.Block("entry")
		fb.Ret(fb.Cmp(p, fb.Param(0), fb.Param(1)))
		ip, _ := NewInterp(pb.Program(), NewLayout(isa.RISC))
		got, _ := ip.Call("f", 7, 7)
		want := uint32(0)
		if host(7, 7) {
			want = 1
		}
		if got != want {
			t.Errorf("pred %d on equal operands = %d, want %d", p, got, want)
		}
	}
}

func TestBuilderConveniences(t *testing.T) {
	pb := NewProgram()
	s := pb.Struct("pair", Field{Name: "x", Width: W32}, Field{Name: "y", Width: W16})
	pb.GlobalStruct("gp", s, 1)
	heap := pb.GlobalHeap("arena", 64)
	if !heap.Heap {
		t.Fatal("GlobalHeap did not mark the global as heap-backed")
	}

	helper := pb.Func("bump", 1, false) // void function for CallVoid
	helper.Block("entry")
	addr := helper.GlobalAddr("gp", 0)
	old := helper.LoadField(s, "x", addr)
	helper.StoreField(s, "x", addr, helper.Add(old, helper.Param(0)))
	helper.RetI(0)

	fb := pb.Func("main", 1, true)
	if fb.Fn() == nil || fb.Fn().Name != "main" {
		t.Fatal("Fn accessor broken")
	}
	fb.Local("buf", W8, 8)
	fb.Block("entry")
	fb.IrqOff()
	fb.IrqOn()
	fb.CallVoid("bump", fb.Const(40))
	fb.CallVoid("bump", fb.Const(2))

	// FieldAddr + explicit Load equals LoadField.
	base := fb.GlobalAddr("gp", 0)
	fx := fb.FieldAddr(s, "x", base)
	viaAddr := fb.Load(W32, fx, 0)

	// Mov copies; AndI masks.
	copied := fb.Mov(viaAddr)
	masked := fb.AndI(copied, 0xFF)

	// LoadS sign-extends a negative byte from the local buffer.
	buf := fb.LocalAddr("buf", 0)
	fb.Store(W8, buf, 0, fb.Const(-3)) // 0xFD
	sx := fb.LoadS(W8, buf, 0)

	// result = masked + (sx + 3)  → masked when sx == -3.
	fb.Ret(fb.Add(masked, fb.Add(sx, fb.Const(3))))

	ip, err := NewInterp(pb.Program(), NewLayout(isa.CISC))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ip.Call("main", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("main = %d, want 42 (two bumps of the global field)", got)
	}
	if ip.GlobalAddr("gp") == 0 {
		t.Error("GlobalAddr returned 0 for a laid-out global")
	}
	raw, err := ip.ReadBytes(ip.GlobalAddr("gp"), 4)
	if err != nil || len(raw) != 4 {
		t.Fatalf("ReadBytes: %v (%d bytes)", err, len(raw))
	}
}

func TestInterpSyscallHookAndCtxSw(t *testing.T) {
	pb := NewProgram()
	fb := pb.Func("main", 0, true)
	fb.Block("entry")
	v := fb.Syscall(fb.Const(7), fb.Const(10), fb.Const(3))
	// CtxSw is a no-op under the single-context interpreter.
	fb.CtxSw(fb.Const(0), fb.Const(1))
	fb.Ret(v)

	ip, err := NewInterp(pb.Program(), NewLayout(isa.RISC))
	if err != nil {
		t.Fatal(err)
	}
	// Without a hook, KSyscall is an error, not a silent zero.
	if _, err := ip.Call("main"); err == nil {
		t.Fatal("KSyscall without hook should error")
	}
	ip.Syscall = func(no, a, b, c uint32) (uint32, error) {
		if no != 7 || a != 10 || b != 3 {
			t.Errorf("syscall args = (%d, %d, %d)", no, a, b)
		}
		return a + b, nil
	}
	got, err := ip.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if got != 13 {
		t.Errorf("syscall result = %d, want 13", got)
	}
}

func TestForwardCallResultIsUsable(t *testing.T) {
	// Regression: a call emitted before its callee is defined must still
	// carry the result (the caller is built first here).
	pb := NewProgram()
	fb := pb.Func("caller", 1, true)
	fb.Block("entry")
	v := fb.Call("callee", fb.Param(0))
	fb.Ret(fb.Add(v, v))
	cal := pb.Func("callee", 1, true)
	cal.Block("entry")
	cal.Ret(cal.BinImm(Add, cal.Param(0), 10))

	ip, err := NewInterp(pb.Program(), NewLayout(isa.CISC))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ip.Call("caller", 6)
	if err != nil {
		t.Fatal(err)
	}
	if got != 32 {
		t.Errorf("caller(6) = %d, want 32", got)
	}
}

func TestVoidCallResultDiscardedWhenUnused(t *testing.T) {
	pb := NewProgram()
	fb := pb.Func("caller", 0, true)
	fb.Block("entry")
	fb.Call("voidfn") // result register allocated, never read
	fb.RetI(7)
	vf := pb.Func("voidfn", 0, false)
	vf.Block("entry")
	vf.RetI(0)

	prog := pb.Program()
	if err := prog.Validate(); err != nil {
		t.Fatalf("unused void-call result should validate: %v", err)
	}
	// The discard pass must have zeroed the call's Dst.
	call := &prog.Funcs[0].Blocks[0].Instrs[0]
	if call.Kind != KCall || call.Dst != 0 {
		t.Errorf("call instr = %+v, want Dst cleared", call)
	}
}

func TestVoidCallResultUseIsRejected(t *testing.T) {
	pb := NewProgram()
	fb := pb.Func("caller", 0, true)
	fb.Block("entry")
	v := fb.Call("voidfn")
	fb.Ret(v) // reading a void function's result
	vf := pb.Func("voidfn", 0, false)
	vf.Block("entry")
	vf.RetI(0)

	if err := pb.Program().Validate(); err == nil {
		t.Error("use of a void call result passed validation")
	}
}
