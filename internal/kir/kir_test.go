package kir

import (
	"errors"
	"testing"

	"kfi/internal/isa"
)

// buildFib builds: fib(n) iterative.
func buildFib(pb *ProgramBuilder) {
	fb := pb.Func("fib", 1, true)
	n := fb.Param(0)
	fb.Block("entry")
	a := fb.Var()
	b := fb.Var()
	i := fb.Var()
	fb.ConstTo(a, 0)
	fb.ConstTo(b, 1)
	fb.ConstTo(i, 0)
	fb.Jmp("loop")
	fb.Block("loop")
	c := fb.Cmp(Lt, i, n)
	fb.Br(c, "body", "done")
	fb.Block("body")
	t := fb.Add(a, b)
	fb.MovTo(a, b)
	fb.MovTo(b, t)
	fb.BinImmTo(i, Add, i, 1)
	fb.Jmp("loop")
	fb.Block("done")
	fb.Ret(a)
}

func TestInterpFib(t *testing.T) {
	pb := NewProgram()
	buildFib(pb)
	ip, err := NewInterp(pb.Program(), NewLayout(isa.CISC))
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct{ n, want uint32 }{{0, 0}, {1, 1}, {2, 1}, {7, 13}, {20, 6765}}
	for _, tt := range tests {
		got, err := ip.Call("fib", tt.n)
		if err != nil {
			t.Fatalf("fib(%d): %v", tt.n, err)
		}
		if got != tt.want {
			t.Errorf("fib(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestInterpGlobalsAndFields(t *testing.T) {
	pb := NewProgram()
	s := pb.Struct("proc", F32("pid"), F8("state"), F16("prio"), F32("ticks"))
	pb.GlobalStruct("procs", s, 4,
		// element 0: pid=10, state=1, prio=2, ticks=0
		10, 1, 2, 0,
		// element 1: pid=11, state=0, prio=5, ticks=100
		11, 0, 5, 100,
	)
	fb := pb.Func("sum_prios", 0, true)
	fb.Block("entry")
	base := fb.GlobalAddr("procs", 0)
	sum := fb.Var()
	fb.ConstTo(sum, 0)
	i := fb.Var()
	fb.ConstTo(i, 0)
	fb.Jmp("loop")
	fb.Block("loop")
	c := fb.CmpI(Lt, i, 4)
	fb.Br(c, "body", "done")
	fb.Block("body")
	p := fb.Index(s, base, i)
	prio := fb.LoadField(s, "prio", p)
	fb.BinTo(sum, Add, sum, prio)
	fb.BinImmTo(i, Add, i, 1)
	fb.Jmp("loop")
	fb.Block("done")
	fb.Ret(sum)

	f2 := pb.Func("bump_ticks", 1, false)
	f2.Block("entry")
	b2 := f2.GlobalAddr("procs", 0)
	p2 := f2.Index(s, b2, f2.Param(0))
	tk := f2.LoadField(s, "ticks", p2)
	f2.StoreField(s, "ticks", p2, f2.AddI(tk, 7))
	f2.Ret(0)

	for _, plat := range []isa.Platform{isa.CISC, isa.RISC} {
		ip, err := NewInterp(pb.Program(), NewLayout(plat))
		if err != nil {
			t.Fatal(err)
		}
		got, err := ip.Call("sum_prios")
		if err != nil {
			t.Fatalf("[%v] sum_prios: %v", plat, err)
		}
		if got != 7 {
			t.Errorf("[%v] sum_prios = %d, want 7", plat, got)
		}
		if _, err := ip.Call("bump_ticks", 1); err != nil {
			t.Fatal(err)
		}
		v, err := ip.ReadField("procs", 1, s.FieldIndex("ticks"))
		if err != nil {
			t.Fatal(err)
		}
		if v != 107 {
			t.Errorf("[%v] ticks = %d, want 107", plat, v)
		}
	}
}

func TestInterpLocalsAndRawMemory(t *testing.T) {
	pb := NewProgram()
	fb := pb.Func("bytesum", 0, true)
	fb.Local("buf", W8, 16)
	fb.Block("entry")
	buf := fb.LocalAddr("buf", 0)
	i := fb.Var()
	fb.ConstTo(i, 0)
	fb.Jmp("fill")
	fb.Block("fill")
	c := fb.CmpI(Lt, i, 16)
	fb.Br(c, "fbody", "sum")
	fb.Block("fbody")
	addr := fb.Add(buf, i)
	fb.Store(W8, addr, 0, i)
	fb.BinImmTo(i, Add, i, 1)
	fb.Jmp("fill")
	fb.Block("sum")
	total := fb.Var()
	fb.ConstTo(total, 0)
	fb.ConstTo(i, 0)
	fb.Jmp("sloop")
	fb.Block("sloop")
	c2 := fb.CmpI(Lt, i, 16)
	fb.Br(c2, "sbody", "done")
	fb.Block("sbody")
	a2 := fb.Add(buf, i)
	v := fb.Load(W8, a2, 0)
	fb.BinTo(total, Add, total, v)
	fb.BinImmTo(i, Add, i, 1)
	fb.Jmp("sloop")
	fb.Block("done")
	fb.Ret(total)

	ip, err := NewInterp(pb.Program(), NewLayout(isa.RISC))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ip.Call("bytesum")
	if err != nil {
		t.Fatal(err)
	}
	if got != 120 {
		t.Errorf("bytesum = %d, want 120", got)
	}
}

func TestInterpCallsAndFuncPtr(t *testing.T) {
	pb := NewProgram()
	pb.GlobalBytes("table", 8, nil)
	dbl := pb.Func("double", 1, true)
	dbl.Block("entry")
	dbl.Ret(dbl.MulI(dbl.Param(0), 2))

	tri := pb.Func("triple", 1, true)
	tri.Block("entry")
	tri.Ret(tri.MulI(tri.Param(0), 3))

	setup := pb.Func("setup", 0, false)
	setup.Block("entry")
	tb := setup.GlobalAddr("table", 0)
	setup.Store(W32, tb, 0, setup.FuncAddr("double"))
	setup.Store(W32, tb, 4, setup.FuncAddr("triple"))
	setup.Ret(0)

	disp := pb.Func("dispatch", 2, true)
	disp.Block("entry")
	tb2 := disp.GlobalAddr("table", 0)
	slot := disp.BinImm(Mul, disp.Param(0), 4)
	fp := disp.Load(W32, disp.Add(tb2, slot), 0)
	disp.Ret(disp.CallPtr(fp, true, disp.Param(1)))

	ip, err := NewInterp(pb.Program(), NewLayout(isa.CISC))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ip.Call("setup"); err != nil {
		t.Fatal(err)
	}
	if got, _ := ip.Call("dispatch", 0, 21); got != 42 {
		t.Errorf("dispatch(0,21) = %d, want 42", got)
	}
	if got, _ := ip.Call("dispatch", 1, 21); got != 63 {
		t.Errorf("dispatch(1,21) = %d, want 63", got)
	}
}

func TestInterpErrors(t *testing.T) {
	pb := NewProgram()
	bug := pb.Func("bugfn", 0, false)
	bug.Block("entry")
	bug.Bug()
	bug.Ret(0)

	halt := pb.Func("haltfn", 0, false)
	halt.Block("entry")
	halt.Halt()
	halt.Ret(0)

	fault := pb.Func("faultfn", 0, true)
	fault.Block("entry")
	z := fault.Const(16)
	fault.Ret(fault.Load(W32, z, 0))

	div := pb.Func("divzero", 1, true)
	div.Block("entry")
	z2 := div.Const(0)
	div.Ret(div.Bin(Div, div.Param(0), z2))

	spin := pb.Func("spin", 0, false)
	spin.Block("entry")
	spin.Jmp("entry")

	ip, err := NewInterp(pb.Program(), NewLayout(isa.CISC))
	if err != nil {
		t.Fatal(err)
	}
	ip.MaxSteps = 10000
	tests := []struct {
		fn   string
		want error
	}{
		{"bugfn", ErrBug},
		{"haltfn", ErrHalt},
		{"faultfn", ErrFault},
		{"divzero", ErrDivide},
		{"spin", ErrSteps},
	}
	for _, tt := range tests {
		var args []uint32
		if tt.fn == "divzero" {
			args = []uint32{10}
		}
		if _, err := ip.Call(tt.fn, args...); !errors.Is(err, tt.want) {
			t.Errorf("%s: err = %v, want %v", tt.fn, err, tt.want)
		}
	}
}

func TestLayoutPackedVsPadded(t *testing.T) {
	pb := NewProgram()
	s := pb.Struct("mixed", F8("a"), F8("b"), F16("c"), F32("d"), F8("e"))
	_ = s
	cisc := NewLayout(isa.CISC)
	riscL := NewLayout(isa.RISC)

	// Packed: a@0 b@1 c@2 d@4 e@8 → size 12.
	wantCISC := []uint32{0, 1, 2, 4, 8}
	for i, w := range wantCISC {
		if got := cisc.FieldOffset(s, i); got != w {
			t.Errorf("CISC offset[%d] = %d, want %d", i, got, w)
		}
	}
	if got := cisc.StructSize(s); got != 12 {
		t.Errorf("CISC size = %d, want 12", got)
	}

	// Padded: every scalar gets a word slot → offsets 0,4,8,12,16, size 20.
	wantRISC := []uint32{0, 4, 8, 12, 16}
	for i, w := range wantRISC {
		if got := riscL.FieldOffset(s, i); got != w {
			t.Errorf("RISC offset[%d] = %d, want %d", i, got, w)
		}
	}
	if got := riscL.StructSize(s); got != 20 {
		t.Errorf("RISC size = %d, want 20", got)
	}
}

func TestLayoutArrayFieldsKeepWidth(t *testing.T) {
	pb := NewProgram()
	s := pb.Struct("withbuf", F8("flag"), FArr("name", W8, 6), F32("len"))
	cisc := NewLayout(isa.CISC)
	riscL := NewLayout(isa.RISC)
	// CISC: flag@0, name@1..6, len@8 (aligned), size 12.
	if off := cisc.FieldOffset(s, 1); off != 1 {
		t.Errorf("CISC name offset = %d, want 1", off)
	}
	if off := cisc.FieldOffset(s, 2); off != 8 {
		t.Errorf("CISC len offset = %d, want 8", off)
	}
	// RISC: flag slot 0-3, name@4..9 (byte array keeps width), len@12.
	if off := riscL.FieldOffset(s, 1); off != 4 {
		t.Errorf("RISC name offset = %d, want 4", off)
	}
	if off := riscL.FieldOffset(s, 2); off != 12 {
		t.Errorf("RISC len offset = %d, want 12", off)
	}
	if sz := riscL.StructSize(s); sz != 16 {
		t.Errorf("RISC size = %d, want 16", sz)
	}
}

func TestLayoutGlobalInitEncoding(t *testing.T) {
	pb := NewProgram()
	s := pb.Struct("kv", F8("k"), F32("v"))
	g := pb.GlobalStruct("pairs", s, 2, 1, 100, 2, 200)
	l := NewLayout(isa.RISC)
	img := l.EncodeGlobal(g, putLE)
	if len(img) != 16 {
		t.Fatalf("image len = %d, want 16", len(img))
	}
	if img[0] != 1 || img[4] != 100 || img[8] != 2 || img[12] != 200 {
		t.Errorf("image = % x", img)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	tests := []struct {
		name  string
		build func(pb *ProgramBuilder)
	}{
		{"unterminated", func(pb *ProgramBuilder) {
			fb := pb.Func("f", 0, false)
			fb.Block("entry")
			fb.Const(1)
		}},
		{"unknown jump", func(pb *ProgramBuilder) {
			fb := pb.Func("f", 0, false)
			fb.Block("entry")
			fb.fn.Blocks[0].Instrs = append(fb.fn.Blocks[0].Instrs, Instr{Kind: KJmp, Then: "nowhere"})
		}},
		{"bad call arity", func(pb *ProgramBuilder) {
			g := pb.Func("g", 2, false)
			g.Block("entry")
			g.Ret(0)
			fb := pb.Func("f", 0, false)
			fb.Block("entry")
			fb.fn.Blocks[0].Instrs = append(fb.fn.Blocks[0].Instrs,
				Instr{Kind: KCall, Sym: "g", Args: []Reg{}},
				Instr{Kind: KRet})
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pb := NewProgram()
			tt.build(pb)
			if err := pb.Program().Validate(); err == nil {
				t.Error("Validate passed, want error")
			}
		})
	}
}

func TestBuilderPanics(t *testing.T) {
	tests := []struct {
		name string
		f    func()
	}{
		{"dup struct", func() {
			pb := NewProgram()
			pb.Struct("s")
			pb.Struct("s")
		}},
		{"dup func", func() {
			pb := NewProgram()
			pb.Func("f", 0, false)
			pb.Func("f", 0, false)
		}},
		{"emit after terminator", func() {
			pb := NewProgram()
			fb := pb.Func("f", 0, false)
			fb.Block("entry")
			fb.Ret(0)
			fb.Const(1)
		}},
		{"too many params", func() {
			pb := NewProgram()
			pb.Func("f", 9, false)
		}},
		{"unknown field", func() {
			pb := NewProgram()
			s := pb.Struct("s", F32("x"))
			fb := pb.Func("f", 1, false)
			fb.Block("entry")
			fb.LoadField(s, "nope", fb.Param(0))
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			tt.f()
		})
	}
}

func TestInterpRecursion(t *testing.T) {
	pb := NewProgram()
	fb := pb.Func("fact", 1, true)
	n := fb.Param(0)
	fb.Block("entry")
	c := fb.CmpI(Le, n, 1)
	fb.Br(c, "base", "rec")
	fb.Block("base")
	fb.RetI(1)
	fb.Block("rec")
	sub := fb.Call("fact", fb.SubI(n, 1))
	fb.Ret(fb.Bin(Mul, n, sub))

	ip, err := NewInterp(pb.Program(), NewLayout(isa.CISC))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ip.Call("fact", 6)
	if err != nil {
		t.Fatal(err)
	}
	if got != 720 {
		t.Errorf("fact(6) = %d, want 720", got)
	}
}
