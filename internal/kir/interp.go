package kir

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Interpreter errors.
var (
	// ErrHalt reports that the program executed the idle primitive.
	ErrHalt = errors.New("kir: halt")
	// ErrBug reports that the program hit a BUG() trap.
	ErrBug = errors.New("kir: BUG trap")
	// ErrFault reports an out-of-range memory access.
	ErrFault = errors.New("kir: memory fault")
	// ErrSteps reports the step budget was exhausted (runaway loop).
	ErrSteps = errors.New("kir: step budget exhausted")
	// ErrDivide reports division by zero or signed overflow.
	ErrDivide = errors.New("kir: divide error")
)

const (
	interpBase      = 0x1000
	interpStackSize = 1 << 16
	interpMemSize   = 1 << 21
)

// Interp is the reference interpreter: a direct executor of IR programs used
// as a differential-testing oracle for both compiler backends. It lays out
// globals with the layout rules of a chosen platform so that address
// arithmetic (KIndex, KFieldAddr) is consistent.
type Interp struct {
	prog       *Program
	layout     Layout
	mem        []byte
	globalAddr map[string]uint32
	funcByAddr map[uint32]*Func
	funcAddr   map[string]uint32
	stackTop   uint32
	MaxSteps   int
	steps      int
	IrqDepth   int // net IrqOff nesting observed (diagnostic)

	// Syscall, when set, services KSyscall instructions (user-space
	// workload testing); unset, KSyscall is an error.
	Syscall func(no, a, b, c uint32) (uint32, error)
}

// NewInterp lays out the program's globals and returns an interpreter.
func NewInterp(p *Program, layout Layout) (*Interp, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ip := &Interp{
		prog:       p,
		layout:     layout,
		mem:        make([]byte, interpMemSize),
		globalAddr: make(map[string]uint32, len(p.Globals)),
		funcByAddr: make(map[uint32]*Func, len(p.Funcs)),
		funcAddr:   make(map[string]uint32, len(p.Funcs)),
		MaxSteps:   20_000_000,
	}
	addr := uint32(interpBase)
	for _, g := range p.Globals {
		img := layout.EncodeGlobal(g, putLE)
		copy(ip.mem[addr:], img)
		ip.globalAddr[g.Name] = addr
		addr += uint32(len(img))
		addr = align(addr, 16)
	}
	if addr+interpStackSize > uint32(len(ip.mem)) {
		return nil, fmt.Errorf("kir: globals exceed interpreter memory (%d bytes)", addr)
	}
	ip.stackTop = uint32(len(ip.mem))
	// Synthetic function addresses, outside data space.
	fa := uint32(0x70000000)
	for _, f := range p.Funcs {
		ip.funcAddr[f.Name] = fa
		ip.funcByAddr[fa] = f
		fa += 16
	}
	return ip, nil
}

func putLE(buf []byte, off uint32, w Width, v uint32) {
	switch w {
	case W8:
		buf[off] = byte(v)
	case W16:
		binary.LittleEndian.PutUint16(buf[off:], uint16(v))
	default:
		binary.LittleEndian.PutUint32(buf[off:], v)
	}
}

// GlobalAddr returns the interpreter address of a global.
func (ip *Interp) GlobalAddr(name string) uint32 { return ip.globalAddr[name] }

// ReadField reads field fi of element elem of global g.
func (ip *Interp) ReadField(g string, elem, fi int) (uint32, error) {
	gl := ip.prog.Global(g)
	if gl == nil || gl.Type == nil {
		return 0, fmt.Errorf("kir: no struct global %q", g)
	}
	base := ip.globalAddr[g] + uint32(elem)*ip.layout.StructSize(gl.Type)
	off := ip.layout.FieldOffset(gl.Type, fi)
	return ip.read(base+off, gl.Type.Fields[fi].Width, false)
}

// ReadBytes copies n bytes at addr (for test assertions).
func (ip *Interp) ReadBytes(addr, n uint32) ([]byte, error) {
	if addr+n > uint32(len(ip.mem)) {
		return nil, ErrFault
	}
	out := make([]byte, n)
	copy(out, ip.mem[addr:])
	return out, nil
}

func (ip *Interp) read(addr uint32, w Width, signed bool) (uint32, error) {
	if addr < interpBase || addr+uint32(w) > uint32(len(ip.mem)) {
		return 0, fmt.Errorf("%w: read %d at 0x%x", ErrFault, w, addr)
	}
	var v uint32
	switch w {
	case W8:
		v = uint32(ip.mem[addr])
		if signed {
			v = uint32(int32(int8(v)))
		}
	case W16:
		v = uint32(binary.LittleEndian.Uint16(ip.mem[addr:]))
		if signed {
			v = uint32(int32(int16(v)))
		}
	default:
		v = binary.LittleEndian.Uint32(ip.mem[addr:])
	}
	return v, nil
}

func (ip *Interp) write(addr uint32, w Width, v uint32) error {
	if addr < interpBase || addr+uint32(w) > uint32(len(ip.mem)) {
		return fmt.Errorf("%w: write %d at 0x%x", ErrFault, w, addr)
	}
	putLE(ip.mem, addr, w, v)
	return nil
}

// Call runs the named function with the given arguments and returns its
// result (0 for void functions).
func (ip *Interp) Call(name string, args ...uint32) (uint32, error) {
	f := ip.prog.Func(name)
	if f == nil {
		return 0, fmt.Errorf("kir: no func %q", name)
	}
	ip.steps = 0
	return ip.call(f, args, ip.stackTop)
}

func (ip *Interp) call(f *Func, args []uint32, sp uint32) (uint32, error) {
	if len(args) != f.NParams {
		return 0, fmt.Errorf("kir: %s called with %d args, want %d", f.Name, len(args), f.NParams)
	}
	regs := make([]uint32, f.NumRegs()+1)
	copy(regs[1:], args)

	// Allocate locals below sp.
	localAddr := make([]uint32, len(f.Locals))
	for i, lo := range f.Locals {
		size := ip.layout.LocalSlotSize(lo)
		sp = (sp - size) &^ 3
		localAddr[i] = sp
		for j := sp; j < sp+size; j++ {
			ip.mem[j] = 0
		}
	}
	if sp < uint32(len(ip.mem))-interpStackSize {
		return 0, fmt.Errorf("kir: interpreter stack overflow in %s", f.Name)
	}

	block := f.Blocks[0]
	idx := 0
	for {
		ip.steps++
		if ip.steps > ip.MaxSteps {
			return 0, ErrSteps
		}
		if idx >= len(block.Instrs) {
			return 0, fmt.Errorf("kir: fell off block %s.%s", f.Name, block.Name)
		}
		in := &block.Instrs[idx]
		idx++
		switch in.Kind {
		case KConst:
			regs[in.Dst] = uint32(in.Imm)
		case KMov:
			regs[in.Dst] = regs[in.A]
		case KBin:
			v, err := binEval(in.Bin, regs[in.A], regs[in.B])
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = v
		case KBinImm:
			v, err := binEval(in.Bin, regs[in.A], uint32(in.Imm))
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = v
		case KCmp:
			regs[in.Dst] = predEval(in.Pred, regs[in.A], regs[in.B])
		case KCmpImm:
			regs[in.Dst] = predEval(in.Pred, regs[in.A], uint32(in.Imm))
		case KLoad:
			v, err := ip.read(regs[in.A]+uint32(in.Imm), in.Width, in.Signed)
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = v
		case KStore:
			if err := ip.write(regs[in.A]+uint32(in.Imm), in.Width, regs[in.B]); err != nil {
				return 0, err
			}
		case KLoadField:
			s := ip.prog.Struct(in.Sym)
			off := ip.layout.FieldOffset(s, in.Field)
			v, err := ip.read(regs[in.A]+off, s.Fields[in.Field].Width, in.Signed)
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = v
		case KStoreField:
			s := ip.prog.Struct(in.Sym)
			off := ip.layout.FieldOffset(s, in.Field)
			if err := ip.write(regs[in.A]+off, s.Fields[in.Field].Width, regs[in.B]); err != nil {
				return 0, err
			}
		case KFieldAddr:
			s := ip.prog.Struct(in.Sym)
			regs[in.Dst] = regs[in.A] + ip.layout.FieldOffset(s, in.Field)
		case KIndex:
			s := ip.prog.Struct(in.Sym)
			regs[in.Dst] = regs[in.A] + regs[in.B]*ip.layout.StructSize(s)
		case KGlobalAddr:
			regs[in.Dst] = ip.globalAddr[in.Sym] + uint32(in.Imm)
		case KLocalAddr:
			regs[in.Dst] = localAddr[f.LocalIndex(in.Sym)] + uint32(in.Imm)
		case KFuncAddr:
			regs[in.Dst] = ip.funcAddr[in.Sym]
		case KCall:
			callee := ip.prog.Func(in.Sym)
			v, err := ip.callWith(callee, in.Args, regs, sp)
			if err != nil {
				return 0, err
			}
			if in.Dst != 0 {
				regs[in.Dst] = v
			}
		case KCallPtr:
			callee, ok := ip.funcByAddr[regs[in.A]]
			if !ok {
				return 0, fmt.Errorf("%w: indirect call to 0x%x", ErrFault, regs[in.A])
			}
			v, err := ip.callWith(callee, in.Args, regs, sp)
			if err != nil {
				return 0, err
			}
			if in.Dst != 0 {
				regs[in.Dst] = v
			}
		case KRet:
			if in.A != 0 {
				return regs[in.A], nil
			}
			return 0, nil
		case KJmp:
			block = f.Block(in.Then)
			idx = 0
		case KBr:
			if regs[in.A] != 0 {
				block = f.Block(in.Then)
			} else {
				block = f.Block(in.Else)
			}
			idx = 0
		case KIrqOff:
			ip.IrqDepth++
		case KIrqOn:
			ip.IrqDepth--
		case KHalt:
			return 0, ErrHalt
		case KBug:
			return 0, ErrBug
		case KSyscall:
			if ip.Syscall == nil {
				return 0, fmt.Errorf("kir: KSyscall without a syscall hook in %s", f.Name)
			}
			var sc [4]uint32
			for i, r := range in.Args {
				sc[i] = regs[r]
			}
			v, err := ip.Syscall(sc[0], sc[1], sc[2], sc[3])
			if err != nil {
				return 0, err
			}
			if in.Dst != 0 {
				regs[in.Dst] = v
			}
		case KCtxSw:
			// The interpreter is single-context; a context switch is a no-op.
		default:
			return 0, fmt.Errorf("kir: bad instruction kind %d in %s", in.Kind, f.Name)
		}
	}
}

func (ip *Interp) callWith(callee *Func, argRegs []Reg, regs []uint32, sp uint32) (uint32, error) {
	args := make([]uint32, len(argRegs))
	for i, r := range argRegs {
		args[i] = regs[r]
	}
	return ip.call(callee, args, sp)
}

func binEval(op BinOp, a, b uint32) (uint32, error) {
	switch op {
	case Add:
		return a + b, nil
	case Sub:
		return a - b, nil
	case Mul:
		return uint32(int32(a) * int32(b)), nil
	case Div:
		if b == 0 || (int32(a) == -1<<31 && int32(b) == -1) {
			return 0, ErrDivide
		}
		return uint32(int32(a) / int32(b)), nil
	case Rem:
		if b == 0 || (int32(a) == -1<<31 && int32(b) == -1) {
			return 0, ErrDivide
		}
		return uint32(int32(a) % int32(b)), nil
	case And:
		return a & b, nil
	case Or:
		return a | b, nil
	case Xor:
		return a ^ b, nil
	case Shl:
		return a << (b & 31), nil
	case Shr:
		return a >> (b & 31), nil
	case Sar:
		return uint32(int32(a) >> (b & 31)), nil
	default:
		return 0, fmt.Errorf("kir: bad binop %d", op)
	}
}

func predEval(p Pred, a, b uint32) uint32 {
	sa, sb := int32(a), int32(b)
	var r bool
	switch p {
	case Eq:
		r = a == b
	case Ne:
		r = a != b
	case Lt:
		r = sa < sb
	case Le:
		r = sa <= sb
	case Gt:
		r = sa > sb
	case Ge:
		r = sa >= sb
	case ULt:
		r = a < b
	case ULe:
		r = a <= b
	case UGt:
		r = a > b
	case UGe:
		r = a >= b
	}
	if r {
		return 1
	}
	return 0
}
