package kir

// Property-based tests on the platform data layouts: whatever random struct
// shape the generator produces, both layouts must respect alignment, field
// non-overlap, and containment — the invariants the compiled kernels and the
// injector's address arithmetic rely on.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"kfi/internal/isa"
)

// randomStruct is a generatable struct shape for testing/quick.
type randomStruct struct {
	Widths []uint8 // each 0..2 selecting W8/W16/W32
	Counts []uint8 // parallel array lengths, 0..4
}

// Generate implements quick.Generator with 1-8 fields.
func (randomStruct) Generate(r *rand.Rand, _ int) reflect.Value {
	n := 1 + r.Intn(8)
	rs := randomStruct{Widths: make([]uint8, n), Counts: make([]uint8, n)}
	for i := range rs.Widths {
		rs.Widths[i] = uint8(r.Intn(3))
		rs.Counts[i] = uint8(r.Intn(5))
	}
	return reflect.ValueOf(rs)
}

func (rs randomStruct) build() *Struct {
	widths := []Width{W8, W16, W32}
	s := &Struct{Name: "t"}
	for i := range rs.Widths {
		s.Fields = append(s.Fields, Field{
			Name:  string(rune('a' + i)),
			Width: widths[rs.Widths[i]%3],
			Count: int(rs.Counts[i]),
		})
	}
	return s
}

func fieldExtent(f Field) uint32 {
	n := uint32(f.Count)
	if n == 0 {
		n = 1
	}
	return uint32(f.Width) * n
}

func TestLayoutInvariantsProperty(t *testing.T) {
	for _, p := range []isa.Platform{isa.CISC, isa.RISC} {
		p := p
		l := NewLayout(p)
		prop := func(rs randomStruct) bool {
			s := rs.build()
			size := l.StructSize(s)
			type span struct{ lo, hi uint32 }
			var spans []span
			for i, f := range s.Fields {
				off := l.FieldOffset(s, i)
				// Natural alignment: every field is aligned to its width
				// (on RISC, scalars additionally to a word).
				if off%uint32(f.Width) != 0 {
					return false
				}
				if p == isa.RISC && off%4 != 0 {
					return false
				}
				hi := off + fieldExtent(f)
				// Containment within the struct.
				if hi > size {
					return false
				}
				spans = append(spans, span{off, hi})
			}
			// Offsets are monotonically non-decreasing and fields never
			// overlap.
			for i := 1; i < len(spans); i++ {
				if spans[i].lo < spans[i-1].hi {
					return false
				}
			}
			// Total size is word-aligned (array indexing relies on this).
			return size%4 == 0
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("[%v] %v", p, err)
		}
	}
}

func TestLayoutPaddedNeverSmallerProperty(t *testing.T) {
	// The G4's word-padded layout can never produce a smaller struct than
	// the P4's packed layout — the mechanism behind the data-layout
	// ablation (padding absorbs flips).
	packed := NewLayout(isa.CISC)
	padded := NewLayout(isa.RISC)
	prop := func(rs randomStruct) bool {
		s := rs.build()
		return padded.StructSize(s) >= packed.StructSize(s)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLayoutGlobalSizeConsistencyProperty(t *testing.T) {
	// A global holding N copies of a struct is exactly N times the struct
	// size on both platforms (structs are self-aligning because their size
	// is word-padded).
	for _, p := range []isa.Platform{isa.CISC, isa.RISC} {
		l := NewLayout(p)
		prop := func(rs randomStruct, nSel uint8) bool {
			s := rs.build()
			n := 1 + int(nSel%6)
			g := &Global{Name: "g", Type: s, Count: n}
			return l.GlobalSize(g) == uint32(n)*l.StructSize(s)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("[%v] %v", p, err)
		}
	}
}

func TestLayoutEncodeGlobalSizeProperty(t *testing.T) {
	// EncodeGlobal's image is always exactly GlobalSize bytes, regardless
	// of struct shape or initializers.
	for _, p := range []isa.Platform{isa.CISC, isa.RISC} {
		l := NewLayout(p)
		prop := func(rs randomStruct) bool {
			s := rs.build()
			g := &Global{Name: "g", Type: s, Count: 2}
			img := l.EncodeGlobal(g, func(buf []byte, off uint32, w Width, v uint32) {
				buf[off] = byte(v) // byte-order-free stand-in
			})
			return uint32(len(img)) == l.GlobalSize(g)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("[%v] %v", p, err)
		}
	}
}
