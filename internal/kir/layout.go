package kir

import "kfi/internal/isa"

// Layout resolves struct field offsets, access widths, and object sizes for
// one platform. The two layouts embody the paper's key data-sensitivity
// mechanism:
//
//   - CISC (P4-class): fields are packed at natural alignment, so every byte
//     of a hot structure belongs to some field and a flipped bit is likely to
//     be consumed.
//   - RISC (G4-class): every scalar field occupies a full 32-bit slot (the
//     word-oriented data access the paper describes); sub-word fields leave
//     padding bytes that are never read, so flips there are inconsequential
//     even when the datum itself is used.
//
// Array fields keep their element width on both platforms (byte buffers are
// byte buffers everywhere) but start word-aligned on RISC.
type Layout struct {
	platform isa.Platform
	// wordSlots is the platform's word-oriented layout property, resolved
	// once from the isa registry (extension platforms declare it in their
	// PlatformInfo).
	wordSlots bool
}

// NewLayout returns the layout rules for a platform.
func NewLayout(p isa.Platform) Layout {
	return Layout{platform: p, wordSlots: isa.WordOrientedLayout(p)}
}

// Platform returns the platform these rules describe.
func (l Layout) Platform() isa.Platform { return l.platform }

func align(off, a uint32) uint32 { return (off + a - 1) &^ (a - 1) }

// fieldSlot returns the offset of field i and the struct's total size.
func (l Layout) walk(s *Struct) (offs []uint32, size uint32) {
	offs = make([]uint32, len(s.Fields))
	var off uint32
	for i, f := range s.Fields {
		w := uint32(f.Width)
		switch {
		case l.wordSlots && f.count() == 1:
			// Scalars get a full word slot.
			off = align(off, 4)
			offs[i] = off
			off += 4
		case l.wordSlots:
			off = align(off, 4)
			offs[i] = off
			off += w * uint32(f.count())
		default:
			off = align(off, w)
			offs[i] = off
			off += w * uint32(f.count())
		}
	}
	return offs, align(off, 4)
}

// FieldOffset returns the byte offset of field i within the struct.
func (l Layout) FieldOffset(s *Struct, i int) uint32 {
	offs, _ := l.walk(s)
	return offs[i]
}

// StructSize returns the platform size of the struct (word-aligned).
func (l Layout) StructSize(s *Struct) uint32 {
	_, size := l.walk(s)
	return size
}

// GlobalSize returns the platform size of a global object.
func (l Layout) GlobalSize(g *Global) uint32 {
	if g.Type == nil {
		return align(g.Size, 4)
	}
	n := g.Count
	if n < 1 {
		n = 1
	}
	return l.StructSize(g.Type) * uint32(n)
}

// LocalSlotSize returns the frame size of a local object. On RISC every
// element of a scalar local rounds up to a word (stack slots are
// word-granular, as on the real ABI); arrays keep element width.
func (l Layout) LocalSlotSize(lo Local) uint32 {
	if l.wordSlots && lo.Count <= 1 {
		return 4
	}
	return align(lo.Size(), 4)
}

// EncodeGlobal renders a global's initial image per this layout. The
// returned slice has length GlobalSize(g).
func (l Layout) EncodeGlobal(g *Global, put func(buf []byte, off uint32, w Width, v uint32)) []byte {
	size := l.GlobalSize(g)
	buf := make([]byte, size)
	if g.Type == nil {
		copy(buf, g.InitBytes)
		return buf
	}
	offs, ssize := l.walk(g.Type)
	n := g.Count
	if n < 1 {
		n = 1
	}
	nf := len(g.Type.Fields)
	for e := 0; e < n; e++ {
		base := uint32(e) * ssize
		for fi, f := range g.Type.Fields {
			if f.count() != 1 {
				continue // array fields are zero-initialized
			}
			idx := e*nf + fi
			if idx >= len(g.Init) {
				continue
			}
			v := g.Init[idx]
			if v == 0 {
				continue
			}
			put(buf, base+offs[fi], f.Width, v)
		}
	}
	return buf
}
