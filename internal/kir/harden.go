package kir

import (
	"fmt"
	"strings"
)

// This file implements the software-implemented fault-detection transforms
// (SIHFT) applied to a program before compilation. Both are architecture-
// neutral rewrites of the IR, so the CISC and RISC backends emit hardened
// images through the ordinary compilation pipeline:
//
//   - Dup duplicates every computation into a shadow register set and
//     compares the two copies at synchronization points — stores, call and
//     syscall arguments, branch conditions, and returned values (the
//     EDDI-style data-flow detector).
//   - CFSig assigns every basic block a compile-time signature, updates a
//     dedicated signature register on each control transfer, and checks it
//     at block entry (the CFCSS-style assigned-signature detector).
//
// On a mismatch the rewritten code branches to a per-function fail block
// that calls the synthesized detector DetectFunc with a program-unique site
// identifier. The detector degrades gracefully: it issues DetectHypercall
// and spins, so a hardened guest halts cleanly at the first detected error
// instead of running on corrupted state.

// HardenOpts selects the hardening transforms. The zero value disables
// hardening entirely; Harden then returns its input untouched, which keeps
// unhardened images bit-identical to builds that never heard of hardening.
type HardenOpts struct {
	// Dup enables instruction/register duplication with consistency checks.
	Dup bool
	// CFSig enables control-flow signature checking.
	CFSig bool
}

// Enabled reports whether any transform is selected.
func (o HardenOpts) Enabled() bool { return o.Dup || o.CFSig }

// String names the selected transform combination ("dup+cfsig", "dup",
// "cfsig", or "none").
func (o HardenOpts) String() string {
	switch {
	case o.Dup && o.CFSig:
		return "dup+cfsig"
	case o.Dup:
		return "dup"
	case o.CFSig:
		return "cfsig"
	default:
		return "none"
	}
}

// ParseHardenOpts parses a HardenOpts.String() form — the CLI flag and wire
// syntax. "" and "none" mean no hardening; pass names may be joined with
// "+" in either order ("dup", "cfsig", "dup+cfsig", "all").
func ParseHardenOpts(s string) (HardenOpts, error) {
	var o HardenOpts
	switch s {
	case "", "none":
		return o, nil
	case "all":
		return HardenOpts{Dup: true, CFSig: true}, nil
	}
	for _, part := range strings.Split(s, "+") {
		switch part {
		case "dup":
			o.Dup = true
		case "cfsig":
			o.CFSig = true
		default:
			return HardenOpts{}, fmt.Errorf("kir: unknown hardening pass %q (want dup, cfsig, dup+cfsig, all, or none)", part)
		}
	}
	return o, nil
}

// DetectFunc is the synthesized detector entry point hardened code calls on
// a consistency or signature mismatch. Its single parameter is the site
// identifier of the failed check.
const DetectFunc = "__harden_detect"

// DetectHypercall is the hypercall number the detector issues, with the
// site identifier as the first argument. internal/machine intercepts it
// (machine.HyperDetect mirrors this value) and classifies the run as
// detected.
const DetectHypercall = 0xF003

// Harden returns a copy of p with the selected transforms applied to every
// function, plus the synthesized DetectFunc. The input program is never
// modified. With no transform selected — or when p already contains
// DetectFunc, i.e. has been hardened once — p is returned as-is.
func Harden(p *Program, opts HardenOpts) *Program {
	if !opts.Enabled() || p.Func(DetectFunc) != nil {
		return p
	}
	out := &Program{Structs: p.Structs, Globals: p.Globals}
	site := int32(1)
	for _, f := range p.Funcs {
		h := &hardener{opts: opts, site: &site}
		out.Funcs = append(out.Funcs, h.run(f))
	}
	out.Funcs = append(out.Funcs, detectorFunc())
	return out
}

// detectorFunc synthesizes DetectFunc: report the site through the
// detection hypercall, then spin. Under internal/machine the hypercall
// terminates the run before the loop is re-entered; the loop guarantees a
// clean halt even on a host that ignores the hypercall.
func detectorFunc() *Func {
	const (
		site = Reg(1)
		no   = Reg(2)
		res  = Reg(3)
	)
	return &Func{
		Name:    DetectFunc,
		NParams: 1,
		nextReg: 4,
		Blocks: []*Block{{
			Name: "spin",
			Instrs: []Instr{
				{Kind: KConst, Dst: no, Imm: DetectHypercall},
				{Kind: KSyscall, Dst: res, Args: []Reg{no, site}},
				{Kind: KJmp, Then: "spin"},
			},
		}},
	}
}

// hardener rewrites one function. It streams the original blocks into a new
// block list, splitting at every inserted check branch.
type hardener struct {
	opts HardenOpts
	site *int32 // program-wide site counter

	out   *Func
	cur   *Block
	conts int // continuation-block counter

	shadowBase Reg // original register count; shadow(r) = r + shadowBase
	siteReg    Reg // holds the current check's site id for the fail block
	sigReg     Reg // the control-flow signature register (CFSig only)
	sigs       map[string]int32
}

// failName is the per-function fail block every check branches to. Guest
// source never uses the "__h" prefix, so the name cannot collide.
const failName = "__hfail"

func (h *hardener) run(f *Func) *Func {
	orig := Reg(f.NumRegs())
	next := orig + 1
	if h.opts.Dup {
		h.shadowBase = orig
		next = 2*orig + 1
	}
	h.siteReg = next
	next++
	if h.opts.CFSig {
		h.sigReg = next
		next++
		h.sigs = make(map[string]int32, len(f.Blocks))
		for i, b := range f.Blocks {
			h.sigs[b.Name] = int32(0x5A10 + i)
		}
	}
	h.out = &Func{Name: f.Name, NParams: f.NParams, HasRet: f.HasRet,
		Locals: f.Locals, nextReg: next}

	for bi, b := range f.Blocks {
		h.startBlock(b.Name)
		if h.opts.CFSig {
			if bi == 0 {
				// The entry block has no predecessor to set the signature.
				h.emit(Instr{Kind: KConst, Dst: h.sigReg, Imm: h.sigs[b.Name]})
			} else {
				h.checkSig(h.sigs[b.Name])
			}
		}
		if h.opts.Dup && bi == 0 {
			for i := 0; i < f.NParams; i++ {
				r := Reg(i + 1)
				h.emit(Instr{Kind: KMov, Dst: h.shadow(r), A: r})
			}
		}
		for _, in := range b.Instrs {
			h.instr(in)
		}
	}

	h.startBlock(failName)
	h.emit(Instr{Kind: KCall, Sym: DetectFunc, Args: []Reg{h.siteReg}})
	h.emit(Instr{Kind: KJmp, Then: failName})
	return h.out
}

func (h *hardener) startBlock(name string) {
	b := &Block{Name: name}
	h.out.Blocks = append(h.out.Blocks, b)
	h.cur = b
}

func (h *hardener) emit(in Instr) { h.cur.Instrs = append(h.cur.Instrs, in) }

func (h *hardener) newReg() Reg {
	h.out.nextReg++
	return h.out.nextReg - 1
}

func (h *hardener) shadow(r Reg) Reg { return r + h.shadowBase }

// cloneInstr copies an instruction, unaliasing its Args slice so the output
// program shares no mutable state with the input.
func cloneInstr(in Instr) Instr {
	if in.Args != nil {
		in.Args = append([]Reg(nil), in.Args...)
	}
	return in
}

func (h *hardener) instr(in Instr) {
	if !h.opts.Dup {
		switch in.Kind {
		case KJmp:
			h.emit(Instr{Kind: KConst, Dst: h.sigReg, Imm: h.sigs[in.Then]})
		case KBr:
			h.sigSelect(in)
		}
		h.emit(cloneInstr(in))
		return
	}
	switch in.Kind {
	case KConst, KGlobalAddr, KLocalAddr, KFuncAddr:
		// Operand-free definitions: re-execute for the shadow copy.
		h.emit(cloneInstr(in))
		sh := in
		sh.Dst = h.shadow(in.Dst)
		h.emit(sh)
	case KBin:
		if in.Bin == Div || in.Bin == Rem {
			// Division semantics are platform-faithful (may trap); check
			// the operands and execute once rather than trapping twice.
			h.check(in.A)
			h.check(in.B)
			h.emit(cloneInstr(in))
			h.copyShadow(in.Dst)
			return
		}
		h.emit(cloneInstr(in))
		sh := in
		sh.Dst, sh.A, sh.B = h.shadow(in.Dst), h.shadow(in.A), h.shadow(in.B)
		h.emit(sh)
	case KBinImm:
		if in.Bin == Div || in.Bin == Rem {
			h.check(in.A)
			h.emit(cloneInstr(in))
			h.copyShadow(in.Dst)
			return
		}
		h.emit(cloneInstr(in))
		sh := in
		sh.Dst, sh.A = h.shadow(in.Dst), h.shadow(in.A)
		h.emit(sh)
	case KCmp:
		h.emit(cloneInstr(in))
		sh := in
		sh.Dst, sh.A, sh.B = h.shadow(in.Dst), h.shadow(in.A), h.shadow(in.B)
		h.emit(sh)
	case KCmpImm:
		h.emit(cloneInstr(in))
		sh := in
		sh.Dst, sh.A = h.shadow(in.Dst), h.shadow(in.A)
		h.emit(sh)
	case KMov:
		h.emit(cloneInstr(in))
		h.emit(Instr{Kind: KMov, Dst: h.shadow(in.Dst), A: h.shadow(in.A)})
	case KFieldAddr:
		h.emit(cloneInstr(in))
		sh := in
		sh.Dst, sh.A = h.shadow(in.Dst), h.shadow(in.A)
		h.emit(sh)
	case KIndex:
		h.emit(cloneInstr(in))
		sh := in
		sh.Dst, sh.A, sh.B = h.shadow(in.Dst), h.shadow(in.A), h.shadow(in.B)
		h.emit(sh)
	case KLoad, KLoadField:
		// Memory is not duplicated: check the address, load once, and seed
		// the shadow copy from the loaded value.
		h.check(in.A)
		h.emit(cloneInstr(in))
		h.copyShadow(in.Dst)
	case KStore, KStoreField:
		h.check(in.A)
		h.check(in.B)
		h.emit(cloneInstr(in))
	case KCall:
		for _, a := range in.Args {
			h.check(a)
		}
		h.emit(cloneInstr(in))
		h.copyShadow(in.Dst)
	case KCallPtr:
		h.check(in.A)
		for _, a := range in.Args {
			h.check(a)
		}
		h.emit(cloneInstr(in))
		h.copyShadow(in.Dst)
	case KSyscall:
		for _, a := range in.Args {
			h.check(a)
		}
		h.emit(cloneInstr(in))
		h.copyShadow(in.Dst)
	case KCtxSw:
		h.check(in.A)
		h.check(in.B)
		h.emit(cloneInstr(in))
	case KRet:
		if in.A != 0 {
			h.check(in.A)
		}
		h.emit(cloneInstr(in))
	case KJmp:
		if h.opts.CFSig {
			h.emit(Instr{Kind: KConst, Dst: h.sigReg, Imm: h.sigs[in.Then]})
		}
		h.emit(cloneInstr(in))
	case KBr:
		h.check(in.A)
		if h.opts.CFSig {
			h.sigSelect(in)
		}
		h.emit(cloneInstr(in))
	default: // KIrqOff, KIrqOn, KHalt, KBug
		h.emit(cloneInstr(in))
	}
}

// sigSelect updates the signature register before a conditional branch:
// sigReg = cond != 0 ? sig(Then) : sig(Else), computed branch-free as
// (cond != 0) * (sigThen ^ sigElse) ^ sigElse.
func (h *hardener) sigSelect(in Instr) {
	st, se := h.sigs[in.Then], h.sigs[in.Else]
	tmp := h.newReg()
	h.emit(Instr{Kind: KCmpImm, Dst: tmp, Pred: Ne, A: in.A, Imm: 0})
	h.emit(Instr{Kind: KBinImm, Dst: tmp, Bin: Mul, A: tmp, Imm: st ^ se})
	h.emit(Instr{Kind: KBinImm, Dst: h.sigReg, Bin: Xor, A: tmp, Imm: se})
}

// check compares a register against its shadow and branches to the fail
// block on mismatch.
func (h *hardener) check(r Reg) {
	if r <= 0 || r > h.shadowBase {
		return // hardening-introduced register: no shadow exists
	}
	h.emitCheck(Instr{Kind: KCmp, Pred: Ne, A: r, B: h.shadow(r)})
}

// checkSig verifies the signature register holds the current block's
// assigned signature.
func (h *hardener) checkSig(sig int32) {
	h.emitCheck(Instr{Kind: KCmpImm, Pred: Ne, A: h.sigReg, Imm: sig})
}

// emitCheck materializes the site id, emits the (destination-less) compare
// cmp, and splits the current block on the verdict. A fresh compare
// destination per check keeps the cmp+br pair fusible by the backends.
func (h *hardener) emitCheck(cmp Instr) {
	h.emit(Instr{Kind: KConst, Dst: h.siteReg, Imm: h.nextSite()})
	cmp.Dst = h.newReg()
	h.emit(cmp)
	cont := fmt.Sprintf("__hc%d", h.conts)
	h.conts++
	h.emit(Instr{Kind: KBr, A: cmp.Dst, Then: failName, Else: cont})
	h.startBlock(cont)
}

// copyShadow seeds dst's shadow from the just-computed primary value (used
// after loads, calls, syscalls, and single-execution divisions).
func (h *hardener) copyShadow(dst Reg) {
	if dst > 0 && dst <= h.shadowBase {
		h.emit(Instr{Kind: KMov, Dst: h.shadow(dst), A: dst})
	}
}

func (h *hardener) nextSite() int32 {
	s := *h.site
	*h.site++
	return s
}
