package kir

import "fmt"

// ProgramBuilder assembles a Program. It panics on structural misuse (those
// are build-time bugs in the guest kernel source, not runtime conditions);
// Program.Validate provides a non-panicking second check.
type ProgramBuilder struct {
	prog *Program
}

// NewProgram returns an empty program builder.
func NewProgram() *ProgramBuilder {
	return &ProgramBuilder{prog: &Program{}}
}

// Program finalizes and returns the program.
func (pb *ProgramBuilder) Program() *Program {
	// Calls to void functions were built with a result register (the callee
	// may not have existed yet when the call was emitted); discard results
	// that are never read so the backends do not materialize them. Results
	// of void callees that ARE read survive here and fail validation with a
	// precise error.
	for _, f := range pb.prog.Funcs {
		used := make(map[Reg]bool)
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				for _, r := range []Reg{in.A, in.B} {
					used[r] = true
				}
				for _, r := range in.Args {
					used[r] = true
				}
			}
		}
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Kind != KCall || in.Dst == 0 || used[in.Dst] {
					continue
				}
				if callee := pb.prog.Func(in.Sym); callee != nil && !callee.HasRet {
					in.Dst = 0
				}
			}
		}
	}
	return pb.prog
}

// F8, F16, F32 construct scalar fields.
func F8(name string) Field { return Field{Name: name, Width: W8} }

// F16 constructs a 16-bit field.
func F16(name string) Field { return Field{Name: name, Width: W16} }

// F32 constructs a 32-bit field.
func F32(name string) Field { return Field{Name: name, Width: W32} }

// FArr constructs an array field of count elements of width w.
func FArr(name string, w Width, count int) Field {
	return Field{Name: name, Width: w, Count: count}
}

// Struct declares a struct type.
func (pb *ProgramBuilder) Struct(name string, fields ...Field) *Struct {
	if pb.prog.Struct(name) != nil {
		panic(fmt.Sprintf("kir: struct %q declared twice", name))
	}
	s := &Struct{Name: name, Fields: fields}
	pb.prog.Structs = append(pb.prog.Structs, s)
	return s
}

// GlobalStruct declares a global array of count structs.
func (pb *ProgramBuilder) GlobalStruct(name string, s *Struct, count int, init ...uint32) *Global {
	g := &Global{Name: name, Type: s, Count: count, Init: init}
	pb.addGlobal(g)
	return g
}

// GlobalBytes declares a raw global buffer of the given size; init seeds its
// first bytes.
func (pb *ProgramBuilder) GlobalBytes(name string, size uint32, init []byte) *Global {
	g := &Global{Name: name, Size: size, InitBytes: init}
	pb.addGlobal(g)
	return g
}

// GlobalBSS declares an uninitialized global buffer placed in the bss region.
func (pb *ProgramBuilder) GlobalBSS(name string, size uint32) *Global {
	g := &Global{Name: name, Size: size, BSS: true}
	pb.addGlobal(g)
	return g
}

// GlobalHeap declares a dynamically-backed buffer (page cache, packet pools)
// placed in the heap section rather than the kernel's static data.
func (pb *ProgramBuilder) GlobalHeap(name string, size uint32) *Global {
	g := &Global{Name: name, Size: size, Heap: true}
	pb.addGlobal(g)
	return g
}

func (pb *ProgramBuilder) addGlobal(g *Global) {
	if pb.prog.Global(g.Name) != nil {
		panic(fmt.Sprintf("kir: global %q declared twice", g.Name))
	}
	pb.prog.Globals = append(pb.prog.Globals, g)
}

// FuncBuilder assembles one function.
type FuncBuilder struct {
	pb   *ProgramBuilder
	fn   *Func
	cur  *Block
	done bool
}

// Func declares a function with nparams parameters. hasRet declares a return
// value.
func (pb *ProgramBuilder) Func(name string, nparams int, hasRet bool) *FuncBuilder {
	if pb.prog.Func(name) != nil {
		panic(fmt.Sprintf("kir: func %q declared twice", name))
	}
	if nparams > 8 {
		panic(fmt.Sprintf("kir: func %q has %d params; max 8 (register ABI)", name, nparams))
	}
	fn := &Func{Name: name, NParams: nparams, HasRet: hasRet, nextReg: Reg(nparams + 1)}
	pb.prog.Funcs = append(pb.prog.Funcs, fn)
	return &FuncBuilder{pb: pb, fn: fn}
}

// Fn returns the function under construction.
func (fb *FuncBuilder) Fn() *Func { return fb.fn }

// Param returns the register holding parameter i.
func (fb *FuncBuilder) Param(i int) Reg { return fb.fn.Param(i) }

// Local declares a function-local memory object.
func (fb *FuncBuilder) Local(name string, w Width, count int) {
	if fb.fn.LocalIndex(name) >= 0 {
		panic(fmt.Sprintf("kir: local %q declared twice in %s", name, fb.fn.Name))
	}
	if count < 1 {
		count = 1
	}
	fb.fn.Locals = append(fb.fn.Locals, Local{Name: name, Width: w, Count: count})
}

// Block starts (or switches to) the named block. The first Block call
// defines the entry block.
func (fb *FuncBuilder) Block(name string) {
	if b := fb.fn.Block(name); b != nil {
		panic(fmt.Sprintf("kir: block %q defined twice in %s", name, fb.fn.Name))
	}
	b := &Block{Name: name}
	fb.fn.Blocks = append(fb.fn.Blocks, b)
	fb.cur = b
}

func (fb *FuncBuilder) emit(in Instr) Reg {
	if fb.cur == nil {
		panic(fmt.Sprintf("kir: emit outside block in %s", fb.fn.Name))
	}
	if fb.cur.Terminated() {
		panic(fmt.Sprintf("kir: emit after terminator in %s.%s", fb.fn.Name, fb.cur.Name))
	}
	fb.cur.Instrs = append(fb.cur.Instrs, in)
	return in.Dst
}

func (fb *FuncBuilder) newReg() Reg {
	fb.fn.nextReg++
	return fb.fn.nextReg - 1
}

// Const materializes a constant.
func (fb *FuncBuilder) Const(v int32) Reg {
	return fb.emit(Instr{Kind: KConst, Dst: fb.newReg(), Imm: v})
}

// Bin computes a op b.
func (fb *FuncBuilder) Bin(op BinOp, a, b Reg) Reg {
	return fb.emit(Instr{Kind: KBin, Dst: fb.newReg(), Bin: op, A: a, B: b})
}

// BinImm computes a op imm.
func (fb *FuncBuilder) BinImm(op BinOp, a Reg, imm int32) Reg {
	return fb.emit(Instr{Kind: KBinImm, Dst: fb.newReg(), Bin: op, A: a, Imm: imm})
}

// Add is shorthand for Bin(Add, a, b); the most common operations get
// shorthands to keep guest-kernel source readable.
func (fb *FuncBuilder) Add(a, b Reg) Reg { return fb.Bin(Add, a, b) }

// AddI computes a + imm.
func (fb *FuncBuilder) AddI(a Reg, imm int32) Reg { return fb.BinImm(Add, a, imm) }

// SubI computes a - imm.
func (fb *FuncBuilder) SubI(a Reg, imm int32) Reg { return fb.BinImm(Sub, a, imm) }

// MulI computes a * imm.
func (fb *FuncBuilder) MulI(a Reg, imm int32) Reg { return fb.BinImm(Mul, a, imm) }

// AndI computes a & imm.
func (fb *FuncBuilder) AndI(a Reg, imm int32) Reg { return fb.BinImm(And, a, imm) }

// Cmp computes a pred b as 0/1.
func (fb *FuncBuilder) Cmp(p Pred, a, b Reg) Reg {
	return fb.emit(Instr{Kind: KCmp, Dst: fb.newReg(), Pred: p, A: a, B: b})
}

// CmpI computes a pred imm as 0/1.
func (fb *FuncBuilder) CmpI(p Pred, a Reg, imm int32) Reg {
	return fb.emit(Instr{Kind: KCmpImm, Dst: fb.newReg(), Pred: p, A: a, Imm: imm})
}

// Mov copies a register (used to thread values across blocks: assign into a
// pre-allocated register with MovTo).
func (fb *FuncBuilder) Mov(a Reg) Reg {
	return fb.emit(Instr{Kind: KMov, Dst: fb.newReg(), A: a})
}

// Var allocates a fresh virtual register without defining it; use MovTo/
// ConstTo to assign. This is the non-SSA escape hatch for loop variables.
func (fb *FuncBuilder) Var() Reg { return fb.newReg() }

// MovTo assigns dst = a.
func (fb *FuncBuilder) MovTo(dst, a Reg) {
	fb.emit(Instr{Kind: KMov, Dst: dst, A: a})
}

// ConstTo assigns dst = imm.
func (fb *FuncBuilder) ConstTo(dst Reg, imm int32) {
	fb.emit(Instr{Kind: KConst, Dst: dst, Imm: imm})
}

// BinTo assigns dst = a op b.
func (fb *FuncBuilder) BinTo(dst Reg, op BinOp, a, b Reg) {
	fb.emit(Instr{Kind: KBin, Dst: dst, Bin: op, A: a, B: b})
}

// BinImmTo assigns dst = a op imm.
func (fb *FuncBuilder) BinImmTo(dst Reg, op BinOp, a Reg, imm int32) {
	fb.emit(Instr{Kind: KBinImm, Dst: dst, Bin: op, A: a, Imm: imm})
}

// Load reads Width bytes at [addr+off], zero-extended.
func (fb *FuncBuilder) Load(w Width, addr Reg, off int32) Reg {
	return fb.emit(Instr{Kind: KLoad, Dst: fb.newReg(), Width: w, A: addr, Imm: off})
}

// LoadS reads Width bytes at [addr+off], sign-extended.
func (fb *FuncBuilder) LoadS(w Width, addr Reg, off int32) Reg {
	return fb.emit(Instr{Kind: KLoad, Dst: fb.newReg(), Width: w, A: addr, Imm: off, Signed: true})
}

// Store writes Width bytes of val at [addr+off].
func (fb *FuncBuilder) Store(w Width, addr Reg, off int32, val Reg) {
	fb.emit(Instr{Kind: KStore, Width: w, A: addr, Imm: off, B: val})
}

// LoadField reads s.field at base.
func (fb *FuncBuilder) LoadField(s *Struct, field string, base Reg) Reg {
	return fb.emit(Instr{Kind: KLoadField, Dst: fb.newReg(), Sym: s.Name, Field: fb.fieldIdx(s, field), A: base})
}

// StoreField writes s.field at base.
func (fb *FuncBuilder) StoreField(s *Struct, field string, base, val Reg) {
	fb.emit(Instr{Kind: KStoreField, Sym: s.Name, Field: fb.fieldIdx(s, field), A: base, B: val})
}

// FieldAddr computes &base->field.
func (fb *FuncBuilder) FieldAddr(s *Struct, field string, base Reg) Reg {
	return fb.emit(Instr{Kind: KFieldAddr, Dst: fb.newReg(), Sym: s.Name, Field: fb.fieldIdx(s, field), A: base})
}

// Index computes base + idx*sizeof(s).
func (fb *FuncBuilder) Index(s *Struct, base, idx Reg) Reg {
	return fb.emit(Instr{Kind: KIndex, Dst: fb.newReg(), Sym: s.Name, A: base, B: idx})
}

func (fb *FuncBuilder) fieldIdx(s *Struct, field string) int {
	i := s.FieldIndex(field)
	if i < 0 {
		panic(fmt.Sprintf("kir: struct %s has no field %q", s.Name, field))
	}
	return i
}

// GlobalAddr takes the address of a global (+off bytes).
func (fb *FuncBuilder) GlobalAddr(name string, off int32) Reg {
	return fb.emit(Instr{Kind: KGlobalAddr, Dst: fb.newReg(), Sym: name, Imm: off})
}

// LocalAddr takes the address of a local (+off bytes).
func (fb *FuncBuilder) LocalAddr(name string, off int32) Reg {
	return fb.emit(Instr{Kind: KLocalAddr, Dst: fb.newReg(), Sym: name, Imm: off})
}

// FuncAddr takes the address of a function (for syscall tables and other
// indirect-call tables).
func (fb *FuncBuilder) FuncAddr(name string) Reg {
	return fb.emit(Instr{Kind: KFuncAddr, Dst: fb.newReg(), Sym: name})
}

// Call invokes a named function and returns its value register (0 for void).
// Call invokes a named function and returns its result register. The callee
// need not be defined yet: a result register is always allocated, and
// ProgramBuilder.Program() later discards it when the callee turns out to be
// void and the register is never read (using the result of a void function
// is a validation error).
func (fb *FuncBuilder) Call(name string, args ...Reg) Reg {
	dst := fb.newReg()
	fb.emit(Instr{Kind: KCall, Dst: dst, Sym: name, Args: args})
	return dst
}

// CallVoid invokes a named function discarding any result.
func (fb *FuncBuilder) CallVoid(name string, args ...Reg) {
	fb.emit(Instr{Kind: KCall, Sym: name, Args: args})
}

// CallPtr invokes a function through a pointer value; hasRet selects whether
// a result register is allocated.
func (fb *FuncBuilder) CallPtr(fp Reg, hasRet bool, args ...Reg) Reg {
	var dst Reg
	if hasRet {
		dst = fb.newReg()
	}
	fb.emit(Instr{Kind: KCallPtr, Dst: dst, A: fp, Args: args})
	return dst
}

// Syscall issues the platform system-call instruction (INT 0x80 / sc) with
// the given number register and up to three argument registers, returning
// the kernel's result.
func (fb *FuncBuilder) Syscall(no Reg, args ...Reg) Reg {
	if len(args) > 3 {
		panic("kir: syscall takes at most 3 arguments")
	}
	all := append([]Reg{no}, args...)
	return fb.emit(Instr{Kind: KSyscall, Dst: fb.newReg(), Args: all})
}

// Ret returns val (pass 0 for void functions).
func (fb *FuncBuilder) Ret(val Reg) {
	fb.emit(Instr{Kind: KRet, A: val})
}

// RetI returns a constant.
func (fb *FuncBuilder) RetI(v int32) {
	fb.Ret(fb.Const(v))
}

// Jmp ends the block with an unconditional jump.
func (fb *FuncBuilder) Jmp(target string) {
	fb.emit(Instr{Kind: KJmp, Then: target})
}

// Br ends the block branching on cond != 0.
func (fb *FuncBuilder) Br(cond Reg, then, els string) {
	fb.emit(Instr{Kind: KBr, A: cond, Then: then, Else: els})
}

// IrqOff disables interrupts.
func (fb *FuncBuilder) IrqOff() { fb.emit(Instr{Kind: KIrqOff}) }

// IrqOn enables interrupts.
func (fb *FuncBuilder) IrqOn() { fb.emit(Instr{Kind: KIrqOn}) }

// Halt idles the processor until the next interrupt.
func (fb *FuncBuilder) Halt() { fb.emit(Instr{Kind: KHalt}) }

// Bug plants the kernel BUG() trap (a deliberate invalid instruction).
func (fb *FuncBuilder) Bug() { fb.emit(Instr{Kind: KBug}) }

// CtxSw switches from the process descriptor in prev to the one in next.
func (fb *FuncBuilder) CtxSw(prev, next Reg) {
	fb.emit(Instr{Kind: KCtxSw, A: prev, B: next})
}
