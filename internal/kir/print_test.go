package kir

import (
	"strings"
	"testing"

	"kfi/internal/isa"
)

func TestInstrStrings(t *testing.T) {
	s := &Struct{Name: "proc", Fields: []Field{{Name: "pid", Width: W32}}}
	_ = s
	tests := []struct {
		in   Instr
		want string
	}{
		{Instr{Kind: KConst, Dst: 3, Imm: 42}, "v3 = const 42"},
		{Instr{Kind: KBin, Dst: 4, Bin: Add, A: 1, B: 2}, "v4 = add v1, v2"},
		{Instr{Kind: KBinImm, Dst: 4, Bin: Shl, A: 1, Imm: 3}, "v4 = shl v1, 3"},
		{Instr{Kind: KCmp, Dst: 5, Pred: ULt, A: 1, B: 2}, "v5 = cmp.ult v1, v2"},
		{Instr{Kind: KMov, Dst: 2, A: 1}, "v2 = v1"},
		{Instr{Kind: KLoad, Dst: 2, Width: W8, Signed: true, A: 1, Imm: 4}, "v2 = load8.s [v1+4]"},
		{Instr{Kind: KStore, Width: W32, A: 1, Imm: -8, B: 2}, "store32 [v1-8], v2"},
		{Instr{Kind: KGlobalAddr, Dst: 2, Sym: "jiffies"}, "v2 = &jiffies+0"},
		{Instr{Kind: KCall, Dst: 3, Sym: "f", Args: []Reg{1, 2}}, "v3 = call f(v1, v2)"},
		{Instr{Kind: KCall, Sym: "g", Args: nil}, "call g()"},
		{Instr{Kind: KCallPtr, A: 1, Args: []Reg{2}}, "call *v1(v2)"},
		{Instr{Kind: KSyscall, Dst: 4, Args: []Reg{1, 2}}, "v4 = syscall(v1, v2)"},
		{Instr{Kind: KRet, A: 1}, "ret v1"},
		{Instr{Kind: KRet}, "ret"},
		{Instr{Kind: KJmp, Then: "loop"}, "jmp loop"},
		{Instr{Kind: KBr, A: 1, Then: "a", Else: "b"}, "br v1, a, b"},
		{Instr{Kind: KIrqOff}, "irq.off"},
		{Instr{Kind: KHalt}, "halt"},
		{Instr{Kind: KBug}, "bug"},
		{Instr{Kind: KCtxSw, A: 1, B: 2}, "ctxsw v1, v2"},
		{Instr{Kind: KFuncAddr, Dst: 2, Sym: "sys_read"}, "v2 = &func.sys_read"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestProgramDump(t *testing.T) {
	pb := NewProgram()
	s := pb.Struct("pair", F32("a"), F8("b"), FArr("buf", W8, 4))
	pb.GlobalStruct("pairs", s, 3)
	pb.GlobalBytes("raw", 16, nil)
	pb.GlobalBSS("zeroed", 64)
	fb := pb.Func("sum", 1, true)
	fb.Local("tmp", W32, 2)
	fb.Block("entry")
	v := fb.AddI(fb.Param(0), 1)
	fb.Ret(v)

	out := pb.Program().Dump()
	for _, want := range []string{
		"struct pair { a:32, b:8, buf:8[4] }",
		"global pairs: [3]pair",
		"global raw: bytes[16]",
		"global zeroed: bss[64]",
		"func sum(1 params) -> v {",
		"local tmp [2 x 4 bytes]",
		"entry:",
		"v2 = add v1, 1",
		"ret v2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

// The layouts of every struct must differ between platforms whenever the
// struct contains sub-word scalars — the padding mechanism.
func TestDumpAndLayoutConsistency(t *testing.T) {
	pb := NewProgram()
	s := pb.Struct("mixed", F8("x"), F8("z"), F32("y"))
	cisc := NewLayout(isa.CISC)
	riscL := NewLayout(isa.RISC)
	if cisc.StructSize(s) >= riscL.StructSize(s) {
		t.Errorf("packed size %d should be smaller than padded %d (two bytes pack into one word)",
			cisc.StructSize(s), riscL.StructSize(s))
	}
}
