package kir

import (
	"errors"
	"fmt"
	"testing"

	"kfi/internal/isa"
)

// hardenCombos enumerates every enabled transform combination.
var hardenCombos = []HardenOpts{
	{Dup: true},
	{CFSig: true},
	{Dup: true, CFSig: true},
}

// hardenProg builds a program exercising every interpretable instruction
// kind: loops, conditional branches, direct/indirect/void calls, globals,
// struct fields, locals, guarded division, and shifts.
func hardenProg() *Program {
	pb := NewProgram()
	st := pb.Struct("pair", F32("lo"), F32("hi"))
	pb.GlobalStruct("pairs", st, 4)
	pb.GlobalBytes("blob", 64, []byte{1, 2, 3, 4})

	add := pb.Func("add2", 2, true)
	add.Block("e")
	add.Ret(add.Add(add.Param(0), add.Param(1)))

	note := pb.Func("note", 1, false)
	note.Block("e")
	g := note.GlobalAddr("blob", 8)
	note.Store(W32, g, 0, note.Param(0))
	note.Ret(0)

	f := pb.Func("work", 2, true)
	f.Local("scratch", W32, 4)
	f.Block("entry")
	acc := f.Var()
	i := f.Var()
	f.ConstTo(acc, 0)
	f.ConstTo(i, 0)
	fp := f.FuncAddr("add2")
	f.Jmp("head")

	f.Block("head")
	cond := f.Cmp(Lt, i, f.Param(0))
	f.Br(cond, "body", "done")

	f.Block("body")
	// Struct traffic through KIndex/KFieldAddr/KStoreField/KLoadField.
	base := f.GlobalAddr("pairs", 0)
	el := f.Index(pb.prog.Struct("pair"), base, f.BinImm(And, i, 3))
	f.StoreField(pb.prog.Struct("pair"), "lo", el, i)
	lo := f.LoadField(pb.prog.Struct("pair"), "lo", el)
	f.MovTo(acc, f.Add(acc, lo))
	// Local scratch traffic.
	sc := f.LocalAddr("scratch", 4)
	f.Store(W16, sc, 2, acc)
	f.MovTo(acc, f.Add(acc, f.Load(W16, sc, 2)))
	// Calls: direct, indirect, void.
	f.MovTo(acc, f.Add(acc, f.Call("add2", i, f.Param(1))))
	f.MovTo(acc, f.Add(acc, f.CallPtr(fp, true, acc, i)))
	f.CallVoid("note", acc)
	// Guarded division and shifts.
	den := f.BinImm(Or, f.Param(1), 1)
	f.MovTo(acc, f.Add(acc, f.Bin(Div, acc, den)))
	f.MovTo(acc, f.Bin(Xor, acc, f.BinImm(Shl, i, 3)))
	f.MovTo(i, f.AddI(i, 1))
	f.Jmp("head")

	f.Block("done")
	neg := f.CmpI(Lt, acc, 0)
	f.Br(neg, "flip", "out")
	f.Block("flip")
	f.MovTo(acc, f.Bin(Sub, f.Const(0), acc))
	f.Jmp("out")
	f.Block("out")
	f.Ret(acc)

	return pb.Program()
}

// runHardenProg interprets work(n, k) and returns the result plus the final
// global-memory contents.
func runHardenProg(t *testing.T, p *Program, n, k uint32) (uint32, []byte) {
	t.Helper()
	ip, err := NewInterp(p, NewLayout(isa.CISC))
	if err != nil {
		t.Fatal(err)
	}
	ip.Syscall = func(no, a, b, c uint32) (uint32, error) {
		return 0, fmt.Errorf("unexpected syscall %#x in fault-free run", no)
	}
	v, err := ip.Call("work", n, k)
	if err != nil {
		t.Fatal(err)
	}
	end := ip.GlobalAddr("blob") + 64
	mem, err := ip.ReadBytes(interpBase, end-interpBase)
	if err != nil {
		t.Fatal(err)
	}
	return v, mem
}

// TestHardenFaultFree proves the transforms are semantics-preserving: on
// fault-free inputs every hardened variant computes the plain program's
// results and memory effects, and the detector is never reached.
func TestHardenFaultFree(t *testing.T) {
	plain := hardenProg()
	wantV, wantMem := runHardenProg(t, plain, 7, 3)
	for _, opts := range hardenCombos {
		hard := Harden(hardenProg(), opts)
		if hard.Func(DetectFunc) == nil {
			t.Fatalf("%v: no detector function synthesized", opts)
		}
		if err := hard.Validate(); err != nil {
			t.Fatalf("%v: hardened program invalid: %v", opts, err)
		}
		gotV, gotMem := runHardenProg(t, hard, 7, 3)
		if gotV != wantV {
			t.Errorf("%v: work() = %d, unhardened %d", opts, gotV, wantV)
		}
		if string(gotMem) != string(wantMem) {
			t.Errorf("%v: global memory diverged from unhardened run", opts)
		}
	}
}

// TestHardenLeavesInputUntouched proves Harden transforms a copy: the input
// program dumps identically before and after.
func TestHardenLeavesInputUntouched(t *testing.T) {
	p := hardenProg()
	before := p.Dump()
	for _, opts := range hardenCombos {
		Harden(p, opts)
	}
	if p.Dump() != before {
		t.Fatal("Harden modified its input program")
	}
}

// TestHardenIdempotent proves disabled options and already-hardened inputs
// pass through unchanged, so double application cannot double the checks.
func TestHardenIdempotent(t *testing.T) {
	p := hardenProg()
	if got := Harden(p, HardenOpts{}); got != p {
		t.Fatal("Harden with zero options must return the input")
	}
	h := Harden(p, HardenOpts{Dup: true, CFSig: true})
	if got := Harden(h, HardenOpts{Dup: true}); got != h {
		t.Fatal("re-hardening a hardened program must be a no-op")
	}
}

// errDetected marks a detector invocation observed by the test hook.
var errDetected = errors.New("detected")

// interpDetects runs work(5,2) on p and reports whether the detector fired
// (via DetectHypercall) and the site it reported.
func interpDetects(t *testing.T, p *Program) (bool, uint32) {
	t.Helper()
	ip, err := NewInterp(p, NewLayout(isa.RISC))
	if err != nil {
		t.Fatal(err)
	}
	var site uint32
	fired := false
	ip.Syscall = func(no, a, b, c uint32) (uint32, error) {
		if no != DetectHypercall {
			return 0, fmt.Errorf("unexpected syscall %#x", no)
		}
		fired = true
		site = a
		return 0, errDetected
	}
	_, err = ip.Call("work", 5, 2)
	if fired && !errors.Is(err, errDetected) {
		t.Fatalf("detector fired but run ended with %v", err)
	}
	return fired, site
}

// TestHardenDetectsDataError simulates a computation error — one original
// instruction's result silently off by one, the shadow path intact — and
// proves the duplication checks trap it into the detector with a site id.
func TestHardenDetectsDataError(t *testing.T) {
	hard := Harden(hardenProg(), HardenOpts{Dup: true})
	f := hard.Func("work")
	// Corrupt the primary copy of the first KBinImm in the loop body whose
	// destination has a shadow; its shadow twin computes the true value.
	nregs := Reg(hardenProg().Func("work").NumRegs())
	found := false
outer:
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Kind == KBinImm && in.Bin == And && in.Dst <= nregs {
				in.Imm ^= 1
				found = true
				break outer
			}
		}
	}
	if !found {
		t.Fatal("no corruptible instruction found")
	}
	fired, site := interpDetects(t, hard)
	if !fired {
		t.Fatal("duplication checks missed a corrupted primary computation")
	}
	if site == 0 {
		t.Fatal("detector reported site 0; sites start at 1")
	}
}

// TestHardenDetectsFlowError simulates a control-flow error — a jump
// rewired to the wrong block — and proves the signature checks catch it.
func TestHardenDetectsFlowError(t *testing.T) {
	hard := Harden(hardenProg(), HardenOpts{CFSig: true})
	f := hard.Func("work")
	// Rewire the loop latch's back edge to "done": control arrives with the
	// signature set for "head".
	found := false
	for _, b := range f.Blocks {
		if n := len(b.Instrs); n > 0 {
			in := &b.Instrs[n-1]
			if in.Kind == KJmp && in.Then == "head" && b.Name != "entry" {
				in.Then = "done"
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no back edge found to rewire")
	}
	fired, _ := interpDetects(t, hard)
	if !fired {
		t.Fatal("signature checks missed a rewired control transfer")
	}
}
