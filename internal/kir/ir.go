// Package kir defines the kernel intermediate representation: a small, typed,
// non-SSA IR in which the guest operating system and the workload programs
// are written exactly once. The compiler (internal/cc) lowers it to both
// processor ISAs with platform-faithful conventions — packed data layout,
// few registers and stack-heavy frames on the CISC target; word-padded
// layout, many callee-saved registers and link-register frames on the RISC
// target — so the architecture is the only variable between the two guest
// kernels, mirroring the paper's experimental design.
//
// The package also provides a reference interpreter used as a differential-
// testing oracle against both compiled backends.
package kir

import "fmt"

// Width is a scalar width in bytes.
type Width uint8

// Scalar widths.
const (
	W8  Width = 1
	W16 Width = 2
	W32 Width = 4
)

// Reg is a virtual register identifier. Register 0 is invalid.
type Reg int

// BinOp is a two-operand arithmetic/logic operation.
type BinOp uint8

// Binary operations. Div/Rem semantics on divide-by-zero are platform-
// faithful (trap on CISC, undefined-result on RISC); guest code must guard.
const (
	Add BinOp = iota + 1
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr // logical
	Sar // arithmetic
)

var binNames = [...]string{Add: "add", Sub: "sub", Mul: "mul", Div: "div",
	Rem: "rem", And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr", Sar: "sar"}

// String returns the operation name.
func (b BinOp) String() string {
	if int(b) < len(binNames) && binNames[b] != "" {
		return binNames[b]
	}
	return fmt.Sprintf("bin%d", b)
}

// Pred is a comparison predicate.
type Pred uint8

// Comparison predicates (signed unless prefixed U).
const (
	Eq Pred = iota + 1
	Ne
	Lt
	Le
	Gt
	Ge
	ULt
	ULe
	UGt
	UGe
)

var predNames = [...]string{Eq: "eq", Ne: "ne", Lt: "lt", Le: "le", Gt: "gt",
	Ge: "ge", ULt: "ult", ULe: "ule", UGt: "ugt", UGe: "uge"}

// String returns the predicate name.
func (p Pred) String() string {
	if int(p) < len(predNames) && predNames[p] != "" {
		return predNames[p]
	}
	return fmt.Sprintf("pred%d", p)
}

// Kind discriminates IR instructions.
type Kind uint8

// Instruction kinds.
const (
	KInvalid    Kind = iota
	KConst           // Dst = Imm
	KBin             // Dst = A <BinOp> B
	KBinImm          // Dst = A <BinOp> Imm
	KCmp             // Dst = A <Pred> B (0/1)
	KCmpImm          // Dst = A <Pred> Imm
	KMov             // Dst = A
	KLoad            // Dst = load Width [A + Imm]; Signed sign-extends
	KStore           // store Width [A + Imm] = B
	KLoadField       // Dst = load field Sym.Field at [A]
	KStoreField      // store field Sym.Field at [A] = B
	KFieldAddr       // Dst = A + offsetof(Sym, Field)
	KIndex           // Dst = A + B*sizeof(Sym)
	KGlobalAddr      // Dst = &Sym + Imm
	KLocalAddr       // Dst = &local[Sym] + Imm
	KCall            // Dst? = Sym(Args...)
	KCallPtr         // Dst? = (*A)(Args...)
	KRet             // return A (A may be 0 for void)
	KJmp             // goto Then
	KBr              // if A != 0 goto Then else Else
	KIrqOff          // disable interrupts
	KIrqOn           // enable interrupts
	KHalt            // idle until next interrupt
	KBug             // kernel BUG(): deliberate invalid instruction
	KCtxSw           // context switch: prev desc in A, next desc in B
	KFuncAddr        // Dst = address of function Sym (for call tables)
	KSyscall         // Dst = syscall(Args[0]=number, Args[1..3]=arguments)
)

// Instr is one IR instruction. Fields are used according to Kind.
type Instr struct {
	Kind   Kind
	Dst    Reg
	A, B   Reg
	Imm    int32
	Width  Width
	Signed bool
	Bin    BinOp
	Pred   Pred
	Sym    string
	Field  int
	Args   []Reg
	Then   string
	Else   string
}

// Field describes one scalar or small-array member of a Struct.
type Field struct {
	Name  string
	Width Width
	Count int // array length; 0 or 1 for a scalar
}

func (f Field) count() int {
	if f.Count <= 1 {
		return 1
	}
	return f.Count
}

// Struct is a named record type. Its byte layout is platform-dependent; use
// Layout to resolve offsets and sizes.
type Struct struct {
	Name   string
	Fields []Field
}

// FieldIndex returns the index of the named field, or -1.
func (s *Struct) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Global is one named object in the kernel data section.
type Global struct {
	Name string
	// Type and Count describe an array of Count structs. For raw
	// buffers/blobs, Type is nil and Size gives the byte size.
	Type  *Struct
	Count int
	Size  uint32
	// Init holds initial field values, element-major then field-major
	// (Count*len(Fields) entries; missing entries are zero). Array fields
	// are initialized to zero. For blobs, InitBytes seeds the buffer.
	Init      []uint32
	InitBytes []byte
	// BSS marks uninitialized data placed in the bss region.
	BSS bool
	// Heap marks dynamically-backed storage (page cache, packet buffers)
	// placed in the heap section — outside the kernel's static data/bss,
	// and therefore outside the data-injection campaign's target space.
	Heap bool
}

// Local is a function-local memory object (array/struct/address-taken slot).
// Scalar temporaries live in virtual registers instead.
type Local struct {
	Name  string
	Width Width
	Count int // element count
}

// Size returns the logical byte size of the local.
func (l Local) Size() uint32 { return uint32(l.Width) * uint32(l.Count) }

// Block is a basic block. The final instruction must be a terminator
// (KRet, KJmp, or KBr).
type Block struct {
	Name   string
	Instrs []Instr
}

// Terminated reports whether the block ends in a terminator.
func (b *Block) Terminated() bool {
	if len(b.Instrs) == 0 {
		return false
	}
	switch b.Instrs[len(b.Instrs)-1].Kind {
	case KRet, KJmp, KBr:
		return true
	default:
		return false
	}
}

// Func is one IR function.
type Func struct {
	Name    string
	NParams int
	HasRet  bool
	Locals  []Local
	Blocks  []*Block
	nextReg Reg
}

// Param returns the virtual register holding parameter i (0-based).
// Parameters occupy registers 1..NParams.
func (f *Func) Param(i int) Reg {
	if i < 0 || i >= f.NParams {
		panic(fmt.Sprintf("kir: %s has no param %d", f.Name, i))
	}
	return Reg(i + 1)
}

// NumRegs returns the number of virtual registers used (including params).
func (f *Func) NumRegs() int { return int(f.nextReg) }

// LocalIndex returns the index of the named local, or -1.
func (f *Func) LocalIndex(name string) int {
	for i, l := range f.Locals {
		if l.Name == name {
			return i
		}
	}
	return -1
}

// Block returns the named block, or nil.
func (f *Func) Block(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Program is a complete IR compilation unit.
type Program struct {
	Structs []*Struct
	Globals []*Global
	Funcs   []*Func
}

// Struct returns the named struct, or nil.
func (p *Program) Struct(name string) *Struct {
	for _, s := range p.Structs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Global returns the named global, or nil.
func (p *Program) Global(name string) *Global {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// Func returns the named function, or nil.
func (p *Program) Func(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Validate checks structural invariants: terminated blocks, resolvable
// symbols, register bounds, parameter counts.
func (p *Program) Validate() error {
	for _, f := range p.Funcs {
		if len(f.Blocks) == 0 {
			return fmt.Errorf("kir: func %s has no blocks", f.Name)
		}
		for _, b := range f.Blocks {
			if !b.Terminated() {
				return fmt.Errorf("kir: %s.%s not terminated", f.Name, b.Name)
			}
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if err := p.validateInstr(f, b, in); err != nil {
					return err
				}
				if i != len(b.Instrs)-1 {
					switch in.Kind {
					case KRet, KJmp, KBr:
						return fmt.Errorf("kir: %s.%s has terminator mid-block", f.Name, b.Name)
					}
				}
			}
		}
	}
	return nil
}

func (p *Program) validateInstr(f *Func, b *Block, in *Instr) error {
	ctx := func() string { return fmt.Sprintf("kir: %s.%s", f.Name, b.Name) }
	checkReg := func(r Reg) error {
		if r <= 0 || int(r) > f.NumRegs() {
			return fmt.Errorf("%s: bad register %d", ctx(), r)
		}
		return nil
	}
	switch in.Kind {
	case KJmp:
		if f.Block(in.Then) == nil {
			return fmt.Errorf("%s: jump to unknown block %q", ctx(), in.Then)
		}
	case KBr:
		if f.Block(in.Then) == nil || f.Block(in.Else) == nil {
			return fmt.Errorf("%s: branch to unknown block %q/%q", ctx(), in.Then, in.Else)
		}
		return checkReg(in.A)
	case KCall:
		callee := p.Func(in.Sym)
		if callee == nil {
			return fmt.Errorf("%s: call to unknown func %q", ctx(), in.Sym)
		}
		if len(in.Args) != callee.NParams {
			return fmt.Errorf("%s: call %s with %d args, want %d", ctx(), in.Sym, len(in.Args), callee.NParams)
		}
		if in.Dst != 0 && !callee.HasRet {
			return fmt.Errorf("%s: call %s uses result of void func", ctx(), in.Sym)
		}
	case KLoadField, KStoreField, KFieldAddr, KIndex:
		s := p.Struct(in.Sym)
		if s == nil {
			return fmt.Errorf("%s: unknown struct %q", ctx(), in.Sym)
		}
		if in.Kind != KIndex && (in.Field < 0 || in.Field >= len(s.Fields)) {
			return fmt.Errorf("%s: struct %q has no field %d", ctx(), in.Sym, in.Field)
		}
	case KGlobalAddr:
		if p.Global(in.Sym) == nil {
			return fmt.Errorf("%s: unknown global %q", ctx(), in.Sym)
		}
	case KFuncAddr:
		if p.Func(in.Sym) == nil {
			return fmt.Errorf("%s: unknown func %q", ctx(), in.Sym)
		}
	case KLocalAddr:
		if f.LocalIndex(in.Sym) < 0 {
			return fmt.Errorf("%s: unknown local %q", ctx(), in.Sym)
		}
	case KRet:
		if f.HasRet && in.A == 0 {
			return fmt.Errorf("%s: ret without value in value-returning func", ctx())
		}
	}
	return nil
}
