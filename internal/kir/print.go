package kir

import (
	"fmt"
	"strings"
)

// String renders one instruction in a readable three-address syntax.
func (in Instr) String() string {
	r := func(x Reg) string { return fmt.Sprintf("v%d", x) }
	switch in.Kind {
	case KConst:
		return fmt.Sprintf("%s = const %d", r(in.Dst), in.Imm)
	case KBin:
		return fmt.Sprintf("%s = %s %s, %s", r(in.Dst), in.Bin, r(in.A), r(in.B))
	case KBinImm:
		return fmt.Sprintf("%s = %s %s, %d", r(in.Dst), in.Bin, r(in.A), in.Imm)
	case KCmp:
		return fmt.Sprintf("%s = cmp.%s %s, %s", r(in.Dst), in.Pred, r(in.A), r(in.B))
	case KCmpImm:
		return fmt.Sprintf("%s = cmp.%s %s, %d", r(in.Dst), in.Pred, r(in.A), in.Imm)
	case KMov:
		return fmt.Sprintf("%s = %s", r(in.Dst), r(in.A))
	case KLoad:
		sx := ""
		if in.Signed {
			sx = ".s"
		}
		return fmt.Sprintf("%s = load%d%s [%s%+d]", r(in.Dst), in.Width*8, sx, r(in.A), in.Imm)
	case KStore:
		return fmt.Sprintf("store%d [%s%+d], %s", in.Width*8, r(in.A), in.Imm, r(in.B))
	case KLoadField:
		return fmt.Sprintf("%s = %s.field[%d] @%s", r(in.Dst), in.Sym, in.Field, r(in.A))
	case KStoreField:
		return fmt.Sprintf("%s.field[%d] @%s = %s", in.Sym, in.Field, r(in.A), r(in.B))
	case KFieldAddr:
		return fmt.Sprintf("%s = &%s.field[%d] @%s", r(in.Dst), in.Sym, in.Field, r(in.A))
	case KIndex:
		return fmt.Sprintf("%s = %s + %s*sizeof(%s)", r(in.Dst), r(in.A), r(in.B), in.Sym)
	case KGlobalAddr:
		return fmt.Sprintf("%s = &%s%+d", r(in.Dst), in.Sym, in.Imm)
	case KLocalAddr:
		return fmt.Sprintf("%s = &local.%s%+d", r(in.Dst), in.Sym, in.Imm)
	case KFuncAddr:
		return fmt.Sprintf("%s = &func.%s", r(in.Dst), in.Sym)
	case KCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = r(a)
		}
		if in.Dst != 0 {
			return fmt.Sprintf("%s = call %s(%s)", r(in.Dst), in.Sym, strings.Join(args, ", "))
		}
		return fmt.Sprintf("call %s(%s)", in.Sym, strings.Join(args, ", "))
	case KCallPtr:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = r(a)
		}
		if in.Dst != 0 {
			return fmt.Sprintf("%s = call *%s(%s)", r(in.Dst), r(in.A), strings.Join(args, ", "))
		}
		return fmt.Sprintf("call *%s(%s)", r(in.A), strings.Join(args, ", "))
	case KSyscall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = r(a)
		}
		return fmt.Sprintf("%s = syscall(%s)", r(in.Dst), strings.Join(args, ", "))
	case KRet:
		if in.A != 0 {
			return fmt.Sprintf("ret %s", r(in.A))
		}
		return "ret"
	case KJmp:
		return fmt.Sprintf("jmp %s", in.Then)
	case KBr:
		return fmt.Sprintf("br %s, %s, %s", r(in.A), in.Then, in.Else)
	case KIrqOff:
		return "irq.off"
	case KIrqOn:
		return "irq.on"
	case KHalt:
		return "halt"
	case KBug:
		return "bug"
	case KCtxSw:
		return fmt.Sprintf("ctxsw %s, %s", r(in.A), r(in.B))
	default:
		return fmt.Sprintf("?kind(%d)", in.Kind)
	}
}

// Dump renders one function as readable IR.
func (f *Func) Dump() string {
	var b strings.Builder
	ret := ""
	if f.HasRet {
		ret = " -> v"
	}
	fmt.Fprintf(&b, "func %s(%d params)%s {\n", f.Name, f.NParams, ret)
	for _, lo := range f.Locals {
		fmt.Fprintf(&b, "  local %s [%d x %d bytes]\n", lo.Name, lo.Count, lo.Width)
	}
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:\n", blk.Name)
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "  %s\n", in)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Dump renders the whole program: types, globals, and functions.
func (p *Program) Dump() string {
	var b strings.Builder
	for _, s := range p.Structs {
		fmt.Fprintf(&b, "struct %s {", s.Name)
		for i, fl := range s.Fields {
			if i > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, " %s:%d", fl.Name, fl.Width*8)
			if fl.Count > 1 {
				fmt.Fprintf(&b, "[%d]", fl.Count)
			}
		}
		b.WriteString(" }\n")
	}
	for _, g := range p.Globals {
		switch {
		case g.Type != nil:
			fmt.Fprintf(&b, "global %s: [%d]%s\n", g.Name, g.Count, g.Type.Name)
		case g.BSS:
			fmt.Fprintf(&b, "global %s: bss[%d]\n", g.Name, g.Size)
		default:
			fmt.Fprintf(&b, "global %s: bytes[%d]\n", g.Name, g.Size)
		}
	}
	for _, f := range p.Funcs {
		b.WriteString(f.Dump())
	}
	return b.String()
}
