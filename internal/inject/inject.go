// Package inject implements the error model and the breakpoint-driven
// injector from the paper's §3: single-bit errors in kernel code, kernel
// data, kernel stacks, and CPU system registers, with activation monitored
// through the processor debug registers exactly as NFTAPE's driver-based
// injector does —
//
//   - code: an instruction breakpoint fires before the target instruction
//     executes; the bit is flipped at that moment (error persists for the
//     rest of the run);
//   - stack/data: the bit is flipped up front and a data breakpoint watches
//     the word; a read access activates the error, a write access overwrites
//     it so the injector re-inserts the flip (and counts it activated);
//   - system registers: the bit is flipped in the register at run start;
//     activation cannot be observed (paper footnote 1).
package inject

import (
	"fmt"

	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/machine"
)

// Campaign selects the injection target class.
type Campaign int

// Campaigns, in the paper's table order.
const (
	CampStack Campaign = iota + 1
	CampSysReg
	CampData
	CampCode
)

// String returns the campaign name used in tables.
func (c Campaign) String() string {
	switch c {
	case CampStack:
		return "Stack"
	case CampSysReg:
		return "System Registers"
	case CampData:
		return "Data"
	case CampCode:
		return "Code"
	default:
		return fmt.Sprintf("Campaign(%d)", int(c))
	}
}

// Target is one pre-generated injection (STEP 1 of the paper's process).
type Target struct {
	Campaign Campaign
	// Addr is the target memory address: the instruction start address for
	// code injections, the byte address for stack/data injections.
	Addr uint32
	// ByteOff selects the byte within the instruction for code injections
	// (variable-length instructions have several).
	ByteOff uint8
	// Bit is the bit to flip: 0-7 within the byte for memory targets, 0-31
	// within the register for system-register targets.
	Bit uint
	// Reg indexes Machine.SystemRegisters() for CampSysReg.
	Reg int
	// RegName is recorded for analysis.
	RegName string
	// Reg indexes into the register file only for CampSysReg targets.
	// ProcSlot records which process stack is targeted (CampStack).
	ProcSlot int
	// StackPos picks the position within the live stack extent (CampStack);
	// the concrete address is resolved at injection time.
	StackPos uint32
	// Delay is the injection trigger time in cycles after boot (CampStack
	// and CampSysReg inject mid-run; 0 injects before the benchmark).
	Delay uint64
	// Func records the targeted kernel function (CampCode).
	Func string
	// Burst widens the error model beyond the paper: 0 or 1 is the paper's
	// single-bit flip; k > 1 flips k adjacent bits starting at Bit (a
	// multi-bit upset), wrapping within the byte for memory targets and
	// within the register width for system-register targets.
	Burst uint8
}

// burstWidth normalizes Burst to an iteration count.
func (t Target) burstWidth() uint {
	if t.Burst <= 1 {
		return 1
	}
	return uint(t.Burst)
}

// flipMemory applies the target's (possibly multi-bit) error to the byte at
// addr.
func flipMemory(m *machine.Machine, addr uint32, t Target) {
	for i := uint(0); i < t.burstWidth(); i++ {
		m.Mem.FlipBit(addr, (t.Bit+i)%8)
	}
}

// Outcome is the classification of one injection run (the paper's Table 2).
type Outcome int

// Outcomes.
const (
	// ONotActivated: the corrupted state was never executed/used.
	ONotActivated Outcome = iota + 1
	// ONotManifested: activated, but no visible abnormal impact.
	ONotManifested
	// OFailSilence: the OS or the instrumented benchmark let incorrect
	// data/responses out, or erroneously detected an error.
	OFailSilence
	// OCrash: the OS stopped with a known crash cause (dump collected).
	OCrash
	// OHangUnknown: watchdog-detected hang or a crash whose dump could not
	// be collected (the paper's combined "Hang/Unknown Crash" column).
	OHangUnknown
	// OQuarantined: the harness, not the guest, failed — the injection run
	// panicked or exceeded its wall-clock watchdog on every supervised
	// attempt, so its outcome is unknowable and the experiment is set aside
	// with diagnostics (Result.Diag) instead of aborting the campaign. It is
	// a property of the measurement apparatus and is excluded from the
	// paper's failure-distribution columns.
	OQuarantined
	// ODetected: a hardened guest's software fault detector (the kir
	// duplication/signature checks) caught the error and halted cleanly
	// before it could propagate — the coverage the hardened-study campaigns
	// measure. Appended after OQuarantined so journal and protocol
	// encodings of the earlier outcomes stay stable.
	ODetected
)

// String returns the outcome label.
func (o Outcome) String() string {
	switch o {
	case ONotActivated:
		return "not-activated"
	case ONotManifested:
		return "not-manifested"
	case OFailSilence:
		return "fail-silence-violation"
	case OCrash:
		return "crash"
	case OHangUnknown:
		return "hang/unknown"
	case OQuarantined:
		return "quarantined"
	case ODetected:
		return "detected"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Result records one injection run (STEP 3 of the paper's process).
type Result struct {
	Target    Target
	Activated bool
	// ActivationKnown is false for system-register injections, where kernel
	// register usage cannot be monitored.
	ActivationKnown bool
	Outcome         Outcome
	Cause           isa.CrashCause
	// Latency is the cycles-to-crash: activation (or injection, for system
	// registers) to the crash, including the Figure 3 exception stages.
	Latency uint64
	// RunCycles is the total run length.
	RunCycles uint64
	// CrashPC/CrashFunc locate the crash for diagnosis.
	CrashPC   uint32
	CrashFunc string
	Checksum  uint32
	// Diag carries harness-side diagnostics for OQuarantined results: the
	// captured panic value (with the failing frame) or the watchdog timeout,
	// plus the attempt count. Empty for every guest-classified outcome, so
	// existing logs and tables are unchanged.
	Diag string `json:"Diag,omitempty"`

	// PredClass/PredInert carry the static pre-pass verdict
	// (internal/staticsense) when a campaign runs with sensing enabled:
	// the flip's classification-lattice class and whether the analyzer
	// predicted it inert. Both stay zero when sensing is off, so existing
	// journals and logs are unchanged.
	PredClass string `json:"PredClass,omitempty"`
	PredInert bool   `json:"PredInert,omitempty"`
	// PredSkipped marks results a pruned campaign synthesized from the
	// golden run instead of executing, on the strength of an inert
	// prediction.
	PredSkipped bool `json:"PredSkipped,omitempty"`
	// PredCached marks results an incremental campaign may satisfy from the
	// per-section outcome cache (campaign.ExecOptions.SectionCache). It is
	// stamped on cold runs too — the marker records cache *membership*, not
	// a hit — so a warm re-run's table and journal stay byte-identical to
	// the cold run that populated the cache.
	PredCached bool `json:"PredCached,omitempty"`
	// DetectSite identifies the hardening check that fired for ODetected
	// results (the site id compiled into the failed consistency/signature
	// check). Zero otherwise, so unhardened journals and logs are unchanged.
	DetectSite uint32 `json:"DetectSite,omitempty"`
}

// RunOne reboots the system, installs the target, runs the benchmark, and
// classifies the outcome against the golden checksum.
func RunOne(sys *kernel.System, t Target, golden uint32) Result {
	m := sys.Machine
	m.Reboot()

	// Mid-run triggers: run uninstrumented until the injection time. If the
	// benchmark finishes first, the pre-generated error was never injected
	// (the paper: "some of the pre-generated errors are never injected
	// because a corresponding breakpoint is never reached").
	if t.Delay > 0 {
		m.PauseAt = t.Delay
		pre := m.Run()
		if pre.Outcome != machine.OutPaused {
			return Result{Target: t, ActivationKnown: t.Campaign != CampSysReg,
				Outcome: ONotActivated, RunCycles: pre.Cycles, Checksum: pre.Checksum}
		}
	}

	return RunFrom(sys, t, golden)
}

// RunFrom installs the target into the machine's current state, runs to an
// outcome, and classifies it against the golden checksum. The machine must
// already sit at the injection point: freshly rebooted for immediate targets,
// or paused at the target's Delay cycle — either by RunOne's uninstrumented
// advance or by a snapshot restore of that same golden prefix
// (fork-from-golden injection).
func RunFrom(sys *kernel.System, t Target, golden uint32) Result {
	m := sys.Machine

	res := Result{Target: t, ActivationKnown: t.Campaign != CampSysReg}
	var activationCycle uint64
	clock := m.Core().Clock()
	activate := func() {
		if !res.Activated {
			res.Activated = true
			activationCycle = clock.Cycles()
			clock.Mark()
		}
	}

	const slot = 0
	armMemory := func(addr uint32) {
		watch := addr &^ 3 // the containing data word
		m.Core().Debug().Set(slot, isa.Breakpoint{Kind: isa.BreakData, Addr: watch, Len: 4})
		m.OnDataBreak = func(ev isa.Event) {
			if ev.Access == isa.AccessWrite {
				// The write overwrote the error; re-inject it.
				flipMemory(m, addr, t)
			}
			m.Core().Debug().Clear(slot)
			activate()
		}
	}
	switch t.Campaign {
	case CampCode:
		m.Core().Debug().Set(slot, isa.Breakpoint{Kind: isa.BreakInstruction, Addr: t.Addr})
		m.OnInstrBreak = func(ev isa.Event) {
			// The breakpoint reports before execution: flip the bit in the
			// instruction image, then let the corrupted instruction run.
			flipMemory(m, t.Addr+uint32(t.ByteOff), t)
			m.Core().Debug().Clear(slot)
			activate()
		}
		defer func() { m.OnInstrBreak = nil }()
	case CampData:
		flipMemory(m, t.Addr, t)
		armMemory(t.Addr)
		defer func() { m.OnDataBreak = nil }()
	case CampStack:
		// Resolve the target against the live stack extent of the chosen
		// process at injection time.
		addr := resolveStackAddr(sys, t)
		res.Target.Addr = addr
		flipMemory(m, addr, t)
		armMemory(addr)
		defer func() { m.OnDataBreak = nil }()
	case CampSysReg:
		regs := m.SystemRegisters()
		r := regs[t.Reg]
		var mask uint32
		for i := uint(0); i < t.burstWidth(); i++ {
			mask |= 1 << ((t.Bit + i) % r.Bits)
		}
		r.Set(r.Get() ^ mask)
		activationCycle = clock.Cycles()
		clock.Mark()
	}

	run := m.Run()
	res.RunCycles = run.Cycles
	res.Checksum = run.Checksum

	switch run.Outcome {
	case machine.OutCompleted:
		switch {
		case t.Campaign != CampSysReg && !res.Activated:
			res.Outcome = ONotActivated
		case run.Checksum == golden:
			res.Outcome = ONotManifested
		default:
			res.Outcome = OFailSilence
		}
	case machine.OutFailReported, machine.OutUserFault:
		// The application detected or exhibited erroneous behavior while
		// the OS kept running: a fail-silence violation.
		res.Outcome = OFailSilence
		markActivatedByManifestation(&res, t)
	case machine.OutHung:
		res.Outcome = OHangUnknown
		markActivatedByManifestation(&res, t)
	case machine.OutDetected:
		res.Outcome = ODetected
		res.DetectSite = run.Checksum
		res.Checksum = 0 // the hypercall argument is a site id, not a checksum
		markActivatedByManifestation(&res, t)
		res.Latency = run.Cycles - activationCycle
	case machine.OutCrashed:
		res.Cause = run.Crash.Cause
		res.CrashPC = run.Crash.PC
		if fr, ok := sys.KernelImage.FuncAt(run.Crash.PC); ok {
			res.CrashFunc = fr.Name
		}
		markActivatedByManifestation(&res, t)
		if run.Crash.Known {
			res.Outcome = OCrash
		} else {
			res.Outcome = OHangUnknown
		}
		res.Latency = run.Crash.Cycles - activationCycle
	}
	return res
}

// resolveStackAddr maps a target's StackPos onto the chosen process's live
// kernel stack extent: [SP, stack top) when the process is executing in the
// kernel, or the co-located task_struct area when its kernel stack is empty
// (the process is in user mode).
func resolveStackAddr(sys *kernel.System, t Target) uint32 {
	region, ok := sys.Machine.Mem.RegionByName(fmt.Sprintf("kstack%d", t.ProcSlot))
	if !ok {
		panic(fmt.Sprintf("inject: no stack region for slot %d", t.ProcSlot))
	}
	lo, hi := region.Start, region.End
	taskSize := sys.KernelImage.Layout.StructSize(sys.Src.Proc)
	sp := sys.LiveKernelSP(t.ProcSlot)
	switch {
	case sp > lo && sp < hi:
		lo = sp
	default:
		// Kernel stack empty: only the task_struct is live.
		hi = lo + taskSize
	}
	return lo + t.StackPos%(hi-lo)
}

// markActivatedByManifestation upgrades a manifested run to activated even
// when the breakpoint did not report (e.g. an instruction-fetch consumed the
// corrupted stack word through a path the data breakpoint cannot see).
func markActivatedByManifestation(res *Result, t Target) {
	if t.Campaign != CampSysReg {
		res.Activated = true
	}
}
