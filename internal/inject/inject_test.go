package inject_test

import (
	"testing"

	"kfi/internal/campaign"
	"kfi/internal/cc"
	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/workload"
)

func buildSystem(t *testing.T, p isa.Platform) (*kernel.System, uint32) {
	t.Helper()
	uimg, err := cc.Compile(workload.Program(1), p, kernel.UserBases)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := kernel.BuildSystem(p, uimg, workload.StandardProcs(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	golden, err := campaign.Golden(sys)
	if err != nil {
		t.Fatal(err)
	}
	return sys, golden
}

func TestCampaignStrings(t *testing.T) {
	tests := map[inject.Campaign]string{
		inject.CampStack:  "Stack",
		inject.CampSysReg: "System Registers",
		inject.CampData:   "Data",
		inject.CampCode:   "Code",
	}
	for c, want := range tests {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
}

func TestOutcomeStrings(t *testing.T) {
	tests := map[inject.Outcome]string{
		inject.ONotActivated:  "not-activated",
		inject.ONotManifested: "not-manifested",
		inject.OFailSilence:   "fail-silence-violation",
		inject.OCrash:         "crash",
		inject.OHangUnknown:   "hang/unknown",
	}
	for o, want := range tests {
		if o.String() != want {
			t.Errorf("Outcome(%d) = %q, want %q", int(o), o.String(), want)
		}
	}
}

func TestCodeBreakpointNeverReached(t *testing.T) {
	sys, golden := buildSystem(t, isa.CISC)
	// A breakpoint in the middle of an instruction never matches any fetch
	// address, so the pre-generated error is never injected.
	fr, ok := sys.KernelImage.FuncAt(sys.KernelImage.Sym("memcpy"))
	if !ok {
		t.Fatal("memcpy missing")
	}
	// The prologue is push ebp (1 byte) then mov ebp,esp (2 bytes), so
	// Start+2 is inside the mov and never matches a fetch.
	res := inject.RunOne(sys, inject.Target{
		Campaign: inject.CampCode,
		Addr:     fr.Start + 2, // mid-instruction: unreachable
		Bit:      0,
	}, golden)
	if res.Outcome != inject.ONotActivated {
		t.Errorf("outcome = %v, want not-activated", res.Outcome)
	}
	if res.Activated {
		t.Error("marked activated without the breakpoint firing")
	}
	if res.Checksum != golden {
		t.Errorf("untouched run checksum 0x%x, want golden 0x%x", res.Checksum, golden)
	}
}

func TestDelayedInjectionAfterCompletion(t *testing.T) {
	sys, golden := buildSystem(t, isa.RISC)
	res := inject.RunOne(sys, inject.Target{
		Campaign: inject.CampStack,
		ProcSlot: 2,
		StackPos: 123,
		Bit:      1,
		Delay:    1 << 40, // far beyond the benchmark's end
	}, golden)
	if res.Outcome != inject.ONotActivated {
		t.Errorf("outcome = %v, want not-activated (never injected)", res.Outcome)
	}
}

func TestDataWriteReinjection(t *testing.T) {
	sys, golden := buildSystem(t, isa.CISC)
	// jiffies is written by every timer tick: the data breakpoint must see
	// the write, the injector must re-insert the flip, and the error stays
	// live (activated).
	res := inject.RunOne(sys, inject.Target{
		Campaign: inject.CampData,
		Addr:     sys.KernelImage.Sym("jiffies"),
		Bit:      0,
	}, golden)
	if !res.Activated {
		t.Fatalf("jiffies flip not activated (outcome %v)", res.Outcome)
	}
	if res.Outcome == inject.ONotActivated {
		t.Error("outcome contradicts activation")
	}
}

func TestCodeErrorPersistsAcrossCalls(t *testing.T) {
	sys, golden := buildSystem(t, isa.CISC)
	// Flip a bit in csum_partial's loop; whatever the outcome, the flip
	// must have been applied exactly at the breakpoint (activated) and the
	// checksum comparison must classify it.
	fr, _ := sys.KernelImage.FuncAt(sys.KernelImage.Sym("csum_partial"))
	res := inject.RunOne(sys, inject.Target{
		Campaign: inject.CampCode,
		Addr:     fr.Start,
		ByteOff:  0,
		Bit:      3,
		Func:     "csum_partial",
	}, golden)
	if !res.Activated {
		t.Fatalf("hot-function breakpoint did not fire (outcome %v)", res.Outcome)
	}
	switch res.Outcome {
	case inject.ONotManifested, inject.OFailSilence, inject.OCrash, inject.OHangUnknown:
	default:
		t.Errorf("unexpected outcome %v", res.Outcome)
	}
}

func TestSysRegActivationUnknown(t *testing.T) {
	sys, golden := buildSystem(t, isa.RISC)
	regs := sys.Machine.SystemRegisters()
	idx := -1
	for i, r := range regs {
		if r.Name == "PVR" { // inert: processor version register
			idx = i
		}
	}
	if idx < 0 {
		t.Fatal("PVR not in register file")
	}
	res := inject.RunOne(sys, inject.Target{
		Campaign: inject.CampSysReg,
		Reg:      idx,
		RegName:  "PVR",
		Bit:      5,
		Delay:    10_000,
	}, golden)
	if res.ActivationKnown {
		t.Error("system-register activation must be unobservable")
	}
	if res.Outcome != inject.ONotManifested {
		t.Errorf("PVR flip outcome = %v, want not-manifested (inert register)", res.Outcome)
	}
}

func TestMSRTranslationFlipCrashesG4(t *testing.T) {
	sys, golden := buildSystem(t, isa.RISC)
	regs := sys.Machine.SystemRegisters()
	idx := -1
	for i, r := range regs {
		if r.Name == "MSR" {
			idx = i
		}
	}
	// MSR bit 4 is DR (data translation): flipping it off machine-checks
	// almost immediately (paper §5.2).
	res := inject.RunOne(sys, inject.Target{
		Campaign: inject.CampSysReg,
		Reg:      idx,
		RegName:  "MSR",
		Bit:      4,
		Delay:    200_000,
	}, golden)
	if res.Outcome != inject.OCrash && res.Outcome != inject.OHangUnknown {
		t.Fatalf("outcome = %v, want crash", res.Outcome)
	}
	if res.Outcome == inject.OCrash {
		if res.Cause != isa.CauseMachineCheck {
			t.Errorf("cause = %v, want machine check", res.Cause)
		}
		if res.Latency > 50_000 {
			t.Errorf("latency = %d, want nearly immediate", res.Latency)
		}
	}
}

func TestResolvedStackAddressRecorded(t *testing.T) {
	sys, golden := buildSystem(t, isa.CISC)
	res := inject.RunOne(sys, inject.Target{
		Campaign: inject.CampStack,
		ProcSlot: 1, // kupdate
		StackPos: 99,
		Bit:      2,
		Delay:    300_000,
	}, golden)
	region, _ := sys.Machine.Mem.RegionByName("kstack1")
	if res.Target.Addr < region.Start || res.Target.Addr >= region.End {
		t.Errorf("resolved stack address 0x%x outside kstack1 [0x%x,0x%x)",
			res.Target.Addr, region.Start, region.End)
	}
}

func TestBurstFlipsAdjacentBits(t *testing.T) {
	sys, golden := buildSystem(t, isa.CISC)
	// A 4-bit burst on a quiet BSS word: read the byte back right after the
	// pre-run flip via a zero-delay data injection that is never activated.
	addr := sys.KernelImage.Sym("zone_reserve")
	before := sys.Machine.Mem.RawRead(addr, 1)
	res := inject.RunOne(sys, inject.Target{
		Campaign: inject.CampData,
		Addr:     addr,
		Bit:      2,
		Burst:    4,
	}, golden)
	// zone_reserve is never touched by the benchmark: the flipped bits must
	// survive the whole run unchanged.
	after := sys.Machine.Mem.RawRead(addr, 1)
	if res.Outcome != inject.ONotActivated {
		t.Fatalf("outcome %v, want not-activated for reserve memory", res.Outcome)
	}
	want := before ^ (0b1111 << 2)
	if after != want {
		t.Errorf("burst flip: byte 0x%02X -> 0x%02X, want 0x%02X", before, after, want)
	}
}

func TestBurstWrapsWithinByte(t *testing.T) {
	sys, golden := buildSystem(t, isa.CISC)
	addr := sys.KernelImage.Sym("zone_reserve") + 1
	before := sys.Machine.Mem.RawRead(addr, 1)
	_ = inject.RunOne(sys, inject.Target{
		Campaign: inject.CampData,
		Addr:     addr,
		Bit:      6,
		Burst:    4, // bits 6, 7, 0, 1
	}, golden)
	after := sys.Machine.Mem.RawRead(addr, 1)
	want := before ^ 0b11000011
	if after != want {
		t.Errorf("wrapping burst: 0x%02X -> 0x%02X, want 0x%02X", before, after, want)
	}
}

func TestBurstZeroAndOneAreIdentical(t *testing.T) {
	sys, golden := buildSystem(t, isa.CISC)
	fr, _ := sys.KernelImage.FuncAt(sys.KernelImage.Sym("memcpy"))
	base := inject.Target{
		Campaign: inject.CampCode,
		Addr:     fr.Start,
		ByteOff:  0,
		Bit:      3,
		Func:     "memcpy",
	}
	r0 := inject.RunOne(sys, base, golden)
	b1 := base
	b1.Burst = 1
	r1 := inject.RunOne(sys, b1, golden)
	if r0.Outcome != r1.Outcome || r0.Cause != r1.Cause || r0.Checksum != r1.Checksum {
		t.Errorf("burst 0 vs 1 diverged: %v/%v vs %v/%v",
			r0.Outcome, r0.Cause, r1.Outcome, r1.Cause)
	}
}

func TestBurstSysRegMask(t *testing.T) {
	sys, golden := buildSystem(t, isa.CISC)
	// Find a register that tolerates corruption observationally: use the
	// scratch-free approach of injecting and reading the register list by
	// name both before and after RunOne's reboot is not possible (Reboot
	// restores state), so instead verify via a 2-bit burst on a register
	// and check the run still classifies into a defined outcome.
	regs := sys.Machine.SystemRegisters()
	idx := -1
	for i, r := range regs {
		if r.Name == "CR3" || r.Name == "DR6" {
			idx = i
			break
		}
	}
	if idx < 0 {
		idx = 0
	}
	res := inject.RunOne(sys, inject.Target{
		Campaign: inject.CampSysReg,
		Reg:      idx,
		RegName:  regs[idx].Name,
		Bit:      30,
		Burst:    4, // bits 30, 31, 0, 1 of a 32-bit register
		Delay:    9_000,
	}, golden)
	switch res.Outcome {
	case inject.ONotManifested, inject.OFailSilence, inject.OCrash, inject.OHangUnknown, inject.ONotActivated:
	default:
		t.Errorf("unclassified outcome %v", res.Outcome)
	}
	if res.ActivationKnown {
		t.Error("sysreg activation must be unknown (paper footnote 1)")
	}
}
