// Package snapshot implements the checkpoint/restore subsystem behind
// fork-from-golden injection: it checkpoints the complete guest state — CPU
// registers, system registers, debug registers, pending-trap and
// cycle-counter state, the machine's timer/watchdog scheduling, and the full
// memory image (which carries the kernel's scheduler and process state) —
// into an in-memory Snapshot, and restores it in O(dirty pages) using the
// copy-on-write page tracking of internal/mem.
//
// The intended pattern is the one FastFlip-style injection campaigns use:
// capture once at (or just before) an injection trigger point on the golden
// run, then restore-inject-resume for every experiment sharing that prefix
// instead of replaying from boot. Recapture advances an armed snapshot
// further along the golden run, again in O(dirty pages), so a campaign can
// chain incremental checkpoints across its trigger times and execute the
// golden prefix exactly once in total.
//
// Snapshots also serialize to a versioned, checksummed on-disk format
// (codec.go) so golden-prefix checkpoints can be reused across invocations
// (the kfi-campaign -snapshot-dir flag).
package snapshot

import (
	"fmt"
	"hash/fnv"

	"kfi/internal/machine"
)

// Snapshot is one captured guest checkpoint.
type Snapshot struct {
	// Cycles is the machine cycle count at capture (a convenience mirror of
	// the CPU cycle counter inside State).
	Cycles uint64

	// State is the CPU + machine run-loop state.
	State machine.State

	// Image is the full RAM contents at capture. While the snapshot is armed
	// as a machine's restore baseline the machine aliases this slice; mutate
	// it only through Recapture.
	Image []byte
}

// Capture checkpoints the machine's current state and arms the snapshot as
// the machine's restore baseline, so a later Restore on the same machine
// costs O(pages dirtied since capture).
func Capture(ma *machine.Machine) *Snapshot {
	ram := ma.Mem.RawBytes(0, ma.Mem.Size())
	image := make([]byte, len(ram))
	copy(image, ram)
	ma.Mem.SetBaseline(image, true)
	return &Snapshot{
		Cycles: ma.Core().Clock().Cycles(),
		State:  ma.SaveState(),
		Image:  image,
	}
}

// Armed reports whether s is the machine's active restore baseline (pointer
// identity on the image).
func (s *Snapshot) Armed(ma *machine.Machine) bool {
	b := ma.Mem.Baseline()
	return len(b) > 0 && len(s.Image) > 0 && &b[0] == &s.Image[0]
}

// Restore rewinds the machine to the snapshot. When the snapshot is the
// machine's armed baseline only dirty pages are copied; otherwise (a snapshot
// loaded from disk, or one captured on another machine of the same
// configuration) the full image is installed and the snapshot becomes the
// armed baseline. It returns the number of pages copied.
func (s *Snapshot) Restore(ma *machine.Machine) (int, error) {
	if want, got := uint32(len(s.Image)), ma.Mem.Size(); want != got {
		return 0, fmt.Errorf("snapshot: image is %d bytes, machine has %d", want, got)
	}
	if err := ma.RestoreState(&s.State); err != nil {
		return 0, err
	}
	if !s.Armed(ma) {
		// Installing a foreign image rewrites all of RAM. Generation bumps
		// from the full-copy RestoreBaseline below already invalidate stale
		// predecoded/translated state; the explicit flush just releases the
		// old image's cache pages at a natural boundary — and keeps engine
		// state out of checkpoints entirely.
		ma.Mem.SetBaseline(s.Image, false)
		ma.Engine().Flush()
	}
	return ma.Mem.RestoreBaseline(), nil
}

// Recapture advances an armed snapshot to the machine's current state in
// O(dirty pages): the image absorbs the pages dirtied since the last
// capture/restore and the CPU state is re-saved. The snapshot must be the
// machine's armed baseline. It returns the number of pages absorbed.
func (s *Snapshot) Recapture(ma *machine.Machine) (int, error) {
	if !s.Armed(ma) {
		return 0, fmt.Errorf("snapshot: Recapture of a snapshot that is not the machine's baseline")
	}
	n := ma.Mem.SyncBaseline()
	s.Cycles = ma.Core().Clock().Cycles()
	s.State = ma.SaveState()
	return n, nil
}

// GoldenKey fingerprints the golden prefix a machine will execute: platform,
// memory geometry, timer/watchdog configuration, and the sealed boot image.
// Two machines with equal keys run identical golden prefixes, so waypoint
// snapshots filed under the key are interchangeable between them.
func GoldenKey(ma *machine.Machine) string {
	cfg := ma.Config()
	h := fnv.New64a()
	var hdr [40]byte
	put32 := func(off int, v uint32) {
		hdr[off] = byte(v >> 24)
		hdr[off+1] = byte(v >> 16)
		hdr[off+2] = byte(v >> 8)
		hdr[off+3] = byte(v)
	}
	put32(0, uint32(cfg.Platform))
	put32(4, cfg.MemSize)
	put32(8, uint32(cfg.TimerPeriod>>32))
	put32(12, uint32(cfg.TimerPeriod))
	put32(16, uint32(cfg.Watchdog>>32))
	put32(20, uint32(cfg.Watchdog))
	put32(24, cfg.BootEntry)
	put32(28, cfg.BootSP)
	put32(32, cfg.FSBase)
	put32(36, cfg.SPRG2Value)
	h.Write(hdr[:])
	if p := ma.Mem.Pristine(); p != nil {
		h.Write(p)
	}
	return fmt.Sprintf("%s-%016x", cfg.Platform.Short(), h.Sum64())
}
