package snapshot_test

import (
	"bytes"
	"reflect"
	"testing"

	"kfi/internal/cc"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/machine"
	"kfi/internal/snapshot"
	"kfi/internal/workload"
)

func buildSystem(t *testing.T, p isa.Platform) *kernel.System {
	t.Helper()
	uimg, err := cc.Compile(workload.Program(1), p, kernel.UserBases)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := kernel.BuildSystem(p, uimg, workload.StandardProcs(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// pauseAt runs a freshly rebooted machine until the given cycle.
func pauseAt(t *testing.T, m *machine.Machine, cycle uint64) {
	t.Helper()
	m.Reboot()
	m.PauseAt = cycle
	if res := m.Run(); res.Outcome != machine.OutPaused {
		t.Fatalf("run ended (%v) before cycle %d", res.Outcome, cycle)
	}
}

func TestCaptureRestoreRoundTrip(t *testing.T) {
	for _, p := range []isa.Platform{isa.CISC, isa.RISC} {
		t.Run(p.Short(), func(t *testing.T) {
			sys := buildSystem(t, p)
			m := sys.Machine

			m.Reboot()
			golden := m.Run()
			if golden.Outcome != machine.OutCompleted {
				t.Fatalf("golden run: %v", golden.Outcome)
			}

			pauseAt(t, m, 40_000)
			snap := snapshot.Capture(m)
			pausedPC := m.Core().PC()

			// Let the machine run away from the checkpoint, then rewind.
			first := m.Run()
			if first.Outcome != machine.OutCompleted || first.Checksum != golden.Checksum {
				t.Fatalf("run from checkpoint: %v checksum 0x%x", first.Outcome, first.Checksum)
			}
			if _, err := snap.Restore(m); err != nil {
				t.Fatal(err)
			}
			if got := m.Core().Clock().Cycles(); got != snap.Cycles {
				t.Errorf("restored clock %d, want %d", got, snap.Cycles)
			}
			if got := m.Core().PC(); got != pausedPC {
				t.Errorf("restored PC 0x%x, want 0x%x", got, pausedPC)
			}
			second := m.Run()
			if second.Outcome != machine.OutCompleted ||
				second.Checksum != first.Checksum || second.Cycles != first.Cycles {
				t.Errorf("restored run diverged: %+v vs %+v", second, first)
			}
		})
	}
}

func TestRestoreIsIncremental(t *testing.T) {
	sys := buildSystem(t, isa.CISC)
	m := sys.Machine
	totalPages := int(m.Mem.Size()) / 4096

	pauseAt(t, m, 50_000)
	snap := snapshot.Capture(m)

	// Immediately after capture nothing is dirty.
	if n, err := snap.Restore(m); err != nil || n != 0 {
		t.Fatalf("clean restore copied %d pages (err %v), want 0", n, err)
	}

	m.PauseAt = 80_000
	if res := m.Run(); res.Outcome != machine.OutPaused {
		t.Fatalf("advance: %v", res.Outcome)
	}
	n, err := snap.Restore(m)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("dirty restore copied no pages")
	}
	if n >= totalPages/2 {
		t.Errorf("restore copied %d of %d pages; dirty tracking is not incremental", n, totalPages)
	}

	// Recapture absorbs the (clean) state in O(dirty)=0 and restores stay 0.
	if n, err := snap.Recapture(m); err != nil || n != 0 {
		t.Fatalf("clean recapture synced %d pages (err %v)", n, err)
	}
}

func TestRecaptureAdvancesSnapshot(t *testing.T) {
	sys := buildSystem(t, isa.RISC)
	m := sys.Machine

	pauseAt(t, m, 30_000)
	snap := snapshot.Capture(m)

	m.PauseAt = 60_000
	if res := m.Run(); res.Outcome != machine.OutPaused {
		t.Fatalf("advance: %v", res.Outcome)
	}
	n, err := snap.Recapture(m)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("recapture absorbed no pages after 30k cycles of execution")
	}
	if snap.Cycles != m.Core().Clock().Cycles() {
		t.Errorf("recaptured snapshot at cycle %d, machine at %d", snap.Cycles, m.Core().Clock().Cycles())
	}

	final := m.Run()
	if _, err := snap.Restore(m); err != nil {
		t.Fatal(err)
	}
	again := m.Run()
	if again.Outcome != final.Outcome || again.Checksum != final.Checksum || again.Cycles != final.Cycles {
		t.Errorf("run from recaptured snapshot diverged: %+v vs %+v", again, final)
	}
}

func TestRestoreIntoFreshMachine(t *testing.T) {
	for _, p := range []isa.Platform{isa.CISC, isa.RISC} {
		t.Run(p.Short(), func(t *testing.T) {
			sysA := buildSystem(t, p)
			pauseAt(t, sysA.Machine, 45_000)
			snap := snapshot.Capture(sysA.Machine)
			resA := sysA.Machine.Run()

			sysB := buildSystem(t, p)
			if _, err := snap.Restore(sysB.Machine); err != nil {
				t.Fatal(err)
			}
			resB := sysB.Machine.Run()
			if resB.Outcome != resA.Outcome || resB.Checksum != resA.Checksum || resB.Cycles != resA.Cycles {
				t.Errorf("fresh-machine resume diverged: %+v vs %+v", resB, resA)
			}
		})
	}
}

func TestPlatformMismatchRejected(t *testing.T) {
	sysC := buildSystem(t, isa.CISC)
	sysR := buildSystem(t, isa.RISC)
	pauseAt(t, sysC.Machine, 20_000)
	snap := snapshot.Capture(sysC.Machine)
	if _, err := snap.Restore(sysR.Machine); err == nil {
		t.Fatal("restoring a CISC snapshot onto a RISC machine succeeded")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, p := range []isa.Platform{isa.CISC, isa.RISC} {
		t.Run(p.Short(), func(t *testing.T) {
			sys := buildSystem(t, p)
			m := sys.Machine
			pauseAt(t, m, 35_000)
			snap := snapshot.Capture(m)
			resA := m.Run()

			var buf bytes.Buffer
			if err := snap.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			decoded, err := snapshot.Decode(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if decoded.Cycles != snap.Cycles {
				t.Errorf("decoded cycles %d, want %d", decoded.Cycles, snap.Cycles)
			}
			if !reflect.DeepEqual(decoded.State, snap.State) {
				t.Error("decoded machine state differs from the original")
			}
			if !bytes.Equal(decoded.Image, snap.Image) {
				t.Error("decoded memory image differs from the original")
			}

			if _, err := decoded.Restore(m); err != nil {
				t.Fatal(err)
			}
			resB := m.Run()
			if resB.Outcome != resA.Outcome || resB.Checksum != resA.Checksum || resB.Cycles != resA.Cycles {
				t.Errorf("run from decoded snapshot diverged: %+v vs %+v", resB, resA)
			}
		})
	}
}

func TestSaveLoad(t *testing.T) {
	sys := buildSystem(t, isa.CISC)
	m := sys.Machine
	pauseAt(t, m, 25_000)
	snap := snapshot.Capture(m)
	path := t.TempDir() + "/wp.ksnap"
	if err := snap.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := snapshot.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(loaded.Image, snap.Image) || loaded.Cycles != snap.Cycles {
		t.Error("loaded snapshot differs from the saved one")
	}
}

func TestGoldenKey(t *testing.T) {
	sysA := buildSystem(t, isa.CISC)
	sysB := buildSystem(t, isa.CISC)
	sysR := buildSystem(t, isa.RISC)
	if a, b := snapshot.GoldenKey(sysA.Machine), snapshot.GoldenKey(sysB.Machine); a != b {
		t.Errorf("identical builds have different keys: %s vs %s", a, b)
	}
	if a, r := snapshot.GoldenKey(sysA.Machine), snapshot.GoldenKey(sysR.Machine); a == r {
		t.Error("different platforms share a golden key")
	}
}
