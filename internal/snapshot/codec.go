package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"kfi/internal/isa"
	"kfi/internal/mem"
	"kfi/internal/platform"
)

// On-disk format (all integers big-endian):
//
//	magic   "KFISNAP1"                       (8 bytes: name + version)
//	u32     platform
//	u64     cycles
//	u64     nextTimer | u64 deadline | u64 pauseAt
//	        platform-specific CPU register block
//	4 ×     breakpoint (u32 kind, addr, len, enabled)
//	u64     clock cycles | u64 clock mark
//	u32     pending slot (two's complement) | u32 access | u32 addr
//	u32     image size
//	u32     page count
//	n ×     (u32 page index, 4096 bytes)    — pages omitted are all-zero
//	u32     CRC-32C over everything above
//
// Decode verifies the trailing checksum before interpreting any structure,
// so truncated or bit-flipped files fail with ErrChecksum — the same
// single-bit-corruption class this laboratory injects — rather than producing
// a silently wrong guest.

const magic = "KFISNAP1"

// maxImageSize caps the decoded memory image (a corrupted size field must
// not drive a giant allocation).
const maxImageSize = 1 << 28

// ErrChecksum reports a snapshot file whose trailing CRC does not match its
// contents (truncation, bit rot, or an interrupted write).
var ErrChecksum = fmt.Errorf("snapshot: checksum mismatch")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encode writes the snapshot in the on-disk format.
func (s *Snapshot) Encode(w io.Writer) error {
	e := &encoder{}
	e.bytes([]byte(magic))
	e.u32(uint32(s.State.Platform))
	e.u64(s.Cycles)
	e.u64(s.State.NextTimer)
	e.u64(s.State.Deadline)
	e.u64(s.State.PauseAt)
	if s.State.CPU == nil {
		return fmt.Errorf("snapshot: encode: state carries no CPU image")
	}
	sw := platform.NewSnapWriter(e.buf)
	s.State.CPU.EncodeSnapshot(sw)
	e.buf = sw.Bytes()
	e.u32(uint32(len(s.Image)))
	e.sparseImage(s.Image)
	e.u32(crc32.Checksum(e.buf, castagnoli))
	_, err := w.Write(e.buf)
	return err
}

// Decode parses a snapshot from r, verifying the checksum before any
// structural interpretation. It never panics on malformed input.
func Decode(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxImageSize*2))
	if err != nil {
		return nil, fmt.Errorf("snapshot: read: %w", err)
	}
	if len(data) < len(magic)+4 {
		return nil, ErrChecksum
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if binary.BigEndian.Uint32(tail) != crc32.Checksum(body, castagnoli) {
		return nil, ErrChecksum
	}
	d := &decoder{buf: body}
	if string(d.take(len(magic))) != magic {
		return nil, fmt.Errorf("snapshot: bad magic (not a snapshot file, or wrong version)")
	}
	s := &Snapshot{}
	s.State.Platform = isa.Platform(d.u32())
	s.Cycles = d.u64()
	s.State.NextTimer = d.u64()
	s.State.Deadline = d.u64()
	s.State.PauseAt = d.u64()
	desc, ok := platform.Find(s.State.Platform)
	if !ok {
		return nil, fmt.Errorf("snapshot: unknown platform %d", s.State.Platform)
	}
	cpu := desc.NewCPUState()
	sr := platform.NewSnapReader(d.buf[d.off:])
	cpu.DecodeSnapshot(sr)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	d.off += sr.Offset()
	s.State.CPU = cpu
	size := d.u32()
	if size > maxImageSize || size%mem.PageSize != 0 {
		return nil, fmt.Errorf("snapshot: implausible image size %d", size)
	}
	img, err := d.sparseImage(size)
	if err != nil {
		return nil, err
	}
	s.Image = img
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != d.off {
		return nil, fmt.Errorf("snapshot: %d trailing bytes", len(d.buf)-d.off)
	}
	return s, nil
}

// Save atomically writes the snapshot to path (temp file + rename), so a
// concurrent or interrupted writer never leaves a torn file for Load.
func (s *Snapshot) Save(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".ksnap-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := s.Encode(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads and verifies a snapshot file.
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// encoder accumulates the big-endian byte stream.
type encoder struct {
	buf []byte
}

func (e *encoder) bytes(b []byte) { e.buf = append(e.buf, b...) }
func (e *encoder) u32(v uint32)   { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64)   { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }

// sparseImage emits only pages with nonzero content: kernel images leave most
// of an 8 MiB guest RAM untouched, so this keeps waypoint files small.
func (e *encoder) sparseImage(img []byte) {
	countAt := len(e.buf)
	e.u32(0)
	var count uint32
	for off := 0; off+mem.PageSize <= len(img); off += mem.PageSize {
		page := img[off : off+mem.PageSize]
		if allZero(page) {
			continue
		}
		e.u32(uint32(off / mem.PageSize))
		e.bytes(page)
		count++
	}
	binary.BigEndian.PutUint32(e.buf[countAt:], count)
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// decoder is a sticky-error cursor over the checksummed body.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil || d.off+n > len(d.buf) {
		if d.err == nil {
			d.err = fmt.Errorf("snapshot: truncated body")
		}
		return make([]byte, n)
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u32() uint32 { return binary.BigEndian.Uint32(d.take(4)) }
func (d *decoder) u64() uint64 { return binary.BigEndian.Uint64(d.take(8)) }

func (d *decoder) sparseImage(size uint32) ([]byte, error) {
	pages := size / mem.PageSize
	count := d.u32()
	if count > pages {
		return nil, fmt.Errorf("snapshot: %d pages listed for a %d-page image", count, pages)
	}
	if d.err != nil {
		return nil, d.err
	}
	img := make([]byte, size)
	last := -1
	for i := uint32(0); i < count; i++ {
		idx := d.u32()
		if idx >= pages || int(idx) <= last {
			if d.err == nil {
				d.err = fmt.Errorf("snapshot: page index %d out of order or range", idx)
			}
			return nil, d.err
		}
		last = int(idx)
		copy(img[idx*mem.PageSize:], d.take(mem.PageSize))
	}
	return img, d.err
}
