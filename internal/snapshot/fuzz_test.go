package snapshot_test

import (
	"bytes"
	"testing"

	"kfi/internal/cisc"
	"kfi/internal/isa"
	"kfi/internal/mem"
	"kfi/internal/risc"
	"kfi/internal/snapshot"
)

// tinySnapshot builds a small synthetic snapshot (no guest system needed) so
// codec robustness tests and the fuzzer run in microseconds.
func tinySnapshot(p isa.Platform) *snapshot.Snapshot {
	img := make([]byte, 4*mem.PageSize)
	img[0] = 0xde              // page 0 nonzero
	img[2*mem.PageSize] = 0xad // page 2 nonzero; pages 1 and 3 stay sparse
	s := &snapshot.Snapshot{Cycles: 12345, Image: img}
	s.State.Platform = p
	s.State.NextTimer = 777
	s.State.Deadline = 1 << 40
	switch p {
	case isa.CISC:
		st := &cisc.State{EIP: 0x1000, PendingSlot: -1}
		st.Regs[3] = 0xcafe
		st.Debug[1] = isa.Breakpoint{Kind: isa.BreakData, Addr: 0x2000, Len: 4, Enabled: true}
		st.Clock = isa.ClockState{Cycles: 12345, Mark: 99}
		s.State.CPU = st
	case isa.RISC:
		st := &risc.State{PC: 0x1000, PendingSlot: -1, BTICValid: true}
		st.R[13] = 0xbeef
		st.SPR[26] = 0x4000
		st.Clock = isa.ClockState{Cycles: 12345, Mark: 99}
		s.State.CPU = st
	}
	return s
}

func encode(t testing.TB, s *snapshot.Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCodecCorruptionRejected flips every byte of a valid encoding in turn —
// the same single-bit corruption class the laboratory injects into guests —
// and requires Decode to fail cleanly with ErrChecksum.
func TestCodecCorruptionRejected(t *testing.T) {
	for _, p := range []isa.Platform{isa.CISC, isa.RISC} {
		enc := encode(t, tinySnapshot(p))
		for i := range enc {
			mut := bytes.Clone(enc)
			mut[i] ^= 0x40
			if _, err := snapshot.Decode(bytes.NewReader(mut)); err == nil {
				t.Fatalf("%v: decode accepted a corrupted byte at offset %d", p, i)
			}
		}
	}
}

// TestCodecTruncationRejected requires every proper prefix of a valid
// encoding to fail (checksum), never panic or succeed.
func TestCodecTruncationRejected(t *testing.T) {
	enc := encode(t, tinySnapshot(isa.RISC))
	for n := 0; n < len(enc); n++ {
		if _, err := snapshot.Decode(bytes.NewReader(enc[:n])); err == nil {
			t.Fatalf("decode accepted a %d-byte truncation of a %d-byte file", n, len(enc))
		}
	}
}

func TestTinyRoundTrip(t *testing.T) {
	for _, p := range []isa.Platform{isa.CISC, isa.RISC} {
		orig := tinySnapshot(p)
		dec, err := snapshot.Decode(bytes.NewReader(encode(t, orig)))
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if dec.Cycles != orig.Cycles || !bytes.Equal(dec.Image, orig.Image) {
			t.Errorf("%v: tiny snapshot did not round-trip", p)
		}
	}
}

// FuzzDecode feeds arbitrary bytes to the on-disk codec. Decode must never
// panic, and anything it does accept must re-encode to a decodable stream
// describing the same machine.
func FuzzDecode(f *testing.F) {
	ciscEnc := encode(f, tinySnapshot(isa.CISC))
	riscEnc := encode(f, tinySnapshot(isa.RISC))
	f.Add(ciscEnc)
	f.Add(riscEnc)
	f.Add(ciscEnc[:len(ciscEnc)/2])
	f.Add([]byte("KFISNAP1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := snapshot.Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		again, err := snapshot.Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if again.Cycles != s.Cycles || !bytes.Equal(again.Image, s.Image) {
			t.Fatal("decode/encode/decode is not a fixed point")
		}
	})
}
