package cisc

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"kfi/internal/isa"
	"kfi/internal/mem"
)

// Differential fuzzer: random programs run under the block translator and
// the reference interpreter in lockstep (same cycle-horizon ladder), and
// every rung must agree on the full architectural state, the cycle count,
// and any raised event — including the crash cause when the program faults,
// and including runs where a bit flip lands mid-execution in already
// translated pages. This is the executable form of the translator's
// soundness argument, and it exercises the aluCanMicro/aluMicro pairing the
// run fuser depends on.

const (
	fuzzMemSize  = 1 << 17
	fuzzCode     = 0x2000
	fuzzCodeSize = 2 * mem.PageSize
	fuzzData     = 0x8000
	fuzzStack    = 0xA000
)

// genStructured emits a random but mostly well-formed program: register ops
// the run fuser fuses, loads/stores into a mapped data page, stack traffic,
// compare+branch pairs over random labels, self-modifying stores into the
// code page, and occasional wild accesses and divides that must fault with
// identical causes on both engines.
func genStructured(rng *rand.Rand) []byte {
	a := NewAsm()
	n := 40 + rng.Intn(160)
	gpr := func() uint8 { // steer clear of ESP so the stack mostly survives
		r := uint8(rng.Intn(numRegs))
		if r == ESP {
			r = EAX
		}
		return r
	}
	label := func() string { return fmt.Sprintf("L%d", rng.Intn(n+1)) }
	cc := func() uint8 { return uint8(rng.Intn(16)) }

	a.MovRI(6, fuzzData)
	a.MovRI(7, fuzzCode)
	a.MovRI(ESP, fuzzStack+mem.PageSize)
	rrOps := []func(d, s uint8){a.AddRR, a.SubRR, a.AndRR, a.OrRR, a.XorRR,
		a.MovRR, a.ImulRR, a.CmpRR, a.TestRR, a.XchgRR}
	riOps := []func(r uint8, imm int32){a.MovRI, a.AddRI, a.SubRI, a.AndRI,
		a.OrRI, a.XorRI, a.CmpRI, a.ImulRI}
	wilds := []int32{0x0, 0x40, 0x1F000, 0x7FFFFF0}
	for i := 0; i < n; i++ {
		a.Label(fmt.Sprintf("L%d", i))
		switch k := rng.Intn(36); {
		case k < 9:
			rrOps[rng.Intn(len(rrOps))](gpr(), gpr())
		case k < 14:
			riOps[rng.Intn(len(riOps))](gpr(), rng.Int31())
		case k < 15:
			sh := []func(r uint8, n int8){a.ShlRI, a.ShrRI, a.SarRI}
			sh[rng.Intn(len(sh))](gpr(), int8(rng.Intn(32)))
		case k < 16:
			un := []func(r uint8){a.IncR, a.DecR, a.NegR, a.NotR}
			un[rng.Intn(len(un))](gpr())
		case k < 17:
			mv := []func(d, s uint8){a.Movzx8, a.Movsx8, a.Movzx16, a.Movsx16}
			mv[rng.Intn(len(mv))](gpr(), gpr())
		case k < 18:
			a.SetCC(gpr(), cc())
		case k < 19:
			a.Lea(gpr(), 6, int32(rng.Intn(128)))
		case k < 22:
			switch rng.Intn(3) {
			case 0:
				a.Ld32(gpr(), 6, int32(rng.Intn(1000)*4))
			case 1:
				a.Ld8zx(gpr(), 6, int32(rng.Intn(1000)*4))
			default:
				a.Ld16zx(gpr(), 6, int32(rng.Intn(128))) // disp8-only form
			}
		case k < 25:
			switch rng.Intn(3) {
			case 0:
				a.St32(6, int32(rng.Intn(1000)*4), gpr())
			case 1:
				a.St8(6, int32(rng.Intn(1000)*4), gpr())
			default:
				a.St16(6, int32(rng.Intn(128)), gpr()) // disp8-only form
			}
		case k < 26:
			// Self-modifying store into the executing code region: the
			// translator must invalidate and re-decode exactly like the
			// interpreter's refetch.
			a.St32(7, int32(rng.Intn(fuzzCodeSize-4)), gpr())
		case k < 27:
			r := gpr()
			a.MovRI(r, wilds[rng.Intn(len(wilds))])
			a.Ld32(gpr(), r, 0)
		case k < 29:
			if rng.Intn(2) == 0 {
				a.PushR(gpr())
			} else {
				a.PopR(gpr())
			}
		case k < 30:
			a.PushI(rng.Int31())
		case k < 32:
			a.CmpRI(gpr(), int32(rng.Intn(64)))
			a.Jcc(cc(), label())
		case k < 33:
			a.Jcc(cc(), label())
		case k < 34:
			a.IdivRR(gpr(), gpr())
		case k < 35:
			a.Nop()
		default:
			a.JmpSym(label())
		}
	}
	a.Label(fmt.Sprintf("L%d", n))
	a.Hlt()
	code, err := a.Link(fuzzCode, nil)
	if err != nil {
		panic(err)
	}
	return code
}

// genBytes emits pure random bytes: decode faults, wild control flow, and
// page-straddling instructions — the negative-cache and fallback paths.
func genBytes(rng *rand.Rand) []byte {
	b := make([]byte, 64+rng.Intn(512))
	rng.Read(b)
	return b
}

// runDiff executes prog under the reference interpreter and the block
// translator on separate but identical machines, advancing both through the
// same random cycle-horizon ladder and comparing after every rung. When
// flip is set, one random bit of the code region flips mid-run on both.
func runDiff(t *testing.T, rng *rand.Rand, prog []byte, flip, wantTranslated bool) {
	t.Helper()
	build := func() (*CPU, *mem.Memory) {
		m := mem.New(fuzzMemSize, binary.LittleEndian)
		m.Map(fuzzCode, fuzzCodeSize, mem.Present|mem.Writable)
		m.Map(fuzzData, mem.PageSize, mem.Present|mem.Writable)
		m.Map(fuzzStack, mem.PageSize, mem.Present|mem.Writable)
		copy(m.RawBytes(fuzzCode, uint32(len(prog))), prog)
		c := NewCPU(m)
		c.EIP = fuzzCode
		c.Regs[ESP] = fuzzStack + mem.PageSize
		c.Regs[6] = fuzzData
		c.Regs[7] = fuzzCode
		return c, m
	}
	ref, refMem := build()
	tx, txMem := build()
	tr := newTranslator(tx)

	state := func(c *CPU) string {
		return fmt.Sprint(c.Regs, c.EIP, c.Flags, c.CR0, c.CR2, c.Mode, c.Clk.Cycles())
	}
	flipAt := -1
	if flip {
		flipAt = rng.Intn(30)
	}
	var limit uint64
	for rung := 0; rung < 60; rung++ {
		limit += uint64(1 + rng.Intn(400))
		evR := ref.RunUntil(limit)
		evT := tr.RunUntil(limit)
		if evR != evT {
			t.Fatalf("rung %d: events diverge:\n  interp:    %+v\n  translate: %+v", rung, evR, evT)
		}
		if sr, st := state(ref), state(tx); sr != st {
			t.Fatalf("rung %d: state diverges:\n  interp:    %s\n  translate: %s", rung, sr, st)
		}
		if evR.Kind != isa.EvNone {
			break
		}
		if rung == flipAt {
			addr := fuzzCode + uint32(rng.Intn(len(prog)))
			bit := uint(rng.Intn(8))
			refMem.FlipBit(addr, bit)
			txMem.FlipBit(addr, bit)
		}
	}
	if !bytes.Equal(refMem.PeekBytes(0, refMem.Size()), txMem.PeekBytes(0, txMem.Size())) {
		t.Fatal("memory images diverge")
	}
	if wantTranslated && tr.stats.Translated == 0 {
		t.Fatal("translator never translated a block — the fuzzer is only testing fallback paths")
	}
}

func TestTranslatorDifferentialFuzz(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("structured/%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xC15C + seed))
			runDiff(t, rng, genStructured(rng), seed%2 == 0, true)
		})
	}
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("raw/%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xBEEF + seed))
			runDiff(t, rng, genBytes(rng), seed%2 == 1, false)
		})
	}
}
