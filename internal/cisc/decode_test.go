package cisc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpcodeTableDensity(t *testing.T) {
	n := DefinedOpcodes()
	// The encoding must be dense enough that random bytes usually decode —
	// the mechanism behind P4-style instruction-stream resynchronization —
	// but not total, so invalid-instruction exceptions remain reachable.
	if n < 160 || n > 210 {
		t.Errorf("defined opcodes = %d, want a dense-but-incomplete map (160..210)", n)
	}
}

func TestFormatLengths(t *testing.T) {
	tests := []struct {
		give Format
		want uint8
	}{
		{FNone, 1}, {FOpReg, 1}, {FRR, 2}, {FR, 2}, {FRI8, 3}, {FRI32, 6},
		{FI8, 2}, {FI32, 5}, {FMem8, 3}, {FMem32, 6}, {FIdx, 4}, {FMI8, 4},
		{FRel8, 2}, {FRel32, 5}, {FAbsI32, 9}, {FAbsR, 6},
	}
	for _, tt := range tests {
		if got := tt.give.Length(); got != tt.want {
			t.Errorf("Format(%d).Length() = %d, want %d", tt.give, got, tt.want)
		}
	}
	if got := Format(0).Length(); got != 0 {
		t.Errorf("invalid format length = %d, want 0", got)
	}
}

func TestDecodeEmpty(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("Decode(nil) error = %v, want ErrTruncated", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	// 0x10 is mov r,imm32 (6 bytes); give it 3.
	if _, err := Decode([]byte{0x10, 0x00, 0x01}); !errors.Is(err, ErrTruncated) {
		t.Errorf("Decode(truncated) error = %v, want ErrTruncated", err)
	}
}

func TestDecodeInvalidOpcode(t *testing.T) {
	if _, err := Decode([]byte{0xFF, 0, 0, 0}); !errors.Is(err, ErrInvalidOpcode) {
		t.Errorf("Decode(0xFF) error = %v, want ErrInvalidOpcode", err)
	}
}

func TestDecodeRegisterFieldsAliasLikeModrm(t *testing.T) {
	// Register fields are 3 bits as on x86's modrm: a flipped spare bit
	// aliases to the same register rather than faulting.
	in, err := Decode([]byte{0x00, 0x85})
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if in.R1 != 0 || in.R2 != 5 {
		t.Errorf("aliased fields = %d,%d, want 0,5", in.R1, in.R2)
	}
	// Indexed load with scale 5 is an undefined SIB encoding.
	if _, err := Decode([]byte{0x36, 0x12, 0x05, 0x00}); !errors.Is(err, ErrInvalidOpcode) {
		t.Errorf("Decode(bad scale) error = %v, want ErrInvalidOpcode", err)
	}
}

// Property: Decode never panics on arbitrary byte strings and, when it
// succeeds, reports a length within the buffer.
func TestDecodeNeverPanicsProperty(t *testing.T) {
	f := func(bs []byte) bool {
		in, err := Decode(bs)
		if err != nil {
			return true
		}
		return int(in.Len) <= len(bs) && in.Len >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// assembleOne assembles a single instruction via the given emitter call and
// returns its bytes.
func assembleOne(t *testing.T, emit func(a *Asm)) []byte {
	t.Helper()
	a := NewAsm()
	emit(a)
	code, err := a.Link(0, nil)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	return code
}

func TestAsmDecodeRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		emit func(a *Asm)
		want Inst
	}{
		{"mov rr", func(a *Asm) { a.MovRR(EAX, EBX) },
			Inst{Op: OpMOV, Format: FRR, R1: EAX, R2: EBX}},
		{"add imm8", func(a *Asm) { a.AddRI(ECX, -5) },
			Inst{Op: OpADD, Format: FRI8, R1: ECX, Imm: -5}},
		{"add imm32", func(a *Asm) { a.AddRI(ECX, 0x12345) },
			Inst{Op: OpADD, Format: FRI32, R1: ECX, Imm: 0x12345}},
		{"ld32 d8", func(a *Asm) { a.Ld32(EDX, EBP, -12) },
			Inst{Op: OpLD32, Format: FMem8, R1: EDX, R2: EBP, Disp: -12}},
		{"ld32 d32", func(a *Asm) { a.Ld32(EDX, EBP, 0x1000) },
			Inst{Op: OpLD32, Format: FMem32, R1: EDX, R2: EBP, Disp: 0x1000}},
		{"st8", func(a *Asm) { a.St8(ESI, 3, EAX) },
			Inst{Op: OpST8, Format: FMem8, R1: EAX, R2: ESI, Disp: 3}},
		{"lea idx", func(a *Asm) { a.LeaIdx(ESP, ESP, ESI, 3, 0x5b) },
			Inst{Op: OpLEAIDX, Format: FIdx, R1: ESP, R2: ESP, Idx: ESI, Scale: 3, Disp: 0x5b}},
		{"push", func(a *Asm) { a.PushR(EDI) },
			Inst{Op: OpPUSH, Format: FOpReg, R1: EDI}},
		{"pop", func(a *Asm) { a.PopR(EBX) },
			Inst{Op: OpPOP, Format: FOpReg, R1: EBX}},
		{"ret", func(a *Asm) { a.Ret() },
			Inst{Op: OpRET, Format: FNone}},
		{"int 0x80", func(a *Asm) { a.Int(0x80) },
			Inst{Op: OpINT, Format: FI8, Imm: -128}},
		{"ctxsw", func(a *Asm) { a.CtxSw(EAX, EDX) },
			Inst{Op: OpCTXSW, Format: FRR, R1: EAX, R2: EDX}},
		{"movmi8", func(a *Asm) { a.MovMI8(EBP, -32, 8) },
			Inst{Op: OpMOVMI8, Format: FMI8, R2: EBP, Disp: -32, Imm: 8}},
		{"bound", func(a *Asm) { a.Bound(EAX, EBX, 16) },
			Inst{Op: OpBOUND, Format: FMem8, R1: EAX, R2: EBX, Disp: 16}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			code := assembleOne(t, tt.emit)
			in, err := Decode(code)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if int(in.Len) != len(code) {
				t.Errorf("Len = %d, code is %d bytes", in.Len, len(code))
			}
			tt.want.Len = in.Len
			tt.want.Opcode = in.Opcode
			if in != tt.want {
				t.Errorf("decoded %+v, want %+v", in, tt.want)
			}
		})
	}
}

func TestAsmRelocations(t *testing.T) {
	a := NewAsm()
	a.Label("start")
	a.CallSym("target") // 5 bytes
	a.JmpSym("start")   // 5 bytes
	a.Label("target")
	a.Ret()
	code, err := a.Link(0x1000, nil)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	call, err := Decode(code)
	if err != nil {
		t.Fatalf("decode call: %v", err)
	}
	// call at 0x1000, len 5, target = 0x100A → rel = 0x100A - 0x1005 = 5.
	if call.Imm != 5 {
		t.Errorf("call rel = %d, want 5", call.Imm)
	}
	jmp, err := Decode(code[5:])
	if err != nil {
		t.Fatalf("decode jmp: %v", err)
	}
	if jmp.Imm != -10 {
		t.Errorf("jmp rel = %d, want -10", jmp.Imm)
	}
}

func TestAsmExternalSymbol(t *testing.T) {
	a := NewAsm()
	a.MovRISym(EAX, "runqueue", 8)
	code, err := a.Link(0, map[string]uint32{"runqueue": 0x2000})
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	in, err := Decode(code)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if uint32(in.Imm) != 0x2008 {
		t.Errorf("imm = 0x%x, want 0x2008", uint32(in.Imm))
	}
}

func TestAsmUndefinedSymbol(t *testing.T) {
	a := NewAsm()
	a.CallSym("nowhere")
	if _, err := a.Link(0, nil); err == nil {
		t.Error("Link with undefined symbol did not fail")
	}
}

func TestAsmDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate label did not panic")
		}
	}()
	a := NewAsm()
	a.Label("x")
	a.Label("x")
}

// Property: every defined single instruction assembled from random operands
// decodes back to the same length and opcode byte.
func TestAssembleDecodeLengthProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	emitters := []func(a *Asm){
		func(a *Asm) { a.MovRR(uint8(rng.Intn(8)), uint8(rng.Intn(8))) },
		func(a *Asm) { a.AddRI(uint8(rng.Intn(8)), rng.Int31()-1<<30) },
		func(a *Asm) { a.Ld32(uint8(rng.Intn(8)), uint8(rng.Intn(8)), int32(rng.Intn(256))-128) },
		func(a *Asm) { a.St32(uint8(rng.Intn(8)), int32(rng.Intn(256))-128, uint8(rng.Intn(8))) },
		func(a *Asm) { a.PushR(uint8(rng.Intn(8))) },
		func(a *Asm) { a.ShlRI(uint8(rng.Intn(8)), int8(rng.Intn(31))) },
		func(a *Asm) { a.Ld8zx(uint8(rng.Intn(8)), uint8(rng.Intn(8)), int32(rng.Intn(100))) },
		func(a *Asm) { a.SetCC(uint8(rng.Intn(8)), CcNE) },
	}
	for i := 0; i < 2000; i++ {
		a := NewAsm()
		emitters[rng.Intn(len(emitters))](a)
		code, err := a.Link(0, nil)
		if err != nil {
			t.Fatalf("Link: %v", err)
		}
		in, err := Decode(code)
		if err != nil {
			t.Fatalf("Decode(% x): %v", code, err)
		}
		if int(in.Len) != len(code) {
			t.Fatalf("instruction % x: decoded len %d != emitted %d", code, in.Len, len(code))
		}
	}
}

// Property: flipping one bit of a valid instruction stream and re-decoding
// never panics — the decoder must be total.
func TestBitFlipDecodeTotalProperty(t *testing.T) {
	a := NewAsm()
	a.MovRI(EAX, 1000)
	a.Lea(ESP, EBP, -12)
	a.PopR(EBX)
	a.PopR(ESI)
	a.PopR(EDI)
	a.PopR(EBP)
	a.Ret()
	code, err := a.Link(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for byteIdx := range code {
		for bit := 0; bit < 8; bit++ {
			mut := make([]byte, len(code))
			copy(mut, code)
			mut[byteIdx] ^= 1 << bit
			for off := 0; off < len(mut); {
				in, err := Decode(mut[off:])
				if err != nil {
					off++
					continue
				}
				off += int(in.Len)
			}
		}
	}
}

func TestDisasmStrings(t *testing.T) {
	tests := []struct {
		emit func(a *Asm)
		want string
	}{
		{func(a *Asm) { a.MovRR(EAX, EBX) }, "mov %ebx,%eax"},
		{func(a *Asm) { a.Ld32(EDX, EBP, -32) }, "mov 0xffffffe0(%ebp),%edx"},
		{func(a *Asm) { a.St32(EBP, -32, EDX) }, "mov %edx,0xffffffe0(%ebp)"},
		{func(a *Asm) { a.LeaIdx(ESP, ESP, ESI, 3, 0x5b) }, "lea 0x5b(%esp,%esi,8),%esp"},
		{func(a *Asm) { a.PushR(EBX) }, "push %ebx"},
		{func(a *Asm) { a.Ret() }, "ret"},
		{func(a *Asm) { a.Ud2() }, "ud2"},
		{func(a *Asm) { a.SetCC(EAX, CcE) }, "sete %eax"},
		{func(a *Asm) { a.MovRI(EAX, 0x42) }, "mov $0x42,%eax"},
	}
	for _, tt := range tests {
		code := assembleOne(t, tt.emit)
		in, err := Decode(code)
		if err != nil {
			t.Fatalf("Decode(% x): %v", code, err)
		}
		if got := in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestDisasmRange(t *testing.T) {
	a := NewAsm()
	a.Nop()
	a.MovRI(EAX, 5)
	code, err := a.Link(0x100, nil)
	if err != nil {
		t.Fatal(err)
	}
	code = append(code, 0xFF) // one bad byte
	lines := DisasmRange(code, 0x100)
	if len(lines) != 3 {
		t.Fatalf("DisasmRange returned %d lines, want 3: %v", len(lines), lines)
	}
}
