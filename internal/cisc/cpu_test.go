package cisc

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"kfi/internal/isa"
	"kfi/internal/mem"
)

const (
	tCode  = 0x1000
	tData  = 0x4000
	tStack = 0x8000 // stack region [0x8000, 0x9000); initial ESP 0x9000
)

// newTestCPU assembles the program, loads it at tCode, and returns a CPU
// ready to run with ESP at the top of the stack region.
func newTestCPU(t *testing.T, build func(a *Asm)) *CPU {
	t.Helper()
	m := mem.New(1<<20, binary.LittleEndian)
	m.Map(tCode, 0x1000, mem.Present) // code is read-only
	m.Map(tData, 0x2000, mem.Present|mem.Writable)
	m.Map(tStack, 0x1000, mem.Present|mem.Writable)
	a := NewAsm()
	build(a)
	code, err := a.Link(tCode, nil)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	copy(m.RawBytes(tCode, uint32(len(code))), code)
	c := NewCPU(m)
	c.EIP = tCode
	c.Regs[ESP] = tStack + 0x1000
	return c
}

// run steps until a non-isa.EvNone event or limit instructions.
func run(t *testing.T, c *CPU, limit int) isa.Event {
	t.Helper()
	for i := 0; i < limit; i++ {
		if ev := c.Step(); ev.Kind != isa.EvNone {
			return ev
		}
	}
	t.Fatal("no event within limit")
	return isa.Event{}
}

func TestArithmeticAndFlags(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.MovRI(EAX, 7)
		a.MovRI(EBX, 5)
		a.SubRR(EAX, EBX) // eax = 2
		a.ImulRI(EAX, 10) // eax = 20
		a.MovRI(ECX, 3)
		a.IdivRR(EAX, ECX) // eax = 6
		a.MovRI(EDX, 20)
		a.ModRR(EDX, ECX) // edx = 2
		a.Hlt()
	})
	ev := run(t, c, 100)
	if ev.Kind != isa.EvHalt {
		t.Fatalf("event = %+v, want halt", ev)
	}
	if c.Regs[EAX] != 6 || c.Regs[EDX] != 2 {
		t.Errorf("eax=%d edx=%d, want 6, 2", c.Regs[EAX], c.Regs[EDX])
	}
}

func TestConditionCodes(t *testing.T) {
	tests := []struct {
		name string
		a, b int32
		cc   uint8
		want uint32
	}{
		{"eq taken", 5, 5, CcE, 1},
		{"eq not", 5, 6, CcE, 0},
		{"lt signed", -1, 1, CcL, 1},
		{"lt signed not", 1, -1, CcL, 0},
		{"below unsigned", 1, 2, CcB, 1},
		{"below unsigned wrap", -1, 1, CcB, 0}, // 0xffffffff not below 1
		{"greater", 9, 3, CcG, 1},
		{"ge equal", 3, 3, CcGE, 1},
		{"le", 2, 3, CcLE, 1},
		{"above", 7, 3, CcA, 1},
		{"sign", -5, 0, CcS, 1},
		{"nonsign", 5, 0, CcNS, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := newTestCPU(t, func(a *Asm) {
				a.MovRI(EAX, tt.a)
				a.CmpRI(EAX, tt.b)
				a.SetCC(EBX, tt.cc)
				a.Hlt()
			})
			run(t, c, 10)
			if c.Regs[EBX] != tt.want {
				t.Errorf("setcc = %d, want %d", c.Regs[EBX], tt.want)
			}
		})
	}
}

func TestLoadStoreWidths(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.MovRI(EBX, tData)
		a.MovRI(EAX, 0x11223344|-0x80000000) // 0x91223344
		a.St32(EBX, 0, EAX)
		a.St16(EBX, 4, EAX)
		a.St8(EBX, 6, EAX)
		a.Ld32(ECX, EBX, 0)
		a.Ld16zx(EDX, EBX, 4)
		a.Ld8zx(ESI, EBX, 6)
		a.Ld8sx(EDI, EBX, 3) // top byte 0x91 sign-extends
		a.Hlt()
	})
	run(t, c, 100)
	if c.Regs[ECX] != 0x91223344 {
		t.Errorf("ld32 = 0x%x", c.Regs[ECX])
	}
	if c.Regs[EDX] != 0x3344 {
		t.Errorf("ld16zx = 0x%x", c.Regs[EDX])
	}
	if c.Regs[ESI] != 0x44 {
		t.Errorf("ld8zx = 0x%x", c.Regs[ESI])
	}
	if c.Regs[EDI] != 0xffffff91 {
		t.Errorf("ld8sx = 0x%x", c.Regs[EDI])
	}
}

func TestIndexedAddressing(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.MovRI(EBX, tData)
		a.MovRI(ESI, 4) // index
		a.MovRI(EAX, 99)
		a.St32Idx(EBX, ESI, 2, 8, EAX) // [tData + 4*4 + 8] = 99
		a.Ld32Idx(ECX, EBX, ESI, 2, 8)
		a.LeaIdx(EDX, EBX, ESI, 3, 1) // edx = tData + 32 + 1
		a.Hlt()
	})
	run(t, c, 100)
	if got := c.Mem.RawRead(tData+24, 4); got != 99 {
		t.Errorf("indexed store wrote 0x%x at +24", got)
	}
	if c.Regs[ECX] != 99 {
		t.Errorf("indexed load = %d", c.Regs[ECX])
	}
	if c.Regs[EDX] != tData+33 {
		t.Errorf("lea idx = 0x%x, want 0x%x", c.Regs[EDX], tData+33)
	}
}

func TestCallRetStackDiscipline(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.CallSym("fn")
		a.Hlt()
		a.Label("fn")
		a.PushR(EBP)
		a.MovRR(EBP, ESP)
		a.MovRI(EAX, 42)
		a.Leave()
		a.Ret()
	})
	ev := run(t, c, 100)
	if ev.Kind != isa.EvHalt {
		t.Fatalf("event = %+v", ev)
	}
	if c.Regs[EAX] != 42 {
		t.Errorf("eax = %d, want 42", c.Regs[EAX])
	}
	if c.Regs[ESP] != tStack+0x1000 {
		t.Errorf("esp = 0x%x, want balanced 0x%x", c.Regs[ESP], tStack+0x1000)
	}
}

func TestExceptionClassification(t *testing.T) {
	tests := []struct {
		name string
		prog func(a *Asm)
		want isa.CrashCause
	}{
		{"null pointer", func(a *Asm) {
			a.MovRI(EBX, 0)
			a.Ld32(EAX, EBX, 8)
		}, isa.CauseNULLPointer},
		{"bad paging", func(a *Asm) {
			a.MovRI(EBX, 0x70000)
			a.Ld32(EAX, EBX, 0)
		}, isa.CauseBadPaging},
		{"gp write to code", func(a *Asm) {
			a.MovRI(EBX, tCode)
			a.St32(EBX, 0, EAX)
		}, isa.CauseGeneralProtection},
		{"wild address pages", func(a *Asm) {
			a.MovRI(EBX, 0x170fc2a5|-0x80000000)
			a.Ld32(EAX, EBX, 0)
		}, isa.CauseBadPaging},
		{"ud2", func(a *Asm) { a.Ud2() }, isa.CauseInvalidInstr},
		{"divide by zero", func(a *Asm) {
			a.MovRI(EAX, 10)
			a.MovRI(EBX, 0)
			a.IdivRR(EAX, EBX)
		}, isa.CauseDivideError},
		{"divide overflow", func(a *Asm) {
			a.MovRI(EAX, -0x80000000)
			a.MovRI(EBX, -1)
			a.IdivRR(EAX, EBX)
		}, isa.CauseDivideError},
		{"bad int vector", func(a *Asm) { a.Int(0x21) }, isa.CauseGeneralProtection},
		{"bounds", func(a *Asm) {
			a.MovRI(EBX, tData)
			a.MovMI8(EBX, 0, 1)  // lower bound 1
			a.MovMI8(EBX, 4, 10) // upper bound 10
			a.MovRI(EAX, 50)
			a.Bound(EAX, EBX, 0)
		}, isa.CauseBoundsTrap},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := newTestCPU(t, tt.prog)
			ev := run(t, c, 100)
			if ev.Kind != isa.EvException {
				t.Fatalf("event = %+v, want exception", ev)
			}
			if ev.Cause != tt.want {
				t.Errorf("cause = %v, want %v", ev.Cause, tt.want)
			}
		})
	}
}

func TestCR2OnPageFault(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.MovRI(EBX, 0x70008)
		a.Ld32(EAX, EBX, 4)
	})
	ev := run(t, c, 10)
	if ev.Cause != isa.CauseBadPaging || c.CR2 != 0x7000c {
		t.Errorf("cause=%v cr2=0x%x, want bad paging with cr2=0x7000c", ev.Cause, c.CR2)
	}
}

func TestSyscallEvent(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.MovRI(EAX, 4)
		a.Int(0x80)
	})
	ev := run(t, c, 10)
	if ev.Kind != isa.EvSyscall || ev.SysNo != 4 {
		t.Errorf("event = %+v, want syscall 4", ev)
	}
}

func TestInterruptDeliveryAndIret(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.MovRI(EAX, 1)
		a.Label("spin")
		a.JmpSym("spin")
		a.Label("handler")
		a.MovRI(EAX, 2)
		a.Iret()
	})
	c.Step() // execute mov
	// Handler address: mov $1,%eax is FRI8 (3 bytes), jmp rel32 is 5 bytes,
	// so the handler label sits at +8.
	spinEIP := c.EIP
	ev := c.DeliverInterrupt(tCode+8, 0)
	if ev.Kind != isa.EvNone {
		t.Fatalf("DeliverInterrupt: %+v", ev)
	}
	if c.Flags&FlagIF != 0 {
		t.Error("IF not cleared on interrupt entry")
	}
	// Run the handler: mov + iret.
	for i := 0; i < 10; i++ {
		if ev := c.Step(); ev.Kind != isa.EvNone {
			t.Fatalf("handler step: %+v", ev)
		}
		if c.EIP == spinEIP {
			break
		}
	}
	if c.EIP != spinEIP {
		t.Errorf("after iret EIP = 0x%x, want 0x%x", c.EIP, spinEIP)
	}
	if c.Regs[EAX] != 2 {
		t.Errorf("eax = %d, want 2", c.Regs[EAX])
	}
	if c.Regs[ESP] != tStack+0x1000 {
		t.Errorf("esp not restored: 0x%x", c.Regs[ESP])
	}
}

func TestIretWithNTBitInvalidTSS(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.Iret()
	})
	c.Flags |= FlagNT
	ev := run(t, c, 5)
	if ev.Kind != isa.EvException || ev.Cause != isa.CauseInvalidTSS {
		t.Errorf("event = %+v, want Invalid TSS", ev)
	}
}

func TestInterruptWithClearedPE(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) { a.Nop() })
	c.CR0 &^= CR0PE
	ev := c.DeliverInterrupt(tCode, 0)
	if ev.Kind != isa.EvException || ev.Cause != isa.CauseGeneralProtection {
		t.Errorf("event = %+v, want #GP", ev)
	}
}

func TestInterruptWithBadTRIsBenign(t *testing.T) {
	// The processor delivers through its cached TSS descriptor, so a
	// corrupted task register does not fault on its own.
	c := newTestCPU(t, func(a *Asm) { a.Nop() })
	c.TR = 0x29 // one bit flipped
	ev := c.DeliverInterrupt(tCode, 0)
	if ev.Kind != isa.EvNone {
		t.Errorf("event = %+v, want none", ev)
	}
}

func TestCorruptedESPFaults(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.PushR(EAX)
	})
	c.Regs[ESP] = 0x00000010 // corrupted into the NULL page
	ev := run(t, c, 5)
	if ev.Kind != isa.EvException || ev.Cause != isa.CauseNULLPointer {
		t.Errorf("event = %+v, want NULL pointer", ev)
	}
}

func TestUserModeProtections(t *testing.T) {
	progs := map[string]func(a *Asm){
		"cli":    func(a *Asm) { a.Cli() },
		"hlt":    func(a *Asm) { a.Hlt() },
		"iret":   func(a *Asm) { a.Iret() },
		"movcr":  func(a *Asm) { a.MovCR(0, EAX) },
		"ctxsw":  func(a *Asm) { a.CtxSw(EAX, EBX) },
		"ltr":    func(a *Asm) { a.Ltr(EAX) },
		"loadfs": func(a *Asm) { a.LoadFS(EAX, EBX, 0) },
	}
	for name, prog := range progs {
		t.Run(name, func(t *testing.T) {
			c := newTestCPU(t, prog)
			c.Mem.Map(tCode, 0x1000, mem.Present|mem.UserOK)
			c.Mem.Map(tStack, 0x1000, mem.Present|mem.Writable|mem.UserOK)
			c.Mode = isa.UserMode
			ev := run(t, c, 5)
			if ev.Kind != isa.EvException || ev.Cause != isa.CauseGeneralProtection {
				t.Errorf("event = %+v, want #GP", ev)
			}
		})
	}
}

func TestUserCannotTouchKernelMemory(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.MovRI(EBX, tData) // kernel-only page
		a.Ld32(EAX, EBX, 0)
	})
	c.Mem.Map(tCode, 0x1000, mem.Present|mem.UserOK)
	c.Mode = isa.UserMode
	ev := run(t, c, 5)
	if ev.Kind != isa.EvException || ev.Cause != isa.CauseGeneralProtection {
		t.Errorf("event = %+v, want #GP", ev)
	}
}

func TestFSSegmentUseAfterCorruption(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.MovRI(EBX, 0)
		a.LoadFS(EAX, EBX, 8)
		a.Hlt()
	})
	c.FSBase = tData
	c.Mem.RawWrite(tData+8, 4, 0x1234)
	// Healthy FS: the load succeeds.
	ev := run(t, c, 10)
	if ev.Kind != isa.EvHalt || c.Regs[EAX] != 0x1234 {
		t.Fatalf("healthy FS load: ev=%+v eax=0x%x", ev, c.Regs[EAX])
	}
	// Corrupted FS selector: #GP at next use.
	c.EIP = tCode
	c.FS ^= 1
	ev = run(t, c, 10)
	if ev.Kind != isa.EvException || ev.Cause != isa.CauseGeneralProtection {
		t.Errorf("corrupted FS: event = %+v, want #GP", ev)
	}
}

func TestInstructionBreakpoint(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.Nop()
		a.MovRI(EAX, 1) // breakpoint here (offset 1)
		a.Hlt()
	})
	c.Debug.Set(0, isa.Breakpoint{Kind: isa.BreakInstruction, Addr: tCode + 1})
	ev := run(t, c, 10)
	if ev.Kind != isa.EvInstrBreak || ev.BreakAddr != tCode+1 {
		t.Fatalf("event = %+v, want instr break at 0x%x", ev, tCode+1)
	}
	if c.Regs[EAX] != 0 {
		t.Error("breakpoint fired after the instruction executed")
	}
	// Clearing and resuming executes the instruction.
	c.Debug.Clear(0)
	ev = run(t, c, 10)
	if ev.Kind != isa.EvHalt || c.Regs[EAX] != 1 {
		t.Errorf("resume: ev=%+v eax=%d", ev, c.Regs[EAX])
	}
}

func TestDataBreakpointReadAndWrite(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.MovRI(EBX, tData)
		a.MovRI(EAX, 7)
		a.St32(EBX, 0x10, EAX) // write hits watchpoint
		a.Ld32(ECX, EBX, 0x10) // read hits watchpoint
		a.Hlt()
	})
	c.Debug.Set(1, isa.Breakpoint{Kind: isa.BreakData, Addr: tData + 0x10, Len: 4})
	ev := run(t, c, 10)
	if ev.Kind != isa.EvDataBreak || ev.Access != isa.AccessWrite {
		t.Fatalf("first event = %+v, want data-break write", ev)
	}
	// Trap semantics: the store completed before the event.
	if got := c.Mem.RawRead(tData+0x10, 4); got != 7 {
		t.Errorf("store did not complete before trap: 0x%x", got)
	}
	ev = run(t, c, 10)
	if ev.Kind != isa.EvDataBreak || ev.Access != isa.AccessRead {
		t.Fatalf("second event = %+v, want data-break read", ev)
	}
	c.Debug.Clear(1)
	if ev = run(t, c, 10); ev.Kind != isa.EvHalt {
		t.Fatalf("final event = %+v, want halt", ev)
	}
}

func TestCtxSwEvent(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.MovRI(EAX, 0x4100)
		a.MovRI(EDX, 0x4200)
		a.CtxSw(EAX, EDX)
	})
	ev := run(t, c, 10)
	if ev.Kind != isa.EvCtxSw || ev.Prev != 0x4100 || ev.Next != 0x4200 {
		t.Errorf("event = %+v, want ctxsw 0x4100→0x4200", ev)
	}
}

func TestPopfUserCannotSetSystemFlags(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.MovRI(EAX, int32(FlagNT|FlagIF|FlagCF))
		a.PushR(EAX)
		a.Popf()
		a.Nop()
	})
	c.Mem.Map(tCode, 0x1000, mem.Present|mem.UserOK)
	c.Mem.Map(tStack, 0x1000, mem.Present|mem.Writable|mem.UserOK)
	c.Mode = isa.UserMode
	for i := 0; i < 3; i++ {
		if ev := c.Step(); ev.Kind != isa.EvNone {
			t.Fatalf("step %d: %+v", i, ev)
		}
	}
	if c.Flags&(FlagNT|FlagIF) != 0 {
		t.Errorf("user popf set system flags: 0x%x", c.Flags)
	}
	if c.Flags&FlagCF == 0 {
		t.Error("user popf did not set arithmetic flag")
	}
}

func TestSystemRegistersTable(t *testing.T) {
	regs := SystemRegisters()
	if len(regs) < 18 || len(regs) > 22 {
		t.Errorf("P4 system register count = %d, want about 20", len(regs))
	}
	names := make(map[string]bool)
	c := NewCPU(mem.New(1<<16, binary.LittleEndian))
	for _, r := range regs {
		if names[r.Name] {
			t.Errorf("duplicate register %q", r.Name)
		}
		names[r.Name] = true
		// Each register must round-trip a value through its accessors.
		old := r.Get(c)
		r.Set(c, old^0x1)
		if r.Get(c) != old^0x1 {
			t.Errorf("register %q does not round-trip", r.Name)
		}
		r.Set(c, old)
	}
	for _, want := range []string{"EFLAGS", "CR0", "ESP", "EIP", "FS", "GS", "TR"} {
		if !names[want] {
			t.Errorf("missing sensitive register %q", want)
		}
	}
}

func TestXchgAndUnaryOps(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.MovRI(EAX, 1)
		a.MovRI(EBX, 2)
		a.XchgRR(EAX, EBX)
		a.XchgA(ECX) // eax ↔ ecx
		a.NegR(EBX)
		a.NotR(EDX)
		a.IncR(ESI)
		a.DecR(EDI)
		a.Hlt()
	})
	run(t, c, 20)
	if c.Regs[ECX] != 2 || c.Regs[EAX] != 0 {
		t.Errorf("xchg chain: eax=%d ecx=%d", c.Regs[EAX], c.Regs[ECX])
	}
	if int32(c.Regs[EBX]) != -1 {
		t.Errorf("neg: ebx=%d", int32(c.Regs[EBX]))
	}
	if c.Regs[EDX] != 0xffffffff {
		t.Errorf("not: edx=0x%x", c.Regs[EDX])
	}
	if c.Regs[ESI] != 1 || int32(c.Regs[EDI]) != -1 {
		t.Errorf("inc/dec: esi=%d edi=%d", c.Regs[ESI], int32(c.Regs[EDI]))
	}
}

func TestMemoryALUOps(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.MovRI(EBX, tData)
		a.MovMI8(EBX, 0, 10)
		a.MovRI(EAX, 3)
		a.AddMS(EBX, 0, EAX) // [d] = 13
		a.SubMS(EBX, 0, EAX) // 10
		a.IncM(EBX, 0)       // 11
		a.DecM(EBX, 0)       // 10
		a.OrMS(EBX, 0, EAX)  // 11
		a.AndMS(EBX, 0, EAX) // 3
		a.XorMS(EBX, 0, EAX) // 0
		a.Hlt()
	})
	run(t, c, 30)
	if got := c.Mem.RawRead(tData, 4); got != 0 {
		t.Errorf("memory ALU chain = %d, want 0", got)
	}
	if c.Flags&FlagZF == 0 {
		t.Error("final xor did not set ZF")
	}
}

func TestCmpLAbsSpinlockShape(t *testing.T) {
	// The Fig. 13 shape: cmpl $MAGIC, addr; jne ok; ud2.
	c := newTestCPU(t, func(a *Asm) {
		a.CmpLAbs("magic", 0, 0x4ead4ead)
		a.Jcc(CcE, "ok")
		a.Ud2()
		a.Label("ok")
		a.Hlt()
		a.Label("magic")
	})
	// Place the magic word at the label (inside the mapped code page,
	// readable). The label is in code; write via raw access.
	addr := tCode + uint32(len(mustLink(t, func(a *Asm) {
		a.CmpLAbs("m", 0, 0)
		a.Jcc(CcE, "m")
		a.Ud2()
		a.Label("m")
		a.Hlt()
	})))
	_ = addr
	// Simpler: find label offset by assembling identically.
	a2 := NewAsm()
	a2.CmpLAbs("magic", 0, 0x4ead4ead)
	a2.Jcc(CcE, "ok")
	a2.Ud2()
	a2.Label("ok")
	a2.Hlt()
	a2.Label("magic")
	off, _ := a2.LabelAddr("magic")
	c.Mem.RawWrite(tCode+off, 4, 0x4ead4ead)
	ev := run(t, c, 10)
	if ev.Kind != isa.EvHalt {
		t.Fatalf("healthy magic: %+v", ev)
	}
	// Corrupt the magic (one bit) → ud2 path → invalid instruction.
	c.EIP = tCode
	c.Mem.FlipBit(tCode+off, 6)
	ev = run(t, c, 10)
	if ev.Kind != isa.EvException || ev.Cause != isa.CauseInvalidInstr {
		t.Errorf("corrupted magic: %+v, want invalid instruction", ev)
	}
}

func mustLink(t *testing.T, build func(a *Asm)) []byte {
	t.Helper()
	a := NewAsm()
	build(a)
	code, err := a.Link(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return code
}

func TestCycleCounting(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.Nop()          // 1
		a.MovRI(EAX, 1)  // 1
		a.ImulRI(EAX, 3) // 4
		a.Hlt()          // 1
	})
	run(t, c, 10)
	if got := c.Clk.Cycles(); got != 7 {
		t.Errorf("cycles = %d, want 7", got)
	}
}

func TestTraceHook(t *testing.T) {
	var pcs []uint32
	c := newTestCPU(t, func(a *Asm) {
		a.Nop()
		a.Nop()
		a.Hlt()
	})
	c.Trace = func(pc uint32, cost uint8) { pcs = append(pcs, pc) }
	run(t, c, 10)
	if len(pcs) != 3 || pcs[0] != tCode || pcs[1] != tCode+1 {
		t.Errorf("trace = %#v", pcs)
	}
}

func TestExecutingDataAsCode(t *testing.T) {
	// Control flow landing in mapped data decodes whatever is there — on a
	// dense CISC map usually something valid, eventually faulting. The CPU
	// must not wedge: it either executes or raises an exception.
	c := newTestCPU(t, func(a *Asm) {
		a.MovRI(EAX, tData)
		a.JmpR(EAX)
	})
	c.Mem.RawWrite(tData, 4, 0xFFFFFFFF) // undefined opcode
	ev := run(t, c, 10)
	if ev.Kind != isa.EvException || ev.Cause != isa.CauseInvalidInstr {
		t.Errorf("event = %+v, want invalid instruction", ev)
	}
}

// Property: ADD/SUB flag computation matches 64-bit reference arithmetic.
func TestFlagsArithmeticProperty(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) { a.Nop() })
	check := func(a, b uint32) bool {
		// ADD
		c.Regs[EAX], c.Regs[EBX] = a, b
		c.setFlagsAdd(a, b, a+b)
		sum64 := uint64(a) + uint64(b)
		wantCF := sum64 > 0xFFFFFFFF
		sums := int64(int32(a)) + int64(int32(b))
		wantOF := sums < -1<<31 || sums > 1<<31-1
		if (c.Flags&FlagCF != 0) != wantCF || (c.Flags&FlagOF != 0) != wantOF {
			return false
		}
		// SUB
		c.setFlagsSub(a, b, a-b)
		wantCF = a < b
		diffs := int64(int32(a)) - int64(int32(b))
		wantOF = diffs < -1<<31 || diffs > 1<<31-1
		if (c.Flags&FlagCF != 0) != wantCF || (c.Flags&FlagOF != 0) != wantOF {
			return false
		}
		if (c.Flags&FlagZF != 0) != (a-b == 0) {
			return false
		}
		return (c.Flags&FlagSF != 0) == (int32(a-b) < 0)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: every condition code agrees with the signed/unsigned comparison
// it encodes, across random operand pairs.
func TestConditionCodeProperty(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) { a.Nop() })
	check := func(a, b uint32) bool {
		c.setFlagsSub(a, b, a-b)
		sa, sb := int32(a), int32(b)
		cases := []struct {
			cc   uint8
			want bool
		}{
			{CcE, a == b}, {CcNE, a != b},
			{CcB, a < b}, {CcAE, a >= b}, {CcBE, a <= b}, {CcA, a > b},
			{CcL, sa < sb}, {CcGE, sa >= sb}, {CcLE, sa <= sb}, {CcG, sa > sb},
		}
		for _, tc := range cases {
			if c.Cond(tc.cc) != tc.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
