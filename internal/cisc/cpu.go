package cisc

import (
	"kfi/internal/isa"
	"kfi/internal/mem"
)

// EFLAGS bit positions (x86 layout).
const (
	FlagCF = 1 << 0
	FlagZF = 1 << 6
	FlagSF = 1 << 7
	FlagIF = 1 << 9
	FlagOF = 1 << 11
	FlagNT = 1 << 14
)

// CR0 bit positions.
const (
	CR0PE = 1 << 0  // protected mode enable; clearing it is fatal
	CR0WP = 1 << 16 // write protect (informational)
	CR0PG = 1 << 31 // paging enable (informational)
)

// Segment selector values accepted by the FS/GS segment machinery. Loading or
// using any other selector raises a general protection fault, mirroring the
// paper's observation that FS/GS corruption manifests as #GP with very long
// latency.
const (
	SelFS = 0x30
	SelGS = 0x38
	// SelTR is the only valid task-register selector.
	SelTR = 0x28
)

// CPU is the P4-class processor core. Construct with NewCPU.
type CPU struct {
	Regs  [numRegs]uint32
	EIP   uint32
	Flags uint32

	// System registers.
	CR0, CR2, CR3            uint32
	FS, GS                   uint32
	TR                       uint32
	GDTR, IDTR, LDTR         uint32
	DR                       [4]uint32 // mirrors the debug unit addresses for injection
	DR6, DR7                 uint32
	SysenterEIP, SysenterESP uint32

	Mode   isa.Mode
	FSBase uint32 // linear base of the FS per-CPU segment

	Mem   *mem.Memory
	Debug isa.DebugUnit
	Clk   isa.CycleCounter

	// Trace, when non-nil, is called once per retired instruction with the
	// pre-execution PC and the instruction cost (used by the profiler).
	Trace func(pc uint32, cost uint8)

	// NoPredecode disables the decoded-instruction cache (see icache.go),
	// forcing the reference fetch+decode sequence on every Step.
	NoPredecode bool

	// Decoded-instruction cache state; icLast short-circuits the page lookup
	// while execution stays within one page.
	icache     map[uint32]*icachePage
	icLast     *icachePage
	icLastPage uint32

	// pending data-breakpoint trap for the current instruction.
	dbSlot   int
	dbAccess isa.DataAccess
	dbAddr   uint32
}

// NewCPU creates a CPU bound to the given memory, in kernel mode with
// interrupts disabled and protected mode enabled.
func NewCPU(m *mem.Memory) *CPU {
	c := &CPU{Mem: m}
	c.Reset()
	return c
}

// Reset restores architectural boot state. Memory is not touched.
func (c *CPU) Reset() {
	c.Regs = [numRegs]uint32{}
	c.EIP = 0
	c.Flags = 0
	c.CR0 = CR0PE | CR0PG
	c.CR2, c.CR3 = 0, 0
	c.FS, c.GS, c.TR = SelFS, SelGS, SelTR
	c.GDTR, c.IDTR, c.LDTR = 0, 0, 0
	c.DR = [4]uint32{}
	c.DR6, c.DR7 = 0, 0
	c.SysenterEIP, c.SysenterESP = 0, 0
	c.Mode = isa.KernelMode
	c.Debug.ClearAll()
	c.dbSlot = -1
}

func (c *CPU) user() bool { return c.Mode == isa.UserMode }

func faultCause(f *mem.Fault) (isa.CrashCause, uint32) {
	switch f.Kind {
	case mem.FaultNull:
		return isa.CauseNULLPointer, f.Addr
	case mem.FaultUnmapped:
		return isa.CauseBadPaging, f.Addr
	default: // protection, bus → segment machinery
		return isa.CauseGeneralProtection, f.Addr
	}
}

func (c *CPU) exception(cause isa.CrashCause, addr uint32) isa.Event {
	if cause == isa.CauseNULLPointer || cause == isa.CauseBadPaging {
		c.CR2 = addr
	}
	return isa.Event{Kind: isa.EvException, Cause: cause, FaultAddr: addr}
}

func (c *CPU) memFault(f *mem.Fault) isa.Event {
	cause, addr := faultCause(f)
	return c.exception(cause, addr)
}

// load performs a checked data read, recording data-breakpoint hits.
func (c *CPU) load(addr, size uint32) (uint32, *mem.Fault) {
	v, f := c.Mem.Read(addr, size, c.user())
	if f == nil && c.dbSlot < 0 && c.Debug.Armed(isa.BreakData) {
		if s := c.Debug.HitData(addr, size); s >= 0 {
			c.dbSlot, c.dbAccess, c.dbAddr = s, isa.AccessRead, addr
		}
	}
	return v, f
}

// store performs a checked data write, recording data-breakpoint hits.
func (c *CPU) store(addr, size, val uint32) *mem.Fault {
	f := c.Mem.Write(addr, size, val, c.user())
	if f == nil && c.dbSlot < 0 && c.Debug.Armed(isa.BreakData) {
		if s := c.Debug.HitData(addr, size); s >= 0 {
			c.dbSlot, c.dbAccess, c.dbAddr = s, isa.AccessWrite, addr
		}
	}
	return f
}

func (c *CPU) push(val uint32) *mem.Fault {
	c.Regs[ESP] -= 4
	return c.store(c.Regs[ESP], 4, val)
}

func (c *CPU) pop() (uint32, *mem.Fault) {
	v, f := c.load(c.Regs[ESP], 4)
	if f == nil {
		c.Regs[ESP] += 4
	}
	return v, f
}

// setFlagsLogic sets ZF/SF from res and clears CF/OF.
func (c *CPU) setFlagsLogic(res uint32) {
	c.Flags &^= FlagCF | FlagZF | FlagSF | FlagOF
	if res == 0 {
		c.Flags |= FlagZF
	}
	if res&0x80000000 != 0 {
		c.Flags |= FlagSF
	}
}

func (c *CPU) setFlagsAdd(a, b, res uint32) {
	c.setFlagsLogic(res)
	if res < a {
		c.Flags |= FlagCF
	}
	if (a^res)&(b^res)&0x80000000 != 0 {
		c.Flags |= FlagOF
	}
}

func (c *CPU) setFlagsSub(a, b, res uint32) {
	c.setFlagsLogic(res)
	if a < b {
		c.Flags |= FlagCF
	}
	if (a^b)&(a^res)&0x80000000 != 0 {
		c.Flags |= FlagOF
	}
}

// Cond evaluates an x86 condition code against the current flags.
func (c *CPU) Cond(cc uint8) bool {
	cf := c.Flags&FlagCF != 0
	zf := c.Flags&FlagZF != 0
	sf := c.Flags&FlagSF != 0
	of := c.Flags&FlagOF != 0
	switch cc {
	case CcO:
		return of
	case CcNO:
		return !of
	case CcB:
		return cf
	case CcAE:
		return !cf
	case CcE:
		return zf
	case CcNE:
		return !zf
	case CcBE:
		return cf || zf
	case CcA:
		return !cf && !zf
	case CcS:
		return sf
	case CcNS:
		return !sf
	case CcL:
		return sf != of
	case CcGE:
		return sf == of
	case CcLE:
		return zf || sf != of
	case CcG:
		return !zf && sf == of
	default:
		return false
	}
}

// effAddr computes a [base+disp] effective address.
func (c *CPU) effAddr(in *Inst) uint32 {
	return c.Regs[in.R2] + uint32(in.Disp)
}

// Step executes one instruction (or reports a pending breakpoint/event).
// It advances the cycle counter by the instruction cost.
func (c *CPU) Step() isa.Event {
	if c.Debug.Armed(isa.BreakInstruction) {
		if s := c.Debug.HitInstruction(c.EIP); s >= 0 {
			return isa.Event{Kind: isa.EvInstrBreak, Slot: s, BreakAddr: c.EIP}
		}
	}
	c.dbSlot = -1

	// Fetch+decode, via the predecode cache when enabled (see icache.go).
	var (
		in   Inst
		cost uint8
	)
	if fev, ok := c.fetchDecode(&in, &cost); !ok {
		return fev
	}

	pc := c.EIP
	ev := c.exec(&in)
	if ev.Kind == isa.EvException {
		return ev
	}
	c.Clk.Advance(uint64(cost))
	if c.Trace != nil {
		c.Trace(pc, cost)
	}
	if ev.Kind != isa.EvNone {
		return ev
	}
	if c.dbSlot >= 0 {
		return isa.Event{Kind: isa.EvDataBreak, Slot: c.dbSlot, Access: c.dbAccess, BreakAddr: c.dbAddr}
	}
	return isa.Event{}
}

// RunUntil steps until the clock reaches limit or an instruction produces a
// non-EvNone event, which it returns (EvNone means the limit was reached).
// Keeping this loop inside the package lets the run harness amortize its
// per-instruction bookkeeping over whole quiet stretches.
func (c *CPU) RunUntil(limit uint64) isa.Event {
	for c.Clk.Cycles() < limit {
		if ev := c.Step(); ev.Kind != isa.EvNone {
			return ev
		}
	}
	return isa.Event{}
}

// exec executes a decoded instruction. On isa.EvNone and non-exception events it
// advances EIP past the instruction (control transfers set EIP themselves).
func (c *CPU) exec(in *Inst) isa.Event {
	next := c.EIP + uint32(in.Len)

	// srcVal resolves the second operand for ALU ops: register for FRR,
	// immediate otherwise.
	srcVal := func() uint32 {
		if in.Format == FRR {
			return c.Regs[in.R2]
		}
		return uint32(in.Imm)
	}

	switch in.Op {
	case OpNOP:
	case OpMOV:
		c.Regs[in.R1] = srcVal()
	case OpADD:
		a, b := c.Regs[in.R1], srcVal()
		c.Regs[in.R1] = a + b
		c.setFlagsAdd(a, b, a+b)
	case OpSUB:
		a, b := c.Regs[in.R1], srcVal()
		c.Regs[in.R1] = a - b
		c.setFlagsSub(a, b, a-b)
	case OpAND:
		c.Regs[in.R1] &= srcVal()
		c.setFlagsLogic(c.Regs[in.R1])
	case OpOR:
		c.Regs[in.R1] |= srcVal()
		c.setFlagsLogic(c.Regs[in.R1])
	case OpXOR:
		c.Regs[in.R1] ^= srcVal()
		c.setFlagsLogic(c.Regs[in.R1])
	case OpCMP:
		a, b := c.Regs[in.R1], srcVal()
		c.setFlagsSub(a, b, a-b)
	case OpTEST:
		c.setFlagsLogic(c.Regs[in.R1] & srcVal())
	case OpIMUL:
		c.Regs[in.R1] = uint32(int32(c.Regs[in.R1]) * int32(srcVal()))
		c.setFlagsLogic(c.Regs[in.R1])
	case OpIDIV, OpMOD:
		a, b := int32(c.Regs[in.R1]), int32(srcVal())
		if b == 0 || (a == -1<<31 && b == -1) {
			return c.exception(isa.CauseDivideError, c.EIP)
		}
		if in.Op == OpIDIV {
			c.Regs[in.R1] = uint32(a / b)
		} else {
			c.Regs[in.R1] = uint32(a % b)
		}
	case OpXCHG:
		c.Regs[in.R1], c.Regs[in.R2] = c.Regs[in.R2], c.Regs[in.R1]
	case OpXCHGA:
		c.Regs[EAX], c.Regs[in.R1] = c.Regs[in.R1], c.Regs[EAX]
	case OpSHL:
		c.Regs[in.R1] <<= srcVal() & 31
		c.setFlagsLogic(c.Regs[in.R1])
	case OpSHR:
		c.Regs[in.R1] >>= srcVal() & 31
		c.setFlagsLogic(c.Regs[in.R1])
	case OpSAR:
		c.Regs[in.R1] = uint32(int32(c.Regs[in.R1]) >> (srcVal() & 31))
		c.setFlagsLogic(c.Regs[in.R1])
	case OpNEG:
		c.Regs[in.R1] = -c.Regs[in.R1]
		c.setFlagsLogic(c.Regs[in.R1])
	case OpNOT:
		c.Regs[in.R1] = ^c.Regs[in.R1]
	case OpINC:
		c.Regs[in.R1]++
		c.flagsIncDec(c.Regs[in.R1], true)
	case OpDEC:
		c.Regs[in.R1]--
		c.flagsIncDec(c.Regs[in.R1], false)
	case OpMOVZX8:
		c.Regs[in.R1] = c.Regs[in.R2] & 0xFF
	case OpMOVSX8:
		c.Regs[in.R1] = uint32(int32(int8(c.Regs[in.R2])))
	case OpMOVZX16:
		c.Regs[in.R1] = c.Regs[in.R2] & 0xFFFF
	case OpMOVSX16:
		c.Regs[in.R1] = uint32(int32(int16(c.Regs[in.R2])))
	case OpSETCC:
		if c.Cond(uint8(in.Imm) & 0xF) {
			c.Regs[in.R1] = 1
		} else {
			c.Regs[in.R1] = 0
		}

	// Loads.
	case OpLD32, OpLD16ZX, OpLD16SX, OpLD8ZX, OpLD8SX:
		size := uint32(4)
		switch in.Op {
		case OpLD16ZX, OpLD16SX:
			size = 2
		case OpLD8ZX, OpLD8SX:
			size = 1
		}
		v, f := c.load(c.effAddr(in), size)
		if f != nil {
			return c.memFault(f)
		}
		switch in.Op {
		case OpLD16SX:
			v = uint32(int32(int16(v)))
		case OpLD8SX:
			v = uint32(int32(int8(v)))
		}
		c.Regs[in.R1] = v
	case OpLD32IDX:
		addr := c.Regs[in.R2] + c.Regs[in.Idx]<<in.Scale + uint32(in.Disp)
		v, f := c.load(addr, 4)
		if f != nil {
			return c.memFault(f)
		}
		c.Regs[in.R1] = v
	case OpLDABS:
		v, f := c.load(in.Abs, 4)
		if f != nil {
			return c.memFault(f)
		}
		c.Regs[in.R1] = v
	case OpLEA:
		c.Regs[in.R1] = c.effAddr(in)
	case OpLEAIDX:
		c.Regs[in.R1] = c.Regs[in.R2] + c.Regs[in.Idx]<<in.Scale + uint32(in.Disp)

	// Stores.
	case OpST32, OpST16, OpST8:
		size := uint32(4)
		switch in.Op {
		case OpST16:
			size = 2
		case OpST8:
			size = 1
		}
		if f := c.store(c.effAddr(in), size, c.Regs[in.R1]); f != nil {
			return c.memFault(f)
		}
	case OpST32IDX:
		addr := c.Regs[in.R2] + c.Regs[in.Idx]<<in.Scale + uint32(in.Disp)
		if f := c.store(addr, 4, c.Regs[in.R1]); f != nil {
			return c.memFault(f)
		}
	case OpSTABS:
		if f := c.store(in.Abs, 4, c.Regs[in.R1]); f != nil {
			return c.memFault(f)
		}
	case OpMOVMI8:
		if f := c.store(c.effAddr(in), 4, uint32(in.Imm)); f != nil {
			return c.memFault(f)
		}

	// Memory ALU.
	case OpCMPM, OpADDM:
		v, f := c.load(c.effAddr(in), 4)
		if f != nil {
			return c.memFault(f)
		}
		a := c.Regs[in.R1]
		if in.Op == OpCMPM {
			c.setFlagsSub(a, v, a-v)
		} else {
			c.Regs[in.R1] = a + v
			c.setFlagsAdd(a, v, a+v)
		}
	case OpADDMS, OpSUBMS, OpANDMS, OpORMS, OpXORMS, OpINCM, OpDECM:
		addr := c.effAddr(in)
		v, f := c.load(addr, 4)
		if f != nil {
			return c.memFault(f)
		}
		r := c.Regs[in.R1]
		var res uint32
		switch in.Op {
		case OpADDMS:
			res = v + r
			c.setFlagsAdd(v, r, res)
		case OpSUBMS:
			res = v - r
			c.setFlagsSub(v, r, res)
		case OpANDMS:
			res = v & r
			c.setFlagsLogic(res)
		case OpORMS:
			res = v | r
			c.setFlagsLogic(res)
		case OpXORMS:
			res = v ^ r
			c.setFlagsLogic(res)
		case OpINCM:
			res = v + 1
			c.flagsIncDec(res, true)
		case OpDECM:
			res = v - 1
			c.flagsIncDec(res, false)
		}
		if f := c.store(addr, 4, res); f != nil {
			return c.memFault(f)
		}
	case OpCMPLABS:
		v, f := c.load(in.Abs, 4)
		if f != nil {
			return c.memFault(f)
		}
		c.setFlagsSub(v, uint32(in.Imm), v-uint32(in.Imm))

	// Stack.
	case OpPUSH:
		if f := c.push(c.Regs[in.R1]); f != nil {
			return c.memFault(f)
		}
	case OpPUSHI:
		if f := c.push(uint32(in.Imm)); f != nil {
			return c.memFault(f)
		}
	case OpPOP:
		v, f := c.pop()
		if f != nil {
			return c.memFault(f)
		}
		c.Regs[in.R1] = v
	case OpLEAVE:
		c.Regs[ESP] = c.Regs[EBP]
		v, f := c.pop()
		if f != nil {
			return c.memFault(f)
		}
		c.Regs[EBP] = v

	// Control flow.
	case OpJMP:
		c.EIP = next + uint32(in.Imm)
		return isa.Event{}
	case OpJMPR:
		c.EIP = c.Regs[in.R1]
		return isa.Event{}
	case OpJCC:
		if c.Cond(in.Cc) {
			c.EIP = next + uint32(in.Imm)
		} else {
			c.EIP = next
		}
		return isa.Event{}
	case OpCALL:
		if f := c.push(next); f != nil {
			return c.memFault(f)
		}
		c.EIP = next + uint32(in.Imm)
		return isa.Event{}
	case OpCALLR:
		if f := c.push(next); f != nil {
			return c.memFault(f)
		}
		c.EIP = c.Regs[in.R1]
		return isa.Event{}
	case OpRET:
		v, f := c.pop()
		if f != nil {
			return c.memFault(f)
		}
		c.EIP = v
		return isa.Event{}
	case OpBOUND:
		base := c.effAddr(in)
		lo, f := c.load(base, 4)
		if f != nil {
			return c.memFault(f)
		}
		hi, f := c.load(base+4, 4)
		if f != nil {
			return c.memFault(f)
		}
		v := int32(c.Regs[in.R1])
		if v < int32(lo) || v > int32(hi) {
			return c.exception(isa.CauseBoundsTrap, c.EIP)
		}

	// Flags / privileged.
	case OpPUSHF:
		if f := c.push(c.Flags); f != nil {
			return c.memFault(f)
		}
	case OpPOPF:
		v, f := c.pop()
		if f != nil {
			return c.memFault(f)
		}
		if c.user() {
			// User mode cannot change system flags.
			const sys = uint32(FlagIF | FlagNT)
			v = (v &^ sys) | (c.Flags & sys)
		}
		c.Flags = v
	case OpCLI:
		if c.user() {
			return c.exception(isa.CauseGeneralProtection, c.EIP)
		}
		c.Flags &^= FlagIF
	case OpSTI:
		if c.user() {
			return c.exception(isa.CauseGeneralProtection, c.EIP)
		}
		c.Flags |= FlagIF
	case OpHLT:
		if c.user() {
			return c.exception(isa.CauseGeneralProtection, c.EIP)
		}
		c.EIP = next
		return isa.Event{Kind: isa.EvHalt}
	case OpIRET:
		if c.user() {
			return c.exception(isa.CauseGeneralProtection, c.EIP)
		}
		if c.Flags&FlagNT != 0 {
			// Nested-task return to an invalid back-linked TSS.
			return c.exception(isa.CauseInvalidTSS, c.EIP)
		}
		if c.CR0&CR0PE == 0 {
			return c.exception(isa.CauseGeneralProtection, c.EIP)
		}
		eip, f := c.pop()
		if f != nil {
			return c.memFault(f)
		}
		modeWord, f := c.pop()
		if f != nil {
			return c.memFault(f)
		}
		sp, f := c.pop()
		if f != nil {
			return c.memFault(f)
		}
		flags, f := c.pop()
		if f != nil {
			return c.memFault(f)
		}
		c.EIP = eip
		c.Flags = flags
		c.Regs[ESP] = sp
		if isa.Mode(modeWord) == isa.UserMode {
			c.Mode = isa.UserMode
		} else {
			c.Mode = isa.KernelMode
		}
		return isa.Event{}
	case OpCTXSW:
		if c.user() {
			return c.exception(isa.CauseGeneralProtection, c.EIP)
		}
		c.EIP = next
		return isa.Event{Kind: isa.EvCtxSw, Prev: c.Regs[in.R1], Next: c.Regs[in.R2]}
	case OpUD2:
		return c.exception(isa.CauseInvalidInstr, c.EIP)
	case OpINT:
		n := uint32(in.Imm) & 0xFF
		if n != 0x80 {
			return c.exception(isa.CauseGeneralProtection, c.EIP)
		}
		if c.CR0&CR0PE == 0 {
			return c.exception(isa.CauseGeneralProtection, c.EIP)
		}
		c.EIP = next
		return isa.Event{Kind: isa.EvSyscall, SysNo: c.Regs[EAX]}

	// System registers.
	case OpMOVCR:
		if c.user() {
			return c.exception(isa.CauseGeneralProtection, c.EIP)
		}
		switch in.R1 {
		case 0:
			c.CR0 = c.Regs[in.R2]
		case 2:
			c.CR2 = c.Regs[in.R2]
		case 3:
			c.CR3 = c.Regs[in.R2]
		}
	case OpMOVRC:
		if c.user() {
			return c.exception(isa.CauseGeneralProtection, c.EIP)
		}
		switch in.R2 {
		case 0:
			c.Regs[in.R1] = c.CR0
		case 2:
			c.Regs[in.R1] = c.CR2
		case 3:
			c.Regs[in.R1] = c.CR3
		default:
			c.Regs[in.R1] = 0
		}
	case OpMOVDR:
		if c.user() {
			return c.exception(isa.CauseGeneralProtection, c.EIP)
		}
		c.DR[in.R1&3] = c.Regs[in.R2]
	case OpMOVRD:
		if c.user() {
			return c.exception(isa.CauseGeneralProtection, c.EIP)
		}
		c.Regs[in.R1] = c.DR[in.R2&3]
	case OpMOVSEG:
		if c.user() {
			return c.exception(isa.CauseGeneralProtection, c.EIP)
		}
		v := c.Regs[in.R2]
		if in.R1 == 0 {
			if v != SelFS {
				return c.exception(isa.CauseGeneralProtection, c.EIP)
			}
			c.FS = v
		} else {
			if v != SelGS {
				return c.exception(isa.CauseGeneralProtection, c.EIP)
			}
			c.GS = v
		}
	case OpMOVRSEG:
		if in.R2 == 0 {
			c.Regs[in.R1] = c.FS
		} else {
			c.Regs[in.R1] = c.GS
		}
	case OpLOADFS:
		if c.user() {
			return c.exception(isa.CauseGeneralProtection, c.EIP)
		}
		if c.FS != SelFS {
			// A corrupted FS selector surfaces only when the segment is
			// actually used — hence the >1G-cycle latencies in Fig. 16(B).
			return c.exception(isa.CauseGeneralProtection, c.EIP)
		}
		v, f := c.load(c.FSBase+c.effAddr(in), 4)
		if f != nil {
			return c.memFault(f)
		}
		c.Regs[in.R1] = v
	case OpLTR:
		if c.user() {
			return c.exception(isa.CauseGeneralProtection, c.EIP)
		}
		c.TR = c.Regs[in.R1]
	case OpSTR:
		c.Regs[in.R1] = c.TR

	default:
		return c.exception(isa.CauseInvalidInstr, c.EIP)
	}

	c.EIP = next
	return isa.Event{}
}

func (c *CPU) flagsIncDec(res uint32, inc bool) {
	c.Flags &^= FlagZF | FlagSF | FlagOF
	if res == 0 {
		c.Flags |= FlagZF
	}
	if res&0x80000000 != 0 {
		c.Flags |= FlagSF
	}
	if inc && res == 0x80000000 || !inc && res == 0x7FFFFFFF {
		c.Flags |= FlagOF
	}
}

// DeliverInterrupt vectors the CPU to handler as a hardware interrupt or trap
// would: it switches to kernel mode, moves to the given kernel stack (when
// coming from user mode), pushes the interrupted context frame
// [EFLAGS, oldESP, oldMode, EIP], clears IF, and jumps. It returns an
// exception event if the machinery itself faults (e.g., a corrupted stack
// pointer or disabled protected mode), which the machine treats as a crash.
func (c *CPU) DeliverInterrupt(handler, kernelSP uint32) isa.Event {
	if c.CR0&CR0PE == 0 {
		return c.exception(isa.CauseGeneralProtection, c.EIP)
	}
	// A corrupted task register is benign here: the processor works from
	// its cached segment descriptor, so TR corruption rarely manifests
	// (only the EFLAGS NT-bit chain produces Invalid TSS faults).
	oldSP := c.Regs[ESP]
	oldMode := c.Mode
	if oldMode == isa.UserMode {
		c.Regs[ESP] = kernelSP
	}
	c.Mode = isa.KernelMode
	if f := c.push(c.Flags); f != nil {
		return c.memFault(f)
	}
	if f := c.push(oldSP); f != nil {
		return c.memFault(f)
	}
	if f := c.push(uint32(oldMode)); f != nil {
		return c.memFault(f)
	}
	if f := c.push(c.EIP); f != nil {
		return c.memFault(f)
	}
	c.Flags &^= FlagIF
	c.EIP = handler
	return isa.Event{}
}

// PendingDataBreak reports a data-breakpoint hit recorded outside the normal
// Step flow (e.g. during interrupt-frame pushes in DeliverInterrupt) so the
// machine layer can deliver the activation event. The pending state is
// cleared.
func (c *CPU) PendingDataBreak() (slot int, access isa.DataAccess, addr uint32, ok bool) {
	if c.dbSlot < 0 {
		return 0, 0, 0, false
	}
	slot, access, addr = c.dbSlot, c.dbAccess, c.dbAddr
	c.dbSlot = -1
	return slot, access, addr, true
}
