package cisc

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Inst is one decoded instruction.
type Inst struct {
	Op     Op
	Format Format
	Len    uint8
	Opcode byte
	R1     uint8 // destination / primary register
	R2     uint8 // source register
	Idx    uint8 // index register (FIdx)
	Scale  uint8 // index scale shift: 0..3 meaning x1,x2,x4,x8
	Cc     uint8 // condition code (OpJCC, OpSETCC)
	Imm    int32 // immediate (sign-extended for 8-bit forms)
	Disp   int32 // memory displacement (sign-extended for 8-bit forms)
	Abs    uint32
}

// Decode errors.
var (
	// ErrInvalidOpcode reports an undefined opcode byte or an invalid
	// register/scale field — the #UD condition.
	ErrInvalidOpcode = errors.New("cisc: invalid opcode")
	// ErrTruncated reports that the byte stream ended mid-instruction.
	ErrTruncated = errors.New("cisc: truncated instruction")
)

// Decode decodes one instruction from the front of code. It never panics on
// arbitrary input: undefined encodings return ErrInvalidOpcode and short
// buffers return ErrTruncated.
func Decode(code []byte) (Inst, error) {
	if len(code) == 0 {
		return Inst{}, ErrTruncated
	}
	b := code[0]
	e := &opTable[b]
	if e.op == OpInvalid {
		return Inst{}, ErrInvalidOpcode
	}
	in := Inst{Op: e.op, Format: e.format, Opcode: b, Cc: e.cc, Len: e.format.Length()}
	if int(in.Len) > len(code) {
		return Inst{}, ErrTruncated
	}
	body := code[1:in.Len]

	switch e.format {
	case FNone:
		// No operands.
	case FOpReg:
		in.R1 = b & 7
	case FRR:
		if err := in.decodeNibbles(body[0]); err != nil {
			return Inst{}, err
		}
	case FR:
		in.R1 = body[0] & 7
	case FRI8:
		in.R1 = body[0] & 7
		in.Imm = int32(int8(body[1]))
	case FRI32:
		in.R1 = body[0] & 7
		in.Imm = int32(binary.LittleEndian.Uint32(body[1:]))
	case FI8:
		in.Imm = int32(int8(body[0]))
	case FI32:
		in.Imm = int32(binary.LittleEndian.Uint32(body))
	case FMem8:
		if err := in.decodeNibbles(body[0]); err != nil {
			return Inst{}, err
		}
		in.Disp = int32(int8(body[1]))
	case FMem32:
		if err := in.decodeNibbles(body[0]); err != nil {
			return Inst{}, err
		}
		in.Disp = int32(binary.LittleEndian.Uint32(body[1:]))
	case FIdx:
		if err := in.decodeNibbles(body[0]); err != nil {
			return Inst{}, err
		}
		in.Idx = body[1] >> 4 & 7
		in.Scale = body[1] & 0xF
		if in.Scale > 3 {
			// Scale values 4-15 are undefined SIB encodings.
			return Inst{}, ErrInvalidOpcode
		}
		in.Disp = int32(int8(body[2]))
	case FMI8:
		if err := in.decodeNibbles(body[0]); err != nil {
			return Inst{}, err
		}
		in.Disp = int32(int8(body[1]))
		in.Imm = int32(int8(body[2]))
	case FRel8:
		in.Imm = int32(int8(body[0]))
	case FRel32:
		in.Imm = int32(binary.LittleEndian.Uint32(body))
	case FAbsI32:
		in.Abs = binary.LittleEndian.Uint32(body[:4])
		in.Imm = int32(binary.LittleEndian.Uint32(body[4:]))
	case FAbsR:
		in.R1 = body[0] & 7
		in.Abs = binary.LittleEndian.Uint32(body[1:])
	default:
		return Inst{}, ErrInvalidOpcode
	}
	return in, nil
}

// decodeNibbles splits a mod byte into two register fields. Only three bits
// per field select a register, as on x86's modrm; the spare bit is ignored,
// so flips there silently alias to the same register.
func (in *Inst) decodeNibbles(m byte) error {
	in.R1 = m >> 4 & 7
	in.R2 = m & 7
	return nil
}

// Cost returns the instruction's cycle cost from the opcode table.
func (in Inst) Cost() uint8 { return opTable[in.Opcode].cost }

// Name returns the mnemonic from the opcode table.
func (in Inst) Name() string { return opTable[in.Opcode].name }

// String disassembles the instruction in an AT&T-flavored syntax (operands
// source-first for two-operand forms, as in the paper's listings).
func (in Inst) String() string {
	n := in.Name()
	r1 := RegName(in.R1)
	switch in.Format {
	case FNone:
		return n
	case FOpReg:
		return fmt.Sprintf("%s %%%s", n, r1)
	case FRR:
		return fmt.Sprintf("%s %%%s,%%%s", n, RegName(in.R2), r1)
	case FR:
		return fmt.Sprintf("%s %%%s", n, r1)
	case FRI8, FRI32:
		if in.Op == OpSETCC {
			return fmt.Sprintf("set%s %%%s", CcName(uint8(in.Imm)&0xF), r1)
		}
		return fmt.Sprintf("%s $0x%x,%%%s", n, uint32(in.Imm), r1)
	case FI8, FI32:
		return fmt.Sprintf("%s $0x%x", n, uint32(in.Imm))
	case FMem8, FMem32:
		if in.isStore() {
			return fmt.Sprintf("%s %%%s,0x%x(%%%s)", n, r1, uint32(in.Disp), RegName(in.R2))
		}
		return fmt.Sprintf("%s 0x%x(%%%s),%%%s", n, uint32(in.Disp), RegName(in.R2), r1)
	case FIdx:
		m := fmt.Sprintf("0x%x(%%%s,%%%s,%d)", uint32(in.Disp), RegName(in.R2), RegName(in.Idx), 1<<in.Scale)
		if in.isStore() {
			return fmt.Sprintf("%s %%%s,%s", n, r1, m)
		}
		return fmt.Sprintf("%s %s,%%%s", n, m, r1)
	case FMI8:
		return fmt.Sprintf("%s $0x%x,0x%x(%%%s)", n, uint32(in.Imm), uint32(in.Disp), RegName(in.R2))
	case FRel8, FRel32:
		return fmt.Sprintf("%s .%+d", n, in.Imm)
	case FAbsI32:
		return fmt.Sprintf("%s $0x%x,0x%x", n, uint32(in.Imm), in.Abs)
	case FAbsR:
		if in.Op == OpSTABS {
			return fmt.Sprintf("%s %%%s,0x%x", n, r1, in.Abs)
		}
		return fmt.Sprintf("%s 0x%x,%%%s", n, in.Abs, r1)
	default:
		return fmt.Sprintf("%s?", n)
	}
}

func (in Inst) isStore() bool {
	switch in.Op {
	case OpST32, OpST16, OpST8, OpST32IDX, OpADDMS, OpSUBMS, OpANDMS, OpORMS, OpXORMS:
		return true
	default:
		return false
	}
}

// DisasmRange disassembles [addr, addr+n) of code for diagnostics, resuming
// at the next byte after any undecodable byte.
func DisasmRange(code []byte, base uint32) []string {
	var out []string
	for off := 0; off < len(code); {
		in, err := Decode(code[off:])
		if err != nil {
			out = append(out, fmt.Sprintf("%08x: %02x               (bad)", base+uint32(off), code[off]))
			off++
			continue
		}
		out = append(out, fmt.Sprintf("%08x: % -16x %s", base+uint32(off), code[off:off+int(in.Len)], in))
		off += int(in.Len)
	}
	return out
}
