package cisc

import (
	"encoding/binary"
	"testing"

	"kfi/internal/mem"
)

// The predecode-cache contract: with the cache enabled, every observable —
// events, registers, flags, fault state, cycle counts — is bit-identical to
// the reference interpreter, under any sequence of stores and injected bit
// flips into code that is already cached. These tests run a cached CPU and an
// uncached CPU in lockstep over identical memories and diff the complete
// architectural state every step.

const (
	icTestBase  = 0x1000
	icTestStack = 0xB000
)

// newLockstepCPU builds one CPU over a fresh memory with code at icTestBase.
func newLockstepCPU(t testing.TB, code []byte, predecode bool) *CPU {
	t.Helper()
	m := mem.New(1<<16, binary.LittleEndian)
	m.Map(0x1000, 0x7000, mem.Present|mem.Writable)
	m.Map(0x8000, 0x4000, mem.Present|mem.Writable)
	copy(m.RawBytes(icTestBase, uint32(len(code))), code)
	c := NewCPU(m)
	c.EIP = icTestBase
	c.Regs[ESP] = icTestStack
	c.NoPredecode = !predecode
	return c
}

// lockstep steps both CPUs n times, calling mutate (when non-nil) before each
// step on both memories, and fails on the first divergence.
func lockstep(t *testing.T, code []byte, n int, mutate func(step int, m *mem.Memory)) {
	t.Helper()
	cached := newLockstepCPU(t, code, true)
	ref := newLockstepCPU(t, code, false)
	for i := 0; i < n; i++ {
		if mutate != nil {
			mutate(i, cached.Mem)
			mutate(i, ref.Mem)
		}
		evC, evR := cached.Step(), ref.Step()
		if evC != evR {
			t.Fatalf("step %d: event diverged: cached %+v, reference %+v", i, evC, evR)
		}
		if cached.EIP != ref.EIP || cached.Flags != ref.Flags || cached.CR2 != ref.CR2 {
			t.Fatalf("step %d: state diverged: EIP %#x/%#x Flags %#x/%#x CR2 %#x/%#x",
				i, cached.EIP, ref.EIP, cached.Flags, ref.Flags, cached.CR2, ref.CR2)
		}
		if cached.Regs != ref.Regs {
			t.Fatalf("step %d: registers diverged: %v vs %v", i, cached.Regs, ref.Regs)
		}
		if cached.Clk.Cycles() != ref.Clk.Cycles() {
			t.Fatalf("step %d: cycles diverged: %d vs %d", i, cached.Clk.Cycles(), ref.Clk.Cycles())
		}
	}
}

// loopProgram assembles a small counting loop whose first instruction is a
// 6-byte mov r0, imm32 (opcode 0x10) — the shape the resync tests corrupt.
func loopProgram(t testing.TB) []byte {
	t.Helper()
	a := NewAsm()
	a.Label("top")
	a.MovRI(0, 0x11223344)
	a.AddRI(1, 1)
	a.St32(2, 0x2000, 1)
	a.Ld32(3, 2, 0x2000)
	a.CmpRI(1, 1<<30)
	a.JmpSym("top")
	code, err := a.Link(icTestBase, nil)
	if err != nil {
		t.Fatal(err)
	}
	return code
}

func TestPredecodeLockstepClean(t *testing.T) {
	lockstep(t, loopProgram(t), 5000, nil)
}

// TestPredecodeLockstepLengthResync flips bit 4 of the cached 0x10 opcode
// after the page is hot, turning the 6-byte mov imm32 into a 2-byte
// register-register add. The variable-length stream re-synchronizes into a
// different valid instruction sequence starting inside the old immediate; the
// cached interpreter must follow it byte-identically.
func TestPredecodeLockstepLengthResync(t *testing.T) {
	lockstep(t, loopProgram(t), 5000, func(step int, m *mem.Memory) {
		if step == 1000 {
			m.FlipBit(icTestBase, 4) // 0x10 -> 0x00: mov r0,imm32 -> add rr
		}
	})
}

// TestPredecodeLockstepInvalidOpcode flips the cached opcode into the
// undefined 0x18-0x1F range, so a previously valid cached slot must replay
// the invalid-instruction exception.
func TestPredecodeLockstepInvalidOpcode(t *testing.T) {
	lockstep(t, loopProgram(t), 2000, func(step int, m *mem.Memory) {
		if step == 500 {
			m.FlipBit(icTestBase, 3) // 0x10 -> 0x18: undefined opcode
		}
	})
}

// TestPredecodeLockstepImmediateFlip corrupts an immediate byte of an
// already-cached instruction: the length is unchanged but the cached operand
// is stale.
func TestPredecodeLockstepImmediateFlip(t *testing.T) {
	lockstep(t, loopProgram(t), 5000, func(step int, m *mem.Memory) {
		if step == 1000 {
			m.FlipBit(icTestBase+3, 7) // middle of the mov imm32
		}
	})
}

// TestPredecodeLockstepSelfModify runs a program that stores into its own
// (cached) instruction stream: the store must be observed by the very next
// fetch, as on the reference interpreter.
func TestPredecodeLockstepSelfModify(t *testing.T) {
	a := NewAsm()
	a.MovRI(2, icTestBase) // r2 -> code base
	a.Label("top")
	a.MovRI(0, 0x01010101)
	a.AddRI(1, 1)
	a.St32(2, 11, 0) // store over the loop mov's immediate (code offset 11)
	a.JmpSym("top")
	code, err := a.Link(icTestBase, nil)
	if err != nil {
		t.Fatal(err)
	}
	lockstep(t, code, 3000, nil)
}

// FuzzPredecodeEquivalence feeds arbitrary bytes as code and flips an
// arbitrary code bit mid-run, diffing the cached interpreter against the
// reference one step by step.
func FuzzPredecodeEquivalence(f *testing.F) {
	f.Add([]byte{0x10, 0x00, 0x44, 0x33, 0x22, 0x11, 0xB4, 0x00}, uint16(0), uint8(4), uint8(10))
	f.Add(loopProgram(f), uint16(2), uint8(0), uint8(3))
	f.Add([]byte{0x9C}, uint16(0), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, code []byte, off uint16, bit, when uint8) {
		if len(code) == 0 || len(code) > 512 {
			t.Skip()
		}
		flipAddr := icTestBase + uint32(off)%uint32(len(code))
		flipStep := int(when % 64)
		lockstep(t, code, 128, func(step int, m *mem.Memory) {
			if step == flipStep {
				m.FlipBit(flipAddr, uint(bit&7))
			}
		})
	})
}
