package cisc

import (
	"kfi/internal/isa"
	"kfi/internal/mem"
)

// Decoded-instruction cache (predecode cache).
//
// The interpreter's hot loop used to fetch and decode every instruction on
// every Step. This cache keeps one decoded slot per byte offset of a page —
// the CISC stream is variable-length, so any byte can start an instruction,
// which is exactly what lets an injected bit flip re-synchronize the stream
// into a different valid sequence — and fills slots lazily as offsets are
// first executed. A hit copies the decoded Inst and skips fetch+decode.
//
// Correctness under fault injection is the contract: the cache revalidates
// its page against internal/mem's per-page write-generation counter on every
// Step, so any store, injected bit flip, baseline restore, reboot, or
// protection change made since the page was predecoded drops the page's
// slots before they can be used. Instructions that straddle a page boundary
// and offsets whose decode depends on bytes beyond the page are never
// cached; they take the uncached path each time, keeping cross-page fault
// ordering byte-identical to the reference interpreter.

// Slot states.
const (
	slotEmpty uint8 = iota
	slotValid
	// slotInvalid records an invalid-opcode outcome whose cause lies
	// entirely within the page, so the exception replays without a fetch.
	slotInvalid
)

type islot struct {
	state uint8
	cost  uint8
	inst  Inst
}

type icachePage struct {
	// gen is the mem generation the slots were decoded against.
	gen uint64
	// okKernel/okUser record whether instruction fetch succeeds everywhere
	// in this page for each mode (page flags are uniform across a page and
	// cannot change without a generation bump). When the current mode's
	// flag is false the fast path is skipped so faults are reported by the
	// reference sequence.
	okKernel, okUser bool
	slots            [mem.PageSize]islot
}

// icacheMaxPages bounds the cache footprint: corrupted control flow can
// execute from arbitrary pages, and each cached page costs ~sizeof(Inst)*4096.
// Exceeding the bound drops the whole cache (refill is cheap and rare).
const icacheMaxPages = 64

// SetPredecode enables or disables the decoded-instruction cache. Disabling
// yields the reference interpreter (fetch+decode every Step) and drops the
// cache; the equivalence tests and benchmarks run both modes.
func (c *CPU) SetPredecode(on bool) {
	c.NoPredecode = !on
	c.FlushPredecode()
}

// FlushPredecode drops every predecoded instruction; subsequent Steps refill
// lazily from RAM. Never required for correctness — generation checks already
// invalidate stale slots — but useful to bound memory or establish a cold
// cache.
func (c *CPU) FlushPredecode() {
	c.icache = nil
	c.icLast = nil
}

// icachePageFor returns (creating if needed) the cache page for a page index.
func (c *CPU) icachePageFor(page uint32) *icachePage {
	pg := c.icache[page]
	if pg == nil {
		if c.icache == nil || len(c.icache) >= icacheMaxPages {
			c.icache = make(map[uint32]*icachePage, icacheMaxPages)
		}
		pg = new(icachePage)
		pg.gen = ^uint64(0) // impossible generation: force a reset on first use
		c.icache[page] = pg
	}
	return pg
}

// icacheReset drops a page's slots and revalidates its fetchability for the
// generation gen.
func (c *CPU) icacheReset(pg *icachePage, page uint32, gen uint64) {
	*pg = icachePage{
		gen:      gen,
		okKernel: c.Mem.PageFetchable(page, false),
		okUser:   c.Mem.PageFetchable(page, true),
	}
}

// fetchDecode produces the instruction at EIP and its cycle cost. ok=false
// means the returned event is the fetch/decode outcome (memory fault or
// invalid opcode) exactly as the reference sequence reports it.
func (c *CPU) fetchDecode(in *Inst, cost *uint8) (isa.Event, bool) {
	if c.NoPredecode {
		return c.fetchDecodeSlow(in, cost)
	}
	page := c.EIP / mem.PageSize
	pg := c.icLast
	if pg == nil || c.icLastPage != page {
		if c.EIP >= c.Mem.Size() {
			return c.fetchDecodeSlow(in, cost)
		}
		pg = c.icachePageFor(page)
		c.icLast, c.icLastPage = pg, page
	}
	// Revalidate on every step: a store retired one instruction ago may have
	// rewritten the bytes this fetch is about to observe.
	if g := c.Mem.PageGen(page); pg.gen != g {
		c.icacheReset(pg, page, g)
	}
	user := c.user()
	if user && !pg.okUser || !user && !pg.okKernel {
		return c.fetchDecodeSlow(in, cost)
	}
	off := c.EIP & (mem.PageSize - 1)
	sl := &pg.slots[off]
	switch sl.state {
	case slotValid:
		*in, *cost = sl.inst, sl.cost
		return isa.Event{}, true
	case slotInvalid:
		return c.exception(isa.CauseInvalidInstr, c.EIP), false
	}
	// Miss: run the reference sequence once, caching outcomes that depend
	// only on bytes inside this page.
	first, f := c.Mem.Fetch(c.EIP, 1, user)
	if f != nil {
		return c.memFault(f), false
	}
	e := &opTable[first[0]]
	if e.op == OpInvalid {
		sl.state = slotInvalid // determined by byte 0 alone, always in-page
		return c.exception(isa.CauseInvalidInstr, c.EIP), false
	}
	n := uint32(e.format.Length())
	raw, f := c.Mem.Fetch(c.EIP, n, user)
	if f != nil {
		return c.memFault(f), false // straddles into a faulting page: uncacheable
	}
	dec, err := Decode(raw)
	inPage := off+n <= mem.PageSize
	if err != nil {
		if inPage {
			sl.state = slotInvalid
		}
		return c.exception(isa.CauseInvalidInstr, c.EIP), false
	}
	if inPage {
		sl.inst, sl.cost, sl.state = dec, e.cost, slotValid
	}
	*in, *cost = dec, e.cost
	return isa.Event{}, true
}

// fetchDecodeSlow is the reference fetch+decode sequence (the pre-cache Step
// body): one byte for the opcode, then the full instruction.
func (c *CPU) fetchDecodeSlow(in *Inst, cost *uint8) (isa.Event, bool) {
	first, f := c.Mem.Fetch(c.EIP, 1, c.user())
	if f != nil {
		return c.memFault(f), false
	}
	e := &opTable[first[0]]
	if e.op == OpInvalid {
		return c.exception(isa.CauseInvalidInstr, c.EIP), false
	}
	n := uint32(e.format.Length())
	raw, f := c.Mem.Fetch(c.EIP, n, c.user())
	if f != nil {
		return c.memFault(f), false
	}
	dec, err := Decode(raw)
	if err != nil {
		return c.exception(isa.CauseInvalidInstr, c.EIP), false
	}
	*in, *cost = dec, e.cost
	return isa.Event{}, true
}
