package cisc

// SysReg describes one injectable system register: its name, bit width, and
// accessors. The system-register campaign flips single bits through this
// table, mirroring the paper's P4 targets ("flag register, control registers,
// debug registers, stack pointer, segment registers fs and gs, and
// memory-management registers").
type SysReg struct {
	Name string
	Bits uint
	Get  func(c *CPU) uint32
	Set  func(c *CPU, v uint32)
}

// SystemRegisters returns the P4-class system-register file (about 20
// registers, of which only a handful are architecturally live — the paper
// found just 7 P4 registers contributing to crashes).
func SystemRegisters() []SysReg {
	regs := []SysReg{
		{Name: "EFLAGS", Bits: 32,
			Get: func(c *CPU) uint32 { return c.Flags },
			Set: func(c *CPU, v uint32) { c.Flags = v }},
		{Name: "CR0", Bits: 32,
			Get: func(c *CPU) uint32 { return c.CR0 },
			Set: func(c *CPU, v uint32) { c.CR0 = v }},
		{Name: "CR2", Bits: 32,
			Get: func(c *CPU) uint32 { return c.CR2 },
			Set: func(c *CPU, v uint32) { c.CR2 = v }},
		{Name: "CR3", Bits: 32,
			Get: func(c *CPU) uint32 { return c.CR3 },
			Set: func(c *CPU, v uint32) { c.CR3 = v }},
		{Name: "ESP", Bits: 32,
			Get: func(c *CPU) uint32 { return c.Regs[ESP] },
			Set: func(c *CPU, v uint32) { c.Regs[ESP] = v }},
		{Name: "EIP", Bits: 32,
			Get: func(c *CPU) uint32 { return c.EIP },
			Set: func(c *CPU, v uint32) { c.EIP = v }},
		{Name: "FS", Bits: 16,
			Get: func(c *CPU) uint32 { return c.FS },
			Set: func(c *CPU, v uint32) { c.FS = v }},
		{Name: "GS", Bits: 16,
			Get: func(c *CPU) uint32 { return c.GS },
			Set: func(c *CPU, v uint32) { c.GS = v }},
		{Name: "TR", Bits: 16,
			Get: func(c *CPU) uint32 { return c.TR },
			Set: func(c *CPU, v uint32) { c.TR = v }},
		{Name: "GDTR", Bits: 32,
			Get: func(c *CPU) uint32 { return c.GDTR },
			Set: func(c *CPU, v uint32) { c.GDTR = v }},
		{Name: "IDTR", Bits: 32,
			Get: func(c *CPU) uint32 { return c.IDTR },
			Set: func(c *CPU, v uint32) { c.IDTR = v }},
		{Name: "LDTR", Bits: 32,
			Get: func(c *CPU) uint32 { return c.LDTR },
			Set: func(c *CPU, v uint32) { c.LDTR = v }},
	}
	for i := 0; i < 4; i++ {
		i := i
		regs = append(regs, SysReg{
			Name: drName(i), Bits: 32,
			Get: func(c *CPU) uint32 { return c.DR[i] },
			Set: func(c *CPU, v uint32) { c.DR[i] = v },
		})
	}
	regs = append(regs,
		SysReg{Name: "DR6", Bits: 32,
			Get: func(c *CPU) uint32 { return c.DR6 },
			Set: func(c *CPU, v uint32) { c.DR6 = v }},
		SysReg{Name: "DR7", Bits: 32,
			Get: func(c *CPU) uint32 { return c.DR7 },
			Set: func(c *CPU, v uint32) { c.DR7 = v }},
		SysReg{Name: "SYSENTER_EIP", Bits: 32,
			Get: func(c *CPU) uint32 { return c.SysenterEIP },
			Set: func(c *CPU, v uint32) { c.SysenterEIP = v }},
		SysReg{Name: "SYSENTER_ESP", Bits: 32,
			Get: func(c *CPU) uint32 { return c.SysenterESP },
			Set: func(c *CPU, v uint32) { c.SysenterESP = v }},
	)
	return regs
}

func drName(i int) string {
	return "DR" + string(rune('0'+i))
}
