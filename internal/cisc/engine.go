package cisc

import (
	"fmt"

	"kfi/internal/isa"
	"kfi/internal/platform"
)

// Execution engines for the P4-class core. The step engines wrap the
// existing interpreter (with or without the predecode cache); the block
// translator lives in translate.go. All engines are observationally
// equivalent — same architectural state, cycle counts, and events for every
// instruction — so campaign outcomes and journals are byte-identical across
// them.

// Engines lists the engines the P4 platform supports.
func (descriptor) Engines() []platform.EngineKind {
	return []platform.EngineKind{platform.EngineInterp, platform.EnginePredecode, platform.EngineTranslate}
}

// NewEngine builds an execution engine bound to a CISC core.
func (descriptor) NewEngine(kind platform.EngineKind, c platform.Core) (platform.ExecEngine, error) {
	cpu := CPUOf(c)
	if cpu == nil {
		return nil, fmt.Errorf("cisc: engine %v requires a CISC core, got %T", kind, c)
	}
	switch kind {
	case platform.EngineInterp, platform.EnginePredecode:
		return newStepEngine(kind, cpu), nil
	case platform.EngineTranslate:
		return newTranslator(cpu), nil
	default:
		return nil, fmt.Errorf("cisc: unsupported engine %v", kind)
	}
}

// stepEngine is the per-instruction interpreter: EngineInterp is the
// reference fetch+decode-every-step sequence, EnginePredecode adds the
// per-page decoded-instruction cache (icache.go).
type stepEngine struct {
	kind platform.EngineKind
	cpu  *CPU
}

func newStepEngine(kind platform.EngineKind, cpu *CPU) *stepEngine {
	cpu.SetPredecode(kind == platform.EnginePredecode)
	return &stepEngine{kind: kind, cpu: cpu}
}

func (e *stepEngine) Kind() platform.EngineKind { return e.kind }

func (e *stepEngine) RunUntil(limit uint64) isa.Event { return e.cpu.RunUntil(limit) }

func (e *stepEngine) Flush() { e.cpu.FlushPredecode() }

func (e *stepEngine) Stats() platform.EngineStats { return platform.EngineStats{} }

func (e *stepEngine) ResetStats() {}
