package cisc

import (
	"fmt"

	"kfi/internal/isa"
	"kfi/internal/mem"
	"kfi/internal/platform"
)

// This file is the P4-class platform's single registration point: the
// Descriptor (crash semantics, latency stages, instruction boundaries, the
// snapshot CPU codec) and the machine-facing Core adapter. Everything the
// rest of the laboratory needs to know about the CISC target resolves
// through the platform registry from here.

// Latency-model stages (the paper's Figure 3) for the P4 exception path.
const (
	stageHardware = 1100
	stageSoftware = 320
)

type descriptor struct{}

func (descriptor) ID() isa.Platform  { return isa.CISC }
func (descriptor) Aliases() []string { return []string{"cisc"} }

func (descriptor) NewCore(m *mem.Memory) platform.Core {
	return &coreAdapter{cpu: NewCPU(m), mem: m}
}

func (descriptor) NewCPUState() platform.CPUState { return &State{} }

// BusWindow: the P4 has no unclaimed processor-local bus window — every wild
// kernel pointer page-faults (paper §5.2).
func (descriptor) BusWindow() (uint32, uint32, bool) { return 0, 0, false }

// KernelStackSize is the P4 kernel's 4 KiB per-process kernel stack.
func (descriptor) KernelStackSize() uint32 { return 0x1000 }

func (descriptor) CrashStages() (uint64, uint64) { return stageHardware, stageSoftware }

func (descriptor) RegisterLabels() (string, string) { return "EIP", "ESP" }

// CrashMessage renders the crash the way the P4 kernel would print it — the
// strings the paper quotes from its crash dumps.
func (descriptor) CrashMessage(cause isa.CrashCause, pc, faultAddr, sp uint32) string {
	switch cause {
	case isa.CauseNULLPointer:
		return fmt.Sprintf("Unable to handle kernel NULL pointer dereference at virtual address %08x", faultAddr)
	case isa.CauseBadPaging:
		return fmt.Sprintf("Unable to handle kernel paging request at virtual address %08x", faultAddr)
	case isa.CauseInvalidInstr:
		return fmt.Sprintf("invalid opcode: 0000 [#1] at EIP %08x", pc)
	case isa.CauseGeneralProtection:
		return fmt.Sprintf("general protection fault: 0000 [#1] at EIP %08x", pc)
	case isa.CauseKernelPanic:
		return "Kernel panic: fatal exception"
	case isa.CauseInvalidTSS:
		return fmt.Sprintf("invalid TSS: 0000 [#1] at EIP %08x", pc)
	case isa.CauseDivideError:
		return fmt.Sprintf("divide error: 0000 [#1] at EIP %08x", pc)
	case isa.CauseBoundsTrap:
		return fmt.Sprintf("bounds: 0000 [#1] at EIP %08x", pc)
	default:
		return fmt.Sprintf("unknown exception at EIP %08x", pc)
	}
}

// InstructionBoundaries walks the variable-length encoding; an undecodable
// byte ends the walk (data embedded in a code region).
func (descriptor) InstructionBoundaries(code []byte, base uint32) []platform.InstrRef {
	var out []platform.InstrRef
	for off := 0; off < len(code); {
		in, err := Decode(code[off:])
		if err != nil {
			break
		}
		out = append(out, platform.InstrRef{Addr: base + uint32(off), Size: in.Len})
		off += int(in.Len)
	}
	return out
}

func init() { platform.Register(descriptor{}) }

// CPUOf returns the concrete CISC CPU behind a platform core (nil when the
// core is not a CISC core) — the escape hatch for tools that inspect
// architectural state directly (kfi-tracediff, lockstep tests).
func CPUOf(c platform.Core) *CPU {
	if a, ok := c.(*coreAdapter); ok {
		return a.cpu
	}
	return nil
}

// coreAdapter adapts cisc.CPU to platform.Core.
type coreAdapter struct {
	cpu *CPU
	mem *mem.Memory
}

var _ platform.Core = (*coreAdapter)(nil)

func (c *coreAdapter) Step() isa.Event { return c.cpu.Step() }
func (c *coreAdapter) Reset()          { c.cpu.Reset() }
func (c *coreAdapter) PC() uint32      { return c.cpu.EIP }
func (c *coreAdapter) SetPC(v uint32)  { c.cpu.EIP = v }
func (c *coreAdapter) SP() uint32      { return c.cpu.Regs[ESP] }
func (c *coreAdapter) SetSP(v uint32)  { c.cpu.Regs[ESP] = v }
func (c *coreAdapter) Mode() isa.Mode  { return c.cpu.Mode }

func (c *coreAdapter) InterruptsEnabled() bool { return c.cpu.Flags&FlagIF != 0 }

// InstallBootState sets the FS per-CPU segment base.
func (c *coreAdapter) InstallBootState(bs platform.BootState) {
	c.cpu.FSBase = bs.FSBase
}

// VetDelivery: the P4 trap path has no architectural preconditions; delivery
// always proceeds (its faults surface from DeliverInterrupt itself).
func (c *coreAdapter) VetDelivery() platform.Delivery { return platform.Delivery{} }

func (c *coreAdapter) DeliverInterrupt(handler, ksp uint32) isa.Event {
	return c.cpu.DeliverInterrupt(handler, ksp)
}

func (c *coreAdapter) SetSyscallResult(v uint32) { c.cpu.Regs[EAX] = v }

func (c *coreAdapter) SyscallArgs() (uint32, uint32, uint32) {
	return c.cpu.Regs[EBX], c.cpu.Regs[ECX], c.cpu.Regs[EDX]
}

// SystemRegisters binds the P4 system-register file to this core.
func (c *coreAdapter) SystemRegisters() []platform.SysReg {
	var out []platform.SysReg
	for _, r := range SystemRegisters() {
		r := r
		out = append(out, platform.SysReg{Name: r.Name, Bits: r.Bits,
			Get: func() uint32 { return r.Get(c.cpu) },
			Set: func(v uint32) { r.Set(c.cpu, v) }})
	}
	return out
}

// CISC context: 8 GPRs, EIP, EFLAGS, mode.
func (c *coreAdapter) CtxWords() int { return 11 }

func (c *coreAdapter) SaveContext(addr uint32) {
	for i := 0; i < 8; i++ {
		c.mem.RawWrite(addr+uint32(i)*4, 4, c.cpu.Regs[i])
	}
	c.mem.RawWrite(addr+32, 4, c.cpu.EIP)
	c.mem.RawWrite(addr+36, 4, c.cpu.Flags)
	c.mem.RawWrite(addr+40, 4, uint32(c.cpu.Mode))
}

func (c *coreAdapter) RestoreContext(addr uint32) {
	for i := 0; i < 8; i++ {
		c.cpu.Regs[i] = c.mem.RawRead(addr+uint32(i)*4, 4)
	}
	c.cpu.EIP = c.mem.RawRead(addr+32, 4)
	c.cpu.Flags = c.mem.RawRead(addr+36, 4)
	if isa.Mode(c.mem.RawRead(addr+40, 4)) == isa.UserMode {
		c.cpu.Mode = isa.UserMode
	} else {
		c.cpu.Mode = isa.KernelMode
	}
}

func (c *coreAdapter) InitContext(addr, entry, sp uint32, user bool) {
	for i := 0; i < 8; i++ {
		c.mem.RawWrite(addr+uint32(i)*4, 4, 0)
	}
	c.mem.RawWrite(addr+uint32(ESP)*4, 4, sp)
	c.mem.RawWrite(addr+32, 4, entry)
	c.mem.RawWrite(addr+36, 4, uint32(FlagIF))
	mode := isa.KernelMode
	if user {
		mode = isa.UserMode
	}
	c.mem.RawWrite(addr+40, 4, uint32(mode))
}

// CtxSPOffset: ESP is general register 4.
func (c *coreAdapter) CtxSPOffset() uint32 { return uint32(ESP) * 4 }

// CtxModeUser reads the saved mode word.
func (c *coreAdapter) CtxModeUser(addr uint32) bool {
	return isa.Mode(c.mem.RawRead(addr+40, 4)) == isa.UserMode
}

// SetStackBounds is a no-op: the P4 kernel performs no stack-range checking.
func (c *coreAdapter) SetStackBounds(lo, hi uint32) {}

// StackPointerInBounds always reports true on CISC: there is no wrapper, so
// stack overflows propagate into other exception categories (paper §5.1).
func (c *coreAdapter) StackPointerInBounds() bool { return true }

// CrashDumpPossible: the P4 crash handler dumps via the current stack; a
// corrupted, unmapped ESP defeats it.
func (c *coreAdapter) CrashDumpPossible() bool {
	sp := c.cpu.Regs[ESP]
	return c.mem.Check(sp-64, 64, true, false) == nil
}

// BeginCall pushes the arguments right-to-left plus the sentinel return
// address (the cdecl host-call convention).
func (c *coreAdapter) BeginCall(entry uint32, args []uint32) {
	cpu := c.cpu
	for i := len(args) - 1; i >= 0; i-- {
		cpu.Regs[ESP] -= 4
		c.mem.RawWrite(cpu.Regs[ESP], 4, args[i])
	}
	cpu.Regs[ESP] -= 4
	c.mem.RawWrite(cpu.Regs[ESP], 4, platform.CallSentinel)
	cpu.EIP = entry
}

func (c *coreAdapter) CallDone(nargs int) (uint32, bool) {
	if c.cpu.EIP != platform.CallSentinel {
		return 0, false
	}
	c.cpu.Regs[ESP] += uint32(4 * nargs)
	return c.cpu.Regs[EAX], true
}

func (c *coreAdapter) SaveCPUState() platform.CPUState {
	s := c.cpu.SaveState()
	return &s
}

func (c *coreAdapter) RestoreCPUState(st platform.CPUState) error {
	s, ok := st.(*State)
	if !ok {
		return fmt.Errorf("cisc: restoring %T onto a CISC core", st)
	}
	c.cpu.RestoreState(s)
	return nil
}

// DisasmAt renders the instruction at pc (best effort; raw bytes on failure).
func (c *coreAdapter) DisasmAt(pc uint32) string {
	bs := c.mem.RawBytes(pc, 9)
	if bs == nil {
		return "<unmapped>"
	}
	in, err := Decode(bs)
	if err != nil {
		return fmt.Sprintf(".byte 0x%02x", bs[0])
	}
	return in.String()
}

func (c *coreAdapter) Clock() *isa.CycleCounter { return &c.cpu.Clk }
func (c *coreAdapter) Debug() *isa.DebugUnit    { return &c.cpu.Debug }

func (c *coreAdapter) SetTrace(fn func(pc uint32, cost uint8)) { c.cpu.Trace = fn }

func (c *coreAdapter) PendingDataBreak() (int, isa.DataAccess, uint32, bool) {
	return c.cpu.PendingDataBreak()
}

// EncodeSnapshot serializes the CPU block in the snapshot wire format. The
// field order is frozen: it is the on-disk format PR 1 shipped.
func (s *State) EncodeSnapshot(w *platform.SnapWriter) {
	for _, r := range s.Regs {
		w.U32(r)
	}
	w.U32(s.EIP)
	w.U32(s.Flags)
	w.U32(s.CR0)
	w.U32(s.CR2)
	w.U32(s.CR3)
	w.U32(s.FS)
	w.U32(s.GS)
	w.U32(s.TR)
	w.U32(s.GDTR)
	w.U32(s.IDTR)
	w.U32(s.LDTR)
	for _, r := range s.DR {
		w.U32(r)
	}
	w.U32(s.DR6)
	w.U32(s.DR7)
	w.U32(s.SysenterEIP)
	w.U32(s.SysenterESP)
	w.U32(uint32(s.Mode))
	w.U32(s.FSBase)
	w.CPUTail(s.Debug, s.Clock, s.PendingSlot, s.PendingAccess, s.PendingAddr)
}

// DecodeSnapshot fills the state from the snapshot wire format.
func (s *State) DecodeSnapshot(r *platform.SnapReader) {
	for i := range s.Regs {
		s.Regs[i] = r.U32()
	}
	s.EIP = r.U32()
	s.Flags = r.U32()
	s.CR0 = r.U32()
	s.CR2 = r.U32()
	s.CR3 = r.U32()
	s.FS = r.U32()
	s.GS = r.U32()
	s.TR = r.U32()
	s.GDTR = r.U32()
	s.IDTR = r.U32()
	s.LDTR = r.U32()
	for i := range s.DR {
		s.DR[i] = r.U32()
	}
	s.DR6 = r.U32()
	s.DR7 = r.U32()
	s.SysenterEIP = r.U32()
	s.SysenterESP = r.U32()
	s.Mode = isa.Mode(r.U32())
	s.FSBase = r.U32()
	r.CPUTail(&s.Debug, &s.Clock, &s.PendingSlot, &s.PendingAccess, &s.PendingAddr)
}
