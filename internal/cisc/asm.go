package cisc

import (
	"encoding/binary"
	"fmt"
)

// Asm builds CISC machine code with labels and relocations. It is used by the
// compiler backend, the kernel glue, and tests. Emitters panic on impossible
// operands (register out of range, displacement overflow): those are build
// bugs, not runtime conditions.
type Asm struct {
	code   []byte
	labels map[string]uint32
	fixups []fixup
}

type fixup struct {
	off    uint32 // where the field lives in code
	end    uint32 // offset of the end of the instruction (PC-relative origin)
	size   uint8  // 1 or 4 bytes
	target string
	rel    bool
	addend int32
}

// NewAsm returns an empty assembler.
func NewAsm() *Asm {
	return &Asm{labels: make(map[string]uint32)}
}

// Len returns the current code size in bytes.
func (a *Asm) Len() uint32 { return uint32(len(a.code)) }

// Label defines a label at the current position. Labels are also the
// assembler's symbols: Link exports them.
func (a *Asm) Label(name string) {
	if _, ok := a.labels[name]; ok {
		panic(fmt.Sprintf("cisc: label %q defined twice", name))
	}
	a.labels[name] = a.Len()
}

// LabelAddr returns the offset of a previously defined label.
func (a *Asm) LabelAddr(name string) (uint32, bool) {
	v, ok := a.labels[name]
	return v, ok
}

// Labels returns all defined labels and their offsets.
func (a *Asm) Labels() map[string]uint32 {
	out := make(map[string]uint32, len(a.labels))
	for k, v := range a.labels {
		out[k] = v
	}
	return out
}

// Link resolves all fixups given the load base address and external symbol
// addresses, and returns the final machine code. Local labels take precedence
// over externals.
func (a *Asm) Link(base uint32, syms map[string]uint32) ([]byte, error) {
	code := make([]byte, len(a.code))
	copy(code, a.code)
	for _, f := range a.fixups {
		var target uint32
		if off, ok := a.labels[f.target]; ok {
			target = base + off
		} else if addr, ok := syms[f.target]; ok {
			target = addr
		} else {
			return nil, fmt.Errorf("cisc: undefined symbol %q", f.target)
		}
		target += uint32(f.addend)
		if f.rel {
			rel := int64(target) - int64(base+f.end)
			switch f.size {
			case 1:
				if rel < -128 || rel > 127 {
					return nil, fmt.Errorf("cisc: rel8 to %q out of range (%d)", f.target, rel)
				}
				code[f.off] = byte(int8(rel))
			case 4:
				binary.LittleEndian.PutUint32(code[f.off:], uint32(int32(rel)))
			}
			continue
		}
		binary.LittleEndian.PutUint32(code[f.off:], target)
	}
	return code, nil
}

func (a *Asm) byteAt(bs ...byte) { a.code = append(a.code, bs...) }

func (a *Asm) imm32(v int32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(v))
	a.code = append(a.code, b[:]...)
}

func checkReg(r uint8) {
	if r >= numRegs {
		panic(fmt.Sprintf("cisc: bad register %d", r))
	}
}

func checkDisp8(d int32) {
	if d < -128 || d > 127 {
		panic(fmt.Sprintf("cisc: disp8 out of range: %d", d))
	}
}

func nib(hi, lo uint8) byte {
	checkReg(hi)
	checkReg(lo)
	return hi<<4 | lo
}

// --- register-register ALU ---

func (a *Asm) rr(op byte, d, s uint8) { a.byteAt(op, nib(d, s)) }

// AddRR emits add %s,%d.
func (a *Asm) AddRR(d, s uint8) { a.rr(0x00, d, s) }

// SubRR emits sub %s,%d.
func (a *Asm) SubRR(d, s uint8) { a.rr(0x01, d, s) }

// AndRR emits and %s,%d.
func (a *Asm) AndRR(d, s uint8) { a.rr(0x02, d, s) }

// OrRR emits or %s,%d.
func (a *Asm) OrRR(d, s uint8) { a.rr(0x03, d, s) }

// XorRR emits xor %s,%d.
func (a *Asm) XorRR(d, s uint8) { a.rr(0x04, d, s) }

// CmpRR emits cmp %s,%d.
func (a *Asm) CmpRR(d, s uint8) { a.rr(0x05, d, s) }

// TestRR emits test %s,%d.
func (a *Asm) TestRR(d, s uint8) { a.rr(0x06, d, s) }

// MovRR emits mov %s,%d.
func (a *Asm) MovRR(d, s uint8) { a.rr(0x07, d, s) }

// ImulRR emits imul %s,%d.
func (a *Asm) ImulRR(d, s uint8) { a.rr(0x08, d, s) }

// IdivRR emits idiv %s,%d (d = d / s, signed).
func (a *Asm) IdivRR(d, s uint8) { a.rr(0x09, d, s) }

// ModRR emits mod %s,%d (d = d % s, signed).
func (a *Asm) ModRR(d, s uint8) { a.rr(0x0A, d, s) }

// XchgRR emits xchg %s,%d.
func (a *Asm) XchgRR(d, s uint8) { a.rr(0x0B, d, s) }

// ShlRR emits shl %s,%d.
func (a *Asm) ShlRR(d, s uint8) { a.rr(0x0C, d, s) }

// ShrRR emits shr %s,%d.
func (a *Asm) ShrRR(d, s uint8) { a.rr(0x0D, d, s) }

// SarRR emits sar %s,%d.
func (a *Asm) SarRR(d, s uint8) { a.rr(0x0E, d, s) }

// Ud2 emits the deliberate invalid-opcode trap used by BUG().
func (a *Asm) Ud2() { a.byteAt(0x0F) }

// --- immediate ALU; 8-bit form chosen automatically when it fits ---

func (a *Asm) ri(op32, op8 byte, r uint8, imm int32) {
	checkReg(r)
	if imm >= -128 && imm <= 127 && op8 != 0 {
		a.byteAt(op8, r, byte(int8(imm)))
		return
	}
	a.byteAt(op32, r)
	a.imm32(imm)
}

// MovRI emits mov $imm,%r.
func (a *Asm) MovRI(r uint8, imm int32) { a.ri(0x10, 0x20, r, imm) }

// AddRI emits add $imm,%r.
func (a *Asm) AddRI(r uint8, imm int32) { a.ri(0x11, 0x21, r, imm) }

// SubRI emits sub $imm,%r.
func (a *Asm) SubRI(r uint8, imm int32) { a.ri(0x12, 0x22, r, imm) }

// AndRI emits and $imm,%r.
func (a *Asm) AndRI(r uint8, imm int32) { a.ri(0x13, 0x23, r, imm) }

// OrRI emits or $imm,%r.
func (a *Asm) OrRI(r uint8, imm int32) { a.ri(0x14, 0x24, r, imm) }

// XorRI emits xor $imm,%r.
func (a *Asm) XorRI(r uint8, imm int32) { a.ri(0x15, 0x25, r, imm) }

// CmpRI emits cmp $imm,%r.
func (a *Asm) CmpRI(r uint8, imm int32) { a.ri(0x16, 0x26, r, imm) }

// ImulRI emits imul $imm,%r.
func (a *Asm) ImulRI(r uint8, imm int32) { a.ri(0x17, 0x27, r, imm) }

// TestRI emits test $imm8,%r.
func (a *Asm) TestRI(r uint8, imm int8) {
	checkReg(r)
	a.byteAt(0x2B, r, byte(imm))
}

// ShlRI, ShrRI, SarRI emit shifts by an immediate count.
func (a *Asm) ShlRI(r uint8, n int8) { checkReg(r); a.byteAt(0x28, r, byte(n)) }

// ShrRI emits shr $n,%r.
func (a *Asm) ShrRI(r uint8, n int8) { checkReg(r); a.byteAt(0x29, r, byte(n)) }

// SarRI emits sar $n,%r.
func (a *Asm) SarRI(r uint8, n int8) { checkReg(r); a.byteAt(0x2A, r, byte(n)) }

// MovRISym emits mov $sym+addend,%r with an absolute relocation.
func (a *Asm) MovRISym(r uint8, sym string, addend int32) {
	checkReg(r)
	a.byteAt(0x10, r)
	a.fixups = append(a.fixups, fixup{off: a.Len(), end: a.Len() + 4, size: 4, target: sym, addend: addend})
	a.imm32(0)
}

// --- memory ---

func (a *Asm) mem8(op byte, r, base uint8, disp int32) {
	checkDisp8(disp)
	a.byteAt(op, nib(r, base), byte(int8(disp)))
}

func (a *Asm) mem32(op byte, r, base uint8, disp int32) {
	a.byteAt(op, nib(r, base))
	a.imm32(disp)
}

// Ld32 emits mov disp(%base),%d using the shortest displacement form.
func (a *Asm) Ld32(d, base uint8, disp int32) {
	if disp >= -128 && disp <= 127 {
		a.mem8(0x30, d, base, disp)
		return
	}
	a.mem32(0x60, d, base, disp)
}

// Ld16zx emits movzw disp(%base),%d.
func (a *Asm) Ld16zx(d, base uint8, disp int32) { a.mem8(0x31, d, base, disp) }

// Ld16sx emits movsw disp(%base),%d.
func (a *Asm) Ld16sx(d, base uint8, disp int32) { a.mem8(0x32, d, base, disp) }

// Ld8zx emits movzb disp(%base),%d.
func (a *Asm) Ld8zx(d, base uint8, disp int32) {
	if disp >= -128 && disp <= 127 {
		a.mem8(0x33, d, base, disp)
		return
	}
	a.mem32(0x62, d, base, disp)
}

// Ld8sx emits movsb disp(%base),%d.
func (a *Asm) Ld8sx(d, base uint8, disp int32) { a.mem8(0x34, d, base, disp) }

// Lea emits lea disp(%base),%d.
func (a *Asm) Lea(d, base uint8, disp int32) { a.mem8(0x35, d, base, disp) }

// Ld32Idx emits mov disp(%base,%idx,1<<scale),%d.
func (a *Asm) Ld32Idx(d, base, idx, scale uint8, disp int32) {
	checkDisp8(disp)
	checkReg(idx)
	if scale > 3 {
		panic("cisc: bad scale")
	}
	a.byteAt(0x36, nib(d, base), idx<<4|scale, byte(int8(disp)))
}

// LeaIdx emits lea disp(%base,%idx,1<<scale),%d.
func (a *Asm) LeaIdx(d, base, idx, scale uint8, disp int32) {
	checkDisp8(disp)
	checkReg(idx)
	if scale > 3 {
		panic("cisc: bad scale")
	}
	a.byteAt(0x37, nib(d, base), idx<<4|scale, byte(int8(disp)))
}

// St32 emits mov %s,disp(%base).
func (a *Asm) St32(base uint8, disp int32, s uint8) {
	if disp >= -128 && disp <= 127 {
		a.mem8(0x38, s, base, disp)
		return
	}
	a.mem32(0x61, s, base, disp)
}

// St16 emits movw %s,disp(%base).
func (a *Asm) St16(base uint8, disp int32, s uint8) { a.mem8(0x39, s, base, disp) }

// St8 emits movb %s,disp(%base).
func (a *Asm) St8(base uint8, disp int32, s uint8) {
	if disp >= -128 && disp <= 127 {
		a.mem8(0x3A, s, base, disp)
		return
	}
	a.mem32(0x63, s, base, disp)
}

// St32Idx emits mov %s,disp(%base,%idx,1<<scale).
func (a *Asm) St32Idx(base, idx, scale uint8, disp int32, s uint8) {
	checkDisp8(disp)
	checkReg(idx)
	if scale > 3 {
		panic("cisc: bad scale")
	}
	a.byteAt(0x3B, nib(s, base), idx<<4|scale, byte(int8(disp)))
}

// MovMI8 emits movl $imm8,disp(%base) — a 32-bit store of a sign-extended
// 8-bit immediate.
func (a *Asm) MovMI8(base uint8, disp int32, imm int8) {
	checkDisp8(disp)
	a.byteAt(0x3C, nib(0, base), byte(int8(disp)), byte(imm))
}

// CmpM emits cmp disp(%base),%r.
func (a *Asm) CmpM(r, base uint8, disp int32) { a.mem8(0x3D, r, base, disp) }

// AddM emits add disp(%base),%r.
func (a *Asm) AddM(r, base uint8, disp int32) { a.mem8(0x3E, r, base, disp) }

// AddMS emits add %r,disp(%base) (read-modify-write).
func (a *Asm) AddMS(base uint8, disp int32, r uint8) { a.mem8(0xC0, r, base, disp) }

// SubMS emits sub %r,disp(%base).
func (a *Asm) SubMS(base uint8, disp int32, r uint8) { a.mem8(0xC1, r, base, disp) }

// AndMS emits and %r,disp(%base).
func (a *Asm) AndMS(base uint8, disp int32, r uint8) { a.mem8(0xC2, r, base, disp) }

// OrMS emits or %r,disp(%base).
func (a *Asm) OrMS(base uint8, disp int32, r uint8) { a.mem8(0xC4, r, base, disp) }

// XorMS emits xor %r,disp(%base).
func (a *Asm) XorMS(base uint8, disp int32, r uint8) { a.mem8(0xC5, r, base, disp) }

// IncM emits incl disp(%base).
func (a *Asm) IncM(base uint8, disp int32) { a.mem8(0xC6, 0, base, disp) }

// DecM emits decl disp(%base).
func (a *Asm) DecM(base uint8, disp int32) { a.mem8(0xC7, 0, base, disp) }

// LdAbs emits mov sym+addend,%r (absolute 32-bit load).
func (a *Asm) LdAbs(r uint8, sym string, addend int32) {
	checkReg(r)
	a.byteAt(0x65, r)
	a.fixups = append(a.fixups, fixup{off: a.Len(), end: a.Len() + 4, size: 4, target: sym, addend: addend})
	a.imm32(0)
}

// StAbs emits mov %r,sym+addend (absolute 32-bit store).
func (a *Asm) StAbs(sym string, addend int32, r uint8) {
	checkReg(r)
	a.byteAt(0x66, r)
	a.fixups = append(a.fixups, fixup{off: a.Len(), end: a.Len() + 4, size: 4, target: sym, addend: addend})
	a.imm32(0)
}

// CmpLAbs emits cmpl $imm,sym+addend — the spinlock-magic check shape.
func (a *Asm) CmpLAbs(sym string, addend int32, imm int32) {
	a.byteAt(0x64)
	a.fixups = append(a.fixups, fixup{off: a.Len(), end: a.Len() + 8, size: 4, target: sym, addend: addend})
	a.imm32(0)
	a.imm32(imm)
}

// --- unary, widening ---

// IncR emits inc %r (single byte).
func (a *Asm) IncR(r uint8) { checkReg(r); a.byteAt(0x40 + r) }

// DecR emits dec %r (single byte).
func (a *Asm) DecR(r uint8) { checkReg(r); a.byteAt(0x48 + r) }

// NegR emits neg %r.
func (a *Asm) NegR(r uint8) { checkReg(r); a.byteAt(0xB8, r) }

// NotR emits not %r.
func (a *Asm) NotR(r uint8) { checkReg(r); a.byteAt(0xB9, r) }

// Movzx8 emits movzx8 %s,%d (d = zero-extended low byte of s).
func (a *Asm) Movzx8(d, s uint8) { a.rr(0xBB, d, s) }

// Movsx8 emits movsx8 %s,%d.
func (a *Asm) Movsx8(d, s uint8) { a.rr(0xBC, d, s) }

// Movzx16 emits movzx16 %s,%d.
func (a *Asm) Movzx16(d, s uint8) { a.rr(0xBD, d, s) }

// Movsx16 emits movsx16 %s,%d.
func (a *Asm) Movsx16(d, s uint8) { a.rr(0xBE, d, s) }

// SetCC emits set<cc> %r (r = 0/1 from flags).
func (a *Asm) SetCC(r uint8, cc uint8) { checkReg(r); a.byteAt(0xB7, r, cc) }

// --- stack ---

// PushR emits push %r.
func (a *Asm) PushR(r uint8) { checkReg(r); a.byteAt(0x50 + r) }

// PopR emits pop %r.
func (a *Asm) PopR(r uint8) { checkReg(r); a.byteAt(0x58 + r) }

// PushI emits push $imm.
func (a *Asm) PushI(imm int32) {
	if imm >= -128 && imm <= 127 {
		a.byteAt(0xB6, byte(int8(imm)))
		return
	}
	a.byteAt(0xB5)
	a.imm32(imm)
}

// Leave emits leave (mov %ebp,%esp; pop %ebp).
func (a *Asm) Leave() { a.byteAt(0xC9) }

// --- control flow ---

// CallSym emits call sym (PC-relative).
func (a *Asm) CallSym(sym string) {
	a.byteAt(0xB0)
	a.fixups = append(a.fixups, fixup{off: a.Len(), end: a.Len() + 4, size: 4, target: sym, rel: true})
	a.imm32(0)
}

// CallR emits call *%r.
func (a *Asm) CallR(r uint8) { checkReg(r); a.byteAt(0xB1, r) }

// Ret emits ret.
func (a *Asm) Ret() { a.byteAt(0xC3) }

// JmpSym emits jmp sym (rel32 form; the assembler does not relax).
func (a *Asm) JmpSym(sym string) {
	a.byteAt(0xB2)
	a.fixups = append(a.fixups, fixup{off: a.Len(), end: a.Len() + 4, size: 4, target: sym, rel: true})
	a.imm32(0)
}

// JmpR emits jmp *%r.
func (a *Asm) JmpR(r uint8) { checkReg(r); a.byteAt(0xB4, r) }

// Jcc emits j<cc> sym (rel32 form).
func (a *Asm) Jcc(cc uint8, sym string) {
	a.byteAt(0x80 + cc)
	a.fixups = append(a.fixups, fixup{off: a.Len(), end: a.Len() + 4, size: 4, target: sym, rel: true})
	a.imm32(0)
}

// Bound emits bound %r,disp(%base): #BR unless mem[0] <= r <= mem[4].
func (a *Asm) Bound(r, base uint8, disp int32) { a.mem8(0xAC, r, base, disp) }

// --- system ---

// Nop emits nop.
func (a *Asm) Nop() { a.byteAt(0x90) }

// XchgA emits xchg %eax,%r (r 1..7).
func (a *Asm) XchgA(r uint8) {
	if r < 1 || r >= numRegs {
		panic("cisc: xchga needs r1..r7")
	}
	a.byteAt(0x90 + r)
}

// Pushf emits pushf.
func (a *Asm) Pushf() { a.byteAt(0x98) }

// Popf emits popf.
func (a *Asm) Popf() { a.byteAt(0x99) }

// Cli emits cli.
func (a *Asm) Cli() { a.byteAt(0x9A) }

// Sti emits sti.
func (a *Asm) Sti() { a.byteAt(0x9B) }

// Hlt emits hlt.
func (a *Asm) Hlt() { a.byteAt(0x9C) }

// Iret emits iret.
func (a *Asm) Iret() { a.byteAt(0x9D) }

// CtxSw emits ctxsw %prev,%next — the context-switch primitive used by the
// guest scheduler.
func (a *Asm) CtxSw(prev, next uint8) { a.rr(0x9E, prev, next) }

// Int emits int $n.
func (a *Asm) Int(n uint8) { a.byteAt(0xAA, n) }

// MovCR emits movcr %r,%cr (cr = r).
func (a *Asm) MovCR(cr, r uint8) { a.rr(0xA0, cr, r) }

// MovRC emits movrc %cr,%r (r = cr).
func (a *Asm) MovRC(r, cr uint8) { a.rr(0xA1, r, cr) }

// MovDR emits movdr %r,%dr.
func (a *Asm) MovDR(dr, r uint8) { a.rr(0xA2, dr, r) }

// MovRD emits movrd %dr,%r.
func (a *Asm) MovRD(r, dr uint8) { a.rr(0xA3, r, dr) }

// MovSeg emits movseg %r,%seg (seg 0=fs, 1=gs).
func (a *Asm) MovSeg(seg, r uint8) { a.rr(0xA4, seg, r) }

// MovRSeg emits movrseg %seg,%r.
func (a *Asm) MovRSeg(r, seg uint8) { a.rr(0xA5, r, seg) }

// LoadFS emits movfs disp(%base),%r — an FS-segment-relative load.
func (a *Asm) LoadFS(r, base uint8, disp int32) { a.mem8(0xA6, r, base, disp) }

// Ltr emits ltr %r.
func (a *Asm) Ltr(r uint8) { checkReg(r); a.byteAt(0xA8, r) }

// Str emits str %r.
func (a *Asm) Str(r uint8) { checkReg(r); a.byteAt(0xA9, r) }
