// Package cisc implements the "P4-class" processor: a variable-length CISC
// instruction set architecture with eight general-purpose registers,
// 8/16/32-bit memory operands, x86-style condition flags and exception
// vectors, system registers (EFLAGS, CR0, debug registers, segment registers
// FS/GS, task register), and no architectural stack-overflow detection.
//
// The encoding is deliberately dense: most byte values decode to some valid
// instruction, so a single-bit error in the instruction stream usually turns
// one instruction into a different valid instruction of a different length,
// re-synchronizing the stream into a valid-but-wrong sequence — the mechanism
// behind the paper's Pentium 4 findings (Figures 7 and 14).
package cisc

import "fmt"

// Register numbers (x86 order).
const (
	EAX = iota
	ECX
	EDX
	EBX
	ESP
	EBP
	ESI
	EDI
	numRegs
)

var regNames = [numRegs]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}

// RegName returns the register mnemonic.
func RegName(r uint8) string {
	if int(r) < numRegs {
		return regNames[r]
	}
	return fmt.Sprintf("r%d", r)
}

// Format describes the byte layout of an instruction after its opcode byte.
type Format uint8

// Instruction formats. The comment shows the full byte layout; lengths
// range from 1 to 9 bytes.
const (
	FNone   Format = iota + 1 // [op]                          len 1
	FOpReg                    // [op|reg]                      len 1
	FRR                       // [op][d<<4|s]                  len 2
	FR                        // [op][r]                       len 2
	FRI8                      // [op][r][imm8]                 len 3
	FRI32                     // [op][r][imm32]                len 6
	FI8                       // [op][imm8]                    len 2
	FI32                      // [op][imm32]                   len 5
	FMem8                     // [op][r<<4|b][disp8]           len 3
	FMem32                    // [op][r<<4|b][disp32]          len 6
	FIdx                      // [op][r<<4|b][i<<4|sc][disp8]  len 4
	FMI8                      // [op][r?<<4|b][disp8][imm8]    len 4
	FRel8                     // [op][rel8]                    len 2
	FRel32                    // [op][rel32]                   len 5
	FAbsI32                   // [op][addr32][imm32]           len 9
	FAbsR                     // [op][r][addr32]               len 6
)

// Length returns the encoded instruction length for the format.
func (f Format) Length() uint8 {
	switch f {
	case FNone, FOpReg:
		return 1
	case FRR, FR, FI8, FRel8:
		return 2
	case FRI8, FMem8:
		return 3
	case FIdx, FMI8:
		return 4
	case FI32, FRel32:
		return 5
	case FRI32, FMem32, FAbsR:
		return 6
	case FAbsI32:
		return 9
	default:
		return 0
	}
}

// Op is the semantic operation of a decoded instruction. Immediate and
// register variants share an Op; the instruction's Format selects the operand
// source during execution.
type Op uint8

// Semantic operations.
const (
	OpInvalid Op = iota

	// Register/immediate ALU.
	OpMOV
	OpADD
	OpSUB
	OpAND
	OpOR
	OpXOR
	OpCMP
	OpTEST
	OpIMUL
	OpIDIV
	OpMOD
	OpXCHG
	OpSHL
	OpSHR
	OpSAR
	OpNEG
	OpNOT
	OpINC
	OpDEC
	OpMOVZX8
	OpMOVSX8
	OpMOVZX16
	OpMOVSX16
	OpSETCC

	// Memory.
	OpLD32
	OpLD16ZX
	OpLD16SX
	OpLD8ZX
	OpLD8SX
	OpST32
	OpST16
	OpST8
	OpLEA
	OpLD32IDX
	OpST32IDX
	OpLEAIDX
	OpMOVMI8 // 32-bit store of sign-extended imm8 to [b+d8]
	OpCMPM   // cmp r, [b+d8]
	OpADDM   // r += [b+d8]
	OpADDMS  // [b+d8] += r
	OpSUBMS
	OpANDMS
	OpORMS
	OpXORMS
	OpINCM
	OpDECM
	OpLDABS   // r = [abs32]
	OpSTABS   // [abs32] = r
	OpCMPLABS // cmp [abs32], imm32 (the spinlock-magic check shape, Fig. 13)

	// Stack.
	OpPUSH
	OpPOP
	OpPUSHI
	OpLEAVE

	// Control flow.
	OpCALL
	OpCALLR
	OpRET
	OpJMP
	OpJMPR
	OpJCC
	OpBOUND

	// System.
	OpNOP
	OpXCHGA
	OpPUSHF
	OpPOPF
	OpCLI
	OpSTI
	OpHLT
	OpIRET
	OpCTXSW
	OpUD2
	OpINT
	OpMOVCR  // cr[d] = r[s]
	OpMOVRC  // r[d] = cr[s]
	OpMOVDR  // dr[d] = r[s]
	OpMOVRD  // r[d] = dr[s]
	OpMOVSEG // seg[d] = r[s]   (0=fs, 1=gs)
	OpMOVRSEG
	OpLOADFS // r = [fsbase + b + d8]
	OpLTR    // tr = r
	OpSTR    // r = tr

	numOps
)

// Condition codes (x86 order/semantics; parity conditions are not
// implemented, which leaves holes in the Jcc opcode rows).
const (
	CcO  = 0x0
	CcNO = 0x1
	CcB  = 0x2
	CcAE = 0x3
	CcE  = 0x4
	CcNE = 0x5
	CcBE = 0x6
	CcA  = 0x7
	CcS  = 0x8
	CcNS = 0x9
	CcL  = 0xC
	CcGE = 0xD
	CcLE = 0xE
	CcG  = 0xF
)

var ccNames = map[uint8]string{
	CcO: "o", CcNO: "no", CcB: "b", CcAE: "ae", CcE: "e", CcNE: "ne",
	CcBE: "be", CcA: "a", CcS: "s", CcNS: "ns", CcL: "l", CcGE: "ge",
	CcLE: "le", CcG: "g",
}

// CcName returns the condition-code suffix ("e", "ne", ...).
func CcName(cc uint8) string {
	if s, ok := ccNames[cc]; ok {
		return s
	}
	return fmt.Sprintf("cc%d", cc)
}

// entry is one opcode-table row.
type entry struct {
	op     Op
	format Format
	cc     uint8 // condition code for OpJCC rows
	cost   uint8 // cycle cost
	name   string
}

// opTable maps the first instruction byte to its decoding. Undefined bytes
// have op == OpInvalid and raise the Invalid Instruction exception.
var opTable = buildOpTable()

func buildOpTable() [256]entry {
	var t [256]entry
	def := func(b int, op Op, f Format, cost uint8, name string) {
		if t[b].op != OpInvalid {
			panic(fmt.Sprintf("cisc: opcode 0x%02x defined twice", b))
		}
		t[b] = entry{op: op, format: f, cost: cost, name: name}
	}
	defCC := func(b int, f Format, cc uint8, name string) {
		t[b] = entry{op: OpJCC, format: f, cc: cc, cost: 2, name: name}
	}

	// 0x00-0x0F: register-register ALU.
	def(0x00, OpADD, FRR, 1, "add")
	def(0x01, OpSUB, FRR, 1, "sub")
	def(0x02, OpAND, FRR, 1, "and")
	def(0x03, OpOR, FRR, 1, "or")
	def(0x04, OpXOR, FRR, 1, "xor")
	def(0x05, OpCMP, FRR, 1, "cmp")
	def(0x06, OpTEST, FRR, 1, "test")
	def(0x07, OpMOV, FRR, 1, "mov")
	def(0x08, OpIMUL, FRR, 4, "imul")
	def(0x09, OpIDIV, FRR, 20, "idiv")
	def(0x0A, OpMOD, FRR, 20, "mod")
	def(0x0B, OpXCHG, FRR, 2, "xchg")
	def(0x0C, OpSHL, FRR, 1, "shl")
	def(0x0D, OpSHR, FRR, 1, "shr")
	def(0x0E, OpSAR, FRR, 1, "sar")
	def(0x0F, OpUD2, FNone, 1, "ud2")

	// 0x10-0x17: register-imm32 ALU.
	def(0x10, OpMOV, FRI32, 1, "mov")
	def(0x11, OpADD, FRI32, 1, "add")
	def(0x12, OpSUB, FRI32, 1, "sub")
	def(0x13, OpAND, FRI32, 1, "and")
	def(0x14, OpOR, FRI32, 1, "or")
	def(0x15, OpXOR, FRI32, 1, "xor")
	def(0x16, OpCMP, FRI32, 1, "cmp")
	def(0x17, OpIMUL, FRI32, 4, "imul")
	// 0x18-0x1F undefined.

	// 0x20-0x2A: register-imm8 (sign-extended) ALU and shifts.
	def(0x20, OpMOV, FRI8, 1, "mov")
	def(0x21, OpADD, FRI8, 1, "add")
	def(0x22, OpSUB, FRI8, 1, "sub")
	def(0x23, OpAND, FRI8, 1, "and")
	def(0x24, OpOR, FRI8, 1, "or")
	def(0x25, OpXOR, FRI8, 1, "xor")
	def(0x26, OpCMP, FRI8, 1, "cmp")
	def(0x27, OpIMUL, FRI8, 4, "imul")
	def(0x28, OpSHL, FRI8, 1, "shl")
	def(0x29, OpSHR, FRI8, 1, "shr")
	def(0x2A, OpSAR, FRI8, 1, "sar")
	def(0x2B, OpTEST, FRI8, 1, "test")
	// 0x2C-0x2F undefined.

	// 0x30-0x3E: loads/stores with 8-bit displacement, LEA, indexed forms.
	def(0x30, OpLD32, FMem8, 2, "mov")
	def(0x31, OpLD16ZX, FMem8, 2, "movzw")
	def(0x32, OpLD16SX, FMem8, 2, "movsw")
	def(0x33, OpLD8ZX, FMem8, 2, "movzb")
	def(0x34, OpLD8SX, FMem8, 2, "movsb")
	def(0x35, OpLEA, FMem8, 1, "lea")
	def(0x36, OpLD32IDX, FIdx, 2, "mov")
	def(0x37, OpLEAIDX, FIdx, 1, "lea")
	def(0x38, OpST32, FMem8, 2, "mov")
	def(0x39, OpST16, FMem8, 2, "movw")
	def(0x3A, OpST8, FMem8, 2, "movb")
	def(0x3B, OpST32IDX, FIdx, 2, "mov")
	def(0x3C, OpMOVMI8, FMI8, 2, "movl")
	def(0x3D, OpCMPM, FMem8, 2, "cmp")
	def(0x3E, OpADDM, FMem8, 2, "add")
	// 0x3F undefined.

	// 0x40-0x4F: inc/dec r (single byte).
	for r := 0; r < 8; r++ {
		def(0x40+r, OpINC, FOpReg, 1, "inc")
		def(0x48+r, OpDEC, FOpReg, 1, "dec")
	}

	// 0x50-0x5F: push/pop r (single byte).
	for r := 0; r < 8; r++ {
		def(0x50+r, OpPUSH, FOpReg, 2, "push")
		def(0x58+r, OpPOP, FOpReg, 2, "pop")
	}

	// 0x60-0x66: 32-bit displacement and absolute memory forms.
	def(0x60, OpLD32, FMem32, 2, "mov")
	def(0x61, OpST32, FMem32, 2, "mov")
	def(0x62, OpLD8ZX, FMem32, 2, "movzb")
	def(0x63, OpST8, FMem32, 2, "movb")
	def(0x64, OpCMPLABS, FAbsI32, 3, "cmpl")
	def(0x65, OpLDABS, FAbsR, 2, "mov")
	def(0x66, OpSTABS, FAbsR, 2, "mov")
	// 0x67-0x6F undefined.

	// 0x70-0x7F: Jcc rel8 (0x7A/0x7B parity slots undefined).
	for cc := 0; cc < 16; cc++ {
		if cc == 0xA || cc == 0xB {
			continue
		}
		defCC(0x70+cc, FRel8, uint8(cc), "j"+CcName(uint8(cc)))
	}

	// 0x80-0x8F: Jcc rel32.
	for cc := 0; cc < 16; cc++ {
		if cc == 0xA || cc == 0xB {
			continue
		}
		defCC(0x80+cc, FRel32, uint8(cc), "j"+CcName(uint8(cc)))
	}

	// 0x90-0x9F: nop, xchg eax,r, flags and privileged control.
	def(0x90, OpNOP, FNone, 1, "nop")
	for r := 1; r < 8; r++ {
		def(0x90+r, OpXCHGA, FOpReg, 2, "xchg")
	}
	def(0x98, OpPUSHF, FNone, 2, "pushf")
	def(0x99, OpPOPF, FNone, 2, "popf")
	def(0x9A, OpCLI, FNone, 1, "cli")
	def(0x9B, OpSTI, FNone, 1, "sti")
	def(0x9C, OpHLT, FNone, 1, "hlt")
	def(0x9D, OpIRET, FNone, 6, "iret")
	def(0x9E, OpCTXSW, FRR, 8, "ctxsw")
	// 0x9F undefined.

	// 0xA0-0xAC: system registers, segments, software interrupts.
	def(0xA0, OpMOVCR, FRR, 4, "movcr")
	def(0xA1, OpMOVRC, FRR, 4, "movrc")
	def(0xA2, OpMOVDR, FRR, 4, "movdr")
	def(0xA3, OpMOVRD, FRR, 4, "movrd")
	def(0xA4, OpMOVSEG, FRR, 4, "movseg")
	def(0xA5, OpMOVRSEG, FRR, 4, "movrseg")
	def(0xA6, OpLOADFS, FMem8, 3, "movfs")
	def(0xA8, OpLTR, FR, 4, "ltr")
	def(0xA9, OpSTR, FR, 4, "str")
	def(0xAA, OpINT, FI8, 8, "int")
	def(0xAC, OpBOUND, FMem8, 3, "bound")
	// 0xA7, 0xAB, 0xAD-0xAF undefined.

	// 0xB0-0xBE: calls, jumps, unary register ops, widening moves.
	def(0xB0, OpCALL, FRel32, 3, "call")
	def(0xB1, OpCALLR, FR, 4, "call")
	def(0xB2, OpJMP, FRel32, 2, "jmp")
	def(0xB3, OpJMP, FRel8, 2, "jmp")
	def(0xB4, OpJMPR, FR, 3, "jmp")
	def(0xB5, OpPUSHI, FI32, 2, "push")
	def(0xB6, OpPUSHI, FI8, 2, "push")
	def(0xB7, OpSETCC, FRI8, 1, "set")
	def(0xB8, OpNEG, FR, 1, "neg")
	def(0xB9, OpNOT, FR, 1, "not")
	def(0xBB, OpMOVZX8, FRR, 1, "movzx8")
	def(0xBC, OpMOVSX8, FRR, 1, "movsx8")
	def(0xBD, OpMOVZX16, FRR, 1, "movzx16")
	def(0xBE, OpMOVSX16, FRR, 1, "movsx16")
	// 0xBA, 0xBF undefined.

	// 0xC0-0xC9: read-modify-write memory ALU, ret, leave.
	def(0xC0, OpADDMS, FMem8, 3, "add")
	def(0xC1, OpSUBMS, FMem8, 3, "sub")
	def(0xC2, OpANDMS, FMem8, 3, "and")
	def(0xC3, OpRET, FNone, 3, "ret")
	def(0xC4, OpORMS, FMem8, 3, "or")
	def(0xC5, OpXORMS, FMem8, 3, "xor")
	def(0xC6, OpINCM, FMem8, 3, "incl")
	def(0xC7, OpDECM, FMem8, 3, "decl")
	def(0xC8, OpPUSHI, FI8, 2, "push")
	def(0xC9, OpLEAVE, FNone, 2, "leave")
	def(0xCD, OpINT, FI8, 8, "int")
	def(0xCF, OpIRET, FNone, 6, "iret")
	// 0xCA-0xCC, 0xCE stay undefined (far-return/int3 territory).

	// The remaining rows mirror x86's densely populated one-byte map with
	// alternate encodings of the common operations, so that nearly every
	// flipped opcode byte still decodes to SOME valid instruction — the
	// resynchronization property of Figures 7 and 14.
	rrAlias := []struct {
		op   Op
		name string
		cost uint8
	}{
		{OpMOV, "mov", 1}, {OpADD, "add", 1}, {OpSUB, "sub", 1},
		{OpAND, "and", 1},
	}
	for i, e := range rrAlias {
		def(0xD0+i, e.op, FRR, e.cost, e.name)
	}
	// 0xD4-0xDF undefined (the x87 escape rows).
	riAlias := []struct {
		op   Op
		name string
	}{
		{OpMOV, "mov"}, {OpADD, "add"}, {OpSUB, "sub"}, {OpAND, "and"},
	}
	for i, e := range riAlias {
		def(0xE0+i, e.op, FRI8, 1, e.name)
	}
	def(0xEC, OpPUSHI, FI32, 2, "push")
	def(0xED, OpCALL, FRel32, 3, "call")
	def(0xEE, OpJMP, FRel8, 2, "jmp")
	def(0xEF, OpJMP, FRel32, 2, "jmp")
	// 0xE4-0xEB undefined (a two-byte escape group on the real chip).
	memAlias := []struct {
		op   Op
		name string
	}{
		{OpLD32, "mov"}, {OpST32, "mov"}, {OpLD8ZX, "movzb"}, {OpST8, "movb"},
		{OpCMPM, "cmp"}, {OpADDM, "add"}, {OpADDMS, "add"}, {OpSUBMS, "sub"},
	}
	for i, e := range memAlias {
		def(0xF0+i, e.op, FMem8, 2, e.name)
	}
	// 0xF8-0xFF undefined (the real map's group-5 / privileged tail).

	// Fill a few of the smaller holes with further aliases (0x18-0x1F stay
	// undefined, like the real map's segment-override escape cluster).
	def(0x2C, OpIDIV, FRI8, 20, "idiv")
	def(0x2D, OpMOD, FRI8, 20, "mod")
	def(0x2E, OpNEG, FR, 1, "neg")
	def(0x2F, OpNOT, FR, 1, "not")
	def(0x3F, OpLD32, FMem8, 2, "mov")
	def(0x67, OpLD16ZX, FMem32, 2, "movzw")
	def(0x68, OpST16, FMem32, 2, "movw")
	def(0x69, OpLD16SX, FMem32, 2, "movsw")
	def(0x6A, OpLD8SX, FMem32, 2, "movsb")
	// 0x6B-0x6F undefined.
	def(0x9F, OpSTR, FR, 4, "str")
	def(0xAD, OpPUSHF, FNone, 2, "pushf")
	def(0xAE, OpPOPF, FNone, 2, "popf")
	def(0xAF, OpBOUND, FMem8, 3, "bound")
	def(0xBA, OpSETCC, FRI8, 1, "set")
	def(0xBF, OpMOVSX16, FRR, 1, "movsx16")

	return t
}

// Lookup returns the opcode-table entry for an instruction byte.
func Lookup(b byte) (op Op, format Format, ok bool) {
	e := &opTable[b]
	return e.op, e.format, e.op != OpInvalid
}

// DefinedOpcodes returns how many of the 256 opcode bytes decode to a valid
// instruction — the "density" of the encoding, which governs how often a
// bit-flipped opcode still decodes (the P4 resynchronization phenomenon).
func DefinedOpcodes() int {
	n := 0
	for i := range opTable {
		if opTable[i].op != OpInvalid {
			n++
		}
	}
	return n
}
