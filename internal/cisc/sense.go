package cisc

// ExecEqual reports whether two decoded instructions are indistinguishable
// to the executor: Step dispatches on every Inst field except Opcode (which
// only selects the opTable row already folded into Op/Format/cost) and Name
// (diagnostics only). Two encodings with equal fields and equal cycle cost
// therefore produce bit-identical architectural state and timing.
//
// This is the CISC half of the staticsense "inert encoding" class: a bit
// flip that lands on a don't-care encoding bit (the spare mod-nibble bits,
// or an opcode alias) decodes to an ExecEqual instruction and can never
// manifest. Decode zeroes every field a format does not use, so whole-field
// comparison equals comparison of the execution-relevant projection.
func ExecEqual(a, b Inst) bool {
	return a.Op == b.Op && a.Format == b.Format && a.Len == b.Len &&
		a.R1 == b.R1 && a.R2 == b.R2 && a.Idx == b.Idx && a.Scale == b.Scale &&
		a.Cc == b.Cc && a.Imm == b.Imm && a.Disp == b.Disp && a.Abs == b.Abs &&
		a.Cost() == b.Cost()
}

// MaxInstLen is the longest encoding Decode accepts (FAbsI32: opcode,
// 4-byte address, 4-byte immediate). Static analyzers use it to bound the
// re-decode window around a corrupted byte.
const MaxInstLen = 9
