package cisc

// Round-trip tests: every assembler mnemonic the compiler backend relies on
// is executed on the CPU and its architectural effect asserted, mirroring
// the RISC-side suite.

import (
	"testing"

	"kfi/internal/isa"
)

// execSnippet runs the built code until its int 0x80 terminator.
func execSnippet(t *testing.T, build func(a *Asm)) *CPU {
	t.Helper()
	c := newTestCPU(t, func(a *Asm) {
		build(a)
		a.Int(0x80)
	})
	ev := run(t, c, 500)
	if ev.Kind != isa.EvSyscall {
		t.Fatalf("snippet ended with %+v, want syscall terminator", ev)
	}
	return c
}

func TestALURegisterForms(t *testing.T) {
	c := execSnippet(t, func(a *Asm) {
		a.MovRI(EAX, 0x0F0F)
		a.MovRI(EBX, 0x00FF)
		a.MovRI(ECX, 0x0F0F)
		a.AddRR(ECX, EBX) // 0x100E
		a.MovRI(EDX, 0x0F0F)
		a.AndRR(EDX, EBX) // 0x000F
		a.MovRI(ESI, 0x0F00)
		a.OrRR(ESI, EBX) // 0x0FFF
		a.MovRI(EDI, 0x0F0F)
		a.XorRR(EDI, EBX) // 0x0FF0
	})
	if c.Regs[ECX] != 0x100E {
		t.Errorf("add = 0x%X", c.Regs[ECX])
	}
	if c.Regs[EDX] != 0x000F {
		t.Errorf("and = 0x%X", c.Regs[EDX])
	}
	if c.Regs[ESI] != 0x0FFF {
		t.Errorf("or = 0x%X", c.Regs[ESI])
	}
	if c.Regs[EDI] != 0x0FF0 {
		t.Errorf("xor = 0x%X", c.Regs[EDI])
	}
}

func TestALUImmediateForms(t *testing.T) {
	c := execSnippet(t, func(a *Asm) {
		a.MovRI(EAX, 100)
		a.SubRI(EAX, 58) // 42
		a.MovRI(EBX, 0xFF)
		a.AndRI(EBX, 0x0F) // 0x0F
		a.MovRI(ECX, 0xF0)
		a.OrRI(ECX, 0x0F) // 0xFF
		a.MovRI(EDX, 0xAA)
		a.XorRI(EDX, 0xFF) // 0x55
	})
	if c.Regs[EAX] != 42 || c.Regs[EBX] != 0x0F || c.Regs[ECX] != 0xFF || c.Regs[EDX] != 0x55 {
		t.Errorf("imm ALU: eax=%d ebx=0x%X ecx=0x%X edx=0x%X",
			c.Regs[EAX], c.Regs[EBX], c.Regs[ECX], c.Regs[EDX])
	}
}

func TestShiftForms(t *testing.T) {
	c := execSnippet(t, func(a *Asm) {
		a.MovRI(EAX, -16) // 0xFFFFFFF0
		a.MovRI(ECX, 4)
		a.MovRI(EBX, -16)
		a.ShlRR(EBX, ECX) // 0xFFFFFF00
		a.MovRI(EDX, -16)
		a.ShrRR(EDX, ECX) // 0x0FFFFFFF
		a.MovRI(ESI, -16)
		a.SarRR(ESI, ECX) // 0xFFFFFFFF
		a.MovRI(EDI, -16)
		a.ShrRI(EDI, 4)
		a.SarRI(EAX, 4)
	})
	if c.Regs[EBX] != 0xFFFFFF00 {
		t.Errorf("shl rr = 0x%X", c.Regs[EBX])
	}
	if c.Regs[EDX] != 0x0FFFFFFF {
		t.Errorf("shr rr = 0x%X", c.Regs[EDX])
	}
	if c.Regs[ESI] != 0xFFFFFFFF {
		t.Errorf("sar rr = 0x%X", c.Regs[ESI])
	}
	if c.Regs[EDI] != 0x0FFFFFFF {
		t.Errorf("shr ri = 0x%X", c.Regs[EDI])
	}
	if c.Regs[EAX] != 0xFFFFFFFF {
		t.Errorf("sar ri = 0x%X", c.Regs[EAX])
	}
}

func TestImulAndCompareTest(t *testing.T) {
	c := execSnippet(t, func(a *Asm) {
		a.MovRI(EAX, -7)
		a.MovRI(EBX, 6)
		a.ImulRR(EAX, EBX) // -42

		// cmp sets flags without writing the destination.
		a.MovRI(ECX, 5)
		a.CmpRR(ECX, EBX)
		a.Jcc(CcL, "less")
		a.MovRI(EDX, 0)
		a.JmpSym("out1")
		a.Label("less")
		a.MovRI(EDX, 1)
		a.Label("out1")

		// test: bitwise AND into flags only.
		a.MovRI(ESI, 0x10)
		a.TestRR(ESI, ESI)
		a.Jcc(CcNE, "nz")
		a.MovRI(EDI, 0)
		a.JmpSym("out2")
		a.Label("nz")
		a.MovRI(EDI, 1)
		a.Label("out2")
	})
	if int32(c.Regs[EAX]) != -42 {
		t.Errorf("imul = %d", int32(c.Regs[EAX]))
	}
	if c.Regs[ECX] != 5 {
		t.Error("cmp modified its destination")
	}
	if c.Regs[EDX] != 1 {
		t.Error("cmp 5,6 did not set less-than")
	}
	if c.Regs[EDI] != 1 {
		t.Error("test 0x10,0x10 reported zero")
	}
}

func TestTestRIConditional(t *testing.T) {
	c := execSnippet(t, func(a *Asm) {
		a.MovRI(EAX, 0x04)
		a.TestRI(EAX, 0x04)
		a.Jcc(CcNE, "set")
		a.MovRI(EBX, 0)
		a.JmpSym("out")
		a.Label("set")
		a.MovRI(EBX, 1)
		a.Label("out")
	})
	if c.Regs[EBX] != 1 {
		t.Error("test r,imm missed a set bit")
	}
}

func TestSignAndZeroExtension(t *testing.T) {
	c := execSnippet(t, func(a *Asm) {
		a.MovRI(EAX, -123)   // 0xFFFFFF85: low byte 0x85
		a.Movzx8(EBX, EAX)   // 0x85
		a.Movsx8(ECX, EAX)   // 0xFFFFFF85
		a.MovRI(EAX, -32767) // 0xFFFF8001: low half 0x8001
		a.Movzx16(EDX, EAX)  // 0x8001
		a.Movsx16(ESI, EAX)  // 0xFFFF8001
	})
	if c.Regs[EBX] != 0x85 {
		t.Errorf("movzx8 = 0x%X", c.Regs[EBX])
	}
	if c.Regs[ECX] != 0xFFFFFF85 {
		t.Errorf("movsx8 = 0x%X", c.Regs[ECX])
	}
	if c.Regs[EDX] != 0x8001 {
		t.Errorf("movzx16 = 0x%X", c.Regs[EDX])
	}
	if c.Regs[ESI] != 0xFFFF8001 {
		t.Errorf("movsx16 = 0x%X", c.Regs[ESI])
	}
}

func TestSignedHalfwordLoad(t *testing.T) {
	c := execSnippet(t, func(a *Asm) {
		a.MovRI(EBX, tData)
		a.MovRI(EAX, 0x8001)
		a.St16(EBX, 0x20, EAX)
		a.Ld16sx(ECX, EBX, 0x20)
	})
	if c.Regs[ECX] != 0xFFFF8001 {
		t.Errorf("ld16sx = 0x%X, want sign-extended 0xFFFF8001", c.Regs[ECX])
	}
}

func TestMemoryOperandALU(t *testing.T) {
	c := execSnippet(t, func(a *Asm) {
		a.MovRI(EBX, tData)
		a.MovRI(EAX, 30)
		a.St32(EBX, 0x40, EAX)
		a.MovRI(ECX, 12)
		a.AddM(ECX, EBX, 0x40) // ecx += mem = 42

		a.MovRI(EDX, 30)
		a.CmpM(EDX, EBX, 0x40) // 30 == mem
		a.Jcc(CcE, "eq")
		a.MovRI(ESI, 0)
		a.JmpSym("out")
		a.Label("eq")
		a.MovRI(ESI, 1)
		a.Label("out")
	})
	if c.Regs[ECX] != 42 {
		t.Errorf("add r,m = %d", c.Regs[ECX])
	}
	if c.Regs[ESI] != 1 {
		t.Error("cmp r,m missed equality")
	}
}

func TestAbsoluteLoadStore(t *testing.T) {
	syms := map[string]uint32{"counter": tData + 0x80}
	a := NewAsm()
	a.MovRI(EAX, 77)
	a.StAbs("counter", 0, EAX)
	a.LdAbs(EBX, "counter", 0)
	a.Int(0x80)
	code, err := a.Link(tCode, syms)
	if err != nil {
		t.Fatal(err)
	}
	c2 := newTestCPU(t, func(b *Asm) { b.Nop() })
	copy(c2.Mem.RawBytes(tCode, uint32(len(code))), code)
	if ev := run(t, c2, 20); ev.Kind != isa.EvSyscall {
		t.Fatalf("%+v", ev)
	}
	if c2.Regs[EBX] != 77 {
		t.Errorf("abs load/store = %d", c2.Regs[EBX])
	}
	if got := c2.Mem.RawRead(tData+0x80, 4); got != 77 {
		t.Errorf("abs store wrote %d", got)
	}
}

func TestPushImmediateAndCallRegister(t *testing.T) {
	c := execSnippet(t, func(a *Asm) {
		a.PushI(1234)
		a.PopR(EBX)

		a.MovRISym(ECX, "fn", 0)
		a.CallR(ECX)
		a.MovRI(ESI, 9) // executes after fn returns
		a.Int(0x80)
		a.Label("fn")
		a.MovRI(EDI, 55)
		a.Ret()
	})
	if c.Regs[EBX] != 1234 {
		t.Errorf("push imm/pop = %d", c.Regs[EBX])
	}
	if c.Regs[EDI] != 55 || c.Regs[ESI] != 9 {
		t.Errorf("call r: edi=%d esi=%d", c.Regs[EDI], c.Regs[ESI])
	}
}

func TestPushfStiCli(t *testing.T) {
	c := execSnippet(t, func(a *Asm) {
		a.Sti()
		a.Pushf()
		a.PopR(EAX) // IF must be set
		a.Cli()
		a.Pushf()
		a.PopR(EBX) // IF must be clear
	})
	if c.Regs[EAX]&FlagIF == 0 {
		t.Error("pushf after sti: IF clear")
	}
	if c.Regs[EBX]&FlagIF != 0 {
		t.Error("pushf after cli: IF set")
	}
}

func TestControlAndDebugRegisterMoves(t *testing.T) {
	c := execSnippet(t, func(a *Asm) {
		a.MovRC(EAX, 0) // read CR0
		a.MovRI(EBX, tData+0x30)
		a.MovDR(0, EBX) // DR0 = ebx
		a.MovRD(ECX, 0) // read it back
	})
	if c.Regs[EAX]&CR0PE == 0 {
		t.Error("CR0.PE not visible through mov r,cr0")
	}
	if c.Regs[ECX] != tData+0x30 {
		t.Errorf("DR0 round trip = 0x%X", c.Regs[ECX])
	}
}

func TestSegmentRegisterMoves(t *testing.T) {
	c := execSnippet(t, func(a *Asm) {
		a.MovRSeg(EAX, 0) // read FS
		a.MovRI(EBX, SelFS)
		a.MovSeg(0, EBX) // reload FS with the valid selector
		a.MovRSeg(ECX, 0)
		a.MovRSeg(EDX, 1) // read GS
	})
	if c.Regs[EAX] != SelFS || c.Regs[ECX] != SelFS {
		t.Errorf("FS reads = 0x%X, 0x%X", c.Regs[EAX], c.Regs[ECX])
	}
	if c.Regs[EDX] != SelGS {
		t.Errorf("GS read = 0x%X", c.Regs[EDX])
	}
	// Loading a bogus selector is a protection fault.
	c2 := newTestCPU(t, func(a *Asm) {
		a.MovRI(EBX, 0x13)
		a.MovSeg(0, EBX)
	})
	if ev := run(t, c2, 10); ev.Cause != isa.CauseGeneralProtection {
		t.Errorf("bad FS selector: %+v", ev)
	}
}

func TestStrReadsTaskRegister(t *testing.T) {
	c := execSnippet(t, func(a *Asm) {
		a.Str(EAX)
	})
	if c.Regs[EAX] != SelTR {
		t.Errorf("str = 0x%X, want boot TR 0x%X", c.Regs[EAX], SelTR)
	}
}

func TestLabelsAccessor(t *testing.T) {
	a := NewAsm()
	a.Nop()
	a.Label("here")
	a.Nop()
	if _, err := a.Link(0, nil); err != nil {
		t.Fatal(err)
	}
	if got := a.Labels(); got["here"] != 1 {
		t.Errorf("Labels() = %v (nop is one byte)", got)
	}
}

func TestPendingDataBreakReporting(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.MovRI(EBX, tData)
		a.MovRI(EAX, 5)
		a.St32(EBX, 0x10, EAX)
		a.Int(0x80)
	})
	if _, _, _, ok := c.PendingDataBreak(); ok {
		t.Error("pending break before any watchpoint fired")
	}
	c.Debug.Set(0, isa.Breakpoint{Kind: isa.BreakData, Addr: tData + 0x10, Len: 4})
	ev := run(t, c, 20)
	if ev.Kind != isa.EvDataBreak {
		t.Fatalf("event %+v, want data break", ev)
	}
	slot, access, addr, ok := c.PendingDataBreak()
	if !ok || slot != 0 || access != isa.AccessWrite || addr != tData+0x10 {
		t.Errorf("PendingDataBreak = (%d, %v, 0x%X, %v)", slot, access, addr, ok)
	}
}

func TestOpcodeLookupAndCost(t *testing.T) {
	// Every byte Lookup reports as defined must carry a nonzero cost and a
	// valid format; undefined bytes must be rejected.
	defined := 0
	for b := 0; b < 256; b++ {
		op, _, ok := Lookup(byte(b))
		if !ok {
			continue
		}
		defined++
		in := Inst{Opcode: byte(b)}
		if in.Cost() == 0 {
			t.Errorf("opcode 0x%02X (%v) has zero cost", b, op)
		}
	}
	// The density is the Figure 11 calibration; keep it in the CISC band.
	if defined < 170 || defined > 230 {
		t.Errorf("defined opcodes = %d, want the dense-CISC band [170, 230]", defined)
	}
}

func TestDisasmCoversFormats(t *testing.T) {
	// One emitter per operand format: each must decode and render a
	// non-empty, distinctive string (the kfi-asm and tracediff display
	// paths).
	a := NewAsm()
	a.Label("top")
	a.Nop()                        // FNone
	a.PushR(EAX)                   // FOpReg
	a.AddRR(EAX, EBX)              // FRR
	a.NegR(ECX)                    // FR
	a.NotR(ECX)                    // FR
	a.AddRI(EAX, 5)                // FRI8
	a.AddRI(EAX, 0x12345)          // FRI32
	a.PushI(0x7F)                  // FI8
	a.PushI(0x12345)               // FI32
	a.Ld32(EAX, EBX, 8)            // FMem8
	a.Ld32(EAX, EBX, 0x1234)       // FMem32
	a.St32(EBX, 8, EAX)            // FMem8 store
	a.Ld8zx(EAX, EBX, 2)           // byte load
	a.Ld8sx(EAX, EBX, 2)           // sign-extending byte load
	a.St8(EBX, 2, EAX)             // byte store
	a.Ld32Idx(EAX, EBX, ECX, 2, 4) // FIdx load
	a.St32Idx(EBX, ECX, 2, 4, EAX) // FIdx store
	a.LeaIdx(EAX, EBX, ECX, 1, 8)  // FIdx lea
	a.MovMI8(EBX, 4, 9)            // FMI8
	a.IncM(EBX, 4)
	a.DecM(EBX, 4)
	a.Jcc(CcNE, "top") // FRel32
	a.SetCC(EAX, CcL)  // setcc rendering
	a.Sti()
	a.Cli()
	a.Iret()
	a.Str(EAX)
	a.Ltr(EAX)
	a.LoadFS(EAX, EBX, 0x10)
	a.Int(0x80)
	code, err := a.Link(0x1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for off := 0; off < len(code); {
		in, err := Decode(code[off:])
		if err != nil {
			t.Fatalf("byte 0x%02X at %d does not decode: %v", code[off], off, err)
		}
		str := in.String()
		if str == "" {
			t.Errorf("instruction at %d renders empty", off)
		}
		seen[str] = true
		off += int(in.Len)
	}
	if len(seen) < 28 {
		t.Errorf("only %d distinct renderings", len(seen))
	}
}

func TestRegCcCrDrNames(t *testing.T) {
	if RegName(EAX) != "eax" && RegName(EAX) != "EAX" {
		t.Errorf("RegName(EAX) = %q", RegName(EAX))
	}
	if got := RegName(200); got == "" {
		t.Error("out-of-range RegName empty")
	}
	if got := CcName(0xF); got == "" {
		t.Error("CcName(0xF) empty")
	}
}
