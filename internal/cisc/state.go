package cisc

import "kfi/internal/isa"

// State is the complete architectural and micro-architectural state of the
// P4-class CPU, as captured by the checkpoint/restore subsystem: general and
// system registers, privilege mode, debug-register file, cycle counter, and
// the pending data-breakpoint trap carried between instructions. Memory is
// captured separately (internal/mem baselines).
type State struct {
	Regs  [numRegs]uint32
	EIP   uint32
	Flags uint32

	CR0, CR2, CR3            uint32
	FS, GS                   uint32
	TR                       uint32
	GDTR, IDTR, LDTR         uint32
	DR                       [4]uint32
	DR6, DR7                 uint32
	SysenterEIP, SysenterESP uint32

	Mode   isa.Mode
	FSBase uint32

	Debug [isa.DebugSlots]isa.Breakpoint
	Clock isa.ClockState

	// Pending data-breakpoint trap (slot -1 when none).
	PendingSlot   int
	PendingAccess isa.DataAccess
	PendingAddr   uint32
}

// SaveState captures the CPU for a checkpoint.
func (c *CPU) SaveState() State {
	return State{
		Regs: c.Regs, EIP: c.EIP, Flags: c.Flags,
		CR0: c.CR0, CR2: c.CR2, CR3: c.CR3,
		FS: c.FS, GS: c.GS, TR: c.TR,
		GDTR: c.GDTR, IDTR: c.IDTR, LDTR: c.LDTR,
		DR: c.DR, DR6: c.DR6, DR7: c.DR7,
		SysenterEIP: c.SysenterEIP, SysenterESP: c.SysenterESP,
		Mode: c.Mode, FSBase: c.FSBase,
		Debug: c.Debug.Slots(), Clock: c.Clk.State(),
		PendingSlot: c.dbSlot, PendingAccess: c.dbAccess, PendingAddr: c.dbAddr,
	}
}

// RestoreState reapplies a captured state. The CPU's memory binding and trace
// hook are untouched: they belong to the hosting machine, not the checkpoint.
func (c *CPU) RestoreState(s *State) {
	c.Regs, c.EIP, c.Flags = s.Regs, s.EIP, s.Flags
	c.CR0, c.CR2, c.CR3 = s.CR0, s.CR2, s.CR3
	c.FS, c.GS, c.TR = s.FS, s.GS, s.TR
	c.GDTR, c.IDTR, c.LDTR = s.GDTR, s.IDTR, s.LDTR
	c.DR, c.DR6, c.DR7 = s.DR, s.DR6, s.DR7
	c.SysenterEIP, c.SysenterESP = s.SysenterEIP, s.SysenterESP
	c.Mode, c.FSBase = s.Mode, s.FSBase
	c.Debug.SetSlots(s.Debug)
	c.Clk.SetState(s.Clock)
	c.dbSlot, c.dbAccess, c.dbAddr = s.PendingSlot, s.PendingAccess, s.PendingAddr
}
