package cisc

import (
	"kfi/internal/isa"
	"kfi/internal/mem"
	"kfi/internal/platform"
)

// Basic-block threaded-closure translator (platform.EngineTranslate).
//
// Straight-line guest code is decoded once into an array of fused Go
// closures — a translated basic block — keyed by page and entry offset and
// invalidated by internal/mem's per-page write-generation counters, the same
// counters that invalidate the predecode cache. Dispatch validates the
// entry page's generation before running a block, and any unit that may
// store revalidates afterwards, so guest stores and injected bit flips into
// translated code (including CISC length re-synchronization: the new byte
// stream decodes to different instructions of different lengths) drop the
// block and resume in freshly translated or interpreted code bit-identically
// to the reference interpreter.
//
// Soundness argument (DESIGN.md §18):
//   - A block only runs when PageGen(page) equals the generation it was
//     decoded against, so the bytes it was translated from are the bytes the
//     interpreter would fetch.
//   - A block only runs when it fits entirely under the cycle limit; every
//     instruction costs at least one cycle, so each proper prefix also fits,
//     meaning the interpreter would have executed every one of its
//     instructions before re-checking the limit.
//   - Units replicate Step's per-instruction protocol: exceptions return
//     before the program counter or clock advance; all other outcomes
//     advance both exactly once per guest instruction. Fused runs of
//     fault-free register ops batch the EIP/clock retire and elide flag
//     computations that are provably overwritten before the run ends —
//     legal precisely because nothing inside the run can fault or raise an
//     event, so no intermediate EIP, cycle count, or dead flag state is
//     architecturally observable.
//   - Tracing and armed debug hardware (the injector's breakpoints) delegate
//     the whole RunUntil call to the interpreter, so trigger placement and
//     activation observe identical per-step sequencing.

// blockUnit is one translated step: a fused closure covering one or more
// guest instructions. run returns nil when every covered instruction retired
// normally — keeping the hot path to a single pointer-width return — and the
// terminating event otherwise. stores marks units that may write memory,
// telling the dispatcher to revalidate the executing page's write generation
// afterwards.
type blockUnit struct {
	run    func(c *CPU) *isa.Event
	stores bool
}

// tblock is one translated basic block. An empty unit list is a negative
// cache entry: the entry offset is undecodable or immediately straddles the
// page, so dispatch falls back to the interpreter without re-walking.
type tblock struct {
	units  []blockUnit
	total  uint64 // whole-block cycle cost
	ninstr int
}

// untranslatable is the shared negative-cache sentinel.
var untranslatable = &tblock{}

// tpage caches translated blocks for one guest page, keyed by entry byte
// offset (the CISC stream is variable-length: any byte can start a block).
type tpage struct {
	// gen is the mem generation the blocks were decoded against.
	gen uint64
	// okKernel/okUser record whether instruction fetch succeeds everywhere
	// in this page for each mode (flags are uniform across a page and cannot
	// change without a generation bump).
	okKernel, okUser bool
	nblocks          int
	blocks           [mem.PageSize]*tblock
}

const (
	// translateMaxPages bounds the translator footprint; exceeding it drops
	// the whole cache (corrupted control flow can execute anywhere).
	translateMaxPages = 48
	// translateMaxInstrs caps a block's instruction count.
	translateMaxInstrs = 64
)

// translator is the EngineTranslate implementation for the P4 core.
type translator struct {
	cpu      *CPU
	pages    map[uint32]*tpage
	last     *tpage
	lastPage uint32
	stats    platform.EngineStats
}

func newTranslator(cpu *CPU) *translator {
	// Fallback stepping goes through the predecode cache: outcomes are
	// identical either way and untranslatable stretches stay fast.
	cpu.SetPredecode(true)
	return &translator{cpu: cpu}
}

func (t *translator) Kind() platform.EngineKind { return platform.EngineTranslate }

func (t *translator) Flush() {
	t.pages, t.last = nil, nil
	t.cpu.FlushPredecode()
}

func (t *translator) Stats() platform.EngineStats { return t.stats }
func (t *translator) ResetStats()                 { t.stats = platform.EngineStats{} }

// faultEv boxes a memory fault into the unit return protocol. Faults end the
// dispatch (and almost always the run), so the allocation is off the hot path.
func faultEv(c *CPU, f *mem.Fault) *isa.Event {
	ev := c.memFault(f)
	return &ev
}

// RunUntil dispatches translated blocks until the clock reaches limit or an
// instruction produces an event.
func (t *translator) RunUntil(limit uint64) isa.Event {
	c := t.cpu
	// Anything the block dispatcher cannot reproduce step-for-step —
	// tracing, armed debug hardware — delegates the whole call to the
	// interpreter. The armed state only changes between RunUntil calls
	// (hooks and the injector run with the machine paused), so checking
	// once up front is exact.
	if c.Trace != nil || c.Debug.Armed(isa.BreakInstruction) || c.Debug.Armed(isa.BreakData) {
		t.stats.Fallbacks++
		return c.RunUntil(limit)
	}
	// Step clears the pending data-break slot before each instruction; with
	// data breakpoints unarmed no unit can set it, so clearing once here
	// matches the interpreter's per-step reset.
	c.dbSlot = -1
	for c.Clk.Cycles() < limit {
		page, blk := t.lookup()
		if blk == nil || len(blk.units) == 0 {
			t.stats.Fallbacks++
			if ev := c.Step(); ev.Kind != isa.EvNone {
				return ev
			}
			continue
		}
		if c.Clk.Cycles()+blk.total > limit {
			// The block would overrun the cycle horizon: take one
			// interpreter step and re-dispatch (not a translation failure,
			// so not counted as a fallback).
			if ev := c.Step(); ev.Kind != isa.EvNone {
				return ev
			}
			continue
		}
		t.stats.Hits++
		pg := t.last
		for i := range blk.units {
			u := &blk.units[i]
			if ev := u.run(c); ev != nil {
				return *ev
			}
			if u.stores && c.Mem.PageGen(page) != pg.gen {
				// The guest stored into the executing code page (or an
				// injected flip landed there): abandon the rest of the
				// block and re-dispatch at the current EIP, which is
				// exactly the interpreter's refetch.
				break
			}
		}
	}
	return isa.Event{}
}

// lookup validates the page under EIP and returns its block (translating on
// first use), nil when the translator must not run here.
func (t *translator) lookup() (uint32, *tblock) {
	c := t.cpu
	if c.EIP >= c.Mem.Size() {
		return 0, nil
	}
	page := c.EIP / mem.PageSize
	pg := t.last
	if pg == nil || t.lastPage != page {
		pg = t.pageFor(page)
		t.last, t.lastPage = pg, page
	}
	if g := c.Mem.PageGen(page); pg.gen != g {
		t.resetPage(pg, page, g)
	}
	if u := c.user(); u && !pg.okUser || !u && !pg.okKernel {
		return page, nil
	}
	off := c.EIP & (mem.PageSize - 1)
	blk := pg.blocks[off]
	if blk == nil {
		blk = t.translate(c.EIP, pg.gen)
		pg.blocks[off] = blk
		pg.nblocks++
		if len(blk.units) > 0 {
			t.stats.Translated++
		}
	}
	return page, blk
}

func (t *translator) pageFor(page uint32) *tpage {
	pg := t.pages[page]
	if pg == nil {
		if t.pages == nil || len(t.pages) >= translateMaxPages {
			t.pages = make(map[uint32]*tpage, translateMaxPages)
		}
		pg = &tpage{gen: ^uint64(0)} // impossible generation: reset on first use
		t.pages[page] = pg
	}
	return pg
}

// resetPage drops a page's blocks and revalidates its fetchability for
// generation gen.
func (t *translator) resetPage(pg *tpage, page uint32, gen uint64) {
	if pg.nblocks > 0 {
		t.stats.Invalidations++
	}
	*pg = tpage{
		gen:      gen,
		okKernel: t.cpu.Mem.PageFetchable(page, false),
		okUser:   t.cpu.Mem.PageFetchable(page, true),
	}
}

// ciscTerminator reports ops that end a basic block: control transfers,
// event-raising ops, and everything that changes mode or EIP non-linearly.
func ciscTerminator(op Op) bool {
	switch op {
	case OpJMP, OpJMPR, OpJCC, OpCALL, OpCALLR, OpRET,
		OpHLT, OpIRET, OpCTXSW, OpUD2, OpINT:
		return true
	default:
		return false
	}
}

// opStores reports ops that may write guest memory.
func opStores(op Op) bool {
	switch op {
	case OpST32, OpST16, OpST8, OpST32IDX, OpSTABS, OpMOVMI8,
		OpADDMS, OpSUBMS, OpANDMS, OpORMS, OpXORMS, OpINCM, OpDECM,
		OpPUSH, OpPUSHI, OpPUSHF, OpCALL, OpCALLR:
		return true
	default:
		return false
	}
}

// translate decodes the straight-line run starting at addr (whose page is at
// generation gen) into a block of fused closures. Decoding stops at a block
// terminator, an undecodable byte, a page-straddling instruction, or the
// instruction cap; an immediately-undecodable entry yields the negative
// sentinel so dispatch falls back without re-walking.
func (t *translator) translate(addr uint32, gen uint64) *tblock {
	c := t.cpu
	page := addr / mem.PageSize
	var (
		ins []Inst
		pcs []uint32
	)
	for len(ins) < translateMaxInstrs {
		off := addr & (mem.PageSize - 1)
		b := c.Mem.PeekBytes(addr, 1)
		if b == nil {
			break
		}
		e := &opTable[b[0]]
		if e.op == OpInvalid {
			break // undecodable byte: the interpreter raises the fault
		}
		n := uint32(e.format.Length())
		if off+n > mem.PageSize {
			break // straddler: cross-page fault ordering stays interpreted
		}
		raw := c.Mem.PeekBytes(addr, n)
		if raw == nil {
			break
		}
		dec, err := Decode(raw)
		if err != nil {
			break
		}
		ins = append(ins, dec)
		pcs = append(pcs, addr)
		addr += n
		if ciscTerminator(dec.Op) || addr/mem.PageSize != page {
			break
		}
	}
	if len(ins) == 0 {
		return untranslatable
	}

	blk := &tblock{ninstr: len(ins)}
	for i := range ins {
		blk.total += uint64(ins[i].Cost())
	}
	for i := 0; i < len(ins); {
		in := &ins[i]
		// Superinstruction: push/pop register runs (function prologues and
		// epilogues) fuse into one closure with per-instruction fault
		// semantics.
		if in.Format == FOpReg && (in.Op == OpPUSH || in.Op == OpPOP) &&
			i+1 < len(ins) && ins[i+1].Op == in.Op && ins[i+1].Format == FOpReg {
			j := i
			var regs []uint8
			for j < len(ins) && ins[j].Op == in.Op && ins[j].Format == FOpReg {
				regs = append(regs, ins[j].R1)
				j++
			}
			if in.Op == OpPUSH {
				blk.units = append(blk.units, fusePushRun(regs, page, gen))
			} else {
				blk.units = append(blk.units, fusePopRun(regs))
			}
			i = j
			continue
		}
		// Superinstruction: register/immediate compare + conditional branch.
		if (in.Op == OpCMP || in.Op == OpTEST) &&
			(in.Format == FRR || in.Format == FRI8 || in.Format == FRI32) &&
			i+1 < len(ins) && ins[i+1].Op == OpJCC {
			blk.units = append(blk.units, fuseCmpJcc(*in, ins[i+1], pcs[i]))
			i += 2
			continue
		}
		// Superinstruction: a maximal run of fault-free register ops fuses
		// into one closure with a single EIP/clock retire and dead flag
		// computations elided (see fuseALURun).
		if j := aluRunEnd(ins, i); j-i >= 2 {
			blk.units = append(blk.units, fuseALURun(ins[i:j], pcs[j-1]+uint32(ins[j-1].Len)))
			i = j
			continue
		}
		u := unitFor(*in, pcs[i])
		// Superinstruction: load followed by a fault-free register op.
		if !u.stores && isFusableLoad(in.Op) && i+1 < len(ins) && isFusableALU(&ins[i+1]) {
			blk.units = append(blk.units, chainUnits(u, unitFor(ins[i+1], pcs[i+1])))
			i += 2
			continue
		}
		blk.units = append(blk.units, u)
		i++
	}
	return blk
}

// --- Fault-free register-run fusion ---------------------------------------

// Flag liveness bits for the run-local dead-flag analysis.
const (
	liveCF uint8 = 1 << iota
	liveZF
	liveSF
	liveOF
	liveAll = liveCF | liveZF | liveSF | liveOF
)

// aluFlagUse returns the EFLAGS bits an op writes and reads. INC/DEC preserve
// CF (partial writers); SETCC's condition is treated as reading all four.
func aluFlagUse(op Op) (writes, reads uint8) {
	switch op {
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpCMP, OpTEST,
		OpIMUL, OpSHL, OpSHR, OpSAR, OpNEG:
		return liveAll, 0
	case OpINC, OpDEC:
		return liveZF | liveSF | liveOF, 0
	case OpSETCC:
		return 0, liveAll
	default:
		return 0, 0
	}
}

// aluCanMicro reports instructions eligible for run fusion: fault-free in
// every mode, no memory access, no EIP/clock side effects, and covered by
// aluMicro (the two switches must stay in sync; the engine differential
// fuzzer exercises the pairing).
func aluCanMicro(in *Inst) bool {
	switch in.Op {
	case OpMOV, OpADD, OpSUB, OpAND, OpOR, OpXOR, OpCMP, OpTEST,
		OpIMUL, OpSHL, OpSHR, OpSAR:
		return in.Format == FRR || in.Format == FRI8 || in.Format == FRI32
	case OpNOP, OpNEG, OpNOT, OpINC, OpDEC, OpXCHG, OpXCHGA, OpSETCC,
		OpMOVZX8, OpMOVSX8, OpMOVZX16, OpMOVSX16, OpLEAIDX, OpMOVRSEG, OpSTR:
		return true
	case OpLEA:
		return in.Format == FMem8 || in.Format == FMem32
	default:
		return false
	}
}

// aluRunEnd returns the end of the maximal fusable run starting at i. A
// trailing CMP/TEST directly before a JCC is left out so the compare+branch
// superinstruction still fires.
func aluRunEnd(ins []Inst, i int) int {
	j := i
	for j < len(ins) && aluCanMicro(&ins[j]) {
		j++
	}
	if j > i && j < len(ins) && ins[j].Op == OpJCC &&
		(ins[j-1].Op == OpCMP || ins[j-1].Op == OpTEST) {
		j--
	}
	return j
}

// fuseALURun compiles ins (all aluCanMicro) into one closure: the bodies run
// back to back, then EIP and the clock retire once. Flag computations whose
// every written bit is overwritten later in the run — before any reader and
// before the conservative all-live run exit — are elided; nothing in the run
// can fault, so the skipped intermediate states are unobservable.
func fuseALURun(ins []Inst, end uint32) blockUnit {
	live := liveAll // flags are observable after the run: assume all live
	need := make([]bool, len(ins))
	for k := len(ins) - 1; k >= 0; k-- {
		w, r := aluFlagUse(ins[k].Op)
		need[k] = w&live != 0
		live = (live &^ w) | r
	}
	var cost uint64
	ops := make([]func(*CPU), len(ins))
	for k := range ins {
		ops[k] = aluMicro(ins[k], need[k])
		cost += uint64(ins[k].Cost())
	}
	switch len(ops) {
	case 2:
		f0, f1 := ops[0], ops[1]
		return blockUnit{run: func(c *CPU) *isa.Event {
			f0(c)
			f1(c)
			c.EIP = end
			c.Clk.Advance(cost)
			return nil
		}}
	case 3:
		f0, f1, f2 := ops[0], ops[1], ops[2]
		return blockUnit{run: func(c *CPU) *isa.Event {
			f0(c)
			f1(c)
			f2(c)
			c.EIP = end
			c.Clk.Advance(cost)
			return nil
		}}
	case 4:
		f0, f1, f2, f3 := ops[0], ops[1], ops[2], ops[3]
		return blockUnit{run: func(c *CPU) *isa.Event {
			f0(c)
			f1(c)
			f2(c)
			f3(c)
			c.EIP = end
			c.Clk.Advance(cost)
			return nil
		}}
	}
	return blockUnit{run: func(c *CPU) *isa.Event {
		for _, f := range ops {
			f(c)
		}
		c.EIP = end
		c.Clk.Advance(cost)
		return nil
	}}
}

// aluMicro builds the body closure for one run member: the architectural
// effect minus EIP/clock (the run retires those once) and minus flag updates
// when withFlags is false. Callers guarantee aluCanMicro(in).
func aluMicro(in Inst, withFlags bool) func(*CPU) {
	r1, r2 := in.R1, in.R2
	imm := uint32(in.Imm)
	rr := in.Format == FRR
	switch in.Op {
	case OpNOP:
		return func(c *CPU) {}
	case OpMOV:
		if rr {
			return func(c *CPU) { c.Regs[r1] = c.Regs[r2] }
		}
		return func(c *CPU) { c.Regs[r1] = imm }
	case OpADD:
		if rr {
			if withFlags {
				return func(c *CPU) {
					a, b := c.Regs[r1], c.Regs[r2]
					c.Regs[r1] = a + b
					c.setFlagsAdd(a, b, a+b)
				}
			}
			return func(c *CPU) { c.Regs[r1] += c.Regs[r2] }
		}
		if withFlags {
			return func(c *CPU) {
				a := c.Regs[r1]
				c.Regs[r1] = a + imm
				c.setFlagsAdd(a, imm, a+imm)
			}
		}
		return func(c *CPU) { c.Regs[r1] += imm }
	case OpSUB:
		if rr {
			if withFlags {
				return func(c *CPU) {
					a, b := c.Regs[r1], c.Regs[r2]
					c.Regs[r1] = a - b
					c.setFlagsSub(a, b, a-b)
				}
			}
			return func(c *CPU) { c.Regs[r1] -= c.Regs[r2] }
		}
		if withFlags {
			return func(c *CPU) {
				a := c.Regs[r1]
				c.Regs[r1] = a - imm
				c.setFlagsSub(a, imm, a-imm)
			}
		}
		return func(c *CPU) { c.Regs[r1] -= imm }
	case OpAND:
		if rr {
			if withFlags {
				return func(c *CPU) { c.Regs[r1] &= c.Regs[r2]; c.setFlagsLogic(c.Regs[r1]) }
			}
			return func(c *CPU) { c.Regs[r1] &= c.Regs[r2] }
		}
		if withFlags {
			return func(c *CPU) { c.Regs[r1] &= imm; c.setFlagsLogic(c.Regs[r1]) }
		}
		return func(c *CPU) { c.Regs[r1] &= imm }
	case OpOR:
		if rr {
			if withFlags {
				return func(c *CPU) { c.Regs[r1] |= c.Regs[r2]; c.setFlagsLogic(c.Regs[r1]) }
			}
			return func(c *CPU) { c.Regs[r1] |= c.Regs[r2] }
		}
		if withFlags {
			return func(c *CPU) { c.Regs[r1] |= imm; c.setFlagsLogic(c.Regs[r1]) }
		}
		return func(c *CPU) { c.Regs[r1] |= imm }
	case OpXOR:
		if rr {
			if withFlags {
				return func(c *CPU) { c.Regs[r1] ^= c.Regs[r2]; c.setFlagsLogic(c.Regs[r1]) }
			}
			return func(c *CPU) { c.Regs[r1] ^= c.Regs[r2] }
		}
		if withFlags {
			return func(c *CPU) { c.Regs[r1] ^= imm; c.setFlagsLogic(c.Regs[r1]) }
		}
		return func(c *CPU) { c.Regs[r1] ^= imm }
	case OpCMP:
		if !withFlags {
			return func(c *CPU) {} // compare with dead flags is a no-op
		}
		if rr {
			return func(c *CPU) {
				a, b := c.Regs[r1], c.Regs[r2]
				c.setFlagsSub(a, b, a-b)
			}
		}
		return func(c *CPU) {
			a := c.Regs[r1]
			c.setFlagsSub(a, imm, a-imm)
		}
	case OpTEST:
		if !withFlags {
			return func(c *CPU) {}
		}
		if rr {
			return func(c *CPU) { c.setFlagsLogic(c.Regs[r1] & c.Regs[r2]) }
		}
		return func(c *CPU) { c.setFlagsLogic(c.Regs[r1] & imm) }
	case OpIMUL:
		src := func(c *CPU) uint32 { return imm }
		if rr {
			src = func(c *CPU) uint32 { return c.Regs[r2] }
		}
		if withFlags {
			return func(c *CPU) {
				c.Regs[r1] = uint32(int32(c.Regs[r1]) * int32(src(c)))
				c.setFlagsLogic(c.Regs[r1])
			}
		}
		return func(c *CPU) { c.Regs[r1] = uint32(int32(c.Regs[r1]) * int32(src(c))) }
	case OpSHL:
		src := func(c *CPU) uint32 { return imm }
		if rr {
			src = func(c *CPU) uint32 { return c.Regs[r2] }
		}
		if withFlags {
			return func(c *CPU) { c.Regs[r1] <<= src(c) & 31; c.setFlagsLogic(c.Regs[r1]) }
		}
		return func(c *CPU) { c.Regs[r1] <<= src(c) & 31 }
	case OpSHR:
		src := func(c *CPU) uint32 { return imm }
		if rr {
			src = func(c *CPU) uint32 { return c.Regs[r2] }
		}
		if withFlags {
			return func(c *CPU) { c.Regs[r1] >>= src(c) & 31; c.setFlagsLogic(c.Regs[r1]) }
		}
		return func(c *CPU) { c.Regs[r1] >>= src(c) & 31 }
	case OpSAR:
		src := func(c *CPU) uint32 { return imm }
		if rr {
			src = func(c *CPU) uint32 { return c.Regs[r2] }
		}
		if withFlags {
			return func(c *CPU) {
				c.Regs[r1] = uint32(int32(c.Regs[r1]) >> (src(c) & 31))
				c.setFlagsLogic(c.Regs[r1])
			}
		}
		return func(c *CPU) { c.Regs[r1] = uint32(int32(c.Regs[r1]) >> (src(c) & 31)) }
	case OpNEG:
		if withFlags {
			return func(c *CPU) { c.Regs[r1] = -c.Regs[r1]; c.setFlagsLogic(c.Regs[r1]) }
		}
		return func(c *CPU) { c.Regs[r1] = -c.Regs[r1] }
	case OpNOT:
		return func(c *CPU) { c.Regs[r1] = ^c.Regs[r1] }
	case OpINC:
		if withFlags {
			return func(c *CPU) { c.Regs[r1]++; c.flagsIncDec(c.Regs[r1], true) }
		}
		return func(c *CPU) { c.Regs[r1]++ }
	case OpDEC:
		if withFlags {
			return func(c *CPU) { c.Regs[r1]--; c.flagsIncDec(c.Regs[r1], false) }
		}
		return func(c *CPU) { c.Regs[r1]-- }
	case OpXCHG:
		return func(c *CPU) { c.Regs[r1], c.Regs[r2] = c.Regs[r2], c.Regs[r1] }
	case OpXCHGA:
		return func(c *CPU) { c.Regs[EAX], c.Regs[r1] = c.Regs[r1], c.Regs[EAX] }
	case OpSETCC:
		cc := uint8(imm) & 0xF
		return func(c *CPU) {
			if c.Cond(cc) {
				c.Regs[r1] = 1
			} else {
				c.Regs[r1] = 0
			}
		}
	case OpMOVZX8:
		return func(c *CPU) { c.Regs[r1] = c.Regs[r2] & 0xFF }
	case OpMOVSX8:
		return func(c *CPU) { c.Regs[r1] = uint32(int32(int8(c.Regs[r2]))) }
	case OpMOVZX16:
		return func(c *CPU) { c.Regs[r1] = c.Regs[r2] & 0xFFFF }
	case OpMOVSX16:
		return func(c *CPU) { c.Regs[r1] = uint32(int32(int16(c.Regs[r2]))) }
	case OpLEA:
		disp := uint32(in.Disp)
		return func(c *CPU) { c.Regs[r1] = c.Regs[r2] + disp }
	case OpLEAIDX:
		idx, scale, disp := in.Idx, in.Scale, uint32(in.Disp)
		return func(c *CPU) { c.Regs[r1] = c.Regs[r2] + c.Regs[idx]<<scale + disp }
	case OpMOVRSEG:
		if r2 == 0 {
			return func(c *CPU) { c.Regs[r1] = c.FS }
		}
		return func(c *CPU) { c.Regs[r1] = c.GS }
	case OpSTR:
		return func(c *CPU) { c.Regs[r1] = c.TR }
	}
	// Unreachable while aluCanMicro and this switch agree; degrade to a NOP
	// body would be unsound, so replicate via exec semantics instead.
	inst := in
	return func(c *CPU) {
		saved := c.EIP
		c.exec(&inst)
		c.EIP = saved
	}
}

// --- Remaining superinstructions and single-op units -----------------------

func isFusableLoad(op Op) bool {
	switch op {
	case OpLD32, OpLD16ZX, OpLD16SX, OpLD8ZX, OpLD8SX, OpLD32IDX, OpLDABS:
		return true
	default:
		return false
	}
}

// isFusableALU reports register/immediate ops safe to chain behind a load.
func isFusableALU(in *Inst) bool {
	if in.Format != FRR && in.Format != FRI8 && in.Format != FRI32 && in.Format != FOpReg {
		return false
	}
	switch in.Op {
	case OpMOV, OpADD, OpSUB, OpAND, OpOR, OpXOR, OpCMP, OpTEST,
		OpINC, OpDEC, OpNOT, OpNEG, OpMOVZX8, OpMOVSX8, OpMOVZX16, OpMOVSX16:
		return true
	default:
		return false
	}
}

// chainUnits runs two units as one closure. The first must not store (there
// is no generation recheck between them).
func chainUnits(a, b blockUnit) blockUnit {
	ar, br := a.run, b.run
	return blockUnit{
		stores: a.stores || b.stores,
		run: func(c *CPU) *isa.Event {
			if ev := ar(c); ev != nil {
				return ev
			}
			return br(c)
		},
	}
}

// fuseCmpJcc builds the compare+branch superinstruction. Both halves are
// fault-free (register/immediate operands only), so flags are written
// architecturally and the clock advances in one step.
func fuseCmpJcc(cmp, jcc Inst, cmpPC uint32) blockUnit {
	var (
		isRR   = cmp.Format == FRR
		isTest = cmp.Op == OpTEST
		r1, r2 = cmp.R1, cmp.R2
		imm    = uint32(cmp.Imm)
		cc     = jcc.Cc
		fall   = cmpPC + uint32(cmp.Len) + uint32(jcc.Len)
		taken  = fall + uint32(jcc.Imm)
		cost   = uint64(cmp.Cost()) + uint64(jcc.Cost())
	)
	return blockUnit{run: func(c *CPU) *isa.Event {
		a, b := c.Regs[r1], imm
		if isRR {
			b = c.Regs[r2]
		}
		if isTest {
			c.setFlagsLogic(a & b)
		} else {
			c.setFlagsSub(a, b, a-b)
		}
		if c.Cond(cc) {
			c.EIP = taken
		} else {
			c.EIP = fall
		}
		c.Clk.Advance(cost)
		return nil
	}}
}

// fusePushRun fuses a run of single-byte push instructions. Fault semantics
// are per-instruction: EIP and the clock advance only after each push
// retires, and ESP stays decremented on a faulting store (the push helper's
// behavior). Because the run stores more than once, it revalidates the
// executing page's generation itself after every store — a push through a
// corrupted ESP can rewrite the very bytes of a later push in the run.
func fusePushRun(regs []uint8, page uint32, gen uint64) blockUnit {
	return blockUnit{stores: true, run: func(c *CPU) *isa.Event {
		for _, r := range regs {
			c.Regs[ESP] -= 4
			if f := c.store(c.Regs[ESP], 4, c.Regs[r]); f != nil {
				return faultEv(c, f)
			}
			c.EIP++
			c.Clk.Advance(2)
			if c.Mem.PageGen(page) != gen {
				// Self-modifying store into this code page: stop; the
				// dispatcher re-dispatches at the current EIP.
				return nil
			}
		}
		return nil
	}}
}

// fusePopRun fuses a run of single-byte pop instructions (loads only).
func fusePopRun(regs []uint8) blockUnit {
	return blockUnit{run: func(c *CPU) *isa.Event {
		for _, r := range regs {
			v, f := c.pop()
			if f != nil {
				return faultEv(c, f)
			}
			c.Regs[r] = v
			c.EIP++
			c.Clk.Advance(2)
		}
		return nil
	}}
}

// unitFor builds the closure for one instruction. Hot register/memory ops
// get specialized closures that skip the exec switch and Inst copy; the
// rest run through exec with Step's exact advance protocol.
func unitFor(in Inst, pc uint32) blockUnit {
	next := pc + uint32(in.Len)
	cost := uint64(in.Cost())
	switch {
	case in.Op == OpMOV && in.Format == FRR:
		d, s := in.R1, in.R2
		return blockUnit{run: func(c *CPU) *isa.Event {
			c.Regs[d] = c.Regs[s]
			c.EIP = next
			c.Clk.Advance(cost)
			return nil
		}}
	case in.Op == OpMOV && (in.Format == FRI8 || in.Format == FRI32):
		d, imm := in.R1, uint32(in.Imm)
		return blockUnit{run: func(c *CPU) *isa.Event {
			c.Regs[d] = imm
			c.EIP = next
			c.Clk.Advance(cost)
			return nil
		}}
	case in.Op == OpADD && in.Format == FRR:
		d, s := in.R1, in.R2
		return blockUnit{run: func(c *CPU) *isa.Event {
			a, b := c.Regs[d], c.Regs[s]
			c.Regs[d] = a + b
			c.setFlagsAdd(a, b, a+b)
			c.EIP = next
			c.Clk.Advance(cost)
			return nil
		}}
	case in.Op == OpADD && (in.Format == FRI8 || in.Format == FRI32):
		d, imm := in.R1, uint32(in.Imm)
		return blockUnit{run: func(c *CPU) *isa.Event {
			a := c.Regs[d]
			c.Regs[d] = a + imm
			c.setFlagsAdd(a, imm, a+imm)
			c.EIP = next
			c.Clk.Advance(cost)
			return nil
		}}
	case in.Op == OpSUB && (in.Format == FRI8 || in.Format == FRI32):
		d, imm := in.R1, uint32(in.Imm)
		return blockUnit{run: func(c *CPU) *isa.Event {
			a := c.Regs[d]
			c.Regs[d] = a - imm
			c.setFlagsSub(a, imm, a-imm)
			c.EIP = next
			c.Clk.Advance(cost)
			return nil
		}}
	case in.Op == OpINC && in.Format == FOpReg:
		d := in.R1
		return blockUnit{run: func(c *CPU) *isa.Event {
			c.Regs[d]++
			c.flagsIncDec(c.Regs[d], true)
			c.EIP = next
			c.Clk.Advance(cost)
			return nil
		}}
	case in.Op == OpDEC && in.Format == FOpReg:
		d := in.R1
		return blockUnit{run: func(c *CPU) *isa.Event {
			c.Regs[d]--
			c.flagsIncDec(c.Regs[d], false)
			c.EIP = next
			c.Clk.Advance(cost)
			return nil
		}}
	case in.Op == OpLEA && in.Format == FMem8:
		d, b, disp := in.R1, in.R2, uint32(in.Disp)
		return blockUnit{run: func(c *CPU) *isa.Event {
			c.Regs[d] = c.Regs[b] + disp
			c.EIP = next
			c.Clk.Advance(cost)
			return nil
		}}
	case in.Op == OpLD32 && (in.Format == FMem8 || in.Format == FMem32):
		d, b, disp := in.R1, in.R2, uint32(in.Disp)
		return blockUnit{run: func(c *CPU) *isa.Event {
			v, f := c.load(c.Regs[b]+disp, 4)
			if f != nil {
				return faultEv(c, f)
			}
			c.Regs[d] = v
			c.EIP = next
			c.Clk.Advance(cost)
			return nil
		}}
	case in.Op == OpST32 && (in.Format == FMem8 || in.Format == FMem32):
		s, b, disp := in.R1, in.R2, uint32(in.Disp)
		return blockUnit{stores: true, run: func(c *CPU) *isa.Event {
			if f := c.store(c.Regs[b]+disp, 4, c.Regs[s]); f != nil {
				return faultEv(c, f)
			}
			c.EIP = next
			c.Clk.Advance(cost)
			return nil
		}}
	case in.Op == OpPUSH && in.Format == FOpReg:
		s := in.R1
		return blockUnit{stores: true, run: func(c *CPU) *isa.Event {
			if f := c.push(c.Regs[s]); f != nil {
				return faultEv(c, f)
			}
			c.EIP = next
			c.Clk.Advance(cost)
			return nil
		}}
	case in.Op == OpPOP && in.Format == FOpReg:
		d := in.R1
		return blockUnit{run: func(c *CPU) *isa.Event {
			v, f := c.pop()
			if f != nil {
				return faultEv(c, f)
			}
			c.Regs[d] = v
			c.EIP = next
			c.Clk.Advance(cost)
			return nil
		}}
	case in.Op == OpJMP && (in.Format == FRel8 || in.Format == FRel32):
		target := next + uint32(in.Imm)
		return blockUnit{run: func(c *CPU) *isa.Event {
			c.EIP = target
			c.Clk.Advance(cost)
			return nil
		}}
	case in.Op == OpJCC:
		cc := in.Cc
		target := next + uint32(in.Imm)
		return blockUnit{run: func(c *CPU) *isa.Event {
			if c.Cond(cc) {
				c.EIP = target
			} else {
				c.EIP = next
			}
			c.Clk.Advance(cost)
			return nil
		}}
	case in.Op == OpCALL:
		target := next + uint32(in.Imm)
		return blockUnit{stores: true, run: func(c *CPU) *isa.Event {
			if f := c.push(next); f != nil {
				return faultEv(c, f)
			}
			c.EIP = target
			c.Clk.Advance(cost)
			return nil
		}}
	case in.Op == OpRET:
		return blockUnit{run: func(c *CPU) *isa.Event {
			v, f := c.pop()
			if f != nil {
				return faultEv(c, f)
			}
			c.EIP = v
			c.Clk.Advance(cost)
			return nil
		}}
	}
	// Generic unit: Step's protocol minus fetch/decode and the (guaranteed
	// unarmed) debug checks. exec never mutates the Inst.
	return blockUnit{stores: opStores(in.Op), run: func(c *CPU) *isa.Event {
		ev := c.exec(&in)
		if ev.Kind == isa.EvException {
			e := ev
			return &e
		}
		c.Clk.Advance(cost)
		if ev.Kind != isa.EvNone {
			e := ev
			return &e
		}
		return nil
	}}
}
