package cli

import (
	"reflect"
	"strings"
	"testing"

	"kfi/internal/isa"
)

func TestParsePlatform(t *testing.T) {
	cases := []struct {
		in      string
		want    isa.Platform
		wantErr bool
	}{
		{in: "p4", want: isa.CISC},
		{in: "g4", want: isa.RISC},
		{in: "P4", want: isa.CISC},
		{in: "cisc", want: isa.CISC},
		{in: "ppc", want: isa.RISC},
		{in: " g4 ", want: isa.RISC},
		{in: "pentium", wantErr: true},
		{in: "both", wantErr: true}, // single-platform flags reject "both"
		{in: "", wantErr: true},
	}
	for _, tc := range cases {
		got, err := ParsePlatform(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParsePlatform(%q) = %v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePlatform(%q): %v", tc.in, err)
		} else if got != tc.want {
			t.Errorf("ParsePlatform(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParsePlatforms(t *testing.T) {
	both := []isa.Platform{isa.CISC, isa.RISC}
	cases := []struct {
		in      string
		want    []isa.Platform
		wantErr bool
	}{
		{in: "p4", want: []isa.Platform{isa.CISC}},
		{in: "g4", want: []isa.Platform{isa.RISC}},
		{in: "risc", want: []isa.Platform{isa.RISC}},
		{in: "both", want: both},
		{in: "all", want: both},
		{in: "BOTH", want: both},
		{in: "vax", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, tc := range cases {
		got, err := ParsePlatforms(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParsePlatforms(%q) = %v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePlatforms(%q): %v", tc.in, err)
			continue
		}
		// The built-in platforms must appear, in registry order, possibly
		// alongside extension platforms registered by other tests.
		if tc.in == "both" || tc.in == "all" || tc.in == "BOTH" {
			var builtins []isa.Platform
			for _, p := range got {
				if p == isa.CISC || p == isa.RISC {
					builtins = append(builtins, p)
				}
			}
			if !reflect.DeepEqual(builtins, both) {
				t.Errorf("ParsePlatforms(%q) = %v, want both builtins in order", tc.in, got)
			}
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParsePlatforms(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestUnknownPlatformErrorText(t *testing.T) {
	_, err := ParsePlatforms("vax")
	if err == nil {
		t.Fatal("want error")
	}
	got := err.Error()
	for _, want := range []string{`unknown platform "vax"`, "p4", "g4", "both"} {
		if !strings.Contains(got, want) {
			t.Errorf("error %q does not mention %q", got, want)
		}
	}
}
