package cli

import (
	"reflect"
	"strings"
	"testing"

	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/platform"
)

func TestParsePlatform(t *testing.T) {
	cases := []struct {
		in      string
		want    isa.Platform
		wantErr bool
	}{
		{in: "p4", want: isa.CISC},
		{in: "g4", want: isa.RISC},
		{in: "P4", want: isa.CISC},
		{in: "cisc", want: isa.CISC},
		{in: "ppc", want: isa.RISC},
		{in: " g4 ", want: isa.RISC},
		{in: "pentium", wantErr: true},
		{in: "both", wantErr: true}, // single-platform flags reject "both"
		{in: "", wantErr: true},
	}
	for _, tc := range cases {
		got, err := ParsePlatform(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParsePlatform(%q) = %v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePlatform(%q): %v", tc.in, err)
		} else if got != tc.want {
			t.Errorf("ParsePlatform(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParsePlatforms(t *testing.T) {
	both := []isa.Platform{isa.CISC, isa.RISC}
	cases := []struct {
		in      string
		want    []isa.Platform
		wantErr bool
	}{
		{in: "p4", want: []isa.Platform{isa.CISC}},
		{in: "g4", want: []isa.Platform{isa.RISC}},
		{in: "risc", want: []isa.Platform{isa.RISC}},
		{in: "both", want: both},
		{in: "all", want: both},
		{in: "BOTH", want: both},
		{in: "vax", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, tc := range cases {
		got, err := ParsePlatforms(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParsePlatforms(%q) = %v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePlatforms(%q): %v", tc.in, err)
			continue
		}
		// The built-in platforms must appear, in registry order, possibly
		// alongside extension platforms registered by other tests.
		if tc.in == "both" || tc.in == "all" || tc.in == "BOTH" {
			var builtins []isa.Platform
			for _, p := range got {
				if p == isa.CISC || p == isa.RISC {
					builtins = append(builtins, p)
				}
			}
			if !reflect.DeepEqual(builtins, both) {
				t.Errorf("ParsePlatforms(%q) = %v, want both builtins in order", tc.in, got)
			}
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParsePlatforms(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestUnknownPlatformErrorText(t *testing.T) {
	_, err := ParsePlatforms("vax")
	if err == nil {
		t.Fatal("want error")
	}
	got := err.Error()
	for _, want := range []string{`unknown platform "vax"`, "p4", "g4", "both"} {
		if !strings.Contains(got, want) {
			t.Errorf("error %q does not mention %q", got, want)
		}
	}
}

func TestParseEngine(t *testing.T) {
	cases := []struct {
		in      string
		want    platform.EngineKind
		wantErr bool
	}{
		{in: "interp", want: platform.EngineInterp},
		{in: "predecode", want: platform.EnginePredecode},
		{in: "translate", want: platform.EngineTranslate},
		{in: "TRANSLATE", want: platform.EngineTranslate},
		{in: " interp ", want: platform.EngineInterp},
		{in: "", want: 0},        // empty selects the platform default
		{in: "default", want: 0}, // so does "default"
		{in: "Default", want: 0},
		{in: "jit", wantErr: true},
		{in: "icache", wantErr: true},
	}
	for _, tc := range cases {
		got, err := ParseEngine(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseEngine(%q) = %v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseEngine(%q): %v", tc.in, err)
		} else if got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestUnknownEngineErrorText(t *testing.T) {
	// The error must name every registered engine and the default alias, so
	// a typo on any tool's -engine flag is self-documenting.
	_, err := ParseEngine("jit")
	if err == nil {
		t.Fatal("want error")
	}
	got := err.Error()
	for _, want := range []string{`unknown engine "jit"`, "interp", "predecode", "translate", "default"} {
		if !strings.Contains(got, want) {
			t.Errorf("error %q does not mention %q", got, want)
		}
	}
}

func TestParseCampaign(t *testing.T) {
	cases := []struct {
		in      string
		want    inject.Campaign
		wantErr bool
	}{
		{in: "stack", want: inject.CampStack},
		{in: "Stack", want: inject.CampStack},
		{in: " sysreg ", want: inject.CampSysReg},
		{in: "registers", want: inject.CampSysReg},
		{in: "regs", want: inject.CampSysReg},
		{in: "system-registers", want: inject.CampSysReg},
		{in: "data", want: inject.CampData},
		{in: "CODE", want: inject.CampCode},
		{in: "paging", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, c := range cases {
		got, err := ParseCampaign(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseCampaign(%q) = %v, want error", c.in, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseCampaign(%q) = %v, %v, want %v", c.in, got, err, c.want)
		}
	}
}

func TestParseListenAddr(t *testing.T) {
	cases := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{in: "127.0.0.1:9380", want: "127.0.0.1:9380"},
		{in: ":9380", want: ":9380"},
		{in: "localhost:0", want: "localhost:0"},
		{in: "[::1]:9380", want: "[::1]:9380"},
		{in: "", wantErr: true},
		{in: "127.0.0.1", wantErr: true},             // no port
		{in: "http://127.0.0.1:9380", wantErr: true}, // URL, not host:port
		{in: "host:port:extra", wantErr: true},
	}
	for _, c := range cases {
		got, err := ParseListenAddr(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseListenAddr(%q) = %q, want error", c.in, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseListenAddr(%q) = %q, %v, want %q", c.in, got, err, c.want)
		}
	}
}

func TestParseCoordinatorURL(t *testing.T) {
	cases := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{in: "127.0.0.1:9380", want: "http://127.0.0.1:9380"},
		{in: "http://127.0.0.1:9380", want: "http://127.0.0.1:9380"},
		{in: "http://127.0.0.1:9380/", want: "http://127.0.0.1:9380"},
		{in: "https://kfi.example", want: "https://kfi.example"},
		{in: "  http://h:1  ", want: "http://h:1"},
		{in: "", wantErr: true},
		{in: "ftp://127.0.0.1:9380", wantErr: true},
		{in: "http://", wantErr: true},              // no host
		{in: "http://h:1/x?drain=1", wantErr: true}, // query
		{in: "http://h:1/x#frag", wantErr: true},    // fragment
	}
	for _, c := range cases {
		got, err := ParseCoordinatorURL(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseCoordinatorURL(%q) = %q, want error", c.in, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseCoordinatorURL(%q) = %q, %v, want %q", c.in, got, err, c.want)
		}
	}
}
