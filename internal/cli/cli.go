// Package cli holds small helpers shared by the kfi command-line tools —
// chiefly the -platform flag parsing, which resolves names through the
// platform registry so every tool accepts the same names and prints the
// same error for an unknown one.
package cli

import (
	"fmt"
	"strings"

	"kfi/internal/isa"
	"kfi/internal/platform"

	// Every CLI resolves platforms by name, so importing this package pulls
	// in the built-in registrations.
	_ "kfi/internal/platform/all"
)

// shortNames returns the primary (isa Short) names of every registered
// platform, in registry order — "p4, g4" today — for error messages.
func shortNames() string {
	var out []string
	for _, d := range platform.All() {
		out = append(out, d.ID().Short())
	}
	return strings.Join(out, ", ")
}

// ParsePlatform resolves a single-platform flag value ("p4", "g4", or any
// registered alias, case-insensitively).
func ParsePlatform(s string) (isa.Platform, error) {
	if d, ok := platform.ByName(s); ok {
		return d.ID(), nil
	}
	return 0, fmt.Errorf("unknown platform %q (want %s)", s, shortNames())
}

// ParsePlatforms resolves a multi-platform flag value: a registered name or
// alias selects that platform; "both" or "all" selects every registered
// platform in registry order.
func ParsePlatforms(s string) ([]isa.Platform, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "both", "all":
		var out []isa.Platform
		for _, d := range platform.All() {
			out = append(out, d.ID())
		}
		return out, nil
	}
	if d, ok := platform.ByName(s); ok {
		return []isa.Platform{d.ID()}, nil
	}
	return nil, fmt.Errorf("unknown platform %q (want %s, or both)", s, shortNames())
}
