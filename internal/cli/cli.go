// Package cli holds small helpers shared by the kfi command-line tools: the
// -platform and -campaign flag parsing (resolved through the platform
// registry so every tool accepts the same names and prints the same error
// for an unknown one), and the -listen / -coordinator address parsing shared
// by kfi-campaign, kfi-ctl, and kfi-monitor.
package cli

import (
	"fmt"
	"net"
	"net/url"
	"strings"

	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/platform"

	// Every CLI resolves platforms by name, so importing this package pulls
	// in the built-in registrations.
	_ "kfi/internal/platform/all"
)

// shortNames returns the primary (isa Short) names of every registered
// platform, in registry order — "p4, g4" today — for error messages.
func shortNames() string {
	var out []string
	for _, d := range platform.All() {
		out = append(out, d.ID().Short())
	}
	return strings.Join(out, ", ")
}

// ParsePlatform resolves a single-platform flag value ("p4", "g4", or any
// registered alias, case-insensitively).
func ParsePlatform(s string) (isa.Platform, error) {
	if d, ok := platform.ByName(s); ok {
		return d.ID(), nil
	}
	return 0, fmt.Errorf("unknown platform %q (want %s)", s, shortNames())
}

// ParsePlatforms resolves a multi-platform flag value: a registered name or
// alias selects that platform; "both" or "all" selects every registered
// platform in registry order.
func ParsePlatforms(s string) ([]isa.Platform, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "both", "all":
		var out []isa.Platform
		for _, d := range platform.All() {
			out = append(out, d.ID())
		}
		return out, nil
	}
	if d, ok := platform.ByName(s); ok {
		return []isa.Platform{d.ID()}, nil
	}
	return nil, fmt.Errorf("unknown platform %q (want %s, or both)", s, shortNames())
}

// engineNames returns the registered engine names in kind order —
// "interp, predecode, translate" today — for error messages.
func engineNames() string {
	var out []string
	for _, k := range platform.EngineKinds() {
		out = append(out, k.String())
	}
	return strings.Join(out, ", ")
}

// ParseEngine resolves an -engine flag value ("interp", "predecode",
// "translate", case-insensitively). The empty string and "default" select
// the platform default (the zero EngineKind), so tools can pass the flag
// through unconditionally.
func ParseEngine(s string) (platform.EngineKind, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	switch name {
	case "", "default":
		return 0, nil
	}
	if k, ok := platform.EngineByName(name); ok {
		return k, nil
	}
	return 0, fmt.Errorf("unknown engine %q (want %s, or default)", s, engineNames())
}

// ParseCampaign resolves a single campaign name.
func ParseCampaign(s string) (inject.Campaign, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "stack":
		return inject.CampStack, nil
	case "sysreg", "registers", "regs", "system-registers":
		return inject.CampSysReg, nil
	case "data":
		return inject.CampData, nil
	case "code":
		return inject.CampCode, nil
	}
	return 0, fmt.Errorf("unknown campaign %q (want stack, sysreg, data, or code)", s)
}

// ParseCampaigns resolves a -campaign flag value: a comma-separated list of
// campaign names, or "all" for the four campaigns in the paper's table order.
func ParseCampaigns(s string) ([]inject.Campaign, error) {
	if strings.EqualFold(strings.TrimSpace(s), "all") {
		return []inject.Campaign{inject.CampStack, inject.CampSysReg,
			inject.CampData, inject.CampCode}, nil
	}
	var out []inject.Campaign
	for _, part := range strings.Split(s, ",") {
		c, err := ParseCampaign(part)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// ParseListenAddr validates a -listen flag value: a host:port (the host may
// be empty for all interfaces, the port may be 0 for an ephemeral one).
func ParseListenAddr(s string) (string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", fmt.Errorf("empty listen address (want host:port)")
	}
	if strings.Contains(s, "://") {
		return "", fmt.Errorf("listen address %q must be host:port, not a URL", s)
	}
	_, port, err := net.SplitHostPort(s)
	if err != nil {
		return "", fmt.Errorf("invalid listen address %q (want host:port): %v", s, err)
	}
	if port == "" {
		return "", fmt.Errorf("listen address %q is missing a port", s)
	}
	return s, nil
}

// ParseCoordinatorURL validates and normalizes a -coordinator flag value to
// an http(s) base URL with no trailing slash. A bare host:port is accepted
// and given the http scheme, so "-coordinator 127.0.0.1:9380" and
// "-coordinator http://127.0.0.1:9380" name the same service.
func ParseCoordinatorURL(s string) (string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", fmt.Errorf("empty coordinator URL")
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	u, err := url.Parse(s)
	if err != nil {
		return "", fmt.Errorf("invalid coordinator URL %q: %v", s, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("coordinator URL %q: unsupported scheme %q (want http or https)", s, u.Scheme)
	}
	if u.Host == "" {
		return "", fmt.Errorf("coordinator URL %q is missing a host", s)
	}
	if u.RawQuery != "" || u.Fragment != "" {
		return "", fmt.Errorf("coordinator URL %q must not carry a query or fragment", s)
	}
	u.Path = strings.TrimSuffix(u.Path, "/")
	return u.String(), nil
}
