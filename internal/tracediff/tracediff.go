// Package tracediff locates the first control-flow divergence between a
// golden run and an injected run — the instruction-granularity view of the
// error-propagation paths the paper reconstructs from crash dumps in §5.1
// (Figure 7: a corrupted stack value propagating until the kernel finally
// faults somewhere else entirely).
//
// Divergence is detected on the retired-PC stream. Errors that only corrupt
// data flow show up at the first corrupted branch, call, or fault — which is
// exactly the propagation distance of interest.
package tracediff

import (
	"fmt"

	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/machine"
)

// Step is one retired instruction with its symbolized location.
type Step struct {
	PC     uint32
	Func   string
	Disasm string
}

// Divergence reports where an injected run's instruction stream departed
// from the golden run's.
type Divergence struct {
	// Diverged reports whether the streams split at all. A false value with
	// differing checksums means the corruption propagated through data flow
	// only — it never moved a branch before the run ended.
	Diverged bool
	// Index is the retired-instruction count at which the streams split.
	Index int
	// Common holds the last shared instructions before the split.
	Common []Step
	// Golden and Faulty hold the first instructions on each side after the
	// split. Faulty disassembly is rendered against the corrupted memory
	// image, so a code injection's mutated encoding is visible.
	Golden []Step
	Faulty []Step
	// GoldenResult and FaultyResult are the two runs' outcomes.
	GoldenResult machine.RunResult
	FaultyResult machine.RunResult
}

// Diff runs sys twice — clean, then with the code-injection target applied —
// and locates the first control-flow divergence. When the instruction
// streams agree for their full length, the result has Diverged == false and
// the two RunResults still expose whether the corruption propagated through
// data flow (differing checksums) or was never activated. context bounds
// the steps captured on each side; limit bounds the traced instructions per
// run (0 means 8M). A limit shorter than the golden run truncates the
// comparison horizon: streams that agree up to the horizon report no
// divergence, even if they differ beyond it.
func Diff(sys *kernel.System, t inject.Target, context, limit int) (*Divergence, error) {
	if t.Campaign != inject.CampCode {
		return nil, fmt.Errorf("tracediff: only code injections are supported, got %v", t.Campaign)
	}
	if context <= 0 {
		context = 8
	}
	if limit <= 0 {
		limit = 8 << 20
	}
	m := sys.Machine

	// Golden pass: record the retired-PC stream up to the limit, plus the
	// total retired count so a truncated recording is distinguishable from
	// a completed one.
	m.Reboot()
	golden := make([]uint32, 0, 1<<20)
	goldenTotal := 0
	m.Core().SetTrace(func(pc uint32, cost uint8) {
		goldenTotal++
		if len(golden) < limit {
			golden = append(golden, pc)
		}
	})
	goldenRes := m.Run()
	m.Core().SetTrace(nil)
	truncated := goldenTotal > len(golden)

	// Faulty pass: inject through the same breakpoint mechanism the
	// campaigns use, tracing until the streams split, then keep only
	// `context` more steps.
	m.Reboot()
	const slot = 0
	m.Core().Debug().Set(slot, isa.Breakpoint{Kind: isa.BreakInstruction, Addr: t.Addr})
	m.OnInstrBreak = func(ev isa.Event) {
		for i := uint(0); i < burstWidth(t); i++ {
			m.Mem.FlipBit(t.Addr+uint32(t.ByteOff), (t.Bit+i)%8)
		}
		m.Core().Debug().Clear(slot)
	}
	defer func() { m.OnInstrBreak = nil }()

	var (
		idx      int
		split    = -1
		beyond   bool // ran past a truncated golden recording: nothing to compare against
		faultyPC []uint32
	)
	m.Core().SetTrace(func(pc uint32, cost uint8) {
		switch {
		case beyond:
		case split >= 0:
			if len(faultyPC) < context {
				faultyPC = append(faultyPC, pc)
			}
		case idx >= len(golden):
			// The golden stream has no instruction at this index. If the
			// recording was cut off by the limit the streams may well still
			// agree — the comparison horizon just ended, which is not a
			// divergence. Only a complete golden stream makes extra faulty
			// instructions a real split.
			if truncated {
				beyond = true
				return
			}
			split = idx
			faultyPC = append(faultyPC, pc)
		case golden[idx] != pc:
			split = idx
			faultyPC = append(faultyPC, pc)
		default:
			idx++
		}
	})
	faultyRes := m.Run()
	m.Core().SetTrace(nil)

	// A faulty run that dies at the corrupted instruction retires a strict
	// prefix of the golden stream — no per-step mismatch ever fires. Treat
	// early termination as divergence at the first never-retired golden
	// instruction.
	if split < 0 && !beyond && idx < len(golden) && faultyRes.Outcome != machine.OutCompleted {
		split = idx
	}

	d := &Divergence{Diverged: split >= 0, Index: split,
		GoldenResult: goldenRes, FaultyResult: faultyRes}
	if split < 0 {
		return d, nil
	}
	// The faulty machine's memory holds the corrupted code image — resolve
	// faulty steps against it. Golden code is identical outside the flipped
	// byte, so shared and golden-side steps use the same image; only an
	// instruction overlapping the flipped byte would disassemble
	// differently, and showing the corrupted form there is the point.
	lo := split - context
	if lo < 0 {
		lo = 0
	}
	for _, pc := range golden[lo:split] {
		d.Common = append(d.Common, symbolize(sys, pc))
	}
	hi := split + context
	if hi > len(golden) {
		hi = len(golden)
	}
	for _, pc := range golden[split:hi] {
		d.Golden = append(d.Golden, symbolize(sys, pc))
	}
	for _, pc := range faultyPC {
		d.Faulty = append(d.Faulty, symbolize(sys, pc))
	}
	return d, nil
}

func burstWidth(t inject.Target) uint {
	if t.Burst <= 1 {
		return 1
	}
	return uint(t.Burst)
}

func symbolize(sys *kernel.System, pc uint32) Step {
	s := Step{PC: pc, Disasm: sys.Machine.Disasm(pc)}
	if fr, ok := sys.KernelImage.FuncAt(pc); ok {
		s.Func = fr.Name
	} else if fr, ok := sys.UserImage.FuncAt(pc); ok {
		s.Func = fr.Name + " (user)"
	}
	return s
}

// Render formats a divergence as a report.
func (d *Divergence) Render() string {
	if !d.Diverged {
		out := "no control-flow divergence: the injected run retired the same instruction stream\n"
		switch {
		case d.FaultyResult.Checksum != d.GoldenResult.Checksum:
			out += fmt.Sprintf("data-only propagation: golden checksum 0x%08X, faulty 0x%08X (outcome %v)\n",
				d.GoldenResult.Checksum, d.FaultyResult.Checksum, d.FaultyResult.Outcome)
		default:
			out += "and the corruption was absorbed: checksums match (not activated, or overwritten)\n"
		}
		return out
	}
	out := fmt.Sprintf("first divergence at retired instruction %d\n", d.Index)
	out += fmt.Sprintf("golden outcome: %v    faulty outcome: %v", d.GoldenResult.Outcome, d.FaultyResult.Outcome)
	if d.FaultyResult.Crash != nil {
		out += fmt.Sprintf(" (%v)", d.FaultyResult.Crash.Cause)
	}
	out += "\n\nshared history:\n"
	for _, s := range d.Common {
		out += fmt.Sprintf("    %08x  %-14s %s\n", s.PC, s.Func, s.Disasm)
	}
	out += "\ngolden continues:\n"
	for _, s := range d.Golden {
		out += fmt.Sprintf("    %08x  %-14s %s\n", s.PC, s.Func, s.Disasm)
	}
	if len(d.Faulty) == 0 {
		out += "\nfaulty stream ends here: the corrupted instruction faulted without retiring\n"
		return out
	}
	out += "\nfaulty continues:\n"
	for _, s := range d.Faulty {
		out += fmt.Sprintf("  » %08x  %-14s %s\n", s.PC, s.Func, s.Disasm)
	}
	return out
}
