package tracediff_test

import (
	"strings"
	"testing"

	"kfi/internal/cc"
	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/staticsense"
	"kfi/internal/tracediff"
	"kfi/internal/workload"
)

func buildSystem(t *testing.T, p isa.Platform) *kernel.System {
	t.Helper()
	uimg, err := cc.Compile(workload.Program(1), p, kernel.UserBases)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := kernel.BuildSystem(p, uimg, workload.StandardProcs(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestDiffFindsDivergence(t *testing.T) {
	for _, p := range []isa.Platform{isa.CISC, isa.RISC} {
		p := p
		t.Run(p.Short(), func(t *testing.T) {
			sys := buildSystem(t, p)
			// Corrupt the first instruction of a hot leaf function. Some
			// single-bit flips only disturb data flow; scan a few bits
			// until one moves control.
			fr, ok := sys.KernelImage.FuncAt(sys.KernelImage.Sym("csum_partial"))
			if !ok {
				t.Fatal("no function at csum_partial")
			}
			var d *tracediff.Divergence
			var err error
			for bit := uint(0); bit < 8 && (d == nil || !d.Diverged); bit++ {
				d, err = tracediff.Diff(sys, inject.Target{
					Campaign: inject.CampCode,
					Addr:     fr.Start,
					Bit:      bit,
					Func:     "csum_partial",
				}, 6, 0)
				if err != nil {
					t.Fatal(err)
				}
			}
			if d == nil || !d.Diverged {
				t.Fatal("no flip of the first opcode byte moved control flow")
			}
			if d.Index <= 0 {
				t.Errorf("divergence at instruction %d", d.Index)
			}
			if len(d.Common) == 0 {
				t.Fatal("shared-history context missing")
			}
			// Faulty-side steps are empty exactly when the corrupted
			// instruction faulted without retiring (stream truncation);
			// then the run must not have completed.
			if len(d.Faulty) == 0 && d.FaultyResult.Outcome.String() == "completed" {
				t.Fatal("no faulty steps yet the faulty run completed")
			}
			// The shared history must end inside (or at the call into) the
			// corrupted function's neighborhood — the last common step is
			// the instruction right before the corrupted one took effect.
			rep := d.Render()
			wants := []string{"first divergence", "golden continues"}
			if len(d.Faulty) > 0 {
				wants = append(wants, "faulty continues")
			} else {
				wants = append(wants, "faulty stream ends here")
			}
			for _, want := range wants {
				if !strings.Contains(rep, want) {
					t.Errorf("report missing %q", want)
				}
			}
		})
	}
}

func TestDiffNoDivergenceOnDeadCode(t *testing.T) {
	sys := buildSystem(t, isa.CISC)
	// do_exit is never reached by the standard benchmark: the breakpoint
	// never fires, so both runs retire identical streams.
	fr, ok := sys.KernelImage.FuncAt(sys.KernelImage.Sym("do_exit"))
	if !ok {
		t.Fatal("no function at do_exit")
	}
	d, err := tracediff.Diff(sys, inject.Target{
		Campaign: inject.CampCode,
		Addr:     fr.Start,
		Bit:      0,
	}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Diverged {
		t.Fatalf("unexpected divergence at %d", d.Index)
	}
	if got := d.Render(); !strings.Contains(got, "no control-flow divergence") ||
		!strings.Contains(got, "absorbed") {
		t.Errorf("render = %q", got)
	}
}

// firstRetiredPC captures the first instruction the benchmark retires.
func firstRetiredPC(t *testing.T, sys *kernel.System) uint32 {
	t.Helper()
	m := sys.Machine
	m.Reboot()
	var first uint32
	got := false
	m.Core().SetTrace(func(pc uint32, cost uint8) {
		if !got {
			first, got = pc, true
		}
	})
	m.Run()
	m.Core().SetTrace(nil)
	if !got {
		t.Fatal("benchmark retired no instructions")
	}
	return first
}

// TestDiffDivergenceAtInstructionZero corrupts the very first retired
// instruction into an undecodable word: the streams split before any shared
// history exists, so Index is 0 and Common is empty.
func TestDiffDivergenceAtInstructionZero(t *testing.T) {
	sys := buildSystem(t, isa.RISC)
	entry := firstRetiredPC(t, sys)
	an, err := staticsense.New(sys.KernelImage)
	if err != nil {
		t.Fatal(err)
	}
	var byteOff uint8
	var bit uint
	found := false
	for off := uint8(0); off < 4 && !found; off++ {
		for b := uint(0); b < 8 && !found; b++ {
			if an.ClassifyFlip(entry, off, b).Class == staticsense.ClassInvalid {
				byteOff, bit, found = off, b, true
			}
		}
	}
	if !found {
		t.Skipf("no invalidating flip in the entry instruction at %#x", entry)
	}
	d, err := tracediff.Diff(sys, inject.Target{
		Campaign: inject.CampCode, Addr: entry, ByteOff: byteOff, Bit: bit,
	}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Diverged || d.Index != 0 {
		t.Fatalf("diverged=%v index=%d, want divergence at instruction 0", d.Diverged, d.Index)
	}
	if len(d.Common) != 0 {
		t.Errorf("divergence at 0 has %d shared steps", len(d.Common))
	}
	if rep := d.Render(); !strings.Contains(rep, "first divergence at retired instruction 0") {
		t.Errorf("render = %q", rep)
	}
}

// TestDiffTruncatedGoldenIsNotDivergence: a comparison limit shorter than
// the run must not turn the truncation point into a phantom split. The
// breakpoint here never fires (do_exit is unreached), so the two runs are
// identical and any reported divergence is an artifact.
func TestDiffTruncatedGoldenIsNotDivergence(t *testing.T) {
	sys := buildSystem(t, isa.CISC)
	fr, ok := sys.KernelImage.FuncAt(sys.KernelImage.Sym("do_exit"))
	if !ok {
		t.Fatal("no function at do_exit")
	}
	for _, limit := range []int{1, 100} {
		d, err := tracediff.Diff(sys, inject.Target{
			Campaign: inject.CampCode, Addr: fr.Start, Bit: 0,
		}, 4, limit)
		if err != nil {
			t.Fatal(err)
		}
		if d.Diverged {
			t.Errorf("limit %d: phantom divergence at %d", limit, d.Index)
		}
	}
}

// TestDiffUnequalLengthStreams: a faulty run that retires a strict prefix
// of the complete golden stream (it crashes mid-benchmark without ever
// mismatching a PC) is a divergence at the first never-retired golden
// instruction, with an empty faulty side.
func TestDiffUnequalLengthStreams(t *testing.T) {
	sys := buildSystem(t, isa.RISC)
	entry := firstRetiredPC(t, sys)
	an, err := staticsense.New(sys.KernelImage)
	if err != nil {
		t.Fatal(err)
	}
	var byteOff uint8
	var bit uint
	found := false
	for off := uint8(0); off < 4 && !found; off++ {
		for b := uint(0); b < 8 && !found; b++ {
			if an.ClassifyFlip(entry, off, b).Class == staticsense.ClassInvalid {
				byteOff, bit, found = off, b, true
			}
		}
	}
	if !found {
		t.Skipf("no invalidating flip in the entry instruction at %#x", entry)
	}
	d, err := tracediff.Diff(sys, inject.Target{
		Campaign: inject.CampCode, Addr: entry, ByteOff: byteOff, Bit: bit,
	}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Diverged {
		t.Fatal("undecodable first instruction did not diverge")
	}
	if len(d.Faulty) == 0 {
		if rep := d.Render(); !strings.Contains(rep, "faulted without retiring") {
			t.Errorf("prefix-death render = %q", rep)
		}
	}
}

func TestDiffRejectsNonCodeCampaigns(t *testing.T) {
	sys := buildSystem(t, isa.CISC)
	if _, err := tracediff.Diff(sys, inject.Target{Campaign: inject.CampStack}, 4, 0); err == nil {
		t.Error("stack campaign accepted")
	}
}

func TestDiffDoesNotPerturbGoldenBehavior(t *testing.T) {
	// After a Diff, the system must still produce its golden checksum — the
	// tool cleans up its breakpoints and trace hooks.
	sys := buildSystem(t, isa.CISC)
	fr, _ := sys.KernelImage.FuncAt(sys.KernelImage.Sym("memcpy"))
	if _, err := tracediff.Diff(sys, inject.Target{
		Campaign: inject.CampCode, Addr: fr.Start, Bit: 2,
	}, 4, 0); err != nil {
		t.Fatal(err)
	}
	sys.Machine.Reboot()
	res := sys.Machine.Run()
	if res.Outcome.String() != "completed" {
		t.Errorf("post-diff run outcome %v", res.Outcome)
	}
}
