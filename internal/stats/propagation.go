package stats

import (
	"fmt"
	"sort"
	"strings"

	"kfi/internal/inject"
)

// Subsystem classifies a kernel function name into the guest kernel's
// subsystems, mirroring how the paper attributes Figure 7's propagation
// ("a bit error in the mm subsystem ... crashes in the net subsystem").
func Subsystem(fn string) string {
	switch {
	case fn == "":
		return "?"
	case strings.HasPrefix(fn, "sys_pipe"):
		return "ipc"
	case strings.HasPrefix(fn, "sys_"), fn == "syscall_entry", fn == "syscall_stub":
		return "syscall"
	case fn == "alloc_pages" || fn == "free_pages_ok":
		return "mm"
	case fn == "getblk" || fn == "sync_old_buffers" || fn == "kupdate":
		return "fs"
	case fn == "kjournald" || fn == "journal_commit":
		return "journal"
	case fn == "alloc_skb" || fn == "free_skb" || fn == "net_tx":
		return "net"
	case fn == "schedule" || fn == "find_next" || fn == "schedule_timeout" ||
		fn == "timer_tick" || fn == "do_exit" || fn == "timer_stub" ||
		fn == "kstart":
		return "sched"
	case fn == "spin_lock" || fn == "spin_unlock":
		return "lock"
	case fn == "memcpy" || fn == "memset" || fn == "csum_partial":
		return "lib"
	case fn == "kmain":
		return "boot"
	default:
		return "other"
	}
}

// Propagation summarizes where code-injection crashes landed relative to the
// corrupted function: same function, same subsystem, or a different
// subsystem entirely (the undetected-propagation case the paper highlights
// as the dangerous one).
type Propagation struct {
	Crashes        int
	SameFunction   int
	SameSubsystem  int // different function, same subsystem
	CrossSubsystem int
	// Pairs counts injectedSubsystem→crashSubsystem transitions.
	Pairs map[string]int
}

// Propagate analyzes code-injection results.
func Propagate(results []inject.Result) Propagation {
	p := Propagation{Pairs: make(map[string]int)}
	for _, r := range results {
		if r.Outcome != inject.OCrash || r.Target.Campaign != inject.CampCode {
			continue
		}
		p.Crashes++
		from, to := Subsystem(r.Target.Func), Subsystem(r.CrashFunc)
		switch {
		case r.CrashFunc == r.Target.Func:
			p.SameFunction++
		case from == to:
			p.SameSubsystem++
		default:
			p.CrossSubsystem++
			p.Pairs[from+"→"+to]++
		}
	}
	return p
}

// CrossPct returns the share of crashes that escaped their subsystem before
// being detected.
func (p Propagation) CrossPct() float64 {
	if p.Crashes == 0 {
		return 0
	}
	return 100 * float64(p.CrossSubsystem) / float64(p.Crashes)
}

// Render prints the propagation summary with the most common cross-subsystem
// paths.
func (p Propagation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "error propagation over %d code-injection crashes:\n", p.Crashes)
	pct := func(n int) float64 {
		if p.Crashes == 0 {
			return 0
		}
		return 100 * float64(n) / float64(p.Crashes)
	}
	fmt.Fprintf(&b, "  crashed in the corrupted function:  %5.1f%%  (%d)\n", pct(p.SameFunction), p.SameFunction)
	fmt.Fprintf(&b, "  escaped to the same subsystem:      %5.1f%%  (%d)\n", pct(p.SameSubsystem), p.SameSubsystem)
	fmt.Fprintf(&b, "  escaped across subsystems:          %5.1f%%  (%d)\n", pct(p.CrossSubsystem), p.CrossSubsystem)
	if len(p.Pairs) > 0 {
		type kv struct {
			k string
			n int
		}
		var pairs []kv
		for k, n := range p.Pairs {
			pairs = append(pairs, kv{k, n})
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].n != pairs[j].n {
				return pairs[i].n > pairs[j].n
			}
			return pairs[i].k < pairs[j].k
		})
		b.WriteString("  top cross-subsystem paths:\n")
		for i, kv := range pairs {
			if i == 6 {
				break
			}
			fmt.Fprintf(&b, "    %-22s %d\n", kv.k, kv.n)
		}
	}
	return b.String()
}
