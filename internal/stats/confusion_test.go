package stats

import (
	"reflect"
	"strings"
	"testing"

	"kfi/internal/inject"
	"kfi/internal/staticsense"
)

func annotated(camp inject.Campaign, fn, class string, inert, skipped, cached bool, o inject.Outcome) inject.Result {
	return inject.Result{
		Target:      inject.Target{Campaign: camp, Func: fn},
		Outcome:     o,
		PredClass:   class,
		PredInert:   inert,
		PredSkipped: skipped,
		PredCached:  cached,
	}
}

func TestConfuseCountsAndViolations(t *testing.T) {
	unk := staticsense.ClassUnknown.String()
	ie := staticsense.ClassInertEncoding.String()
	results := []inject.Result{
		annotated(inject.CampCode, "f", ie, true, true, false, inject.ONotManifested),
		annotated(inject.CampCode, "f", ie, true, false, false, inject.ONotManifested),
		annotated(inject.CampCode, "f", ie, true, false, false, inject.OCrash), // executed inert that crashed
		annotated(inject.CampCode, "f", unk, false, false, false, inject.ONotActivated),
		annotated(inject.CampCode, "f", unk, false, false, false, inject.OQuarantined),
		{Target: inject.Target{Campaign: inject.CampCode, Func: "f"}, Outcome: inject.OCrash}, // unannotated
	}
	c := Confuse(results)
	if c.Annotated != 5 {
		t.Errorf("Annotated = %d, want 5", c.Annotated)
	}
	if c.Violations != 1 {
		t.Errorf("Violations = %d, want 1 (the executed inert crash)", c.Violations)
	}
	if c.Cached != 0 {
		t.Errorf("Cached = %d, want 0", c.Cached)
	}
	if len(c.Rows) != 2 || c.Rows[0].Class != unk || c.Rows[1].Class != ie {
		t.Fatalf("rows not in lattice order: %+v", c.Rows)
	}
	if r := c.Rows[1]; r.Skipped != 1 || r.NotManifested != 1 || r.Manifested != 1 || r.Total() != 3 {
		t.Errorf("inert-encoding row miscounted: %+v", r)
	}
	if r := c.Rows[0]; r.NotActivated != 1 || r.Quarantined != 1 || r.Total() != 2 {
		t.Errorf("unknown row miscounted: %+v", r)
	}
}

// TestConfusionRenderGolden pins the exact rendering, cached and uncached:
// the uncached header must stay byte-identical to the pre-cache format.
func TestConfusionRenderGolden(t *testing.T) {
	ie := staticsense.ClassInertEncoding.String()
	results := []inject.Result{
		annotated(inject.CampCode, "f", ie, true, true, false, inject.ONotManifested),
		annotated(inject.CampCode, "f", ie, true, false, false, inject.OCrash),
	}
	want := "" +
		"Predicted vs observed (annotated: 2)\n" +
		"  predicted           total  skipped  not-act  not-man manifest     quar\n" +
		"  inert-encoding          2        1        0        0        1        0\n" +
		"  predicted-inert soundness violations: 1\n"
	if got := Confuse(results).Render(); got != want {
		t.Errorf("uncached render:\n got: %q\nwant: %q", got, want)
	}

	for i := range results {
		results[i].PredCached = true
	}
	wantCached := "" +
		"Predicted vs observed (annotated: 2, cached rows: 2)\n" +
		"  predicted           total  skipped  not-act  not-man manifest     quar\n" +
		"  inert-encoding          2        1        0        0        1        0\n" +
		"  predicted-inert soundness violations: 1\n"
	if got := Confuse(results).Render(); got != wantCached {
		t.Errorf("cached render:\n got: %q\nwant: %q", got, wantCached)
	}
}

func TestConfuseByTarget(t *testing.T) {
	results := []inject.Result{
		annotated(inject.CampCode, "f", staticsense.ClassInertEncoding.String(), true, true, true, inject.ONotManifested),
		annotated(inject.CampData, "", staticsense.ClassUnreferenced.String(), true, true, true, inject.ONotActivated),
		annotated(inject.CampSysReg, "", staticsense.ClassMaskedReg.String(), true, false, true, inject.ONotManifested),
		annotated(inject.CampStack, "", staticsense.ClassUnknown.String(), false, false, true, inject.OCrash),
		// A burst data row: cached but unannotated — still counted per kind.
		{Target: inject.Target{Campaign: inject.CampData}, Outcome: inject.OCrash, PredCached: true},
	}
	ts := ConfuseByTarget(results)
	order := make([]string, len(ts))
	for i, tc := range ts {
		order[i] = tc.Target
	}
	want := []string{
		inject.CampStack.String(), inject.CampSysReg.String(),
		inject.CampData.String(), inject.CampCode.String(),
	}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("target order %v, want %v", order, want)
	}
	for _, tc := range ts {
		if tc.Annotated != 1 {
			t.Errorf("%s: Annotated = %d, want 1", tc.Target, tc.Annotated)
		}
	}
	if data := ts[2]; data.Cached != 2 {
		t.Errorf("data kind Cached = %d, want 2 (annotated + burst row)", data.Cached)
	}

	// Kinds with neither annotations nor cached rows vanish.
	bare := []inject.Result{{Target: inject.Target{Campaign: inject.CampStack}, Outcome: inject.OCrash}}
	if got := ConfuseByTarget(bare); len(got) != 0 {
		t.Errorf("bare results produced %d target rows", len(got))
	}
}

// TestRenderByTargetGolden pins the per-target breakdown table.
func TestRenderByTargetGolden(t *testing.T) {
	results := []inject.Result{
		annotated(inject.CampCode, "f", staticsense.ClassInertEncoding.String(), true, true, true, inject.ONotManifested),
		annotated(inject.CampCode, "g", staticsense.ClassUnknown.String(), false, false, true, inject.OCrash),
		annotated(inject.CampSysReg, "", staticsense.ClassMaskedReg.String(), true, false, true, inject.ONotManifested),
	}
	want := "" +
		"  target             annotated    inert  skipped   cached violations\n" +
		"  System Registers           1        1        0        1          0\n" +
		"  Code                       2        1        1        2          0\n"
	if got := RenderByTarget(ConfuseByTarget(results)); got != want {
		t.Errorf("per-target render:\n got: %q\nwant: %q", got, want)
	}
	if got := RenderByTarget(nil); got != "" {
		t.Errorf("empty breakdown renders %q", got)
	}
}

func TestCachedSections(t *testing.T) {
	results := []inject.Result{
		annotated(inject.CampCode, "zeta", "", false, false, true, inject.OCrash),
		annotated(inject.CampCode, "alpha", "", false, false, true, inject.OCrash),
		annotated(inject.CampCode, "alpha", "", false, false, true, inject.ONotManifested),
		annotated(inject.CampData, "", "", false, false, true, inject.ONotActivated),
		annotated(inject.CampCode, "uncached", "", false, false, false, inject.OCrash),
	}
	got := CachedSections(results)
	want := []string{"_image", "alpha", "zeta"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CachedSections = %v, want %v", got, want)
	}
	if got := CachedSections(nil); len(got) != 0 {
		t.Errorf("no results yielded sections %v", got)
	}
}

// TestConfusionClassCoverage: every lattice class renders through the
// confusion matrix without falling out of the per-target inert tally.
func TestConfusionClassCoverage(t *testing.T) {
	var results []inject.Result
	for _, cl := range staticsense.Classes() {
		results = append(results,
			annotated(inject.CampCode, "f", cl.String(), cl.Inert(), false, false, inject.ONotManifested))
	}
	c := Confuse(results)
	if len(c.Rows) != len(staticsense.Classes()) {
		t.Fatalf("%d rows for %d classes", len(c.Rows), len(staticsense.Classes()))
	}
	out := RenderByTarget(ConfuseByTarget(results))
	wantInert := 0
	for _, cl := range staticsense.Classes() {
		if cl.Inert() {
			wantInert++
		}
	}
	if !strings.Contains(out, "Code") {
		t.Fatalf("breakdown missing the code row:\n%s", out)
	}
	ts := ConfuseByTarget(results)
	if len(ts) != 1 || ts[0].Annotated != len(staticsense.Classes()) {
		t.Fatalf("unexpected breakdown: %+v", ts)
	}
}
