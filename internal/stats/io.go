package stats

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"kfi/internal/inject"
	"kfi/internal/isa"
)

// Record is the JSONL serialization of one injection result, used by the
// campaign tool's log files and the report tool.
type Record struct {
	Platform string        `json:"platform"`
	Campaign string        `json:"campaign"`
	Seq      int           `json:"seq"`
	Result   inject.Result `json:"result"`
}

// WriteResults streams campaign results as JSON lines.
func WriteResults(w io.Writer, platform isa.Platform, camp inject.Campaign, results []inject.Result) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, r := range results {
		rec := Record{
			Platform: platform.Short(),
			Campaign: camp.String(),
			Seq:      i,
			Result:   r,
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("stats: encode record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadResults parses a JSONL stream back into records.
func ReadResults(r io.Reader) ([]Record, error) {
	var out []Record
	dec := json.NewDecoder(r)
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("stats: decode record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

// GroupRecords partitions records by (platform, campaign).
func GroupRecords(recs []Record) map[string][]inject.Result {
	out := make(map[string][]inject.Result)
	for _, rec := range recs {
		key := rec.Platform + "/" + rec.Campaign
		out[key] = append(out[key], rec.Result)
	}
	return out
}
