package stats

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/platform"
)

// Record is the JSONL serialization of one injection result, used by the
// campaign tool's log files and the report tool. A record with Engine set is
// not an injection result but a per-campaign engine-counter summary (Seq -1,
// appended after the campaign's result records by WriteEngineStats); result
// readers must skip it.
type Record struct {
	Platform string        `json:"platform"`
	Campaign string        `json:"campaign"`
	Seq      int           `json:"seq"`
	Result   inject.Result `json:"result"`

	Engine      string                `json:"engine,omitempty"`
	EngineStats *platform.EngineStats `json:"engine_stats,omitempty"`
}

// WriteResults streams campaign results as JSON lines.
func WriteResults(w io.Writer, platform isa.Platform, camp inject.Campaign, results []inject.Result) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, r := range results {
		rec := Record{
			Platform: platform.Short(),
			Campaign: camp.String(),
			Seq:      i,
			Result:   r,
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("stats: encode record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// WriteEngineStats appends one engine-counter summary record for a campaign.
func WriteEngineStats(w io.Writer, p isa.Platform, camp inject.Campaign,
	kind platform.EngineKind, s platform.EngineStats) error {
	rec := Record{
		Platform:    p.Short(),
		Campaign:    camp.String(),
		Seq:         -1,
		Engine:      kind.String(),
		EngineStats: &s,
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(&rec); err != nil {
		return fmt.Errorf("stats: encode engine record: %w", err)
	}
	return nil
}

// ReadResults parses a JSONL stream back into records.
func ReadResults(r io.Reader) ([]Record, error) {
	var out []Record
	dec := json.NewDecoder(r)
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("stats: decode record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

// GroupRecords partitions records by (platform, campaign), skipping
// engine-counter summary records.
func GroupRecords(recs []Record) map[string][]inject.Result {
	out := make(map[string][]inject.Result)
	for _, rec := range recs {
		if rec.Engine != "" {
			continue
		}
		key := rec.Platform + "/" + rec.Campaign
		out[key] = append(out[key], rec.Result)
	}
	return out
}

// GroupEngineRecords collects the engine-counter summary records by the same
// (platform, campaign) keys GroupRecords uses. Logs merged from several runs
// of one campaign accumulate their counters.
func GroupEngineRecords(recs []Record) map[string]Record {
	out := make(map[string]Record)
	for _, rec := range recs {
		if rec.Engine == "" || rec.EngineStats == nil {
			continue
		}
		key := rec.Platform + "/" + rec.Campaign
		if prev, ok := out[key]; ok && prev.Engine == rec.Engine {
			s := *prev.EngineStats
			s.Add(*rec.EngineStats)
			rec.EngineStats = &s
		}
		out[key] = rec
	}
	return out
}
