package stats

import (
	"fmt"

	"kfi/internal/platform"
)

// EngineLine renders one campaign's execution-engine counters as a report
// line: which engine ran the guest, how many basic blocks it translated, how
// its closure cache behaved, and how often it fell back to the interpreter.
// Interpreter engines report all zeros — the line still identifies the
// engine, which is what a reader comparing runs wants to know first.
func EngineLine(engine string, s platform.EngineStats) string {
	return fmt.Sprintf("engine %-9s blocks=%d hits=%d invalidations=%d fallbacks=%d",
		engine, s.Translated, s.Hits, s.Invalidations, s.Fallbacks)
}
