package stats

// This file renders coverage tables for hardened-vs-unhardened studies:
// where Tables 5/6 classify failures, a detection-coverage table classifies
// how a software-hardened kernel disposed of the same injected errors —
// detected, masked, silently corrupting, crashing, or hanging.

import "fmt"

// Masked returns injections that never visibly affected the system: the
// error was not activated, or was activated and overwritten/ignored before
// any failure.
func (c Counts) Masked() int { return c.NotActivated + c.NotManifested }

// DetectionCoverage returns the share (in percent) of non-masked errors the
// software detector caught: Detected / (Detected + FailSilence + Crash +
// Hang). This is the hardening literature's coverage figure — masked errors
// need no detection, so they are excluded from the denominator.
func (c Counts) DetectionCoverage() float64 {
	base := c.Detected + c.Manifested()
	if base == 0 {
		return 0
	}
	return 100 * float64(c.Detected) / float64(base)
}

// CoverageHeader renders the detection-coverage table's column header.
// Rows come from Counts.CoverageRow; a hardened and an unhardened variant of
// the same campaign render as adjacent rows with identical columns (the
// unhardened row's Detected column is structurally zero).
func CoverageHeader() string {
	return fmt.Sprintf("%-26s %8s  %14s  %14s  %12s  %14s  %14s  %8s",
		"Campaign", "Injected", "Detected", "Masked", "SilentCorr", "KnownCrash", "Hang/Unknown", "Coverage")
}

// CoverageRow renders one variant (e.g. "stack hardened burst=2") as a
// detection-coverage table row. Percentages are over non-quarantined
// injections; the final column is DetectionCoverage.
func (c Counts) CoverageRow(name string) string {
	base := c.Injected - c.Quarantined
	if base <= 0 {
		base = 1
	}
	cell := func(n int) string { return fmt.Sprintf("%d(%s)", n, pct(n, base)) }
	return fmt.Sprintf("%-26s %8d  %14s  %14s  %12s  %14s  %14s  %7.1f%%",
		name, c.Injected, cell(c.Detected), cell(c.Masked()), cell(c.FailSilence),
		cell(c.Crash), cell(c.HangUnknown), c.DetectionCoverage())
}
