package stats

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"kfi/internal/inject"
	"kfi/internal/isa"
)

func sampleResults() []inject.Result {
	return []inject.Result{
		{Outcome: inject.ONotActivated, ActivationKnown: true},
		{Outcome: inject.ONotManifested, ActivationKnown: true, Activated: true},
		{Outcome: inject.ONotManifested, ActivationKnown: true, Activated: true},
		{Outcome: inject.OFailSilence, ActivationKnown: true, Activated: true},
		{Outcome: inject.OCrash, ActivationKnown: true, Activated: true,
			Cause: isa.CauseNULLPointer, Latency: 1500},
		{Outcome: inject.OCrash, ActivationKnown: true, Activated: true,
			Cause: isa.CauseBadPaging, Latency: 50_000},
		{Outcome: inject.OHangUnknown, ActivationKnown: true, Activated: true},
	}
}

func TestSummarize(t *testing.T) {
	c := Summarize(sampleResults())
	if c.Injected != 7 || c.Activated != 6 || c.NotActivated != 1 {
		t.Errorf("counts = %+v", c)
	}
	if c.NotManifested != 2 || c.FailSilence != 1 || c.Crash != 2 || c.HangUnknown != 1 {
		t.Errorf("outcome counts = %+v", c)
	}
	if c.Manifested() != 4 {
		t.Errorf("Manifested() = %d, want 4", c.Manifested())
	}
	if c.ActivatedBase() != 6 {
		t.Errorf("ActivatedBase() = %d, want 6", c.ActivatedBase())
	}
}

func TestSummarizeSysRegNA(t *testing.T) {
	results := []inject.Result{
		{Outcome: inject.ONotManifested},
		{Outcome: inject.OCrash, Cause: isa.CauseGeneralProtection},
	}
	c := Summarize(results)
	if !c.ActivationNA {
		t.Error("system-register results should report activation N/A")
	}
	if c.ActivatedBase() != 2 {
		t.Errorf("N/A base = %d, want total injections", c.ActivatedBase())
	}
	if !strings.Contains(c.TableRow("System Registers"), "N/A") {
		t.Error("table row should print N/A")
	}
}

func TestTableRowFormat(t *testing.T) {
	c := Summarize(sampleResults())
	row := c.TableRow("Stack")
	for _, want := range []string{"Stack", "7", "6(85.7%)", "2(33.3%)", "1(16.7%)"} {
		if !strings.Contains(row, want) {
			t.Errorf("row %q missing %q", row, want)
		}
	}
	if !strings.Contains(TableHeader(), "Injected") {
		t.Error("header missing Injected column")
	}
}

func TestCrashCauses(t *testing.T) {
	d := CrashCauses(sampleResults())
	if d.Total != 2 {
		t.Fatalf("total = %d, want 2", d.Total)
	}
	if d.Pct(isa.CauseNULLPointer) != 50 || d.Pct(isa.CauseBadPaging) != 50 {
		t.Errorf("percentages: %v", d.Counts)
	}
	if got := d.InvalidMemoryPct(isa.CISC); got != 100 {
		t.Errorf("invalid memory pct = %v, want 100", got)
	}
	out := d.Render(isa.CISC)
	if !strings.Contains(out, "NULL Pointer") || !strings.Contains(out, "(Total 2)") {
		t.Errorf("render output: %q", out)
	}
}

func TestCauseDistMerge(t *testing.T) {
	a := CrashCauses(sampleResults())
	b := CrashCauses(sampleResults())
	m := a.Merge(b)
	if m.Total != 4 || m.Counts[isa.CauseNULLPointer] != 2 {
		t.Errorf("merge = %+v", m)
	}
}

func TestLatencyBuckets(t *testing.T) {
	tests := []struct {
		cycles uint64
		bucket int
	}{
		{0, 0}, {2999, 0}, {3000, 1}, {9999, 1}, {10_000, 2},
		{999_999, 3}, {5_000_000, 4}, {50_000_000, 5},
		{500_000_000, 6}, {2_000_000_000, 7},
	}
	for _, tt := range tests {
		var h LatencyHist
		h.Add(tt.cycles)
		if h.Buckets[tt.bucket] != 1 {
			t.Errorf("Add(%d) landed in %v, want bucket %d", tt.cycles, h.Buckets, tt.bucket)
		}
	}
}

func TestLatencyHistPcts(t *testing.T) {
	h := Latencies(sampleResults())
	if h.Total != 2 {
		t.Fatalf("total = %d", h.Total)
	}
	if h.Pct(0) != 50 || h.Pct(2) != 50 {
		t.Errorf("buckets = %v", h.Buckets)
	}
	if h.CumulativePct(2) != 100 {
		t.Errorf("cumulative(2) = %v", h.CumulativePct(2))
	}
	if !strings.Contains(h.Render(), "<3k") {
		t.Error("render missing bucket label")
	}
}

// Property: every latency lands in exactly one bucket and totals stay
// consistent.
func TestLatencyBucketProperty(t *testing.T) {
	f := func(cycles []uint64) bool {
		var h LatencyHist
		for _, c := range cycles {
			h.Add(c)
		}
		sum := 0
		for _, n := range h.Buckets {
			sum += n
		}
		return sum == len(cycles) && h.Total == len(cycles)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestByRegister(t *testing.T) {
	results := []inject.Result{
		{Target: inject.Target{Campaign: inject.CampSysReg, RegName: "ESP"}, Outcome: inject.OCrash},
		{Target: inject.Target{Campaign: inject.CampSysReg, RegName: "ESP"}, Outcome: inject.OHangUnknown},
		{Target: inject.Target{Campaign: inject.CampSysReg, RegName: "CR0"}, Outcome: inject.OCrash},
		{Target: inject.Target{Campaign: inject.CampSysReg, RegName: "DR3"}, Outcome: inject.ONotManifested},
		{Target: inject.Target{Campaign: inject.CampCode}, Outcome: inject.OCrash},
	}
	m := ByRegister(results)
	if m["ESP"] != 2 || m["CR0"] != 1 {
		t.Errorf("ByRegister = %v", m)
	}
	if _, ok := m["DR3"]; ok {
		t.Error("non-manifesting register counted")
	}
}

func TestResultsJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := sampleResults()
	if err := WriteResults(&buf, isa.CISC, inject.CampStack, in); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(in) {
		t.Fatalf("read %d records, want %d", len(recs), len(in))
	}
	for i, rec := range recs {
		if rec.Platform != "p4" || rec.Campaign != "Stack" || rec.Seq != i {
			t.Errorf("record %d header = %+v", i, rec)
		}
		if rec.Result.Outcome != in[i].Outcome {
			t.Errorf("record %d outcome = %v, want %v", i, rec.Result.Outcome, in[i].Outcome)
		}
	}
	groups := GroupRecords(recs)
	if len(groups["p4/Stack"]) != len(in) {
		t.Errorf("grouping lost records: %v", len(groups["p4/Stack"]))
	}
}

func TestReadResultsRejectsGarbage(t *testing.T) {
	if _, err := ReadResults(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage input accepted")
	}
}

func TestEmptyDistributions(t *testing.T) {
	var d CauseDist
	if d.Pct(isa.CauseBadArea) != 0 {
		t.Error("empty dist pct nonzero")
	}
	var h LatencyHist
	if h.Pct(0) != 0 || h.CumulativePct(7) != 0 {
		t.Error("empty hist pct nonzero")
	}
}

func TestPaperTableTotals(t *testing.T) {
	var p4, g4 int
	for _, row := range PaperTable[isa.CISC] {
		p4 += row.Injected
	}
	for _, row := range PaperTable[isa.RISC] {
		g4 += row.Injected
	}
	if p4 != 61799 || g4 != 55172 {
		t.Errorf("paper totals = %d / %d, want 61799 / 55172", p4, g4)
	}
}

func TestPaperCausesSumToHundred(t *testing.T) {
	for p, byCamp := range PaperCauses {
		for camp, dist := range byCamp {
			var sum float64
			for _, pct := range dist {
				sum += pct
			}
			if sum < 98.0 || sum > 102.0 {
				t.Errorf("[%v camp %d] paper causes sum to %.1f%%", p, camp, sum)
			}
		}
	}
}

func TestCompareRendering(t *testing.T) {
	c := Summarize(sampleResults())
	row := CompareTableRow(isa.CISC, inject.CampStack, c)
	if !strings.Contains(row, "paper 10143") {
		t.Errorf("compare row: %q", row)
	}
	d := CrashCauses(sampleResults())
	out := CompareCauses(isa.CISC, inject.CampStack, d)
	if !strings.Contains(out, "NULL Pointer") || !strings.Contains(out, "31.5") {
		t.Errorf("compare causes: %q", out)
	}
	if CompareTableRow(isa.CISC, 0, c) != "" {
		t.Error("unknown campaign should render empty")
	}
}

func TestSubsystemClassification(t *testing.T) {
	tests := map[string]string{
		"free_pages_ok": "mm",
		"alloc_skb":     "net",
		"kjournald":     "journal",
		"kupdate":       "fs",
		"spin_unlock":   "lock",
		"memcpy":        "lib",
		"sys_read":      "syscall",
		"sys_pipewrite": "ipc",
		"schedule":      "sched",
		"":              "?",
		"mystery_fn":    "other",
	}
	for fn, want := range tests {
		if got := Subsystem(fn); got != want {
			t.Errorf("Subsystem(%q) = %q, want %q", fn, got, want)
		}
	}
}

func TestPropagationAnalysis(t *testing.T) {
	results := []inject.Result{
		{Target: inject.Target{Campaign: inject.CampCode, Func: "free_pages_ok"},
			Outcome: inject.OCrash, CrashFunc: "free_pages_ok"},
		{Target: inject.Target{Campaign: inject.CampCode, Func: "alloc_pages"},
			Outcome: inject.OCrash, CrashFunc: "free_pages_ok"}, // same subsystem
		{Target: inject.Target{Campaign: inject.CampCode, Func: "free_pages_ok"},
			Outcome: inject.OCrash, CrashFunc: "alloc_skb"}, // mm → net: Figure 7!
		{Target: inject.Target{Campaign: inject.CampCode, Func: "memcpy"},
			Outcome: inject.ONotManifested}, // not a crash: ignored
		{Target: inject.Target{Campaign: inject.CampStack},
			Outcome: inject.OCrash, CrashFunc: "memcpy"}, // not code: ignored
	}
	p := Propagate(results)
	if p.Crashes != 3 || p.SameFunction != 1 || p.SameSubsystem != 1 || p.CrossSubsystem != 1 {
		t.Errorf("propagation = %+v", p)
	}
	if p.Pairs["mm→net"] != 1 {
		t.Errorf("pairs = %v", p.Pairs)
	}
	out := p.Render()
	if !strings.Contains(out, "mm→net") || !strings.Contains(out, "33.3%") {
		t.Errorf("render: %s", out)
	}
}

func TestWilson95(t *testing.T) {
	// Degenerate inputs.
	if lo, hi := Wilson95(0, 0); lo != 0 || hi != 0 {
		t.Errorf("n=0: [%f, %f]", lo, hi)
	}
	// Interval brackets the point estimate and stays within [0, 100].
	cases := []struct{ k, n int }{{0, 10}, {10, 10}, {3, 10}, {50, 300}, {1, 4000}}
	for _, c := range cases {
		lo, hi := Wilson95(c.k, c.n)
		p := 100 * float64(c.k) / float64(c.n)
		if lo < 0 || hi > 100 || lo > hi {
			t.Errorf("(%d/%d): degenerate interval [%f, %f]", c.k, c.n, lo, hi)
		}
		if p < lo-1e-9 || p > hi+1e-9 {
			t.Errorf("(%d/%d): point %f outside [%f, %f]", c.k, c.n, p, lo, hi)
		}
	}
	// Larger n tightens the interval for the same proportion.
	lo1, hi1 := Wilson95(3, 10)
	lo2, hi2 := Wilson95(300, 1000)
	if hi2-lo2 >= hi1-lo1 {
		t.Errorf("interval did not tighten: n=10 width %f, n=1000 width %f", hi1-lo1, hi2-lo2)
	}
	// A known reference: 50% at n=100 gives roughly [40.4, 59.6].
	lo, hi := Wilson95(50, 100)
	if lo < 39 || lo > 41 || hi < 59 || hi > 61 {
		t.Errorf("50/100: [%f, %f], want ≈[40.4, 59.6]", lo, hi)
	}
}

func TestPropagationCrossPctAndRender(t *testing.T) {
	var empty Propagation
	if empty.CrossPct() != 0 {
		t.Error("empty propagation should report 0%")
	}
	results := []inject.Result{
		{Outcome: inject.OCrash, Target: inject.Target{Campaign: inject.CampCode, Func: "memcpy"}, CrashFunc: "memcpy"},
		{Outcome: inject.OCrash, Target: inject.Target{Campaign: inject.CampCode, Func: "memcpy"}, CrashFunc: "alloc_skb"},
		{Outcome: inject.OCrash, Target: inject.Target{Campaign: inject.CampCode, Func: "memcpy"}, CrashFunc: "csum_partial"},
		{Outcome: inject.OCrash, Target: inject.Target{Campaign: inject.CampCode, Func: "getblk"}, CrashFunc: "spin_lock"},
	}
	p := Propagate(results)
	if p.Crashes != 4 || p.SameFunction != 1 || p.SameSubsystem != 1 || p.CrossSubsystem != 2 {
		t.Fatalf("propagation = %+v", p)
	}
	if got := p.CrossPct(); got != 50 {
		t.Errorf("CrossPct = %f", got)
	}
	out := p.Render()
	for _, want := range []string{"lib→net", "fs→lock", "top cross-subsystem paths"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestLatencyBucketBoundariesProperty(t *testing.T) {
	// Property: every crash lands in exactly the bucket whose half-open
	// range [prev, bound) holds its latency — "<3k" literally means
	// cycles < 3000, so a boundary value belongs to the NEXT bucket.
	prop := func(raw uint32, scaleSel uint8) bool {
		lat := uint64(raw) << (scaleSel % 24) // spread over all 8 buckets
		h := Latencies([]inject.Result{{
			Outcome: inject.OCrash, Latency: lat,
		}})
		if h.Total != 1 {
			return false
		}
		idx := 0
		for idx < len(LatencyBuckets) && lat >= LatencyBuckets[idx] {
			idx++
		}
		return h.Buckets[idx] == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	// Exact boundaries: the bound itself opens the next bucket.
	for i, b := range LatencyBuckets {
		h := Latencies([]inject.Result{{Outcome: inject.OCrash, Latency: b - 1}})
		if h.Buckets[i] != 1 {
			t.Errorf("latency %d (bucket %s) landed elsewhere: %v", b-1, BucketLabels[i], h.Buckets)
		}
		h = Latencies([]inject.Result{{Outcome: inject.OCrash, Latency: b}})
		if h.Buckets[i+1] != 1 {
			t.Errorf("latency %d should open %s: %v", b, BucketLabels[i+1], h.Buckets)
		}
	}
}

func TestJSONLPreservesBurstAndForensics(t *testing.T) {
	in := []inject.Result{{
		Outcome:   inject.OCrash,
		Activated: true,
		Cause:     isa.CauseIllegalInstr,
		Latency:   4242,
		CrashPC:   0x10204,
		CrashFunc: "getblk",
		Target: inject.Target{
			Campaign: inject.CampCode,
			Addr:     0x10200,
			ByteOff:  2,
			Bit:      5,
			Burst:    4,
			Func:     "getblk",
		},
	}}
	var buf bytes.Buffer
	if err := WriteResults(&buf, isa.RISC, inject.CampCode, in); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
	got := recs[0].Result
	if got.Target.Burst != 4 || got.Target.ByteOff != 2 || got.CrashFunc != "getblk" ||
		got.Latency != 4242 || got.Cause != isa.CauseIllegalInstr {
		t.Errorf("round trip lost fields: %+v", got)
	}
}
