package stats

import (
	"fmt"
	"math"
	"strings"

	"kfi/internal/inject"
	"kfi/internal/isa"
)

// PaperRow is one campaign row of the paper's Table 5 or 6. Percentages are
// relative to activated errors (or all injections for system registers,
// where ActivatedPct is NaN).
type PaperRow struct {
	Injected         int
	ActivatedPct     float64 // NaN = not observable (system registers)
	NotManifestedPct float64
	FSVPct           float64
	CrashPct         float64
	HangPct          float64
}

var nan = math.NaN()

// PaperTable holds the paper's Tables 5 and 6.
var PaperTable = map[isa.Platform]map[inject.Campaign]PaperRow{
	isa.CISC: {
		inject.CampStack:  {10143, 29.3, 43.9, 0.0, 38.2, 17.9},
		inject.CampSysReg: {3866, nan, 89.5, 0.0, 7.9, 2.6},
		inject.CampData:   {46000, 0.5, 34.1, 0.0, 42.5, 23.4},
		inject.CampCode:   {1790, 54.9, 31.4, 1.3, 46.3, 21.0},
	},
	isa.RISC: {
		inject.CampStack:  {3017, 39.9, 78.9, 0.0, 14.3, 7.0},
		inject.CampSysReg: {3967, nan, 95.1, 0.0, 1.7, 3.1},
		inject.CampData:   {46000, 1.5, 78.3, 1.0, 7.8, 12.9},
		inject.CampCode:   {2188, 64.7, 41.0, 2.3, 40.7, 16.0},
	},
}

// PaperCauses holds the paper's crash-cause percentages: Figures 4/5
// (campaign 0 = overall) and Figures 6, 10, 11, 12 per campaign.
var PaperCauses = map[isa.Platform]map[inject.Campaign]map[isa.CrashCause]float64{
	isa.CISC: {
		0: { // Figure 4
			isa.CauseBadPaging: 43.2, isa.CauseNULLPointer: 27.5,
			isa.CauseInvalidInstr: 16.0, isa.CauseGeneralProtection: 12.1,
			isa.CauseInvalidTSS: 1.0, isa.CauseKernelPanic: 0.1,
			isa.CauseDivideError: 0.1, isa.CauseBoundsTrap: 0.1,
		},
		inject.CampStack: { // Figure 6
			isa.CauseBadPaging: 45.4, isa.CauseNULLPointer: 31.5,
			isa.CauseInvalidInstr: 15.9, isa.CauseGeneralProtection: 5.5,
			isa.CauseInvalidTSS: 1.0, isa.CauseKernelPanic: 0.4,
			isa.CauseDivideError: 0.2,
		},
		inject.CampSysReg: { // Figure 10
			isa.CauseBadPaging: 37.4, isa.CauseGeneralProtection: 35.1,
			isa.CauseNULLPointer: 18.4, isa.CauseInvalidInstr: 6.2,
			isa.CauseInvalidTSS: 3.0,
		},
		inject.CampCode: { // Figure 11
			isa.CauseBadPaging: 38.0, isa.CauseNULLPointer: 31.9,
			isa.CauseInvalidInstr: 24.2, isa.CauseGeneralProtection: 5.5,
			isa.CauseDivideError: 0.2,
		},
		inject.CampData: { // Figure 12
			isa.CauseBadPaging: 52.1, isa.CauseNULLPointer: 28.1,
			isa.CauseInvalidInstr: 17.7, isa.CauseGeneralProtection: 2.1,
		},
	},
	isa.RISC: {
		0: { // Figure 5
			isa.CauseBadArea: 66.9, isa.CauseIllegalInstr: 16.3,
			isa.CauseStackOverflow: 12.7, isa.CauseAlignment: 1.6,
			isa.CauseMachineCheck: 1.4, isa.CauseBusError: 0.7,
			isa.CauseBadTrap: 0.4, isa.CausePanic: 0.1,
		},
		inject.CampStack: { // Figure 6
			isa.CauseBadArea: 53.5, isa.CauseStackOverflow: 41.9,
			isa.CauseIllegalInstr: 2.9, isa.CauseAlignment: 1.2,
			isa.CauseMachineCheck: 0.6,
		},
		inject.CampSysReg: { // Figure 10
			isa.CauseBadArea: 75.4, isa.CauseIllegalInstr: 11.6,
			isa.CauseStackOverflow: 4.3, isa.CauseMachineCheck: 4.3,
			isa.CauseAlignment: 1.4, isa.CauseBusError: 1.4,
			isa.CauseBadTrap: 1.4,
		},
		inject.CampCode: { // Figure 11
			isa.CauseBadArea: 49.5, isa.CauseIllegalInstr: 41.5,
			isa.CauseStackOverflow: 4.7, isa.CauseAlignment: 1.9,
			isa.CauseBusError: 1.2, isa.CauseMachineCheck: 0.5,
			isa.CausePanic: 0.5, isa.CauseBadTrap: 0.2,
		},
		inject.CampData: { // Figure 12
			isa.CauseBadArea: 89.1, isa.CauseIllegalInstr: 9.1,
			isa.CauseAlignment: 1.8,
		},
	},
}

// CompareTableRow renders a measured campaign against the paper's row:
// "metric: paper% / measured%".
func CompareTableRow(p isa.Platform, camp inject.Campaign, c Counts) string {
	ref, ok := PaperTable[p][camp]
	if !ok {
		return ""
	}
	base := c.ActivatedBase()
	pct := func(n int) float64 {
		if base == 0 {
			return 0
		}
		return 100 * float64(n) / float64(base)
	}
	act := "N/A"
	if !math.IsNaN(ref.ActivatedPct) && c.Injected > 0 {
		act = fmt.Sprintf("%.1f/%.1f", ref.ActivatedPct, 100*float64(c.Activated)/float64(c.Injected))
	}
	return fmt.Sprintf("%-18s n=%d(paper %d)  act %s  nm %.1f/%.1f  fsv %.1f/%.1f  crash %.1f/%.1f  hang %.1f/%.1f",
		camp, c.Injected, ref.Injected, act,
		ref.NotManifestedPct, pct(c.NotManifested),
		ref.FSVPct, pct(c.FailSilence),
		ref.CrashPct, pct(c.Crash),
		ref.HangPct, pct(c.HangUnknown))
}

// CompareCauses renders a measured cause distribution against the paper's
// figure for the campaign (0 = overall), one line per cause.
func CompareCauses(p isa.Platform, camp inject.Campaign, d CauseDist) string {
	ref := PaperCauses[p][camp]
	if ref == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  %-26s %8s %9s\n", "cause", "paper", "measured")
	for _, cause := range isa.Causes(p) {
		rp, inRef := ref[cause]
		mp := d.Pct(cause)
		if !inRef && mp == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-26s %7.1f%% %8.1f%%\n", cause, rp, mp)
	}
	return b.String()
}
