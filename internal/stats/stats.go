// Package stats turns raw injection results into the paper's tables and
// figures: the activation/failure-distribution tables (Tables 5-6), the
// crash-cause distributions (Figures 4-6 and 10-12), and the cycles-to-crash
// histograms (Figure 16).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"kfi/internal/inject"
	"kfi/internal/isa"
)

// Counts summarizes one campaign the way Tables 5 and 6 do.
type Counts struct {
	Injected      int
	Activated     int
	ActivationNA  bool // system registers: activation cannot be observed
	NotActivated  int
	NotManifested int
	FailSilence   int
	Crash         int
	HangUnknown   int
	// Quarantined counts injections the harness set aside after exhausting
	// their supervised retry budget (a property of the measurement apparatus,
	// not of the guest — excluded from the paper's columns, reported
	// alongside them).
	Quarantined int
	// Detected counts injections a hardened guest's software fault detector
	// caught. Always zero for unhardened campaigns, so the paper-faithful
	// table columns are unchanged; hardened studies report it through the
	// coverage table (CoverageRow) instead.
	Detected int
}

// Summarize tallies campaign results.
func Summarize(results []inject.Result) Counts {
	var c Counts
	for _, r := range results {
		c.Add(r)
	}
	return c
}

// Add tallies one result — the streaming form of Summarize, used by
// consumers that account for outcomes as they arrive (the control plane's
// live campaign status) rather than over a finished slice.
func (c *Counts) Add(r inject.Result) {
	c.Injected++
	if !r.ActivationKnown {
		c.ActivationNA = true
	} else if r.Activated {
		c.Activated++
	}
	switch r.Outcome {
	case inject.ONotActivated:
		c.NotActivated++
	case inject.ONotManifested:
		c.NotManifested++
	case inject.OFailSilence:
		c.FailSilence++
	case inject.OCrash:
		c.Crash++
	case inject.OHangUnknown:
		c.HangUnknown++
	case inject.OQuarantined:
		c.Quarantined++
	case inject.ODetected:
		c.Detected++
	}
}

// Manifested returns how many injections visibly affected the system.
func (c Counts) Manifested() int { return c.FailSilence + c.Crash + c.HangUnknown }

// ActivatedBase returns the denominator used for the paper's percentage
// columns: activated errors when activation is observable, otherwise all
// injections. Quarantined experiments never produced an observable outcome,
// so they are excluded from the denominator either way (they are reported
// in the table footer instead).
func (c Counts) ActivatedBase() int {
	if c.ActivationNA {
		base := c.Injected - c.Quarantined
		if base <= 0 {
			base = 1
		}
		return base
	}
	base := c.Activated
	if base == 0 {
		base = 1
	}
	return base
}

func pct(n, base int) string {
	if base == 0 {
		base = 1
	}
	return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(base))
}

// TableRow renders one campaign as a Table 5/6-style row.
func (c Counts) TableRow(name string) string {
	act := fmt.Sprintf("%d(%s)", c.Activated, pct(c.Activated, c.Injected))
	if c.ActivationNA {
		act = "N/A"
	}
	base := c.ActivatedBase()
	return fmt.Sprintf("%-18s %8d  %14s  %14s  %12s  %14s  %14s",
		name, c.Injected, act,
		fmt.Sprintf("%d(%s)", c.NotManifested, pct(c.NotManifested, base)),
		fmt.Sprintf("%d(%s)", c.FailSilence, pct(c.FailSilence, base)),
		fmt.Sprintf("%d(%s)", c.Crash, pct(c.Crash, base)),
		fmt.Sprintf("%d(%s)", c.HangUnknown, pct(c.HangUnknown, base)))
}

// TableHeader renders the Table 5/6 column header.
func TableHeader() string {
	return fmt.Sprintf("%-18s %8s  %14s  %14s  %12s  %14s  %14s",
		"Campaign", "Injected", "Activated", "NotManifested", "FSV", "KnownCrash", "Hang/Unknown")
}

// CauseDist is a crash-cause distribution over known crashes.
type CauseDist struct {
	Total  int
	Counts map[isa.CrashCause]int
}

// CrashCauses tallies the known-crash causes (the figures' pie charts).
func CrashCauses(results []inject.Result) CauseDist {
	d := CauseDist{Counts: make(map[isa.CrashCause]int)}
	for _, r := range results {
		if r.Outcome == inject.OCrash {
			d.Counts[r.Cause]++
			d.Total++
		}
	}
	return d
}

// Merge combines distributions (for the overall Figures 4/5).
func (d CauseDist) Merge(o CauseDist) CauseDist {
	out := CauseDist{Counts: make(map[isa.CrashCause]int), Total: d.Total + o.Total}
	for k, v := range d.Counts {
		out.Counts[k] += v
	}
	for k, v := range o.Counts {
		out.Counts[k] += v
	}
	return out
}

// Pct returns a cause's share of known crashes.
func (d CauseDist) Pct(c isa.CrashCause) float64 {
	if d.Total == 0 {
		return 0
	}
	return 100 * float64(d.Counts[c]) / float64(d.Total)
}

// Render lists the distribution for a platform in descending order, like the
// paper's pie-chart labels.
func (d CauseDist) Render(platform isa.Platform) string {
	var b strings.Builder
	fmt.Fprintf(&b, "(Total %d)\n", d.Total)
	causes := isa.Causes(platform)
	sort.SliceStable(causes, func(i, j int) bool {
		return d.Counts[causes[i]] > d.Counts[causes[j]]
	})
	for _, c := range causes {
		if d.Counts[c] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-26s %5.1f%%  (%d)\n", c, d.Pct(c), d.Counts[c])
	}
	return b.String()
}

// InvalidMemoryPct returns the share the paper groups as "invalid memory
// access" (Bad Paging + NULL Pointer on the P4; Bad Area on the G4).
func (d CauseDist) InvalidMemoryPct(platform isa.Platform) float64 {
	var s float64
	for _, c := range isa.InvalidMemoryCauses(platform) {
		s += d.Pct(c)
	}
	return s
}

// LatencyBuckets are the Figure 16 cycle-count bucket upper bounds; the last
// bucket is unbounded (">1G").
var LatencyBuckets = []uint64{3_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000}

// BucketLabels name the Figure 16 buckets.
var BucketLabels = []string{"<3k", "3k-10k", "10k-100k", "100k-1M", "1M-10M", "10M-100M", "100M-1G", ">1G"}

// LatencyHist is a cycles-to-crash histogram over known crashes.
type LatencyHist struct {
	Buckets [8]int
	Total   int
}

// Latencies builds the Figure 16 histogram for a campaign.
func Latencies(results []inject.Result) LatencyHist {
	var h LatencyHist
	for _, r := range results {
		if r.Outcome != inject.OCrash {
			continue
		}
		h.Add(r.Latency)
	}
	return h
}

// Add records one crash latency.
func (h *LatencyHist) Add(cycles uint64) {
	i := 0
	for i < len(LatencyBuckets) && cycles >= LatencyBuckets[i] {
		i++
	}
	h.Buckets[i]++
	h.Total++
}

// Pct returns bucket i's share.
func (h LatencyHist) Pct(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return 100 * float64(h.Buckets[i]) / float64(h.Total)
}

// CumulativePct returns the share of crashes at or below bucket i.
func (h LatencyHist) CumulativePct(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	n := 0
	for j := 0; j <= i; j++ {
		n += h.Buckets[j]
	}
	return 100 * float64(n) / float64(h.Total)
}

// Render prints the histogram as Figure 16-style rows.
func (h LatencyHist) Render() string {
	var b strings.Builder
	for i, label := range BucketLabels {
		fmt.Fprintf(&b, "  %-9s %5.1f%%  (%d)\n", label, h.Pct(i), h.Buckets[i])
	}
	return b.String()
}

// ByRegister tallies crash counts per injected system register (the paper's
// "only 15 G4 / 7 P4 registers contribute" observation).
func ByRegister(results []inject.Result) map[string]int {
	out := make(map[string]int)
	for _, r := range results {
		if r.Target.Campaign != inject.CampSysReg {
			continue
		}
		if r.Outcome == inject.OCrash || r.Outcome == inject.OHangUnknown {
			out[r.Target.RegName]++
		}
	}
	return out
}

// Wilson95 returns the 95% Wilson score interval for k successes out of n
// trials, as percentages. The paper reports raw percentages from campaigns
// of very different sizes (hundreds of activated stack errors versus tens of
// data crashes); the interval makes the sampling error of a reproduction at
// 2% of the paper's scale explicit.
func Wilson95(k, n int) (lo, hi float64) {
	if n == 0 {
		return 0, 0
	}
	const z = 1.96
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf))
	lo, hi = 100*(center-half), 100*(center+half)
	if lo < 0 {
		lo = 0
	}
	if hi > 100 {
		hi = 100
	}
	return lo, hi
}
