package stats

import (
	"fmt"
	"strings"

	"kfi/internal/inject"
	"kfi/internal/staticsense"
)

// ConfusionRow is one predicted-class row of the predicted-vs-observed
// matrix, with observed outcomes grouped the way the soundness argument
// cares about them: skipped (synthesized, never executed), not activated,
// not manifested, manifested (fail silence + crash + hang), quarantined.
type ConfusionRow struct {
	Class         string `json:"class"`
	Skipped       int    `json:"skipped"`
	NotActivated  int    `json:"not_activated"`
	NotManifested int    `json:"not_manifested"`
	Manifested    int    `json:"manifested"`
	Quarantined   int    `json:"quarantined"`
}

// Total is the row's experiment count.
func (r ConfusionRow) Total() int {
	return r.Skipped + r.NotActivated + r.NotManifested + r.Manifested + r.Quarantined
}

// Confusion cross-tabulates the static analyzer's predictions against
// observed campaign outcomes — the validation table for the pre-pass.
type Confusion struct {
	// Annotated counts results carrying a static prediction; results from
	// campaigns (or target kinds) the analyzer does not cover are ignored.
	Annotated int `json:"annotated"`
	// Rows lists the non-empty predicted classes in lattice order.
	Rows []ConfusionRow `json:"rows"`
	// Violations counts soundness failures: flips predicted inert that were
	// actually executed (not skipped) and manifested anyway. The analyzer
	// is sound iff this is zero.
	Violations int `json:"violations"`
}

// Confuse builds the predicted-vs-observed confusion matrix from annotated
// campaign results. Results without a prediction contribute nothing.
func Confuse(results []inject.Result) Confusion {
	byClass := map[string]*ConfusionRow{}
	c := Confusion{}
	for _, r := range results {
		if r.PredClass == "" {
			continue
		}
		c.Annotated++
		row := byClass[r.PredClass]
		if row == nil {
			row = &ConfusionRow{Class: r.PredClass}
			byClass[r.PredClass] = row
		}
		manifested := false
		switch {
		case r.PredSkipped:
			row.Skipped++
		case r.Outcome == inject.ONotActivated:
			row.NotActivated++
		case r.Outcome == inject.ONotManifested:
			row.NotManifested++
		case r.Outcome == inject.OQuarantined:
			row.Quarantined++
		default:
			row.Manifested++
			manifested = true
		}
		if r.PredInert && !r.PredSkipped && manifested {
			c.Violations++
		}
	}
	for _, cl := range staticsense.Classes() {
		if row := byClass[cl.String()]; row != nil {
			c.Rows = append(c.Rows, *row)
		}
	}
	return c
}

// Render formats the confusion matrix as an aligned table.
func (c Confusion) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Predicted vs observed (annotated: %d)\n", c.Annotated)
	fmt.Fprintf(&b, "  %-16s %8s %8s %8s %8s %8s %8s\n",
		"predicted", "total", "skipped", "not-act", "not-man", "manifest", "quar")
	for _, r := range c.Rows {
		fmt.Fprintf(&b, "  %-16s %8d %8d %8d %8d %8d %8d\n",
			r.Class, r.Total(), r.Skipped, r.NotActivated, r.NotManifested, r.Manifested, r.Quarantined)
	}
	fmt.Fprintf(&b, "  predicted-inert soundness violations: %d\n", c.Violations)
	return b.String()
}
