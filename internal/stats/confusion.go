package stats

import (
	"fmt"
	"sort"
	"strings"

	"kfi/internal/inject"
	"kfi/internal/staticsense"
)

// ConfusionRow is one predicted-class row of the predicted-vs-observed
// matrix, with observed outcomes grouped the way the soundness argument
// cares about them: skipped (synthesized, never executed), not activated,
// not manifested, manifested (fail silence + crash + hang), quarantined.
type ConfusionRow struct {
	Class         string `json:"class"`
	Skipped       int    `json:"skipped"`
	NotActivated  int    `json:"not_activated"`
	NotManifested int    `json:"not_manifested"`
	Manifested    int    `json:"manifested"`
	Quarantined   int    `json:"quarantined"`
}

// Total is the row's experiment count.
func (r ConfusionRow) Total() int {
	return r.Skipped + r.NotActivated + r.NotManifested + r.Manifested + r.Quarantined
}

// Confusion cross-tabulates the static analyzer's predictions against
// observed campaign outcomes — the validation table for the pre-pass.
type Confusion struct {
	// Annotated counts results carrying a static prediction; results from
	// campaigns (or target kinds) the analyzer does not cover are ignored.
	Annotated int `json:"annotated"`
	// Rows lists the non-empty predicted classes in lattice order.
	Rows []ConfusionRow `json:"rows"`
	// Violations counts soundness failures: flips predicted inert that were
	// actually executed (not skipped) and manifested anyway. The analyzer
	// is sound iff this is zero.
	Violations int `json:"violations"`
	// Cached counts results carrying the section-cache membership marker
	// (inject.Result.PredCached) — rows an incremental re-run may satisfy
	// from the per-section outcome cache. Counted across all results, not
	// just annotated ones.
	Cached int `json:"cached,omitempty"`
}

// Confuse builds the predicted-vs-observed confusion matrix from annotated
// campaign results. Results without a prediction contribute nothing.
func Confuse(results []inject.Result) Confusion {
	byClass := map[string]*ConfusionRow{}
	c := Confusion{}
	for _, r := range results {
		if r.PredCached {
			c.Cached++
		}
		if r.PredClass == "" {
			continue
		}
		c.Annotated++
		row := byClass[r.PredClass]
		if row == nil {
			row = &ConfusionRow{Class: r.PredClass}
			byClass[r.PredClass] = row
		}
		manifested := false
		switch {
		case r.PredSkipped:
			row.Skipped++
		case r.Outcome == inject.ONotActivated:
			row.NotActivated++
		case r.Outcome == inject.ONotManifested:
			row.NotManifested++
		case r.Outcome == inject.OQuarantined:
			row.Quarantined++
		default:
			row.Manifested++
			manifested = true
		}
		if r.PredInert && !r.PredSkipped && manifested {
			c.Violations++
		}
	}
	for _, cl := range staticsense.Classes() {
		if row := byClass[cl.String()]; row != nil {
			c.Rows = append(c.Rows, *row)
		}
	}
	return c
}

// Render formats the confusion matrix as an aligned table. The header
// mentions cached rows only when the campaign ran with the section cache,
// so pre-cache renderings stay byte-identical.
func (c Confusion) Render() string {
	var b strings.Builder
	if c.Cached > 0 {
		fmt.Fprintf(&b, "Predicted vs observed (annotated: %d, cached rows: %d)\n", c.Annotated, c.Cached)
	} else {
		fmt.Fprintf(&b, "Predicted vs observed (annotated: %d)\n", c.Annotated)
	}
	fmt.Fprintf(&b, "  %-16s %8s %8s %8s %8s %8s %8s\n",
		"predicted", "total", "skipped", "not-act", "not-man", "manifest", "quar")
	for _, r := range c.Rows {
		fmt.Fprintf(&b, "  %-16s %8d %8d %8d %8d %8d %8d\n",
			r.Class, r.Total(), r.Skipped, r.NotActivated, r.NotManifested, r.Manifested, r.Quarantined)
	}
	fmt.Fprintf(&b, "  predicted-inert soundness violations: %d\n", c.Violations)
	return b.String()
}

// TargetConfusion is one injected target kind's confusion matrix — the
// per-target breakdown of a result set that mixes campaigns (or the single
// row of one campaign's results).
type TargetConfusion struct {
	Target string `json:"target"`
	Confusion
}

// ConfuseByTarget splits results by injected target kind (stack, system
// registers, data, code — the campaign of each result's target) and builds
// one confusion matrix per kind, in the paper's campaign order. Kinds with
// no annotated and no cached results are omitted.
func ConfuseByTarget(results []inject.Result) []TargetConfusion {
	byCamp := map[inject.Campaign][]inject.Result{}
	for _, r := range results {
		byCamp[r.Target.Campaign] = append(byCamp[r.Target.Campaign], r)
	}
	var out []TargetConfusion
	for _, camp := range []inject.Campaign{
		inject.CampStack, inject.CampSysReg, inject.CampData, inject.CampCode,
	} {
		rs := byCamp[camp]
		if len(rs) == 0 {
			continue
		}
		conf := Confuse(rs)
		if conf.Annotated == 0 && conf.Cached == 0 {
			continue
		}
		out = append(out, TargetConfusion{Target: camp.String(), Confusion: conf})
	}
	return out
}

// RenderByTarget formats the per-target breakdown as compact rows under the
// full matrix: one line per target kind with its annotated, inert-predicted,
// skipped, cached, and violation counts.
func RenderByTarget(ts []TargetConfusion) string {
	if len(ts) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  %-18s %9s %8s %8s %8s %10s\n",
		"target", "annotated", "inert", "skipped", "cached", "violations")
	for _, t := range ts {
		inert, skipped := 0, 0
		for _, r := range t.Rows {
			skipped += r.Skipped
		}
		for _, r := range t.Rows {
			if cl, ok := classByName(r.Class); ok && cl.Inert() {
				inert += r.Total()
			}
		}
		fmt.Fprintf(&b, "  %-18s %9d %8d %8d %8d %10d\n",
			t.Target, t.Annotated, inert, skipped, t.Cached, t.Violations)
	}
	return b.String()
}

// classByName resolves a rendered class name back to its lattice constant.
func classByName(name string) (staticsense.Class, bool) {
	for _, cl := range staticsense.Classes() {
		if cl.String() == name {
			return cl, true
		}
	}
	return 0, false
}

// CachedSections lists the distinct kernel functions (code sections) whose
// rows carry the section-cache membership marker, sorted — the labels an
// incremental report uses to show which sections a re-run can satisfy from
// the cache. Non-code cached rows contribute the catch-all "_image" label.
func CachedSections(results []inject.Result) []string {
	seen := map[string]bool{}
	for _, r := range results {
		if !r.PredCached {
			continue
		}
		name := "_image"
		if r.Target.Campaign == inject.CampCode && r.Target.Func != "" {
			name = r.Target.Func
		}
		seen[name] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
