package mem

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func newTestMem() *Memory {
	m := New(1<<20, binary.LittleEndian)
	m.Map(0x1000, 0x4000, Present|Writable)
	m.Map(0x8000, 0x1000, Present) // read-only
	return m
}

func TestNewRoundsToPages(t *testing.T) {
	m := New(PageSize+1, binary.BigEndian)
	if m.Size() != 2*PageSize {
		t.Errorf("Size() = %d, want %d", m.Size(), 2*PageSize)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		size uint32
		val  uint32
	}{
		{"byte", 1, 0xab},
		{"half", 2, 0xbeef},
		{"word", 4, 0xdeadbeef},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := newTestMem()
			if f := m.Write(0x1100, tt.size, tt.val, false); f != nil {
				t.Fatalf("Write: %v", f)
			}
			got, f := m.Read(0x1100, tt.size, false)
			if f != nil {
				t.Fatalf("Read: %v", f)
			}
			if got != tt.val {
				t.Errorf("round trip = 0x%x, want 0x%x", got, tt.val)
			}
		})
	}
}

func TestByteOrder(t *testing.T) {
	le := New(1<<16, binary.LittleEndian)
	le.Map(0x1000, 0x1000, Present|Writable)
	be := New(1<<16, binary.BigEndian)
	be.Map(0x1000, 0x1000, Present|Writable)

	if f := le.Write(0x1000, 4, 0x11223344, false); f != nil {
		t.Fatal(f)
	}
	if f := be.Write(0x1000, 4, 0x11223344, false); f != nil {
		t.Fatal(f)
	}
	if got := le.RawRead(0x1000, 1); got != 0x44 {
		t.Errorf("little-endian first byte = 0x%x, want 0x44", got)
	}
	if got := be.RawRead(0x1000, 1); got != 0x11 {
		t.Errorf("big-endian first byte = 0x%x, want 0x11", got)
	}
}

func TestFaultClassification(t *testing.T) {
	m := newTestMem()
	tests := []struct {
		name  string
		addr  uint32
		write bool
		want  FaultKind
	}{
		{"null read", 0x10, false, FaultNull},
		{"null write", 0xffc, true, FaultNull},
		{"unmapped", 0x7000, false, FaultUnmapped},
		{"read-only write", 0x8000, true, FaultProtection},
		{"beyond physical", 0x7fffffff, false, FaultUnmapped},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var f *Fault
			if tt.write {
				f = m.Write(tt.addr, 4, 0, false)
			} else {
				_, f = m.Read(tt.addr, 4, false)
			}
			if f == nil {
				t.Fatal("expected fault, got none")
			}
			if f.Kind != tt.want {
				t.Errorf("fault kind = %v, want %v", f.Kind, tt.want)
			}
			if f.Write != tt.write {
				t.Errorf("fault write = %v, want %v", f.Write, tt.write)
			}
		})
	}
}

func TestUserModeProtection(t *testing.T) {
	m := New(1<<16, binary.LittleEndian)
	m.Map(0x1000, 0x1000, Present|Writable) // kernel-only
	m.Map(0x2000, 0x1000, Present|Writable|UserOK)

	if _, f := m.Read(0x1000, 4, true); f == nil || f.Kind != FaultProtection {
		t.Errorf("user read of kernel page: fault = %v, want protection", f)
	}
	if _, f := m.Read(0x2000, 4, true); f != nil {
		t.Errorf("user read of user page faulted: %v", f)
	}
	if _, f := m.Read(0x1000, 4, false); f != nil {
		t.Errorf("kernel read of kernel page faulted: %v", f)
	}
}

func TestMapNullPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mapping the NULL page did not panic")
		}
	}()
	m := New(1<<16, binary.LittleEndian)
	m.Map(0, PageSize, Present)
}

func TestFetch(t *testing.T) {
	m := newTestMem()
	m.RawWrite(0x1000, 4, 0x01020304)
	b, f := m.Fetch(0x1000, 4, false)
	if f != nil {
		t.Fatalf("Fetch: %v", f)
	}
	if len(b) != 4 {
		t.Fatalf("Fetch returned %d bytes, want 4", len(b))
	}
	if _, f := m.Fetch(0x7000, 4, false); f == nil {
		t.Error("Fetch from unmapped page did not fault")
	}
}

func TestFlipBit(t *testing.T) {
	m := newTestMem()
	m.RawWrite(0x1000, 1, 0b0100)
	old := m.FlipBit(0x1000, 2)
	if old != 0b0100 {
		t.Errorf("FlipBit returned old=0x%x, want 0x4", old)
	}
	if got := m.RawRead(0x1000, 1); got != 0 {
		t.Errorf("after flip, byte = 0x%x, want 0", got)
	}
	m.FlipBit(0x1000, 2)
	if got := m.RawRead(0x1000, 1); got != 0b0100 {
		t.Errorf("double flip is not identity: 0x%x", got)
	}
}

func TestFlipBitOutOfRange(t *testing.T) {
	m := newTestMem()
	if got := m.FlipBit(0xffffffff, 0); got != 0 {
		t.Errorf("out-of-range FlipBit returned 0x%x, want 0", got)
	}
}

func TestSealReboot(t *testing.T) {
	m := newTestMem()
	m.RawWrite(0x1234, 4, 0xcafe)
	m.Seal()
	m.RawWrite(0x1234, 4, 0x1111)
	m.RawWrite(0x2000, 4, 0x2222)
	m.Reboot()
	if got := m.RawRead(0x1234, 4); got != 0xcafe {
		t.Errorf("after reboot, word = 0x%x, want 0xcafe", got)
	}
	if got := m.RawRead(0x2000, 4); got != 0 {
		t.Errorf("after reboot, scribbled word = 0x%x, want 0", got)
	}
}

func TestRebootBeforeSealPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Reboot before Seal did not panic")
		}
	}()
	newTestMem().Reboot()
}

func TestRegions(t *testing.T) {
	m := newTestMem()
	m.AddRegion(Region{Name: "text", Kind: KindCode, Start: 0x1000, End: 0x2000})
	m.AddRegion(Region{Name: "data", Kind: KindData, Start: 0x2000, End: 0x3000})
	m.AddRegion(Region{Name: "stack0", Kind: KindStack, Start: 0x3000, End: 0x4000})

	if r, ok := m.RegionAt(0x1fff); !ok || r.Name != "text" {
		t.Errorf("RegionAt(0x1fff) = %v %v, want text", r, ok)
	}
	if _, ok := m.RegionAt(0x9000); ok {
		t.Error("RegionAt(0x9000) found a region in a gap")
	}
	if r, ok := m.RegionByName("data"); !ok || r.Kind != KindData {
		t.Errorf("RegionByName(data) = %v %v", r, ok)
	}
	if got := m.Regions(KindStack); len(got) != 1 || got[0].Name != "stack0" {
		t.Errorf("Regions(KindStack) = %v", got)
	}
	if got := m.Regions(); len(got) != 3 {
		t.Errorf("Regions() = %d entries, want 3", len(got))
	}
}

func TestRegionOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("overlapping region did not panic")
		}
	}()
	m := newTestMem()
	m.AddRegion(Region{Name: "a", Kind: KindData, Start: 0x1000, End: 0x2000})
	m.AddRegion(Region{Name: "b", Kind: KindData, Start: 0x1800, End: 0x2800})
}

func TestEmptyRegionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty region did not panic")
		}
	}()
	newTestMem().AddRegion(Region{Name: "e", Start: 5, End: 5})
}

// Property: raw write then raw read round-trips for any in-range address and
// any value, at every access size, independent of protection flags.
func TestRawRoundTripProperty(t *testing.T) {
	m := New(1<<18, binary.BigEndian)
	f := func(addr uint32, val uint32, sizeSel uint8) bool {
		size := []uint32{1, 2, 4}[sizeSel%3]
		addr %= m.Size() - 4
		m.RawWrite(addr, size, val)
		got := m.RawRead(addr, size)
		mask := uint32(0xffffffff)
		if size == 1 {
			mask = 0xff
		} else if size == 2 {
			mask = 0xffff
		}
		return got == val&mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a double bit flip restores the original byte everywhere.
func TestFlipBitInvolutionProperty(t *testing.T) {
	m := New(1<<16, binary.LittleEndian)
	f := func(addr uint32, bit uint8, val byte) bool {
		addr %= m.Size()
		m.RawWrite(addr, 1, uint32(val))
		m.FlipBit(addr, uint(bit))
		m.FlipBit(addr, uint(bit))
		return byte(m.RawRead(addr, 1)) == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: checked Read never succeeds on an unmapped page and never
// reports FaultBus for in-range addresses.
func TestCheckedReadProperty(t *testing.T) {
	m := newTestMem()
	f := func(addr uint32) bool {
		addr %= m.Size() - 4
		v, fault := m.Read(addr, 4, false)
		mapped := m.flags[addr/PageSize]&Present != 0 && m.flags[(addr+3)/PageSize]&Present != 0
		if mapped {
			return fault == nil && v == m.RawRead(addr, 4)
		}
		return fault != nil && fault.Kind != FaultBus
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{Kind: FaultNull, Addr: 0x8, Size: 4, Write: true}
	want := "memory fault: null write of 4 bytes at 0x00000008"
	if got := f.Error(); got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
}
