package mem

// Edge-case tests for the checked-access layer: bus windows, fill mapping,
// raw accessors, and the descriptive helpers the tools print.

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestSetBusWindowClassification(t *testing.T) {
	m := New(1<<20, binary.LittleEndian)
	m.SetBusWindow(0xF0000000, 0xF8000000)

	if _, f := m.Read(0xF0000000, 4, false); f == nil || f.Kind != FaultBus {
		t.Errorf("window start: %+v, want bus fault", f)
	}
	if _, f := m.Read(0xF7FFFFFC, 4, false); f == nil || f.Kind != FaultBus {
		t.Errorf("last word in window: %+v, want bus fault", f)
	}
	// One past the window: an ordinary unmapped fault, not a machine check.
	if _, f := m.Read(0xF8000000, 4, false); f == nil || f.Kind != FaultUnmapped {
		t.Errorf("past window: %+v, want unmapped", f)
	}
	if _, f := m.Read(0xEFFFFFF0, 4, false); f == nil || f.Kind != FaultUnmapped {
		t.Errorf("before window: %+v, want unmapped", f)
	}
	// Writes inside the window are bus faults too.
	if f := m.Write(0xF4000000, 4, 1, false); f == nil || f.Kind != FaultBus {
		t.Errorf("write in window: %+v, want bus fault", f)
	}
}

func TestBusWindowDisabledByDefault(t *testing.T) {
	m := New(1<<20, binary.LittleEndian)
	if _, f := m.Read(0xF4000000, 4, false); f == nil || f.Kind != FaultUnmapped {
		t.Errorf("no window configured: %+v, want unmapped", f)
	}
}

func TestMapFillPreservesExistingMappings(t *testing.T) {
	m := New(1<<20, binary.LittleEndian)
	// A read-only code page inside the fill range must keep its protection.
	m.Map(0x4000, PageSize, Present)
	m.MapFill(0, 0x10000, Present|Writable)

	if f := m.Write(0x4000, 4, 1, false); f == nil || f.Kind != FaultProtection {
		t.Errorf("fill overwrote a read-only mapping: %+v", f)
	}
	// Previously-unmapped pages become writable.
	if f := m.Write(0x8000, 4, 1, false); f != nil {
		t.Errorf("filled page not writable: %+v", f)
	}
	// The NULL page range stays unmapped even when the fill starts at 0.
	if _, f := m.Read(0x10, 4, false); f == nil || f.Kind != FaultNull {
		t.Errorf("fill mapped the NULL page: %+v", f)
	}
}

func TestCheckAgreesWithReadWrite(t *testing.T) {
	m := New(1<<20, binary.BigEndian)
	m.Map(0x4000, PageSize, Present) // read-only
	m.Map(0x5000, PageSize, Present|Writable)
	m.SetBusWindow(0xF0000000, 0xF8000000)

	// Property: Check(addr) and the actual access report identical faults.
	f := func(addr uint32, szSel uint8, write bool) bool {
		size := []uint32{1, 2, 4}[szSel%3]
		want := m.Check(addr, size, write, false)
		var got *Fault
		if write {
			got = m.Write(addr, size, 0xAB, false)
		} else {
			_, got = m.Read(addr, size, false)
		}
		if (want == nil) != (got == nil) {
			return false
		}
		if want != nil && (want.Kind != got.Kind || want.Addr != got.Addr) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRawBytesAliasing(t *testing.T) {
	m := New(1<<20, binary.LittleEndian)
	b := m.RawBytes(0x100, 8)
	if b == nil {
		t.Fatal("in-range RawBytes returned nil")
	}
	b[0] = 0xAA
	if got := m.RawRead(0x100, 1); got != 0xAA {
		t.Errorf("RawBytes does not alias RAM: read 0x%X", got)
	}
	if m.RawBytes(uint32(1<<20)-4, 8) != nil {
		t.Error("out-of-range RawBytes should be nil")
	}
	if m.RawBytes(0xFFFFFFFF, 8) != nil {
		t.Error("wrapping RawBytes should be nil")
	}
}

func TestRawReadWriteOutOfRange(t *testing.T) {
	m := New(1<<20, binary.LittleEndian)
	if got := m.RawRead(uint32(1<<20)-2, 4); got != 0 {
		t.Errorf("out-of-range RawRead = 0x%X", got)
	}
	m.RawWrite(uint32(1<<20)-2, 4, 0xDEAD) // must not panic or write
	if got := m.RawRead(uint32(1<<20)-4, 2); got != 0 {
		t.Errorf("truncated RawWrite leaked bytes: 0x%X", got)
	}
	// Wrapping address arithmetic is rejected, not wrapped.
	m.RawWrite(0xFFFFFFFE, 4, 0xBEEF)
	if got := m.RawRead(0, 2); got != 0 {
		t.Errorf("wrapping RawWrite hit low memory: 0x%X", got)
	}
}

func TestOrderReflectsConstruction(t *testing.T) {
	if m := New(1<<16, binary.BigEndian); m.Order() != binary.BigEndian {
		t.Error("big-endian machine reports wrong order")
	}
	if m := New(1<<16, binary.LittleEndian); m.Order() != binary.LittleEndian {
		t.Error("little-endian machine reports wrong order")
	}
}

func TestFaultKindStrings(t *testing.T) {
	cases := map[FaultKind]string{
		FaultNull:       "null",
		FaultUnmapped:   "unmapped",
		FaultProtection: "protection",
		FaultBus:        "bus",
		FaultKind(99):   "FaultKind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestRegionKindStringsAndSize(t *testing.T) {
	names := map[RegionKind]string{
		KindCode: "code", KindData: "data", KindBSS: "bss",
		KindStack: "stack", KindHeap: "heap", KindUser: "user",
		KindDevice: "device", RegionKind(42): "RegionKind(42)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q", int(k), got)
		}
	}
	r := Region{Name: "x", Start: 0x1000, End: 0x1800}
	if r.Size() != 0x800 {
		t.Errorf("Size = 0x%X", r.Size())
	}
	if !r.Contains(0x1000) || r.Contains(0x1800) {
		t.Error("Contains must be half-open [Start, End)")
	}
}
