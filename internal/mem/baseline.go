package mem

import "math/bits"

// Copy-on-write-style restore baselines.
//
// A baseline is a full RAM image registered with the memory so that restoring
// back to it costs O(dirty pages) instead of O(memory size): once a baseline
// is armed, every write path marks the pages it touches in a dirty bitmap,
// and RestoreBaseline copies back only those pages. SyncBaseline goes the
// other way — it advances the baseline to the current RAM contents, again
// touching only dirty pages — which is what lets the campaign scheduler chain
// incremental checkpoints along the golden run. This is the memory half of
// the snapshot subsystem (see internal/snapshot); CPU state is captured
// separately.

// SetBaseline arms image as the restore baseline. The image must be exactly
// the RAM size; SetBaseline panics otherwise (a snapshot from a different
// machine configuration). When synced is true the image is promised to equal
// the current RAM contents and the dirty bitmap starts empty; otherwise every
// page starts dirty, so the first RestoreBaseline performs a full copy and
// subsequent ones are incremental.
//
// The memory retains (aliases) image: the caller must not mutate it while the
// baseline is armed, except through SyncBaseline.
func (m *Memory) SetBaseline(image []byte, synced bool) {
	if len(image) != len(m.ram) {
		panic("mem: baseline image size mismatch")
	}
	m.baseline = image
	pages := (len(m.ram) + PageSize - 1) / PageSize
	m.dirty = make([]uint64, (pages+63)/64)
	if !synced {
		m.markAllDirty()
	}
}

// Baseline returns the armed baseline image (nil when none is armed). The
// snapshot layer uses pointer identity on this slice to recognize that its
// own image is the armed baseline.
func (m *Memory) Baseline() []byte { return m.baseline }

// ClearBaseline disarms baseline tracking; write paths stop paying the
// dirty-marking cost.
func (m *Memory) ClearBaseline() {
	m.baseline = nil
	m.dirty = nil
}

// RestoreBaseline copies every dirty page of the baseline back into RAM and
// clears the dirty bitmap, returning the number of pages copied. It panics
// when no baseline is armed.
func (m *Memory) RestoreBaseline() int {
	if m.baseline == nil {
		panic("mem: RestoreBaseline without a baseline")
	}
	return m.forEachDirtyPage(func(off int) {
		copy(m.ram[off:off+PageSize], m.baseline[off:off+PageSize])
		m.gens[off/PageSize]++
	})
}

// SyncBaseline advances the baseline to the current RAM contents by copying
// every dirty page from RAM into the baseline image, clearing the dirty
// bitmap. It returns the number of pages copied and panics when no baseline
// is armed. This is the incremental re-checkpoint primitive.
func (m *Memory) SyncBaseline() int {
	if m.baseline == nil {
		panic("mem: SyncBaseline without a baseline")
	}
	return m.forEachDirtyPage(func(off int) {
		copy(m.baseline[off:off+PageSize], m.ram[off:off+PageSize])
	})
}

// DirtyPages returns the number of pages currently marked dirty.
func (m *Memory) DirtyPages() int {
	n := 0
	m.visitDirty(func(int) { n++ })
	return n
}

// Pristine returns the sealed boot image (nil before Seal). Callers must not
// mutate it; the snapshot layer hashes it to identify the golden prefix a
// machine will execute.
func (m *Memory) Pristine() []byte { return m.pristine }

// forEachDirtyPage runs fn for each dirty page's byte offset, clears the
// bitmap, and returns the page count.
func (m *Memory) forEachDirtyPage(fn func(off int)) int {
	n := 0
	m.visitDirty(func(page int) {
		fn(page * PageSize)
		n++
	})
	for i := range m.dirty {
		m.dirty[i] = 0
	}
	return n
}

// visitDirty calls fn with each dirty page index, skipping bits beyond the
// last real page (markAllDirty sets whole words).
func (m *Memory) visitDirty(fn func(page int)) {
	pages := len(m.ram) / PageSize
	for wi, w := range m.dirty {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			w &^= 1 << bit
			page := wi*64 + bit
			if page < pages {
				fn(page)
			}
		}
	}
}

func (m *Memory) markAllDirty() {
	for i := range m.dirty {
		m.dirty[i] = ^uint64(0)
	}
}

// touch marks every page overlapping [addr, addr+size) dirty. Callers have
// already bounds-checked the access; out-of-range bytes are clipped anyway so
// a stale caller cannot corrupt the bitmap.
func (m *Memory) touch(addr, size uint32) {
	if m.dirty == nil || size == 0 {
		return
	}
	end := addr + size - 1
	if end < addr || end >= uint32(len(m.ram)) {
		end = uint32(len(m.ram)) - 1
	}
	for p := addr / PageSize; p <= end/PageSize; p++ {
		m.dirty[p>>6] |= 1 << (p & 63)
	}
}
