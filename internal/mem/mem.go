// Package mem implements the physical memory and page-protection model shared
// by both simulated machines: a flat RAM image, page-granular present/writable
// flags (the MMU), a named region map (kernel code, data, per-process kernel
// stacks, user space), and raw host-side access paths used by the loader and
// the fault injector.
//
// Address-space conventions follow the paper's target kernels: page 0 is never
// mapped, so accesses below 4 KiB classify as NULL-pointer dereferences;
// accesses to unmapped pages are "bad paging" (P4) or "bad area" (G4);
// accesses beyond physical memory are bus/machine-check errors.
package mem

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the MMU page granularity.
const PageSize = 4096

// NullLimit is the exclusive upper bound of the never-mapped NULL page range.
// Faulting accesses below this limit classify as NULL-pointer dereferences.
const NullLimit = PageSize

// Flags describe the protection state of one page.
type Flags uint8

// Page protection flags.
const (
	// Present marks the page as mapped; absent pages fault on any access.
	Present Flags = 1 << iota
	// Writable permits stores; reads are always allowed on present pages.
	Writable
	// UserOK permits user-mode access; kernel-only pages fault in user mode.
	UserOK
)

// FaultKind classifies a failed memory access. The execution engines map
// these onto platform crash causes (NULL pointer / bad paging / general
// protection on the CISC machine; bad area / machine check on the RISC one).
type FaultKind int

// Fault kinds.
const (
	// FaultNull is an access within the never-mapped NULL page range.
	FaultNull FaultKind = iota + 1
	// FaultUnmapped is an access to a non-present page.
	FaultUnmapped
	// FaultProtection is a store to a read-only page or a user-mode access
	// to a kernel-only page.
	FaultProtection
	// FaultBus is an access beyond physical memory (processor-local bus).
	FaultBus
)

// String returns the fault-kind name.
func (k FaultKind) String() string {
	switch k {
	case FaultNull:
		return "null"
	case FaultUnmapped:
		return "unmapped"
	case FaultProtection:
		return "protection"
	case FaultBus:
		return "bus"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault describes a failed memory access.
type Fault struct {
	Kind  FaultKind
	Addr  uint32
	Size  uint32
	Write bool
}

// Error implements the error interface.
func (f *Fault) Error() string {
	op := "read"
	if f.Write {
		op = "write"
	}
	return fmt.Sprintf("memory fault: %s %s of %d bytes at 0x%08x", f.Kind, op, f.Size, f.Addr)
}

// Memory is the physical memory of one simulated machine plus its page
// protection table. The zero value is unusable; construct with New.
type Memory struct {
	ram      []byte
	pristine []byte // boot-time image for fast reboot
	flags    []Flags
	order    binary.ByteOrder
	regions  []Region

	// busLo/busHi delimit an unclaimed bus window: accesses inside it hang
	// the bus and machine-check. Everything else beyond RAM is merely
	// unmapped. Both zero disables the window.
	busLo, busHi uint32

	// baseline/dirty implement the copy-on-write restore baseline used by
	// the snapshot subsystem (see baseline.go). dirty is a page bitmap; both
	// are nil when no baseline is armed.
	baseline []byte
	dirty    []uint64

	// gens holds the per-page write-generation counters (see gen.go). Unlike
	// the dirty bitmap they are always on and never reset: the predecode
	// caches in the execution engines depend on them for invalidation.
	gens []uint64
}

// New creates a memory of the given size (rounded up to a whole number of
// pages) with the given byte order. All pages start unmapped.
func New(size uint32, order binary.ByteOrder) *Memory {
	pages := (size + PageSize - 1) / PageSize
	size = pages * PageSize
	return &Memory{
		ram:   make([]byte, size),
		flags: make([]Flags, pages),
		gens:  make([]uint64, pages),
		order: order,
	}
}

// SetBusWindow configures the unclaimed bus window [lo, hi): accesses there
// raise bus errors (machine checks on the G4); all other beyond-RAM accesses
// fault as unmapped pages. This models a processor-local bus where only a
// narrow unclaimed region hangs, as on the paper's G4 (machine checks are a
// small fraction of its crashes).
func (m *Memory) SetBusWindow(lo, hi uint32) {
	m.busLo, m.busHi = lo, hi
	// The window changes which fetches fault, so cached per-page
	// fetchability answers must be revalidated.
	m.bumpAllGens()
}

// Size returns the physical memory size in bytes.
func (m *Memory) Size() uint32 { return uint32(len(m.ram)) }

// Order returns the machine byte order.
func (m *Memory) Order() binary.ByteOrder { return m.order }

// Map sets the protection flags for all pages overlapping [start, start+size).
// The NULL page range is never mappable: Map panics if asked to map it, since
// that would silently break the fault taxonomy.
func (m *Memory) Map(start, size uint32, f Flags) {
	if start < NullLimit && f&Present != 0 {
		panic("mem: attempt to map the NULL page range")
	}
	first := start / PageSize
	last := (start + size + PageSize - 1) / PageSize
	for p := first; p < last && p < uint32(len(m.flags)); p++ {
		m.flags[p] = f
		m.gens[p]++
	}
}

// MapFill maps every still-unmapped page overlapping [start, start+size)
// with the given flags, leaving already-configured pages untouched. The
// kernel uses it to create the linear RAM map around its named sections.
func (m *Memory) MapFill(start, size uint32, f Flags) {
	first := start / PageSize
	if first == 0 {
		first = 1 // the NULL page stays unmapped
	}
	last := (start + size + PageSize - 1) / PageSize
	for p := first; p < last && p < uint32(len(m.flags)); p++ {
		if m.flags[p] == 0 {
			m.flags[p] = f
			m.gens[p]++
		}
	}
}

// check validates an access and returns a fault or nil. user selects the
// user-mode permission check.
func (m *Memory) check(addr, size uint32, write, user bool) *Fault {
	end := addr + size
	if m.busHi > m.busLo && addr >= m.busLo && addr < m.busHi {
		return &Fault{Kind: FaultBus, Addr: addr, Size: size, Write: write}
	}
	if end < addr || end > uint32(len(m.ram)) {
		return &Fault{Kind: FaultUnmapped, Addr: addr, Size: size, Write: write}
	}
	// All our accesses are at most 4 bytes and the engines enforce natural
	// alignment or split accesses, so one page check suffices except when an
	// access straddles a boundary; check both pages in that rare case.
	for p := addr / PageSize; p <= (end-1)/PageSize; p++ {
		f := m.flags[p]
		if f&Present == 0 {
			kind := FaultUnmapped
			if addr < NullLimit {
				kind = FaultNull
			}
			return &Fault{Kind: kind, Addr: addr, Size: size, Write: write}
		}
		if write && f&Writable == 0 {
			return &Fault{Kind: FaultProtection, Addr: addr, Size: size, Write: write}
		}
		if user && f&UserOK == 0 {
			return &Fault{Kind: FaultProtection, Addr: addr, Size: size, Write: write}
		}
	}
	return nil
}

// Check validates an access without performing it, returning the fault that
// Read/Write would report. Execution engines use it to order translation
// faults ahead of alignment checks, as the hardware does.
func (m *Memory) Check(addr, size uint32, write, user bool) *Fault {
	return m.check(addr, size, write, user)
}

// Read performs a checked load of size 1, 2, or 4 bytes in machine byte
// order. user selects user-mode permission checking.
func (m *Memory) Read(addr, size uint32, user bool) (uint32, *Fault) {
	if f := m.check(addr, size, false, user); f != nil {
		return 0, f
	}
	return m.rawRead(addr, size), nil
}

// Write performs a checked store of size 1, 2, or 4 bytes in machine byte
// order.
func (m *Memory) Write(addr, size, val uint32, user bool) *Fault {
	if f := m.check(addr, size, true, user); f != nil {
		return f
	}
	m.rawWrite(addr, size, val)
	return nil
}

// Fetch performs a checked instruction fetch of n bytes starting at addr and
// returns a slice aliasing the RAM image (callers must not retain it across
// writes). Execution from any present page is permitted, as on the paper's
// targets, so corrupted control flow can land in data.
func (m *Memory) Fetch(addr, n uint32, user bool) ([]byte, *Fault) {
	if f := m.check(addr, n, false, user); f != nil {
		return nil, f
	}
	return m.ram[addr : addr+n], nil
}

func (m *Memory) rawRead(addr, size uint32) uint32 {
	switch size {
	case 1:
		return uint32(m.ram[addr])
	case 2:
		return uint32(m.order.Uint16(m.ram[addr:]))
	default:
		return m.order.Uint32(m.ram[addr:])
	}
}

func (m *Memory) rawWrite(addr, size, val uint32) {
	m.touch(addr, size)
	m.bumpGen(addr, size)
	switch size {
	case 1:
		m.ram[addr] = byte(val)
	case 2:
		m.order.PutUint16(m.ram[addr:], uint16(val))
	default:
		m.order.PutUint32(m.ram[addr:], val)
	}
}

// RawRead reads without protection checks (host/loader/injector path).
// It returns 0 for out-of-range addresses.
func (m *Memory) RawRead(addr, size uint32) uint32 {
	if addr+size > uint32(len(m.ram)) || addr+size < addr {
		return 0
	}
	return m.rawRead(addr, size)
}

// RawWrite writes without protection checks (host/loader/injector path).
// Out-of-range writes are ignored.
func (m *Memory) RawWrite(addr, size, val uint32) {
	if addr+size > uint32(len(m.ram)) || addr+size < addr {
		return
	}
	m.rawWrite(addr, size, val)
}

// RawBytes returns a slice aliasing [addr, addr+n) without checks, or nil if
// out of range. The range is conservatively marked dirty for baseline
// tracking, since the caller may write through the alias.
func (m *Memory) RawBytes(addr, n uint32) []byte {
	if addr+n > uint32(len(m.ram)) || addr+n < addr {
		return nil
	}
	m.touch(addr, n)
	m.bumpGen(addr, n)
	return m.ram[addr : addr+n]
}

// PeekBytes returns a read-only slice aliasing [addr, addr+n) without checks,
// without dirtying baselines, and without bumping write generations, or nil
// if out of range. Callers must not write through it: it exists for consumers
// that only decode from RAM — the basic-block translators, which would
// otherwise invalidate the very page they are translating.
func (m *Memory) PeekBytes(addr, n uint32) []byte {
	if addr+n > uint32(len(m.ram)) || addr+n < addr {
		return nil
	}
	return m.ram[addr : addr+n]
}

// FlipBit flips bit (0..7) of the byte at addr, emulating a single-bit
// transient error, and returns the previous byte value. Out-of-range flips
// are ignored and return 0.
func (m *Memory) FlipBit(addr uint32, bit uint) byte {
	if addr >= uint32(len(m.ram)) {
		return 0
	}
	m.touch(addr, 1)
	m.bumpGen(addr, 1)
	old := m.ram[addr]
	m.ram[addr] = old ^ (1 << (bit & 7))
	return old
}

// Seal records the current RAM contents as the pristine boot image used by
// Reboot. The machine calls it once after loading the kernel and workload.
func (m *Memory) Seal() {
	m.pristine = make([]byte, len(m.ram))
	copy(m.pristine, m.ram)
}

// Reboot restores the pristine boot image recorded by Seal. Page flags and
// regions are retained (they are part of the boot configuration). The whole
// image changes, so any armed baseline sees every page as dirty.
func (m *Memory) Reboot() {
	if m.pristine == nil {
		panic("mem: Reboot before Seal")
	}
	m.markAllDirty()
	m.bumpAllGens()
	copy(m.ram, m.pristine)
}
