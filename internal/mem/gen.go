package mem

// Per-page write-generation counters.
//
// Every path that can change what an instruction fetch from a page would
// observe — data writes, raw host writes, injected bit flips, baseline
// restores, reboots, and page-protection changes — advances that page's
// generation. The counters are monotone and never reset, so a consumer that
// recorded a page's generation can later detect *any* intervening mutation
// with one compare. The decoded-instruction caches in internal/cisc and
// internal/risc are the consumers: they revalidate a page's predecoded
// contents against its generation on every step, which is what keeps a bit
// flip injected into kernel code (including a CISC flip that re-synchronizes
// the variable-length stream into a different valid instruction sequence)
// observable exactly as in an uncached interpreter.

// PageGen returns the write-generation counter of the given page index.
// It panics for out-of-range pages; callers index pages they have already
// validated against the RAM size.
func (m *Memory) PageGen(page uint32) uint64 { return m.gens[page] }

// PageFetchable reports whether a 1-byte instruction fetch would succeed at
// *every* address of the given page in the given mode. It is false when the
// unclaimed bus window overlaps the page, since then no single answer covers
// the whole page. The result is valid until the page's generation changes:
// every path that alters protection flags or the bus window bumps
// generations.
func (m *Memory) PageFetchable(page uint32, user bool) bool {
	base := page * PageSize
	if m.busHi > m.busLo && base < m.busHi && base+PageSize > m.busLo {
		return false
	}
	return m.check(base, 1, false, user) == nil
}

// bumpGen advances the generation of every page overlapping [addr, addr+size).
// Same clipping discipline as touch: callers have bounds-checked the access.
func (m *Memory) bumpGen(addr, size uint32) {
	if size == 0 {
		return
	}
	end := addr + size - 1
	if end < addr || end >= uint32(len(m.ram)) {
		end = uint32(len(m.ram)) - 1
	}
	for p := addr / PageSize; p <= end/PageSize; p++ {
		m.gens[p]++
	}
}

// bumpAllGens advances every page's generation (reboot, bus-window change).
func (m *Memory) bumpAllGens() {
	for i := range m.gens {
		m.gens[i]++
	}
}
