package mem

import (
	"encoding/binary"
	"testing"
)

// The emulator hot loop calls Fetch/Read/Write once or more per simulated
// instruction; a single heap allocation on any of these paths would dominate
// campaign time. These tests pin the zero-allocation property.

func newAllocMem(t testing.TB) *Memory {
	t.Helper()
	m := New(1<<16, binary.LittleEndian)
	m.Map(NullLimit, 1<<16-NullLimit, Present|Writable)
	return m
}

func TestFetchNoAlloc(t *testing.T) {
	m := newAllocMem(t)
	var sink []byte
	if n := testing.AllocsPerRun(1000, func() {
		sink, _ = m.Fetch(0x1234, 9, false)
	}); n != 0 {
		t.Fatalf("Fetch allocates %v times per call, want 0", n)
	}
	_ = sink
}

func TestReadWriteNoAlloc(t *testing.T) {
	m := newAllocMem(t)
	var sink uint32
	if n := testing.AllocsPerRun(1000, func() {
		m.Write(0x2000, 4, 0xDEADBEEF, false)
		sink, _ = m.Read(0x2000, 4, false)
	}); n != 0 {
		t.Fatalf("Read+Write allocate %v times per call, want 0", n)
	}
	_ = sink
}

// TestWriteNoAllocBaselineArmed covers the campaign configuration: dirty-page
// tracking and generation bumps active on every store.
func TestWriteNoAllocBaselineArmed(t *testing.T) {
	m := newAllocMem(t)
	img := make([]byte, m.Size())
	m.SetBaseline(img, true)
	defer m.ClearBaseline()
	if n := testing.AllocsPerRun(1000, func() {
		m.Write(0x3000, 4, 0xCAFEF00D, false)
		m.Write(0x3004, 1, 0x42, false)
	}); n != 0 {
		t.Fatalf("baseline-armed Write allocates %v times per call, want 0", n)
	}
}

func TestFlipBitNoAlloc(t *testing.T) {
	m := newAllocMem(t)
	if n := testing.AllocsPerRun(1000, func() {
		m.FlipBit(0x4000, 3)
	}); n != 0 {
		t.Fatalf("FlipBit allocates %v times per call, want 0", n)
	}
}
