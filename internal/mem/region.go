package mem

import "fmt"

// RegionKind classifies a named address-space region. The injection campaigns
// draw their targets from these regions: code injections from KindCode, data
// injections from KindData and KindBSS, and stack injections from the
// KindStack region of a randomly chosen kernel process.
type RegionKind int

// Region kinds.
const (
	// KindCode is the kernel text section.
	KindCode RegionKind = iota + 1
	// KindData is the initialized kernel data section.
	KindData
	// KindBSS is the uninitialized kernel data section.
	KindBSS
	// KindStack is one kernel process stack.
	KindStack
	// KindHeap is the kernel dynamic-allocation arena (page allocator pool).
	KindHeap
	// KindUser is user-space text/data/stack for workload programs.
	KindUser
	// KindDevice is memory-mapped device space (NIC ring, watchdog port).
	KindDevice
)

// String returns the region-kind name.
func (k RegionKind) String() string {
	switch k {
	case KindCode:
		return "code"
	case KindData:
		return "data"
	case KindBSS:
		return "bss"
	case KindStack:
		return "stack"
	case KindHeap:
		return "heap"
	case KindUser:
		return "user"
	case KindDevice:
		return "device"
	default:
		return fmt.Sprintf("RegionKind(%d)", int(k))
	}
}

// Region is a named half-open address range [Start, End).
type Region struct {
	Name  string
	Kind  RegionKind
	Start uint32
	End   uint32
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint32) bool { return addr >= r.Start && addr < r.End }

// Size returns the region length in bytes.
func (r Region) Size() uint32 { return r.End - r.Start }

// AddRegion records a named region. Regions may not overlap; AddRegion
// panics on overlap since that indicates a broken memory layout.
func (m *Memory) AddRegion(r Region) {
	if r.End <= r.Start {
		panic(fmt.Sprintf("mem: empty region %q", r.Name))
	}
	for _, ex := range m.regions {
		if r.Start < ex.End && ex.Start < r.End {
			panic(fmt.Sprintf("mem: region %q overlaps %q", r.Name, ex.Name))
		}
	}
	m.regions = append(m.regions, r)
}

// RegionAt returns the region containing addr, if any.
func (m *Memory) RegionAt(addr uint32) (Region, bool) {
	for _, r := range m.regions {
		if r.Contains(addr) {
			return r, true
		}
	}
	return Region{}, false
}

// RegionByName returns the region with the given name, if any.
func (m *Memory) RegionByName(name string) (Region, bool) {
	for _, r := range m.regions {
		if r.Name == name {
			return r, true
		}
	}
	return Region{}, false
}

// Regions returns a copy of all regions of the given kinds (or all regions if
// no kinds are given).
func (m *Memory) Regions(kinds ...RegionKind) []Region {
	var out []Region
	for _, r := range m.regions {
		if len(kinds) == 0 {
			out = append(out, r)
			continue
		}
		for _, k := range kinds {
			if r.Kind == k {
				out = append(out, r)
				break
			}
		}
	}
	return out
}
