package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"os"
	"path/filepath"
	"reflect"
	"sort"

	"kfi/internal/inject"
	"kfi/internal/kernel"
)

// The per-section outcome cache decomposes a campaign's outcome table the
// way FastFlip decomposes a fault-injection result set: by the program
// section a flip lands in. Code targets belong to the kernel function that
// contains them; every other campaign's targets form one whole-image
// section (their outcomes depend on the entire image, not a code range).
// Each section's completed rows are persisted under a key that fingerprints
// everything those rows are a function of:
//
//   - the campaign identity (platform, campaign, N, seed, burst, golden
//     checksum) and the sense/prune options, because both change the rows'
//     bytes;
//   - the traced golden run (cycle count, checksum, and the full first-hit
//     trace), standing in for whole-image behavior;
//   - the section's own compiled bytes (a code section's byte range, or the
//     whole code+data image for the catch-all section);
//   - the section's exact target list, trigger cycles included, so a
//     reachability change re-executes even a byte-identical section.
//
// A re-run in which nothing changed hits on every section and reproduces
// the cold run's table and journal byte-for-byte (every row carries
// PredCached in both runs — the marker records cache membership, not a
// hit). A run with one modified section misses only on that section's key
// and re-injects only its targets.
//
// The residual approximation, documented in DESIGN.md §17: the golden trace
// fingerprints fault-free behavior only. A modification that leaves the
// golden trace bit-identical but changes code another section's faulty runs
// can wander into is invisible to the other sections' keys. Inert
// (semantics-preserving) modifications are sound by construction; for
// anything larger, delete the cache directory.

// seccacheMagic names the section file format; bump on incompatible change.
const seccacheMagic = "KFISEC1"

// sectionHeader is the first frame of a section file.
type sectionHeader struct {
	Magic string `json:"magic"`
	Name  string `json:"name"`
	Key   string `json:"key"`
	Rows  int    `json:"rows"`
}

// section is one cache unit: a named group of target indices and the
// content key its persisted rows are filed under.
type section struct {
	name string
	idxs []int
	key  string
}

// sectionSet is the campaign's section decomposition plus the cache
// directory. A nil *sectionSet (caching off) is valid and inert.
type sectionSet struct {
	dir     string
	targets []inject.Target
	secs    []section
	hit     []bool
	onSec   func(name string, hit bool)
}

// openSectionCache decomposes the target list into sections and computes
// their content keys. Returns nil (inert) when caching is off.
func openSectionCache(sys *kernel.System, golden uint32, spec Spec,
	targets []inject.Target, sched *schedule, opts ExecOptions) (*sectionSet, error) {
	if opts.SectionCache == "" {
		return nil, nil
	}
	if sched.golden == nil {
		return nil, fmt.Errorf("campaign: section cache requires a traced golden run")
	}
	byName := map[string][]int{}
	var names []string
	for i, t := range targets {
		name := "_image"
		if t.Campaign == inject.CampCode {
			if name = t.Func; name == "" {
				name = "_code"
			}
		}
		if _, ok := byName[name]; !ok {
			names = append(names, name)
		}
		byName[name] = append(byName[name], i)
	}
	sort.Strings(names)
	base := newSectionHasher(sys, golden, spec, sched.golden, opts)
	ss := &sectionSet{dir: opts.SectionCache, targets: targets,
		secs: make([]section, 0, len(names)), hit: make([]bool, len(names)), onSec: opts.onSection}
	for _, name := range names {
		idxs := byName[name]
		key, err := base.sectionKey(sys, sched.golden, name, idxs, targets)
		if err != nil {
			return nil, err
		}
		ss.secs = append(ss.secs, section{name: name, idxs: idxs, key: key})
	}
	return ss, nil
}

// sectionHasher is the campaign-wide key prefix shared by every section:
// identity, options, and the golden-trace fingerprint.
type sectionHasher struct {
	prefix []byte
}

func newSectionHasher(sys *kernel.System, golden uint32, spec Spec,
	tr *goldenTrace, opts ExecOptions) *sectionHasher {
	h := sha256.New()
	fmt.Fprintf(h, "%s\nplatform %v\ncampaign %d n %d seed %d burst %d golden %08x\n",
		seccacheMagic, sys.Platform, spec.Campaign, spec.N, spec.Seed, spec.Burst, golden)
	fmt.Fprintf(h, "sense %v prune %v\n", opts.Sense, opts.Prune)
	fmt.Fprintf(h, "trace cycles %d checksum %08x hits %s\n",
		tr.cycles, tr.checksum, traceFingerprint(tr))
	return &sectionHasher{prefix: h.Sum(nil)}
}

// traceFingerprint hashes the golden run's full first-hit trace in a
// deterministic (PC-sorted) order.
func traceFingerprint(tr *goldenTrace) string {
	pcs := make([]uint32, 0, len(tr.firstHit))
	for pc := range tr.firstHit {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(a, b int) bool { return pcs[a] < pcs[b] })
	h := sha256.New()
	for _, pc := range pcs {
		fmt.Fprintf(h, "%08x %d\n", pc, tr.firstHit[pc])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// sectionKey extends the campaign prefix with the section's name, compiled
// bytes, and exact target rows (triggers included).
func (sh *sectionHasher) sectionKey(sys *kernel.System, tr *goldenTrace,
	name string, idxs []int, targets []inject.Target) (string, error) {
	h := sha256.New()
	h.Write(sh.prefix)
	fmt.Fprintf(h, "section %s\n", name)
	if err := writeSectionBytes(h, sys, name); err != nil {
		return "", err
	}
	for _, idx := range idxs {
		t := targets[idx]
		tj, err := json.Marshal(t)
		if err != nil {
			return "", err
		}
		trig, reached := uint64(0), false
		if t.Campaign == inject.CampCode {
			trig, reached = tr.firstHit[t.Addr], true
			if _, ok := tr.firstHit[t.Addr]; !ok {
				reached = false
			}
		}
		fmt.Fprintf(h, "target %d trig %d reached %v %s\n", idx, trig, reached, tj)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// writeSectionBytes feeds a section's compiled content into the key hash: a
// code section contributes its function's byte range, the whole-image
// section contributes the complete code and data images.
func writeSectionBytes(h hash.Hash, sys *kernel.System, name string) error {
	img := sys.KernelImage
	if name == "_image" {
		fmt.Fprintf(h, "image code %08x data %08x bss %08x+%d\n",
			img.CodeBase, img.DataBase, img.BSSBase, img.BSSSize)
		h.Write(img.Code)
		h.Write(img.Data)
		return nil
	}
	for _, fn := range img.Funcs {
		if fn.Name != name {
			continue
		}
		if fn.Start < img.CodeBase || uint64(fn.End-img.CodeBase) > uint64(len(img.Code)) || fn.End < fn.Start {
			return fmt.Errorf("campaign: section %q has an out-of-image range", name)
		}
		fmt.Fprintf(h, "func %08x-%08x\n", fn.Start, fn.End)
		h.Write(img.Code[fn.Start-img.CodeBase : fn.End-img.CodeBase])
		return nil
	}
	return fmt.Errorf("campaign: section %q is not a kernel function", name)
}

func (ss *sectionSet) path(sec *section) string {
	return filepath.Join(ss.dir, sec.key+".ksec")
}

// restore satisfies every section whose key is present and intact in the
// cache directory: its rows are written into the result table, marked in
// the skip mask, and completed (journaled) exactly as executed rows are.
// Rows already satisfied by a journal resume are left alone.
func (ss *sectionSet) restore(rec *recorder, skip []bool) error {
	if ss == nil {
		return nil
	}
	for si := range ss.secs {
		sec := &ss.secs[si]
		rows, ok := ss.load(sec)
		if ss.onSec != nil {
			ss.onSec(sec.name, ok)
		}
		if !ok {
			continue
		}
		ss.hit[si] = true
		for _, idx := range sec.idxs {
			if skip[idx] {
				continue
			}
			rec.results[idx] = rows[idx]
			skip[idx] = true
			if err := rec.complete(idx, true); err != nil {
				return err
			}
		}
	}
	return nil
}

// load reads and validates one section file. Any damage — a missing file, a
// torn frame, a row count or index set that does not match the section, a
// target that differs from the campaign's — reads as a miss, never an
// error: the cache is an optimization, and a cold execution is always
// correct.
func (ss *sectionSet) load(sec *section) (map[int]inject.Result, bool) {
	f, err := os.Open(ss.path(sec))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	fr := NewFrameReader(f)
	hp, ok := fr.Next()
	if !ok {
		return nil, false
	}
	var sh sectionHeader
	if err := json.Unmarshal(hp, &sh); err != nil ||
		sh.Magic != seccacheMagic || sh.Name != sec.name || sh.Key != sec.key || sh.Rows != len(sec.idxs) {
		return nil, false
	}
	member := make(map[int]bool, len(sec.idxs))
	for _, idx := range sec.idxs {
		member[idx] = true
	}
	rows := make(map[int]inject.Result, len(sec.idxs))
	for {
		payload, ok := fr.Next()
		if !ok {
			break
		}
		idx, res, err := DecodeRecord(payload)
		if err != nil || !member[idx] {
			return nil, false
		}
		if _, dup := rows[idx]; dup {
			return nil, false
		}
		if !reflect.DeepEqual(res.Target, ss.targets[idx]) {
			return nil, false
		}
		rows[idx] = res
	}
	if len(rows) != len(sec.idxs) {
		return nil, false
	}
	return rows, true
}

// store persists every section the cache missed on, now that its rows are
// complete. Sections holding quarantined rows are never cached — quarantine
// reflects harness supervision, not the injected fault, and must be
// re-attempted, not replayed. Files land via create-temp-then-rename so a
// crash mid-store can only leave a stray temp file, never a torn section.
func (ss *sectionSet) store(results []inject.Result) error {
	if ss == nil {
		return nil
	}
	if err := os.MkdirAll(ss.dir, 0o755); err != nil {
		return fmt.Errorf("campaign: section cache: %w", err)
	}
	for si := range ss.secs {
		if ss.hit[si] {
			continue
		}
		sec := &ss.secs[si]
		flaky := false
		for _, idx := range sec.idxs {
			if results[idx].Outcome == inject.OQuarantined {
				flaky = true
				break
			}
		}
		if flaky {
			continue
		}
		if err := ss.writeSection(sec, results); err != nil {
			return err
		}
	}
	return nil
}

func (ss *sectionSet) writeSection(sec *section, results []inject.Result) error {
	hp, err := json.Marshal(sectionHeader{Magic: seccacheMagic, Name: sec.name,
		Key: sec.key, Rows: len(sec.idxs)})
	if err != nil {
		return err
	}
	out := Frame(hp)
	for _, idx := range sec.idxs {
		payload, err := EncodeRecord(idx, results[idx])
		if err != nil {
			return err
		}
		out = append(out, Frame(payload)...)
	}
	tmp, err := os.CreateTemp(ss.dir, "sec-*.tmp")
	if err != nil {
		return fmt.Errorf("campaign: section cache: %w", err)
	}
	if _, err := tmp.Write(out); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: section cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: section cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), ss.path(sec)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: section cache: %w", err)
	}
	return nil
}
