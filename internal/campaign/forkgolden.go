package campaign

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"kfi/internal/inject"
	"kfi/internal/kernel"
	"kfi/internal/machine"
	"kfi/internal/snapshot"
)

// ExecOptions select how a campaign executes its injections.
//
// The zero value is the fork-from-golden mode (the fast path): the golden
// prefix up to each injection's trigger point is executed once, checkpointed
// with internal/snapshot, and every experiment sharing that prefix is
// restore-inject-resumed in O(dirty pages). Outcomes are identical to replay
// mode — the restored state is cycle-exact — only wall-clock time changes.
type ExecOptions struct {
	// Replay forces the paper's literal procedure: reboot and replay from
	// boot for every injection (the reference mode the equivalence tests and
	// benchmarks compare against).
	Replay bool
	// SnapshotDir, when set, persists golden-prefix waypoint snapshots there
	// and reuses any compatible ones from earlier invocations (files are
	// keyed by a fingerprint of the platform, configuration, and boot image).
	SnapshotDir string
}

// RunWith is Run with explicit execution options.
func RunWith(sys *kernel.System, golden uint32, profile *Profile, spec Spec,
	progress func(done, total int), opts ExecOptions) (*Result, error) {
	gen := NewGenerator(sys, profile, spec.Seed, profileCycles(profile))
	targets, err := gen.Targets(spec)
	if err != nil {
		return nil, err
	}
	results := make([]inject.Result, len(targets))
	if opts.Replay {
		for i, t := range targets {
			results[i] = inject.RunOne(sys, t, golden)
			if progress != nil {
				progress(i+1, len(targets))
			}
		}
		return &Result{Spec: spec, Platform: sys.Platform, Results: results}, nil
	}

	done := 0
	tick := func(int) {
		done++
		if progress != nil {
			progress(done, len(targets))
		}
	}
	sched, err := buildSchedule(sys, targets)
	if err != nil {
		return nil, err
	}
	for i, r := range sched.pre {
		results[i] = r
		tick(i)
	}
	if err := runChunk(sys, golden, targets, sched.order, results, opts, tick); err != nil {
		return nil, err
	}
	return &Result{Spec: spec, Platform: sys.Platform, Results: results}, nil
}

// trigOrder pairs a target index with its trigger cycle (the golden-run cycle
// count just before the injection acts).
type trigOrder struct {
	trig uint64
	idx  int
}

// goldenTrace is one traced golden run: the first cycle at which each PC is
// about to execute, plus the run's length and checksum.
type goldenTrace struct {
	firstHit map[uint32]uint64
	cycles   uint64
	checksum uint32
}

// traceGolden runs the benchmark once with tracing and records, per PC, the
// cycle count just before its first execution — the exact cycle at which a
// code-injection breakpoint on that address would fire.
func traceGolden(sys *kernel.System) (*goldenTrace, error) {
	m := sys.Machine
	m.Reboot()
	clk := m.Core().Clock()
	first := make(map[uint32]uint64, 1<<14)
	m.Core().SetTrace(func(pc uint32, cost uint8) {
		if _, ok := first[pc]; !ok {
			// Trace reports after the clock advanced past the instruction.
			first[pc] = clk.Cycles() - uint64(cost)
		}
	})
	res := m.Run()
	m.Core().SetTrace(nil)
	if res.Outcome != machine.OutCompleted {
		return nil, fmt.Errorf("campaign: traced golden run did not complete: %v", res.Outcome)
	}
	return &goldenTrace{firstHit: first, cycles: res.Cycles, checksum: res.Checksum}, nil
}

// schedule is the fork-from-golden plan for one target set: the trigger-
// sorted execution order plus results synthesized without running anything
// (code targets whose instruction the golden run never executes — their
// breakpoint can never fire, so the run is the golden run).
type schedule struct {
	order []trigOrder
	pre   map[int]inject.Result
}

// buildSchedule computes each target's trigger cycle and sorts targets by
// it. Delay-triggered targets (stack, system registers) use their Delay;
// code targets use the first golden-run execution of their address;
// everything else injects at boot (trigger 0).
func buildSchedule(sys *kernel.System, targets []inject.Target) (*schedule, error) {
	var tr *goldenTrace
	for _, t := range targets {
		if t.Campaign == inject.CampCode {
			var err error
			if tr, err = traceGolden(sys); err != nil {
				return nil, err
			}
			break
		}
	}
	s := &schedule{order: make([]trigOrder, 0, len(targets)), pre: map[int]inject.Result{}}
	for i, t := range targets {
		switch {
		case t.Delay > 0:
			s.order = append(s.order, trigOrder{t.Delay, i})
		case t.Campaign == inject.CampCode:
			c, ok := tr.firstHit[t.Addr]
			if !ok {
				s.pre[i] = notActivatedResult(t, tr.cycles, tr.checksum)
				continue
			}
			s.order = append(s.order, trigOrder{c, i})
		default:
			s.order = append(s.order, trigOrder{0, i})
		}
	}
	sort.SliceStable(s.order, func(a, b int) bool { return s.order[a].trig < s.order[b].trig })
	return s, nil
}

// maxTrig returns the last (largest) trigger of a trigger-sorted order.
func maxTrig(order []trigOrder) uint64 {
	if len(order) == 0 {
		return 0
	}
	return order[len(order)-1].trig
}

// notActivatedResult mirrors RunOne's early return for an error that was
// never injected: the run is the golden run.
func notActivatedResult(t inject.Target, cycles uint64, checksum uint32) inject.Result {
	return inject.Result{Target: t, ActivationKnown: t.Campaign != inject.CampSysReg,
		Outcome: inject.ONotActivated, RunCycles: cycles, Checksum: checksum}
}

// chunkRunner executes trigger-sorted slices of a schedule on one system,
// chaining one incremental checkpoint along the golden prefix:
//
//	for each target (by ascending trigger):
//	    restore the checkpoint             — O(pages dirtied by the last run)
//	    advance golden to the trigger      — only forward, each cycle once
//	    re-checkpoint in place             — O(pages dirtied by the advance)
//	    inject and run to an outcome
//
// Because the machine's pause points are the deterministic loop-top cycle
// counts of the golden run, a checkpoint taken at the pause for trigger T is
// bit-identical to the state a from-boot replay pauses in for any trigger in
// (T, pause], and advancing from it reproduces the from-boot pause for later
// triggers. Outcomes therefore match replay mode exactly.
//
// The runner is stateful so a farm node can execute many chunks with one
// snapshot chain: as long as successive chunks carry non-decreasing triggers
// (the dynamic scheduler hands chunks out in global trigger order), the
// checkpoint only ever advances forward and the invariant above holds across
// chunk boundaries.
type chunkRunner struct {
	sys     *kernel.System
	golden  uint32
	targets []inject.Target
	opts    ExecOptions
	maxTrig uint64

	snap *snapshot.Snapshot
	way  *waypointStore
	// goldenEnd, once set, is the golden run's completion as observed from a
	// trigger beyond its end; every later trigger is also beyond the end.
	goldenEnd *machine.RunResult
}

// newChunkRunner prepares a runner; maxTrig is the schedule's largest trigger
// (it sizes the waypoint stride). The snapshot chain starts lazily on the
// first run call. Call close when done.
func newChunkRunner(sys *kernel.System, golden uint32, targets []inject.Target,
	opts ExecOptions, maxTrig uint64) *chunkRunner {
	return &chunkRunner{sys: sys, golden: golden, targets: targets, opts: opts, maxTrig: maxTrig}
}

func (r *chunkRunner) close() {
	if r.snap != nil {
		r.sys.Machine.Mem.ClearBaseline()
	}
}

// run executes one contiguous trigger-sorted slice of the schedule, writing
// each target's result to out[idx] and reporting completion via done.
func (r *chunkRunner) run(order []trigOrder, out []inject.Result, done func(idx int)) error {
	if len(order) == 0 {
		return nil
	}
	m := r.sys.Machine
	if r.snap == nil {
		if r.opts.SnapshotDir != "" {
			r.way = newWaypointStore(r.opts.SnapshotDir, snapshot.GoldenKey(m), r.maxTrig)
			r.snap = r.way.bestBefore(order[0].trig, m)
		}
		if r.snap == nil {
			m.Reboot()
			r.snap = snapshot.Capture(m)
		}
	}
	snap := r.snap
	for _, o := range order {
		t := r.targets[o.idx]
		if r.goldenEnd != nil && o.trig > snap.Cycles {
			out[o.idx] = notActivatedResult(t, r.goldenEnd.Cycles, r.goldenEnd.Checksum)
			done(o.idx)
			continue
		}
		if _, err := snap.Restore(m); err != nil {
			return err
		}
		if o.trig > snap.Cycles {
			m.PauseAt = o.trig
			pre := m.Run()
			if pre.Outcome != machine.OutPaused {
				// The benchmark finished before the trigger was reached: the
				// pre-generated error is never injected (RunOne's early
				// return), and so is every later, larger trigger.
				r.goldenEnd = &pre
				out[o.idx] = notActivatedResult(t, pre.Cycles, pre.Checksum)
				done(o.idx)
				continue
			}
			if _, err := snap.Recapture(m); err != nil {
				return err
			}
			if r.way != nil {
				r.way.maybeSave(snap)
			}
		}
		out[o.idx] = inject.RunFrom(r.sys, t, r.golden)
		done(o.idx)
	}
	return nil
}

// runChunk executes one slice as a standalone runner (the single-system
// path).
func runChunk(sys *kernel.System, golden uint32, targets []inject.Target,
	order []trigOrder, out []inject.Result, opts ExecOptions, done func(idx int)) error {
	if len(order) == 0 {
		return nil
	}
	r := newChunkRunner(sys, golden, targets, opts, order[len(order)-1].trig)
	defer r.close()
	return r.run(order, out, done)
}

// waypointStore persists golden-prefix checkpoints under a directory, keyed
// by the machine's golden fingerprint, for reuse across invocations.
type waypointStore struct {
	dir       string
	key       string
	stride    uint64
	lastSaved uint64
}

func newWaypointStore(dir, key string, maxTrig uint64) *waypointStore {
	stride := maxTrig / 6
	if stride < 250_000 {
		stride = 250_000
	}
	return &waypointStore{dir: dir, key: key, stride: stride}
}

func (w *waypointStore) path(cycles uint64) string {
	// Zero-padded so lexical directory order is cycle order.
	return filepath.Join(w.dir, fmt.Sprintf("%s-c%020d.ksnap", w.key, cycles))
}

// bestBefore loads the latest stored waypoint at or before trig and installs
// it on the machine (full-image restore; it becomes the armed baseline).
// Corrupt or mismatched files are skipped. Returns nil when none usable.
func (w *waypointStore) bestBefore(trig uint64, m *machine.Machine) *snapshot.Snapshot {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil
	}
	var best uint64
	found := false
	prefix := w.key + "-c"
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".ksnap") {
			continue
		}
		var c uint64
		if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".ksnap"), "%d", &c); err != nil {
			continue
		}
		if c <= trig && (!found || c > best) {
			best, found = c, true
		}
	}
	if !found {
		return nil
	}
	snap, err := snapshot.Load(w.path(best))
	if err != nil || snap.Cycles != best {
		return nil
	}
	if _, err := snap.Restore(m); err != nil {
		return nil
	}
	w.lastSaved = best
	return snap
}

// maybeSave persists the checkpoint when it advanced at least a stride past
// the last saved waypoint. Failures are ignored: persistence is an
// optimization, never a correctness dependency.
func (w *waypointStore) maybeSave(s *snapshot.Snapshot) {
	if s.Cycles < w.lastSaved+w.stride {
		return
	}
	if err := os.MkdirAll(w.dir, 0o755); err != nil {
		return
	}
	if err := s.Save(w.path(s.Cycles)); err == nil {
		w.lastSaved = s.Cycles
	}
}
