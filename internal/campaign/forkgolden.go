package campaign

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"kfi/internal/inject"
	"kfi/internal/kernel"
	"kfi/internal/machine"
	"kfi/internal/platform"
	"kfi/internal/snapshot"
)

// ExecOptions select how a campaign executes its injections.
//
// The zero value is the fork-from-golden mode (the fast path): the golden
// prefix up to each injection's trigger point is executed once, checkpointed
// with internal/snapshot, and every experiment sharing that prefix is
// restore-inject-resumed in O(dirty pages). Outcomes are identical to replay
// mode — the restored state is cycle-exact — only wall-clock time changes.
type ExecOptions struct {
	// Replay forces the paper's literal procedure: reboot and replay from
	// boot for every injection (the reference mode the equivalence tests and
	// benchmarks compare against).
	Replay bool
	// Engine selects the execution engine the guest runs on (step
	// interpreter, predecoded interpreter, or the basic-block translator —
	// see internal/platform.EngineKind). The zero value is the platform
	// default. Outcomes are engine-invariant — the equivalence tests pin
	// campaign tables and journals byte-identical across engines — so the
	// choice only changes wall-clock time.
	Engine platform.EngineKind

	// SnapshotDir, when set, persists golden-prefix waypoint snapshots there
	// and reuses any compatible ones from earlier invocations (files are
	// keyed by a fingerprint of the platform, configuration, and boot image).
	SnapshotDir string

	// Journal, when set, durably records every completed outcome (one
	// append-only record per injection) as the campaign runs, so a killed
	// process can resume instead of restarting from zero.
	Journal *Journal
	// Completed maps target indices to already-journaled outcomes from an
	// interrupted run of the same campaign: their injections are skipped and
	// the recorded results used verbatim, so a resumed campaign continues
	// bit-identically where it left off.
	Completed map[int]inject.Result

	// Sense runs the static error-sensitivity pre-pass (internal/staticsense)
	// over the campaign's code targets and annotates every result with the
	// analyzer's predicted class (inject.Result.PredClass/PredInert), feeding
	// the predicted-vs-observed confusion matrix without changing which
	// injections execute.
	Sense bool
	// Prune implies Sense and additionally skips injections the analyzer
	// predicts inert: their results are synthesized from the traced golden
	// run (outcome not-manifested, golden checksum and cycle count) and
	// journaled with PredSkipped set. Requires the fork-from-golden
	// scheduler — combining Prune with Replay is an error, because replay
	// mode never traces the golden run the synthesized results come from.
	Prune bool

	// SectionCache, when set, is the directory of the per-section outcome
	// cache (FastFlip-style incremental campaigns). Targets are grouped into
	// sections — code targets by the containing kernel function, every other
	// campaign into one whole-image section — and each section's completed
	// rows are persisted keyed by a content hash of the section's compiled
	// bytes, its target list (triggers included), the campaign parameters,
	// and the traced golden run's fingerprint. A re-run whose section hashes
	// all match replays every row from the cache; a run with one modified
	// section re-executes only that section. Rows are stamped with
	// inject.Result.PredCached on cold and warm runs alike, so warm tables
	// and journals stay byte-identical to the cold run that filled the
	// cache. Requires the fork-from-golden scheduler (incompatible with
	// Replay, which never traces the golden run the keys fingerprint).
	SectionCache string
	// onSection, when set (tests), observes each section's cache decision.
	onSection func(name string, hit bool)

	// MaxAttempts bounds supervised attempts per injection before its
	// outcome is recorded as inject.OQuarantined (0 = default 3).
	MaxAttempts int
	// InjectionTimeout is the per-attempt wall-clock watchdog. An attempt
	// that exceeds it is abandoned and retried on a respawned node (farm
	// runs; single-system runs cannot replace their machine and report an
	// error). 0 = default 2m; negative disables the watchdog.
	InjectionTimeout time.Duration
	// RetryBackoff is the delay before the first retry; it doubles with
	// every further attempt (0 = default 2ms).
	RetryBackoff time.Duration
}

// recorder serializes campaign completion accounting: the monotone progress
// count and the journal appends, shared by every node goroutine.
type recorder struct {
	mu       sync.Mutex
	journal  *Journal
	progress func(done, total int)
	results  []inject.Result
	// sense, when set, annotates every completed result with its static
	// prediction before the journal append, so predictions are durable
	// alongside outcomes.
	sense *sensePass
	// markCached stamps PredCached on every completed result (section-cache
	// runs): the marker records cache membership, not a hit, so cold and
	// warm runs journal identical rows.
	markCached bool
	done       int
}

// complete records results[idx] as finished. Resumed outcomes replayed from
// the journal pass journal=false — they are already durable.
func (rc *recorder) complete(idx int, journal bool) error {
	rc.mu.Lock()
	rc.done++
	d := rc.done
	if rc.markCached {
		rc.results[idx].PredCached = true
	}
	rc.sense.annotate(idx, &rc.results[idx])
	var err error
	if journal && rc.journal != nil {
		err = rc.journal.Append(idx, rc.results[idx])
	}
	rc.mu.Unlock()
	if err != nil {
		return err
	}
	if rc.progress != nil {
		rc.progress(d, len(rc.results))
	}
	return nil
}

// applyCompleted fills results from the resume set and returns the skip
// mask. The recorded outcomes count toward progress but are not re-journaled.
func applyCompleted(rc *recorder, opts ExecOptions) ([]bool, error) {
	skip := make([]bool, len(rc.results))
	for i := range rc.results {
		if r, ok := opts.Completed[i]; ok {
			rc.results[i] = r
			skip[i] = true
			if err := rc.complete(i, false); err != nil {
				return nil, err
			}
		}
	}
	return skip, nil
}

// RunWith is Run with explicit execution options.
func RunWith(sys *kernel.System, golden uint32, profile *Profile, spec Spec,
	progress func(done, total int), opts ExecOptions) (*Result, error) {
	if opts.SectionCache != "" && opts.Replay {
		return nil, fmt.Errorf("campaign: SectionCache requires the fork-from-golden scheduler; replay mode never traces the golden run the cache keys fingerprint")
	}
	if err := sys.Machine.SetEngine(opts.Engine); err != nil {
		return nil, err
	}
	sys.Machine.Engine().ResetStats()
	gen := NewGenerator(sys, profile, spec.Seed, profileCycles(profile))
	targets, err := gen.Targets(spec)
	if err != nil {
		return nil, err
	}
	sense, err := buildSense(sys, targets, opts)
	if err != nil {
		return nil, err
	}
	results := make([]inject.Result, len(targets))
	rec := &recorder{journal: opts.Journal, progress: progress, results: results,
		sense: sense, markCached: opts.SectionCache != ""}
	skip, err := applyCompleted(rec, opts)
	if err != nil {
		return nil, err
	}

	if opts.Replay {
		rep := newReplayRunner(sys, golden, opts)
		for i, t := range targets {
			if skip[i] {
				continue
			}
			res, err := rep.runTarget(i, t)
			if err != nil {
				return nil, err
			}
			results[i] = res
			if err := rec.complete(i, true); err != nil {
				return nil, err
			}
		}
		return &Result{Spec: spec, Platform: sys.Platform, Results: results,
			Engine: sys.Machine.EngineKind(), EngineStats: sys.Machine.Engine().Stats()}, nil
	}

	sched, err := buildSchedule(sys, targets, opts)
	if err != nil {
		return nil, err
	}
	prunePre(sched, targets, sense, opts)
	secs, err := openSectionCache(sys, golden, spec, targets, sched, opts)
	if err != nil {
		return nil, err
	}
	if err := secs.restore(rec, skip); err != nil {
		return nil, err
	}
	for i, r := range sched.pre {
		if skip[i] {
			continue
		}
		results[i] = r
		if err := rec.complete(i, true); err != nil {
			return nil, err
		}
	}
	order := filterOrder(sched.order, skip)
	if err := runChunk(sys, golden, targets, order, results, opts,
		func(idx int) error { return rec.complete(idx, true) }, maxTrig(sched.order)); err != nil {
		return nil, err
	}
	if err := secs.store(results); err != nil {
		return nil, err
	}
	return &Result{Spec: spec, Platform: sys.Platform, Results: results,
		Engine: sys.Machine.EngineKind(), EngineStats: sys.Machine.Engine().Stats()}, nil
}

// filterOrder drops already-completed entries from a trigger-sorted order.
func filterOrder(order []trigOrder, skip []bool) []trigOrder {
	out := make([]trigOrder, 0, len(order))
	for _, o := range order {
		if !skip[o.idx] {
			out = append(out, o)
		}
	}
	return out
}

// trigOrder pairs a target index with its trigger cycle (the golden-run cycle
// count just before the injection acts).
type trigOrder struct {
	trig uint64
	idx  int
}

// goldenTrace is one traced golden run: the first cycle at which each PC is
// about to execute, plus the run's length and checksum.
type goldenTrace struct {
	firstHit map[uint32]uint64
	cycles   uint64
	checksum uint32
}

// traceGolden runs the benchmark once with tracing and records, per PC, the
// cycle count just before its first execution — the exact cycle at which a
// code-injection breakpoint on that address would fire.
func traceGolden(sys *kernel.System) (*goldenTrace, error) {
	m := sys.Machine
	m.Reboot()
	clk := m.Core().Clock()
	first := make(map[uint32]uint64, 1<<14)
	m.Core().SetTrace(func(pc uint32, cost uint8) {
		if _, ok := first[pc]; !ok {
			// Trace reports after the clock advanced past the instruction.
			first[pc] = clk.Cycles() - uint64(cost)
		}
	})
	res := m.Run()
	m.Core().SetTrace(nil)
	if res.Outcome != machine.OutCompleted {
		return nil, fmt.Errorf("campaign: traced golden run did not complete: %v", res.Outcome)
	}
	return &goldenTrace{firstHit: first, cycles: res.Cycles, checksum: res.Checksum}, nil
}

// schedule is the fork-from-golden plan for one target set: the trigger-
// sorted execution order plus results synthesized without running anything
// (code targets whose instruction the golden run never executes — their
// breakpoint can never fire, so the run is the golden run).
type schedule struct {
	order []trigOrder
	pre   map[int]inject.Result
	// golden is the traced golden run the schedule was built from (nil when
	// the target set has no code targets); pruning synthesizes skipped
	// results from it.
	golden *goldenTrace
}

// buildSchedule computes each target's trigger cycle and sorts targets by
// it. Delay-triggered targets (stack, system registers) use their Delay;
// code targets use the first golden-run execution of their address;
// everything else injects at boot (trigger 0). The golden run is traced
// when code targets need their trigger cycles, and also when the options
// prune or cache sections — both synthesize rows from the golden outcome.
func buildSchedule(sys *kernel.System, targets []inject.Target, opts ExecOptions) (*schedule, error) {
	var tr *goldenTrace
	needGolden := !opts.Replay && (opts.Prune || opts.SectionCache != "")
	for _, t := range targets {
		if t.Campaign == inject.CampCode {
			needGolden = true
			break
		}
	}
	if needGolden {
		var err error
		if tr, err = traceGolden(sys); err != nil {
			return nil, err
		}
	}
	s := &schedule{order: make([]trigOrder, 0, len(targets)), pre: map[int]inject.Result{}, golden: tr}
	for i, t := range targets {
		switch {
		case t.Delay > 0:
			s.order = append(s.order, trigOrder{t.Delay, i})
		case t.Campaign == inject.CampCode:
			c, ok := tr.firstHit[t.Addr]
			if !ok {
				s.pre[i] = notActivatedResult(t, tr.cycles, tr.checksum)
				continue
			}
			s.order = append(s.order, trigOrder{c, i})
		default:
			s.order = append(s.order, trigOrder{0, i})
		}
	}
	sort.SliceStable(s.order, func(a, b int) bool { return s.order[a].trig < s.order[b].trig })
	return s, nil
}

// maxTrig returns the last (largest) trigger of a trigger-sorted order.
func maxTrig(order []trigOrder) uint64 {
	if len(order) == 0 {
		return 0
	}
	return order[len(order)-1].trig
}

// notActivatedResult mirrors RunOne's early return for an error that was
// never injected: the run is the golden run.
func notActivatedResult(t inject.Target, cycles uint64, checksum uint32) inject.Result {
	return inject.Result{Target: t, ActivationKnown: t.Campaign != inject.CampSysReg,
		Outcome: inject.ONotActivated, RunCycles: cycles, Checksum: checksum}
}

// nodeState is the machine-owning half of a chunkRunner: the guest system,
// its snapshot chain, and everything else a supervised attempt may mutate.
// When a wall-clock watchdog abandons an attempt, the goroutine it leaks
// still owns this state, so the runner replaces the whole nodeState rather
// than reusing any part of it.
type nodeState struct {
	sys  *kernel.System
	way  *waypointStore
	snap *snapshot.Snapshot
	// goldenEnd, once set, is the golden run's completion as observed from a
	// trigger beyond its end; every later trigger is also beyond the end.
	goldenEnd *machine.RunResult
}

// chunkRunner executes trigger-sorted slices of a schedule on one system,
// chaining one incremental checkpoint along the golden prefix:
//
//	for each target (by ascending trigger):
//	    restore the checkpoint             — O(pages dirtied by the last run)
//	    advance golden to the trigger      — only forward, each cycle once
//	    re-checkpoint in place             — O(pages dirtied by the advance)
//	    inject and run to an outcome
//
// Because the machine's pause points are the deterministic loop-top cycle
// counts of the golden run, a checkpoint taken at the pause for trigger T is
// bit-identical to the state a from-boot replay pauses in for any trigger in
// (T, pause], and advancing from it reproduces the from-boot pause for later
// triggers. Outcomes therefore match replay mode exactly.
//
// The runner is stateful so a farm node can execute many chunks with one
// snapshot chain: as long as successive chunks carry non-decreasing triggers
// (the dynamic scheduler hands chunks out in global trigger order), the
// checkpoint only ever advances forward and the invariant above holds across
// chunk boundaries. A chunk requeued by node failover can carry triggers
// below the chain position; the runner then restarts its chain from boot (or
// the best persisted waypoint), which reproduces the same deterministic
// pause states.
//
// Every injection is executed under the supervision policy (panic isolation,
// wall-clock watchdog, retry with backoff, quarantine) — see supervise.go.
type chunkRunner struct {
	st      *nodeState
	golden  uint32
	targets []inject.Target
	opts    ExecOptions
	maxTrig uint64
	sup     supervision

	// respawn, when set (farm nodes), builds a replacement guest system
	// after a watchdog timeout poisoned the current one.
	respawn func() (*kernel.System, error)
	// injectFrom runs one injection from the prepared machine state;
	// overridden by tests to seed panics and hangs.
	injectFrom func(idx int, sys *kernel.System, t inject.Target, golden uint32) inject.Result
	// fault, when set (tests), simulates SIGKILL-style node loss: a non-nil
	// error for a target index kills this node before the attempt runs.
	fault func(idx int) error
}

// newChunkRunner prepares a runner; maxTrig is the schedule's largest trigger
// (it sizes the waypoint stride). The snapshot chain starts lazily on the
// first attempt. Call close when done.
func newChunkRunner(sys *kernel.System, golden uint32, targets []inject.Target,
	opts ExecOptions, maxTrig uint64) *chunkRunner {
	return &chunkRunner{
		st:      &nodeState{sys: sys},
		golden:  golden,
		targets: targets,
		opts:    opts,
		maxTrig: maxTrig,
		sup:     opts.supervision(),
		injectFrom: func(_ int, sys *kernel.System, t inject.Target, golden uint32) inject.Result {
			return inject.RunFrom(sys, t, golden)
		},
	}
}

func (r *chunkRunner) close() {
	if r.st.snap != nil {
		r.st.sys.Machine.Mem.ClearBaseline()
	}
}

// run executes one contiguous trigger-sorted slice of the schedule, writing
// each target's result to out[idx] and reporting completion via done. A
// permanently lost node surfaces as *nodeLostError carrying the unfinished
// remainder (including the in-flight entry) for the farm to requeue.
func (r *chunkRunner) run(order []trigOrder, out []inject.Result, done func(idx int) error) error {
	for k, o := range order {
		res, err := r.runTarget(o)
		if err != nil {
			if errors.Is(err, errNodeDown) {
				return &nodeLostError{remaining: order[k:], cause: err}
			}
			return err
		}
		out[o.idx] = res
		if err := done(o.idx); err != nil {
			return err
		}
	}
	return nil
}

// runTarget executes one scheduled injection under supervision: panics are
// retried from a fresh snapshot restore with exponential backoff, watchdog
// timeouts poison the machine and continue on a respawned one, and an
// injection that exhausts its attempt budget is quarantined rather than
// aborting the campaign.
func (r *chunkRunner) runTarget(o trigOrder) (inject.Result, error) {
	t := r.targets[o.idx]
	if r.fault != nil {
		if err := r.fault(o.idx); err != nil {
			return inject.Result{}, err
		}
	}
	if ge := r.st.goldenEnd; ge != nil && o.trig > ge.Cycles {
		return notActivatedResult(t, ge.Cycles, ge.Checksum), nil
	}
	var diag string
	for attempt := 1; ; attempt++ {
		// Pin the node state before the attempt goroutine launches: after a
		// timeout the abandoned goroutine keeps running against this state,
		// so the next attempt must see a replacement, never a shared one.
		st := r.st
		out, timedOut := superviseAttempt(r.sup.timeout, func() (inject.Result, error) {
			return r.attempt(st, o, t)
		})
		switch {
		case timedOut:
			diag = fmt.Sprintf("wall-clock watchdog (%v) exceeded", r.sup.timeout)
			if err := r.replaceNode(); err != nil {
				return inject.Result{}, err
			}
		case out.panicked:
			diag = out.diag
		case out.err != nil:
			// Harness infrastructure failed (snapshot restore, respawn):
			// not a per-injection condition, abort the run.
			return inject.Result{}, out.err
		default:
			return out.res, nil
		}
		if attempt >= r.sup.maxAttempts {
			return quarantinedResult(t, attempt, diag), nil
		}
		r.sup.sleep(r.sup.backoff << (attempt - 1))
	}
}

// replaceNode swaps in a fresh guest system after a watchdog timeout left
// the current machine to an abandoned goroutine. Single-system runs own
// their caller's machine and cannot replace it.
func (r *chunkRunner) replaceNode() error {
	if r.respawn == nil {
		return fmt.Errorf("campaign: injection exceeded the %v wall-clock watchdog; the machine is unrecoverable outside a farm (run with nodes > 1 for automatic respawn)", r.sup.timeout)
	}
	sys, err := r.respawn()
	if err != nil {
		return fmt.Errorf("campaign: respawn after watchdog timeout: %w", err)
	}
	r.st = &nodeState{sys: sys}
	return nil
}

// attempt is one supervised execution of a scheduled target: ensure the
// snapshot chain covers the trigger, restore, advance, re-checkpoint, and
// inject. It mutates only st (pinned by the caller) so an abandoned attempt
// can never corrupt a successor's state.
func (r *chunkRunner) attempt(st *nodeState, o trigOrder, t inject.Target) (inject.Result, error) {
	m := st.sys.Machine
	if st.snap == nil || o.trig < st.snap.Cycles {
		// First use, or a requeued/retried trigger behind the chain: start
		// (or restart) the chain from the best persisted waypoint at or
		// before the trigger, else from boot. The restarted chain passes
		// through the same deterministic pause states, so outcomes are
		// unchanged.
		if r.opts.SnapshotDir != "" && st.way == nil {
			st.way = newWaypointStore(r.opts.SnapshotDir, snapshot.GoldenKey(m), r.maxTrig)
		}
		var snap *snapshot.Snapshot
		if st.way != nil {
			snap = st.way.bestBefore(o.trig, m)
		}
		if snap == nil {
			m.Reboot()
			snap = snapshot.Capture(m)
		}
		st.snap = snap
	}
	snap := st.snap
	if _, err := snap.Restore(m); err != nil {
		return inject.Result{}, err
	}
	if o.trig > snap.Cycles {
		m.PauseAt = o.trig
		pre := m.Run()
		if pre.Outcome != machine.OutPaused {
			// The benchmark finished before the trigger was reached: the
			// pre-generated error is never injected (RunOne's early
			// return), and so is every later, larger trigger.
			st.goldenEnd = &pre
			return notActivatedResult(t, pre.Cycles, pre.Checksum), nil
		}
		if _, err := snap.Recapture(m); err != nil {
			return inject.Result{}, err
		}
		if st.way != nil {
			st.way.maybeSave(snap)
		}
	}
	return r.injectFrom(o.idx, st.sys, t, r.golden), nil
}

// runChunk executes one slice as a standalone runner (the single-system
// path).
func runChunk(sys *kernel.System, golden uint32, targets []inject.Target,
	order []trigOrder, out []inject.Result, opts ExecOptions, done func(idx int) error,
	maxTrig uint64) error {
	if len(order) == 0 {
		return nil
	}
	r := newChunkRunner(sys, golden, targets, opts, maxTrig)
	defer r.close()
	return r.run(order, out, done)
}

// replayRunner supervises replay-mode injections (reboot-and-replay from
// boot). Each attempt is self-contained — RunOne reboots — so retries need
// no snapshot bookkeeping; a watchdog timeout still poisons the machine and
// needs a respawn (farm) or aborts (single system).
type replayRunner struct {
	sys     *kernel.System
	golden  uint32
	sup     supervision
	respawn func() (*kernel.System, error)
	// injectOne is inject.RunOne, overridden by tests.
	injectOne func(idx int, sys *kernel.System, t inject.Target, golden uint32) inject.Result
	fault     func(idx int) error
}

func newReplayRunner(sys *kernel.System, golden uint32, opts ExecOptions) *replayRunner {
	return &replayRunner{
		sys:    sys,
		golden: golden,
		sup:    opts.supervision(),
		injectOne: func(_ int, sys *kernel.System, t inject.Target, golden uint32) inject.Result {
			return inject.RunOne(sys, t, golden)
		},
	}
}

// runTarget mirrors chunkRunner.runTarget for replay mode.
func (r *replayRunner) runTarget(idx int, t inject.Target) (inject.Result, error) {
	if r.fault != nil {
		if err := r.fault(idx); err != nil {
			return inject.Result{}, err
		}
	}
	var diag string
	for attempt := 1; ; attempt++ {
		sys := r.sys // pinned: see chunkRunner.runTarget
		out, timedOut := superviseAttempt(r.sup.timeout, func() (inject.Result, error) {
			return r.injectOne(idx, sys, t, r.golden), nil
		})
		switch {
		case timedOut:
			diag = fmt.Sprintf("wall-clock watchdog (%v) exceeded", r.sup.timeout)
			if r.respawn == nil {
				return inject.Result{}, fmt.Errorf("campaign: injection exceeded the %v wall-clock watchdog; the machine is unrecoverable outside a farm (run with nodes > 1 for automatic respawn)", r.sup.timeout)
			}
			sys, err := r.respawn()
			if err != nil {
				return inject.Result{}, fmt.Errorf("campaign: respawn after watchdog timeout: %w", err)
			}
			r.sys = sys
		case out.panicked:
			diag = out.diag
		case out.err != nil:
			return inject.Result{}, out.err
		default:
			return out.res, nil
		}
		if attempt >= r.sup.maxAttempts {
			return quarantinedResult(t, attempt, diag), nil
		}
		r.sup.sleep(r.sup.backoff << (attempt - 1))
	}
}

// waypointStore persists golden-prefix checkpoints under a directory, keyed
// by the machine's golden fingerprint, for reuse across invocations.
type waypointStore struct {
	dir       string
	key       string
	stride    uint64
	lastSaved uint64
}

func newWaypointStore(dir, key string, maxTrig uint64) *waypointStore {
	stride := maxTrig / 6
	if stride < 250_000 {
		stride = 250_000
	}
	return &waypointStore{dir: dir, key: key, stride: stride}
}

func (w *waypointStore) path(cycles uint64) string {
	// Zero-padded so lexical directory order is cycle order.
	return filepath.Join(w.dir, fmt.Sprintf("%s-c%020d.ksnap", w.key, cycles))
}

// bestBefore loads the latest stored waypoint at or before trig and installs
// it on the machine (full-image restore; it becomes the armed baseline).
// Corrupt or mismatched files are skipped. Returns nil when none usable.
func (w *waypointStore) bestBefore(trig uint64, m *machine.Machine) *snapshot.Snapshot {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil
	}
	var best uint64
	found := false
	prefix := w.key + "-c"
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".ksnap") {
			continue
		}
		var c uint64
		if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".ksnap"), "%d", &c); err != nil {
			continue
		}
		if c <= trig && (!found || c > best) {
			best, found = c, true
		}
	}
	if !found {
		return nil
	}
	snap, err := snapshot.Load(w.path(best))
	if err != nil || snap.Cycles != best {
		return nil
	}
	if _, err := snap.Restore(m); err != nil {
		return nil
	}
	w.lastSaved = best
	return snap
}

// maybeSave persists the checkpoint when it advanced at least a stride past
// the last saved waypoint. Failures are ignored: persistence is an
// optimization, never a correctness dependency.
func (w *waypointStore) maybeSave(s *snapshot.Snapshot) {
	if s.Cycles < w.lastSaved+w.stride {
		return
	}
	if err := os.MkdirAll(w.dir, 0o755); err != nil {
		return
	}
	if err := s.Save(w.path(s.Cycles)); err == nil {
		w.lastSaved = s.Cycles
	}
}
