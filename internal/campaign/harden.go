package campaign

import (
	"fmt"

	"kfi/internal/cc"
	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/kir"
	"kfi/internal/machine"
	"kfi/internal/workload"
)

// HardenStudy is a matched hardened-vs-unhardened comparison on one
// platform: the same injection plan executed against two guest systems that
// differ only in whether the kernel image went through the kir.Harden
// transforms. It carries the raw outcome pairs plus the static (code size)
// and dynamic (golden-run cycles) overhead of the hardening.
type HardenStudy struct {
	Platform isa.Platform
	Opts     kir.HardenOpts

	// CodeBytes / HardCodeBytes are the kernel code-section sizes.
	CodeBytes     int
	HardCodeBytes int
	// GoldenCycles / HardGoldenCycles are the fault-free benchmark lengths.
	GoldenCycles     uint64
	HardGoldenCycles uint64

	Rows []HardenRow
}

// HardenRow is one campaign's matched outcome pair. For stack, data, and
// system-register campaigns Plain[i] and Hard[i] are the SAME injection
// (address, register, bit, delay) landing on each build; for code campaigns
// the targets are re-derived per image (instruction addresses differ between
// the builds) from the same seed, so the comparison is distributional rather
// than injection-for-injection.
type HardenRow struct {
	Spec  Spec
	Plain []inject.Result
	Hard  []inject.Result
}

// CodeOverhead is the hardened/unhardened kernel code-size ratio.
func (s *HardenStudy) CodeOverhead() float64 {
	if s.CodeBytes == 0 {
		return 0
	}
	return float64(s.HardCodeBytes) / float64(s.CodeBytes)
}

// CycleOverhead is the hardened/unhardened fault-free run-length ratio.
func (s *HardenStudy) CycleOverhead() float64 {
	if s.GoldenCycles == 0 {
		return 0
	}
	return float64(s.HardGoldenCycles) / float64(s.GoldenCycles)
}

// studySystem is one side of a matched pair: a built guest with its golden
// checksum, golden run length, and kernel profile.
type studySystem struct {
	sys     *kernel.System
	golden  uint32
	cycles  uint64
	profile *Profile
}

func buildStudySystem(platform isa.Platform, scale int, kopts kernel.Options) (*studySystem, error) {
	if scale < 1 {
		scale = 1
	}
	uimg, err := cc.Compile(workload.Program(scale), platform, kernel.UserBases)
	if err != nil {
		return nil, fmt.Errorf("campaign: harden-study workload: %w", err)
	}
	sys, err := kernel.BuildSystem(platform, uimg, workload.StandardProcs(), kopts)
	if err != nil {
		return nil, fmt.Errorf("campaign: harden-study system: %w", err)
	}
	res := sys.Run()
	if res.Outcome != machine.OutCompleted {
		return nil, fmt.Errorf("campaign: harden-study golden run did not complete: %v", res.Outcome)
	}
	profile, err := ProfileKernel(sys)
	if err != nil {
		return nil, err
	}
	return &studySystem{sys: sys, golden: res.Checksum, cycles: res.Cycles, profile: profile}, nil
}

// RunHardenStudy builds the matched system pair for one platform and runs
// every spec against both builds. Target generation is anchored to the
// UNHARDENED system: stack, data, and system-register targets transfer
// verbatim (hardening adds no globals, so the data/bss layout, process
// table, and register file are identical), and injection delays are drawn
// from the unhardened run length on both sides so matched injections strike
// the same workload phase. Code targets alone are re-derived against the
// hardened image, seeded identically.
//
// progress (may be nil) receives completed-injection counts over the whole
// study (both builds, all specs).
func RunHardenStudy(platform isa.Platform, scale int, hopts kir.HardenOpts, specs []Spec,
	progress func(done, total int)) (*HardenStudy, error) {
	if !hopts.Enabled() {
		return nil, fmt.Errorf("campaign: harden study needs at least one hardening pass enabled")
	}
	plain, err := buildStudySystem(platform, scale, kernel.Options{})
	if err != nil {
		return nil, err
	}
	hard, err := buildStudySystem(platform, scale, kernel.Options{Harden: hopts})
	if err != nil {
		return nil, err
	}
	study := &HardenStudy{
		Platform:         platform,
		Opts:             hopts,
		CodeBytes:        len(plain.sys.KernelImage.Code),
		HardCodeBytes:    len(hard.sys.KernelImage.Code),
		GoldenCycles:     plain.cycles,
		HardGoldenCycles: hard.cycles,
	}
	total := 0
	for _, spec := range specs {
		total += 2 * spec.N
	}
	done := 0
	tick := func() {
		done++
		if progress != nil {
			progress(done, total)
		}
	}
	for _, spec := range specs {
		plainTargets, hardTargets, err := matchedTargets(plain, hard, spec)
		if err != nil {
			return nil, err
		}
		row := HardenRow{Spec: spec}
		if row.Plain, err = runTargets(plain, plainTargets, tick); err != nil {
			return nil, err
		}
		if row.Hard, err = runTargets(hard, hardTargets, tick); err != nil {
			return nil, err
		}
		study.Rows = append(study.Rows, row)
	}
	return study, nil
}

// matchedTargets generates one spec's target lists for both builds. The
// unhardened system's profile length seeds the delay distribution for BOTH
// generators, so delay-triggered targets are identical on each side.
func matchedTargets(plain, hard *studySystem, spec Spec) (pt, ht []inject.Target, err error) {
	runCycles := profileCycles(plain.profile)
	gen := NewGenerator(plain.sys, plain.profile, spec.Seed, runCycles)
	if pt, err = gen.Targets(spec); err != nil {
		return nil, nil, err
	}
	if spec.Campaign == inject.CampCode {
		hgen := NewGenerator(hard.sys, hard.profile, spec.Seed, runCycles)
		if ht, err = hgen.Targets(spec); err != nil {
			return nil, nil, err
		}
		return pt, ht, nil
	}
	ht = make([]inject.Target, len(pt))
	copy(ht, pt)
	return pt, ht, nil
}

// runTargets executes an explicit target list on one system through the
// ordinary fork-from-golden scheduler.
func runTargets(ss *studySystem, targets []inject.Target, tick func()) ([]inject.Result, error) {
	sched, err := buildSchedule(ss.sys, targets, ExecOptions{})
	if err != nil {
		return nil, err
	}
	results := make([]inject.Result, len(targets))
	for i, r := range sched.pre {
		results[i] = r
		tick()
	}
	err = runChunk(ss.sys, ss.golden, targets, sched.order, results, ExecOptions{},
		func(int) error { tick(); return nil }, maxTrig(sched.order))
	if err != nil {
		return nil, err
	}
	return results, nil
}
