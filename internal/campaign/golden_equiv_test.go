package campaign_test

// Behavior-preservation harness for the platform-registry refactor: campaign
// outcome tables and journal files must be byte-identical to the goldens
// captured from the pre-refactor tree, on both platforms. Regenerate with
//
//	UPDATE_GOLDEN=1 go test ./internal/campaign -run TestCampaignGolden
//
// only when a change is *supposed* to alter outcomes (new workload, new
// error model); a registry or dispatch refactor must never need it.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kfi/internal/campaign"
	"kfi/internal/cc"
	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/stats"
	"kfi/internal/workload"
)

// equivSpecs is the fixed campaign set the goldens cover. Small enough to
// run in the normal test suite, large enough that every outcome class and
// both crash-cause tables show up.
var equivSpecs = []campaign.Spec{
	{Campaign: inject.CampStack, N: 10, Seed: 1009},
	{Campaign: inject.CampSysReg, N: 10, Seed: 1013},
	{Campaign: inject.CampData, N: 10, Seed: 1019},
	{Campaign: inject.CampCode, N: 10, Seed: 1021},
}

func TestCampaignGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns are slow")
	}
	for _, p := range []isa.Platform{isa.CISC, isa.RISC} {
		p := p
		t.Run(p.Short(), func(t *testing.T) {
			uimg, err := cc.Compile(workload.Program(1), p, kernel.UserBases)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := kernel.BuildSystem(p, uimg, workload.StandardProcs(), kernel.Options{})
			if err != nil {
				t.Fatal(err)
			}
			golden, err := campaign.Golden(sys)
			if err != nil {
				t.Fatal(err)
			}
			prof, err := campaign.ProfileKernel(sys)
			if err != nil {
				t.Fatal(err)
			}

			var table strings.Builder
			table.WriteString(stats.TableHeader() + "\n")
			var all []inject.Result
			for _, spec := range equivSpecs {
				jpath := filepath.Join(t.TempDir(), "journal.bin")
				j, err := campaign.CreateJournal(jpath, campaign.HeaderFor(p, golden, spec))
				if err != nil {
					t.Fatal(err)
				}
				res, err := campaign.RunWith(sys, golden, prof, spec, nil,
					campaign.ExecOptions{Journal: j})
				if err != nil {
					t.Fatal(err)
				}
				if err := j.Close(); err != nil {
					t.Fatal(err)
				}
				c := stats.Summarize(res.Results)
				table.WriteString(c.TableRow(spec.Campaign.String()) + "\n")
				all = append(all, res.Results...)

				jbytes, err := os.ReadFile(jpath)
				if err != nil {
					t.Fatal(err)
				}
				compareGolden(t, goldenName(p, spec.Campaign.String()+".journal"), jbytes)
			}
			table.WriteString("\n" + stats.CrashCauses(all).Render(p) + "\n")
			table.WriteString(stats.Latencies(all).Render() + "\n")
			compareGolden(t, goldenName(p, "table.txt"), []byte(table.String()))
		})
	}
}

func goldenName(p isa.Platform, suffix string) string {
	return fmt.Sprintf("golden_%s_%s", p.Short(), strings.ReplaceAll(suffix, " ", ""))
}

// compareGolden checks got against testdata/<name>, rewriting the golden
// instead when UPDATE_GOLDEN=1.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with UPDATE_GOLDEN=1 to create): %v", path, err)
	}
	if string(want) != string(got) {
		t.Errorf("%s differs from golden (%d bytes vs %d); the refactor changed observable campaign behavior", name, len(got), len(want))
	}
}
