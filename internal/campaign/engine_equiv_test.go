package campaign_test

// Engine-equivalence harness for the ExecEngine seam: every execution
// engine (step interpreter, predecoded interpreter, basic-block translator)
// must produce byte-identical campaign outcome tables and journal record
// streams on both platforms — and identical to the goldens in testdata, so
// an engine cannot drift even in ways the engines happen to share. The
// engines differ only in wall-clock throughput; any divergence here is a
// translator (or predecode-cache) soundness bug, not a tolerance to widen.

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kfi/internal/campaign"
	"kfi/internal/cc"
	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/platform"
	"kfi/internal/stats"
	"kfi/internal/workload"
)

// journalBody strips a journal's header frame (4-byte length + JSON payload
// + 4-byte CRC), leaving the outcome record stream. Headers legitimately
// differ across engines — they record which engine ran — so equivalence is
// asserted on every byte after the header.
func journalBody(t *testing.T, b []byte) []byte {
	t.Helper()
	if len(b) < 8 {
		t.Fatalf("journal too short for a header frame: %d bytes", len(b))
	}
	end := 4 + int(binary.BigEndian.Uint32(b)) + 4
	if end > len(b) {
		t.Fatalf("journal header frame (%d bytes) overruns the file (%d bytes)", end, len(b))
	}
	return b[end:]
}

func TestEngineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns are slow")
	}
	for _, p := range []isa.Platform{isa.CISC, isa.RISC} {
		p := p
		t.Run(p.Short(), func(t *testing.T) {
			uimg, err := cc.Compile(workload.Program(1), p, kernel.UserBases)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := kernel.BuildSystem(p, uimg, workload.StandardProcs(), kernel.Options{})
			if err != nil {
				t.Fatal(err)
			}
			golden, err := campaign.Golden(sys)
			if err != nil {
				t.Fatal(err)
			}
			prof, err := campaign.ProfileKernel(sys)
			if err != nil {
				t.Fatal(err)
			}

			for _, kind := range platform.EngineKinds() {
				kind := kind
				t.Run(kind.String(), func(t *testing.T) {
					var table strings.Builder
					table.WriteString(stats.TableHeader() + "\n")
					var all []inject.Result
					for _, spec := range equivSpecs {
						jpath := filepath.Join(t.TempDir(), "journal.bin")
						h := campaign.HeaderFor(p, golden, spec)
						h.Engine = kind.String() // what kfi-campaign -engine records
						j, err := campaign.CreateJournal(jpath, h)
						if err != nil {
							t.Fatal(err)
						}
						res, err := campaign.RunWith(sys, golden, prof, spec, nil,
							campaign.ExecOptions{Engine: kind, Journal: j})
						if err != nil {
							t.Fatal(err)
						}
						if err := j.Close(); err != nil {
							t.Fatal(err)
						}
						if res.Engine != kind {
							t.Fatalf("campaign ran on engine %v, requested %v", res.Engine, kind)
						}
						c := stats.Summarize(res.Results)
						table.WriteString(c.TableRow(spec.Campaign.String()) + "\n")
						all = append(all, res.Results...)

						jbytes, err := os.ReadFile(jpath)
						if err != nil {
							t.Fatal(err)
						}
						gold, err := os.ReadFile(filepath.Join("testdata",
							goldenName(p, spec.Campaign.String()+".journal")))
						if err != nil {
							t.Fatal(err)
						}
						if got, want := journalBody(t, jbytes), journalBody(t, gold); string(got) != string(want) {
							t.Errorf("%s %v journal records differ from golden (%d bytes vs %d): engine changed observable outcomes",
								spec.Campaign, kind, len(got), len(want))
						}
					}
					table.WriteString("\n" + stats.CrashCauses(all).Render(p) + "\n")
					table.WriteString(stats.Latencies(all).Render() + "\n")
					gold, err := os.ReadFile(filepath.Join("testdata", goldenName(p, "table.txt")))
					if err != nil {
						t.Fatal(err)
					}
					if table.String() != string(gold) {
						t.Errorf("%v outcome table differs from golden: engine changed observable outcomes", kind)
					}
				})
			}
		})
	}
}
