package campaign

import (
	"path/filepath"
	"reflect"
	"testing"

	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/kernel"
)

// TestForkFromGoldenMatchesReplay is the subsystem's central contract: on a
// fixed seed, snapshot-mode campaigns must produce the exact per-injection
// results of the paper's literal reboot-and-replay procedure, for every
// campaign on both platforms.
func TestForkFromGoldenMatchesReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns are slow")
	}
	for _, platform := range []isa.Platform{isa.CISC, isa.RISC} {
		sys, golden, prof := getSystem(t, platform)
		for _, camp := range []inject.Campaign{inject.CampStack, inject.CampSysReg, inject.CampData, inject.CampCode} {
			t.Run(platform.Short()+"/"+camp.String(), func(t *testing.T) {
				spec := Spec{Campaign: camp, N: 10, Seed: 41}
				replay, err := RunWith(sys, golden, prof, spec, nil, ExecOptions{Replay: true})
				if err != nil {
					t.Fatal(err)
				}
				snap, err := RunWith(sys, golden, prof, spec, nil, ExecOptions{})
				if err != nil {
					t.Fatal(err)
				}
				for i := range replay.Results {
					if !reflect.DeepEqual(replay.Results[i], snap.Results[i]) {
						t.Errorf("injection %d diverges:\n  replay:   %+v\n  snapshot: %+v",
							i, replay.Results[i], snap.Results[i])
					}
				}
			})
		}
	}
}

// TestForkFromGoldenProgress checks the progress contract in snapshot mode:
// called once per injection with a monotone done count.
func TestForkFromGoldenProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns are slow")
	}
	sys, golden, prof := getSystem(t, isa.CISC)
	var calls []int
	_, err := RunWith(sys, golden, prof, Spec{Campaign: inject.CampStack, N: 8, Seed: 5}, func(done, total int) {
		if total != 8 {
			t.Fatalf("total = %d, want 8", total)
		}
		calls = append(calls, done)
	}, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 8 {
		t.Fatalf("progress called %d times, want 8", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress call %d reported done=%d", i, d)
		}
	}
}

// TestSnapshotDirReuse runs the same campaign twice with a waypoint
// directory: the second invocation must load the persisted prefix snapshots
// and still produce identical results.
func TestSnapshotDirReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns are slow")
	}
	sys, golden, prof := getSystem(t, isa.RISC)
	dir := t.TempDir()
	spec := Spec{Campaign: inject.CampSysReg, N: 8, Seed: 13}
	first, err := RunWith(sys, golden, prof, spec, nil, ExecOptions{SnapshotDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.ksnap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no waypoint snapshots were persisted")
	}
	second, err := RunWith(sys, golden, prof, spec, nil, ExecOptions{SnapshotDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Error("results differ between fresh and waypoint-reusing invocations")
	}
}

// TestFarmForkFromGoldenMatchesReplay pins the farm path: chunked
// fork-from-golden across nodes equals dynamic replay across nodes.
func TestFarmForkFromGoldenMatchesReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("farm campaigns are slow")
	}
	farm, err := NewFarm(isa.CISC, 3, 1, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Campaign: inject.CampCode, N: 18, Seed: 77}
	replay, err := farm.RunWith(spec, nil, ExecOptions{Replay: true})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := farm.RunWith(spec, nil, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range replay.Results {
		if !reflect.DeepEqual(replay.Results[i], snap.Results[i]) {
			t.Errorf("injection %d diverges between farm modes:\n  replay:   %+v\n  snapshot: %+v",
				i, replay.Results[i], snap.Results[i])
		}
	}
}
