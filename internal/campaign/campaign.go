// Package campaign implements the NFTAPE-style control loop of the paper's
// §3.2: profile the kernel under the benchmark, pre-generate injection
// targets for each campaign (STEP 1), run one injection per reboot (STEP 2),
// and collect classified outcomes (STEP 3).
package campaign

import (
	"fmt"
	"math/rand"
	"sort"

	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/machine"
	"kfi/internal/mem"
	"kfi/internal/platform"
)

// Spec describes one injection campaign.
type Spec struct {
	Campaign inject.Campaign
	// N is the number of injections (the paper's "Injected" column).
	N int
	// Seed makes target generation reproducible.
	Seed int64
	// Burst widens the error model: 0 or 1 is the paper's single-bit flip,
	// k > 1 flips k adjacent bits per injection (multi-bit upset).
	Burst uint8
}

// FuncWeight is one kernel function's share of execution.
type FuncWeight struct {
	Name       string
	Start, End uint32
	Cycles     uint64
}

// Profile is the kernel usage profile measured under the benchmark
// (the paper's kernprof step).
type Profile struct {
	Funcs []FuncWeight // sorted by Cycles descending
	Total uint64
}

// ProfileKernel runs the benchmark once with instruction tracing and
// attributes cycles to kernel functions.
func ProfileKernel(sys *kernel.System) (*Profile, error) {
	im := sys.KernelImage
	counts := make([]uint64, len(im.Funcs))
	lo := im.CodeBase
	hi := im.CodeBase + uint32(len(im.Code))
	sys.Machine.Reboot()
	sys.Machine.Core().SetTrace(func(pc uint32, cost uint8) {
		if pc < lo || pc >= hi {
			return
		}
		i := sort.Search(len(im.Funcs), func(i int) bool { return im.Funcs[i].End > pc })
		if i < len(im.Funcs) && pc >= im.Funcs[i].Start {
			counts[i] += uint64(cost)
		}
	})
	res := sys.Machine.Run()
	sys.Machine.Core().SetTrace(nil)
	if res.Outcome != machine.OutCompleted {
		return nil, fmt.Errorf("campaign: profiling run did not complete: %v", res.Outcome)
	}
	p := &Profile{}
	for i, fr := range im.Funcs {
		if counts[i] == 0 {
			continue
		}
		p.Funcs = append(p.Funcs, FuncWeight{Name: fr.Name, Start: fr.Start, End: fr.End, Cycles: counts[i]})
		p.Total += counts[i]
	}
	sort.Slice(p.Funcs, func(i, j int) bool {
		if p.Funcs[i].Cycles != p.Funcs[j].Cycles {
			return p.Funcs[i].Cycles > p.Funcs[j].Cycles
		}
		return p.Funcs[i].Name < p.Funcs[j].Name
	})
	return p, nil
}

// Hot returns the most-used functions covering at least the given fraction
// of kernel cycles (the paper selects functions representing >=95% of kernel
// usage).
func (p *Profile) Hot(coverage float64) []FuncWeight {
	var out []FuncWeight
	var acc uint64
	for _, f := range p.Funcs {
		out = append(out, f)
		acc += f.Cycles
		if float64(acc) >= coverage*float64(p.Total) {
			break
		}
	}
	return out
}

// Generator pre-generates injection targets (STEP 1).
type Generator struct {
	sys     *kernel.System
	profile *Profile
	rng     *rand.Rand
	// runCycles is the fault-free benchmark length, used to draw mid-run
	// injection times for stack and system-register campaigns.
	runCycles uint64
}

// NewGenerator builds a target generator. profile is required only for code
// campaigns; runCycles (the golden run length) spreads mid-run triggers.
func NewGenerator(sys *kernel.System, profile *Profile, seed int64, runCycles uint64) *Generator {
	if runCycles == 0 {
		runCycles = 2_000_000
	}
	return &Generator{sys: sys, profile: profile, rng: rand.New(rand.NewSource(seed)), runCycles: runCycles}
}

// delay draws a mid-run injection time across the benchmark's span.
func (g *Generator) delay() uint64 {
	return 5_000 + uint64(g.rng.Int63n(int64(g.runCycles)))
}

// Targets generates spec.N injection targets.
func (g *Generator) Targets(spec Spec) ([]inject.Target, error) {
	out := make([]inject.Target, 0, spec.N)
	for i := 0; i < spec.N; i++ {
		var (
			t   inject.Target
			err error
		)
		switch spec.Campaign {
		case inject.CampStack:
			t = g.stackTarget()
		case inject.CampData:
			t = g.dataTarget()
		case inject.CampSysReg:
			t = g.sysRegTarget()
		case inject.CampCode:
			t, err = g.codeTarget()
		default:
			err = fmt.Errorf("campaign: unknown campaign %v", spec.Campaign)
		}
		if err != nil {
			return nil, err
		}
		t.Burst = spec.Burst
		out = append(out, t)
	}
	return out, nil
}

func (g *Generator) stackTarget() inject.Target {
	return inject.Target{
		Campaign: inject.CampStack,
		ProcSlot: g.rng.Intn(len(g.sys.Procs)),
		StackPos: g.rng.Uint32(),
		Bit:      uint(g.rng.Intn(8)),
		Delay:    g.delay(),
	}
}

func (g *Generator) dataTarget() inject.Target {
	regions := g.sys.Machine.Mem.Regions(mem.KindData, mem.KindBSS)
	var filtered []mem.Region
	var total int
	for _, r := range regions {
		if r.Name == "percpu" {
			continue // not part of the kernel data/bss sections
		}
		filtered = append(filtered, r)
		total += int(r.Size())
	}
	off := g.rng.Intn(total)
	for _, r := range filtered {
		if off < int(r.Size()) {
			return inject.Target{
				Campaign: inject.CampData,
				Addr:     r.Start + uint32(off),
				Bit:      uint(g.rng.Intn(8)),
			}
		}
		off -= int(r.Size())
	}
	panic("campaign: data target selection out of range")
}

func (g *Generator) sysRegTarget() inject.Target {
	regs := g.sys.Machine.SystemRegisters()
	i := g.rng.Intn(len(regs))
	return inject.Target{
		Campaign: inject.CampSysReg,
		Reg:      i,
		RegName:  regs[i].Name,
		Bit:      uint(g.rng.Intn(int(regs[i].Bits))),
		Delay:    g.delay(),
	}
}

// codeTarget picks a hot function (weighted by measured cycles), an
// instruction within it, and a bit within the instruction.
func (g *Generator) codeTarget() (inject.Target, error) {
	if g.profile == nil || g.profile.Total == 0 {
		return inject.Target{}, fmt.Errorf("campaign: code campaign requires a kernel profile")
	}
	hot := g.profile.Hot(0.95)
	var total uint64
	for _, f := range hot {
		total += f.Cycles
	}
	pick := uint64(g.rng.Int63n(int64(total)))
	var fn FuncWeight
	for _, f := range hot {
		if pick < f.Cycles {
			fn = f
			break
		}
		pick -= f.Cycles
	}
	if fn.Name == "" {
		fn = hot[len(hot)-1]
	}
	instrs := g.instructionBoundaries(fn)
	if len(instrs) == 0 {
		return inject.Target{}, fmt.Errorf("campaign: function %s has no decodable instructions", fn.Name)
	}
	in := instrs[g.rng.Intn(len(instrs))]
	return inject.Target{
		Campaign: inject.CampCode,
		Addr:     in.addr,
		ByteOff:  uint8(g.rng.Intn(int(in.size))),
		Bit:      uint(g.rng.Intn(8)),
		Func:     fn.Name,
	}, nil
}

type instrRef struct {
	addr uint32
	size uint8
}

// instructionBoundaries statically decodes a compiled function's
// instructions through the platform descriptor (fixed-width words on RISC;
// variable-length decode on CISC).
func (g *Generator) instructionBoundaries(fn FuncWeight) []instrRef {
	im := g.sys.KernelImage
	code := im.Code[fn.Start-im.CodeBase : fn.End-im.CodeBase]
	refs := platform.MustGet(g.sys.Platform).InstructionBoundaries(code, fn.Start)
	out := make([]instrRef, len(refs))
	for i, r := range refs {
		out[i] = instrRef{addr: r.Addr, size: r.Size}
	}
	return out
}

// Result is a completed campaign.
type Result struct {
	Spec     Spec
	Platform isa.Platform
	Results  []inject.Result
	// Engine is the execution engine the campaign ran on; EngineStats are
	// its observability counters accumulated over the run (all zero for the
	// interpreter engines, which have nothing to count). Farm runs sum the
	// per-node counters. Purely informational: outcomes never depend on them.
	Engine      platform.EngineKind
	EngineStats platform.EngineStats
}

// Run executes a campaign: golden is the fault-free checksum; progress (may
// be nil) is called after each injection. It uses the default execution
// options — fork-from-golden snapshot scheduling; see RunWith and ExecOptions
// for the replay-from-boot reference mode.
func Run(sys *kernel.System, golden uint32, profile *Profile, spec Spec, progress func(done, total int)) (*Result, error) {
	return RunWith(sys, golden, profile, spec, progress, ExecOptions{})
}

// Golden measures the fault-free checksum; it fails if the pristine system
// does not complete.
func Golden(sys *kernel.System) (uint32, error) {
	res := sys.Run()
	if res.Outcome != machine.OutCompleted {
		return 0, fmt.Errorf("campaign: golden run did not complete: %v", res.Outcome)
	}
	return res.Checksum, nil
}

// profileCycles estimates the benchmark length from the profile (the sum of
// attributed kernel cycles underestimates the total; scale it up).
func profileCycles(p *Profile) uint64 {
	if p == nil {
		return 0
	}
	return p.Total * 2
}
