package campaign

import (
	"fmt"
	"sync"

	"kfi/internal/cc"
	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/workload"
)

// Farm distributes one campaign's injections across several identical guest
// systems running concurrently — the paper's setup of "three P4 and two G4
// machines ... used in the injection campaigns to speed up the experiments".
// Every node is built from the same images, so results are the union of
// deterministic per-node runs.
type Farm struct {
	platform isa.Platform
	nodes    []*kernel.System
	golden   uint32
	profile  *Profile
}

// NewFarm builds n identical guest systems of the given platform. opts may
// be zero; the workload runs at the given scale.
func NewFarm(platform isa.Platform, n, scale int, opts kernel.Options) (*Farm, error) {
	if n < 1 {
		n = 1
	}
	if scale < 1 {
		scale = 1
	}
	uimg, err := cc.Compile(workload.Program(scale), platform, kernel.UserBases)
	if err != nil {
		return nil, fmt.Errorf("campaign: farm workload: %w", err)
	}
	f := &Farm{platform: platform}
	for i := 0; i < n; i++ {
		sys, err := kernel.BuildSystem(platform, uimg, workload.StandardProcs(), opts)
		if err != nil {
			return nil, fmt.Errorf("campaign: farm node %d: %w", i, err)
		}
		f.nodes = append(f.nodes, sys)
	}
	golden, err := Golden(f.nodes[0])
	if err != nil {
		return nil, err
	}
	f.golden = golden
	prof, err := ProfileKernel(f.nodes[0])
	if err != nil {
		return nil, err
	}
	f.profile = prof
	return f, nil
}

// Nodes returns the number of guest systems.
func (f *Farm) Nodes() int { return len(f.nodes) }

// Golden returns the fault-free checksum shared by all nodes.
func (f *Farm) Golden() uint32 { return f.golden }

// Profile returns the kernel-usage profile measured on node 0.
func (f *Farm) Profile() *Profile { return f.profile }

// Run executes a campaign, fanning targets out over the nodes. Results come
// back in target order regardless of which node executed them, so a Farm run
// produces the same per-index results as a single-node run of the same spec.
// It uses the default execution options (fork-from-golden); see RunWith.
func (f *Farm) Run(spec Spec, progress func(done, total int)) (*Result, error) {
	return f.RunWith(spec, progress, ExecOptions{})
}

// RunWith is Run with explicit execution options. In fork-from-golden mode
// nodes steal small contiguous chunks of the trigger-sorted schedule from a
// shared cursor, so neighboring triggers still share incremental checkpoints
// within a node while a node that draws long-latency hangs cannot straggle
// with a large fixed share; in replay mode nodes steal individual targets.
func (f *Farm) RunWith(spec Spec, progress func(done, total int), opts ExecOptions) (*Result, error) {
	gen := NewGenerator(f.nodes[0], f.profile, spec.Seed, profileCycles(f.profile))
	targets, err := gen.Targets(spec)
	if err != nil {
		return nil, err
	}
	results := make([]inject.Result, len(targets))

	var (
		mu   sync.Mutex
		done int
	)
	tickLocked := func() {
		done++
		d := done
		mu.Unlock()
		if progress != nil {
			progress(d, len(targets))
		}
	}

	if !opts.Replay {
		sched, err := buildSchedule(f.nodes[0], targets)
		if err != nil {
			return nil, err
		}
		for i, r := range sched.pre {
			results[i] = r
			mu.Lock()
			tickLocked()
		}
		chunkTick := func(int) {
			mu.Lock()
			tickLocked()
		}
		var (
			wg   sync.WaitGroup
			errs = make([]error, len(f.nodes))
			next int
		)
		// Small chunks keep the shared cursor a cheap load balancer; several
		// per node bound the straggler cost of an unlucky chunk to ~1/8 of a
		// node's fair share. Each node keeps one snapshot chain across all the
		// chunks it steals: the cursor hands chunks out in ascending trigger
		// order, so a node's checkpoint only ever advances forward.
		chunk := len(sched.order) / (len(f.nodes) * 8)
		if chunk < 1 {
			chunk = 1
		}
		for ni, node := range f.nodes {
			ni, node := ni, node
			wg.Add(1)
			go func() {
				defer wg.Done()
				runner := newChunkRunner(node, f.golden, targets, opts, maxTrig(sched.order))
				defer runner.close()
				for {
					mu.Lock()
					lo := next
					next += chunk
					mu.Unlock()
					if lo >= len(sched.order) {
						return
					}
					hi := min(lo+chunk, len(sched.order))
					if err := runner.run(sched.order[lo:hi], results, chunkTick); err != nil {
						errs[ni] = err
						return
					}
				}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return &Result{Spec: spec, Platform: f.platform, Results: results}, nil
	}

	var (
		next int
		wg   sync.WaitGroup
	)
	for _, node := range f.nodes {
		node := node
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= len(targets) {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				results[i] = inject.RunOne(node, targets[i], f.golden)

				mu.Lock()
				tickLocked()
			}
		}()
	}
	wg.Wait()
	return &Result{Spec: spec, Platform: f.platform, Results: results}, nil
}
