package campaign

import (
	"errors"
	"fmt"
	"sync"

	"kfi/internal/cc"
	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/platform"
	"kfi/internal/workload"
)

// Farm distributes one campaign's injections across several identical guest
// systems running concurrently — the paper's setup of "three P4 and two G4
// machines ... used in the injection campaigns to speed up the experiments".
// Every node is built from the same images, so results are the union of
// deterministic per-node runs.
type Farm struct {
	platform isa.Platform
	nodes    []*kernel.System
	golden   uint32
	profile  *Profile
	// buildNode rebuilds a guest system from the farm's retained build
	// inputs; it backs node failover (a replacement node spawned after a
	// permanent node loss) and watchdog respawns.
	buildNode func() (*kernel.System, error)

	// Test hooks (nil in production).
	//
	// injectFrom overrides the fork-from-golden injection step on every
	// node's runner; fault simulates SIGKILL-style node loss (a non-nil
	// error for (node, idx) kills that node before the attempt runs —
	// replacement nodes carry fresh ids, so a hook keyed on original ids
	// fires at most once per node).
	injectFrom func(idx int, sys *kernel.System, t inject.Target, golden uint32) inject.Result
	fault      func(node, idx int) error
}

// NewFarm builds n identical guest systems of the given platform. opts may
// be zero; the workload runs at the given scale.
func NewFarm(platform isa.Platform, n, scale int, opts kernel.Options) (*Farm, error) {
	if n < 1 {
		n = 1
	}
	if scale < 1 {
		scale = 1
	}
	uimg, err := cc.Compile(workload.Program(scale), platform, kernel.UserBases)
	if err != nil {
		return nil, fmt.Errorf("campaign: farm workload: %w", err)
	}
	f := &Farm{platform: platform}
	f.buildNode = func() (*kernel.System, error) {
		return kernel.BuildSystem(platform, uimg, workload.StandardProcs(), opts)
	}
	for i := 0; i < n; i++ {
		sys, err := f.buildNode()
		if err != nil {
			return nil, fmt.Errorf("campaign: farm node %d: %w", i, err)
		}
		f.nodes = append(f.nodes, sys)
	}
	golden, err := Golden(f.nodes[0])
	if err != nil {
		return nil, err
	}
	f.golden = golden
	prof, err := ProfileKernel(f.nodes[0])
	if err != nil {
		return nil, err
	}
	f.profile = prof
	return f, nil
}

// Nodes returns the number of guest systems.
func (f *Farm) Nodes() int { return len(f.nodes) }

// Golden returns the fault-free checksum shared by all nodes.
func (f *Farm) Golden() uint32 { return f.golden }

// Profile returns the kernel-usage profile measured on node 0.
func (f *Farm) Profile() *Profile { return f.profile }

// Run executes a campaign, fanning targets out over the nodes. Results come
// back in target order regardless of which node executed them, so a Farm run
// produces the same per-index results as a single-node run of the same spec.
// It uses the default execution options (fork-from-golden); see RunWith.
func (f *Farm) Run(spec Spec, progress func(done, total int)) (*Result, error) {
	return f.RunWith(spec, progress, ExecOptions{})
}

// stealQueue is the farm's shared work source: a cursor over the trigger-
// sorted schedule handing out small contiguous chunks, plus a requeue list
// fed by node failover. Requeued slices are served first — they carry the
// lowest triggers, and the runner that picks one up restarts its snapshot
// chain for them.
type stealQueue struct {
	mu       sync.Mutex
	order    []trigOrder
	next     int
	chunk    int
	requeued [][]trigOrder
	stopped  bool
}

// pop hands out the next unit of work: a requeued remnant if any, else the
// next fresh chunk. false means the queue is drained or stopped.
func (q *stealQueue) pop() ([]trigOrder, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.stopped {
		return nil, false
	}
	if len(q.requeued) > 0 {
		s := q.requeued[0]
		q.requeued = q.requeued[1:]
		return s, true
	}
	if q.next >= len(q.order) {
		return nil, false
	}
	lo := q.next
	q.next += q.chunk
	return q.order[lo:min(lo+q.chunk, len(q.order))], true
}

// requeue returns a dead node's unfinished slice to the queue.
func (q *stealQueue) requeue(rem []trigOrder) {
	if len(rem) == 0 {
		return
	}
	q.mu.Lock()
	q.requeued = append(q.requeued, rem)
	q.mu.Unlock()
}

// stop drains the queue so every worker winds down after a fatal error.
func (q *stealQueue) stop() {
	q.mu.Lock()
	q.stopped = true
	q.mu.Unlock()
}

// RunWith is Run with explicit execution options. In fork-from-golden mode
// nodes steal small contiguous chunks of the trigger-sorted schedule from a
// shared queue, so neighboring triggers still share incremental checkpoints
// within a node while a node that draws long-latency hangs cannot straggle
// with a large fixed share; in replay mode nodes steal individual targets.
//
// The farm survives its own nodes: a node whose runner dies permanently has
// its unfinished chunk requeued and a replacement node spawned from the
// retained build inputs (up to a respawn budget), so a campaign's outcome
// table is identical with and without mid-run node loss.
func (f *Farm) RunWith(spec Spec, progress func(done, total int), opts ExecOptions) (*Result, error) {
	gen := NewGenerator(f.nodes[0], f.profile, spec.Seed, profileCycles(f.profile))
	targets, err := gen.Targets(spec)
	if err != nil {
		return nil, err
	}
	sense, err := buildSense(f.nodes[0], targets, opts)
	if err != nil {
		return nil, err
	}
	results := make([]inject.Result, len(targets))
	rec := &recorder{journal: opts.Journal, progress: progress, results: results,
		sense: sense, markCached: opts.SectionCache != ""}
	skip, err := applyCompleted(rec, opts)
	if err != nil {
		return nil, err
	}
	done := func(idx int) error { return rec.complete(idx, true) }

	if opts.Replay {
		if opts.SectionCache != "" {
			return nil, fmt.Errorf("campaign: SectionCache requires the fork-from-golden scheduler; replay mode never traces the golden run the cache keys fingerprint")
		}
		estats, err := f.runReplay(targets, results, skip, done, opts)
		if err != nil {
			return nil, err
		}
		return &Result{Spec: spec, Platform: f.platform, Results: results,
			Engine: f.nodes[0].Machine.EngineKind(), EngineStats: estats}, nil
	}

	sched, err := buildSchedule(f.nodes[0], targets, opts)
	if err != nil {
		return nil, err
	}
	prunePre(sched, targets, sense, opts)
	secs, err := openSectionCache(f.nodes[0], f.golden, spec, targets, sched, opts)
	if err != nil {
		return nil, err
	}
	if err := secs.restore(rec, skip); err != nil {
		return nil, err
	}
	for i, r := range sched.pre {
		if skip[i] {
			continue
		}
		results[i] = r
		if err := done(i); err != nil {
			return nil, err
		}
	}
	order := filterOrder(sched.order, skip)

	// Small chunks keep the shared queue a cheap load balancer; several per
	// node bound the straggler cost of an unlucky chunk to ~1/8 of a node's
	// fair share. Each node keeps one snapshot chain across all the chunks
	// it steals: the queue hands fresh chunks out in ascending trigger
	// order, so a node's checkpoint only ever advances forward (requeued
	// failover remnants are the exception; the runner restarts its chain).
	q := &stealQueue{order: order, chunk: max(len(order)/(len(f.nodes)*8), 1)}

	// Engine counters are summed across every node's engine when its worker
	// winds down (systems poisoned by a watchdog lose their tally; the
	// counters are observability, never correctness).
	var (
		esMu   sync.Mutex
		estats platform.EngineStats
	)

	worker := func(node int, sys *kernel.System) error {
		if err := sys.Machine.SetEngine(opts.Engine); err != nil {
			q.stop()
			return err
		}
		sys.Machine.Engine().ResetStats()
		runner := newChunkRunner(sys, f.golden, targets, opts, maxTrig(order))
		defer runner.close()
		defer func() {
			esMu.Lock()
			estats.Add(runner.st.sys.Machine.Engine().Stats())
			esMu.Unlock()
		}()
		runner.respawn = f.respawnWith(opts)
		if f.injectFrom != nil {
			runner.injectFrom = f.injectFrom
		}
		if f.fault != nil {
			runner.fault = func(idx int) error { return f.fault(node, idx) }
		}
		for {
			slice, ok := q.pop()
			if !ok {
				return nil
			}
			if err := runner.run(slice, results, done); err != nil {
				var nl *nodeLostError
				if errors.As(err, &nl) {
					q.requeue(nl.remaining)
					return err
				}
				q.stop()
				return err
			}
		}
	}

	// Supervisor: run one worker per node, respawn replacements for lost
	// nodes (fresh ids beyond the original node range) until the respawn
	// budget is spent, and surface the first fatal error.
	ch := make(chan error, len(f.nodes))
	live := 0
	nextID := len(f.nodes)
	for ni, node := range f.nodes {
		ni, node := ni, node
		live++
		go func() { ch <- worker(ni, node) }()
	}
	respawns := 2 * len(f.nodes)
	var fatal error
	for live > 0 {
		err := <-ch
		live--
		if err == nil {
			continue
		}
		var nl *nodeLostError
		if !errors.As(err, &nl) {
			if fatal == nil {
				fatal = err
				q.stop()
			}
			continue
		}
		if fatal != nil {
			continue
		}
		if respawns <= 0 {
			fatal = fmt.Errorf("campaign: node respawn budget exhausted: %w", err)
			q.stop()
			continue
		}
		respawns--
		sys, berr := f.buildNode()
		if berr != nil {
			fatal = fmt.Errorf("campaign: spawning replacement node: %w", berr)
			q.stop()
			continue
		}
		id := nextID
		nextID++
		live++
		go func() { ch <- worker(id, sys) }()
	}
	if fatal != nil {
		return nil, fatal
	}
	if err := secs.store(results); err != nil {
		return nil, err
	}
	return &Result{Spec: spec, Platform: f.platform, Results: results,
		Engine: f.nodes[0].Machine.EngineKind(), EngineStats: estats}, nil
}

// respawnWith builds a replacement node configured like the campaign's
// original nodes: the execution engine selected in opts is reapplied, so a
// post-watchdog respawn cannot silently fall back to the platform default.
func (f *Farm) respawnWith(opts ExecOptions) func() (*kernel.System, error) {
	return func() (*kernel.System, error) {
		sys, err := f.buildNode()
		if err != nil {
			return nil, err
		}
		if err := sys.Machine.SetEngine(opts.Engine); err != nil {
			return nil, err
		}
		return sys, nil
	}
}

// runReplay fans replay-mode injections out over the nodes, one stolen
// target at a time, each supervised (panic retry, watchdog respawn,
// quarantine) like the fork-from-golden path.
func (f *Farm) runReplay(targets []inject.Target, results []inject.Result,
	skip []bool, done func(idx int) error, opts ExecOptions) (platform.EngineStats, error) {
	var (
		mu     sync.Mutex
		next   int
		wg     sync.WaitGroup
		esMu   sync.Mutex
		estats platform.EngineStats
	)
	errs := make([]error, len(f.nodes))
	for ni, node := range f.nodes {
		ni, node := ni, node
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := node.Machine.SetEngine(opts.Engine); err != nil {
				errs[ni] = err
				return
			}
			node.Machine.Engine().ResetStats()
			rep := newReplayRunner(node, f.golden, opts)
			rep.respawn = f.respawnWith(opts)
			defer func() {
				esMu.Lock()
				estats.Add(rep.sys.Machine.Engine().Stats())
				esMu.Unlock()
			}()
			for {
				mu.Lock()
				for next < len(targets) && skip[next] {
					next++
				}
				if next >= len(targets) {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				res, err := rep.runTarget(i, targets[i])
				if err != nil {
					errs[ni] = err
					return
				}
				results[i] = res
				if err := done(i); err != nil {
					errs[ni] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return platform.EngineStats{}, err
		}
	}
	return estats, nil
}
