package campaign

import (
	"fmt"
	"sync"

	"kfi/internal/cc"
	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/workload"
)

// Farm distributes one campaign's injections across several identical guest
// systems running concurrently — the paper's setup of "three P4 and two G4
// machines ... used in the injection campaigns to speed up the experiments".
// Every node is built from the same images, so results are the union of
// deterministic per-node runs.
type Farm struct {
	platform isa.Platform
	nodes    []*kernel.System
	golden   uint32
	profile  *Profile
}

// NewFarm builds n identical guest systems of the given platform. opts may
// be zero; the workload runs at the given scale.
func NewFarm(platform isa.Platform, n, scale int, opts kernel.Options) (*Farm, error) {
	if n < 1 {
		n = 1
	}
	if scale < 1 {
		scale = 1
	}
	uimg, err := cc.Compile(workload.Program(scale), platform, kernel.UserBases)
	if err != nil {
		return nil, fmt.Errorf("campaign: farm workload: %w", err)
	}
	f := &Farm{platform: platform}
	for i := 0; i < n; i++ {
		sys, err := kernel.BuildSystem(platform, uimg, workload.StandardProcs(), opts)
		if err != nil {
			return nil, fmt.Errorf("campaign: farm node %d: %w", i, err)
		}
		f.nodes = append(f.nodes, sys)
	}
	golden, err := Golden(f.nodes[0])
	if err != nil {
		return nil, err
	}
	f.golden = golden
	prof, err := ProfileKernel(f.nodes[0])
	if err != nil {
		return nil, err
	}
	f.profile = prof
	return f, nil
}

// Nodes returns the number of guest systems.
func (f *Farm) Nodes() int { return len(f.nodes) }

// Golden returns the fault-free checksum shared by all nodes.
func (f *Farm) Golden() uint32 { return f.golden }

// Profile returns the kernel-usage profile measured on node 0.
func (f *Farm) Profile() *Profile { return f.profile }

// Run executes a campaign, fanning targets out over the nodes. Results come
// back in target order regardless of which node executed them, so a Farm run
// produces the same per-index results as a single-node run of the same spec.
// It uses the default execution options (fork-from-golden); see RunWith.
func (f *Farm) Run(spec Spec, progress func(done, total int)) (*Result, error) {
	return f.RunWith(spec, progress, ExecOptions{})
}

// RunWith is Run with explicit execution options. In fork-from-golden mode
// each node takes a contiguous chunk of the trigger-sorted schedule, so
// neighboring triggers share incremental checkpoints within a node; in
// replay mode nodes steal individual targets dynamically.
func (f *Farm) RunWith(spec Spec, progress func(done, total int), opts ExecOptions) (*Result, error) {
	gen := NewGenerator(f.nodes[0], f.profile, spec.Seed, profileCycles(f.profile))
	targets, err := gen.Targets(spec)
	if err != nil {
		return nil, err
	}
	results := make([]inject.Result, len(targets))

	var (
		mu   sync.Mutex
		done int
	)
	tickLocked := func() {
		done++
		d := done
		mu.Unlock()
		if progress != nil {
			progress(d, len(targets))
		}
	}

	if !opts.Replay {
		sched, err := buildSchedule(f.nodes[0], targets)
		if err != nil {
			return nil, err
		}
		for i, r := range sched.pre {
			results[i] = r
			mu.Lock()
			tickLocked()
		}
		chunkTick := func(int) {
			mu.Lock()
			tickLocked()
		}
		var (
			wg   sync.WaitGroup
			errs = make([]error, len(f.nodes))
		)
		per := (len(sched.order) + len(f.nodes) - 1) / len(f.nodes)
		for ni, node := range f.nodes {
			lo := ni * per
			if lo >= len(sched.order) {
				break
			}
			hi := lo + per
			if hi > len(sched.order) {
				hi = len(sched.order)
			}
			ni, node, chunk := ni, node, sched.order[lo:hi]
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs[ni] = runChunk(node, f.golden, targets, chunk, results, opts, chunkTick)
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return &Result{Spec: spec, Platform: f.platform, Results: results}, nil
	}

	var (
		next int
		wg   sync.WaitGroup
	)
	for _, node := range f.nodes {
		node := node
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= len(targets) {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				results[i] = inject.RunOne(node, targets[i], f.golden)

				mu.Lock()
				tickLocked()
			}
		}()
	}
	wg.Wait()
	return &Result{Spec: spec, Platform: f.platform, Results: results}, nil
}
