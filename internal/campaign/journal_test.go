package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"kfi/internal/inject"
	"kfi/internal/isa"
)

func testHeader() Header {
	return HeaderFor(isa.CISC, 0xdeadbeef, Spec{Campaign: inject.CampCode, N: 10, Seed: 7, Burst: 1})
}

func sampleJournalResult(i int) inject.Result {
	return inject.Result{
		Target:          inject.Target{Campaign: inject.CampCode, Addr: uint32(0x1000 + 4*i), Bit: uint(i % 8)},
		ActivationKnown: true,
		Activated:       i%2 == 0,
		Outcome:         inject.OCrash,
		Latency:         uint64(100 * i),
		RunCycles:       uint64(50_000 + i),
		Checksum:        uint32(0xab0 + i),
	}
}

// buildJournalBytes assembles a valid journal image of n records in memory,
// returning the byte offsets at which each record frame starts.
func buildJournalBytes(h Header, n int) ([]byte, []int) {
	hp, err := json.Marshal(h)
	if err != nil {
		panic(err)
	}
	buf := frame(hp)
	offs := make([]int, 0, n)
	for i := 0; i < n; i++ {
		offs = append(offs, len(buf))
		p, err := json.Marshal(journalRecord{Idx: i, Result: sampleJournalResult(i)})
		if err != nil {
			panic(err)
		}
		buf = append(buf, frame(p)...)
	}
	return buf, offs
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.kjournal")
	h := testHeader()
	j, err := CreateJournal(path, h)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if err := j.Append(i, sampleJournalResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, completed, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("header round trip: got %+v, want %+v", got, h)
	}
	if len(completed) != n {
		t.Fatalf("recovered %d records, want %d", len(completed), n)
	}
	for i := 0; i < n; i++ {
		if completed[i] != sampleJournalResult(i) {
			t.Fatalf("record %d: got %+v, want %+v", i, completed[i], sampleJournalResult(i))
		}
	}
}

func TestJournalHeaderMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.kjournal")
	h := testHeader()
	j, err := CreateJournal(path, h)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	other := h
	other.Seed++
	if _, _, err := ResumeJournal(path, other); !errors.Is(err, ErrJournalHeader) {
		t.Fatalf("resume with mismatched header: err = %v, want ErrJournalHeader", err)
	}
	// The matching header still resumes.
	j2, completed, err := ResumeJournal(path, h)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if len(completed) != 0 {
		t.Fatalf("empty journal resumed %d records", len(completed))
	}
}

// TestJournalCorruption drives the recovery contract: any damage — a torn
// tail from a crash mid-append, a bit flip anywhere, a corrupted length
// field, even an intact frame with senseless contents — costs only the
// records at and after the damage, never the prefix before it.
func TestJournalCorruption(t *testing.T) {
	h := testHeader()
	base, offs := buildJournalBytes(h, 5)
	senseless, err := json.Marshal(journalRecord{Idx: 99, Result: sampleJournalResult(0)})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		want    int  // records recovered
		wantErr bool // header unreadable
	}{
		{"intact", func(b []byte) []byte { return b }, 5, false},
		{"truncated tail record", func(b []byte) []byte { return b[:len(b)-3] }, 4, false},
		{"tail CRC bit flipped", func(b []byte) []byte {
			b[len(b)-1] ^= 0x10
			return b
		}, 4, false},
		{"payload bit flipped mid-journal", func(b []byte) []byte {
			b[offs[2]+6] ^= 0x01
			return b
		}, 2, false},
		{"length field corrupted", func(b []byte) []byte {
			b[offs[4]] = 0xFF // implausible frame length
			return b
		}, 4, false},
		{"intact frame, out-of-range index", func(b []byte) []byte {
			return append(b, frame(senseless)...)
		}, 5, false},
		{"trailing garbage", func(b []byte) []byte {
			return append(b, 0xDE, 0xAD, 0xBE)
		}, 5, false},
		{"damaged header", func(b []byte) []byte {
			b[6] ^= 0x40
			return b
		}, 0, true},
		{"empty file", func(b []byte) []byte { return nil }, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "c.kjournal")
			if err := os.WriteFile(path, tc.mutate(bytes.Clone(base)), 0o644); err != nil {
				t.Fatal(err)
			}
			got, completed, err := ReadJournal(path)
			if tc.wantErr {
				if err == nil {
					t.Fatal("damaged header read back without error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != h {
				t.Fatalf("header: got %+v, want %+v", got, h)
			}
			if len(completed) != tc.want {
				t.Fatalf("recovered %d records, want %d", len(completed), tc.want)
			}
			for i := 0; i < tc.want; i++ {
				if completed[i] != sampleJournalResult(i) {
					t.Fatalf("record %d corrupted in recovery: %+v", i, completed[i])
				}
			}
		})
	}
}

// TestJournalResumeAfterCorruption asserts the resume path truncates the
// damaged tail and continues appending from the last valid prefix.
func TestJournalResumeAfterCorruption(t *testing.T) {
	h := testHeader()
	base, _ := buildJournalBytes(h, 5)
	path := filepath.Join(t.TempDir(), "c.kjournal")
	// A crash tore the last record in half.
	if err := os.WriteFile(path, base[:len(base)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	j, completed, err := ResumeJournal(path, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(completed) != 4 {
		t.Fatalf("resume recovered %d records, want 4", len(completed))
	}
	// Re-append the lost record; the journal must now read back whole.
	if err := j.Append(4, sampleJournalResult(4)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, completed, err = ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(completed) != 5 {
		t.Fatalf("after repair: %d records, want 5", len(completed))
	}
	for i := 0; i < 5; i++ {
		if completed[i] != sampleJournalResult(i) {
			t.Fatalf("record %d wrong after repair: %+v", i, completed[i])
		}
	}
}

// FuzzJournalScan hammers the frame scanner with arbitrary bytes: it must
// never panic, and anything it accepts must satisfy the journal invariants.
func FuzzJournalScan(f *testing.F) {
	h := testHeader()
	base, _ := buildJournalBytes(h, 3)
	f.Add(base)
	f.Add(base[:len(base)-5])
	f.Add([]byte("not a journal at all"))
	f.Add([]byte{})
	flipped := bytes.Clone(base)
	flipped[len(flipped)/2] ^= 0x80
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "f.kjournal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, completed, err := ReadJournal(path)
		if err != nil {
			return
		}
		if got.Magic != journalMagic {
			t.Fatalf("accepted journal with magic %q", got.Magic)
		}
		for idx := range completed {
			if idx < 0 || (got.N > 0 && idx >= got.N) {
				t.Fatalf("accepted out-of-range record index %d (n=%d)", idx, got.N)
			}
		}
	})
}
