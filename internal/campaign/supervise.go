package campaign

import (
	"errors"
	"fmt"
	"time"

	"kfi/internal/inject"
)

// Per-injection supervision: every injection attempt runs under recover()
// panic isolation and a wall-clock watchdog, and is retried with exponential
// backoff from a fresh snapshot restore. An injection that fails every
// attempt is recorded as inject.OQuarantined with its diagnostics instead of
// aborting the campaign — at the paper's scale (>115,000 injections per
// platform) a single harness bug or pathological target must cost one
// experiment, not the whole run.

// Supervision policy defaults (see ExecOptions).
const (
	defaultMaxAttempts      = 3
	defaultInjectionTimeout = 2 * time.Minute
	defaultRetryBackoff     = 2 * time.Millisecond
)

// supervision is the resolved per-injection supervision policy.
type supervision struct {
	maxAttempts int
	timeout     time.Duration
	backoff     time.Duration
	sleep       func(time.Duration) // swapped out in tests
}

// supervision resolves the ExecOptions supervision fields to their defaults.
func (o ExecOptions) supervision() supervision {
	s := supervision{
		maxAttempts: o.MaxAttempts,
		timeout:     o.InjectionTimeout,
		backoff:     o.RetryBackoff,
		sleep:       time.Sleep,
	}
	if s.maxAttempts <= 0 {
		s.maxAttempts = defaultMaxAttempts
	}
	if s.timeout == 0 {
		s.timeout = defaultInjectionTimeout
	}
	if s.backoff <= 0 {
		s.backoff = defaultRetryBackoff
	}
	return s
}

// errNodeDown is the simulated-node-loss sentinel the farm's test hook
// returns: the node is gone SIGKILL-style, its unfinished work must return
// to the steal queue, and a replacement node takes over.
var errNodeDown = errors.New("campaign: node lost")

// nodeLostError carries a dead node's unfinished work back to the farm
// scheduler, including the entry that was in flight when the node died.
type nodeLostError struct {
	remaining []trigOrder
	cause     error
}

func (e *nodeLostError) Error() string {
	return fmt.Sprintf("campaign: node lost with %d injections unfinished: %v", len(e.remaining), e.cause)
}

func (e *nodeLostError) Unwrap() error { return e.cause }

// attemptOutcome is one supervised attempt's result.
type attemptOutcome struct {
	res      inject.Result
	err      error
	panicked bool
	diag     string
}

// superviseAttempt runs fn under panic isolation and, when timeout > 0, a
// wall-clock watchdog. A timeout abandons the attempt goroutine (and with it
// the machine it owns — the caller must replace the machine before the next
// attempt); fn must therefore pin every bit of mutable context it uses
// before superviseAttempt is called, so an abandoned attempt can never touch
// a successor's state.
//
// The captured panic diagnostic is the panic value only — deliberately no
// stack addresses or goroutine ids — so quarantined results are
// deterministic and resume-equivalence holds bit-for-bit.
func superviseAttempt(timeout time.Duration, fn func() (inject.Result, error)) (out attemptOutcome, timedOut bool) {
	ch := make(chan attemptOutcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- attemptOutcome{panicked: true, diag: fmt.Sprintf("panic: %v", p)}
			}
		}()
		res, err := fn()
		ch <- attemptOutcome{res: res, err: err}
	}()
	if timeout <= 0 {
		return <-ch, false
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out, false
	case <-timer.C:
		return attemptOutcome{}, true
	}
}

// quarantinedResult records an injection whose every supervised attempt
// failed. The guest outcome is unknowable, so none of the paper's
// failure-distribution columns apply; the diagnostics travel with the result
// into logs and journals.
func quarantinedResult(t inject.Target, attempts int, diag string) inject.Result {
	return inject.Result{
		Target:          t,
		ActivationKnown: t.Campaign != inject.CampSysReg,
		Outcome:         inject.OQuarantined,
		Diag:            fmt.Sprintf("quarantined after %d attempts: %s", attempts, diag),
	}
}
