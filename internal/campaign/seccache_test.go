package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"kfi/internal/cc"
	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/staticsense"
	"kfi/internal/workload"
)

// runCached runs one section-cached campaign, journaling to jpath, and
// returns the result plus the per-section cache decisions.
func runCached(t *testing.T, sys *kernel.System, golden uint32, prof *Profile,
	spec Spec, dir, jpath string) (*Result, map[string]bool) {
	t.Helper()
	h := HeaderFor(sys.Platform, golden, spec)
	h.Cached = true
	j, err := CreateJournal(jpath, h)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	hits := map[string]bool{}
	res, err := RunWith(sys, golden, prof, spec, nil, ExecOptions{
		Sense:        true,
		SectionCache: dir,
		Journal:      j,
		onSection:    func(name string, hit bool) { hits[name] = hit },
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, hits
}

// canonicalBytes reads a journal back and renders it in canonical
// (index-sorted) form — the byte-identity criterion for incremental runs,
// since cache restoration completes rows in section order rather than
// trigger order.
func canonicalBytes(t *testing.T, jpath string) []byte {
	t.Helper()
	h, completed, err := ReadJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := CanonicalJournalBytes(h, completed)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestSectionCacheWarmRunIdentical is the incremental-campaign acceptance
// contract, on both platforms: a re-run against an unchanged target hits on
// every section and reproduces the cold run's outcome table and canonical
// journal byte-for-byte — and the cache itself changes nothing except the
// PredCached membership marker relative to an uncached run.
func TestSectionCacheWarmRunIdentical(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 30
	}
	for _, platform := range []isa.Platform{isa.CISC, isa.RISC} {
		t.Run(platform.Short(), func(t *testing.T) {
			sys, golden, prof := getSystem(t, platform)
			spec := Spec{Campaign: inject.CampCode, N: n, Seed: 4242}
			dir := t.TempDir()

			base, err := RunWith(sys, golden, prof, spec, nil, ExecOptions{Sense: true})
			if err != nil {
				t.Fatal(err)
			}

			coldJ := filepath.Join(dir, "cold.kfij")
			cold, coldHits := runCached(t, sys, golden, prof, spec, dir, coldJ)
			for name, hit := range coldHits {
				if hit {
					t.Errorf("cold run hit on section %q with an empty cache", name)
				}
			}
			if len(coldHits) < 2 {
				t.Fatalf("campaign decomposed into %d sections; need several for an incremental test", len(coldHits))
			}

			// The cache changes nothing but the membership marker.
			for i := range base.Results {
				want := base.Results[i]
				want.PredCached = true
				if !reflect.DeepEqual(want, cold.Results[i]) {
					t.Errorf("injection %d: cached run diverges from uncached:\n  uncached: %+v\n  cached:   %+v",
						i, base.Results[i], cold.Results[i])
				}
			}

			warmJ := filepath.Join(dir, "warm.kfij")
			warm, warmHits := runCached(t, sys, golden, prof, spec, dir, warmJ)
			for name, hit := range warmHits {
				if !hit {
					t.Errorf("warm run missed on unchanged section %q", name)
				}
			}
			if !reflect.DeepEqual(cold.Results, warm.Results) {
				t.Error("warm outcome table diverges from the cold run")
			}
			if !bytes.Equal(canonicalBytes(t, coldJ), canonicalBytes(t, warmJ)) {
				t.Error("warm canonical journal is not byte-identical to the cold run's")
			}

			// A damaged section file reads as a miss, never an error: that
			// section re-executes and the table still comes out identical.
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			truncated := false
			for _, e := range ents {
				if filepath.Ext(e.Name()) != ".ksec" || truncated {
					continue
				}
				path := filepath.Join(dir, e.Name())
				if err := os.Truncate(path, 10); err != nil {
					t.Fatal(err)
				}
				truncated = true
			}
			if !truncated {
				t.Fatal("no section files stored")
			}
			redoJ := filepath.Join(dir, "redo.kfij")
			redo, redoHits := runCached(t, sys, golden, prof, spec, dir, redoJ)
			misses := 0
			for _, hit := range redoHits {
				if !hit {
					misses++
				}
			}
			if misses != 1 {
				t.Errorf("run against one truncated section file missed %d sections, want 1", misses)
			}
			if !reflect.DeepEqual(cold.Results, redo.Results) {
				t.Error("outcome table diverges after re-executing a damaged section")
			}
		})
	}
}

// freshSystem builds an uncached, unshared system — the modified-section
// test patches the kernel image in place, which must never leak into the
// package-wide cached systems.
func freshSystem(t *testing.T, p isa.Platform) (*kernel.System, uint32, *Profile) {
	t.Helper()
	uimg, err := cc.Compile(workload.Program(1), p, kernel.UserBases)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := kernel.BuildSystem(p, uimg, workload.StandardProcs(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	golden, err := Golden(sys)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ProfileKernel(sys)
	if err != nil {
		t.Fatal(err)
	}
	return sys, golden, prof
}

// TestSectionCacheModifiedSection: after an inert (semantics-preserving)
// one-bit modification to one kernel function, an incremental re-run misses
// only that function's section, re-injects only its targets, and produces
// the same table a fresh full campaign over the modified image does.
func TestSectionCacheModifiedSection(t *testing.T) {
	n := 80
	if testing.Short() {
		n = 40
	}
	for _, platform := range []isa.Platform{isa.CISC, isa.RISC} {
		t.Run(platform.Short(), func(t *testing.T) {
			sys, golden, prof := freshSystem(t, platform)
			spec := Spec{Campaign: inject.CampCode, N: n, Seed: 77}
			dir := t.TempDir()

			cold, coldHits := runCached(t, sys, golden, prof, spec, dir,
				filepath.Join(dir, "cold.kfij"))
			if len(coldHits) < 2 {
				t.Fatalf("campaign decomposed into %d sections; need several", len(coldHits))
			}

			// Pick an inert-encoding flip inside one drawn section as the
			// modification: flipping a spare encoding bit changes the
			// section's bytes without changing the kernel's behavior, so the
			// golden run — and with it every other section's key — stays
			// identical.
			an, err := staticsense.New(sys.KernelImage)
			if err != nil {
				t.Fatal(err)
			}
			var patch *inject.Target
		search:
			for i := range cold.Results {
				ct := cold.Results[i].Target
				if ct.Func == "" {
					continue
				}
				for off := uint8(0); off < 4; off++ {
					for bit := uint(0); bit < 8; bit++ {
						if an.ClassifyFlip(ct.Addr, off, bit).Class == staticsense.ClassInertEncoding {
							patch = &inject.Target{Campaign: inject.CampCode,
								Addr: ct.Addr, ByteOff: off, Bit: bit, Func: ct.Func}
							break search
						}
					}
				}
			}
			if patch == nil {
				t.Skipf("%v: no inert-encoding bit in any drawn section", platform)
			}

			img := sys.KernelImage
			addr := patch.Addr + uint32(patch.ByteOff)
			img.Code[addr-img.CodeBase] ^= 1 << patch.Bit
			sys.Machine.Mem.Reboot()
			sys.Machine.Mem.FlipBit(addr, patch.Bit)
			sys.Machine.Seal()
			newGolden, err := Golden(sys)
			if err != nil {
				t.Fatal(err)
			}
			if newGolden != golden {
				t.Fatalf("inert patch changed the golden checksum %08x -> %08x", golden, newGolden)
			}

			warm, warmHits := runCached(t, sys, golden, prof, spec, dir,
				filepath.Join(dir, "warm.kfij"))
			for name, hit := range warmHits {
				if hit == (name == patch.Func) {
					t.Errorf("section %q: hit=%v after modifying %q", name, hit, patch.Func)
				}
			}

			// The incremental table equals a fresh full campaign over the
			// modified image, modulo the cache-membership marker.
			full, err := RunWith(sys, golden, prof, spec, nil, ExecOptions{Sense: true})
			if err != nil {
				t.Fatal(err)
			}
			for i := range full.Results {
				want := full.Results[i]
				want.PredCached = true
				if !reflect.DeepEqual(want, warm.Results[i]) {
					t.Errorf("injection %d: incremental run diverges from full re-run:\n  full: %+v\n  incr: %+v",
						i, full.Results[i], warm.Results[i])
				}
			}
			// Rows outside the modified section are the cold run's, verbatim.
			for i := range cold.Results {
				if cold.Results[i].Target.Func == patch.Func {
					continue
				}
				if !reflect.DeepEqual(cold.Results[i], warm.Results[i]) {
					t.Errorf("injection %d (section %q): cached row changed across an unrelated modification",
						i, cold.Results[i].Target.Func)
				}
			}
		})
	}
}

// TestSectionCacheRejectedInReplay: replay mode never traces the golden run
// the cache keys fingerprint, so caching must be refused, not ignored.
func TestSectionCacheRejectedInReplay(t *testing.T) {
	sys, golden, prof := getSystem(t, isa.CISC)
	_, err := RunWith(sys, golden, prof, Spec{Campaign: inject.CampCode, N: 1, Seed: 1}, nil,
		ExecOptions{Replay: true, SectionCache: t.TempDir()})
	if err == nil {
		t.Fatal("SectionCache+Replay accepted")
	}
}
