package campaign

import (
	"reflect"
	"testing"

	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/platform"
)

// TestEngineCampaignEquivalence pins the execution engines' end-to-end
// contract: full campaigns — including code-corruption injections that flip
// bits inside already-cached or already-translated pages — produce
// per-injection results that are bit-identical on every engine the platform
// supports, on both platforms.
func TestEngineCampaignEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns are slow")
	}
	for _, plat := range []isa.Platform{isa.CISC, isa.RISC} {
		sys, golden, prof := getSystem(t, plat)
		desc := sys.Machine.Descriptor()
		for _, camp := range []inject.Campaign{inject.CampCode, inject.CampStack, inject.CampData} {
			t.Run(plat.Short()+"/"+camp.String(), func(t *testing.T) {
				spec := Spec{Campaign: camp, N: 10, Seed: 77}
				if err := sys.Machine.SetEngine(0); err != nil {
					t.Fatal(err)
				}
				ref, err := RunWith(sys, golden, prof, spec, nil, ExecOptions{})
				if err != nil {
					t.Fatal(err)
				}
				for _, kind := range desc.Engines() {
					if kind == platform.DefaultEngine(desc) {
						continue
					}
					if err := sys.Machine.SetEngine(kind); err != nil {
						t.Fatal(err)
					}
					got, err := RunWith(sys, golden, prof, spec, nil, ExecOptions{})
					if err != nil {
						t.Fatal(err)
					}
					for i := range ref.Results {
						if !reflect.DeepEqual(ref.Results[i], got.Results[i]) {
							t.Errorf("%v: injection %d diverges:\n  default: %+v\n  %v: %+v",
								kind, i, ref.Results[i], kind, got.Results[i])
						}
					}
				}
				if err := sys.Machine.SetEngine(0); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
