package campaign

import (
	"reflect"
	"testing"

	"kfi/internal/inject"
	"kfi/internal/isa"
)

// TestPredecodeCampaignEquivalence pins the predecode cache's end-to-end
// contract: full campaigns — including code-corruption injections that flip
// bits inside already-cached pages — produce per-injection results that are
// bit-identical with the cache on and off, on both platforms.
func TestPredecodeCampaignEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns are slow")
	}
	for _, platform := range []isa.Platform{isa.CISC, isa.RISC} {
		sys, golden, prof := getSystem(t, platform)
		core := sys.Machine.Core()
		for _, camp := range []inject.Campaign{inject.CampCode, inject.CampStack, inject.CampData} {
			t.Run(platform.Short()+"/"+camp.String(), func(t *testing.T) {
				spec := Spec{Campaign: camp, N: 10, Seed: 77}
				cached, err := RunWith(sys, golden, prof, spec, nil, ExecOptions{})
				if err != nil {
					t.Fatal(err)
				}
				core.SetPredecode(false)
				defer core.SetPredecode(true)
				uncached, err := RunWith(sys, golden, prof, spec, nil, ExecOptions{})
				if err != nil {
					t.Fatal(err)
				}
				for i := range cached.Results {
					if !reflect.DeepEqual(cached.Results[i], uncached.Results[i]) {
						t.Errorf("injection %d diverges:\n  cached:   %+v\n  uncached: %+v",
							i, cached.Results[i], uncached.Results[i])
					}
				}
			})
		}
	}
}
