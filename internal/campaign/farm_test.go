package campaign

import (
	"sort"
	"testing"

	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/kernel"
)

func TestFarmMatchesSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	spec := Spec{Campaign: inject.CampCode, N: 24, Seed: 55}

	farm, err := NewFarm(isa.CISC, 3, 1, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if farm.Nodes() != 3 {
		t.Fatalf("nodes = %d", farm.Nodes())
	}
	farmRes, err := farm.Run(spec, nil)
	if err != nil {
		t.Fatal(err)
	}

	sys, golden, prof := getSystem(t, isa.CISC)
	if golden != farm.Golden() {
		t.Fatalf("farm golden 0x%x != single golden 0x%x", farm.Golden(), golden)
	}
	soloRes, err := Run(sys, golden, prof, spec, nil)
	if err != nil {
		t.Fatal(err)
	}

	if len(farmRes.Results) != len(soloRes.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(farmRes.Results), len(soloRes.Results))
	}
	// Same targets, same deterministic machines → identical outcomes in
	// target order.
	for i := range farmRes.Results {
		fr, sr := farmRes.Results[i], soloRes.Results[i]
		if fr.Outcome != sr.Outcome || fr.Cause != sr.Cause || fr.Latency != sr.Latency {
			t.Errorf("injection %d differs: farm=%+v solo=%+v", i, summarizeOne(fr), summarizeOne(sr))
		}
	}
}

func summarizeOne(r inject.Result) string {
	return r.Outcome.String() + "/" + r.Cause.String()
}

func TestFarmProgressMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	farm, err := NewFarm(isa.RISC, 2, 1, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var seen []int
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	_, err = farm.Run(Spec{Campaign: inject.CampStack, N: 10, Seed: 2}, func(done, total int) {
		<-mu
		seen = append(seen, done)
		mu <- struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 10 {
		t.Fatalf("progress calls = %d, want 10", len(seen))
	}
	sort.Ints(seen)
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress values = %v, want 1..10", seen)
		}
	}
}
