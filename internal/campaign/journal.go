package campaign

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"

	"kfi/internal/inject"
	"kfi/internal/isa"
)

// The journal is the campaign durability layer: one append-only file per
// campaign, one record per completed injection outcome, so a killed or
// crashed kfi-campaign process can resume exactly where it left off instead
// of discarding every finished experiment.
//
// On-disk format (all integers big-endian):
//
//	frame:  u32 payload length | payload | u32 CRC-32C(payload)
//
// The first frame's payload is the JSON Header identifying the campaign the
// journal belongs to; every later frame's payload is the JSON of one
// journalRecord{Idx, Result}. A reader accepts the longest prefix of intact
// frames and ignores everything after the first damaged one — a torn tail
// record from a crash mid-append, or a bit-flipped byte anywhere, costs only
// the records at and after the damage, never the prefix. ResumeJournal
// truncates the file back to that valid prefix before appending.
//
// Appends go straight to the file descriptor (no userspace buffering), so a
// SIGKILL loses nothing already appended; fsync is batched every
// journalSyncEvery records to bound what a whole-machine crash can lose
// without paying a sync per injection.

// journalMagic names the format; bump the digit on incompatible changes.
const journalMagic = "KFIJRNL1"

// maxJournalFrame caps a frame payload so a corrupted length field cannot
// drive a giant allocation (a record is a few hundred bytes of JSON).
const maxJournalFrame = 1 << 20

// journalSyncEvery is the fsync batch size.
const journalSyncEvery = 64

// ErrJournalHeader reports a journal that belongs to a different campaign
// than the one being resumed (or is not a journal at all).
var ErrJournalHeader = errors.New("campaign: journal header mismatch")

var journalCRC = crc32.MakeTable(crc32.Castagnoli)

// Header identifies the campaign a journal belongs to. Every field must
// match on resume: a journal written for a different spec, seed, platform,
// or golden checksum describes different experiments and must not be
// spliced into this run.
type Header struct {
	Magic    string          `json:"magic"`
	Platform isa.Platform    `json:"platform"`
	Campaign inject.Campaign `json:"campaign"`
	N        int             `json:"n"`
	Seed     int64           `json:"seed"`
	Burst    uint8           `json:"burst"`
	Golden   uint32          `json:"golden"`
	// Prune records whether the campaign ran with predicted-inert pruning:
	// a pruned journal holds synthesized results for skipped injections, so
	// it must not be spliced into a run with a different pruning mode.
	Prune bool `json:"prune,omitempty"`
	// Harden names the hardening passes the guest kernel was built with
	// (kir.HardenOpts.String(), e.g. "dup+cfsig"); empty for unhardened
	// campaigns, so pre-hardening journals remain byte-identical. The golden
	// checksum alone cannot tell the builds apart — a hardened fault-free run
	// produces the same workload checksum by construction — so resume
	// matching needs the explicit marker.
	Harden string `json:"harden,omitempty"`
	// Cached records whether the campaign ran with the per-section outcome
	// cache: cached rows carry PredCached, so a cached journal must not be
	// spliced into an uncached run (or vice versa) — the rows would differ
	// byte-for-byte even though the outcomes match.
	Cached bool `json:"cached,omitempty"`
	// Engine names the execution engine the campaign ran on (e.g.
	// "translate", see internal/platform.EngineKind); empty for the platform
	// default, so pre-engine journals remain byte-identical. Outcomes are
	// engine-invariant by construction, but resume still refuses to splice a
	// journal written under one engine into a run under another: a divergence
	// between engines is exactly the bug that policy exists to surface.
	Engine string `json:"engine,omitempty"`
}

// HeaderFor builds the journal header for a campaign spec.
func HeaderFor(platform isa.Platform, golden uint32, spec Spec) Header {
	return Header{Magic: journalMagic, Platform: platform, Campaign: spec.Campaign,
		N: spec.N, Seed: spec.Seed, Burst: spec.Burst, Golden: golden}
}

// journalRecord is one journaled outcome: the target's index in the
// campaign's deterministic target order plus its classified result.
type journalRecord struct {
	Idx    int           `json:"idx"`
	Result inject.Result `json:"result"`
}

// Journal is an open outcome journal positioned for appending. Append is
// safe for concurrent use by the farm's node goroutines.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	pending int // appends since the last fsync
	closed  bool
}

// CreateJournal creates (or truncates) a journal for the given campaign and
// writes its header frame.
func CreateJournal(path string, h Header) (*Journal, error) {
	h.Magic = journalMagic
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	payload, err := json.Marshal(h)
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Write(frame(payload)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{f: f}, nil
}

// ResumeJournal opens an existing journal, validates that its header matches
// h, and returns the already-completed outcomes of its longest valid record
// prefix, truncating any damaged tail so subsequent appends extend the valid
// prefix. When the file does not exist it is created, so a first run and a
// resumed run use the same flag.
func ResumeJournal(path string, h Header) (*Journal, map[int]inject.Result, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if errors.Is(err, os.ErrNotExist) {
		j, cerr := CreateJournal(path, h)
		return j, nil, cerr
	}
	if err != nil {
		return nil, nil, err
	}
	got, completed, validEnd, err := scanJournal(f)
	if err != nil {
		f.Close()
		// An unreadable or headerless journal is not silently overwritten:
		// the operator asked to resume from it, so losing it is an error.
		return nil, nil, fmt.Errorf("campaign: resume %s: %w", path, err)
	}
	h.Magic = journalMagic
	if got != h {
		f.Close()
		return nil, nil, fmt.Errorf("%w: %s holds %+v, campaign is %+v", ErrJournalHeader, path, got, h)
	}
	if err := f.Truncate(validEnd); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Journal{f: f}, completed, nil
}

// ReadJournal scans a journal file read-only, returning its header and the
// outcomes of the longest valid record prefix.
func ReadJournal(path string) (Header, map[int]inject.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, err
	}
	defer f.Close()
	h, completed, _, err := scanJournal(f)
	return h, completed, err
}

// scanJournal reads the header and the longest valid record prefix,
// returning the file offset just past the last intact frame. Damage — a
// truncated tail, a length field pointing past EOF, or a CRC mismatch — ends
// the scan without error; only a missing or malformed header frame fails.
func scanJournal(f *os.File) (Header, map[int]inject.Result, int64, error) {
	r := &frameReader{r: f}
	hp, ok := r.next()
	if !ok {
		return Header{}, nil, 0, errors.New("no intact header frame")
	}
	var h Header
	if err := json.Unmarshal(hp, &h); err != nil || h.Magic != journalMagic {
		return Header{}, nil, 0, errors.New("not a campaign journal")
	}
	completed := make(map[int]inject.Result)
	validEnd := r.off
	for {
		payload, ok := r.next()
		if !ok {
			return h, completed, validEnd, nil
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil || rec.Idx < 0 ||
			(h.N > 0 && rec.Idx >= h.N) {
			// A frame with an intact CRC but senseless contents still ends
			// the valid prefix (defense in depth; CRC collisions are
			// possible under the multi-bit corruption this lab studies).
			return h, completed, validEnd, nil
		}
		completed[rec.Idx] = rec.Result
		validEnd = r.off
	}
}

// frameReader iterates intact frames; any damage reads as end-of-journal.
type frameReader struct {
	r   io.Reader
	off int64
}

// next returns the next frame's payload, or false at EOF or the first sign
// of damage (short read, implausible length, CRC mismatch).
func (fr *frameReader) next() ([]byte, bool) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return nil, false
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxJournalFrame {
		return nil, false
	}
	buf := make([]byte, n+4)
	if _, err := io.ReadFull(fr.r, buf); err != nil {
		return nil, false
	}
	payload, tail := buf[:n], buf[n:]
	if binary.BigEndian.Uint32(tail) != crc32.Checksum(payload, journalCRC) {
		return nil, false
	}
	fr.off += int64(4 + n + 4)
	return payload, true
}

// Frame wraps a payload in the journal's length/CRC-32C framing. It is the
// wire framing of the control plane's result streams as well: a worker ships
// outcome rows as journal frames, so the coordinator persists exactly what
// arrived and a torn tail frame from a dead worker is indistinguishable from
// (and as harmless as) a torn tail record from a crash mid-append.
func Frame(payload []byte) []byte { return frame(payload) }

// FrameReader iterates the intact frames of a stream; any damage — a short
// read, an implausible length, a CRC mismatch — reads as end-of-stream.
type FrameReader struct {
	fr frameReader
}

// NewFrameReader wraps a stream of journal frames.
func NewFrameReader(r io.Reader) *FrameReader { return &FrameReader{fr: frameReader{r: r}} }

// Next returns the next intact frame's payload, or false at end-of-stream or
// the first sign of damage.
func (r *FrameReader) Next() ([]byte, bool) { return r.fr.next() }

// EncodeRecord marshals one outcome record to the journal's payload format.
func EncodeRecord(idx int, res inject.Result) ([]byte, error) {
	return json.Marshal(journalRecord{Idx: idx, Result: res})
}

// DecodeRecord parses a record payload produced by EncodeRecord (or read
// back out of a journal frame).
func DecodeRecord(payload []byte) (int, inject.Result, error) {
	var rec journalRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return 0, inject.Result{}, fmt.Errorf("campaign: record: %w", err)
	}
	return rec.Idx, rec.Result, nil
}

// CanonicalJournalBytes renders a completed (or partial) outcome set as a
// journal in canonical form: the header frame followed by one record frame
// per outcome in ascending index order. Two runs of the same campaign that
// completed the same outcomes produce byte-identical canonical journals no
// matter which nodes — goroutines or machines — executed which injections,
// or in what order the records originally landed.
func CanonicalJournalBytes(h Header, completed map[int]inject.Result) ([]byte, error) {
	h.Magic = journalMagic
	hp, err := json.Marshal(h)
	if err != nil {
		return nil, err
	}
	out := frame(hp)
	idxs := make([]int, 0, len(completed))
	for i := range completed {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		payload, err := EncodeRecord(i, completed[i])
		if err != nil {
			return nil, err
		}
		out = append(out, frame(payload)...)
	}
	return out, nil
}

// frame wraps a payload in the length/CRC framing.
func frame(payload []byte) []byte {
	out := make([]byte, 0, 4+len(payload)+4)
	out = binary.BigEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	return binary.BigEndian.AppendUint32(out, crc32.Checksum(payload, journalCRC))
}

// Append journals one completed outcome. The record reaches the kernel
// before Append returns (a killed process loses nothing), and the file is
// fsynced every journalSyncEvery appends.
func (j *Journal) Append(idx int, r inject.Result) error {
	payload, err := json.Marshal(journalRecord{Idx: idx, Result: r})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("campaign: append to closed journal")
	}
	if _, err := j.f.Write(frame(payload)); err != nil {
		return fmt.Errorf("campaign: journal append: %w", err)
	}
	j.pending++
	if j.pending >= journalSyncEvery {
		j.pending = 0
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("campaign: journal sync: %w", err)
		}
	}
	return nil
}

// Close fsyncs and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
