package campaign

import (
	"testing"

	"kfi/internal/cc"
	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/stats"
	"kfi/internal/workload"
)

// testSystem caches built systems across tests (building is deterministic).
var testSystems = map[isa.Platform]*kernel.System{}
var testGolden = map[isa.Platform]uint32{}
var testProfiles = map[isa.Platform]*Profile{}

func getSystem(t *testing.T, p isa.Platform) (*kernel.System, uint32, *Profile) {
	t.Helper()
	if sys, ok := testSystems[p]; ok {
		return sys, testGolden[p], testProfiles[p]
	}
	uimg, err := cc.Compile(workload.Program(1), p, kernel.UserBases)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := kernel.BuildSystem(p, uimg, workload.StandardProcs(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	golden, err := Golden(sys)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ProfileKernel(sys)
	if err != nil {
		t.Fatal(err)
	}
	testSystems[p], testGolden[p], testProfiles[p] = sys, golden, prof
	return sys, golden, prof
}

func TestProfileKernel(t *testing.T) {
	_, _, prof := getSystem(t, isa.CISC)
	if len(prof.Funcs) < 10 {
		t.Fatalf("profile found only %d functions", len(prof.Funcs))
	}
	hot := prof.Hot(0.95)
	if len(hot) == 0 || len(hot) > len(prof.Funcs) {
		t.Fatalf("hot set size %d of %d", len(hot), len(prof.Funcs))
	}
	// The dispatcher and memcpy must be hot in any realistic profile.
	names := make(map[string]bool)
	for _, f := range hot {
		names[f.Name] = true
	}
	for _, want := range []string{"memcpy", "syscall_entry"} {
		if !names[want] {
			t.Errorf("expected %s among hot functions; hot=%v", want, keys(names))
		}
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestTargetsAreReproducible(t *testing.T) {
	sys, _, prof := getSystem(t, isa.CISC)
	for _, camp := range []inject.Campaign{inject.CampStack, inject.CampData, inject.CampSysReg, inject.CampCode} {
		spec := Spec{Campaign: camp, N: 20, Seed: 99}
		a, err := NewGenerator(sys, prof, spec.Seed, 0).Targets(spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewGenerator(sys, prof, spec.Seed, 0).Targets(spec)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: target %d differs: %+v vs %+v", camp, i, a[i], b[i])
			}
		}
	}
}

func TestTargetsLandInRightRegions(t *testing.T) {
	sys, _, prof := getSystem(t, isa.RISC)
	gen := NewGenerator(sys, prof, 5, 0)
	stacks, err := gen.Targets(Spec{Campaign: inject.CampStack, N: 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, tg := range stacks {
		if tg.ProcSlot < 0 || tg.ProcSlot >= len(sys.Procs) {
			t.Errorf("stack target proc slot %d out of range", tg.ProcSlot)
		}
		if tg.Delay == 0 {
			t.Error("stack target without a mid-run trigger time")
		}
	}
	data, err := gen.Targets(Spec{Campaign: inject.CampData, N: 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, tg := range data {
		r, ok := sys.Machine.Mem.RegionAt(tg.Addr)
		if !ok || (r.Name != "data" && r.Name != "bss") {
			t.Errorf("data target 0x%x landed in %q", tg.Addr, r.Name)
		}
	}
	code, err := gen.Targets(Spec{Campaign: inject.CampCode, N: 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, tg := range code {
		if tg.Addr%4 != 0 {
			t.Errorf("RISC code target 0x%x not word aligned", tg.Addr)
		}
		if tg.Func == "" {
			t.Error("code target without function attribution")
		}
	}
}

func TestSmallCampaignsBothPlatforms(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns are slow")
	}
	n := 12
	for _, platform := range []isa.Platform{isa.CISC, isa.RISC} {
		sys, golden, prof := getSystem(t, platform)
		for _, camp := range []inject.Campaign{inject.CampStack, inject.CampSysReg, inject.CampData, inject.CampCode} {
			t.Run(platform.Short()+"/"+camp.String(), func(t *testing.T) {
				res, err := Run(sys, golden, prof, Spec{Campaign: camp, N: n, Seed: 7}, nil)
				if err != nil {
					t.Fatal(err)
				}
				c := stats.Summarize(res.Results)
				if c.Injected != n {
					t.Fatalf("injected %d, want %d", c.Injected, n)
				}
				total := c.NotActivated + c.NotManifested + c.FailSilence + c.Crash + c.HangUnknown
				if total != n {
					t.Errorf("outcome counts sum to %d, want %d: %+v", total, n, c)
				}
				t.Logf("%s: %+v", camp, c)
				// Crash causes must belong to this platform.
				for _, r := range res.Results {
					if r.Outcome == inject.OCrash && r.Cause.Platform() != platform {
						t.Errorf("crash cause %v does not belong to %v", r.Cause, platform)
					}
				}
			})
		}
	}
}

func TestSystemIsReusableAfterCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns are slow")
	}
	sys, golden, prof := getSystem(t, isa.CISC)
	if _, err := Run(sys, golden, prof, Spec{Campaign: inject.CampCode, N: 5, Seed: 3}, nil); err != nil {
		t.Fatal(err)
	}
	// A clean run after a campaign must still match the golden checksum.
	res := sys.Run()
	if res.Checksum != golden {
		t.Errorf("post-campaign clean run checksum = 0x%x, want 0x%x", res.Checksum, golden)
	}
}

func TestDataTargetsExcludeHeapAndPercpu(t *testing.T) {
	sys, _, prof := getSystem(t, isa.CISC)
	gen := NewGenerator(sys, prof, 9, 0)
	targets, err := gen.Targets(Spec{Campaign: inject.CampData, N: 300})
	if err != nil {
		t.Fatal(err)
	}
	heap, _ := sys.Machine.Mem.RegionByName("heap")
	percpu, _ := sys.Machine.Mem.RegionByName("percpu")
	for _, tg := range targets {
		if heap.Contains(tg.Addr) {
			t.Fatalf("data target 0x%x landed in the heap (page cache is not kernel static data)", tg.Addr)
		}
		if percpu.Contains(tg.Addr) {
			t.Fatalf("data target 0x%x landed in the per-CPU area", tg.Addr)
		}
	}
}

func TestSpecBurstPropagatesToTargets(t *testing.T) {
	sys, golden, profile := getSystem(t, isa.CISC)
	_ = golden
	gen := NewGenerator(sys, profile, 99, 2_000_000)
	for _, camp := range []inject.Campaign{inject.CampStack, inject.CampData, inject.CampSysReg, inject.CampCode} {
		targets, err := gen.Targets(Spec{Campaign: camp, N: 5, Burst: 3})
		if err != nil {
			t.Fatal(err)
		}
		for i, tg := range targets {
			if tg.Burst != 3 {
				t.Errorf("%v target %d: burst %d, want 3", camp, i, tg.Burst)
			}
		}
	}
}

func TestProfileHotCoverageProperty(t *testing.T) {
	_, _, prof := getSystem(t, isa.CISC)
	// The hot set must actually reach the requested cycle coverage, be a
	// prefix of the cycle-sorted function list, and grow monotonically with
	// the coverage target.
	prev := 0
	for _, cov := range []float64{0.5, 0.8, 0.95, 0.99} {
		hot := prof.Hot(cov)
		var acc uint64
		for i, f := range hot {
			acc += f.Cycles
			if i > 0 && f.Cycles > hot[i-1].Cycles {
				t.Fatalf("hot set not cycle-sorted at %d: %d > %d", i, f.Cycles, hot[i-1].Cycles)
			}
		}
		if float64(acc) < cov*float64(prof.Total) {
			t.Errorf("Hot(%.2f) covers only %d of %d cycles", cov, acc, prof.Total)
		}
		if len(hot) < prev {
			t.Errorf("Hot(%.2f) smaller than a lower target: %d < %d", cov, len(hot), prev)
		}
		prev = len(hot)
	}
}
