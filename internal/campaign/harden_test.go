package campaign

import (
	"reflect"
	"testing"

	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/kir"
	"kfi/internal/stats"
)

// hardenStudyFixture runs one small matched study (cached: RunHardenStudy
// builds four guest systems per invocation).
var hardenStudyCache = map[isa.Platform]*HardenStudy{}

func hardenStudy(t *testing.T, p isa.Platform) *HardenStudy {
	t.Helper()
	if s, ok := hardenStudyCache[p]; ok {
		return s
	}
	specs := []Spec{
		{Campaign: inject.CampCode, N: 30, Seed: 7001},
		{Campaign: inject.CampCode, N: 30, Seed: 7001, Burst: 2},
		{Campaign: inject.CampStack, N: 20, Seed: 7002},
	}
	s, err := RunHardenStudy(p, 1, kir.HardenOpts{Dup: true, CFSig: true}, specs, nil)
	if err != nil {
		t.Fatalf("RunHardenStudy: %v", err)
	}
	hardenStudyCache[p] = s
	return s
}

func TestHardenStudyOverheads(t *testing.T) {
	s := hardenStudy(t, isa.RISC)
	if s.CodeOverhead() <= 1.0 {
		t.Errorf("code overhead %.2f, want > 1 (hardened image must be larger)", s.CodeOverhead())
	}
	if s.CycleOverhead() <= 1.0 {
		t.Errorf("cycle overhead %.2f, want > 1 (hardened run must be slower)", s.CycleOverhead())
	}
	t.Logf("RISC overheads: code x%.2f, cycles x%.2f", s.CodeOverhead(), s.CycleOverhead())
}

func TestHardenStudyDetectsErrors(t *testing.T) {
	s := hardenStudy(t, isa.RISC)
	detected := 0
	for _, row := range s.Rows {
		for _, r := range row.Plain {
			if r.Outcome == inject.ODetected {
				t.Fatalf("unhardened build reported a detection: %+v", r)
			}
		}
		hc := stats.Summarize(row.Hard)
		detected += hc.Detected
		t.Logf("%v burst=%d: hardened %s", row.Spec.Campaign, row.Spec.Burst,
			hc.CoverageRow(row.Spec.Campaign.String()))
	}
	if detected == 0 {
		t.Error("fully hardened kernel detected none of the injected errors across all campaigns")
	}
}

// TestHardenStudyMatchedPlans pins the matched-plan contract: for non-code
// campaigns both builds receive the identical target list, and the
// unhardened side of the study is injection-for-injection identical to a
// standalone (pre-hardening) campaign of the same spec.
func TestHardenStudyMatchedPlans(t *testing.T) {
	s := hardenStudy(t, isa.RISC)
	var stackRow *HardenRow
	for i := range s.Rows {
		if s.Rows[i].Spec.Campaign == inject.CampStack {
			stackRow = &s.Rows[i]
		}
	}
	if stackRow == nil {
		t.Fatal("no stack row in study")
	}
	for i := range stackRow.Plain {
		a, b := stackRow.Plain[i].Target, stackRow.Hard[i].Target
		// The injector resolves StackPos to a concrete address against the
		// LIVE stack pointer at injection time, which legitimately differs
		// between the builds; everything the generator drew must match.
		a.Addr, b.Addr = 0, 0
		if a != b {
			t.Fatalf("target %d differs between builds:\nplain: %+v\nhard:  %+v",
				i, stackRow.Plain[i].Target, stackRow.Hard[i].Target)
		}
	}
	sys, golden, prof := getSystem(t, isa.RISC)
	standalone, err := RunWith(sys, golden, prof, stackRow.Spec, nil, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(standalone.Results, stackRow.Plain) {
		t.Error("unhardened study results differ from a standalone campaign of the same spec")
	}
}

// TestHardenStudyBurstRows checks the double-bit satellite: the same seed at
// burst width 2 must produce targets differing only in Burst, and the study
// reports both widths as separate rows.
func TestHardenStudyBurstRows(t *testing.T) {
	s := hardenStudy(t, isa.RISC)
	var b1, b2 *HardenRow
	for i := range s.Rows {
		if s.Rows[i].Spec.Campaign != inject.CampCode {
			continue
		}
		switch s.Rows[i].Spec.Burst {
		case 0, 1:
			b1 = &s.Rows[i]
		case 2:
			b2 = &s.Rows[i]
		}
	}
	if b1 == nil || b2 == nil {
		t.Fatal("study missing single-bit or double-bit code row")
	}
	for i := range b1.Hard {
		a, b := b1.Hard[i].Target, b2.Hard[i].Target
		b.Burst = a.Burst
		if a != b {
			t.Fatalf("burst rows drew different targets at %d: %+v vs %+v", i, a, b2.Hard[i].Target)
		}
	}
}

func TestRunHardenStudyRejectsNoOpts(t *testing.T) {
	if _, err := RunHardenStudy(isa.RISC, 1, kir.HardenOpts{}, nil, nil); err == nil {
		t.Fatal("expected error for zero hardening options")
	}
}
