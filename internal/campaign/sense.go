package campaign

import (
	"fmt"

	"kfi/internal/inject"
	"kfi/internal/kernel"
	"kfi/internal/staticsense"
)

// sensePass holds the static pre-pass verdicts for one campaign's target
// list: per-index predictions for every classifiable target, plus the
// subset a pruned run may skip. A nil *sensePass (sensing off) is valid and
// inert everywhere it is used.
type sensePass struct {
	an    *staticsense.Analyzer
	sys   *kernel.System
	preds map[int]staticsense.Prediction
	prune map[int]bool
}

// buildSense runs the static analyzer over the campaign's targets when
// ExecOptions ask for it. Every single-bit target is classified: code flips
// against the decoded image, data flips against the whole-program access
// analysis, system-register flips against the platform read model. Stack
// targets resolve their address only at injection time, so they are
// classified lazily in annotate. Burst targets stay unannotated and are
// never pruned — the lattice is defined per single-bit flip.
func buildSense(sys *kernel.System, targets []inject.Target, opts ExecOptions) (*sensePass, error) {
	if !opts.Sense && !opts.Prune {
		return nil, nil
	}
	if opts.Prune && opts.Replay {
		return nil, fmt.Errorf("campaign: Prune requires the fork-from-golden scheduler; replay mode never traces the golden run the synthesized results come from")
	}
	cfg := staticsense.Config{
		Image:      sys.KernelImage,
		Prog:       sys.Prog,
		KStackSize: sys.KStackSize,
	}
	if sys.Prog != nil {
		cfg.HostReadGlobals = kernel.HostReadGlobals()
		cfg.HostReadTaskFields = kernel.HostReadTaskFields()
	}
	if sys.Src != nil {
		cfg.Proc = sys.Src.Proc
	}
	an, err := staticsense.NewAnalyzer(cfg)
	if err != nil {
		return nil, err
	}
	sp := &sensePass{an: an, sys: sys, preds: map[int]staticsense.Prediction{}, prune: map[int]bool{}}
	for i, t := range targets {
		if t.Burst > 1 {
			continue
		}
		var p staticsense.Prediction
		switch t.Campaign {
		case inject.CampCode:
			p = an.ClassifyFlip(t.Addr, t.ByteOff, t.Bit)
		case inject.CampData:
			p = an.ClassifyData(t.Addr, t.Bit)
		case inject.CampSysReg:
			p = an.ClassifySysReg(t.RegName, t.Bit)
		case inject.CampStack:
			continue // classified lazily once the address resolves
		default:
			continue
		}
		sp.preds[i] = p
		if opts.Prune && p.Inert && pruneEligible(p.Class, t.Campaign) {
			sp.prune[i] = true
		}
	}
	return sp, nil
}

// pruneEligible reports whether an inert prediction of the given class may
// skip an injection of the given campaign. Dead stores are inert but never
// skippable: activation (a read of a neighboring byte in the watched word)
// is statically unknown, and a synthesized row must state it exactly. Stack
// predictions are likewise never skippable — the injected address depends
// on the run's dynamic stack depth.
func pruneEligible(c staticsense.Class, camp inject.Campaign) bool {
	switch c {
	case staticsense.ClassUnknown, staticsense.ClassInvalid, staticsense.ClassLength,
		staticsense.ClassOpcode, staticsense.ClassRegField, staticsense.ClassImmediate:
		return false
	case staticsense.ClassDeadValue, staticsense.ClassInertEncoding:
		return camp == inject.CampCode
	case staticsense.ClassDeadStore:
		return false
	case staticsense.ClassUnreferenced:
		return camp == inject.CampData
	case staticsense.ClassMaskedReg:
		return camp == inject.CampSysReg
	}
	return false
}

// annotate stamps the static verdict onto a completed result. Callers hold
// the recorder lock; a nil pass or an unclassified index is a no-op. Stack
// targets are classified here, from the address RunFrom resolved into the
// result — rows whose injection never happened (not-activated short
// circuits) keep an unresolved address and stay unannotated.
func (sp *sensePass) annotate(idx int, r *inject.Result) {
	if sp == nil {
		return
	}
	p, ok := sp.preds[idx]
	if !ok {
		t := r.Target
		if t.Campaign != inject.CampStack || t.Burst > 1 || sp.sys == nil {
			return
		}
		base := kernel.KStackTop(t.ProcSlot) - sp.sys.KStackSize
		if t.Addr < base || t.Addr-base >= sp.sys.KStackSize {
			return
		}
		p = sp.an.ClassifyStackByte(t.Addr - base)
	}
	r.PredClass = p.Class.String()
	r.PredInert = p.Inert
}

// prunePre moves every predicted-inert skippable entry out of the trigger
// order and into the schedule's synthesized results. Only entries that made
// it into the order are prunable — a code target the golden run never
// reaches is already a synthesized not-activated result, which is more
// precise than the analyzer's activated-but-inert verdict.
func prunePre(sched *schedule, targets []inject.Target, sp *sensePass, opts ExecOptions) {
	if sp == nil || !opts.Prune || sched.golden == nil {
		return
	}
	kept := sched.order[:0]
	for _, o := range sched.order {
		t := targets[o.idx]
		// A sysreg trigger landing exactly on the golden end cycle sits on
		// the pause-versus-complete boundary; leave it to the runner.
		boundary := t.Campaign == inject.CampSysReg && t.Delay == sched.golden.cycles
		if sp.prune[o.idx] && !boundary {
			sched.pre[o.idx] = synthPruned(t, sched.golden)
			continue
		}
		kept = append(kept, o)
	}
	sched.order = kept
}

// synthPruned synthesizes the outcome the soundness argument (DESIGN.md
// §13/§17) guarantees for a skippable inert flip, mirroring exactly what
// executing it would record.
func synthPruned(t inject.Target, tr *goldenTrace) inject.Result {
	switch t.Campaign {
	case inject.CampData:
		// The watched word is never accessed: the breakpoint cannot fire,
		// the run is the golden run, and the error never activates.
		r := notActivatedResult(t, tr.cycles, tr.checksum)
		r.PredSkipped = true
		return r
	case inject.CampSysReg:
		if t.Delay > tr.cycles {
			// The benchmark finishes before the trigger: never injected.
			r := notActivatedResult(t, tr.cycles, tr.checksum)
			r.PredSkipped = true
			return r
		}
		// Injected, but the bit is never consulted: the run completes with
		// the golden checksum; sysreg activation is never known.
		return inject.Result{Target: t, Outcome: inject.ONotManifested,
			RunCycles: tr.cycles, Checksum: tr.checksum, PredSkipped: true}
	default:
		return prunedResult(t, tr)
	}
}

// prunedResult synthesizes the outcome for an inert code flip the golden
// run activates: the run completes with the golden checksum and cycle
// count, so the error activated but did not manifest.
func prunedResult(t inject.Target, tr *goldenTrace) inject.Result {
	return inject.Result{
		Target:          t,
		Activated:       true,
		ActivationKnown: true,
		Outcome:         inject.ONotManifested,
		RunCycles:       tr.cycles,
		Checksum:        tr.checksum,
		PredSkipped:     true,
	}
}
