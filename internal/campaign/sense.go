package campaign

import (
	"fmt"

	"kfi/internal/inject"
	"kfi/internal/kernel"
	"kfi/internal/staticsense"
)

// sensePass holds the static pre-pass verdicts for one campaign's target
// list: per-index predictions for every classifiable code target, plus the
// subset a pruned run may skip. A nil *sensePass (sensing off) is valid and
// inert everywhere it is used.
type sensePass struct {
	preds map[int]staticsense.Prediction
	prune map[int]bool
}

// buildSense runs the static analyzer over the campaign's code targets when
// ExecOptions ask for it. Only single-bit CampCode targets are classified:
// the analyzer's lattice is defined per (instruction, byte, bit) flip, so
// burst targets and the data/stack/system-register campaigns stay
// unannotated and are never pruned.
func buildSense(sys *kernel.System, targets []inject.Target, opts ExecOptions) (*sensePass, error) {
	if !opts.Sense && !opts.Prune {
		return nil, nil
	}
	if opts.Prune && opts.Replay {
		return nil, fmt.Errorf("campaign: Prune requires the fork-from-golden scheduler; replay mode never traces the golden run the synthesized results come from")
	}
	an, err := staticsense.New(sys.KernelImage)
	if err != nil {
		return nil, err
	}
	sp := &sensePass{preds: map[int]staticsense.Prediction{}, prune: map[int]bool{}}
	for i, t := range targets {
		if t.Campaign != inject.CampCode || t.Burst > 1 {
			continue
		}
		p := an.ClassifyFlip(t.Addr, t.ByteOff, t.Bit)
		sp.preds[i] = p
		if opts.Prune && p.Inert {
			sp.prune[i] = true
		}
	}
	return sp, nil
}

// annotate stamps the static verdict onto a completed result. Callers hold
// the recorder lock; a nil pass or an unclassified index is a no-op.
func (sp *sensePass) annotate(idx int, r *inject.Result) {
	if sp == nil {
		return
	}
	p, ok := sp.preds[idx]
	if !ok {
		return
	}
	r.PredClass = p.Class.String()
	r.PredInert = p.Inert
}

// prunePre moves every predicted-inert scheduled entry out of the trigger
// order and into the schedule's synthesized results. Only entries that made
// it into the order are prunable — a code target the golden run never
// reaches is already a synthesized not-activated result, which is more
// precise than the analyzer's activated-but-inert verdict.
func prunePre(sched *schedule, targets []inject.Target, sp *sensePass, opts ExecOptions) {
	if sp == nil || !opts.Prune || sched.golden == nil {
		return
	}
	kept := sched.order[:0]
	for _, o := range sched.order {
		if sp.prune[o.idx] {
			sched.pre[o.idx] = prunedResult(targets[o.idx], sched.golden)
			continue
		}
		kept = append(kept, o)
	}
	sched.order = kept
}

// prunedResult synthesizes the outcome the soundness argument (DESIGN.md
// §13) guarantees for an inert flip the golden run activates: the run
// completes with the golden checksum and cycle count, so the error
// activated but did not manifest.
func prunedResult(t inject.Target, tr *goldenTrace) inject.Result {
	return inject.Result{
		Target:          t,
		Activated:       true,
		ActivationKnown: true,
		Outcome:         inject.ONotManifested,
		RunCycles:       tr.cycles,
		Checksum:        tr.checksum,
		PredSkipped:     true,
	}
}
