package campaign

import (
	"reflect"
	"testing"

	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/staticsense"
	"kfi/internal/stats"
)

// TestPruneEquivalenceAndSoundness is the pruning subsystem's central
// contract, on both platforms and across every injection space the static
// analyzer covers:
//
//   - equivalence: a pruned campaign's outcome table is identical to the
//     unpruned one on every non-pruned site, and its synthesized results
//     match — field for field — what actually executing the pruned sites
//     produces;
//   - soundness: no flip the analyzer predicted inert ever manifests when
//     it is really executed.
func TestPruneEquivalenceAndSoundness(t *testing.T) {
	half := func(n int) int {
		if testing.Short() {
			return n / 2
		}
		return n
	}
	cases := []struct {
		camp inject.Campaign
		n    int
		seed int64
	}{
		{inject.CampCode, half(200), 907},
		{inject.CampData, half(120), 908},
		{inject.CampStack, half(60), 909},
		{inject.CampSysReg, half(60), 910},
	}
	for _, platform := range []isa.Platform{isa.CISC, isa.RISC} {
		for _, tc := range cases {
			t.Run(platform.Short()+"/"+tc.camp.String(), func(t *testing.T) {
				sys, golden, prof := getSystem(t, platform)
				spec := Spec{Campaign: tc.camp, N: tc.n, Seed: tc.seed}

				full, err := RunWith(sys, golden, prof, spec, nil, ExecOptions{Sense: true})
				if err != nil {
					t.Fatal(err)
				}
				pruned, err := RunWith(sys, golden, prof, spec, nil, ExecOptions{Prune: true})
				if err != nil {
					t.Fatal(err)
				}

				skipped := 0
				for i := range full.Results {
					f, p := full.Results[i], pruned.Results[i]
					if !p.PredSkipped {
						if !reflect.DeepEqual(f, p) {
							t.Errorf("injection %d diverges:\n  full:   %+v\n  pruned: %+v", i, f, p)
						}
						continue
					}
					skipped++
					// The synthesized result must mirror the executed one
					// exactly — same outcome, activation, cycles, checksum,
					// and annotations — differing only in the skip marker.
					want := f
					want.PredSkipped = true
					if !reflect.DeepEqual(want, p) {
						t.Errorf("injection %d: synthesized row diverges from executed:\n  executed:    %+v\n  synthesized: %+v",
							i, f, p)
					}
					if !f.PredInert || !p.PredInert {
						t.Errorf("injection %d: skipped without an inert prediction", i)
					}
				}
				if tc.camp == inject.CampStack && skipped != 0 {
					t.Errorf("stack campaign skipped %d injections; stack targets are never prunable", skipped)
				}
				if skipped == 0 {
					t.Logf("%v/%v: no predicted-inert targets drawn in %d injections", platform, tc.camp, tc.n)
				}

				// Soundness over the whole annotated table: every inert
				// prediction that executed must have stayed invisible.
				for i, r := range full.Results {
					if r.PredInert && r.Outcome != inject.ONotActivated && r.Outcome != inject.ONotManifested {
						t.Errorf("soundness violation at injection %d: predicted inert (%s), observed %v",
							i, r.PredClass, r.Outcome)
					}
				}
				if c := stats.Confuse(full.Results); c.Violations != 0 {
					t.Errorf("confusion matrix reports %d violations:\n%s", c.Violations, c.Render())
				}
				if c := stats.Confuse(pruned.Results); c.Violations != 0 {
					t.Errorf("pruned confusion matrix reports %d violations:\n%s", c.Violations, c.Render())
				}

				// The aggregate table row the paper prints must be unchanged.
				fullRow := stats.Summarize(full.Results).TableRow(tc.camp.String())
				prunedRow := stats.Summarize(pruned.Results).TableRow(tc.camp.String())
				if fullRow != prunedRow {
					t.Errorf("table rows diverge:\n  full:   %s\n  pruned: %s", fullRow, prunedRow)
				}
			})
		}
	}
}

// TestPruneRejectedInReplay: replay mode never traces the golden run, so
// pruning must be refused, not silently ignored.
func TestPruneRejectedInReplay(t *testing.T) {
	sys, golden, prof := getSystem(t, isa.CISC)
	_, err := RunWith(sys, golden, prof, Spec{Campaign: inject.CampCode, N: 1, Seed: 1}, nil,
		ExecOptions{Prune: true, Replay: true})
	if err == nil {
		t.Fatal("Prune+Replay accepted")
	}
}

// TestSenseAnnotatesStackTargets: stack targets are classified lazily from
// the address the injection resolved, so executed stack rows carry a
// prediction from the task-layout model while rows whose injection never
// happened stay unannotated — and none are ever skipped.
func TestSenseAnnotatesStackTargets(t *testing.T) {
	sys, golden, prof := getSystem(t, isa.CISC)
	res, err := RunWith(sys, golden, prof, Spec{Campaign: inject.CampStack, N: 16, Seed: 3}, nil,
		ExecOptions{Sense: true})
	if err != nil {
		t.Fatal(err)
	}
	stackClasses := map[string]bool{
		staticsense.ClassUnknown.String():      true,
		staticsense.ClassUnreferenced.String(): true,
		staticsense.ClassDeadStore.String():    true,
	}
	annotated := 0
	for i, r := range res.Results {
		if r.PredSkipped {
			t.Errorf("stack injection %d was skipped", i)
		}
		if r.PredClass == "" {
			continue
		}
		annotated++
		if !stackClasses[r.PredClass] {
			t.Errorf("stack injection %d classified %q — not a stack-target class", i, r.PredClass)
		}
		cl, ok := classNamed(r.PredClass)
		if !ok || r.PredInert != cl.Inert() {
			t.Errorf("stack injection %d: class %q with PredInert=%v", i, r.PredClass, r.PredInert)
		}
	}
	if annotated == 0 {
		t.Error("no stack injection carries a prediction; executed rows resolve their address and must be classified")
	}
}

// classNamed resolves a rendered class name back to its lattice constant.
func classNamed(name string) (staticsense.Class, bool) {
	for _, cl := range staticsense.Classes() {
		if cl.String() == name {
			return cl, true
		}
	}
	return 0, false
}
