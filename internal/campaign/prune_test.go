package campaign

import (
	"reflect"
	"testing"

	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/stats"
)

// TestPruneEquivalenceAndSoundness is the pruning subsystem's central
// contract, on both platforms:
//
//   - equivalence: a pruned campaign's outcome table is identical to the
//     unpruned one on every non-pruned site, and its synthesized results
//     match what actually executing the pruned sites produces;
//   - soundness: no flip the analyzer predicted inert ever manifests when
//     it is really executed.
func TestPruneEquivalenceAndSoundness(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 60
	}
	for _, platform := range []isa.Platform{isa.CISC, isa.RISC} {
		t.Run(platform.Short(), func(t *testing.T) {
			sys, golden, prof := getSystem(t, platform)
			spec := Spec{Campaign: inject.CampCode, N: n, Seed: 907}

			full, err := RunWith(sys, golden, prof, spec, nil, ExecOptions{Sense: true})
			if err != nil {
				t.Fatal(err)
			}
			pruned, err := RunWith(sys, golden, prof, spec, nil, ExecOptions{Prune: true})
			if err != nil {
				t.Fatal(err)
			}

			skipped := 0
			for i := range full.Results {
				f, p := full.Results[i], pruned.Results[i]
				if !p.PredSkipped {
					if !reflect.DeepEqual(f, p) {
						t.Errorf("injection %d diverges:\n  full:   %+v\n  pruned: %+v", i, f, p)
					}
					continue
				}
				skipped++
				// The synthesized result must match the executed one: the
				// flip really ran in the full campaign and — if the analyzer
				// is sound — completed as the golden run.
				if f.Outcome != inject.ONotManifested {
					t.Errorf("injection %d: predicted inert but executed outcome is %v (%s)",
						i, f.Outcome, f.PredClass)
				}
				if f.Checksum != p.Checksum || f.RunCycles != p.RunCycles {
					t.Errorf("injection %d: synthesized (cycles=%d sum=%#x) != executed (cycles=%d sum=%#x)",
						i, p.RunCycles, p.Checksum, f.RunCycles, f.Checksum)
				}
				if !f.PredInert || !p.PredInert {
					t.Errorf("injection %d: skipped without an inert prediction", i)
				}
			}
			if skipped == 0 {
				t.Logf("%v: no predicted-inert targets drawn in %d injections", platform, n)
			}

			// Soundness over the whole annotated table: every inert
			// prediction that executed must have stayed invisible.
			for i, r := range full.Results {
				if r.PredInert && r.Outcome != inject.ONotActivated && r.Outcome != inject.ONotManifested {
					t.Errorf("soundness violation at injection %d: predicted inert (%s), observed %v",
						i, r.PredClass, r.Outcome)
				}
			}
			if c := stats.Confuse(full.Results); c.Violations != 0 {
				t.Errorf("confusion matrix reports %d violations:\n%s", c.Violations, c.Render())
			}

			// The aggregate table row the paper prints must be unchanged.
			fullRow := stats.Summarize(full.Results).TableRow("code")
			prunedRow := stats.Summarize(pruned.Results).TableRow("code")
			if fullRow != prunedRow {
				t.Errorf("table rows diverge:\n  full:   %s\n  pruned: %s", fullRow, prunedRow)
			}
		})
	}
}

// TestPruneRejectedInReplay: replay mode never traces the golden run, so
// pruning must be refused, not silently ignored.
func TestPruneRejectedInReplay(t *testing.T) {
	sys, golden, prof := getSystem(t, isa.CISC)
	_, err := RunWith(sys, golden, prof, Spec{Campaign: inject.CampCode, N: 1, Seed: 1}, nil,
		ExecOptions{Prune: true, Replay: true})
	if err == nil {
		t.Fatal("Prune+Replay accepted")
	}
}

// TestSenseAnnotatesOnlyCodeTargets: stack targets carry no prediction even
// with sensing on.
func TestSenseAnnotatesOnlyCodeTargets(t *testing.T) {
	sys, golden, prof := getSystem(t, isa.CISC)
	res, err := RunWith(sys, golden, prof, Spec{Campaign: inject.CampStack, N: 4, Seed: 3}, nil,
		ExecOptions{Sense: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Results {
		if r.PredClass != "" || r.PredInert || r.PredSkipped {
			t.Errorf("stack injection %d carries a code prediction: %+v", i, r)
		}
	}
}
