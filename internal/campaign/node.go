package campaign

import (
	"fmt"

	"kfi/internal/cc"
	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/platform"
	"kfi/internal/workload"
)

// NodeRunner is the exported per-node execution seam: one guest system with
// its golden checksum and kernel profile, able to plan a campaign's trigger
// schedule and execute arbitrary subsets of its targets. It is the same core
// a Farm wraps in goroutines, packaged for out-of-process schedulers — the
// internal/ctlplane worker agent runs leased chunks through a NodeRunner
// exactly the way a farm node runs stolen chunks, so a distributed campaign's
// per-index results are identical to an in-process run of the same spec.
type NodeRunner struct {
	platform  isa.Platform
	sys       *kernel.System
	golden    uint32
	profile   *Profile
	buildNode func() (*kernel.System, error)

	// runner persists one snapshot chain across successive RunIndices calls
	// against the same plan — the chain advances forward as long as leases
	// arrive in ascending trigger order, exactly like a farm node stealing
	// ascending chunks, and restarts itself for requeued earlier triggers.
	runner     *chunkRunner
	runnerPlan *Plan
	// engine is the execution engine of the last RunIndices call, reapplied
	// to post-watchdog replacement systems.
	engine platform.EngineKind
}

// NewNodeRunner builds one guest system of the given platform and workload
// scale, measures its golden checksum, and profiles kernel usage — the same
// construction sequence as a farm node.
func NewNodeRunner(platform isa.Platform, scale int, opts kernel.Options) (*NodeRunner, error) {
	if scale < 1 {
		scale = 1
	}
	uimg, err := cc.Compile(workload.Program(scale), platform, kernel.UserBases)
	if err != nil {
		return nil, fmt.Errorf("campaign: node workload: %w", err)
	}
	nr := &NodeRunner{platform: platform}
	nr.buildNode = func() (*kernel.System, error) {
		return kernel.BuildSystem(platform, uimg, workload.StandardProcs(), opts)
	}
	if nr.sys, err = nr.buildNode(); err != nil {
		return nil, fmt.Errorf("campaign: node system: %w", err)
	}
	if nr.golden, err = Golden(nr.sys); err != nil {
		return nil, err
	}
	if nr.profile, err = ProfileKernel(nr.sys); err != nil {
		return nil, err
	}
	return nr, nil
}

// Platform returns the node's platform.
func (nr *NodeRunner) Platform() isa.Platform { return nr.platform }

// Golden returns the fault-free benchmark checksum.
func (nr *NodeRunner) Golden() uint32 { return nr.golden }

// Profile returns the measured kernel-usage profile.
func (nr *NodeRunner) Profile() *Profile { return nr.profile }

// Plan is a campaign's deterministic execution plan: the pre-generated
// targets, the trigger-sorted execution order (target indices), and the
// results synthesized without execution (code targets whose instruction the
// golden run never reaches). Two NodeRunners of the same platform and scale
// produce identical Plans for the same spec — target generation is seeded
// and the guest is deterministic — which is what lets a coordinator plan a
// campaign that remote workers re-derive independently.
type Plan struct {
	Targets []inject.Target
	// Order lists the target indices that actually execute, sorted by
	// trigger cycle (the order a snapshot chain wants them in).
	Order []int
	// Pre maps target indices to synthesized never-activated results; they
	// are complete without running anything.
	Pre map[int]inject.Result

	// order backs Order with the trigger cycles, so executing a subset
	// never re-traces the golden run.
	order []trigOrder
}

// Plan generates the spec's targets and builds its trigger-sorted schedule.
// The golden-run trace it may require (code campaigns) runs once; every
// RunIndices call against the returned plan reuses it.
func (nr *NodeRunner) Plan(spec Spec) (*Plan, error) {
	gen := NewGenerator(nr.sys, nr.profile, spec.Seed, profileCycles(nr.profile))
	targets, err := gen.Targets(spec)
	if err != nil {
		return nil, err
	}
	sched, err := buildSchedule(nr.sys, targets, ExecOptions{})
	if err != nil {
		return nil, err
	}
	p := &Plan{Targets: targets, Order: make([]int, 0, len(sched.order)),
		Pre: sched.pre, order: sched.order}
	for _, o := range sched.order {
		p.Order = append(p.Order, o.idx)
	}
	return p, nil
}

// RunIndices executes the plan's targets whose indices appear in want,
// calling each with every completed result. Execution follows the plan's
// trigger order regardless of the order of want, so the node's snapshot
// chain only ever advances forward; indices covered by the plan's Pre set
// are reported from it without running. Results are identical to the same
// indices executed by Run, a Farm, or any other NodeRunner.
func (nr *NodeRunner) RunIndices(plan *Plan, want []int, opts ExecOptions,
	each func(idx int, res inject.Result) error) error {
	if err := nr.sys.Machine.SetEngine(opts.Engine); err != nil {
		return err
	}
	nr.engine = opts.Engine
	wanted := make(map[int]bool, len(want))
	for _, i := range want {
		if i < 0 || i >= len(plan.Targets) {
			return fmt.Errorf("campaign: index %d outside plan of %d targets", i, len(plan.Targets))
		}
		wanted[i] = true
	}
	for idx, r := range plan.Pre {
		if !wanted[idx] {
			continue
		}
		delete(wanted, idx)
		if err := each(idx, r); err != nil {
			return err
		}
	}
	if len(wanted) == 0 {
		return nil
	}
	order := make([]trigOrder, 0, len(wanted))
	for _, o := range plan.order {
		if wanted[o.idx] {
			order = append(order, o)
		}
	}
	if nr.runner == nil || nr.runnerPlan != plan {
		nr.Close()
		nr.runner = newChunkRunner(nr.sys, nr.golden, plan.Targets, opts, maxTrig(plan.order))
		nr.runner.respawn = nr.respawnRunner
		nr.runnerPlan = plan
	}
	results := make([]inject.Result, len(plan.Targets))
	return nr.runner.run(order, results, func(idx int) error { return each(idx, results[idx]) })
}

// respawnRunner replaces the node's guest system after a watchdog timeout
// poisoned it, keeping the NodeRunner and its runner pointed at the
// replacement.
func (nr *NodeRunner) respawnRunner() (*kernel.System, error) {
	sys, err := nr.buildNode()
	if err != nil {
		return nil, err
	}
	if err := sys.Machine.SetEngine(nr.engine); err != nil {
		return nil, err
	}
	nr.sys = sys
	return sys, nil
}

// Close releases the node's snapshot-chain state. The NodeRunner remains
// usable; the next RunIndices starts a fresh chain.
func (nr *NodeRunner) Close() {
	if nr.runner != nil {
		nr.runner.close()
		nr.runner, nr.runnerPlan = nil, nil
	}
}
