package campaign

import (
	"bytes"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"kfi/internal/crashnet"
	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/stats"
)

// countingSender is an injectable crashnet.Sender that tallies packets.
type countingSender struct {
	mu sync.Mutex
	n  int
}

func newCountingSender() *countingSender { return &countingSender{} }

func (c *countingSender) Send(crashnet.Packet) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return nil
}

func (c *countingSender) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// serialize renders results exactly as kfi-campaign's -out log does; the
// resume-equivalence contract is byte identity of this serialization.
func serialize(t *testing.T, p isa.Platform, spec Spec, results []inject.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := stats.WriteResults(&buf, p, spec.Campaign, results); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestInterruptAndResumeEquivalence kills a journaled campaign partway
// through (a panic stands in for SIGKILL: the journal is written with direct
// fd writes, so everything appended survives either) and resumes it from the
// journal. The resumed run must produce a byte-identical outcome table —
// crash causes, latencies, checksums and all — to the same campaign run
// uninterrupted, on both platforms.
func TestInterruptAndResumeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	for _, p := range []isa.Platform{isa.CISC, isa.RISC} {
		t.Run(p.String(), func(t *testing.T) {
			sys, golden, prof := getSystem(t, p)
			spec := Spec{Campaign: inject.CampStack, N: 12, Seed: 9}

			ref, err := Run(sys, golden, prof, spec, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := serialize(t, p, spec, ref.Results)

			path := filepath.Join(t.TempDir(), "campaign.kjournal")
			h := HeaderFor(p, golden, spec)
			j, err := CreateJournal(path, h)
			if err != nil {
				t.Fatal(err)
			}
			// Interrupted run: die after the 5th completed injection. The
			// journal append happens before the progress callback, exactly
			// like a process killed between two injections.
			const dieAfter = 5
			func() {
				defer func() {
					if recover() == nil {
						t.Fatal("interrupted run finished without dying")
					}
				}()
				_, _ = RunWith(sys, golden, prof, spec, func(done, total int) {
					if done == dieAfter {
						panic("simulated process kill")
					}
				}, ExecOptions{Journal: j})
			}()
			j.Close()

			j2, completed, err := ResumeJournal(path, h)
			if err != nil {
				t.Fatal(err)
			}
			if len(completed) != dieAfter {
				t.Fatalf("journal recovered %d outcomes, want %d", len(completed), dieAfter)
			}
			res, err := RunWith(sys, golden, prof, spec, nil,
				ExecOptions{Journal: j2, Completed: completed})
			if err != nil {
				t.Fatal(err)
			}
			if err := j2.Close(); err != nil {
				t.Fatal(err)
			}
			got := serialize(t, p, spec, res.Results)
			if !bytes.Equal(got, want) {
				t.Fatalf("resumed outcome table differs from uninterrupted run\n got: %s\nwant: %s", got, want)
			}
			// The journal now records the whole campaign and replays it
			// without re-running anything.
			_, all, err := ReadJournal(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(all) != spec.N {
				t.Fatalf("final journal holds %d outcomes, want %d", len(all), spec.N)
			}
		})
	}
}

// TestPanickingInjectionQuarantined seeds a harness bug that panics on one
// specific injection, every attempt. The campaign must survive: the victim
// is retried up to its budget, then recorded as OQuarantined with the panic
// diagnostics, while every other injection completes normally.
func TestPanickingInjectionQuarantined(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	farm, err := NewFarm(isa.CISC, 2, 1, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Campaign: inject.CampStack, N: 10, Seed: 2}
	ref, err := farm.RunWith(spec, nil, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}

	const victim = 3
	var mu sync.Mutex
	attempts := 0
	farm.injectFrom = func(idx int, sys *kernel.System, tg inject.Target, golden uint32) inject.Result {
		if idx == victim {
			mu.Lock()
			attempts++
			mu.Unlock()
			panic("seeded harness bug")
		}
		return inject.RunFrom(sys, tg, golden)
	}
	res, err := farm.RunWith(spec, nil, ExecOptions{RetryBackoff: time.Nanosecond})
	if err != nil {
		t.Fatalf("campaign aborted instead of quarantining: %v", err)
	}
	if attempts != defaultMaxAttempts {
		t.Fatalf("victim attempted %d times, want %d", attempts, defaultMaxAttempts)
	}
	q := res.Results[victim]
	if q.Outcome != inject.OQuarantined {
		t.Fatalf("victim outcome = %v, want quarantined", q.Outcome)
	}
	if !strings.Contains(q.Diag, "seeded harness bug") || !strings.Contains(q.Diag, "3 attempts") {
		t.Fatalf("quarantine diagnostics missing detail: %q", q.Diag)
	}
	counts := stats.Summarize(res.Results)
	if counts.Quarantined != 1 {
		t.Fatalf("stats counted %d quarantined, want 1", counts.Quarantined)
	}
	// Every non-victim injection matches the clean run exactly.
	for i := range res.Results {
		if i == victim {
			continue
		}
		if res.Results[i] != ref.Results[i] {
			t.Errorf("injection %d perturbed by the quarantine: got %+v, want %+v",
				i, res.Results[i], ref.Results[i])
		}
	}
}

// TestNodeLossMidCampaignSameOutcomeTable kills one farm node SIGKILL-style
// partway through a campaign. The node's unfinished chunk must return to the
// steal queue and a replacement node take over, yielding an outcome table
// identical to an undisturbed run.
func TestNodeLossMidCampaignSameOutcomeTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	farm, err := NewFarm(isa.RISC, 2, 1, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Campaign: inject.CampStack, N: 12, Seed: 3}
	ref, err := farm.RunWith(spec, nil, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := serialize(t, isa.RISC, spec, ref.Results)

	var mu sync.Mutex
	killed := false
	farm.fault = func(node, idx int) error {
		mu.Lock()
		defer mu.Unlock()
		// Kill original node 0 the first time it picks up work; the
		// replacement gets a fresh id, so it survives.
		if !killed && node == 0 {
			killed = true
			return errNodeDown
		}
		return nil
	}
	res, err := farm.RunWith(spec, nil, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	sawKill := killed
	mu.Unlock()
	if !sawKill {
		t.Fatal("fault hook never fired; the test killed nothing")
	}
	got := serialize(t, isa.RISC, spec, res.Results)
	if !bytes.Equal(got, want) {
		t.Fatalf("outcome table changed after node loss\n got: %s\nwant: %s", got, want)
	}
}

// TestFarmWithInjectedSender exercises the Sender seam end to end: a farm
// whose nodes share an injected in-memory sender must deliver crash packets
// for its known crashes through it.
func TestFarmWithInjectedSender(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	ch := newCountingSender()
	farm, err := NewFarm(isa.CISC, 2, 1, kernel.Options{CrashSender: ch})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Campaign: inject.CampCode, N: 12, Seed: 2}
	res, err := farm.RunWith(spec, nil, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	crashes := 0
	for _, r := range res.Results {
		if r.Outcome == inject.OCrash {
			crashes++
		}
	}
	if crashes == 0 {
		t.Fatal("campaign produced no known crashes; pick a different seed")
	}
	if ch.count() == 0 {
		t.Fatalf("%d known crashes but the injected sender saw no packets", crashes)
	}
}
