package campaign

import (
	"bytes"
	"testing"

	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/kernel"
)

// TestNodeRunnerMatchesFarm: arbitrary index subsets executed through a
// NodeRunner — across several RunIndices calls, in non-ascending order —
// produce exactly the farm's outcome table for the same spec, and the
// canonical journal bytes assembled from those rows equal the farm's. This
// is the equivalence the distributed control plane leans on: leased chunks
// are just index subsets, and any worker's rows are interchangeable with
// any other execution of the spec.
func TestNodeRunnerMatchesFarm(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	spec := Spec{Campaign: inject.CampData, N: 18, Seed: 9}

	farm, err := NewFarm(isa.CISC, 3, 1, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	farmRes, err := farm.Run(spec, nil)
	if err != nil {
		t.Fatal(err)
	}

	nr, err := NewNodeRunner(isa.CISC, 1, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nr.Close()
	if nr.Golden() != farm.Golden() {
		t.Fatalf("node golden 0x%x != farm golden 0x%x", nr.Golden(), farm.Golden())
	}
	plan, err := nr.Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Targets) != spec.N {
		t.Fatalf("plan has %d targets, want %d", len(plan.Targets), spec.N)
	}

	// Split the index space into three interleaved subsets (idx mod 3) and
	// run them as separate leases. The second and third subsets contain
	// triggers earlier than ones already executed, forcing the snapshot
	// chain to restart rather than advance — the requeued-chunk path.
	table := make(map[int]inject.Result, spec.N)
	for residue := 0; residue < 3; residue++ {
		var subset []int
		for i := 0; i < spec.N; i++ {
			if i%3 == residue {
				subset = append(subset, i)
			}
		}
		err := nr.RunIndices(plan, subset, ExecOptions{}, func(idx int, r inject.Result) error {
			if _, dup := table[idx]; dup {
				t.Errorf("idx %d delivered twice", idx)
			}
			table[idx] = r
			return nil
		})
		if err != nil {
			t.Fatalf("subset %d: %v", residue, err)
		}
	}
	if len(table) != spec.N {
		t.Fatalf("node runs produced %d rows, want %d", len(table), spec.N)
	}
	for i, want := range farmRes.Results {
		if table[i] != want {
			t.Errorf("idx %d: node %+v, farm %+v", i, table[i], want)
		}
	}

	// Canonical journal bytes from the interleaved node rows equal the
	// farm's — the byte-identity the coordinator asserts at finalize.
	farmTable := make(map[int]inject.Result, len(farmRes.Results))
	for i, r := range farmRes.Results {
		farmTable[i] = r
	}
	h := HeaderFor(isa.CISC, farm.Golden(), spec)
	wantBytes, err := CanonicalJournalBytes(h, farmTable)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := CanonicalJournalBytes(HeaderFor(isa.CISC, nr.Golden(), spec), table)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Errorf("canonical journal bytes differ: node %d bytes, farm %d bytes", len(gotBytes), len(wantBytes))
	}
}

// TestNodeRunnerPlanReuseAndErrors: a plan is reusable across calls, pre-set
// indices are served without execution, and out-of-range indices are
// rejected before any work happens.
func TestNodeRunnerPlanReuseAndErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	nr, err := NewNodeRunner(isa.CISC, 1, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nr.Close()
	spec := Spec{Campaign: inject.CampStack, N: 6, Seed: 3}
	plan, err := nr.Plan(spec)
	if err != nil {
		t.Fatal(err)
	}

	if err := nr.RunIndices(plan, []int{spec.N}, ExecOptions{}, func(int, inject.Result) error {
		t.Fatal("callback ran for an out-of-range index")
		return nil
	}); err == nil {
		t.Fatal("RunIndices accepted an out-of-range index")
	}
	if err := nr.RunIndices(plan, []int{-1}, ExecOptions{}, nil); err == nil {
		t.Fatal("RunIndices accepted a negative index")
	}

	// Running the same single index twice across separate calls yields the
	// same result both times (deterministic replay from the chain).
	var first, second inject.Result
	if err := nr.RunIndices(plan, []int{2}, ExecOptions{}, func(_ int, r inject.Result) error {
		first = r
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := nr.RunIndices(plan, []int{2}, ExecOptions{}, func(_ int, r inject.Result) error {
		second = r
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("re-running idx 2 changed the result: %+v vs %+v", first, second)
	}
}
