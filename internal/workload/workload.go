// Package workload provides the UnixBench-style guest benchmark: user-mode
// worker programs that stress distinct kernel subsystems (arithmetic +
// scheduling, buffer cache/filesystem, network transmit, page allocator) and
// a coordinator that gathers per-worker results into a single checksum and
// reports it to the monitoring harness. The checksum is the fail-silence
// oracle: a run that completes with the wrong checksum is a fail-silence
// violation.
//
// Results are interleaving-independent (each worker owns its result slot and
// disk blocks), so the checksum is identical on both platforms and stable
// under benign timing perturbations.
package workload

import (
	"kfi/internal/kernel"
	"kfi/internal/kir"
	"kfi/internal/machine"
)

// Workers in the standard mix, in process-slot order (slots 3..6; slots 1-2
// are the kernel daemons, slot 0 the idle process).
const (
	WorkerArith    = "bench_arith"
	WorkerFS       = "bench_fs"
	WorkerNet      = "bench_net"
	WorkerMM       = "bench_mm"
	WorkerPipeSrc  = "bench_pipe_writer"
	WorkerPipeSink = "bench_pipe_reader"
	Coordinator    = "bench_coordinator"
)

// pipeBytesPerScale is the number of bytes the pipe pair streams per unit of
// workload scale. Writer and reader must agree on it.
const pipeBytesPerScale = 768

// Program builds the workload IR. scale multiplies the inner loop counts
// (1 = the standard benchmark; larger values lengthen runs).
func Program(scale int) *kir.Program {
	if scale < 1 {
		scale = 1
	}
	pb := kir.NewProgram()
	pb.GlobalBytes("banner", 32, []byte("kfi-unixbench"))

	buildArith(pb, scale)
	buildFS(pb, scale)
	buildNet(pb, scale)
	buildMM(pb, scale)
	buildPipePair(pb, scale)
	buildCoordinator(pb)
	return pb.Program()
}

// sysc emits syscall(no, args...) with a constant number.
func sysc(fb *kir.FuncBuilder, no int32, args ...kir.Reg) kir.Reg {
	return fb.Syscall(fb.Const(no), args...)
}

// prologue returns (pid, slot) for a worker.
func prologue(fb *kir.FuncBuilder) (pid, slot kir.Reg) {
	pid = sysc(fb, kernel.SysGetpid)
	slot = fb.SubI(pid, 1)
	return pid, slot
}

// epilogue publishes the result and exits; it also terminates the entry
// block (worker entries never return).
func epilogue(fb *kir.FuncBuilder, slot, acc kir.Reg) {
	sysc(fb, kernel.SysPutResult, slot, acc)
	z := fb.Const(0)
	sysc(fb, kernel.SysExit, z)
	// Unreachable: sys_exit never returns.
	fb.Bug()
	fb.Ret(0)
}

// buildArith: integer mixing with periodic yields — the Dhrystone-flavored
// syscall/scheduler exerciser.
func buildArith(pb *kir.ProgramBuilder, scale int) {
	fb := pb.Func(WorkerArith, 0, false)
	fb.Block("entry")
	pid, slot := prologue(fb)
	acc := fb.Var()
	fb.BinTo(acc, kir.Xor, fb.Const(0x7E3779B9), pid)
	k := fb.Var()
	fb.ConstTo(k, 1)
	limit := int32(500 * scale)
	fb.Jmp("loop")
	fb.Block("loop")
	c := fb.CmpI(kir.Le, k, limit)
	fb.Br(c, "body", "done")
	fb.Block("body")
	fb.BinTo(acc, kir.Mul, acc, fb.Const(1664525))
	fb.BinTo(acc, kir.Add, acc, fb.Const(1013904223))
	fb.BinTo(acc, kir.Xor, acc, k)
	y := fb.AndI(k, 63)
	yield := fb.CmpI(kir.Eq, y, 0)
	fb.Br(yield, "yield", "next")
	fb.Block("yield")
	sysc(fb, kernel.SysYield)
	fb.Jmp("next")
	fb.Block("next")
	fb.BinImmTo(k, kir.Add, k, 1)
	fb.Jmp("loop")
	fb.Block("done")
	epilogue(fb, slot, acc)
}

// buildFS: write patterned blocks through the buffer cache, read them back,
// and fold the bytes — the file-copy exerciser.
func buildFS(pb *kir.ProgramBuilder, scale int) {
	fb := pb.Func(WorkerFS, 0, false)
	fb.Local("buf", kir.W8, 64)
	fb.Block("entry")
	_, slot := prologue(fb)
	acc := fb.Var()
	fb.ConstTo(acc, 7)
	rounds := int32(2 * scale)
	r := fb.Var()
	fb.ConstTo(r, 0)
	fb.Jmp("rounds")
	fb.Block("rounds")
	cr := fb.Cmp(kir.Lt, r, fb.Const(rounds))
	fb.Br(cr, "blocks_init", "done")
	fb.Block("blocks_init")
	b := fb.Var()
	fb.ConstTo(b, 0)
	fb.Jmp("blocks")
	fb.Block("blocks")
	cb := fb.CmpI(kir.Lt, b, 6)
	fb.Br(cb, "fill_init", "round_next")

	// Fill the buffer with a block-dependent pattern.
	fb.Block("fill_init")
	blk := fb.Add(fb.MulI(slot, 8), b)
	buf := fb.LocalAddr("buf", 0)
	i := fb.Var()
	fb.ConstTo(i, 0)
	fb.Jmp("fill")
	fb.Block("fill")
	ci := fb.CmpI(kir.Lt, i, 60)
	fb.Br(ci, "fillb", "io")
	fb.Block("fillb")
	v := fb.Bin(kir.Xor, fb.Add(fb.MulI(blk, 7), i), fb.Const(0xA5))
	fb.Store(kir.W8, fb.Add(buf, i), 0, v)
	fb.BinImmTo(i, kir.Add, i, 1)
	fb.Jmp("fill")

	fb.Block("io")
	n := fb.Const(60)
	sysc(fb, kernel.SysWrite, blk, buf, n)
	// Clear and read back.
	fb.ConstTo(i, 0)
	fb.Jmp("clear")
	fb.Block("clear")
	cc2 := fb.CmpI(kir.Lt, i, 60)
	fb.Br(cc2, "clearb", "readback")
	fb.Block("clearb")
	z := fb.Const(0)
	fb.Store(kir.W8, fb.Add(buf, i), 0, z)
	fb.BinImmTo(i, kir.Add, i, 1)
	fb.Jmp("clear")
	fb.Block("readback")
	n2 := fb.Const(60)
	sysc(fb, kernel.SysRead, blk, buf, n2)
	fb.ConstTo(i, 0)
	fb.Jmp("fold")
	fb.Block("fold")
	cf := fb.CmpI(kir.Lt, i, 60)
	fb.Br(cf, "foldb", "block_next")
	fb.Block("foldb")
	bv := fb.Load(kir.W8, fb.Add(buf, i), 0)
	fb.BinTo(acc, kir.Mul, acc, fb.Const(31))
	fb.BinTo(acc, kir.Add, acc, bv)
	fb.BinImmTo(i, kir.Add, i, 1)
	fb.Jmp("fold")

	fb.Block("block_next")
	fb.BinImmTo(b, kir.Add, b, 1)
	fb.Jmp("blocks")
	fb.Block("round_next")
	fb.BinImmTo(r, kir.Add, r, 1)
	fb.Jmp("rounds")
	fb.Block("done")
	epilogue(fb, slot, acc)
}

// buildNet: transmit patterned packets and fold the kernel's checksums —
// the network exerciser.
func buildNet(pb *kir.ProgramBuilder, scale int) {
	fb := pb.Func(WorkerNet, 0, false)
	fb.Local("buf", kir.W8, 48)
	fb.Block("entry")
	_, slot := prologue(fb)
	acc := fb.Var()
	fb.ConstTo(acc, 3)
	k := fb.Var()
	fb.ConstTo(k, 0)
	limit := int32(20 * scale)
	fb.Jmp("loop")
	fb.Block("loop")
	c := fb.Cmp(kir.Lt, k, fb.Const(limit))
	fb.Br(c, "fill_init", "done")
	fb.Block("fill_init")
	buf := fb.LocalAddr("buf", 0)
	i := fb.Var()
	fb.ConstTo(i, 0)
	fb.Jmp("fill")
	fb.Block("fill")
	ci := fb.CmpI(kir.Lt, i, 44)
	fb.Br(ci, "fillb", "send")
	fb.Block("fillb")
	v := fb.Add(fb.Bin(kir.Mul, k, slot), i)
	fb.Store(kir.W8, fb.Add(buf, i), 0, v)
	fb.BinImmTo(i, kir.Add, i, 1)
	fb.Jmp("fill")
	fb.Block("send")
	n := fb.AddI(fb.AndI(k, 7), 36)
	cs := sysc(fb, kernel.SysSend, buf, n)
	fb.BinTo(acc, kir.Mul, acc, fb.Const(33))
	fb.BinTo(acc, kir.Xor, acc, cs)
	fb.BinImmTo(k, kir.Add, k, 1)
	fb.Jmp("loop")
	fb.Block("done")
	epilogue(fb, slot, acc)
}

// buildMM: drive the page allocator — the memory exerciser.
func buildMM(pb *kir.ProgramBuilder, scale int) {
	fb := pb.Func(WorkerMM, 0, false)
	fb.Block("entry")
	_, slot := prologue(fb)
	acc := fb.Var()
	fb.ConstTo(acc, 11)
	k := fb.Var()
	fb.ConstTo(k, 0)
	limit := int32(6 * scale)
	fb.Jmp("loop")
	fb.Block("loop")
	c := fb.Cmp(kir.Lt, k, fb.Const(limit))
	fb.Br(c, "body", "done")
	fb.Block("body")
	iters := fb.Const(16)
	n := sysc(fb, kernel.SysMemstress, iters)
	fb.BinTo(acc, kir.Mul, acc, fb.Const(37))
	fb.BinTo(acc, kir.Add, acc, n)
	sysc(fb, kernel.SysYield)
	fb.BinImmTo(k, kir.Add, k, 1)
	fb.Jmp("loop")
	fb.Block("done")
	epilogue(fb, slot, acc)
}

// buildPipePair: a producer streams a deterministic byte pattern through the
// kernel pipe while a consumer drains and checksums it — UnixBench's pipe
// throughput test, and a heavy scheduler exerciser (both sides spin on
// sys_yield when the ring is full/empty).
func buildPipePair(pb *kir.ProgramBuilder, scale int) {
	total := int32(pipeBytesPerScale * scale)
	// Producer.
	{
		fb := pb.Func(WorkerPipeSrc, 0, false)
		fb.Local("buf", kir.W8, 32)
		fb.Block("entry")
		_, slot := prologue(fb)
		buf := fb.LocalAddr("buf", 0)
		sent := fb.Var()
		seq := fb.Var()
		fb.ConstTo(sent, 0)
		fb.ConstTo(seq, 0)
		fb.Jmp("outer")
		fb.Block("outer")
		c := fb.Cmp(kir.Lt, sent, fb.Const(total))
		fb.Br(c, "fill_init", "done")
		fb.Block("fill_init")
		i := fb.Var()
		fb.ConstTo(i, 0)
		fb.Jmp("fill")
		fb.Block("fill")
		ci := fb.CmpI(kir.Lt, i, 32)
		fb.Br(ci, "fillb", "send")
		fb.Block("fillb")
		v := fb.Bin(kir.Xor, fb.Add(seq, i), fb.Const(0x5C))
		fb.Store(kir.W8, fb.Add(buf, i), 0, v)
		fb.BinImmTo(i, kir.Add, i, 1)
		fb.Jmp("fill")
		fb.Block("send")
		want := fb.Const(32)
		off := fb.Var()
		fb.ConstTo(off, 0)
		fb.Jmp("drain")
		fb.Block("drain")
		left := fb.Bin(kir.Sub, want, off)
		more := fb.CmpI(kir.Gt, left, 0)
		fb.Br(more, "push", "next")
		fb.Block("push")
		n := sysc(fb, kernel.SysPipeWrite, fb.Add(buf, off), left)
		wrote := fb.CmpI(kir.Gt, n, 0)
		fb.Br(wrote, "acct", "retry")
		fb.Block("retry")
		sysc(fb, kernel.SysYield)
		fb.Jmp("drain")
		fb.Block("acct")
		fb.BinTo(off, kir.Add, off, n)
		fb.Jmp("drain")
		fb.Block("next")
		fb.BinTo(sent, kir.Add, sent, want)
		fb.BinTo(seq, kir.Add, seq, want)
		fb.Jmp("outer")
		fb.Block("done")
		// The producer reports the bytes it pushed.
		epilogue(fb, slot, sent)
	}
	// Consumer.
	{
		fb := pb.Func(WorkerPipeSink, 0, false)
		fb.Local("buf", kir.W8, 32)
		fb.Block("entry")
		_, slot := prologue(fb)
		buf := fb.LocalAddr("buf", 0)
		got := fb.Var()
		acc := fb.Var()
		fb.ConstTo(got, 0)
		fb.ConstTo(acc, 17)
		fb.Jmp("outer")
		fb.Block("outer")
		c := fb.Cmp(kir.Lt, got, fb.Const(total))
		fb.Br(c, "pull", "done")
		fb.Block("pull")
		left := fb.Bin(kir.Sub, fb.Const(total), got)
		chunk := fb.Var()
		small := fb.CmpI(kir.Lt, left, 32)
		fb.Br(small, "useleft", "use32")
		fb.Block("useleft")
		fb.MovTo(chunk, left)
		fb.Jmp("issue")
		fb.Block("use32")
		fb.ConstTo(chunk, 32)
		fb.Jmp("issue")
		fb.Block("issue")
		n := sysc(fb, kernel.SysPipeRead, buf, chunk)
		read := fb.CmpI(kir.Gt, n, 0)
		fb.Br(read, "fold_init", "retry")
		fb.Block("retry")
		sysc(fb, kernel.SysYield)
		fb.Jmp("outer")
		fb.Block("fold_init")
		i := fb.Var()
		fb.ConstTo(i, 0)
		fb.Jmp("fold")
		fb.Block("fold")
		ci := fb.Cmp(kir.Lt, i, n)
		fb.Br(ci, "foldb", "acct")
		fb.Block("foldb")
		v := fb.Load(kir.W8, fb.Add(buf, i), 0)
		fb.BinTo(acc, kir.Mul, acc, fb.Const(131))
		fb.BinTo(acc, kir.Add, acc, v)
		fb.BinImmTo(i, kir.Add, i, 1)
		fb.Jmp("fold")
		fb.Block("acct")
		fb.BinTo(got, kir.Add, got, n)
		fb.Jmp("outer")
		fb.Block("done")
		epilogue(fb, slot, acc)
	}
}

// buildCoordinator: wait for the workers, fold their results, and report the
// final checksum to the harness.
func buildCoordinator(pb *kir.ProgramBuilder) {
	fb := pb.Func(Coordinator, 0, false)
	fb.Block("entry")
	fb.Jmp("wait")
	fb.Block("wait")
	active := sysc(fb, kernel.SysActive)
	alone := fb.CmpI(kir.Le, active, 1)
	fb.Br(alone, "gather_init", "nap")
	fb.Block("nap")
	two := fb.Const(2)
	sysc(fb, kernel.SysSleep, two)
	fb.Jmp("wait")
	fb.Block("gather_init")
	acc := fb.Var()
	fb.ConstTo(acc, 0x1505)
	i := fb.Var()
	fb.ConstTo(i, 0)
	fb.Jmp("gather")
	fb.Block("gather")
	c := fb.CmpI(kir.Lt, i, kernel.NPROC)
	fb.Br(c, "fold", "report")
	fb.Block("fold")
	r := sysc(fb, kernel.SysGetResult, i)
	fb.BinTo(acc, kir.Mul, acc, fb.Const(16777619))
	fb.BinTo(acc, kir.Xor, acc, r)
	fb.BinImmTo(i, kir.Add, i, 1)
	fb.Jmp("gather")
	fb.Block("report")
	done := fb.Const(int32(machine.HyperDone))
	fb.Syscall(done, acc)
	// Unreachable: the harness ends the run at HyperDone.
	fb.Bug()
	fb.Ret(0)
}

// StandardProcs returns the standard benchmark process mix: the two kernel
// daemons (kupdate, kjournald) and the four workers plus the coordinator.
func StandardProcs() []kernel.ProcSpec {
	return []kernel.ProcSpec{
		{Name: "kupdate", Entry: "kupdate"},
		{Name: "kjournald", Entry: "kjournald"},
		{Name: "arith", Entry: WorkerArith, InUserImage: true, User: true},
		{Name: "fs", Entry: WorkerFS, InUserImage: true, User: true},
		{Name: "net", Entry: WorkerNet, InUserImage: true, User: true},
		{Name: "mm", Entry: WorkerMM, InUserImage: true, User: true},
		{Name: "pipe-writer", Entry: WorkerPipeSrc, InUserImage: true, User: true},
		{Name: "pipe-reader", Entry: WorkerPipeSink, InUserImage: true, User: true},
		{Name: "coordinator", Entry: Coordinator, InUserImage: true, User: true},
	}
}
