package workload_test

import (
	"testing"

	"kfi/internal/cc"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/machine"
	"kfi/internal/workload"
)

func TestProgramValidates(t *testing.T) {
	for _, scale := range []int{0, 1, 3} {
		p := workload.Program(scale)
		if err := p.Validate(); err != nil {
			t.Errorf("scale %d: %v", scale, err)
		}
	}
}

func TestProgramCompilesBothPlatforms(t *testing.T) {
	p := workload.Program(1)
	for _, plat := range []isa.Platform{isa.CISC, isa.RISC} {
		im, err := cc.Compile(p, plat, kernel.UserBases)
		if err != nil {
			t.Fatalf("[%v] %v", plat, err)
		}
		for _, entry := range []string{
			workload.WorkerArith, workload.WorkerFS, workload.WorkerNet,
			workload.WorkerMM, workload.Coordinator,
		} {
			if _, ok := im.Syms[entry]; !ok {
				t.Errorf("[%v] entry %s missing from image", plat, entry)
			}
		}
	}
}

func TestStandardProcsShape(t *testing.T) {
	procs := workload.StandardProcs()
	if len(procs) != 9 {
		t.Fatalf("StandardProcs = %d entries, want 9", len(procs))
	}
	var daemons, users int
	for _, ps := range procs {
		if ps.User {
			users++
			if !ps.InUserImage {
				t.Errorf("user proc %q not in user image", ps.Name)
			}
		} else {
			daemons++
		}
	}
	if daemons != 2 || users != 7 {
		t.Errorf("daemons=%d users=%d, want 2 and 7", daemons, users)
	}
}

func TestScaleLengthensRuns(t *testing.T) {
	cyclesAt := func(scale int) uint64 {
		uimg, err := cc.Compile(workload.Program(scale), isa.CISC, kernel.UserBases)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := kernel.BuildSystem(isa.CISC, uimg, workload.StandardProcs(), kernel.Options{
			Watchdog: 500_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := sys.Run()
		if res.Outcome != machine.OutCompleted {
			t.Fatalf("scale %d run: %v", scale, res.Outcome)
		}
		return res.Cycles
	}
	c1 := cyclesAt(1)
	c3 := cyclesAt(3)
	if c3 < c1*2 {
		t.Errorf("scale 3 = %d cycles vs scale 1 = %d; want a clear lengthening", c3, c1)
	}
}

func TestChecksumVariesWithScale(t *testing.T) {
	// Different scales do different work and must produce different
	// checksums; the same scale must reproduce exactly.
	sum := func(scale int) uint32 {
		uimg, err := cc.Compile(workload.Program(scale), isa.RISC, kernel.UserBases)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := kernel.BuildSystem(isa.RISC, uimg, workload.StandardProcs(), kernel.Options{
			Watchdog: 500_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := sys.Run()
		if res.Outcome != machine.OutCompleted {
			t.Fatalf("run: %v", res.Outcome)
		}
		return res.Checksum
	}
	a, b, a2 := sum(1), sum(2), sum(1)
	if a == b {
		t.Error("scale 1 and 2 produced identical checksums")
	}
	if a != a2 {
		t.Error("same scale produced different checksums")
	}
}

func TestWorkloadProgramDeterministic(t *testing.T) {
	// Reproducible images require reproducible IR: two builds at the same
	// scale must dump identically (map-iteration order bugs show up here).
	a := workload.Program(2).Dump()
	b := workload.Program(2).Dump()
	if a != b {
		t.Fatal("workload IR differs between two builds at the same scale")
	}
	if workload.Program(1).Dump() == a {
		t.Fatal("scale parameter has no effect on the workload IR")
	}
}
