package machine

import (
	"fmt"
	"io"
)

// TraceStep is one retired instruction captured by TraceRun.
type TraceStep struct {
	PC     uint32
	Disasm string
	Cycles uint64 // cycle counter after the instruction retired
}

// TraceRun executes from the machine's current state, capturing up to
// maxSteps retired instructions with their disassembly, then stops (via the
// pause mechanism) or ends with the run's outcome. It is a debugging and
// teaching aid — the instruction stream it shows is exactly what the
// injector corrupts.
func (ma *Machine) TraceRun(maxSteps int) ([]TraceStep, RunResult) {
	steps := make([]TraceStep, 0, maxSteps)
	clk := ma.core.Clock()
	ma.core.SetTrace(func(pc uint32, cost uint8) {
		if len(steps) >= maxSteps {
			return
		}
		steps = append(steps, TraceStep{
			PC:     pc,
			Disasm: ma.disasmAt(pc),
			Cycles: clk.Cycles(),
		})
		if len(steps) == maxSteps {
			// Stop at the next loop iteration.
			ma.PauseAt = clk.Cycles()
		}
	})
	res := ma.Run()
	ma.core.SetTrace(nil)
	return steps, res
}

// Disasm renders the instruction at pc against the machine's current memory
// image (so a code injection's corrupted encoding shows up as corrupted).
func (ma *Machine) Disasm(pc uint32) string { return ma.disasmAt(pc) }

// disasmAt renders the instruction at pc (best effort; raw bytes on failure).
func (ma *Machine) disasmAt(pc uint32) string { return ma.core.DisasmAt(pc) }

// WriteTrace prints trace steps in an objdump-like format.
func WriteTrace(w io.Writer, steps []TraceStep) error {
	for _, s := range steps {
		if _, err := fmt.Fprintf(w, "%10d  %08x  %s\n", s.Cycles, s.PC, s.Disasm); err != nil {
			return err
		}
	}
	return nil
}
