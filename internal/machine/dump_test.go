package machine

import (
	"strings"
	"testing"

	"kfi/internal/isa"
)

func TestCrashMessagesMatchPaperStyle(t *testing.T) {
	tests := []struct {
		p     isa.Platform
		cause isa.CrashCause
		want  string
	}{
		{isa.CISC, isa.CauseNULLPointer, "Unable to handle kernel NULL pointer dereference at virtual address 00000008"},
		{isa.CISC, isa.CauseBadPaging, "Unable to handle kernel paging request at virtual address 00000008"},
		{isa.CISC, isa.CauseInvalidInstr, "invalid opcode"},
		{isa.CISC, isa.CauseGeneralProtection, "general protection fault"},
		{isa.CISC, isa.CauseInvalidTSS, "invalid TSS"},
		{isa.CISC, isa.CauseDivideError, "divide error"},
		{isa.CISC, isa.CauseKernelPanic, "Kernel panic"},
		{isa.CISC, isa.CauseBoundsTrap, "bounds"},
		{isa.RISC, isa.CauseBadArea, "kernel access of bad area"},
		{isa.RISC, isa.CauseIllegalInstr, "illegal instruction"},
		{isa.RISC, isa.CauseStackOverflow, "kernel stack overflow"},
		{isa.RISC, isa.CauseMachineCheck, "Machine check"},
		{isa.RISC, isa.CauseAlignment, "alignment exception"},
		{isa.RISC, isa.CauseBusError, "bus error"},
		{isa.RISC, isa.CauseBadTrap, "bad trap"},
		{isa.RISC, isa.CausePanic, "Kernel panic!!!"},
	}
	for _, tt := range tests {
		rec := &CrashRecord{Cause: tt.cause, PC: 0x10000, FaultAddr: 8, SP: 0x170000}
		msg := rec.Message(tt.p)
		if !strings.Contains(msg, tt.want) {
			t.Errorf("[%v/%v] message %q missing %q", tt.p, tt.cause, msg, tt.want)
		}
	}
}

func TestCrashDumpContents(t *testing.T) {
	rec := &CrashRecord{
		Cause:     isa.CauseBadPaging,
		PC:        0xC02ABF29,
		FaultAddr: 0x170FC2A5,
		SP:        0x00171F00,
		Cycles:    13116444,
		Known:     true,
		FramePtrs: [8]uint32{0xC0119CB2, 0xC0107784, 0xC010799A, 0xC0108067, 0xC0119CB2, 0xC0107784, 0xC010799A, 0xC0108067},
	}
	dump := rec.Dump(isa.CISC)
	for _, want := range []string{
		"Unable to handle kernel paging request at virtual address 170fc2a5",
		"EIP: c02abf29",
		"c0119cb2", // the Figure 7 return-address pattern
		"13116444",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
	rec.Known = false
	if !strings.Contains(rec.Dump(isa.CISC), "unreliable") {
		t.Error("unknown-crash marker missing")
	}
}

func TestDumpRISCRegisterNames(t *testing.T) {
	rec := &CrashRecord{Cause: isa.CauseBadArea, PC: 0xC008D7A8, FaultAddr: 0x4D, Known: true}
	dump := rec.Dump(isa.RISC)
	if !strings.Contains(dump, "NIP") || !strings.Contains(dump, "R1") {
		t.Errorf("RISC dump should use NIP/R1 names:\n%s", dump)
	}
}
