package machine_test

import (
	"hash/fnv"
	"math/rand"
	"testing"

	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/machine"
	"kfi/internal/snapshot"
)

// traceFingerprint hashes every retired instruction whose start cycle is >=
// from, as (pc, cost) pairs. Two machines executing the same instruction
// stream from the same cycle produce the same fingerprint.
func traceFingerprint(m *machine.Machine, from uint64) (run func() (uint64, machine.RunResult)) {
	return func() (uint64, machine.RunResult) {
		h := fnv.New64a()
		clk := m.Core().Clock()
		m.Core().SetTrace(func(pc uint32, cost uint8) {
			// The trace fires after the clock advanced; the instruction
			// started cost cycles earlier.
			if clk.Cycles()-uint64(cost) < from {
				return
			}
			var b [5]byte
			b[0] = byte(pc >> 24)
			b[1] = byte(pc >> 16)
			b[2] = byte(pc >> 8)
			b[3] = byte(pc)
			b[4] = byte(cost)
			h.Write(b[:])
		})
		res := m.Run()
		m.Core().SetTrace(nil)
		return h.Sum64(), res
	}
}

// TestRestoreEquivalence is the subsystem's correctness oath at machine
// granularity: checkpoint the golden run at a random cycle, restore the
// snapshot into a freshly built machine, and require the resumed instruction
// stream (trace fingerprint) and final outcome to match an uninterrupted
// run from boot.
func TestRestoreEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for _, p := range []isa.Platform{isa.CISC, isa.RISC} {
		t.Run(p.Short(), func(t *testing.T) {
			sysA := buildSystem(t, p, kernel.Options{})
			mA := sysA.Machine
			clean := sysA.Run()
			if clean.Outcome != machine.OutCompleted {
				t.Fatalf("clean run: %v", clean.Outcome)
			}

			// Checkpoint at a random point of the run's middle 80%.
			span := clean.Cycles
			trigger := span/10 + uint64(rng.Int63n(int64(span*8/10)))
			mA.Reboot()
			mA.PauseAt = trigger
			if res := mA.Run(); res.Outcome != machine.OutPaused {
				t.Fatalf("pause leg ended early: %v", res.Outcome)
			}
			snap := snapshot.Capture(mA)
			pausePoint := snap.Cycles
			mA.Mem.ClearBaseline()

			// Reference: an uninterrupted run from boot, fingerprinting only
			// the instructions at/after the pause point.
			mA.Reboot()
			fpU, resU := traceFingerprint(mA, pausePoint)()
			if resU.Outcome != machine.OutCompleted || resU.Cycles != clean.Cycles {
				t.Fatalf("uninterrupted reference diverged from clean run: %+v", resU)
			}

			// Candidate: restore the snapshot into a brand-new machine.
			sysB := buildSystem(t, p, kernel.Options{})
			mB := sysB.Machine
			if _, err := snap.Restore(mB); err != nil {
				t.Fatal(err)
			}
			fpR, resR := traceFingerprint(mB, pausePoint)()

			if fpR != fpU {
				t.Errorf("trace fingerprint after restore %016x, uninterrupted %016x (trigger %d, paused %d)",
					fpR, fpU, trigger, pausePoint)
			}
			if resR.Outcome != resU.Outcome || resR.Checksum != resU.Checksum || resR.Cycles != resU.Cycles {
				t.Errorf("restored run result %+v, uninterrupted %+v", resR, resU)
			}
		})
	}
}
