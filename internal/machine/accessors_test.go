package machine_test

// Tests for the machine's accessor surface and the G4 exception-entry
// sensitivity checks (SPRG2/SDR1/BAT corruption detected at interrupt
// delivery — the paper's §5.2 register findings).

import (
	"errors"
	"testing"

	"kfi/internal/crashnet"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/machine"
	"kfi/internal/risc"
)

func TestPlatformAccessors(t *testing.T) {
	cisc := buildSystem(t, isa.CISC, kernel.Options{}).Machine
	riscM := buildSystem(t, isa.RISC, kernel.Options{}).Machine

	if cisc.CISCCPU() == nil || cisc.RISCCPU() != nil {
		t.Error("CISC machine exposes wrong concrete CPUs")
	}
	if riscM.RISCCPU() == nil || riscM.CISCCPU() != nil {
		t.Error("RISC machine exposes wrong concrete CPUs")
	}
	if cisc.Config().Platform != isa.CISC || riscM.Config().Platform != isa.RISC {
		t.Error("Config does not reflect the build platform")
	}
	if cisc.Core().Debug() == nil || riscM.Core().Debug() == nil {
		t.Error("Core.Debug must expose the debug unit")
	}
	// Context frames: the RISC context (32 GPRs + specials) is necessarily
	// larger than the CISC one (8 GPRs + specials).
	if cw, rw := cisc.Core().CtxWords(), riscM.Core().CtxWords(); cw >= rw {
		t.Errorf("context words CISC %d, RISC %d; RISC must be larger", cw, rw)
	}
}

func TestSetStackBoundsControlsWrapper(t *testing.T) {
	m := buildSystem(t, isa.RISC, kernel.Options{}).Machine
	core := m.Core()
	sp := core.SP()
	core.SetStackBounds(sp-0x100, sp+0x100)
	if !core.StackPointerInBounds() {
		t.Error("SP inside the configured bounds reported out-of-bounds")
	}
	core.SetStackBounds(sp+0x1000, sp+0x2000)
	if core.StackPointerInBounds() {
		t.Error("SP below the configured bounds reported in-bounds")
	}
	// Zero bounds disable the check (boot state before the first ctxsw).
	core.SetStackBounds(0, 0)
	if !core.StackPointerInBounds() {
		t.Error("zero bounds must disable the wrapper check")
	}
}

// corruptG4SPR flips state in one supervisor register and runs to the next
// timer interrupt, returning the outcome.
func corruptG4SPR(t *testing.T, mutate func(c *risc.CPU)) machine.RunResult {
	t.Helper()
	sys := buildSystem(t, isa.RISC, kernel.Options{})
	m := sys.Machine
	m.Reboot()
	// Let the system boot past the first ticks, then corrupt.
	m.PauseAt = 200_000
	if r := m.Run(); r.Outcome != machine.OutPaused {
		t.Fatalf("pre-run: %v", r.Outcome)
	}
	mutate(m.RISCCPU())
	return m.Run()
}

func TestG4TranslationStateSensitivity(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(c *risc.CPU)
	}{
		{"SDR1 HTABORG bit", func(c *risc.CPU) { c.SPR[risc.SprSDR1] ^= 1 << 20 }},
		{"IBAT0U BEPI bit", func(c *risc.CPU) { c.SPR[risc.SprIBAT0U] ^= 1 << 24 }},
		{"DBAT0U valid bit", func(c *risc.CPU) { c.SPR[risc.SprDBAT0U] ^= 1 << 1 }},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			res := corruptG4SPR(t, tt.mutate)
			if res.Outcome != machine.OutCrashed {
				t.Fatalf("outcome %v, want crash at next exception entry", res.Outcome)
			}
			if res.Crash.Cause != isa.CauseBadArea {
				t.Errorf("cause %v, want Bad Area (derailed translation)", res.Crash.Cause)
			}
		})
	}
}

func TestG4SPRG2WildPointerOutcomes(t *testing.T) {
	// SPRG2 is the exception scratch pointer: where it lands decides the
	// failure mode (paper §5.2).
	t.Run("unmapped", func(t *testing.T) {
		res := corruptG4SPR(t, func(c *risc.CPU) { c.SPR[risc.SprSPRG2] = 0x00F00000 })
		if res.Outcome != machine.OutCrashed || res.Crash.Cause != isa.CauseBadArea {
			t.Errorf("got %v/%v, want crash/Bad Area", res.Outcome, crashCause(res))
		}
	})
	t.Run("bus window", func(t *testing.T) {
		res := corruptG4SPR(t, func(c *risc.CPU) { c.SPR[risc.SprSPRG2] = 0xF4000000 })
		if res.Outcome != machine.OutCrashed || res.Crash.Cause != isa.CauseMachineCheck {
			t.Errorf("got %v/%v, want crash/Machine Check", res.Outcome, crashCause(res))
		}
	})
	t.Run("mapped memory derails execution", func(t *testing.T) {
		// A wild but mapped scratch pointer lets the entry path continue
		// into an essentially random location: anything but a clean
		// completion with the golden checksum.
		sys := buildSystem(t, isa.RISC, kernel.Options{})
		clean := sys.Run()
		res := corruptG4SPR(t, func(c *risc.CPU) { c.SPR[risc.SprSPRG2] = 0x00080000 })
		if res.Outcome == machine.OutCompleted && res.Checksum == clean.Checksum {
			t.Error("corrupted SPRG2 into mapped memory produced a golden run")
		}
	})
}

func crashCause(r machine.RunResult) isa.CrashCause {
	if r.Crash == nil {
		return 0
	}
	return r.Crash.Cause
}

func TestSetTraceObservesExecution(t *testing.T) {
	sys := buildSystem(t, isa.CISC, kernel.Options{})
	m := sys.Machine
	m.Reboot()
	var pcs []uint32
	m.Core().SetTrace(func(pc uint32, cost uint8) {
		if len(pcs) < 64 {
			pcs = append(pcs, pc)
		}
	})
	m.PauseAt = 2_000
	m.Run()
	m.Core().SetTrace(nil)
	if len(pcs) == 0 {
		t.Fatal("trace hook never fired")
	}
	// The first traced PC is the boot entry point, inside a known kernel
	// function.
	if fr, ok := sys.KernelImage.FuncAt(pcs[0]); !ok || fr.Name == "" {
		t.Errorf("first traced PC 0x%X is not inside any kernel function", pcs[0])
	}
}

// failingSender always refuses delivery, simulating a dead network path
// between the crashing guest and the monitoring machine.
type failingSender struct{}

func (failingSender) Send(crashnet.Packet) error { return errors.New("link down") }

func TestCrashDegradesToUnknownWhenDeliveryFails(t *testing.T) {
	// Reference run with a working channel: the crash is Known and the
	// packet arrives.
	ch := crashnet.NewChannel()
	sys := buildSystem(t, isa.CISC, kernel.Options{CrashSender: ch})
	m := sys.Machine
	m.Reboot()
	// Corrupt the scheduler's runqueue pointer walk: flip current to NULL.
	m.Mem.RawWrite(m.Config().CurrentPtr, 4, 0)
	res := m.Run()
	if res.Outcome != machine.OutCrashed || !res.Crash.Known {
		t.Fatalf("reference crash: %+v", res.Outcome)
	}
	if _, ok := ch.Recv(); !ok {
		t.Fatal("no crash packet on working channel")
	}

	// Same corruption with a dead link: the crash record degrades to
	// unknown (the paper's hang/unknown-crash column).
	sys2 := buildSystem(t, isa.CISC, kernel.Options{CrashSender: failingSender{}})
	m2 := sys2.Machine
	m2.Reboot()
	m2.Mem.RawWrite(m2.Config().CurrentPtr, 4, 0)
	res2 := m2.Run()
	if res2.Outcome != machine.OutCrashed {
		t.Fatalf("outcome %v", res2.Outcome)
	}
	if res2.Crash.Known {
		t.Error("crash stayed Known despite failed delivery")
	}
}
