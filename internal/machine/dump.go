package machine

import (
	"fmt"
	"strings"

	"kfi/internal/isa"
	"kfi/internal/platform"
)

// Message renders the crash the way the platform's kernel would print it —
// the strings the paper quotes from its crash dumps ("Unable to handle
// kernel NULL pointer dereference at virtual address 00000008", "kernel
// access of bad area", ...). The wording belongs to the platform descriptor.
func (c *CrashRecord) Message(p isa.Platform) string {
	if d, ok := platform.Find(p); ok {
		return d.CrashMessage(c.Cause, c.PC, c.FaultAddr, c.SP)
	}
	return fmt.Sprintf("%s at pc %08x", c.Cause, c.PC)
}

// Dump renders the full crash report in the style of the paper's dump
// listings: the platform message, the register snapshot, and the top stack
// words whose repeating return-address patterns diagnose stack overflows
// (Figure 7's pattern ②).
func (c *CrashRecord) Dump(p isa.Platform) string {
	var b strings.Builder
	b.WriteString(c.Message(p) + "\n")
	pcName, spName := "PC ", "SP "
	if d, ok := platform.Find(p); ok {
		pcName, spName = d.RegisterLabels()
	}
	fmt.Fprintf(&b, "%s: %08x  %s: %08x  fault: %08x  cycles: %d\n",
		pcName, c.PC, spName, c.SP, c.FaultAddr, c.Cycles)
	b.WriteString("Stack:")
	for i, fp := range c.FramePtrs {
		if i%4 == 0 {
			b.WriteString("\n ")
		}
		fmt.Fprintf(&b, " %08x", fp)
	}
	b.WriteString("\n")
	if !c.Known {
		b.WriteString("<dump unreliable: crash handler could not reach the collector>\n")
	}
	return b.String()
}
