package machine

import (
	"fmt"
	"strings"

	"kfi/internal/isa"
)

// Message renders the crash the way the platform's kernel would print it —
// the strings the paper quotes from its crash dumps ("Unable to handle
// kernel NULL pointer dereference at virtual address 00000008", "kernel
// access of bad area", ...).
func (c *CrashRecord) Message(p isa.Platform) string {
	if p == isa.CISC {
		switch c.Cause {
		case isa.CauseNULLPointer:
			return fmt.Sprintf("Unable to handle kernel NULL pointer dereference at virtual address %08x", c.FaultAddr)
		case isa.CauseBadPaging:
			return fmt.Sprintf("Unable to handle kernel paging request at virtual address %08x", c.FaultAddr)
		case isa.CauseInvalidInstr:
			return fmt.Sprintf("invalid opcode: 0000 [#1] at EIP %08x", c.PC)
		case isa.CauseGeneralProtection:
			return fmt.Sprintf("general protection fault: 0000 [#1] at EIP %08x", c.PC)
		case isa.CauseKernelPanic:
			return "Kernel panic: fatal exception"
		case isa.CauseInvalidTSS:
			return fmt.Sprintf("invalid TSS: 0000 [#1] at EIP %08x", c.PC)
		case isa.CauseDivideError:
			return fmt.Sprintf("divide error: 0000 [#1] at EIP %08x", c.PC)
		case isa.CauseBoundsTrap:
			return fmt.Sprintf("bounds: 0000 [#1] at EIP %08x", c.PC)
		default:
			return fmt.Sprintf("unknown exception at EIP %08x", c.PC)
		}
	}
	switch c.Cause {
	case isa.CauseBadArea:
		return fmt.Sprintf("kernel access of bad area, sig: 11 [#1] dar %08x nip %08x", c.FaultAddr, c.PC)
	case isa.CauseIllegalInstr:
		return fmt.Sprintf("kernel tried to execute illegal instruction at nip %08x", c.PC)
	case isa.CauseStackOverflow:
		return fmt.Sprintf("kernel stack overflow, r1 %08x nip %08x", c.SP, c.PC)
	case isa.CauseMachineCheck:
		return fmt.Sprintf("Machine check in kernel mode, dar %08x nip %08x", c.FaultAddr, c.PC)
	case isa.CauseAlignment:
		return fmt.Sprintf("alignment exception, dar %08x nip %08x", c.FaultAddr, c.PC)
	case isa.CausePanic:
		return "Kernel panic!!!"
	case isa.CauseBusError:
		return fmt.Sprintf("bus error (protection fault), dar %08x nip %08x", c.FaultAddr, c.PC)
	case isa.CauseBadTrap:
		return fmt.Sprintf("kernel bad trap at nip %08x", c.PC)
	default:
		return fmt.Sprintf("unknown exception at nip %08x", c.PC)
	}
}

// Dump renders the full crash report in the style of the paper's dump
// listings: the platform message, the register snapshot, and the top stack
// words whose repeating return-address patterns diagnose stack overflows
// (Figure 7's pattern ②).
func (c *CrashRecord) Dump(p isa.Platform) string {
	var b strings.Builder
	b.WriteString(c.Message(p) + "\n")
	pcName, spName := "EIP", "ESP"
	if p == isa.RISC {
		pcName, spName = "NIP", "R1 "
	}
	fmt.Fprintf(&b, "%s: %08x  %s: %08x  fault: %08x  cycles: %d\n",
		pcName, c.PC, spName, c.SP, c.FaultAddr, c.Cycles)
	b.WriteString("Stack:")
	for i, fp := range c.FramePtrs {
		if i%4 == 0 {
			b.WriteString("\n ")
		}
		fmt.Fprintf(&b, " %08x", fp)
	}
	b.WriteString("\n")
	if !c.Known {
		b.WriteString("<dump unreliable: crash handler could not reach the collector>\n")
	}
	return b.String()
}
