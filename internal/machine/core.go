// Package machine assembles a bootable guest system for any registered
// platform: CPU + memory + timer + watchdog + crash handler + the host-side
// trap glue (interrupt delivery, context switching) that on real hardware
// would be hand-written kernel assembly. It exposes the run loop the
// injection campaigns drive: run-until-{completion, crash, hang}, with
// breakpoint events surfaced to the injector through hooks.
//
// Everything platform-specific resolves through the internal/platform
// registry: the machine consults the platform Descriptor for core
// construction, bus windows, and crash staging, and the platform Core for
// boot state, delivery vetting, and call conventions. Importing this package
// registers both built-in platforms.
package machine

import (
	"kfi/internal/platform"

	// The built-in platforms register their descriptors on import, so any
	// machine user can construct either guest.
	_ "kfi/internal/cisc"
	_ "kfi/internal/risc"
)

// Core is the platform-generic view of a processor used by the machine
// layer; see platform.Core for the contract.
type Core = platform.Core

// SysReg is one injectable system register; see platform.SysReg.
type SysReg = platform.SysReg
