// Package machine assembles a bootable guest system for either platform:
// CPU + memory + timer + watchdog + crash handler + the host-side trap glue
// (interrupt delivery, context switching) that on real hardware would be
// hand-written kernel assembly. It exposes the run loop the injection
// campaigns drive: run-until-{completion, crash, hang}, with breakpoint
// events surfaced to the injector through hooks.
package machine

import (
	"kfi/internal/cisc"
	"kfi/internal/isa"
	"kfi/internal/mem"
	"kfi/internal/risc"
)

// Core is the platform-generic view of a processor used by the machine
// layer. Both adapters are thin; everything architectural stays in the ISA
// packages.
type Core interface {
	Step() isa.Event
	// RunUntil steps until the clock reaches limit or a step produces a
	// non-EvNone event, which it returns; EvNone means the limit was
	// reached. Equivalent to calling Step in a loop, but without the
	// per-instruction interface dispatch.
	RunUntil(limit uint64) isa.Event
	Reset()

	PC() uint32
	SetPC(uint32)
	SP() uint32
	SetSP(uint32)
	Mode() isa.Mode
	InterruptsEnabled() bool

	// DeliverInterrupt vectors to handler, switching to the given kernel
	// stack when interrupted in user mode.
	DeliverInterrupt(handler, kernelSP uint32) isa.Event

	// SetSyscallResult places a value in the syscall return register.
	SetSyscallResult(v uint32)
	// SyscallArgs returns the three syscall argument registers.
	SyscallArgs() (a, b, c uint32)

	// Context save/restore for the ctxsw primitive. The context area is
	// CtxWords() 32-bit words at addr, written with raw (glue) access.
	CtxWords() int
	SaveContext(addr uint32)
	RestoreContext(addr uint32)
	// InitContext crafts a fresh context that starts executing at entry
	// with the given stack pointer and mode.
	InitContext(addr, entry, sp uint32, user bool)
	// CtxSPOffset is the byte offset of the saved stack pointer within a
	// context area (used to resolve a sleeping process's stack extent).
	CtxSPOffset() uint32
	// CtxModeUser reports whether a saved context at addr was in user mode.
	CtxModeUser(addr uint32) bool

	// SetStackBounds tells the core the current kernel stack range (used by
	// the RISC exception-entry wrapper; a no-op on CISC, which has no such
	// check — a paper finding).
	SetStackBounds(lo, hi uint32)
	// StackPointerInBounds reports whether SP is inside the current kernel
	// stack range (the RISC wrapper check).
	StackPointerInBounds() bool

	// CrashDumpPossible reports whether the embedded crash handler can run
	// and ship a dump: when it cannot, the crash counts in the paper's
	// "Hang/Unknown Crash" column.
	CrashDumpPossible() bool

	Clock() *isa.CycleCounter
	Debug() *isa.DebugUnit
	SetTrace(fn func(pc uint32, cost uint8))
	PendingDataBreak() (slot int, access isa.DataAccess, addr uint32, ok bool)

	// SetPredecode enables/disables the decoded-instruction cache; disabled
	// is the reference interpreter (fetch+decode every step). Outcomes are
	// bit-identical either way; only wall-clock changes.
	SetPredecode(on bool)
	// FlushPredecode drops all predecoded instructions. Stale entries are
	// already invalidated by memory generation counters; flushing only
	// bounds memory and establishes cold-cache conditions.
	FlushPredecode()
}

// ciscCore adapts cisc.CPU to Core.
type ciscCore struct {
	cpu *cisc.CPU
	mem *mem.Memory
}

var _ Core = (*ciscCore)(nil)

func (c *ciscCore) Step() isa.Event                 { return c.cpu.Step() }
func (c *ciscCore) RunUntil(limit uint64) isa.Event { return c.cpu.RunUntil(limit) }
func (c *ciscCore) Reset()                          { c.cpu.Reset() }
func (c *ciscCore) PC() uint32                      { return c.cpu.EIP }
func (c *ciscCore) SetPC(v uint32)                  { c.cpu.EIP = v }
func (c *ciscCore) SP() uint32                      { return c.cpu.Regs[cisc.ESP] }
func (c *ciscCore) SetSP(v uint32)                  { c.cpu.Regs[cisc.ESP] = v }
func (c *ciscCore) Mode() isa.Mode                  { return c.cpu.Mode }

func (c *ciscCore) InterruptsEnabled() bool { return c.cpu.Flags&cisc.FlagIF != 0 }

func (c *ciscCore) DeliverInterrupt(handler, ksp uint32) isa.Event {
	return c.cpu.DeliverInterrupt(handler, ksp)
}

func (c *ciscCore) SetSyscallResult(v uint32) { c.cpu.Regs[cisc.EAX] = v }

func (c *ciscCore) SyscallArgs() (uint32, uint32, uint32) {
	return c.cpu.Regs[cisc.EBX], c.cpu.Regs[cisc.ECX], c.cpu.Regs[cisc.EDX]
}

// CISC context: 8 GPRs, EIP, EFLAGS, mode.
func (c *ciscCore) CtxWords() int { return 11 }

func (c *ciscCore) SaveContext(addr uint32) {
	for i := 0; i < 8; i++ {
		c.mem.RawWrite(addr+uint32(i)*4, 4, c.cpu.Regs[i])
	}
	c.mem.RawWrite(addr+32, 4, c.cpu.EIP)
	c.mem.RawWrite(addr+36, 4, c.cpu.Flags)
	c.mem.RawWrite(addr+40, 4, uint32(c.cpu.Mode))
}

func (c *ciscCore) RestoreContext(addr uint32) {
	for i := 0; i < 8; i++ {
		c.cpu.Regs[i] = c.mem.RawRead(addr+uint32(i)*4, 4)
	}
	c.cpu.EIP = c.mem.RawRead(addr+32, 4)
	c.cpu.Flags = c.mem.RawRead(addr+36, 4)
	if isa.Mode(c.mem.RawRead(addr+40, 4)) == isa.UserMode {
		c.cpu.Mode = isa.UserMode
	} else {
		c.cpu.Mode = isa.KernelMode
	}
}

func (c *ciscCore) InitContext(addr, entry, sp uint32, user bool) {
	for i := 0; i < 8; i++ {
		c.mem.RawWrite(addr+uint32(i)*4, 4, 0)
	}
	c.mem.RawWrite(addr+uint32(cisc.ESP)*4, 4, sp)
	c.mem.RawWrite(addr+32, 4, entry)
	c.mem.RawWrite(addr+36, 4, uint32(cisc.FlagIF))
	mode := isa.KernelMode
	if user {
		mode = isa.UserMode
	}
	c.mem.RawWrite(addr+40, 4, uint32(mode))
}

// CtxSPOffset: ESP is general register 4.
func (c *ciscCore) CtxSPOffset() uint32 { return uint32(cisc.ESP) * 4 }

// CtxModeUser reads the saved mode word.
func (c *ciscCore) CtxModeUser(addr uint32) bool {
	return isa.Mode(c.mem.RawRead(addr+40, 4)) == isa.UserMode
}

// SetStackBounds is a no-op: the P4 kernel performs no stack-range checking.
func (c *ciscCore) SetStackBounds(lo, hi uint32) {}

// StackPointerInBounds always reports true on CISC: there is no wrapper, so
// stack overflows propagate into other exception categories (paper §5.1).
func (c *ciscCore) StackPointerInBounds() bool { return true }

// CrashDumpPossible: the P4 crash handler dumps via the current stack; a
// corrupted, unmapped ESP defeats it.
func (c *ciscCore) CrashDumpPossible() bool {
	sp := c.cpu.Regs[cisc.ESP]
	return c.mem.Check(sp-64, 64, true, false) == nil
}

func (c *ciscCore) Clock() *isa.CycleCounter { return &c.cpu.Clk }
func (c *ciscCore) Debug() *isa.DebugUnit    { return &c.cpu.Debug }

func (c *ciscCore) SetTrace(fn func(pc uint32, cost uint8)) { c.cpu.Trace = fn }

func (c *ciscCore) PendingDataBreak() (int, isa.DataAccess, uint32, bool) {
	return c.cpu.PendingDataBreak()
}

func (c *ciscCore) SetPredecode(on bool) { c.cpu.SetPredecode(on) }
func (c *ciscCore) FlushPredecode()      { c.cpu.FlushPredecode() }

// riscCore adapts risc.CPU to Core.
type riscCore struct {
	cpu *risc.CPU
	mem *mem.Memory
}

var _ Core = (*riscCore)(nil)

func (c *riscCore) Step() isa.Event                 { return c.cpu.Step() }
func (c *riscCore) RunUntil(limit uint64) isa.Event { return c.cpu.RunUntil(limit) }
func (c *riscCore) Reset()                          { c.cpu.Reset() }
func (c *riscCore) PC() uint32                      { return c.cpu.PC }
func (c *riscCore) SetPC(v uint32)                  { c.cpu.PC = v }
func (c *riscCore) SP() uint32                      { return c.cpu.R[risc.SP] }
func (c *riscCore) SetSP(v uint32)                  { c.cpu.R[risc.SP] = v }
func (c *riscCore) Mode() isa.Mode                  { return c.cpu.Mode() }

func (c *riscCore) InterruptsEnabled() bool { return c.cpu.InterruptsEnabled() }

func (c *riscCore) DeliverInterrupt(handler, ksp uint32) isa.Event {
	return c.cpu.DeliverInterrupt(handler, ksp)
}

func (c *riscCore) SetSyscallResult(v uint32) { c.cpu.R[3] = v }

func (c *riscCore) SyscallArgs() (uint32, uint32, uint32) {
	return c.cpu.R[3], c.cpu.R[4], c.cpu.R[5]
}

// RISC context: 32 GPRs, PC, LR, CTR, CR, MSR.
func (c *riscCore) CtxWords() int { return 37 }

func (c *riscCore) SaveContext(addr uint32) {
	for i := 0; i < 32; i++ {
		c.mem.RawWrite(addr+uint32(i)*4, 4, c.cpu.R[i])
	}
	c.mem.RawWrite(addr+128, 4, c.cpu.PC)
	c.mem.RawWrite(addr+132, 4, c.cpu.LR)
	c.mem.RawWrite(addr+136, 4, c.cpu.CTR)
	c.mem.RawWrite(addr+140, 4, c.cpu.CR)
	c.mem.RawWrite(addr+144, 4, c.cpu.MSR)
}

func (c *riscCore) RestoreContext(addr uint32) {
	for i := 0; i < 32; i++ {
		c.cpu.R[i] = c.mem.RawRead(addr+uint32(i)*4, 4)
	}
	c.cpu.PC = c.mem.RawRead(addr+128, 4)
	c.cpu.LR = c.mem.RawRead(addr+132, 4)
	c.cpu.CTR = c.mem.RawRead(addr+136, 4)
	c.cpu.CR = c.mem.RawRead(addr+140, 4)
	c.cpu.MSR = c.mem.RawRead(addr+144, 4)
}

func (c *riscCore) InitContext(addr, entry, sp uint32, user bool) {
	for i := 0; i < 37; i++ {
		c.mem.RawWrite(addr+uint32(i)*4, 4, 0)
	}
	c.mem.RawWrite(addr+4, 4, sp) // r1
	c.mem.RawWrite(addr+128, 4, entry)
	msr := uint32(risc.MSRME | risc.MSRIR | risc.MSRDR | risc.MSREE)
	if user {
		msr |= risc.MSRPR
	}
	c.mem.RawWrite(addr+144, 4, msr)
}

// CtxSPOffset: r1 is the stack pointer.
func (c *riscCore) CtxSPOffset() uint32 { return 4 }

// CtxModeUser reads MSR[PR] from the saved context.
func (c *riscCore) CtxModeUser(addr uint32) bool {
	return c.mem.RawRead(addr+144, 4)&risc.MSRPR != 0
}

func (c *riscCore) SetStackBounds(lo, hi uint32) {
	c.cpu.StackLo, c.cpu.StackHi = lo, hi
}

// StackPointerInBounds implements the G4 kernel's exception-entry wrapper:
// it validates the stack pointer against the current 8 KiB kernel stack.
func (c *riscCore) StackPointerInBounds() bool {
	if c.cpu.StackHi == 0 {
		return true
	}
	sp := c.cpu.R[risc.SP]
	return sp > c.cpu.StackLo && sp <= c.cpu.StackHi
}

// CrashDumpPossible: the G4 handler switches to the SPRG2 scratch area, so
// the dump survives stack corruption but not SPRG2 corruption.
func (c *riscCore) CrashDumpPossible() bool {
	sprg2 := c.cpu.SPR[risc.SprSPRG2]
	return c.mem.Check(sprg2, 64, true, false) == nil
}

func (c *riscCore) Clock() *isa.CycleCounter { return &c.cpu.Clk }
func (c *riscCore) Debug() *isa.DebugUnit    { return &c.cpu.Debug }

func (c *riscCore) SetTrace(fn func(pc uint32, cost uint8)) { c.cpu.Trace = fn }

func (c *riscCore) PendingDataBreak() (int, isa.DataAccess, uint32, bool) {
	return c.cpu.PendingDataBreak()
}

func (c *riscCore) SetPredecode(on bool) { c.cpu.SetPredecode(on) }
func (c *riscCore) FlushPredecode()      { c.cpu.FlushPredecode() }
