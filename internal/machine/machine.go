package machine

import (
	"encoding/binary"
	"fmt"

	"kfi/internal/cc"
	"kfi/internal/cisc"
	"kfi/internal/crashnet"
	"kfi/internal/isa"
	"kfi/internal/mem"
	"kfi/internal/risc"
)

// Hypercall numbers: syscall numbers at or above HyperBase are intercepted by
// the monitoring harness (they model the instrumented benchmark reporting to
// the NFTAPE control host, not guest functionality).
const (
	HyperBase = 0xF000
	// HyperDone ends the run: the benchmark completed; arg0 carries its
	// result checksum for fail-silence checking.
	HyperDone = 0xF000
	// HyperLog appends arg0's low byte to the run log.
	HyperLog = 0xF001
	// HyperFail ends the run: the instrumented benchmark detected incorrect
	// behavior itself (a fail-silence violation surfaced at the application).
	HyperFail = 0xF002
)

// Latency model constants (the paper's Figure 3 stages). The G4's exception
// path is costlier than the P4's: its hardware stage is longer and its
// software stage runs the kernel's checking wrapper before the handler —
// which is why in the paper even immediate G4 crashes land above the 3k
// bucket while immediate P4 crashes land below it (Figure 16).
const (
	// StageHardwareCISC/RISC: hardware exception handling ("more than 1000
	// CPU cycles").
	StageHardwareCISC = 1100
	StageHardwareRISC = 2400
	// StageSoftwareCISC/RISC: the software exception handler ("about 150 to
	// 200 instructions"), plus the G4 wrapper.
	StageSoftwareCISC = 320
	StageSoftwareRISC = 800
	// InterruptEntryCost is the vectoring cost for deliverable interrupts.
	InterruptEntryCost = 120
)

// Config describes a bootable guest system. Symbol addresses come from the
// kernel build (internal/kernel).
type Config struct {
	Platform isa.Platform
	Image    *cc.Image
	MemSize  uint32

	TimerPeriod uint64 // cycles between timer interrupts
	Watchdog    uint64 // hardware-watchdog budget per run, in cycles

	// Kernel ABI addresses.
	SyscallStub uint32 // assembly glue: dispatch syscall, then iret/rfi
	TimerStub   uint32 // assembly glue: save volatiles, timer_tick, iret/rfi
	BootEntry   uint32 // kstart: enables interrupts, schedules, never returns
	BootSP      uint32 // boot/idle kernel stack top
	BootStackLo uint32 // boot kernel stack bounds (for the G4 wrapper)
	BootStackHi uint32
	CurrentPtr  uint32 // address of the `current` process pointer
	KStackOff   uint32 // offset of the kernel-stack-top field in a proc
	StackLoOff  uint32 // offset of the stack lower bound field
	StackHiOff  uint32 // offset of the stack upper bound field
	CtxOff      uint32 // offset of the context save area in a proc

	FSBase     uint32 // CISC: base of the FS per-CPU segment
	SPRG2Value uint32 // RISC: exception scratch area expected in SPRG2

	// NoStackWrapper disables the G4 kernel's exception-entry stack-range
	// check (for the ablation bench); it has no effect on CISC, which never
	// has the check.
	NoStackWrapper bool

	// CrashSender, when set, receives a crash packet for every known crash
	// (the remote crash-data collector path).
	CrashSender crashnet.Sender
}

// Outcome classifies how a run ended.
type Outcome int

// Run outcomes.
const (
	// OutCompleted: the benchmark ran to completion (checksum recorded).
	OutCompleted Outcome = iota + 1
	// OutCrashed: a kernel-mode exception ended the run.
	OutCrashed
	// OutHung: the watchdog expired or the system idled with interrupts
	// masked.
	OutHung
	// OutUserFault: a workload process died on a hardware exception.
	OutUserFault
	// OutFailReported: the instrumented benchmark reported bad data.
	OutFailReported
	// OutPaused: the run reached the requested PauseAt cycle and stopped so
	// the injector can act; call Run again to continue.
	OutPaused
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case OutCompleted:
		return "completed"
	case OutCrashed:
		return "crashed"
	case OutHung:
		return "hung"
	case OutUserFault:
		return "user-fault"
	case OutFailReported:
		return "fail-reported"
	case OutPaused:
		return "paused"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// CrashRecord captures a kernel crash.
type CrashRecord struct {
	Cause     isa.CrashCause
	PC        uint32
	FaultAddr uint32
	SP        uint32
	Cycles    uint64 // absolute machine cycles at crash
	// Known reports whether the embedded crash handler managed to dump
	// failure data; unknown crashes land in the paper's "Hang/Unknown
	// Crash" column.
	Known bool
	// FramePtrs holds the top stack words at crash time (the return-address
	// patterns of Figure 7).
	FramePtrs [8]uint32
}

// RunResult is the outcome of one benchmark run.
type RunResult struct {
	Outcome  Outcome
	Checksum uint32
	Crash    *CrashRecord
	Cycles   uint64
	Log      []byte
}

// Machine is one bootable guest system.
type Machine struct {
	cfg  Config
	Mem  *mem.Memory
	core Core

	cpuC *cisc.CPU
	cpuR *risc.CPU

	nextTimer uint64
	deadline  uint64
	crashSeq  uint32

	// PauseAt, when nonzero, makes Run return OutPaused once the cycle
	// counter reaches it (the injector's mid-run trigger). It is cleared on
	// firing and on reboot.
	PauseAt uint64

	// OnInstrBreak and OnDataBreak are the injector's hooks; they run with
	// the machine paused at the event and may mutate memory, registers, and
	// breakpoints before execution resumes.
	OnInstrBreak func(ev isa.Event)
	OnDataBreak  func(ev isa.Event)
}

// New builds a machine around a compiled image. The image sections are
// mapped and loaded; further regions (stacks, user space) are mapped by the
// kernel setup code before Seal.
func New(cfg Config) (*Machine, error) {
	if cfg.Image == nil {
		return nil, fmt.Errorf("machine: config needs an image")
	}
	if cfg.MemSize == 0 {
		cfg.MemSize = 8 << 20
	}
	if cfg.TimerPeriod == 0 {
		cfg.TimerPeriod = 50_000
	}
	if cfg.Watchdog == 0 {
		cfg.Watchdog = 40_000_000
	}
	var order binary.ByteOrder = binary.LittleEndian
	if cfg.Platform == isa.RISC {
		order = binary.BigEndian
	}
	m := mem.New(cfg.MemSize, order)
	if cfg.Platform == isa.RISC {
		// The G4's processor-local bus hangs (machine check) only in an
		// unclaimed window; other wild kernel pointers fault as "kernel
		// access of a bad area". The P4 has no such window: everything
		// wild page-faults.
		m.SetBusWindow(0xF0000000, 0xF8000000)
	}
	im := cfg.Image
	m.Map(im.CodeBase, uint32(len(im.Code)), mem.Present)
	m.Map(im.DataBase, uint32(len(im.Data))+mem.PageSize, mem.Present|mem.Writable)
	if im.BSSSize > 0 {
		m.Map(im.BSSBase, im.BSSSize, mem.Present|mem.Writable)
	}
	if im.HeapSize > 0 {
		m.Map(im.HeapBase, im.HeapSize, mem.Present|mem.Writable)
	}
	copy(m.RawBytes(im.CodeBase, uint32(len(im.Code))), im.Code)
	copy(m.RawBytes(im.DataBase, uint32(len(im.Data))), im.Data)
	m.AddRegion(mem.Region{Name: "text", Kind: mem.KindCode, Start: im.CodeBase, End: im.CodeBase + uint32(len(im.Code))})
	if len(im.Data) > 0 {
		m.AddRegion(mem.Region{Name: "data", Kind: mem.KindData, Start: im.DataBase, End: im.DataBase + uint32(len(im.Data))})
	}
	if im.BSSSize > 0 {
		m.AddRegion(mem.Region{Name: "bss", Kind: mem.KindBSS, Start: im.BSSBase, End: im.BSSBase + im.BSSSize})
	}
	if im.HeapSize > 0 {
		m.AddRegion(mem.Region{Name: "heap", Kind: mem.KindHeap, Start: im.HeapBase, End: im.HeapBase + im.HeapSize})
	}

	mach := &Machine{cfg: cfg, Mem: m}
	switch cfg.Platform {
	case isa.CISC:
		mach.cpuC = cisc.NewCPU(m)
		mach.core = &ciscCore{cpu: mach.cpuC, mem: m}
	case isa.RISC:
		mach.cpuR = risc.NewCPU(m)
		mach.core = &riscCore{cpu: mach.cpuR, mem: m}
	default:
		return nil, fmt.Errorf("machine: unknown platform %v", cfg.Platform)
	}
	mach.resetCPUState()
	return mach, nil
}

// Core returns the platform-generic CPU view.
func (ma *Machine) Core() Core { return ma.core }

// Config returns the machine configuration.
func (ma *Machine) Config() Config { return ma.cfg }

// CISCCPU returns the concrete CISC CPU (nil on RISC machines).
func (ma *Machine) CISCCPU() *cisc.CPU { return ma.cpuC }

// RISCCPU returns the concrete RISC CPU (nil on CISC machines).
func (ma *Machine) RISCCPU() *risc.CPU { return ma.cpuR }

// SysReg is a platform-generic injectable system register.
type SysReg struct {
	Name string
	Bits uint
	Get  func() uint32
	Set  func(uint32)
}

// SystemRegisters returns the platform's injectable system-register file.
func (ma *Machine) SystemRegisters() []SysReg {
	var out []SysReg
	if ma.cpuC != nil {
		for _, r := range cisc.SystemRegisters() {
			r := r
			out = append(out, SysReg{Name: r.Name, Bits: r.Bits,
				Get: func() uint32 { return r.Get(ma.cpuC) },
				Set: func(v uint32) { r.Set(ma.cpuC, v) }})
		}
		return out
	}
	for _, r := range risc.SystemRegisters() {
		r := r
		out = append(out, SysReg{Name: r.Name, Bits: r.Bits,
			Get: func() uint32 { return r.Get(ma.cpuR) },
			Set: func(v uint32) { r.Set(ma.cpuR, v) }})
	}
	return out
}

// Seal snapshots memory as the pristine boot image; Reboot restores it.
func (ma *Machine) Seal() { ma.Mem.Seal() }

func (ma *Machine) resetCPUState() {
	ma.core.Reset()
	ma.core.SetPC(ma.cfg.BootEntry)
	ma.core.SetSP(ma.cfg.BootSP)
	if ma.cpuC != nil {
		ma.cpuC.FSBase = ma.cfg.FSBase
	} else {
		ma.cpuR.SPR[risc.SprSPRG2] = ma.cfg.SPRG2Value
		// Boot-firmware translation state: the page-table base and the
		// kernel BAT mappings the exception path depends on.
		ma.cpuR.SPR[risc.SprSDR1] = bootSDR1
		ma.cpuR.SPR[risc.SprIBAT0U] = bootBAT
		ma.cpuR.SPR[risc.SprDBAT0U] = bootBAT
	}
	ma.core.SetStackBounds(ma.cfg.BootStackLo, ma.cfg.BootStackHi)
	ma.core.Clock().Reset()
	ma.nextTimer = ma.cfg.TimerPeriod
	ma.deadline = ma.cfg.Watchdog
	ma.PauseAt = 0
}

// Reboot restores the sealed memory image and architectural boot state —
// the watchdog-card auto-reboot between injections.
func (ma *Machine) Reboot() {
	ma.Mem.Reboot()
	ma.resetCPUState()
}

// currentKernelSP reads the current process's kernel stack top from the
// guest's `current` pointer.
func (ma *Machine) currentKernelSP() uint32 {
	cur := ma.Mem.RawRead(ma.cfg.CurrentPtr, 4)
	return ma.Mem.RawRead(cur+ma.cfg.KStackOff, 4)
}

// Boot values and sensitivity masks for the G4 translation registers the
// exception path depends on. Flips in the masked bits break the kernel's
// address translation and surface at the next exception; flips in the
// unmasked (reserved / fine-grained) bits pass, which is why only some bits
// of these registers are error-sensitive (paper §5.2).
const (
	bootSDR1 = 0x00FF0000
	sdr1Mask = 0xFFFF0000 // HTABORG: the hashed page table base
	bootBAT  = 0xC0001FFE
	batMask  = 0xFFFE0003 // BEPI block address + Vs/Vp valid bits
)

// interrupt delivers an interrupt through the platform trap glue. It returns
// a crash result if the delivery machinery itself faults.
func (ma *Machine) interrupt(stub uint32) *RunResult {
	ma.core.Clock().Advance(InterruptEntryCost)
	if ma.cpuR != nil {
		// The G4 exception entry saves scratch state through SPRG2. A
		// corrupted SPRG2 makes those stores fault (kernel access of a bad
		// area, or a machine check beyond the bus limit); if the wild
		// pointer happens to hit mapped memory, the entry path continues
		// into it and the OS ends up executing from an essentially random
		// location (paper §5.2).
		// Corrupted translation state (page-table base or kernel BATs)
		// derails the very first translation of the exception path: the
		// kernel reports an access to a bad area at a wild address.
		if got := ma.cpuR.SPR[risc.SprSDR1]; (got^bootSDR1)&sdr1Mask != 0 {
			res := ma.crashResult(isa.Event{Kind: isa.EvException, Cause: isa.CauseBadArea, FaultAddr: got})
			return &res
		}
		if got := ma.cpuR.SPR[risc.SprIBAT0U]; (got^bootBAT)&batMask != 0 {
			res := ma.crashResult(isa.Event{Kind: isa.EvException, Cause: isa.CauseBadArea, FaultAddr: got})
			return &res
		}
		if got := ma.cpuR.SPR[risc.SprDBAT0U]; (got^bootBAT)&batMask != 0 {
			res := ma.crashResult(isa.Event{Kind: isa.EvException, Cause: isa.CauseBadArea, FaultAddr: got})
			return &res
		}
		if got := ma.cpuR.SPR[risc.SprSPRG2]; got != ma.cfg.SPRG2Value {
			if f := ma.Mem.Check(got&^3, 32, true, false); f != nil {
				cause := isa.CauseBadArea
				if f.Kind == mem.FaultBus {
					cause = isa.CauseMachineCheck
				}
				res := ma.crashResult(isa.Event{Kind: isa.EvException, Cause: cause, FaultAddr: got})
				return &res
			}
			ma.core.SetPC(got)
			return nil
		}
	}
	ev := ma.core.DeliverInterrupt(stub, ma.currentKernelSP())
	if ev.Kind == isa.EvException {
		res := ma.crashResult(ev)
		return &res
	}
	if _, _, _, ok := ma.core.PendingDataBreak(); ok && ma.OnDataBreak != nil {
		ma.OnDataBreak(isa.Event{Kind: isa.EvDataBreak, Access: isa.AccessWrite})
	}
	return nil
}

// ctxsw performs the context-switch primitive: save into prev, load from
// next, and refresh the stack bounds used by the G4 wrapper.
func (ma *Machine) ctxsw(prev, next uint32) {
	off := ma.cfg.CtxOff
	ma.core.SaveContext(prev + off)
	ma.core.RestoreContext(next + off)
	lo := ma.Mem.RawRead(next+ma.cfg.StackLoOff, 4)
	hi := ma.Mem.RawRead(next+ma.cfg.StackHiOff, 4)
	ma.core.SetStackBounds(lo, hi)
}

// crashResult classifies a kernel-mode exception, applies the Figure 3
// latency stages, captures the dump, and ships the crash packet.
func (ma *Machine) crashResult(ev isa.Event) RunResult {
	cause := ev.Cause
	// The G4 kernel's exception-entry wrapper: an out-of-range kernel stack
	// pointer is reported as an explicit Stack Overflow. The P4 kernel has
	// no such wrapper, so the same condition surfaces as whatever exception
	// the propagating corruption eventually raises (paper §5.1).
	if !ma.cfg.NoStackWrapper && !ma.core.StackPointerInBounds() {
		cause = isa.CauseStackOverflow
	}
	clk := ma.core.Clock()
	if ma.cfg.Platform == isa.RISC {
		clk.Advance(StageHardwareRISC + StageSoftwareRISC)
	} else {
		clk.Advance(StageHardwareCISC + StageSoftwareCISC)
	}
	rec := &CrashRecord{
		Cause:     cause,
		PC:        ma.core.PC(),
		FaultAddr: ev.FaultAddr,
		SP:        ma.core.SP(),
		Cycles:    clk.Cycles(),
		Known:     ma.core.CrashDumpPossible(),
	}
	sp := rec.SP
	for i := range rec.FramePtrs {
		rec.FramePtrs[i] = ma.Mem.RawRead(sp+uint32(i)*4, 4)
	}
	if rec.Known && ma.cfg.CrashSender != nil {
		ma.crashSeq++
		pkt := crashnet.Packet{
			Seq:       ma.crashSeq,
			Platform:  ma.cfg.Platform,
			Cause:     rec.Cause,
			PC:        rec.PC,
			FaultAddr: rec.FaultAddr,
			SP:        rec.SP,
			Cycles:    clk.Since(),
			FramePtrs: rec.FramePtrs,
		}
		// The send path bypasses the guest filesystem entirely; a failure
		// to deliver degrades the crash to unknown, exactly like a lost
		// dump on the real testbed.
		if err := ma.cfg.CrashSender.Send(pkt); err != nil {
			rec.Known = false
		}
	}
	return RunResult{Outcome: OutCrashed, Crash: rec, Cycles: clk.Cycles()}
}

// Run executes the guest from its current state until the benchmark
// completes, the kernel crashes, a workload process faults, or the watchdog
// expires.
func (ma *Machine) Run() RunResult {
	clk := ma.core.Clock()
	var logBytes []byte
	for {
		if clk.Cycles() >= ma.deadline {
			return RunResult{Outcome: OutHung, Cycles: clk.Cycles(), Log: logBytes}
		}
		if ma.PauseAt > 0 && clk.Cycles() >= ma.PauseAt {
			ma.PauseAt = 0
			return RunResult{Outcome: OutPaused, Cycles: clk.Cycles(), Log: logBytes}
		}
		if clk.Cycles() >= ma.nextTimer {
			if ma.core.InterruptsEnabled() {
				ma.nextTimer = clk.Cycles() + ma.cfg.TimerPeriod
				if res := ma.interrupt(ma.cfg.TimerStub); res != nil {
					res.Log = logBytes
					return *res
				}
			} else {
				ma.nextTimer = clk.Cycles() + 64
			}
		}
		// Run to the nearest deadline/pause/timer horizon in one batched
		// call: the core checks only its clock per instruction, and the
		// horizon conditions above are re-evaluated whenever it returns.
		horizon := ma.deadline
		if ma.PauseAt > 0 && ma.PauseAt < horizon {
			horizon = ma.PauseAt
		}
		if ma.nextTimer < horizon {
			horizon = ma.nextTimer
		}
		ev := ma.core.RunUntil(horizon)
		switch ev.Kind {
		case isa.EvNone:
		case isa.EvSyscall:
			if ev.SysNo >= HyperBase {
				a, _, _ := ma.core.SyscallArgs()
				switch ev.SysNo {
				case HyperDone:
					return RunResult{Outcome: OutCompleted, Checksum: a, Cycles: clk.Cycles(), Log: logBytes}
				case HyperFail:
					return RunResult{Outcome: OutFailReported, Checksum: a, Cycles: clk.Cycles(), Log: logBytes}
				case HyperLog:
					logBytes = append(logBytes, byte(a))
					ma.core.SetSyscallResult(0)
				default:
					ma.core.SetSyscallResult(^uint32(0))
				}
				continue
			}
			if res := ma.interrupt(ma.cfg.SyscallStub); res != nil {
				res.Log = logBytes
				return *res
			}
		case isa.EvHalt:
			if !ma.core.InterruptsEnabled() {
				// Idle with interrupts masked: the system is dead; the
				// hardware watchdog will reboot it.
				return RunResult{Outcome: OutHung, Cycles: clk.Cycles(), Log: logBytes}
			}
			if ma.nextTimer > clk.Cycles() {
				clk.Advance(ma.nextTimer - clk.Cycles())
			}
		case isa.EvCtxSw:
			ma.ctxsw(ev.Prev, ev.Next)
		case isa.EvInstrBreak:
			if ma.OnInstrBreak != nil {
				ma.OnInstrBreak(ev)
			} else {
				ma.core.Debug().Clear(ev.Slot)
			}
		case isa.EvDataBreak:
			if ma.OnDataBreak != nil {
				ma.OnDataBreak(ev)
			} else {
				ma.core.Debug().Clear(ev.Slot)
			}
		case isa.EvException:
			if ma.core.Mode() == isa.UserMode {
				return RunResult{Outcome: OutUserFault, Cycles: clk.Cycles(), Log: logBytes}
			}
			res := ma.crashResult(ev)
			res.Log = logBytes
			return res
		}
	}
}

// CallGuest runs a guest function to completion with interrupts and
// breakpoints inactive — the path used for boot-time initialization and
// kernel profiling. The function must return normally; any event other than
// plain execution is an error.
func (ma *Machine) CallGuest(fn string, args ...uint32) (uint32, error) {
	const sentinel = 0xDEAD0000
	entry := ma.cfg.Image.Sym(fn)
	if ma.cpuC != nil {
		c := ma.cpuC
		for i := len(args) - 1; i >= 0; i-- {
			c.Regs[cisc.ESP] -= 4
			ma.Mem.RawWrite(c.Regs[cisc.ESP], 4, args[i])
		}
		c.Regs[cisc.ESP] -= 4
		ma.Mem.RawWrite(c.Regs[cisc.ESP], 4, sentinel)
		c.EIP = entry
		for steps := 0; steps < 100_000_000; steps++ {
			if c.EIP == sentinel {
				c.Regs[cisc.ESP] += uint32(4 * len(args))
				return c.Regs[cisc.EAX], nil
			}
			if ev := c.Step(); ev.Kind != isa.EvNone {
				return 0, fmt.Errorf("machine: %s: event %+v at eip=0x%x", fn, ev, c.EIP)
			}
		}
		return 0, fmt.Errorf("machine: %s did not return", fn)
	}
	c := ma.cpuR
	for i, v := range args {
		c.R[3+i] = v
	}
	c.LR = sentinel
	c.PC = entry
	for steps := 0; steps < 100_000_000; steps++ {
		if c.PC == sentinel&^3 {
			return c.R[3], nil
		}
		if ev := c.Step(); ev.Kind != isa.EvNone {
			return 0, fmt.Errorf("machine: %s: event %+v at pc=0x%x", fn, ev, c.PC)
		}
	}
	return 0, fmt.Errorf("machine: %s did not return", fn)
}
