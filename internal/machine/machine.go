package machine

import (
	"fmt"

	"kfi/internal/cc"
	"kfi/internal/cisc"
	"kfi/internal/crashnet"
	"kfi/internal/isa"
	"kfi/internal/mem"
	"kfi/internal/platform"
	"kfi/internal/risc"
)

// Hypercall numbers: syscall numbers at or above HyperBase are intercepted by
// the monitoring harness (they model the instrumented benchmark reporting to
// the NFTAPE control host, not guest functionality).
const (
	HyperBase = 0xF000
	// HyperDone ends the run: the benchmark completed; arg0 carries its
	// result checksum for fail-silence checking.
	HyperDone = 0xF000
	// HyperLog appends arg0's low byte to the run log.
	HyperLog = 0xF001
	// HyperFail ends the run: the instrumented benchmark detected incorrect
	// behavior itself (a fail-silence violation surfaced at the application).
	HyperFail = 0xF002
	// HyperDetect ends the run: a hardened guest's software fault detector
	// (kir.DetectHypercall) caught a consistency or signature mismatch; arg0
	// carries the detection-site identifier.
	HyperDetect = 0xF003
)

// InterruptEntryCost is the vectoring cost for deliverable interrupts. The
// crash-path latency stages (the paper's Figure 3) are per-platform and live
// in each platform's Descriptor.CrashStages.
const InterruptEntryCost = 120

// Config describes a bootable guest system. Symbol addresses come from the
// kernel build (internal/kernel).
type Config struct {
	Platform isa.Platform
	Image    *cc.Image
	MemSize  uint32

	TimerPeriod uint64 // cycles between timer interrupts
	Watchdog    uint64 // hardware-watchdog budget per run, in cycles

	// Kernel ABI addresses.
	SyscallStub uint32 // assembly glue: dispatch syscall, then iret/rfi
	TimerStub   uint32 // assembly glue: save volatiles, timer_tick, iret/rfi
	BootEntry   uint32 // kstart: enables interrupts, schedules, never returns
	BootSP      uint32 // boot/idle kernel stack top
	BootStackLo uint32 // boot kernel stack bounds (for the G4 wrapper)
	BootStackHi uint32
	CurrentPtr  uint32 // address of the `current` process pointer
	KStackOff   uint32 // offset of the kernel-stack-top field in a proc
	StackLoOff  uint32 // offset of the stack lower bound field
	StackHiOff  uint32 // offset of the stack upper bound field
	CtxOff      uint32 // offset of the context save area in a proc

	FSBase     uint32 // CISC: base of the FS per-CPU segment
	SPRG2Value uint32 // RISC: exception scratch area expected in SPRG2

	// NoStackWrapper disables the G4 kernel's exception-entry stack-range
	// check (for the ablation bench); it has no effect on CISC, which never
	// has the check.
	NoStackWrapper bool

	// CrashSender, when set, receives a crash packet for every known crash
	// (the remote crash-data collector path).
	CrashSender crashnet.Sender
}

// Outcome classifies how a run ended.
type Outcome int

// Run outcomes.
const (
	// OutCompleted: the benchmark ran to completion (checksum recorded).
	OutCompleted Outcome = iota + 1
	// OutCrashed: a kernel-mode exception ended the run.
	OutCrashed
	// OutHung: the watchdog expired or the system idled with interrupts
	// masked.
	OutHung
	// OutUserFault: a workload process died on a hardware exception.
	OutUserFault
	// OutFailReported: the instrumented benchmark reported bad data.
	OutFailReported
	// OutPaused: the run reached the requested PauseAt cycle and stopped so
	// the injector can act; call Run again to continue.
	OutPaused
	// OutDetected: a hardened guest's software fault detector caught the
	// error and halted cleanly (Checksum carries the detection site).
	// Appended after OutPaused so earlier encodings stay stable.
	OutDetected
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case OutCompleted:
		return "completed"
	case OutCrashed:
		return "crashed"
	case OutHung:
		return "hung"
	case OutUserFault:
		return "user-fault"
	case OutFailReported:
		return "fail-reported"
	case OutPaused:
		return "paused"
	case OutDetected:
		return "detected"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// CrashRecord captures a kernel crash.
type CrashRecord struct {
	Cause     isa.CrashCause
	PC        uint32
	FaultAddr uint32
	SP        uint32
	Cycles    uint64 // absolute machine cycles at crash
	// Known reports whether the embedded crash handler managed to dump
	// failure data; unknown crashes land in the paper's "Hang/Unknown
	// Crash" column.
	Known bool
	// FramePtrs holds the top stack words at crash time (the return-address
	// patterns of Figure 7).
	FramePtrs [8]uint32
}

// RunResult is the outcome of one benchmark run.
type RunResult struct {
	Outcome  Outcome
	Checksum uint32
	Crash    *CrashRecord
	Cycles   uint64
	Log      []byte
}

// Machine is one bootable guest system.
type Machine struct {
	cfg    Config
	Mem    *mem.Memory
	desc   platform.Descriptor
	core   Core
	engine platform.ExecEngine

	nextTimer uint64
	deadline  uint64
	crashSeq  uint32

	// PauseAt, when nonzero, makes Run return OutPaused once the cycle
	// counter reaches it (the injector's mid-run trigger). It is cleared on
	// firing and on reboot.
	PauseAt uint64

	// OnInstrBreak and OnDataBreak are the injector's hooks; they run with
	// the machine paused at the event and may mutate memory, registers, and
	// breakpoints before execution resumes.
	OnInstrBreak func(ev isa.Event)
	OnDataBreak  func(ev isa.Event)
}

// New builds a machine around a compiled image. The image sections are
// mapped and loaded; further regions (stacks, user space) are mapped by the
// kernel setup code before Seal.
func New(cfg Config) (*Machine, error) {
	if cfg.Image == nil {
		return nil, fmt.Errorf("machine: config needs an image")
	}
	desc, ok := platform.Find(cfg.Platform)
	if !ok {
		return nil, fmt.Errorf("machine: unknown platform %v", cfg.Platform)
	}
	if cfg.MemSize == 0 {
		cfg.MemSize = 8 << 20
	}
	if cfg.TimerPeriod == 0 {
		cfg.TimerPeriod = 50_000
	}
	if cfg.Watchdog == 0 {
		cfg.Watchdog = 40_000_000
	}
	m := mem.New(cfg.MemSize, isa.ByteOrder(cfg.Platform))
	if lo, hi, ok := desc.BusWindow(); ok {
		m.SetBusWindow(lo, hi)
	}
	im := cfg.Image
	m.Map(im.CodeBase, uint32(len(im.Code)), mem.Present)
	m.Map(im.DataBase, uint32(len(im.Data))+mem.PageSize, mem.Present|mem.Writable)
	if im.BSSSize > 0 {
		m.Map(im.BSSBase, im.BSSSize, mem.Present|mem.Writable)
	}
	if im.HeapSize > 0 {
		m.Map(im.HeapBase, im.HeapSize, mem.Present|mem.Writable)
	}
	copy(m.RawBytes(im.CodeBase, uint32(len(im.Code))), im.Code)
	copy(m.RawBytes(im.DataBase, uint32(len(im.Data))), im.Data)
	m.AddRegion(mem.Region{Name: "text", Kind: mem.KindCode, Start: im.CodeBase, End: im.CodeBase + uint32(len(im.Code))})
	if len(im.Data) > 0 {
		m.AddRegion(mem.Region{Name: "data", Kind: mem.KindData, Start: im.DataBase, End: im.DataBase + uint32(len(im.Data))})
	}
	if im.BSSSize > 0 {
		m.AddRegion(mem.Region{Name: "bss", Kind: mem.KindBSS, Start: im.BSSBase, End: im.BSSBase + im.BSSSize})
	}
	if im.HeapSize > 0 {
		m.AddRegion(mem.Region{Name: "heap", Kind: mem.KindHeap, Start: im.HeapBase, End: im.HeapBase + im.HeapSize})
	}

	mach := &Machine{cfg: cfg, Mem: m, desc: desc}
	mach.core = desc.NewCore(m)
	eng, err := desc.NewEngine(platform.DefaultEngine(desc), mach.core)
	if err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	mach.engine = eng
	mach.resetCPUState()
	return mach, nil
}

// Core returns the platform-generic CPU view.
func (ma *Machine) Core() Core { return ma.core }

// Engine returns the active execution engine.
func (ma *Machine) Engine() platform.ExecEngine { return ma.engine }

// EngineKind returns the active engine's kind.
func (ma *Machine) EngineKind() platform.EngineKind { return ma.engine.Kind() }

// SetEngine replaces the execution engine. The zero kind selects the
// platform default. All engines are observationally equivalent, so switching
// engines never changes run outcomes — only throughput.
func (ma *Machine) SetEngine(kind platform.EngineKind) error {
	if kind == 0 {
		kind = platform.DefaultEngine(ma.desc)
	}
	if kind == ma.engine.Kind() {
		return nil
	}
	if !platform.SupportsEngine(ma.desc, kind) {
		return fmt.Errorf("machine: platform %v does not support engine %v", ma.cfg.Platform, kind)
	}
	eng, err := ma.desc.NewEngine(kind, ma.core)
	if err != nil {
		return fmt.Errorf("machine: %w", err)
	}
	ma.engine = eng
	return nil
}

// Config returns the machine configuration.
func (ma *Machine) Config() Config { return ma.cfg }

// Descriptor returns the platform descriptor the machine was built from.
func (ma *Machine) Descriptor() platform.Descriptor { return ma.desc }

// CISCCPU returns the concrete CISC CPU (nil on other platforms).
func (ma *Machine) CISCCPU() *cisc.CPU { return cisc.CPUOf(ma.core) }

// RISCCPU returns the concrete RISC CPU (nil on other platforms).
func (ma *Machine) RISCCPU() *risc.CPU { return risc.CPUOf(ma.core) }

// SystemRegisters returns the platform's injectable system-register file.
func (ma *Machine) SystemRegisters() []SysReg { return ma.core.SystemRegisters() }

// Seal snapshots memory as the pristine boot image; Reboot restores it.
func (ma *Machine) Seal() { ma.Mem.Seal() }

func (ma *Machine) resetCPUState() {
	ma.core.Reset()
	ma.core.SetPC(ma.cfg.BootEntry)
	ma.core.SetSP(ma.cfg.BootSP)
	ma.core.InstallBootState(platform.BootState{
		FSBase: ma.cfg.FSBase,
		SPRG2:  ma.cfg.SPRG2Value,
	})
	ma.core.SetStackBounds(ma.cfg.BootStackLo, ma.cfg.BootStackHi)
	ma.core.Clock().Reset()
	ma.nextTimer = ma.cfg.TimerPeriod
	ma.deadline = ma.cfg.Watchdog
	ma.PauseAt = 0
}

// Reboot restores the sealed memory image and architectural boot state —
// the watchdog-card auto-reboot between injections.
func (ma *Machine) Reboot() {
	ma.Mem.Reboot()
	ma.resetCPUState()
}

// currentKernelSP reads the current process's kernel stack top from the
// guest's `current` pointer.
func (ma *Machine) currentKernelSP() uint32 {
	cur := ma.Mem.RawRead(ma.cfg.CurrentPtr, 4)
	return ma.Mem.RawRead(cur+ma.cfg.KStackOff, 4)
}

// interrupt delivers an interrupt through the platform trap glue. It returns
// a crash result if the delivery machinery itself faults.
func (ma *Machine) interrupt(stub uint32) *RunResult {
	ma.core.Clock().Advance(InterruptEntryCost)
	// Let the platform vet the architectural state its exception entry path
	// depends on (scratch pointers, translation registers); a corrupted
	// delivery path crashes or hijacks execution before the handler runs
	// (paper §5.2).
	if d := ma.core.VetDelivery(); d.Crash {
		res := ma.crashResult(d.Event)
		return &res
	} else if d.Hijack {
		ma.core.SetPC(d.HijackPC)
		return nil
	}
	ev := ma.core.DeliverInterrupt(stub, ma.currentKernelSP())
	if ev.Kind == isa.EvException {
		res := ma.crashResult(ev)
		return &res
	}
	if _, _, _, ok := ma.core.PendingDataBreak(); ok && ma.OnDataBreak != nil {
		ma.OnDataBreak(isa.Event{Kind: isa.EvDataBreak, Access: isa.AccessWrite})
	}
	return nil
}

// ctxsw performs the context-switch primitive: save into prev, load from
// next, and refresh the stack bounds used by the G4 wrapper.
func (ma *Machine) ctxsw(prev, next uint32) {
	off := ma.cfg.CtxOff
	ma.core.SaveContext(prev + off)
	ma.core.RestoreContext(next + off)
	lo := ma.Mem.RawRead(next+ma.cfg.StackLoOff, 4)
	hi := ma.Mem.RawRead(next+ma.cfg.StackHiOff, 4)
	ma.core.SetStackBounds(lo, hi)
}

// crashResult classifies a kernel-mode exception, applies the Figure 3
// latency stages, captures the dump, and ships the crash packet.
func (ma *Machine) crashResult(ev isa.Event) RunResult {
	cause := ev.Cause
	// The G4 kernel's exception-entry wrapper: an out-of-range kernel stack
	// pointer is reported as an explicit Stack Overflow. The P4 kernel has
	// no such wrapper, so the same condition surfaces as whatever exception
	// the propagating corruption eventually raises (paper §5.1).
	if !ma.cfg.NoStackWrapper && !ma.core.StackPointerInBounds() {
		cause = isa.CauseStackOverflow
	}
	clk := ma.core.Clock()
	hw, sw := ma.desc.CrashStages()
	clk.Advance(hw + sw)
	rec := &CrashRecord{
		Cause:     cause,
		PC:        ma.core.PC(),
		FaultAddr: ev.FaultAddr,
		SP:        ma.core.SP(),
		Cycles:    clk.Cycles(),
		Known:     ma.core.CrashDumpPossible(),
	}
	sp := rec.SP
	for i := range rec.FramePtrs {
		rec.FramePtrs[i] = ma.Mem.RawRead(sp+uint32(i)*4, 4)
	}
	if rec.Known && ma.cfg.CrashSender != nil {
		ma.crashSeq++
		pkt := crashnet.Packet{
			Seq:       ma.crashSeq,
			Platform:  ma.cfg.Platform,
			Cause:     rec.Cause,
			PC:        rec.PC,
			FaultAddr: rec.FaultAddr,
			SP:        rec.SP,
			Cycles:    clk.Since(),
			FramePtrs: rec.FramePtrs,
		}
		// The send path bypasses the guest filesystem entirely; a failure
		// to deliver degrades the crash to unknown, exactly like a lost
		// dump on the real testbed.
		if err := ma.cfg.CrashSender.Send(pkt); err != nil {
			rec.Known = false
		}
	}
	return RunResult{Outcome: OutCrashed, Crash: rec, Cycles: clk.Cycles()}
}

// Run executes the guest from its current state until the benchmark
// completes, the kernel crashes, a workload process faults, or the watchdog
// expires.
func (ma *Machine) Run() RunResult {
	clk := ma.core.Clock()
	var logBytes []byte
	for {
		if clk.Cycles() >= ma.deadline {
			return RunResult{Outcome: OutHung, Cycles: clk.Cycles(), Log: logBytes}
		}
		if ma.PauseAt > 0 && clk.Cycles() >= ma.PauseAt {
			ma.PauseAt = 0
			return RunResult{Outcome: OutPaused, Cycles: clk.Cycles(), Log: logBytes}
		}
		if clk.Cycles() >= ma.nextTimer {
			if ma.core.InterruptsEnabled() {
				ma.nextTimer = clk.Cycles() + ma.cfg.TimerPeriod
				if res := ma.interrupt(ma.cfg.TimerStub); res != nil {
					res.Log = logBytes
					return *res
				}
			} else {
				ma.nextTimer = clk.Cycles() + 64
			}
		}
		// Run to the nearest deadline/pause/timer horizon in one batched
		// call: the core checks only its clock per instruction, and the
		// horizon conditions above are re-evaluated whenever it returns.
		horizon := ma.deadline
		if ma.PauseAt > 0 && ma.PauseAt < horizon {
			horizon = ma.PauseAt
		}
		if ma.nextTimer < horizon {
			horizon = ma.nextTimer
		}
		ev := ma.engine.RunUntil(horizon)
		switch ev.Kind {
		case isa.EvNone:
		case isa.EvSyscall:
			if ev.SysNo >= HyperBase {
				a, _, _ := ma.core.SyscallArgs()
				switch ev.SysNo {
				case HyperDone:
					return RunResult{Outcome: OutCompleted, Checksum: a, Cycles: clk.Cycles(), Log: logBytes}
				case HyperFail:
					return RunResult{Outcome: OutFailReported, Checksum: a, Cycles: clk.Cycles(), Log: logBytes}
				case HyperDetect:
					return RunResult{Outcome: OutDetected, Checksum: a, Cycles: clk.Cycles(), Log: logBytes}
				case HyperLog:
					logBytes = append(logBytes, byte(a))
					ma.core.SetSyscallResult(0)
				default:
					ma.core.SetSyscallResult(^uint32(0))
				}
				continue
			}
			if res := ma.interrupt(ma.cfg.SyscallStub); res != nil {
				res.Log = logBytes
				return *res
			}
		case isa.EvHalt:
			if !ma.core.InterruptsEnabled() {
				// Idle with interrupts masked: the system is dead; the
				// hardware watchdog will reboot it.
				return RunResult{Outcome: OutHung, Cycles: clk.Cycles(), Log: logBytes}
			}
			if ma.nextTimer > clk.Cycles() {
				clk.Advance(ma.nextTimer - clk.Cycles())
			}
		case isa.EvCtxSw:
			ma.ctxsw(ev.Prev, ev.Next)
		case isa.EvInstrBreak:
			if ma.OnInstrBreak != nil {
				ma.OnInstrBreak(ev)
			} else {
				ma.core.Debug().Clear(ev.Slot)
			}
		case isa.EvDataBreak:
			if ma.OnDataBreak != nil {
				ma.OnDataBreak(ev)
			} else {
				ma.core.Debug().Clear(ev.Slot)
			}
		case isa.EvException:
			if ma.core.Mode() == isa.UserMode {
				return RunResult{Outcome: OutUserFault, Cycles: clk.Cycles(), Log: logBytes}
			}
			res := ma.crashResult(ev)
			res.Log = logBytes
			return res
		}
	}
}

// CallGuest runs a guest function to completion with interrupts and
// breakpoints inactive — the path used for boot-time initialization and
// kernel profiling. The function must return normally; any event other than
// plain execution is an error.
func (ma *Machine) CallGuest(fn string, args ...uint32) (uint32, error) {
	entry := ma.cfg.Image.Sym(fn)
	ma.core.BeginCall(entry, args)
	clk := ma.core.Clock()
	for steps := 0; steps < 100_000_000; steps++ {
		if ret, done := ma.core.CallDone(len(args)); done {
			return ret, nil
		}
		// Every instruction costs at least one cycle, so RunUntil(clock+1)
		// executes exactly one instruction on every engine.
		if ev := ma.engine.RunUntil(clk.Cycles() + 1); ev.Kind != isa.EvNone {
			return 0, fmt.Errorf("machine: %s: event %+v at pc=0x%x", fn, ev, ma.core.PC())
		}
	}
	return 0, fmt.Errorf("machine: %s did not return", fn)
}
