package machine_test

import (
	"strings"
	"testing"

	"kfi/internal/cc"
	"kfi/internal/crashnet"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/kir"
	"kfi/internal/machine"
	"kfi/internal/workload"
)

func buildSystem(t *testing.T, p isa.Platform, opts kernel.Options) *kernel.System {
	t.Helper()
	uimg, err := cc.Compile(workload.Program(1), p, kernel.UserBases)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := kernel.BuildSystem(p, uimg, workload.StandardProcs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPauseAtAndResume(t *testing.T) {
	sys := buildSystem(t, isa.CISC, kernel.Options{})
	clean := sys.Run()
	if clean.Outcome != machine.OutCompleted {
		t.Fatalf("clean run: %v", clean.Outcome)
	}

	m := sys.Machine
	m.Reboot()
	m.PauseAt = 500_000
	r1 := m.Run()
	if r1.Outcome != machine.OutPaused {
		t.Fatalf("first leg: %v", r1.Outcome)
	}
	if r1.Cycles < 500_000 {
		t.Errorf("paused at %d cycles, want >= 500000", r1.Cycles)
	}
	r2 := m.Run()
	if r2.Outcome != machine.OutCompleted {
		t.Fatalf("resume: %v", r2.Outcome)
	}
	if r2.Checksum != clean.Checksum {
		t.Errorf("resumed run checksum 0x%x, want 0x%x", r2.Checksum, clean.Checksum)
	}
	if r2.Cycles != clean.Cycles {
		t.Errorf("resumed run cycles %d, want %d (pause must not perturb)", r2.Cycles, clean.Cycles)
	}
}

func TestPauseBeyondCompletion(t *testing.T) {
	sys := buildSystem(t, isa.RISC, kernel.Options{})
	m := sys.Machine
	m.Reboot()
	m.PauseAt = 1 << 40
	res := m.Run()
	if res.Outcome != machine.OutCompleted {
		t.Errorf("outcome = %v, want completed (pause never reached)", res.Outcome)
	}
}

func TestWatchdogReportsHang(t *testing.T) {
	sys := buildSystem(t, isa.CISC, kernel.Options{Watchdog: 100_000})
	res := sys.Run()
	if res.Outcome != machine.OutHung {
		t.Fatalf("outcome = %v, want hung (100k-cycle watchdog)", res.Outcome)
	}
	if res.Cycles < 100_000 {
		t.Errorf("hang reported at %d cycles", res.Cycles)
	}
}

func TestRebootRestoresState(t *testing.T) {
	sys := buildSystem(t, isa.RISC, kernel.Options{})
	golden := sys.Run()
	// Scribble over kernel data and registers, then reboot.
	m := sys.Machine
	m.Mem.FlipBit(sys.KernelImage.Sym("jiffies"), 3)
	m.Mem.FlipBit(sys.KernelImage.Sym("kernel_flag"), 5)
	m.RISCCPU().SPR[274] ^= 0xFFFF
	res := sys.Run()
	if res.Outcome != machine.OutCompleted || res.Checksum != golden.Checksum {
		t.Errorf("post-scribble run = %v checksum 0x%x, want clean 0x%x",
			res.Outcome, res.Checksum, golden.Checksum)
	}
}

func TestCrashPacketDelivery(t *testing.T) {
	ch := crashnet.NewChannel()
	sys := buildSystem(t, isa.RISC, kernel.Options{CrashSender: ch})
	// Corrupt the journal's running-transaction pointer so kjournald
	// crashes deterministically.
	sys.Machine.Reboot()
	sys.Machine.Mem.FlipBit(sys.KernelImage.Sym("journal"), 7)
	res := sys.Machine.Run()
	if res.Outcome != machine.OutCrashed {
		t.Fatalf("outcome = %v, want crash", res.Outcome)
	}
	pkt, ok := ch.Recv()
	if !ok {
		t.Fatal("no crash packet delivered to the remote collector")
	}
	if pkt.Cause != res.Crash.Cause || pkt.PC != res.Crash.PC {
		t.Errorf("packet %+v does not match crash %+v", pkt, res.Crash)
	}
	if pkt.Platform != isa.RISC {
		t.Errorf("packet platform = %v", pkt.Platform)
	}
}

// TestHypercalls builds a minimal guest whose boot code logs two bytes and
// reports completion — exercising the harness hypercall surface directly.
func TestHypercalls(t *testing.T) {
	pb := kir.NewProgram()
	fb := pb.Func("kstart", 0, false)
	fb.Block("entry")
	h := fb.Const(int32('h'))
	logNo := fb.Const(machine.HyperLog)
	fb.Syscall(logNo, h)
	i := fb.Const(int32('i'))
	fb.Syscall(logNo, i)
	done := fb.Const(machine.HyperDone)
	cs := fb.Const(1234)
	fb.Syscall(done, cs)
	fb.Bug()
	fb.Ret(0)

	for _, p := range []isa.Platform{isa.CISC, isa.RISC} {
		im, err := cc.Compile(pb.Program(), p, cc.Bases{Code: 0x10000, Data: 0x20000, BSS: 0x30000})
		if err != nil {
			t.Fatal(err)
		}
		m, err := machine.New(machine.Config{
			Platform:  p,
			Image:     im,
			MemSize:   1 << 20,
			BootEntry: im.Sym("kstart"),
			BootSP:    0x40000,
		})
		if err != nil {
			t.Fatal(err)
		}
		m.Mem.Map(0x40000-0x1000, 0x1000, 2|1) // stack: present|writable
		m.Seal()
		m.Reboot()
		res := m.Run()
		if res.Outcome != machine.OutCompleted || res.Checksum != 1234 {
			t.Fatalf("[%v] outcome = %v checksum %d", p, res.Outcome, res.Checksum)
		}
		if string(res.Log) != "hi" {
			t.Errorf("[%v] log = %q, want %q", p, res.Log, "hi")
		}
	}
}

func TestSystemRegistersPerPlatform(t *testing.T) {
	p4 := buildSystem(t, isa.CISC, kernel.Options{})
	g4 := buildSystem(t, isa.RISC, kernel.Options{})
	if n := len(p4.Machine.SystemRegisters()); n < 18 || n > 22 {
		t.Errorf("P4 register file = %d, want about 20", n)
	}
	if n := len(g4.Machine.SystemRegisters()); n != 99 {
		t.Errorf("G4 register file = %d, want 99", n)
	}
	// The generic accessors must reach the concrete CPUs.
	regs := g4.Machine.SystemRegisters()
	for _, r := range regs {
		if r.Name == "SPRG2" {
			r.Set(0xABCD)
			if g4.Machine.RISCCPU().SPR[274] != 0xABCD {
				t.Error("generic Set did not reach SPRG2")
			}
		}
	}
}

func TestOutcomeStrings(t *testing.T) {
	outcomes := map[machine.Outcome]string{
		machine.OutCompleted:    "completed",
		machine.OutCrashed:      "crashed",
		machine.OutHung:         "hung",
		machine.OutUserFault:    "user-fault",
		machine.OutFailReported: "fail-reported",
		machine.OutPaused:       "paused",
	}
	for o, want := range outcomes {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), want)
		}
	}
}

func TestCallGuestArithmetic(t *testing.T) {
	sys := buildSystem(t, isa.CISC, kernel.Options{})
	// csum_partial over the version banner must be callable host-side.
	banner := sys.KernelImage.Sym("version_banner")
	v, err := sys.Machine.CallGuest("csum_partial", banner, 16)
	if err != nil {
		t.Fatal(err)
	}
	if v == 0 || v == 1 {
		t.Errorf("checksum = %d, want a mixed hash", v)
	}
	// Deterministic.
	v2, err := sys.Machine.CallGuest("csum_partial", banner, 16)
	if err != nil {
		t.Fatal(err)
	}
	if v != v2 {
		t.Errorf("CallGuest not deterministic: %d vs %d", v, v2)
	}
}

func TestTraceRun(t *testing.T) {
	sys := buildSystem(t, isa.CISC, kernel.Options{})
	sys.Machine.Reboot()
	steps, res := sys.Machine.TraceRun(20)
	if len(steps) != 20 {
		t.Fatalf("captured %d steps, want 20", len(steps))
	}
	// The boot sequence starts in kstart: a frame push then sti/hlt.
	if steps[0].Disasm != "push %ebp" {
		t.Errorf("first instruction %q, want the kstart prologue", steps[0].Disasm)
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].Cycles < steps[i-1].Cycles {
			t.Errorf("cycle counter went backwards at step %d", i)
		}
	}
	if res.Outcome != machine.OutPaused && res.Outcome != machine.OutCompleted {
		t.Errorf("trace run ended with %v", res.Outcome)
	}
	var buf strings.Builder
	if err := machine.WriteTrace(&buf, steps); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "push %ebp") {
		t.Error("WriteTrace output missing disassembly")
	}
}
