package machine

import (
	"encoding/binary"
	"testing"

	"kfi/internal/cisc"
	"kfi/internal/isa"
	"kfi/internal/mem"
	"kfi/internal/platform"
	"kfi/internal/risc"
)

func newCores() (Core, *mem.Memory, Core, *mem.Memory) {
	mc := mem.New(1<<20, binary.LittleEndian)
	mc.Map(0x1000, 0x10000, mem.Present|mem.Writable)
	cC := platform.MustGet(isa.CISC).NewCore(mc)

	mr := mem.New(1<<20, binary.BigEndian)
	mr.Map(0x1000, 0x10000, mem.Present|mem.Writable)
	cR := platform.MustGet(isa.RISC).NewCore(mr)
	return cC, mc, cR, mr
}

func TestContextSaveRestoreRoundTrip(t *testing.T) {
	cC, _, cR, _ := newCores()
	for _, core := range []Core{cC, cR} {
		core.SetPC(0x1234)
		core.SetSP(0x8000)
		ctx := uint32(0x2000)
		core.SaveContext(ctx)
		core.SetPC(0)
		core.SetSP(0)
		core.RestoreContext(ctx)
		if core.PC() != 0x1234 || core.SP() != 0x8000 {
			t.Errorf("round trip lost state: pc=0x%x sp=0x%x", core.PC(), core.SP())
		}
	}
}

func TestInitContextModes(t *testing.T) {
	cC, _, cR, _ := newCores()
	for _, core := range []Core{cC, cR} {
		ctx := uint32(0x3000)
		core.InitContext(ctx, 0x5000, 0x7000, true)
		if !core.CtxModeUser(ctx) {
			t.Error("user context not marked user")
		}
		core.RestoreContext(ctx)
		if core.Mode() != isa.UserMode {
			t.Errorf("restored mode = %v, want user", core.Mode())
		}
		if core.PC() != 0x5000 || core.SP() != 0x7000 {
			t.Errorf("restored entry/sp = 0x%x/0x%x", core.PC(), core.SP())
		}
		if !core.InterruptsEnabled() {
			t.Error("fresh context must start with interrupts enabled")
		}

		core.InitContext(ctx, 0x5000, 0x7000, false)
		if core.CtxModeUser(ctx) {
			t.Error("kernel context marked user")
		}
	}
}

func TestCtxSPOffsetConsistent(t *testing.T) {
	cC, mc, cR, mr := newCores()
	for _, tc := range []struct {
		core Core
		mem  *mem.Memory
	}{{cC, mc}, {cR, mr}} {
		ctx := uint32(0x4000)
		tc.core.SetSP(0xBEEF0)
		tc.core.SaveContext(ctx)
		got := tc.mem.RawRead(ctx+tc.core.CtxSPOffset(), 4)
		if got != 0xBEEF0 {
			t.Errorf("CtxSPOffset does not point at the saved SP: 0x%x", got)
		}
	}
}

func TestStackBoundsBehavior(t *testing.T) {
	cC, _, cR, _ := newCores()
	// CISC: no wrapper — always in bounds.
	cC.SetStackBounds(0x8000, 0x9000)
	cC.SetSP(0x100)
	if !cC.StackPointerInBounds() {
		t.Error("CISC must never report out-of-bounds (no wrapper)")
	}
	// RISC: the wrapper check.
	cR.SetStackBounds(0x8000, 0x9000)
	cR.SetSP(0x8800)
	if !cR.StackPointerInBounds() {
		t.Error("in-range SP reported out of bounds")
	}
	cR.SetSP(0x100)
	if cR.StackPointerInBounds() {
		t.Error("out-of-range SP not detected")
	}
	cR.SetStackBounds(0, 0)
	if !cR.StackPointerInBounds() {
		t.Error("disabled bounds must pass")
	}
}

func TestCrashDumpPossible(t *testing.T) {
	cC, _, cR, _ := newCores()
	// CISC: dump needs a writable stack.
	cC.SetSP(0x8000)
	if !cC.CrashDumpPossible() {
		t.Error("healthy ESP should allow a dump")
	}
	cC.SetSP(0x100) // NULL page
	if cC.CrashDumpPossible() {
		t.Error("unmapped ESP should defeat the P4 dump")
	}
	// RISC: dump goes through SPRG2.
	rcpu := risc.CPUOf(cR)
	rcpu.SPR[risc.SprSPRG2] = 0x2000
	if !cR.CrashDumpPossible() {
		t.Error("healthy SPRG2 should allow a dump")
	}
	rcpu.SPR[risc.SprSPRG2] = 0xFFF0_0000
	if cR.CrashDumpPossible() {
		t.Error("wild SPRG2 should defeat the G4 dump")
	}
}

func TestSyscallArgConventions(t *testing.T) {
	cC, _, cR, _ := newCores()
	ccpu := cisc.CPUOf(cC)
	ccpu.Regs[cisc.EBX], ccpu.Regs[cisc.ECX], ccpu.Regs[cisc.EDX] = 1, 2, 3
	if a, b, c := cC.SyscallArgs(); a != 1 || b != 2 || c != 3 {
		t.Errorf("CISC args = %d,%d,%d", a, b, c)
	}
	cC.SetSyscallResult(99)
	if ccpu.Regs[cisc.EAX] != 99 {
		t.Error("CISC result not in EAX")
	}

	rcpu := risc.CPUOf(cR)
	rcpu.R[3], rcpu.R[4], rcpu.R[5] = 7, 8, 9
	if a, b, c := cR.SyscallArgs(); a != 7 || b != 8 || c != 9 {
		t.Errorf("RISC args = %d,%d,%d", a, b, c)
	}
	cR.SetSyscallResult(42)
	if rcpu.R[3] != 42 {
		t.Error("RISC result not in r3")
	}
}
