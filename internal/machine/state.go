package machine

import (
	"fmt"

	"kfi/internal/isa"
	"kfi/internal/platform"
)

// State is the machine-level half of a checkpoint: the platform CPU state
// plus the timer, watchdog, and pause scheduling that live in the machine
// run loop. Memory is captured separately (the snapshot layer pairs a State
// with a RAM image and a mem baseline).
//
// Deliberately excluded:
//   - the injector hooks (OnInstrBreak/OnDataBreak) and the trace callback —
//     they are host-side instrumentation the caller re-arms per run;
//   - the crash-packet sequence number — it is host-side telemetry and stays
//     monotonic across restores, exactly as it does across reboots.
type State struct {
	Platform isa.Platform

	// CPU is the platform-owned CPU checkpoint (serialized through the
	// platform snapshot codec).
	CPU platform.CPUState

	NextTimer uint64
	Deadline  uint64
	PauseAt   uint64
}

// SaveState captures the machine (CPU + run-loop scheduling) for a
// checkpoint.
func (ma *Machine) SaveState() State {
	return State{
		Platform:  ma.cfg.Platform,
		CPU:       ma.core.SaveCPUState(),
		NextTimer: ma.nextTimer,
		Deadline:  ma.deadline,
		PauseAt:   ma.PauseAt,
	}
}

// RestoreState reapplies a captured machine state. It fails if the state was
// captured on a different platform.
func (ma *Machine) RestoreState(s *State) error {
	if s.Platform != ma.cfg.Platform {
		return fmt.Errorf("machine: restoring %v state onto a %v machine", s.Platform, ma.cfg.Platform)
	}
	if s.CPU == nil {
		return fmt.Errorf("machine: state carries no CPU image for %v", ma.cfg.Platform)
	}
	if err := ma.core.RestoreCPUState(s.CPU); err != nil {
		return err
	}
	ma.nextTimer = s.NextTimer
	ma.deadline = s.Deadline
	ma.PauseAt = s.PauseAt
	return nil
}
