package staticsense

import (
	"errors"
	"fmt"

	"kfi/internal/cc"
	"kfi/internal/cisc"
)

// ciscAlwaysLive are registers the analyzer never allows in a dead set:
// interrupt delivery pushes frames through ESP at arbitrary instruction
// boundaries, and EBP anchors the frame chain crash diagnosis walks, so
// neither is ever provably dead from the linear instruction stream alone.
const ciscAlwaysLive = regSet(1<<cisc.ESP | 1<<cisc.EBP)

// ciscClassifier owns the variable-length decode tables for one image.
type ciscClassifier struct {
	img    *cc.Image
	instrs map[uint32]cisc.Inst
	// directTargets holds every direct branch/call target in the image: an
	// inert prediction additionally requires that no such target lands
	// strictly inside the flipped instruction, where the corrupted byte
	// would be reinterpreted mid-stream.
	directTargets map[uint32]bool
}

func newCISCClassifier(img *cc.Image) Classifier {
	return &ciscClassifier{
		img:           img,
		instrs:        make(map[uint32]cisc.Inst, len(img.Code)/3),
		directTargets: map[uint32]bool{},
	}
}

// AddFunc mirrors the campaign generator's boundary recovery: sequential
// variable-length decode stopping at the first error.
func (c *ciscClassifier) AddFunc(code []byte, base uint32) {
	for off := 0; off < len(code); {
		in, err := cisc.Decode(code[off:])
		if err != nil {
			break
		}
		addr := base + uint32(off)
		c.instrs[addr] = in
		if t, ok := directTarget(in, addr); ok {
			c.directTargets[t] = true
		}
		off += int(in.Len)
	}
}

func (c *ciscClassifier) Sites() []Site {
	out := make([]Site, 0, len(c.instrs))
	for addr, in := range c.instrs {
		out = append(out, Site{Addr: addr, Size: in.Len})
	}
	return out
}

// directTarget extracts the statically known destination of a direct
// branch or call. Indirect transfers (register, return) take their targets
// from data the compiler emitted as valid instruction boundaries, so only
// direct encodings need enumerating for the mid-entry check.
func directTarget(in cisc.Inst, addr uint32) (uint32, bool) {
	switch in.Op {
	case cisc.OpJMP, cisc.OpJCC, cisc.OpCALL:
	default:
		return 0, false
	}
	switch in.Format {
	case cisc.FRel8, cisc.FRel32:
		return addr + uint32(in.Len) + uint32(in.Imm), true
	case cisc.FAbsI32, cisc.FAbsR:
		if in.Format == cisc.FAbsI32 {
			return in.Abs, true
		}
	}
	return 0, false
}

// midEntry reports whether any direct branch target lands strictly inside
// [addr+1, addr+size): executing from there would reinterpret the flipped
// byte against a different instruction frame, voiding the classification.
// Compiled code never branches mid-instruction, so this is a defensive
// check that only fires on hand-crafted images.
func (c *ciscClassifier) midEntry(addr uint32, size uint8) bool {
	for t := addr + 1; t < addr+uint32(size); t++ {
		if c.directTargets[t] {
			return true
		}
	}
	return false
}

// Classify classifies one flip against the variable-length decoder. The
// flipped bytes are re-decoded in a fresh window so a flip may shrink,
// grow, or invalidate the instruction — the CISC-specific hazards of §4.4.
func (c *ciscClassifier) Classify(addr uint32, byteOff uint8, bit uint) Prediction {
	orig := c.instrs[addr]
	off := addr - c.img.CodeBase
	end := off + cisc.MaxInstLen
	if end > uint32(len(c.img.Code)) {
		end = uint32(len(c.img.Code))
	}
	var win [cisc.MaxInstLen]byte
	n := copy(win[:], c.img.Code[off:end])
	win[byteOff] ^= 1 << bit

	flip, err := cisc.Decode(win[:n])
	if err != nil {
		if n < cisc.MaxInstLen && errors.Is(err, cisc.ErrTruncated) {
			// The flipped encoding wants bytes beyond the code image; what
			// the fetch would read there is outside the analyzed image.
			return Prediction{Class: ClassUnknown, Detail: "flipped instruction runs past the code image"}
		}
		return Prediction{Class: ClassInvalid, Detail: "flipped bytes do not decode (#UD)"}
	}
	if flip.Len != orig.Len {
		return Prediction{Class: ClassLength,
			Detail: fmt.Sprintf("decoded length %d -> %d resynchronizes the downstream stream", orig.Len, flip.Len)}
	}
	if cisc.ExecEqual(orig, flip) {
		if c.midEntry(addr, orig.Len) {
			return Prediction{Class: ClassInertEncoding,
				Detail: "execution-identical decode, but a direct branch targets mid-instruction"}
		}
		return Prediction{Class: ClassInertEncoding, Inert: true,
			Detail: "flip lands on a don't-care encoding bit"}
	}

	var cl Class
	switch {
	case flip.Op != orig.Op || flip.Format != orig.Format || flip.Cc != orig.Cc ||
		flip.Cost() != orig.Cost():
		cl = ClassOpcode
	case flip.R1 != orig.R1 || flip.R2 != orig.R2 || flip.Idx != orig.Idx ||
		flip.Scale != orig.Scale:
		cl = ClassRegField
	default:
		cl = ClassImmediate
	}
	if p, ok := c.deadValue(addr, orig, flip, cl); ok {
		return p
	}
	return Prediction{Class: cl, Detail: fmt.Sprintf("%s -> %s", orig.Name(), flip.Name())}
}

// deadValue proves a same-length flip inert by liveness: both sides must be
// pure (no memory, flags, control, traps, or system state — only GPR
// writes), equal-cost (so the cycle clock and interrupt timing are
// untouched), and every register either version writes must be dead in the
// linear window that follows. See DESIGN.md §13 for why this transfers to
// every dynamic execution of the corrupted address.
func (c *ciscClassifier) deadValue(addr uint32, orig, flip cisc.Inst, cl Class) (Prediction, bool) {
	wOrig, ok := ciscPure(orig)
	if !ok {
		return Prediction{}, false
	}
	wFlip, ok := ciscPure(flip)
	if !ok {
		return Prediction{}, false
	}
	if orig.Cost() != flip.Cost() {
		return Prediction{}, false
	}
	dest := wOrig | wFlip
	if dest&ciscAlwaysLive != 0 || c.midEntry(addr, orig.Len) {
		return Prediction{}, false
	}
	if !deadAfterScan(dest, addr+uint32(orig.Len), c.lookupEffects) {
		return Prediction{}, false
	}
	return Prediction{Class: ClassDeadValue, Inert: true,
		Detail: fmt.Sprintf("%s flip, but both versions only write dead registers", cl)}, true
}

// lookupEffects feeds the shared liveness scan.
func (c *ciscClassifier) lookupEffects(addr uint32) (uint8, effects, bool) {
	in, ok := c.instrs[addr]
	if !ok {
		return 0, effects{}, false
	}
	return in.Len, ciscEffects(in), true
}

// ciscPure returns the GPR write set of an instruction that is pure: it
// writes only general registers — no memory access, no flag update, no
// control transfer, no possible trap, no system state. The whitelist is
// deliberately narrow; every op outside it fails the dead-value proof.
func ciscPure(in cisc.Inst) (regSet, bool) {
	switch in.Op {
	case cisc.OpMOV, cisc.OpLEA, cisc.OpLEAIDX,
		cisc.OpMOVZX8, cisc.OpMOVSX8, cisc.OpMOVZX16, cisc.OpMOVSX16,
		cisc.OpNOT, cisc.OpSETCC, cisc.OpSTR, cisc.OpMOVRSEG:
		return 1 << in.R1, true
	case cisc.OpXCHG:
		return 1<<in.R1 | 1<<in.R2, true
	case cisc.OpXCHGA:
		return 1<<cisc.EAX | 1<<in.R1, true
	case cisc.OpNOP:
		return 0, true
	}
	return 0, false
}

// ciscEffects models one instruction for the linear liveness scan. The
// contract is asymmetric: reads may over-approximate (extra reads only
// lose precision), kills must under-approximate (only unconditional
// full-register writes), and anything unmodeled — control flow, trap-
// capable ops (idiv/mod/bound/int), and system-state writers — must be a
// barrier.
func ciscEffects(in cisc.Inst) effects {
	r := func(regs ...uint8) regSet {
		var s regSet
		for _, x := range regs {
			s |= 1 << x
		}
		return s
	}
	// Second ALU operand is a register only in the FRR form.
	src := regSet(0)
	if in.Format == cisc.FRR {
		src = 1 << in.R2
	}
	switch in.Op {
	case cisc.OpNOP, cisc.OpCLI, cisc.OpSTI, cisc.OpCMPLABS:
		return effects{}
	case cisc.OpMOV:
		return effects{reads: src, kills: r(in.R1)}
	case cisc.OpADD, cisc.OpSUB, cisc.OpAND, cisc.OpOR, cisc.OpXOR,
		cisc.OpIMUL, cisc.OpSHL, cisc.OpSHR, cisc.OpSAR:
		return effects{reads: r(in.R1) | src, kills: r(in.R1)}
	case cisc.OpCMP, cisc.OpTEST:
		return effects{reads: r(in.R1) | src}
	case cisc.OpXCHG:
		return effects{reads: r(in.R1, in.R2), kills: r(in.R1, in.R2)}
	case cisc.OpXCHGA:
		return effects{reads: r(cisc.EAX, in.R1), kills: r(cisc.EAX, in.R1)}
	case cisc.OpNEG, cisc.OpNOT, cisc.OpINC, cisc.OpDEC:
		return effects{reads: r(in.R1), kills: r(in.R1)}
	case cisc.OpMOVZX8, cisc.OpMOVSX8, cisc.OpMOVZX16, cisc.OpMOVSX16:
		return effects{reads: r(in.R2), kills: r(in.R1)}
	case cisc.OpSETCC, cisc.OpLDABS, cisc.OpSTR, cisc.OpMOVRSEG:
		return effects{kills: r(in.R1)}
	case cisc.OpLD32, cisc.OpLD16ZX, cisc.OpLD16SX, cisc.OpLD8ZX, cisc.OpLD8SX,
		cisc.OpLOADFS:
		return effects{reads: r(in.R2), kills: r(in.R1)}
	case cisc.OpLD32IDX:
		return effects{reads: r(in.R2, in.Idx), kills: r(in.R1)}
	case cisc.OpST32, cisc.OpST16, cisc.OpST8, cisc.OpCMPM:
		return effects{reads: r(in.R1, in.R2)}
	case cisc.OpST32IDX:
		return effects{reads: r(in.R1, in.R2, in.Idx)}
	case cisc.OpSTABS:
		return effects{reads: r(in.R1)}
	case cisc.OpMOVMI8, cisc.OpINCM, cisc.OpDECM:
		return effects{reads: r(in.R2)}
	case cisc.OpADDM:
		return effects{reads: r(in.R1, in.R2), kills: r(in.R1)}
	case cisc.OpADDMS, cisc.OpSUBMS, cisc.OpANDMS, cisc.OpORMS, cisc.OpXORMS:
		return effects{reads: r(in.R1, in.R2)}
	case cisc.OpLEA:
		return effects{reads: r(in.R2), kills: r(in.R1)}
	case cisc.OpLEAIDX:
		return effects{reads: r(in.R2, in.Idx), kills: r(in.R1)}
	case cisc.OpPUSH:
		return effects{reads: r(in.R1, cisc.ESP)}
	case cisc.OpPUSHI, cisc.OpPUSHF, cisc.OpPOPF:
		return effects{reads: r(cisc.ESP)}
	case cisc.OpPOP:
		return effects{reads: r(cisc.ESP), kills: r(in.R1)}
	case cisc.OpLEAVE:
		return effects{reads: r(cisc.EBP, cisc.ESP)}
	}
	// Control flow, idiv/mod (#DE), bound/int (traps), iret/hlt/ctxsw/ud2,
	// control/debug/segment/task-register writes, and anything unforeseen.
	return effects{barrier: true}
}
