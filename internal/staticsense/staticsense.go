// Package staticsense statically classifies single-bit flips in a built
// kernel's code image without executing them — the decoder-aware pre-pass
// the FastFlip/BEC line of work applies to fault-injection campaigns.
//
// The analyzer walks every compiled kernel function, recovers instruction
// boundaries exactly the way the campaign generator does, and places each
// candidate (address, byte, bit) flip in a classification lattice:
//
//	invalid > length > opcode > reg-field > immediate > dead-value > inert-encoding
//
// ordered by how directly the flip threatens execution. The two bottom
// classes are *predicted inert*: the flip provably cannot change any
// architecturally visible outcome of a run (workload checksum, cycle count,
// crash/hang state), so a campaign may skip them and journal the golden
// outcome instead. See DESIGN.md §13 for the full soundness argument; the
// campaign-side confusion matrix (internal/stats) measures it per run.
package staticsense

import (
	"fmt"
	"sort"

	"kfi/internal/cc"
	"kfi/internal/cisc"
	"kfi/internal/isa"
	"kfi/internal/risc"
)

// Class places one candidate flip in the classification lattice.
type Class uint8

const (
	// ClassUnknown marks flips the analyzer cannot reason about: the
	// address is not a statically decoded instruction boundary, the byte
	// offset lies outside the instruction, or the original word does not
	// decode. Never predicted inert.
	ClassUnknown Class = iota
	// ClassInvalid flips decode to no instruction at all: reaching them
	// raises the ISA's invalid-opcode exception (#UD / program check).
	ClassInvalid
	// ClassLength flips change the decoded instruction length (CISC only),
	// resynchronizing the downstream instruction stream.
	ClassLength
	// ClassOpcode flips keep the length but change the operation.
	ClassOpcode
	// ClassRegField flips keep the operation but change a register or
	// addressing operand field.
	ClassRegField
	// ClassImmediate flips keep operation and registers but change an
	// immediate, displacement, or condition field.
	ClassImmediate
	// ClassDeadValue flips change only the value written to destination
	// registers that a conservative linear liveness scan proves dead
	// (overwritten before any read, barrier, or control transfer), by an
	// instruction pair proven pure and cost-equal. Predicted inert.
	ClassDeadValue
	// ClassInertEncoding flips land on don't-care encoding bits: the
	// flipped word decodes to an instruction the executor cannot
	// distinguish from the original. Predicted inert.
	ClassInertEncoding

	numClasses
)

var classNames = [numClasses]string{
	ClassUnknown:       "unknown",
	ClassInvalid:       "invalid",
	ClassLength:        "length",
	ClassOpcode:        "opcode",
	ClassRegField:      "reg-field",
	ClassImmediate:     "immediate",
	ClassDeadValue:     "dead-value",
	ClassInertEncoding: "inert-encoding",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Classes lists every class in lattice order (most to least threatening),
// for stable rendering of per-class tallies.
func Classes() []Class {
	out := make([]Class, 0, numClasses)
	for c := Class(0); c < numClasses; c++ {
		out = append(out, c)
	}
	return out
}

// Prediction is the analyzer's verdict on one candidate flip.
type Prediction struct {
	Class Class
	// Inert predicts that injecting the flip cannot change any
	// architecturally visible outcome: if the campaign executes it anyway,
	// the run must end with the golden checksum and cycle count.
	Inert bool
	// Detail is a one-line human explanation of the verdict.
	Detail string
}

// instrInfo caches one statically decoded instruction.
type instrInfo struct {
	size  uint8
	cInst cisc.Inst // CISC: the decoded original
	rInst risc.Inst // RISC: the decoded original
	rOK   bool      // RISC: whether the word decodes at all
}

// Analyzer classifies flips against one built kernel image. Building it
// decodes every function once; ClassifyFlip is then O(window) per query.
type Analyzer struct {
	platform isa.Platform
	img      *cc.Image
	instrs   map[uint32]instrInfo
	// addrs lists decoded instruction addresses in ascending order, for
	// deterministic sweeps.
	addrs []uint32
	// directTargets holds every direct branch/call target in the image
	// (CISC only): an inert prediction additionally requires that no such
	// target lands strictly inside the flipped instruction, where the
	// corrupted byte would be reinterpreted mid-stream.
	directTargets map[uint32]bool
}

// New builds an analyzer over a compiled kernel image.
func New(img *cc.Image) (*Analyzer, error) {
	a := &Analyzer{
		platform:      img.Platform,
		img:           img,
		instrs:        make(map[uint32]instrInfo, len(img.Code)/3),
		directTargets: map[uint32]bool{},
	}
	for _, fn := range img.Funcs {
		if fn.Start < img.CodeBase || uint64(fn.End-img.CodeBase) > uint64(len(img.Code)) || fn.End < fn.Start {
			return nil, fmt.Errorf("staticsense: function %s [%#x,%#x) outside code image", fn.Name, fn.Start, fn.End)
		}
		a.addFunc(fn)
	}
	sort.Slice(a.addrs, func(i, j int) bool { return a.addrs[i] < a.addrs[j] })
	return a, nil
}

// addFunc decodes one function's instruction boundaries, mirroring the
// campaign generator: 4-byte words on RISC, sequential variable-length
// decode stopping at the first error on CISC.
func (a *Analyzer) addFunc(fn cc.FuncRange) {
	code := a.img.Code[fn.Start-a.img.CodeBase : fn.End-a.img.CodeBase]
	if a.platform == isa.RISC {
		for off := uint32(0); off+4 <= uint32(len(code)); off += 4 {
			in, err := risc.Decode(beWord(code[off:]))
			addr := fn.Start + off
			a.instrs[addr] = instrInfo{size: 4, rInst: in, rOK: err == nil}
			a.addrs = append(a.addrs, addr)
		}
		return
	}
	for off := 0; off < len(code); {
		in, err := cisc.Decode(code[off:])
		if err != nil {
			break
		}
		addr := fn.Start + uint32(off)
		a.instrs[addr] = instrInfo{size: in.Len, cInst: in}
		a.addrs = append(a.addrs, addr)
		if t, ok := directTarget(in, addr); ok {
			a.directTargets[t] = true
		}
		off += int(in.Len)
	}
}

// directTarget extracts the statically known destination of a direct
// branch or call. Indirect transfers (register, return) take their targets
// from data the compiler emitted as valid instruction boundaries, so only
// direct encodings need enumerating for the mid-entry check.
func directTarget(in cisc.Inst, addr uint32) (uint32, bool) {
	switch in.Op {
	case cisc.OpJMP, cisc.OpJCC, cisc.OpCALL:
	default:
		return 0, false
	}
	switch in.Format {
	case cisc.FRel8, cisc.FRel32:
		return addr + uint32(in.Len) + uint32(in.Imm), true
	case cisc.FAbsI32, cisc.FAbsR:
		if in.Format == cisc.FAbsI32 {
			return in.Abs, true
		}
	}
	return 0, false
}

// midEntry reports whether any direct branch target lands strictly inside
// [addr+1, addr+size): executing from there would reinterpret the flipped
// byte against a different instruction frame, voiding the classification.
// Compiled code never branches mid-instruction, so this is a defensive
// check that only fires on hand-crafted images.
func (a *Analyzer) midEntry(addr uint32, size uint8) bool {
	for t := addr + 1; t < addr+uint32(size); t++ {
		if a.directTargets[t] {
			return true
		}
	}
	return false
}

// ClassifyFlip classifies the single-bit flip of bit `bit` (0–7) in the
// byte at addr+byteOff, where addr must be an instruction boundary — the
// exact shape of a CampCode injection target. Unknown addresses and
// out-of-range offsets yield ClassUnknown, never a panic.
func (a *Analyzer) ClassifyFlip(addr uint32, byteOff uint8, bit uint) Prediction {
	info, ok := a.instrs[addr]
	if !ok {
		return Prediction{Class: ClassUnknown, Detail: "address is not a decoded instruction boundary"}
	}
	if byteOff >= info.size {
		return Prediction{Class: ClassUnknown, Detail: "byte offset beyond the instruction"}
	}
	bit &= 7
	if a.platform == isa.RISC {
		return a.classifyRISC(addr, info, byteOff, bit)
	}
	return a.classifyCISC(addr, info, byteOff, bit)
}

// Report tallies a whole-image sweep of every candidate flip.
type Report struct {
	Platform isa.Platform `json:"platform"`
	// Sites is the size of the code-injection space: one per (instruction,
	// byte, bit) triple over every decoded instruction.
	Sites   int            `json:"sites"`
	ByClass map[string]int `json:"by_class"`
	// Inert counts sites predicted inert (dead-value + inert-encoding).
	Inert int `json:"inert"`
}

// InertFrac is the fraction of the injection space predicted inert — the
// pruning rate a -prune campaign achieves on uniformly drawn code targets.
func (r *Report) InertFrac() float64 {
	if r.Sites == 0 {
		return 0
	}
	return float64(r.Inert) / float64(r.Sites)
}

// Sweep classifies every candidate flip in the image.
func (a *Analyzer) Sweep() *Report {
	r := &Report{Platform: a.platform, ByClass: map[string]int{}}
	for _, addr := range a.addrs {
		size := a.instrs[addr].size
		for off := uint8(0); off < size; off++ {
			for bit := uint(0); bit < 8; bit++ {
				p := a.ClassifyFlip(addr, off, bit)
				r.Sites++
				r.ByClass[p.Class.String()]++
				if p.Inert {
					r.Inert++
				}
			}
		}
	}
	return r
}

// Render formats a sweep as an aligned per-class table.
func (r *Report) Render() string {
	out := fmt.Sprintf("%-10s %9d candidate (instruction, byte, bit) flips\n", r.Platform, r.Sites)
	for _, c := range Classes() {
		n := r.ByClass[c.String()]
		if n == 0 {
			continue
		}
		out += fmt.Sprintf("  %-16s %9d  (%5.1f%%)\n", c, n, 100*float64(n)/float64(r.Sites))
	}
	out += fmt.Sprintf("  %-16s %9d  (%5.1f%%)\n", "predicted inert", r.Inert, 100*r.InertFrac())
	return out
}

// beWord reads a big-endian 32-bit instruction word (the RISC memory
// layout: asm.go emits big-endian, and the core fetches the same way).
func beWord(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
