// Package staticsense statically classifies single-bit flips in a built
// kernel's code image without executing them — the decoder-aware pre-pass
// the FastFlip/BEC line of work applies to fault-injection campaigns.
//
// The analyzer walks every compiled kernel function, recovers instruction
// boundaries exactly the way the campaign generator does, and places each
// candidate (address, byte, bit) flip in a classification lattice:
//
//	invalid > length > opcode > reg-field > immediate > dead-value > inert-encoding
//
// ordered by how directly the flip threatens execution. The two bottom
// classes are *predicted inert*: the flip provably cannot change any
// architecturally visible outcome of a run (workload checksum, cycle count,
// crash/hang state), so a campaign may skip them and journal the golden
// outcome instead. See DESIGN.md §13 for the full soundness argument; the
// campaign-side confusion matrix (internal/stats) measures it per run.
package staticsense

import (
	"fmt"
	"sort"

	"kfi/internal/cc"
	"kfi/internal/isa"
	"kfi/internal/kir"
)

// Class places one candidate flip in the classification lattice.
type Class uint8

const (
	// ClassUnknown marks flips the analyzer cannot reason about: the
	// address is not a statically decoded instruction boundary, the byte
	// offset lies outside the instruction, or the original word does not
	// decode. Never predicted inert.
	ClassUnknown Class = iota
	// ClassInvalid flips decode to no instruction at all: reaching them
	// raises the ISA's invalid-opcode exception (#UD / program check).
	ClassInvalid
	// ClassLength flips change the decoded instruction length (CISC only),
	// resynchronizing the downstream instruction stream.
	ClassLength
	// ClassOpcode flips keep the length but change the operation.
	ClassOpcode
	// ClassRegField flips keep the operation but change a register or
	// addressing operand field.
	ClassRegField
	// ClassImmediate flips keep operation and registers but change an
	// immediate, displacement, or condition field.
	ClassImmediate
	// ClassDeadValue flips change only the value written to destination
	// registers that a conservative linear liveness scan proves dead
	// (overwritten before any read, barrier, or control transfer), by an
	// instruction pair proven pure and cost-equal. Predicted inert.
	ClassDeadValue
	// ClassInertEncoding flips land on don't-care encoding bits: the
	// flipped word decodes to an instruction the executor cannot
	// distinguish from the original. Predicted inert.
	ClassInertEncoding

	numClasses
)

var classNames = [numClasses]string{
	ClassUnknown:       "unknown",
	ClassInvalid:       "invalid",
	ClassLength:        "length",
	ClassOpcode:        "opcode",
	ClassRegField:      "reg-field",
	ClassImmediate:     "immediate",
	ClassDeadValue:     "dead-value",
	ClassInertEncoding: "inert-encoding",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Classes lists every class in lattice order (most to least threatening),
// for stable rendering of per-class tallies.
func Classes() []Class {
	out := make([]Class, 0, numClasses)
	for c := Class(0); c < numClasses; c++ {
		out = append(out, c)
	}
	return out
}

// Prediction is the analyzer's verdict on one candidate flip.
type Prediction struct {
	Class Class
	// Inert predicts that injecting the flip cannot change any
	// architecturally visible outcome: if the campaign executes it anyway,
	// the run must end with the golden checksum and cycle count.
	Inert bool
	// Detail is a one-line human explanation of the verdict.
	Detail string
}

// Site is one statically decoded instruction boundary: the unit of the
// code-campaign injection space.
type Site struct {
	Addr uint32
	Size uint8
}

// Classifier is one platform's static classification strategy: it owns the
// platform's decoded-instruction tables and the decoder-aware reasoning.
// Implementations are registered per platform with RegisterClassifier; the
// Analyzer provides the platform-independent driving (function walk, sweep,
// reporting).
type Classifier interface {
	// AddFunc statically decodes one function's code bytes (base is the
	// guest address of code[0]), recording instruction boundaries for
	// Classify and the liveness scan. It must mirror the campaign
	// generator's boundary recovery exactly.
	AddFunc(code []byte, base uint32)
	// Sites returns every decoded instruction boundary, in any order.
	Sites() []Site
	// Classify classifies the flip of bit `bit` (0–7, already masked) in
	// the byte at addr+byteOff; addr is a boundary previously recorded by
	// AddFunc and byteOff is within the instruction.
	Classify(addr uint32, byteOff uint8, bit uint) Prediction
}

var classifiers = map[isa.Platform]func(img *cc.Image) Classifier{}

// RegisterClassifier registers a platform's classifier factory. The built-in
// platforms register theirs in this package's init; extension platforms
// (which sit above cc in the import graph) call this from their own setup
// code before building an Analyzer.
func RegisterClassifier(p isa.Platform, mk func(img *cc.Image) Classifier) {
	if mk == nil {
		panic("staticsense: RegisterClassifier with nil factory")
	}
	if _, dup := classifiers[p]; dup {
		panic(fmt.Sprintf("staticsense: classifier already registered for %v", p))
	}
	classifiers[p] = mk
}

func init() {
	RegisterClassifier(isa.CISC, newCISCClassifier)
	RegisterClassifier(isa.RISC, newRISCClassifier)
}

// Analyzer classifies flips against one built kernel image. Building it
// decodes every function once; ClassifyFlip is then O(window) per query.
type Analyzer struct {
	platform isa.Platform
	cl       Classifier
	// hardened records whether the image carries the kir.Harden detector —
	// sweeps over hardened images label their reports, since the hardening
	// checks themselves enlarge the code-injection space being classified.
	hardened bool
	// addrs lists decoded instruction addresses in ascending order, for
	// deterministic sweeps; sizes maps each to its instruction length.
	addrs []uint32
	sizes map[uint32]uint8
}

// New builds an analyzer over a compiled kernel image.
func New(img *cc.Image) (*Analyzer, error) {
	mk, ok := classifiers[img.Platform]
	if !ok {
		return nil, fmt.Errorf("staticsense: no classifier registered for %v", img.Platform)
	}
	_, hardened := img.Syms[kir.DetectFunc]
	a := &Analyzer{platform: img.Platform, cl: mk(img), hardened: hardened}
	for _, fn := range img.Funcs {
		if fn.Start < img.CodeBase || uint64(fn.End-img.CodeBase) > uint64(len(img.Code)) || fn.End < fn.Start {
			return nil, fmt.Errorf("staticsense: function %s [%#x,%#x) outside code image", fn.Name, fn.Start, fn.End)
		}
		a.cl.AddFunc(img.Code[fn.Start-img.CodeBase:fn.End-img.CodeBase], fn.Start)
	}
	sites := a.cl.Sites()
	a.addrs = make([]uint32, 0, len(sites))
	a.sizes = make(map[uint32]uint8, len(sites))
	for _, s := range sites {
		a.addrs = append(a.addrs, s.Addr)
		a.sizes[s.Addr] = s.Size
	}
	sort.Slice(a.addrs, func(i, j int) bool { return a.addrs[i] < a.addrs[j] })
	return a, nil
}

// ClassifyFlip classifies the single-bit flip of bit `bit` (0–7) in the
// byte at addr+byteOff, where addr must be an instruction boundary — the
// exact shape of a CampCode injection target. Unknown addresses and
// out-of-range offsets yield ClassUnknown, never a panic.
func (a *Analyzer) ClassifyFlip(addr uint32, byteOff uint8, bit uint) Prediction {
	size, ok := a.sizes[addr]
	if !ok {
		return Prediction{Class: ClassUnknown, Detail: "address is not a decoded instruction boundary"}
	}
	if byteOff >= size {
		return Prediction{Class: ClassUnknown, Detail: "byte offset beyond the instruction"}
	}
	return a.cl.Classify(addr, byteOff, bit&7)
}

// Report tallies a whole-image sweep of every candidate flip.
type Report struct {
	Platform isa.Platform `json:"platform"`
	// Sites is the size of the code-injection space: one per (instruction,
	// byte, bit) triple over every decoded instruction.
	Sites   int            `json:"sites"`
	ByClass map[string]int `json:"by_class"`
	// Inert counts sites predicted inert (dead-value + inert-encoding).
	Inert int `json:"inert"`
	// Hardened labels sweeps over images built with the kir.Harden passes
	// (detected via the synthesized detector symbol); omitted for ordinary
	// images, so pre-hardening reports serialize byte-identically.
	Hardened bool `json:"hardened,omitempty"`
}

// InertFrac is the fraction of the injection space predicted inert — the
// pruning rate a -prune campaign achieves on uniformly drawn code targets.
func (r *Report) InertFrac() float64 {
	if r.Sites == 0 {
		return 0
	}
	return float64(r.Inert) / float64(r.Sites)
}

// Sweep classifies every candidate flip in the image.
func (a *Analyzer) Sweep() *Report {
	r := &Report{Platform: a.platform, ByClass: map[string]int{}, Hardened: a.hardened}
	for _, addr := range a.addrs {
		size := a.sizes[addr]
		for off := uint8(0); off < size; off++ {
			for bit := uint(0); bit < 8; bit++ {
				p := a.ClassifyFlip(addr, off, bit)
				r.Sites++
				r.ByClass[p.Class.String()]++
				if p.Inert {
					r.Inert++
				}
			}
		}
	}
	return r
}

// Render formats a sweep as an aligned per-class table.
func (r *Report) Render() string {
	label := ""
	if r.Hardened {
		label = " (hardened image)"
	}
	out := fmt.Sprintf("%-10s %9d candidate (instruction, byte, bit) flips%s\n", r.Platform, r.Sites, label)
	for _, c := range Classes() {
		n := r.ByClass[c.String()]
		if n == 0 {
			continue
		}
		out += fmt.Sprintf("  %-16s %9d  (%5.1f%%)\n", c, n, 100*float64(n)/float64(r.Sites))
	}
	out += fmt.Sprintf("  %-16s %9d  (%5.1f%%)\n", "predicted inert", r.Inert, 100*r.InertFrac())
	return out
}

// beWord reads a big-endian 32-bit instruction word (the RISC memory
// layout: asm.go emits big-endian, and the core fetches the same way).
func beWord(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
