// Package staticsense statically classifies single-bit flips in a built
// kernel's code image without executing them — the decoder-aware pre-pass
// the FastFlip/BEC line of work applies to fault-injection campaigns.
//
// The analyzer walks every compiled kernel function, recovers instruction
// boundaries exactly the way the campaign generator does, and places each
// candidate (address, byte, bit) flip in a classification lattice:
//
//	invalid > length > opcode > reg-field > immediate > dead-value > inert-encoding
//
// ordered by how directly the flip threatens execution. The two bottom
// classes are *predicted inert*: the flip provably cannot change any
// architecturally visible outcome of a run (workload checksum, cycle count,
// crash/hang state), so a campaign may skip them and journal the golden
// outcome instead. See DESIGN.md §13 for the full soundness argument; the
// campaign-side confusion matrix (internal/stats) measures it per run.
package staticsense

import (
	"fmt"
	"sort"

	"kfi/internal/cc"
	"kfi/internal/isa"
	"kfi/internal/kir"
)

// Class places one candidate flip in the classification lattice.
type Class uint8

const (
	// ClassUnknown marks flips the analyzer cannot reason about: the
	// address is not a statically decoded instruction boundary, the byte
	// offset lies outside the instruction, or the original word does not
	// decode. Never predicted inert.
	ClassUnknown Class = iota
	// ClassInvalid flips decode to no instruction at all: reaching them
	// raises the ISA's invalid-opcode exception (#UD / program check).
	ClassInvalid
	// ClassLength flips change the decoded instruction length (CISC only),
	// resynchronizing the downstream instruction stream.
	ClassLength
	// ClassOpcode flips keep the length but change the operation.
	ClassOpcode
	// ClassRegField flips keep the operation but change a register or
	// addressing operand field.
	ClassRegField
	// ClassImmediate flips keep operation and registers but change an
	// immediate, displacement, or condition field.
	ClassImmediate
	// ClassDeadValue flips change only the value written to destination
	// registers that a conservative linear liveness scan proves dead
	// (overwritten before any read, barrier, or control transfer), by an
	// instruction pair proven pure and cost-equal. Predicted inert.
	ClassDeadValue
	// ClassInertEncoding flips land on don't-care encoding bits: the
	// flipped word decodes to an instruction the executor cannot
	// distinguish from the original. Predicted inert.
	ClassInertEncoding
	// ClassDeadStore flips land in a data or stack byte the whole-program
	// access analysis proves is possibly written but never read (by compiled
	// code, the glue paths, or the host runtime). Predicted inert — the
	// flipped value is never consumed — but not skippable: neighboring
	// bytes of the same word may be read, so activation is statically
	// unknown.
	ClassDeadStore
	// ClassUnreferenced flips land in an aligned 4-byte word no kernel
	// instruction, glue path, or host access ever touches (padding holes,
	// never-referenced globals or fields). Predicted inert; a pruned data
	// campaign may skip these as not-activated.
	ClassUnreferenced
	// ClassMaskedReg flips land on a system-register bit outside the
	// platform's statically derived consulted mask: no implicit processor
	// path and no decoded instruction in the image ever reads the bit.
	// Predicted inert; a pruned sysreg campaign may skip these.
	ClassMaskedReg

	numClasses
)

var classNames = [numClasses]string{
	ClassUnknown:       "unknown",
	ClassInvalid:       "invalid",
	ClassLength:        "length",
	ClassOpcode:        "opcode",
	ClassRegField:      "reg-field",
	ClassImmediate:     "immediate",
	ClassDeadValue:     "dead-value",
	ClassInertEncoding: "inert-encoding",
	ClassDeadStore:     "dead-store",
	ClassUnreferenced:  "unreferenced",
	ClassMaskedReg:     "masked-reg",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Inert reports whether the class as a whole is predicted inert: every
// prediction the analyzer emits with this class carries Inert set.
func (c Class) Inert() bool {
	switch c {
	case ClassDeadValue, ClassInertEncoding, ClassDeadStore, ClassUnreferenced, ClassMaskedReg:
		return true
	}
	return false
}

// Classes lists every class in lattice order (most to least threatening),
// for stable rendering of per-class tallies.
func Classes() []Class {
	out := make([]Class, 0, numClasses)
	for c := Class(0); c < numClasses; c++ {
		out = append(out, c)
	}
	return out
}

// Prediction is the analyzer's verdict on one candidate flip.
type Prediction struct {
	Class Class
	// Inert predicts that injecting the flip cannot change any
	// architecturally visible outcome: if the campaign executes it anyway,
	// the run must end with the golden checksum and cycle count.
	Inert bool
	// Detail is a one-line human explanation of the verdict.
	Detail string
}

// Site is one statically decoded instruction boundary: the unit of the
// code-campaign injection space.
type Site struct {
	Addr uint32
	Size uint8
}

// Classifier is one platform's static classification strategy: it owns the
// platform's decoded-instruction tables and the decoder-aware reasoning.
// Implementations are registered per platform with RegisterClassifier; the
// Analyzer provides the platform-independent driving (function walk, sweep,
// reporting).
type Classifier interface {
	// AddFunc statically decodes one function's code bytes (base is the
	// guest address of code[0]), recording instruction boundaries for
	// Classify and the liveness scan. It must mirror the campaign
	// generator's boundary recovery exactly.
	AddFunc(code []byte, base uint32)
	// Sites returns every decoded instruction boundary, in any order.
	Sites() []Site
	// Classify classifies the flip of bit `bit` (0–7, already masked) in
	// the byte at addr+byteOff; addr is a boundary previously recorded by
	// AddFunc and byteOff is within the instruction.
	Classify(addr uint32, byteOff uint8, bit uint) Prediction
}

var classifiers = map[isa.Platform]func(img *cc.Image) Classifier{}

// RegisterClassifier registers a platform's classifier factory. The built-in
// platforms register theirs in this package's init; extension platforms
// (which sit above cc in the import graph) call this from their own setup
// code before building an Analyzer.
func RegisterClassifier(p isa.Platform, mk func(img *cc.Image) Classifier) {
	if mk == nil {
		panic("staticsense: RegisterClassifier with nil factory")
	}
	if _, dup := classifiers[p]; dup {
		panic(fmt.Sprintf("staticsense: classifier already registered for %v", p))
	}
	classifiers[p] = mk
}

func init() {
	RegisterClassifier(isa.CISC, newCISCClassifier)
	RegisterClassifier(isa.RISC, newRISCClassifier)
}

// Analyzer classifies flips against one built kernel image. Building it
// decodes every function once; ClassifyFlip is then O(window) per query.
type Analyzer struct {
	platform isa.Platform
	cl       Classifier
	// hardened records whether the image carries the kir.Harden detector —
	// sweeps over hardened images label their reports, since the hardening
	// checks themselves enlarge the code-injection space being classified.
	hardened bool
	// addrs lists decoded instruction addresses in ascending order, for
	// deterministic sweeps; sizes maps each to its instruction length.
	addrs []uint32
	sizes map[uint32]uint8

	// Whole-target state, nil/zero for code-only analyzers built with New.
	img        *cc.Image
	acc        *accessMap
	extents    []extent
	stack      *stackModel
	sysregs    map[string]SysRegInfo
	sysOrder   []string
	kstackSize uint32
}

// Config describes one built system to NewAnalyzer. Image is required;
// every other field unlocks one additional target class, so partial
// configurations degrade to ClassUnknown rather than failing.
type Config struct {
	// Image is the compiled kernel image (with glue appended), exactly what
	// the campaign injects into.
	Image *cc.Image
	// Prog is the KIR program Image was compiled from, with hardening
	// passes already applied — the access model for data and stack flips.
	Prog *kir.Program
	// Proc is the task_struct type co-located at the base of each kernel
	// stack slot; enables stack-byte classification.
	Proc *kir.Struct
	// KStackSize is the per-slot kernel stack size in bytes (the stack
	// sweep span).
	KStackSize uint32
	// HostReadGlobals names globals the host runtime reads outside compiled
	// code (current-task resolution, injector address resolution). Every
	// byte of these is conservatively live.
	HostReadGlobals []string
	// HostReadTaskFields names Proc fields the host runtime reads directly
	// (stack checks, context switch, saved-SP probes).
	HostReadTaskFields []string
}

// NewAnalyzer builds a whole-target analyzer: code flips classify exactly as
// with New, and the Config's program/layout information additionally
// classifies data, stack, and system-register flips.
func NewAnalyzer(cfg Config) (*Analyzer, error) {
	a, err := New(cfg.Image)
	if err != nil {
		return nil, err
	}
	a.img = cfg.Image
	if cfg.Prog != nil {
		a.acc = analyzeProgram(cfg.Prog, cfg.Image.Layout, cfg.Proc, cfg.HostReadGlobals, cfg.HostReadTaskFields)
		a.extents = buildExtents(cfg.Prog, cfg.Image)
		if cfg.Proc != nil {
			a.stack = newStackModel(cfg.Proc, cfg.Image.Layout, a.acc)
		}
		a.kstackSize = cfg.KStackSize
	}
	if mk := sysregModels[a.platform]; mk != nil {
		a.sysregs = map[string]SysRegInfo{}
		for _, info := range mk(cfg.Image) {
			a.sysregs[info.Name] = info
			a.sysOrder = append(a.sysOrder, info.Name)
		}
	}
	return a, nil
}

// New builds an analyzer over a compiled kernel image.
func New(img *cc.Image) (*Analyzer, error) {
	mk, ok := classifiers[img.Platform]
	if !ok {
		return nil, fmt.Errorf("staticsense: no classifier registered for %v", img.Platform)
	}
	_, hardened := img.Syms[kir.DetectFunc]
	a := &Analyzer{platform: img.Platform, cl: mk(img), hardened: hardened}
	for _, fn := range img.Funcs {
		if fn.Start < img.CodeBase || uint64(fn.End-img.CodeBase) > uint64(len(img.Code)) || fn.End < fn.Start {
			return nil, fmt.Errorf("staticsense: function %s [%#x,%#x) outside code image", fn.Name, fn.Start, fn.End)
		}
		a.cl.AddFunc(img.Code[fn.Start-img.CodeBase:fn.End-img.CodeBase], fn.Start)
	}
	sites := a.cl.Sites()
	a.addrs = make([]uint32, 0, len(sites))
	a.sizes = make(map[uint32]uint8, len(sites))
	for _, s := range sites {
		a.addrs = append(a.addrs, s.Addr)
		a.sizes[s.Addr] = s.Size
	}
	sort.Slice(a.addrs, func(i, j int) bool { return a.addrs[i] < a.addrs[j] })
	return a, nil
}

// ClassifyFlip classifies the single-bit flip of bit `bit` (0–7) in the
// byte at addr+byteOff, where addr must be an instruction boundary — the
// exact shape of a CampCode injection target. Unknown addresses and
// out-of-range offsets yield ClassUnknown, never a panic.
func (a *Analyzer) ClassifyFlip(addr uint32, byteOff uint8, bit uint) Prediction {
	size, ok := a.sizes[addr]
	if !ok {
		return Prediction{Class: ClassUnknown, Detail: "address is not a decoded instruction boundary"}
	}
	if byteOff >= size {
		return Prediction{Class: ClassUnknown, Detail: "byte offset beyond the instruction"}
	}
	return a.cl.Classify(addr, byteOff, bit&7)
}

// TargetReport tallies the sweep of one target class (code, data, stack,
// sysreg): its injection-space size and per-class split.
type TargetReport struct {
	Target  string         `json:"target"`
	Sites   int            `json:"sites"`
	ByClass map[string]int `json:"by_class"`
	Inert   int            `json:"inert"`
}

// InertFrac is the fraction of this target's injection space predicted inert.
func (t *TargetReport) InertFrac() float64 {
	if t.Sites == 0 {
		return 0
	}
	return float64(t.Inert) / float64(t.Sites)
}

// Report tallies a whole-image sweep of every candidate flip.
type Report struct {
	Platform isa.Platform `json:"platform"`
	// Sites is the size of the swept injection space: one per (instruction,
	// byte, bit) triple for code-only analyzers, summed across every swept
	// target class for whole-target analyzers.
	Sites   int            `json:"sites"`
	ByClass map[string]int `json:"by_class"`
	// Inert counts sites predicted inert.
	Inert int `json:"inert"`
	// Hardened labels sweeps over images built with the kir.Harden passes
	// (detected via the synthesized detector symbol); omitted for ordinary
	// images, so pre-hardening reports serialize byte-identically.
	Hardened bool `json:"hardened,omitempty"`
	// Targets breaks the sweep down per target class, in the fixed order
	// code, data, stack, sysreg. Only whole-target analyzers (NewAnalyzer)
	// emit it; code-only reports keep their original shape.
	Targets []*TargetReport `json:"targets,omitempty"`
}

// InertFrac is the fraction of the injection space predicted inert — the
// pruning rate a -prune campaign achieves on uniformly drawn code targets.
func (r *Report) InertFrac() float64 {
	if r.Sites == 0 {
		return 0
	}
	return float64(r.Inert) / float64(r.Sites)
}

// Sweep classifies every candidate flip the analyzer can reason about: the
// code image always, plus the data, stack, and sysreg spaces when built with
// NewAnalyzer and the Config unlocked them.
func (a *Analyzer) Sweep() *Report {
	r := &Report{Platform: a.platform, ByClass: map[string]int{}, Hardened: a.hardened}
	tgts := []*TargetReport{a.sweepCode()}
	if a.acc != nil {
		tgts = append(tgts, a.sweepData())
		if a.stack != nil && a.kstackSize > 0 {
			tgts = append(tgts, a.sweepStack())
		}
	}
	if a.img != nil && len(a.sysOrder) > 0 {
		tgts = append(tgts, a.sweepSysReg())
	}
	if len(tgts) > 1 {
		r.Targets = tgts
	}
	for _, t := range tgts {
		r.Sites += t.Sites
		r.Inert += t.Inert
		for k, v := range t.ByClass {
			r.ByClass[k] += v
		}
	}
	return r
}

func newTargetReport(name string) *TargetReport {
	return &TargetReport{Target: name, ByClass: map[string]int{}}
}

func (t *TargetReport) tally(p Prediction, n int) {
	t.Sites += n
	t.ByClass[p.Class.String()] += n
	if p.Inert {
		t.Inert += n
	}
}

func (a *Analyzer) sweepCode() *TargetReport {
	t := newTargetReport("code")
	for _, addr := range a.addrs {
		size := a.sizes[addr]
		for off := uint8(0); off < size; off++ {
			for bit := uint(0); bit < 8; bit++ {
				t.tally(a.ClassifyFlip(addr, off, bit), 1)
			}
		}
	}
	return t
}

func (a *Analyzer) sweepData() *TargetReport {
	t := newTargetReport("data")
	sweep := func(base, size uint32) {
		for addr := base; addr < base+size; addr++ {
			// Data classification is byte-granular: all 8 bits share a class.
			t.tally(a.ClassifyData(addr, 0), 8)
		}
	}
	sweep(a.img.DataBase, uint32(len(a.img.Data)))
	sweep(a.img.BSSBase, a.img.BSSSize)
	return t
}

func (a *Analyzer) sweepStack() *TargetReport {
	t := newTargetReport("stack")
	for off := uint32(0); off < a.kstackSize; off++ {
		t.tally(a.ClassifyStackByte(off), 8)
	}
	return t
}

func (a *Analyzer) sweepSysReg() *TargetReport {
	t := newTargetReport("sysreg")
	for _, name := range a.sysOrder {
		for bit := uint(0); bit < a.sysregs[name].Bits; bit++ {
			t.tally(a.ClassifySysReg(name, bit), 1)
		}
	}
	return t
}

// Render formats a sweep as an aligned per-class table, with one section per
// swept target class for whole-target reports.
func (r *Report) Render() string {
	label := ""
	if r.Hardened {
		label = " (hardened image)"
	}
	if len(r.Targets) == 0 {
		out := fmt.Sprintf("%-10s %9d candidate (instruction, byte, bit) flips%s\n", r.Platform, r.Sites, label)
		out += renderClasses(r.ByClass, r.Sites, r.Inert)
		return out
	}
	out := fmt.Sprintf("%-10s %9d candidate flips across %d target classes%s\n",
		r.Platform, r.Sites, len(r.Targets), label)
	for _, t := range r.Targets {
		out += fmt.Sprintf(" %s: %d sites\n", t.Target, t.Sites)
		out += renderClasses(t.ByClass, t.Sites, t.Inert)
	}
	return out
}

func renderClasses(byClass map[string]int, sites, inert int) string {
	out := ""
	for _, c := range Classes() {
		n := byClass[c.String()]
		if n == 0 {
			continue
		}
		out += fmt.Sprintf("  %-16s %9d  (%5.1f%%)\n", c, n, 100*float64(n)/float64(sites))
	}
	frac := 0.0
	if sites > 0 {
		frac = float64(inert) / float64(sites)
	}
	out += fmt.Sprintf("  %-16s %9d  (%5.1f%%)\n", "predicted inert", inert, 100*frac)
	return out
}

// beWord reads a big-endian 32-bit instruction word (the RISC memory
// layout: asm.go emits big-endian, and the core fetches the same way).
func beWord(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
