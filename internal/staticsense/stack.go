package staticsense

import (
	"fmt"

	"kfi/internal/kir"
)

// stackModel classifies bytes of one kernel stack slot. The layout mirrors
// the 2.4-era kernel the campaign injects into: the task_struct sits at the
// bottom of the slot ([0, StructSize)), and the live stack grows down from
// the top toward it. Stack targets resolve at injection time to either the
// live stack span or the task area, so the task area is the only part the
// analysis can say anything static about — per-field, from the same access
// analysis that covers data globals.
type stackModel struct {
	proc *kir.Struct
	acc  *accessMap
	size uint32
	// fieldAt maps each byte offset within the task_struct to its field
	// index, or -1 for alignment padding.
	fieldAt []int
}

func newStackModel(proc *kir.Struct, layout kir.Layout, acc *accessMap) *stackModel {
	size := layout.StructSize(proc)
	m := &stackModel{proc: proc, acc: acc, size: size, fieldAt: make([]int, size)}
	for i := range m.fieldAt {
		m.fieldAt[i] = -1
	}
	for i, f := range proc.Fields {
		off := layout.FieldOffset(proc, i)
		n := f.Count
		if n <= 1 {
			n = 1
		}
		end := off + uint32(f.Width)*uint32(n)
		for b := off; b < end && b < size; b++ {
			m.fieldAt[b] = i
		}
	}
	return m
}

// ClassifyStackByte classifies a single-bit flip of the byte at offset off
// within a kernel stack slot (0 = slot base, where the task_struct lives).
// Offsets above the task_struct are live stack: always ClassUnknown. Within
// the task_struct, never-accessed fields and padding are ClassUnreferenced
// and write-only fields are ClassDeadStore — both inert, neither skippable,
// since stack activation depends on the run's dynamic stack depth.
func (a *Analyzer) ClassifyStackByte(off uint32) Prediction {
	m := a.stack
	if m == nil {
		return Prediction{Class: ClassUnknown, Detail: "no task layout model (code-only analyzer)"}
	}
	if off >= m.size {
		return Prediction{Class: ClassUnknown, Detail: "live kernel stack"}
	}
	fi := m.fieldAt[off]
	if fi < 0 {
		return Prediction{Class: ClassUnreferenced, Inert: true,
			Detail: "task_struct alignment padding: never accessed"}
	}
	name := m.proc.Fields[fi].Name
	switch {
	case m.acc.procRead[fi]:
		return Prediction{Class: ClassUnknown, Detail: fmt.Sprintf("task_struct field %q is read", name)}
	case m.acc.procWritten[fi]:
		return Prediction{Class: ClassDeadStore, Inert: true,
			Detail: fmt.Sprintf("task_struct field %q is written but never read", name)}
	default:
		return Prediction{Class: ClassUnreferenced, Inert: true,
			Detail: fmt.Sprintf("task_struct field %q is never accessed", name)}
	}
}
