package staticsense

// regSet is a bitmask over guest general registers (8 on CISC, 32 on
// RISC); bit i is register i.
type regSet uint32

// effects models one instruction for the linear liveness scan. The
// soundness contract: reads must be a superset of the registers the
// executor may read, kills a subset of the registers it unconditionally
// fully overwrites, and barrier true for anything else that could end or
// divert the linear window (control transfer, trap, system-state write,
// unmodeled operation).
type effects struct {
	reads   regSet
	kills   regSet
	barrier bool
}

// scanLimit bounds the liveness window. Compiled basic blocks are short;
// a register still unkilled after this many instructions is treated live.
const scanLimit = 64

// deadAfterScan proves every register in want dead from address next on:
// walking the *linear* successor stream (never following control flow),
// each register must be fully overwritten before any instruction reads it,
// before the first barrier, and within scanLimit instructions. lookup
// resolves one decoded instruction to its size and liveness effects; a miss
// (function end) yields no kill proof, so the register is treated live.
//
// Linearity is what makes the proof transfer to every dynamic execution:
// control flow always falls through the window instructions in order until
// the first barrier, and conditional branches are barriers, so the window
// is exactly the code that executes after the corrupted write — modulo
// interrupts, whose handlers are register-transparent (they must save and
// restore any GPR they touch for the golden run to be correct).
func deadAfterScan(want regSet, next uint32, lookup func(addr uint32) (size uint8, e effects, ok bool)) bool {
	if want == 0 {
		return true
	}
	for i := 0; i < scanLimit; i++ {
		size, e, ok := lookup(next)
		if !ok {
			return false
		}
		if e.barrier || e.reads&want != 0 {
			return false
		}
		want &^= e.kills
		if want == 0 {
			return true
		}
		next += uint32(size)
	}
	return false
}
