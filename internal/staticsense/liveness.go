package staticsense

import "kfi/internal/isa"

// regSet is a bitmask over guest general registers (8 on CISC, 32 on
// RISC); bit i is register i.
type regSet uint32

// effects models one instruction for the linear liveness scan. The
// soundness contract: reads must be a superset of the registers the
// executor may read, kills a subset of the registers it unconditionally
// fully overwrites, and barrier true for anything else that could end or
// divert the linear window (control transfer, trap, system-state write,
// unmodeled operation).
type effects struct {
	reads   regSet
	kills   regSet
	barrier bool
}

// scanLimit bounds the liveness window. Compiled basic blocks are short;
// a register still unkilled after this many instructions is treated live.
const scanLimit = 64

// deadAfter proves every register in want dead after the instruction at
// addr: walking the *linear* successor stream (never following control
// flow), each register must be fully overwritten before any instruction
// reads it, before the first barrier, and within scanLimit instructions.
//
// Linearity is what makes the proof transfer to every dynamic execution of
// addr: control flow always falls through the window instructions in order
// until the first barrier, and conditional branches are barriers, so the
// window is exactly the code that executes after the corrupted write —
// modulo interrupts, whose handlers are register-transparent (they must
// save and restore any GPR they touch for the golden run to be correct).
func (a *Analyzer) deadAfter(addr uint32, want regSet) bool {
	if want == 0 {
		return true
	}
	next := addr + uint32(a.instrs[addr].size)
	for i := 0; i < scanLimit; i++ {
		info, ok := a.instrs[next]
		if !ok {
			// Ran past the decoded instructions (function end): no kill
			// proof, treat as live.
			return false
		}
		var e effects
		if a.platform == isa.RISC {
			e = riscEffects(info.rInst, info.rOK)
		} else {
			e = ciscEffects(info.cInst)
		}
		if e.barrier || e.reads&want != 0 {
			return false
		}
		want &^= e.kills
		if want == 0 {
			return true
		}
		next += uint32(info.size)
	}
	return false
}
