package staticsense

import (
	"testing"

	"kfi/internal/cisc"
)

// FuzzClassifyFlip drives the CISC classifier with arbitrary byte streams
// and checks its two hard contracts against the real decoder:
//
//   - it never panics, whatever the image contents;
//   - its verdicts never disagree with cisc.Decode on instruction
//     boundaries: ClassInvalid means the flipped bytes do not decode,
//     ClassLength means they decode at a different length, and every
//     same-length class decodes at the original length.
func FuzzClassifyFlip(f *testing.F) {
	// Seed with every valid opcode byte leading a window wide enough for
	// the largest format, so each decoder format is exercised from the
	// first generation on.
	for b := 0; b < 256; b++ {
		if _, _, ok := cisc.Lookup(byte(b)); ok {
			f.Add([]byte{byte(b), 0x31, 0x44, 0x33, 0x22, 0x11, 0x20, 0x01, 0x02}, uint8(0), uint8(3))
		}
	}
	// The synthetic sequence from the unit tests: two movs and a ret.
	f.Add([]byte{0x02, 0x31, 0x06, 0x03, 0x44, 0x33, 0x22, 0x11, 0x0b}, uint8(1), uint8(0))

	f.Fuzz(func(t *testing.T, code []byte, byteOff, bit uint8) {
		if len(code) == 0 || len(code) > 64 {
			return
		}
		img := ciscImage(append([]byte(nil), code...))
		an, err := New(img)
		if err != nil {
			t.Fatalf("New on a valid range: %v", err)
		}
		for _, addr := range an.addrs {
			size := an.sizes[addr]
			off := byteOff % size
			p := an.ClassifyFlip(addr, off, uint(bit%8))

			// Re-decode the flipped window with the real decoder.
			o := int(addr - img.CodeBase)
			end := o + cisc.MaxInstLen
			if end > len(img.Code) {
				end = len(img.Code)
			}
			win := append([]byte(nil), img.Code[o:end]...)
			win[off] ^= 1 << (bit % 8)
			flip, derr := cisc.Decode(win)

			switch p.Class {
			case ClassUnknown:
				// The analyzer declined (e.g. the flipped encoding runs past
				// the image); nothing to cross-check.
			case ClassInvalid:
				if derr == nil {
					t.Errorf("%#x+%d bit %d: ClassInvalid but decoder accepts % x", addr, off, bit%8, win)
				}
			case ClassLength:
				if derr != nil {
					t.Errorf("%#x+%d bit %d: ClassLength but decoder rejects: %v", addr, off, bit%8, derr)
				} else if flip.Len == size {
					t.Errorf("%#x+%d bit %d: ClassLength but length unchanged (%d)", addr, off, bit%8, flip.Len)
				}
			default:
				if derr != nil {
					t.Errorf("%#x+%d bit %d: %v but decoder rejects: %v", addr, off, bit%8, p.Class, derr)
				} else if flip.Len != size {
					t.Errorf("%#x+%d bit %d: %v but length %d -> %d", addr, off, bit%8, p.Class, size, flip.Len)
				}
			}
		}
	})
}
