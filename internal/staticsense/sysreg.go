package staticsense

import (
	"fmt"

	"kfi/internal/cc"
	"kfi/internal/cisc"
	"kfi/internal/isa"
	"kfi/internal/risc"
)

// SysRegInfo is one platform system register's static read model: which of
// its bits the processor core or the compiled image can ever consult. A set
// bit in InertMask means the bit is provably never read — not by an
// implicit processor path (mode checks, translation vetting, exception
// delivery) and not by any decoded instruction in the image — so flipping
// it cannot change any architecturally visible outcome.
type SysRegInfo struct {
	Name      string
	Bits      uint
	InertMask uint32
}

// SysRegFunc derives a platform's register read models from a built image:
// unconditionally consulted bits come from the core's implicit paths, and
// explicit-read instructions found in the image mark whole registers live.
type SysRegFunc func(img *cc.Image) []SysRegInfo

var sysregModels = map[isa.Platform]SysRegFunc{}

// RegisterSysRegModel registers a platform's system-register read-model
// builder. Platforms without one (the extension/toy platforms) simply get
// no sysreg predictions: every sysreg flip stays ClassUnknown.
func RegisterSysRegModel(p isa.Platform, fn SysRegFunc) {
	if fn == nil {
		panic("staticsense: RegisterSysRegModel with nil builder")
	}
	if _, dup := sysregModels[p]; dup {
		panic(fmt.Sprintf("staticsense: sysreg model already registered for %v", p))
	}
	sysregModels[p] = fn
}

func init() {
	RegisterSysRegModel(isa.CISC, ciscSysRegModel)
	RegisterSysRegModel(isa.RISC, riscSysRegModel)
}

// ClassifySysReg classifies a single-bit flip of the named system register —
// the shape of a CampSysReg injection target. Bits inside the platform's
// consulted mask (or of registers without a model) stay ClassUnknown.
func (a *Analyzer) ClassifySysReg(name string, bit uint) Prediction {
	info, ok := a.sysregs[name]
	if !ok {
		return Prediction{Class: ClassUnknown, Detail: fmt.Sprintf("no static read model for register %q", name)}
	}
	if bit >= info.Bits {
		return Prediction{Class: ClassUnknown, Detail: "bit beyond the register width"}
	}
	if info.InertMask>>bit&1 != 0 {
		return Prediction{Class: ClassMaskedReg, Inert: true,
			Detail: fmt.Sprintf("%s bit %d is never consulted by the core or the image", name, bit)}
	}
	return Prediction{Class: ClassUnknown, Detail: fmt.Sprintf("%s bit %d may be consulted", name, bit)}
}

func fullMask(bits uint) uint32 {
	if bits >= 32 {
		return ^uint32(0)
	}
	return 1<<bits - 1
}

// ciscSysRegModel builds the P4-class read model. Implicit consults, from
// the core's execution and interrupt-delivery paths: EFLAGS, ESP, and EIP
// everywhere; CR0's PE bit at iret/int/interrupt delivery; FS's full
// selector at every movfs (the != SelFS check). Explicit reads are decoded
// from the image: movrc (CR0/CR2/CR3), movrd (DR0–3), movrseg (FS/GS), str
// (TR). GDTR, IDTR, LDTR, DR6, DR7, and the SYSENTER registers have no read
// path at all — reset-initialized and state-serialized only.
func ciscSysRegModel(img *cc.Image) []SysRegInfo {
	read := map[string]bool{}
	scanImage(img, func(addr uint32, code []byte) int {
		in, err := cisc.Decode(code)
		if err != nil {
			return 0
		}
		switch in.Op {
		case cisc.OpMOVRC:
			switch in.R2 {
			case 0:
				read["CR0"] = true
			case 2:
				read["CR2"] = true
			case 3:
				read["CR3"] = true
			}
		case cisc.OpMOVRD:
			read[fmt.Sprintf("DR%d", in.R2&3)] = true
		case cisc.OpMOVRSEG:
			if in.R2 == 0 {
				read["FS"] = true
			} else {
				read["GS"] = true
			}
		case cisc.OpSTR:
			read["TR"] = true
		case cisc.OpLOADFS:
			read["FS"] = true
		}
		return int(in.Len)
	})
	var infos []SysRegInfo
	for _, sr := range cisc.SystemRegisters() {
		info := SysRegInfo{Name: sr.Name, Bits: sr.Bits}
		switch {
		case sr.Name == "EFLAGS" || sr.Name == "ESP" || sr.Name == "EIP":
			// Consulted every instruction: fully live.
		case read[sr.Name]:
			// Explicitly read somewhere in the image: fully live.
		case sr.Name == "CR0":
			// Never moved to a GPR, but PE is consulted implicitly.
			info.InertMask = fullMask(sr.Bits) &^ cisc.CR0PE
		default:
			info.InertMask = fullMask(sr.Bits)
		}
		infos = append(infos, info)
	}
	return infos
}

// riscSysRegModel builds the G4-class read model. Implicit consults: the
// MSR's EE/PR/ME/IR/DR bits by the execution and interrupt paths; HID0's
// BTIC bit by the branch-target cache; and the exception-delivery vetting's
// SPRG2 (full), SDR1 (HTABORG field), and IBAT0U/DBAT0U (BEPI + valid
// bits). Explicit reads are decoded from the image: mfmsr makes the whole
// MSR live, mfspr makes the named SPR live. Everything else — DEC, the
// time base, DAR/DSISR, SRR0/SRR1 (rfi restores from the stack frame, not
// the save/restore registers), the remaining BATs, and the performance
// monitor — is written by the core at most, never read.
func riscSysRegModel(img *cc.Image) []SysRegInfo {
	read := map[string]bool{}
	scanImage(img, func(addr uint32, code []byte) int {
		if len(code) < 4 {
			return 0
		}
		in, err := risc.Decode(beWord(code))
		if err != nil {
			return 0
		}
		switch in.Op {
		case risc.OpMFSPR:
			read[risc.SprName(in.SPR)] = true
		case risc.OpMFMSR:
			read["MSR"] = true
		}
		return 4
	})
	liveBits := map[string]uint32{
		"MSR":    risc.MSREE | risc.MSRPR | risc.MSRME | risc.MSRIR | risc.MSRDR,
		"HID0":   risc.HID0BTIC,
		"SPRG2":  ^uint32(0),
		"SDR1":   risc.SDR1LiveMask,
		"IBAT0U": risc.BATLiveMask,
		"DBAT0U": risc.BATLiveMask,
	}
	var infos []SysRegInfo
	for _, sr := range risc.SystemRegisters() {
		info := SysRegInfo{Name: sr.Name, Bits: sr.Bits}
		if !read[sr.Name] {
			info.InertMask = fullMask(sr.Bits) &^ liveBits[sr.Name]
		}
		infos = append(infos, info)
	}
	return infos
}

// scanImage walks every function's code bytes (glue stubs included) the way
// the classifiers do: sequential decode, stopping a function at the first
// undecodable byte. step returns the decoded length, or 0 to stop.
func scanImage(img *cc.Image, step func(addr uint32, code []byte) int) {
	for _, fn := range img.Funcs {
		if fn.Start < img.CodeBase || uint64(fn.End-img.CodeBase) > uint64(len(img.Code)) || fn.End < fn.Start {
			continue
		}
		code := img.Code[fn.Start-img.CodeBase : fn.End-img.CodeBase]
		for off := 0; off < len(code); {
			n := step(fn.Start+uint32(off), code[off:])
			if n <= 0 {
				break
			}
			off += n
		}
	}
}
