package staticsense

import (
	"testing"

	"kfi/internal/cc"
	"kfi/internal/cisc"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/kir"
	"kfi/internal/workload"
)

// findOpcode locates an opcode byte for (op, format) in the dense table.
func findOpcode(t *testing.T, op cisc.Op, format cisc.Format) byte {
	t.Helper()
	for b := 0; b < 256; b++ {
		if o, f, ok := cisc.Lookup(byte(b)); ok && o == op && f == format {
			return byte(b)
		}
	}
	t.Fatalf("no opcode for op %v format %v", op, format)
	return 0
}

// ciscImage assembles a synthetic one-function CISC image.
func ciscImage(code []byte) *cc.Image {
	const base = 0x1000
	return &cc.Image{
		Platform: isa.CISC,
		Code:     code,
		CodeBase: base,
		Funcs:    []cc.FuncRange{{Name: "f", Start: base, End: base + uint32(len(code))}},
	}
}

func TestClassifyCISCSynthetic(t *testing.T) {
	movRR := findOpcode(t, cisc.OpMOV, cisc.FRR)   // 2 bytes: op, mod
	movRI := findOpcode(t, cisc.OpMOV, cisc.FRI32) // 6 bytes: op, mod, imm32
	ret := findOpcode(t, cisc.OpRET, cisc.FNone)   // 1 byte

	// mov ebx, ecx ; mov ebx, 0x11223344 ; ret
	// (FRR packs R1 in the high nibble; FRI32 keeps the register in the
	// low 3 bits of its mod byte.)
	code := []byte{movRR, 0x31, movRI, 0x03, 0x44, 0x33, 0x22, 0x11, ret}
	an, err := New(ciscImage(code))
	if err != nil {
		t.Fatal(err)
	}
	const i0, i1 = 0x1000, 0x1002

	cases := []struct {
		name    string
		addr    uint32
		byteOff uint8
		bit     uint
		class   Class
		inert   bool
	}{
		{"spare high mod bit", i0, 1, 7, ClassInertEncoding, true},
		{"spare low mod bit", i0, 1, 3, ClassInertEncoding, true},
		// Source register ecx -> eax: ebx still written, and killed by the
		// following mov ebx, imm32 before anything reads it.
		{"dead source change", i0, 1, 0, ClassDeadValue, true},
		// Destination ebx -> edx: edx is written and never overwritten
		// before the ret barrier, so the flip is live.
		{"live dest change", i0, 1, 4, ClassRegField, false},
		// Immediate byte of the second mov: ebx stays live to the caller.
		{"live immediate", i1, 2, 0, ClassImmediate, false},
	}
	for _, tc := range cases {
		p := an.ClassifyFlip(tc.addr, tc.byteOff, tc.bit)
		if p.Class != tc.class || p.Inert != tc.inert {
			t.Errorf("%s: got class=%v inert=%v (%s), want class=%v inert=%v",
				tc.name, p.Class, p.Inert, p.Detail, tc.class, tc.inert)
		}
	}
}

func TestClassifyUnknowns(t *testing.T) {
	movRR := findOpcode(t, cisc.OpMOV, cisc.FRR)
	ret := findOpcode(t, cisc.OpRET, cisc.FNone)
	an, err := New(ciscImage([]byte{movRR, 0x31, ret}))
	if err != nil {
		t.Fatal(err)
	}
	if p := an.ClassifyFlip(0x1001, 0, 0); p.Class != ClassUnknown {
		t.Errorf("mid-instruction address: got %v, want unknown", p.Class)
	}
	if p := an.ClassifyFlip(0x1000, 2, 0); p.Class != ClassUnknown {
		t.Errorf("byte offset beyond instruction: got %v, want unknown", p.Class)
	}
	if p := an.ClassifyFlip(0x9999, 0, 0); p.Class != ClassUnknown {
		t.Errorf("foreign address: got %v, want unknown", p.Class)
	}
}

// riscWord encodes instruction words for a synthetic RISC image.
func riscImage(words []uint32) *cc.Image {
	const base = 0x2000
	code := make([]byte, 4*len(words))
	for i, w := range words {
		code[4*i] = byte(w >> 24)
		code[4*i+1] = byte(w >> 16)
		code[4*i+2] = byte(w >> 8)
		code[4*i+3] = byte(w)
	}
	return &cc.Image{
		Platform: isa.RISC,
		Code:     code,
		CodeBase: base,
		Funcs:    []cc.FuncRange{{Name: "f", Start: base, End: base + uint32(len(code))}},
	}
}

func TestClassifyRISCSynthetic(t *testing.T) {
	words := []uint32{
		14<<26 | 5<<21 | 0<<16 | 1,              // addi r5, 0, 1
		31<<26 | 6<<21 | 5<<16 | 5<<11 | 266<<1, // add r6, r5, r5
		14<<26 | 6<<21 | 0<<16 | 7,              // addi r6, 0, 7
		19<<26 | 20<<21 | 16<<1,                 // blr
	}
	an, err := New(riscImage(words))
	if err != nil {
		t.Fatal(err)
	}
	const w0, w1 = 0x2000, 0x2004

	// rawBit maps an instruction bit (IBM bit 31-n) to (byteOff, bit) of
	// the big-endian memory layout.
	rawBit := func(n uint) (uint8, uint) { return uint8(3 - n/8), n % 8 }

	cases := []struct {
		name  string
		addr  uint32
		bitN  uint
		class Class
		inert bool
	}{
		// The executor never evaluates Rc on X-form ALU ops.
		{"rc bit ignored", w1, 0, ClassInertEncoding, true},
		// rb r5 -> r4: r6 is still the destination, killed by the addi.
		{"dead rb change", w1, 11, ClassDeadValue, true},
		// rd r6 -> r7: r7 survives to the blr barrier.
		{"live rd change", w1, 21, ClassRegField, false},
		// addi immediate: r5 is read by the following add.
		{"live immediate", w0, 1, ClassImmediate, false},
		// xo 266 -> 267 decodes to nothing.
		{"invalid xo", w1, 1, ClassInvalid, false},
	}
	for _, tc := range cases {
		off, bit := rawBit(tc.bitN)
		p := an.ClassifyFlip(tc.addr, off, bit)
		if p.Class != tc.class || p.Inert != tc.inert {
			t.Errorf("%s: got class=%v inert=%v (%s), want class=%v inert=%v",
				tc.name, p.Class, p.Inert, p.Detail, tc.class, tc.inert)
		}
	}
}

// buildKernelImage compiles the benchmark workload and kernel for p.
func buildKernelImage(t *testing.T, p isa.Platform) *cc.Image {
	t.Helper()
	uimg, err := cc.Compile(workload.Program(1), p, kernel.UserBases)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := kernel.BuildSystem(p, uimg, workload.StandardProcs(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sys.KernelImage
}

func TestSweepRealKernels(t *testing.T) {
	for _, p := range []isa.Platform{isa.CISC, isa.RISC} {
		an, err := New(buildKernelImage(t, p))
		if err != nil {
			t.Fatal(err)
		}
		r := an.Sweep()
		if r.Sites == 0 {
			t.Fatalf("%v: sweep found no candidate sites", p)
		}
		if r.Inert == 0 {
			t.Errorf("%v: sweep predicts no inert flips; expected some (spare encoding bits exist on both ISAs)", p)
		}
		if n := r.ByClass[ClassInertEncoding.String()]; n == 0 {
			t.Errorf("%v: no inert-encoding sites found", p)
		}
		if got := r.InertFrac(); got <= 0 || got >= 0.9 {
			t.Errorf("%v: implausible inert fraction %.3f", p, got)
		}
		sum := 0
		for _, n := range r.ByClass {
			sum += n
		}
		if sum != r.Sites {
			t.Errorf("%v: class counts sum to %d, want %d", p, sum, r.Sites)
		}
		t.Logf("\n%s", r.Render())
	}
}

// TestSweepLabelsHardenedImages: a sweep over a hardened kernel carries the
// Hardened label (derived from the synthesized detector symbol), and the
// hardening checks visibly enlarge the classified injection space.
func TestSweepLabelsHardenedImages(t *testing.T) {
	plainAn, err := New(buildKernelImage(t, isa.RISC))
	if err != nil {
		t.Fatal(err)
	}
	plain := plainAn.Sweep()
	if plain.Hardened {
		t.Fatal("unhardened sweep labeled hardened")
	}
	uimg, err := cc.Compile(workload.Program(1), isa.RISC, kernel.UserBases)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := kernel.BuildSystem(isa.RISC, uimg, workload.StandardProcs(),
		kernel.Options{Harden: kir.HardenOpts{Dup: true, CFSig: true}})
	if err != nil {
		t.Fatal(err)
	}
	an, err := New(sys.KernelImage)
	if err != nil {
		t.Fatal(err)
	}
	r := an.Sweep()
	if !r.Hardened {
		t.Error("hardened sweep not labeled hardened")
	}
	if r.Sites <= plain.Sites {
		t.Errorf("hardened sweep has %d sites, want more than the unhardened %d", r.Sites, plain.Sites)
	}
}
