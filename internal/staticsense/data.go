package staticsense

import (
	"fmt"
	"sort"

	"kfi/internal/cc"
	"kfi/internal/kir"
)

// This file implements the data-target half of the whole-target analysis: a
// conservative whole-program access analysis over the (post-hardening) KIR
// program that proves, per byte of the static data and bss sections, whether
// any kernel instruction, glue path, or host access can ever read or write
// it. Bytes in words nothing touches are ClassUnreferenced; bytes that may
// be written but are provably never read are ClassDeadStore; everything else
// stays ClassUnknown.
//
// Soundness rests on two structural properties of the kernel program,
// documented in DESIGN.md §17 and validated by the differential campaign
// test: globals are only addressable through KGlobalAddr (no integer-to-
// pointer forging), and derived pointers stay within the extent of the
// global they were derived from. Anything the analysis cannot track — a
// pointer stored to memory, passed to a call, returned, or blurred by
// untracked arithmetic — escapes, and escaped globals are marked fully read
// and written.

// accessInfo records per-byte read/write reachability for one global.
type accessInfo struct {
	read    []bool
	written []bool
}

func (ai *accessInfo) markFull() {
	for i := range ai.read {
		ai.read[i] = true
		ai.written[i] = true
	}
}

// accessMap is the whole-program analysis result.
type accessMap struct {
	layout kir.Layout
	// globals holds per-byte access bits for every non-heap global.
	globals map[string]*accessInfo
	// escaped globals had their address stored, passed, or returned; they
	// are marked fully accessed after analysis.
	escaped map[string]bool
	// procRead/procWritten record task_struct field accesses by index. The
	// struct's instances live on the kernel stacks, outside any global, so
	// they are tracked by field identity rather than by address.
	procRead    map[int]bool
	procWritten map[int]bool
}

// maxOffs bounds the tracked offset set per (register, global) pair;
// larger sets widen to the whole global.
const maxOffs = 8

// offsets abstracts the byte offsets a pointer may carry into one global:
// an optional element stride (from KIndex) plus a small set of base
// offsets, widening to star (any offset) when tracking is lost.
type offsets struct {
	star   bool
	stride uint32
	offs   map[int64]struct{}
}

func (o *offsets) clone() *offsets {
	n := &offsets{star: o.star, stride: o.stride}
	if o.offs != nil {
		n.offs = make(map[int64]struct{}, len(o.offs))
		for k := range o.offs {
			n.offs[k] = struct{}{}
		}
	}
	return n
}

// join merges other into o, reporting whether o changed.
func (o *offsets) join(other *offsets) bool {
	if o.star {
		return false
	}
	if other.star {
		o.star = true
		o.offs = nil
		return true
	}
	changed := false
	if other.stride != 0 {
		if o.stride == 0 {
			o.stride = other.stride
			changed = true
		} else if o.stride != other.stride {
			o.star = true
			o.offs = nil
			return true
		}
	}
	for k := range other.offs {
		if _, ok := o.offs[k]; !ok {
			if o.offs == nil {
				o.offs = map[int64]struct{}{}
			}
			o.offs[k] = struct{}{}
			changed = true
		}
	}
	if len(o.offs) > maxOffs {
		o.star = true
		o.offs = nil
		return true
	}
	return changed
}

// shift returns a copy with every base offset moved by delta.
func (o *offsets) shift(delta int64) *offsets {
	if o.star {
		return &offsets{star: true}
	}
	n := &offsets{stride: o.stride, offs: make(map[int64]struct{}, len(o.offs))}
	for k := range o.offs {
		n.offs[k+delta] = struct{}{}
	}
	return n
}

// indexed returns a copy carrying an additional element stride.
func (o *offsets) indexed(stride uint32) *offsets {
	if o.star || stride == 0 {
		return &offsets{star: true}
	}
	n := o.clone()
	if n.stride == 0 {
		n.stride = stride
	} else if n.stride != stride {
		return &offsets{star: true}
	}
	return n
}

// blur widens all offsets to star (untracked pointer arithmetic).
func (o *offsets) blur() *offsets { return &offsets{star: true} }

// ptrVal is the abstract value of one virtual register: the set of globals
// it may point into, each with tracked offsets. Non-pointer values are the
// empty set; values loaded from memory or produced by calls are "top" —
// they may point anywhere, but only at escaped globals, which are marked
// fully accessed regardless.
type ptrVal struct {
	globs map[string]*offsets
}

func (v *ptrVal) joinGlob(name string, o *offsets) bool {
	if v.globs == nil {
		v.globs = map[string]*offsets{}
	}
	cur, ok := v.globs[name]
	if !ok {
		v.globs[name] = o.clone()
		return true
	}
	return cur.join(o)
}

func (v *ptrVal) joinVal(other *ptrVal, transform func(*offsets) *offsets) bool {
	changed := false
	for name, o := range other.globs {
		if v.joinGlob(name, transform(o)) {
			changed = true
		}
	}
	return changed
}

func ident(o *offsets) *offsets { return o }

// analyzeProgram runs the access analysis over every function and applies
// the host-access conventions.
func analyzeProgram(prog *kir.Program, layout kir.Layout, proc *kir.Struct, hostRead, hostReadFields []string) *accessMap {
	am := &accessMap{
		layout:      layout,
		globals:     map[string]*accessInfo{},
		escaped:     map[string]bool{},
		procRead:    map[int]bool{},
		procWritten: map[int]bool{},
	}
	tracked := map[string]*kir.Global{}
	for _, g := range prog.Globals {
		if g.Heap {
			continue
		}
		size := layout.GlobalSize(g)
		am.globals[g.Name] = &accessInfo{read: make([]bool, size), written: make([]bool, size)}
		tracked[g.Name] = g
	}
	structs := map[string]*kir.Struct{}
	for _, s := range prog.Structs {
		structs[s.Name] = s
	}
	fa := &funcAnalysis{am: am, structs: structs, proc: proc}
	for _, f := range prog.Funcs {
		fa.run(f)
	}
	// Escaped globals may be reached through any loaded or passed pointer:
	// every byte is reachable for both reads and writes.
	for name := range am.escaped {
		if ai := am.globals[name]; ai != nil {
			ai.markFull()
		}
	}
	// Host accesses bypass compiled code entirely; treat them as full
	// accesses of the named globals and task fields.
	for _, name := range hostRead {
		if ai := am.globals[name]; ai != nil {
			ai.markFull()
		}
	}
	if proc != nil {
		for _, fname := range hostReadFields {
			if i := proc.FieldIndex(fname); i >= 0 {
				am.procRead[i] = true
				am.procWritten[i] = true
			}
		}
	}
	return am
}

// funcAnalysis runs one function's flow-insensitive points-to fixpoint and
// then records accesses and escapes with the converged values.
type funcAnalysis struct {
	am      *accessMap
	structs map[string]*kir.Struct
	proc    *kir.Struct
	vals    []ptrVal
}

func (fa *funcAnalysis) run(f *kir.Func) {
	fa.vals = make([]ptrVal, f.NumRegs()+1)
	// Phase 1: propagate pointer values to a fixpoint. The lattice is
	// finite (per register: bounded offset sets per global, monotone
	// joins), so this terminates; the cap is a safety net only.
	for iter := 0; iter < 1000; iter++ {
		if !fa.pass(f, false) {
			break
		}
	}
	// Phase 2: record accesses and escapes using the converged values.
	fa.pass(f, true)
}

func (fa *funcAnalysis) val(r kir.Reg) *ptrVal {
	if int(r) <= 0 || int(r) >= len(fa.vals) {
		return &ptrVal{}
	}
	return &fa.vals[r]
}

// assign joins src (through transform) into dst, reporting change.
func (fa *funcAnalysis) assign(dst kir.Reg, src *ptrVal, transform func(*offsets) *offsets) bool {
	if int(dst) <= 0 || int(dst) >= len(fa.vals) {
		return false
	}
	return fa.vals[dst].joinVal(src, transform)
}

func (fa *funcAnalysis) pass(f *kir.Func, record bool) bool {
	changed := false
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if fa.step(&b.Instrs[i], record) {
				changed = true
			}
		}
	}
	return changed
}

func (fa *funcAnalysis) fieldExtent(sym string, field int) (*kir.Struct, uint32, uint32, bool) {
	s := fa.structs[sym]
	if s == nil || field < 0 || field >= len(s.Fields) {
		return nil, 0, 0, false
	}
	off := fa.am.layout.FieldOffset(s, field)
	fl := s.Fields[field]
	n := fl.Count
	if n <= 1 {
		n = 1
	}
	return s, off, uint32(fl.Width) * uint32(n), true
}

func (fa *funcAnalysis) step(in *kir.Instr, record bool) bool {
	switch in.Kind {
	case kir.KGlobalAddr:
		o := &offsets{offs: map[int64]struct{}{int64(in.Imm): {}}}
		if _, tracked := fa.am.globals[in.Sym]; !tracked {
			return false // heap global: outside the static data space
		}
		return fa.val(in.Dst).joinGlob(in.Sym, o)
	case kir.KMov:
		return fa.assign(in.Dst, fa.val(in.A), ident)
	case kir.KBinImm:
		switch in.Bin {
		case kir.Add:
			d := int64(in.Imm)
			return fa.assign(in.Dst, fa.val(in.A), func(o *offsets) *offsets { return o.shift(d) })
		case kir.Sub:
			d := -int64(in.Imm)
			return fa.assign(in.Dst, fa.val(in.A), func(o *offsets) *offsets { return o.shift(d) })
		default:
			return fa.assign(in.Dst, fa.val(in.A), (*offsets).blur)
		}
	case kir.KBin:
		c := fa.assign(in.Dst, fa.val(in.A), (*offsets).blur)
		if fa.assign(in.Dst, fa.val(in.B), (*offsets).blur) {
			c = true
		}
		return c
	case kir.KFieldAddr:
		_, off, _, ok := fa.fieldExtent(in.Sym, in.Field)
		if !ok {
			return fa.assign(in.Dst, fa.val(in.A), (*offsets).blur)
		}
		if record {
			fa.markProcField(in.Sym, in.Field, true, true)
		}
		d := int64(off)
		return fa.assign(in.Dst, fa.val(in.A), func(o *offsets) *offsets { return o.shift(d) })
	case kir.KIndex:
		s := fa.structs[in.Sym]
		if s == nil {
			return fa.assign(in.Dst, fa.val(in.A), (*offsets).blur)
		}
		stride := fa.am.layout.StructSize(s)
		return fa.assign(in.Dst, fa.val(in.A), func(o *offsets) *offsets { return o.indexed(stride) })
	case kir.KLoad:
		if record {
			fa.markAccess(fa.val(in.A), int64(in.Imm), uint32(in.Width), true)
		}
		return false
	case kir.KStore:
		if record {
			fa.markAccess(fa.val(in.A), int64(in.Imm), uint32(in.Width), false)
			fa.escape(fa.val(in.B))
		}
		return false
	case kir.KLoadField:
		if record {
			if _, off, size, ok := fa.fieldExtent(in.Sym, in.Field); ok {
				fa.markAccess(fa.val(in.A), int64(off), size, true)
			}
			fa.markProcField(in.Sym, in.Field, true, false)
		}
		return false
	case kir.KStoreField:
		if record {
			if _, off, size, ok := fa.fieldExtent(in.Sym, in.Field); ok {
				fa.markAccess(fa.val(in.A), int64(off), size, false)
			}
			fa.markProcField(in.Sym, in.Field, false, true)
			fa.escape(fa.val(in.B))
		}
		return false
	case kir.KCall, kir.KCallPtr, kir.KSyscall:
		if record {
			for _, arg := range in.Args {
				fa.escape(fa.val(arg))
			}
			if in.Kind == kir.KCallPtr {
				fa.escape(fa.val(in.A))
			}
		}
		return false
	case kir.KCtxSw:
		if record {
			fa.escape(fa.val(in.A))
			fa.escape(fa.val(in.B))
		}
		return false
	case kir.KRet:
		if record && in.A != 0 {
			fa.escape(fa.val(in.A))
		}
		return false
	default:
		// KConst, KCmp, KCmpImm, KLocalAddr, KFuncAddr, KJmp, KBr, KIrqOff,
		// KIrqOn, KHalt, KBug: no global pointers produced or consumed.
		return false
	}
}

// markProcField records a task_struct field access when the instruction's
// struct tag names the Proc type, regardless of what the base pointer
// resolves to — task_struct instances live on kernel stacks, outside every
// global extent.
func (fa *funcAnalysis) markProcField(sym string, field int, read, written bool) {
	if fa.proc == nil || sym != fa.proc.Name {
		return
	}
	if read {
		fa.am.procRead[field] = true
	}
	if written {
		fa.am.procWritten[field] = true
	}
}

// escape records that the registers' pointed-to globals may now be reached
// through memory, another function, or the host.
func (fa *funcAnalysis) escape(v *ptrVal) {
	for name := range v.globs {
		fa.am.escaped[name] = true
	}
}

// markAccess records a read or write of `size` bytes at every offset the
// pointer may carry, plus imm. Offsets that leave the global's extent are
// ignored: by the memory-safety convention a derived pointer is only
// dereferenced inside its base global, so an out-of-extent offset means the
// path is infeasible for that global.
func (fa *funcAnalysis) markAccess(v *ptrVal, imm int64, size uint32, read bool) {
	for name, o := range v.globs {
		ai := fa.am.globals[name]
		if ai == nil {
			continue
		}
		glen := int64(len(ai.read))
		mark := func(start int64) {
			if start < 0 || start+int64(size) > glen {
				return
			}
			for b := start; b < start+int64(size); b++ {
				if read {
					ai.read[b] = true
				} else {
					ai.written[b] = true
				}
			}
		}
		if o.star {
			ai.markFull()
			continue
		}
		for base := range o.offs {
			if o.stride == 0 {
				mark(base + imm)
				continue
			}
			for n := int64(0); base+n*int64(o.stride)+imm < glen; n++ {
				mark(base + n*int64(o.stride) + imm)
			}
		}
	}
}

// extent locates one global in the linked image's data or bss section.
type extent struct {
	name       string
	start, end uint32 // [start, end)
}

func buildExtents(prog *kir.Program, img *cc.Image) []extent {
	var exts []extent
	for _, g := range prog.Globals {
		if g.Heap {
			continue
		}
		addr, ok := img.Syms[g.Name]
		if !ok {
			continue
		}
		exts = append(exts, extent{name: g.Name, start: addr, end: addr + img.Layout.GlobalSize(g)})
	}
	sort.Slice(exts, func(i, j int) bool { return exts[i].start < exts[j].start })
	return exts
}

// byteAccess resolves one absolute data/bss address to its access bits.
// Bytes in no global's extent are alignment padding: never accessed.
func (a *Analyzer) byteAccess(addr uint32) (read, written bool) {
	i := sort.Search(len(a.extents), func(i int) bool { return a.extents[i].end > addr })
	if i >= len(a.extents) || addr < a.extents[i].start {
		return false, false
	}
	e := a.extents[i]
	ai := a.acc.globals[e.name]
	if ai == nil {
		return true, true
	}
	off := addr - e.start
	return ai.read[off], ai.written[off]
}

func (a *Analyzer) inDataSpace(addr uint32) bool {
	if addr >= a.img.DataBase && addr < a.img.DataBase+uint32(len(a.img.Data)) {
		return true
	}
	return addr >= a.img.BSSBase && addr < a.img.BSSBase+a.img.BSSSize
}

// ClassifyData classifies a single-bit flip of the byte at addr in the
// kernel's static data or bss section — the shape of a CampData injection
// target. The verdict is byte-granular (bit is accepted for interface
// symmetry): a flip in a word nothing ever touches is ClassUnreferenced, a
// flip in a byte that may be written but is never read is ClassDeadStore,
// anything else is ClassUnknown.
func (a *Analyzer) ClassifyData(addr uint32, bit uint) Prediction {
	_ = bit
	if a.acc == nil {
		return Prediction{Class: ClassUnknown, Detail: "no program access model (code-only analyzer)"}
	}
	word := addr &^ 3
	if !a.inDataSpace(word) || !a.inDataSpace(word+3) {
		return Prediction{Class: ClassUnknown, Detail: "outside the static data and bss sections"}
	}
	anyAccess, selfRead := false, false
	for b := word; b < word+4; b++ {
		r, w := a.byteAccess(b)
		if r || w {
			anyAccess = true
		}
		if b == addr {
			selfRead = r
		}
	}
	switch {
	case !anyAccess:
		return Prediction{Class: ClassUnreferenced, Inert: true,
			Detail: "no kernel instruction, glue path, or host access touches this word"}
	case !selfRead:
		return Prediction{Class: ClassDeadStore, Inert: true,
			Detail: "byte may be written but is provably never read"}
	default:
		return Prediction{Class: ClassUnknown, Detail: fmt.Sprintf("byte at %#x is read by the kernel", addr)}
	}
}
