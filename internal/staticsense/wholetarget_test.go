package staticsense

import (
	"math/bits"
	"reflect"
	"testing"

	"kfi/internal/cc"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/risc"
	"kfi/internal/workload"
)

// buildWholeSystem compiles the benchmark workload and kernel for p and
// returns the full system, not just the image — the whole-target analyzer
// needs the KIR program, the task layout, and the host-access conventions.
func buildWholeSystem(t *testing.T, p isa.Platform) *kernel.System {
	t.Helper()
	uimg, err := cc.Compile(workload.Program(1), p, kernel.UserBases)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := kernel.BuildSystem(p, uimg, workload.StandardProcs(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func wholeAnalyzer(t *testing.T, sys *kernel.System) *Analyzer {
	t.Helper()
	an, err := NewAnalyzer(Config{
		Image:              sys.KernelImage,
		Prog:               sys.Prog,
		Proc:               sys.Src.Proc,
		KStackSize:         sys.KStackSize,
		HostReadGlobals:    kernel.HostReadGlobals(),
		HostReadTaskFields: kernel.HostReadTaskFields(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func TestClassInertPartition(t *testing.T) {
	inert := map[Class]bool{
		ClassDeadValue: true, ClassInertEncoding: true,
		ClassDeadStore: true, ClassUnreferenced: true, ClassMaskedReg: true,
	}
	for _, c := range Classes() {
		if got := c.Inert(); got != inert[c] {
			t.Errorf("%v.Inert() = %v, want %v", c, got, inert[c])
		}
	}
}

func TestClassifyDataRealKernel(t *testing.T) {
	sys := buildWholeSystem(t, isa.RISC)
	an := wholeAnalyzer(t, sys)
	img := sys.KernelImage

	// Outside the static data and bss sections nothing is claimed.
	if p := an.ClassifyData(img.CodeBase, 0); p.Class != ClassUnknown || p.Inert {
		t.Errorf("code address classified %v inert=%v, want unknown", p.Class, p.Inert)
	}

	// Host-read globals are live even if no kernel instruction reads them.
	cur, ok := img.Syms["current"]
	if !ok {
		t.Fatal("kernel image has no `current` symbol")
	}
	if p := an.ClassifyData(cur, 0); p.Class != ClassUnknown || p.Inert {
		t.Errorf("host-read global classified %v inert=%v, want unknown", p.Class, p.Inert)
	}

	// The access analysis must prove some of the data space untouched, and
	// every data verdict must be one of the three data classes.
	found := map[Class]int{}
	scan := func(base, size uint32) {
		for addr := base; addr < base+size; addr++ {
			p := an.ClassifyData(addr, 0)
			switch p.Class {
			case ClassUnknown, ClassUnreferenced, ClassDeadStore:
				found[p.Class]++
				if p.Inert != (p.Class != ClassUnknown) {
					t.Fatalf("class %v at %#x has Inert=%v", p.Class, addr, p.Inert)
				}
			default:
				t.Fatalf("data byte %#x classified %v — not a data-target class", addr, p.Class)
			}
		}
	}
	scan(img.DataBase, uint32(len(img.Data)))
	scan(img.BSSBase, img.BSSSize)
	if found[ClassUnreferenced] == 0 {
		t.Error("access analysis proved no data byte unreferenced")
	}
	if found[ClassUnknown] == 0 {
		t.Error("access analysis claims the kernel reads no data at all")
	}

	// A code-only analyzer stays conservative on every data address.
	codeOnly, err := New(img)
	if err != nil {
		t.Fatal(err)
	}
	if p := codeOnly.ClassifyData(img.DataBase, 0); p.Class != ClassUnknown || p.Inert {
		t.Errorf("code-only ClassifyData = %v inert=%v, want unknown", p.Class, p.Inert)
	}
}

func TestClassifyStackByteRealKernel(t *testing.T) {
	sys := buildWholeSystem(t, isa.CISC)
	an := wholeAnalyzer(t, sys)
	proc := sys.Src.Proc
	layout := sys.KernelImage.Layout
	taskSize := layout.StructSize(proc)
	if taskSize == 0 || taskSize >= sys.KStackSize {
		t.Fatalf("implausible task_struct size %d (stack %d)", taskSize, sys.KStackSize)
	}

	// Above the task area is live stack: always unknown.
	if p := an.ClassifyStackByte(sys.KStackSize - 4); p.Class != ClassUnknown || p.Inert {
		t.Errorf("live stack byte classified %v inert=%v, want unknown", p.Class, p.Inert)
	}

	// Host-read task fields are live even without a kernel-code read.
	for _, name := range kernel.HostReadTaskFields() {
		fi := proc.FieldIndex(name)
		if fi < 0 {
			t.Fatalf("task_struct has no field %q", name)
		}
		off := layout.FieldOffset(proc, fi)
		if p := an.ClassifyStackByte(off); p.Class != ClassUnknown || p.Inert {
			t.Errorf("host-read field %q classified %v inert=%v, want unknown", name, p.Class, p.Inert)
		}
	}

	// Some of the task area must be provably inert (padding or unaccessed
	// fields), and verdicts stay within the stack-target classes.
	inert := 0
	for off := uint32(0); off < taskSize; off++ {
		p := an.ClassifyStackByte(off)
		switch p.Class {
		case ClassUnknown, ClassUnreferenced, ClassDeadStore:
			if p.Inert {
				inert++
			}
		default:
			t.Fatalf("stack byte %d classified %v — not a stack-target class", off, p.Class)
		}
	}
	if inert == 0 {
		t.Error("no task_struct byte predicted inert")
	}

	// A code-only analyzer has no task layout model.
	codeOnly, err := New(sys.KernelImage)
	if err != nil {
		t.Fatal(err)
	}
	if p := codeOnly.ClassifyStackByte(0); p.Class != ClassUnknown || p.Inert {
		t.Errorf("code-only ClassifyStackByte = %v inert=%v, want unknown", p.Class, p.Inert)
	}
}

func TestClassifySysRegRealKernels(t *testing.T) {
	for _, p := range []isa.Platform{isa.CISC, isa.RISC} {
		sys := buildWholeSystem(t, p)
		an := wholeAnalyzer(t, sys)

		if pr := an.ClassifySysReg("NOSUCHREG", 0); pr.Class != ClassUnknown || pr.Inert {
			t.Errorf("%v: unknown register classified %v inert=%v", p, pr.Class, pr.Inert)
		}

		masked, unknown := 0, 0
		for _, sr := range sys.Machine.SystemRegisters() {
			// A bit beyond the register's width is never claimed inert.
			if pr := an.ClassifySysReg(sr.Name, 64); pr.Class != ClassUnknown || pr.Inert {
				t.Errorf("%v: %s bit 64 classified %v inert=%v", p, sr.Name, pr.Class, pr.Inert)
			}
			for bit := uint(0); bit < sr.Bits; bit++ {
				switch pr := an.ClassifySysReg(sr.Name, bit); pr.Class {
				case ClassMaskedReg:
					masked++
				case ClassUnknown:
					unknown++
				default:
					t.Fatalf("%v: %s bit %d classified %v — not a sysreg class", p, sr.Name, bit, pr.Class)
				}
			}
		}
		if masked == 0 {
			t.Errorf("%v: read model proved no sysreg bit masked", p)
		}
		if unknown == 0 {
			t.Errorf("%v: read model claims every sysreg bit is dead", p)
		}
	}

	// Spot check against the paper's sensitivity structure: the MSR's
	// external-interrupt enable is consulted by the core's delivery path,
	// so the G4 model must keep it live.
	sys := buildWholeSystem(t, isa.RISC)
	an := wholeAnalyzer(t, sys)
	ee := uint(bits.TrailingZeros32(risc.MSREE))
	if pr := an.ClassifySysReg("MSR", ee); pr.Class != ClassUnknown || pr.Inert {
		t.Errorf("MSR EE bit classified %v inert=%v, want unknown", pr.Class, pr.Inert)
	}
}

// TestSweepWholeTarget: the whole-target sweep reports all four target
// classes in the paper's fixed order, its aggregates are the sums of the
// per-target tallies, and unlocking the data/stack/sysreg spaces does not
// perturb the original code-image classification.
func TestSweepWholeTarget(t *testing.T) {
	for _, p := range []isa.Platform{isa.CISC, isa.RISC} {
		sys := buildWholeSystem(t, p)
		an := wholeAnalyzer(t, sys)
		r := an.Sweep()

		want := []string{"code", "data", "stack", "sysreg"}
		if len(r.Targets) != len(want) {
			t.Fatalf("%v: sweep has %d target classes, want %d", p, len(r.Targets), len(want))
		}
		sites, inert := 0, 0
		byClass := map[string]int{}
		for i, tr := range r.Targets {
			if tr.Target != want[i] {
				t.Errorf("%v: target %d is %q, want %q", p, i, tr.Target, want[i])
			}
			if tr.Sites == 0 {
				t.Errorf("%v: %s target has no sites", p, tr.Target)
			}
			sum := 0
			for k, v := range tr.ByClass {
				sum += v
				byClass[k] += v
			}
			if sum != tr.Sites {
				t.Errorf("%v/%s: class counts sum to %d, want %d", p, tr.Target, sum, tr.Sites)
			}
			sites += tr.Sites
			inert += tr.Inert
		}
		if sites != r.Sites || inert != r.Inert {
			t.Errorf("%v: aggregate sites/inert %d/%d, want %d/%d", p, r.Sites, r.Inert, sites, inert)
		}
		if !reflect.DeepEqual(byClass, r.ByClass) {
			t.Errorf("%v: aggregate ByClass %v does not match per-target sum %v", p, r.ByClass, byClass)
		}

		// The stack space is the full per-platform slot, bytes times bits.
		if got, wantSites := r.Targets[2].Sites, int(sys.KStackSize)*8; got != wantSites {
			t.Errorf("%v: stack target has %d sites, want %d", p, got, wantSites)
		}

		// Code classification is identical to the code-only analyzer's.
		codeOnly, err := New(sys.KernelImage)
		if err != nil {
			t.Fatal(err)
		}
		cr := codeOnly.Sweep()
		if cr.Sites != r.Targets[0].Sites || !reflect.DeepEqual(cr.ByClass, r.Targets[0].ByClass) {
			t.Errorf("%v: whole-target code tally diverges from the code-only sweep", p)
		}
	}
}
