package staticsense

import (
	"fmt"

	"kfi/internal/cc"
	"kfi/internal/risc"
)

// riscAlwaysLive keeps r1 (the stack pointer) out of every dead set:
// exception entry and the kernel glue reach through it at arbitrary
// instruction boundaries.
const riscAlwaysLive = regSet(1 << risc.SP)

// riscInstr caches one statically decoded word.
type riscInstr struct {
	inst risc.Inst
	ok   bool // whether the word decodes at all
}

// riscClassifier owns the fixed-width decode tables for one image.
type riscClassifier struct {
	img    *cc.Image
	instrs map[uint32]riscInstr
}

func newRISCClassifier(img *cc.Image) Classifier {
	return &riscClassifier{
		img:    img,
		instrs: make(map[uint32]riscInstr, len(img.Code)/4),
	}
}

// AddFunc mirrors the campaign generator's boundary recovery: one site per
// aligned 4-byte word.
func (c *riscClassifier) AddFunc(code []byte, base uint32) {
	for off := uint32(0); off+4 <= uint32(len(code)); off += 4 {
		in, err := risc.Decode(beWord(code[off:]))
		c.instrs[base+off] = riscInstr{inst: in, ok: err == nil}
	}
}

func (c *riscClassifier) Sites() []Site {
	out := make([]Site, 0, len(c.instrs))
	for addr := range c.instrs {
		out = append(out, Site{Addr: addr, Size: 4})
	}
	return out
}

// Classify classifies one flip in a fixed-width 32-bit word. The word is
// stored big-endian (see asm.go), so memory byte k holds instruction bits
// [31-8k .. 24-8k]. Alignment makes mid-instruction entry impossible, which
// removes the CISC resync hazards: there is no length class here.
func (c *riscClassifier) Classify(addr uint32, byteOff uint8, bit uint) Prediction {
	info := c.instrs[addr]
	if !info.ok {
		return Prediction{Class: ClassUnknown, Detail: "original word does not decode"}
	}
	orig := info.inst
	off := addr - c.img.CodeBase
	raw := beWord(c.img.Code[off:])
	flipped := raw ^ 1<<(bit+8*uint(3-byteOff))

	flip, err := risc.Decode(flipped)
	if err != nil {
		return Prediction{Class: ClassInvalid, Detail: "flipped word does not decode (program check)"}
	}
	vo, okO := risc.ExecView(orig)
	vf, okF := risc.ExecView(flip)
	if okO && okF && vo == vf {
		// Equal views imply equal Op, and the cycle cost is per-Op.
		return Prediction{Class: ClassInertEncoding, Inert: true,
			Detail: "flip lands on a bit the executor ignores"}
	}
	if !okO || !okF {
		if flip.Op != orig.Op {
			return Prediction{Class: ClassOpcode, Detail: "operation changed (unmodeled side)"}
		}
		return Prediction{Class: ClassUnknown, Detail: "operation outside the exec-view model"}
	}

	var cl Class
	switch {
	case flip.Op != orig.Op:
		cl = ClassOpcode
	case vo.RD != vf.RD || vo.RA != vf.RA || vo.RB != vf.RB:
		cl = ClassRegField
	default:
		cl = ClassImmediate
	}
	if p, ok := c.deadValue(addr, orig, flip, cl); ok {
		return p
	}
	return Prediction{Class: cl, Detail: fmt.Sprintf("%s -> %s", orig.Op.Name(), flip.Op.Name())}
}

// deadValue is the fixed-width twin of the CISC classifier's proof: pure,
// equal-cost instruction pair whose written registers are all dead
// downstream.
func (c *riscClassifier) deadValue(addr uint32, orig, flip risc.Inst, cl Class) (Prediction, bool) {
	wOrig, ok := riscPure(orig)
	if !ok {
		return Prediction{}, false
	}
	wFlip, ok := riscPure(flip)
	if !ok {
		return Prediction{}, false
	}
	if orig.Cost() != flip.Cost() {
		return Prediction{}, false
	}
	dest := wOrig | wFlip
	if dest&riscAlwaysLive != 0 {
		return Prediction{}, false
	}
	if !deadAfterScan(dest, addr+4, c.lookupEffects) {
		return Prediction{}, false
	}
	return Prediction{Class: ClassDeadValue, Inert: true,
		Detail: fmt.Sprintf("%s flip, but both versions only write dead registers", cl)}, true
}

// lookupEffects feeds the shared liveness scan.
func (c *riscClassifier) lookupEffects(addr uint32) (uint8, effects, bool) {
	info, ok := c.instrs[addr]
	if !ok {
		return 0, effects{}, false
	}
	return 4, riscEffects(info.inst, info.ok), true
}

// riscPure returns the GPR write set of a pure instruction: GPR-only
// writes, no memory, no CR/XER update, no control transfer, no trap. divw
// is included because the PowerPC divide never traps (undefined results
// are modeled as 0); andi. and every Rc-honouring rlwinm are excluded for
// their CR0 write. The X-form ALU ops are pure even with Rc set — the
// executor ignores the bit entirely (see risc.ExecView).
func riscPure(in risc.Inst) (regSet, bool) {
	switch in.Op {
	case risc.OpADDI, risc.OpADDIS, risc.OpMULLI,
		risc.OpADD, risc.OpSUBF, risc.OpNEG, risc.OpMULLW, risc.OpDIVW:
		return 1 << in.RD, true
	case risc.OpORI, risc.OpORIS, risc.OpXORI:
		return 1 << in.RA, true
	case risc.OpRLWINM:
		if in.Rc {
			return 0, false
		}
		return 1 << in.RA, true
	case risc.OpAND, risc.OpOR, risc.OpXOR, risc.OpNOR,
		risc.OpSLW, risc.OpSRW, risc.OpSRAW, risc.OpSRAWI,
		risc.OpEXTSB, risc.OpEXTSH:
		return 1 << in.RA, true
	}
	return 0, false
}

// riscEffects models one instruction for the liveness scan; same contract
// as ciscEffects (reads over-approximate, kills under-approximate,
// unmodeled ops are barriers). RA reads are recorded even where the
// executor treats ra=0 as a literal zero — a spurious r0 read only costs
// precision.
func riscEffects(in risc.Inst, ok bool) effects {
	if !ok {
		return effects{barrier: true}
	}
	switch in.Op {
	case risc.OpADDI, risc.OpADDIS, risc.OpMULLI,
		risc.OpLWZ, risc.OpLBZ, risc.OpLHZ, risc.OpLHA:
		return effects{reads: 1 << in.RA, kills: 1 << in.RD}
	case risc.OpCMPWI, risc.OpCMPLWI:
		return effects{reads: 1 << in.RA}
	case risc.OpORI, risc.OpORIS, risc.OpXORI, risc.OpANDIRc, risc.OpRLWINM,
		risc.OpSRAWI, risc.OpEXTSB, risc.OpEXTSH:
		return effects{reads: 1 << in.RD, kills: 1 << in.RA}
	case risc.OpSTW, risc.OpSTB, risc.OpSTH:
		return effects{reads: 1<<in.RA | 1<<in.RD}
	case risc.OpSTWU:
		return effects{reads: 1<<in.RA | 1<<in.RD, kills: 1 << in.RA}
	case risc.OpLWZX, risc.OpLBZX, risc.OpLHZX, risc.OpLHAX:
		return effects{reads: 1<<in.RA | 1<<in.RB, kills: 1 << in.RD}
	case risc.OpSTWX, risc.OpSTBX, risc.OpSTHX:
		return effects{reads: 1<<in.RA | 1<<in.RB | 1<<in.RD}
	case risc.OpADD, risc.OpSUBF, risc.OpMULLW, risc.OpDIVW:
		return effects{reads: 1<<in.RA | 1<<in.RB, kills: 1 << in.RD}
	case risc.OpNEG:
		return effects{reads: 1 << in.RA, kills: 1 << in.RD}
	case risc.OpAND, risc.OpOR, risc.OpXOR, risc.OpNOR,
		risc.OpSLW, risc.OpSRW, risc.OpSRAW:
		return effects{reads: 1<<in.RD | 1<<in.RB, kills: 1 << in.RA}
	case risc.OpCMPW, risc.OpCMPLW:
		return effects{reads: 1<<in.RA | 1<<in.RB}
	case risc.OpMFSPR, risc.OpMFMSR, risc.OpMFCR:
		return effects{kills: 1 << in.RD}
	case risc.OpISYNC, risc.OpSYNC:
		return effects{}
	}
	// Branches, sc/rfi, tw/twi, mtspr/mtmsr/mtcrf, ctxsw/halt, illegal.
	return effects{barrier: true}
}
