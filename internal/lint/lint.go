// Package lint implements the repo's own static checks — the invariants the
// type system cannot express but the reproduction depends on:
//
//   - exhaustive outcome switches: any switch statement that dispatches on
//     the inject.Outcome constants must either cover every constant or carry
//     a default clause, so adding an outcome cannot silently fall through a
//     classifier or table builder;
//   - exhaustive class switches: the same rule for the staticsense.Class
//     lattice constants in every package outside internal/staticsense —
//     consumers like the campaign prune-eligibility dispatch must confront
//     each new class explicitly, because a class silently falling through
//     to "not prunable" hides coverage while one falling through to
//     "prunable" is a soundness bug;
//   - deterministic replay paths: packages on the guest-deterministic path
//     (everything a campaign result depends on) must not call time.Now or
//     use math/rand's implicit global source — wall-clock reads and shared
//     RNG state are exactly what breaks bit-identical resume and
//     fork-from-golden equivalence. Seeded rand.New(rand.NewSource(...)) is
//     allowed; tests are exempt.
//   - exhaustive engine switches: the same rule for the platform.EngineKind
//     constants everywhere — an engine kind silently falling through a
//     dispatch (journal header writer, engine constructor, stats reporter)
//     would let a new engine ship half-wired;
//   - no direct Step calls outside the engine packages: the ExecEngine seam
//     exists so every instruction retires through exactly one run loop per
//     engine. A stray core.Step() elsewhere bypasses the selected engine
//     (and its caches and stats), so only the ISA packages and the registry
//     may call Step; everyone else drives a platform.ExecEngine via
//     RunUntil;
//   - no platform dispatch outside the registry: comparing or switching on
//     the platform enum constants (isa.CISC, isa.RISC, kfi.P4, kfi.G4) is
//     how platform-specific behavior leaked across layers before the
//     internal/platform registry existed. New code must resolve behavior
//     through a platform.Descriptor (or a per-layer capability registry)
//     instead; only the ISA packages themselves, the registry, and a short
//     allowlist of intrinsically two-ISA tools may branch on the constants.
//     Data uses — map literals keyed by platform, registrations, constant
//     definitions — are fine; only switch/if dispatch is flagged.
//   - injectable seams in the control plane: internal/ctlplane must read the
//     wall clock only through its Clock seam (clock.go) and must never use
//     net/http's ambient default client or transport — lease expiry is the
//     package's core correctness property and tests drive it with a fake
//     clock and injected transports, so an ambient time.Now or http.Get
//     sneaking in is a test-escape waiting to happen.
//
// The checks are purely syntactic (go/parser, no type checking), so they run
// in milliseconds and cannot be broken by build-tag or module complications.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one lint violation.
type Finding struct {
	File string
	Line int
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s", f.File, f.Line, f.Msg)
}

// deterministicDirs lists the packages on the guest-deterministic path,
// relative to the repo root: everything whose behavior feeds a campaign
// outcome, a journal record, or a resumable schedule.
var deterministicDirs = []string{
	"internal/campaign",
	"internal/cc",
	"internal/cisc",
	"internal/core",
	"internal/inject",
	"internal/isa",
	"internal/kernel",
	"internal/kir",
	"internal/machine",
	"internal/mem",
	"internal/platform",
	"internal/risc",
	"internal/snapshot",
	"internal/staticsense",
	"internal/stats",
	"internal/tracediff",
	"internal/workload",
}

// outcomeSource is the file defining the inject.Outcome constants, relative
// to the repo root.
const outcomeSource = "internal/inject/inject.go"

// classSource is the file defining the staticsense.Class constants, relative
// to the repo root.
const classSource = "internal/staticsense/staticsense.go"

// engineSource is the file defining the platform.EngineKind constants,
// relative to the repo root.
const engineSource = "internal/platform/engine.go"

// stepCallDirs are the packages allowed to call a Step method directly: the
// two ISA implementations (whose run loops and translators are the engines)
// and the registry that defines the Core interface. Everywhere else must
// drive execution through a platform.ExecEngine.
var stepCallDirs = []string{
	"internal/cisc",
	"internal/risc",
	"internal/platform",
}

// platformDispatchDirs are the packages allowed to branch on the platform
// enum: the enum's home, the registry, and the two ISA implementations the
// registry exists to encapsulate.
var platformDispatchDirs = []string{
	"internal/isa",
	"internal/platform",
	"internal/cisc",
	"internal/risc",
}

// platformDispatchAllow lists individual files outside those packages that
// may still dispatch on the enum, each with a reason. Additions need the
// same justification: the file must be intrinsically about the concrete
// ISAs, not about behavior a Descriptor could carry.
var platformDispatchAllow = map[string]string{
	// kfi-asm is a decoder exploration tool: it renders per-ISA flip
	// matrices straight from the cisc/risc decode tables, which no
	// registry interface abstracts (and should not).
	"cmd/kfi-asm/main.go": "decoder-level tool",
}

// Check lints the repository rooted at root and returns every violation,
// sorted by file and line. It fails only on infrastructure errors (missing
// outcome definitions, unparsable files); violations are data, not errors.
func Check(root string) ([]Finding, error) {
	outcomes, err := typedConstants(filepath.Join(root, outcomeSource), "Outcome")
	if err != nil {
		return nil, err
	}
	classes, err := typedConstants(filepath.Join(root, classSource), "Class")
	if err != nil {
		return nil, err
	}
	engines, err := typedConstants(filepath.Join(root, engineSource), "EngineKind")
	if err != nil {
		return nil, err
	}
	var findings []Finding
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == "testdata" || strings.HasPrefix(name, ".") || name == "related" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		findings = append(findings, checkEnumSwitches(fset, file, rel, outcomes, "inject.Outcome")...)
		if !strings.HasPrefix(filepath.ToSlash(rel), "internal/staticsense/") {
			findings = append(findings, checkEnumSwitches(fset, file, rel, classes, "staticsense.Class")...)
		}
		findings = append(findings, checkEnumSwitches(fset, file, rel, engines, "platform.EngineKind")...)
		if !inStepCallDir(rel) {
			findings = append(findings, checkStepCalls(fset, file, rel)...)
		}
		if inDeterministicDir(rel) {
			findings = append(findings, checkDeterminism(fset, file, rel)...)
		}
		if !platformDispatchExempt(rel) {
			findings = append(findings, checkPlatformDispatch(fset, file, rel)...)
		}
		if inCtlplaneSeamScope(rel) {
			findings = append(findings, checkCtlplaneSeams(fset, file, rel)...)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].File != findings[j].File {
			return findings[i].File < findings[j].File
		}
		return findings[i].Line < findings[j].Line
	})
	return findings, nil
}

// typedConstants parses an enum's constant names from its defining file:
// every exported name in a const block whose declared type matches typeName
// (including iota continuations inheriting the type). Unexported names —
// sentinels like the class count — are not part of the public enum and are
// excluded.
func typedConstants(path, typeName string) (map[string]bool, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: parsing %s definitions: %w", typeName, err)
	}
	names := map[string]bool{}
	for _, decl := range file.Decls {
		gen, ok := decl.(*ast.GenDecl)
		if !ok || gen.Tok != token.CONST {
			continue
		}
		isTyped := false
		for _, spec := range gen.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if vs.Type != nil {
				id, ok := vs.Type.(*ast.Ident)
				isTyped = ok && id.Name == typeName
			}
			if !isTyped {
				continue
			}
			for _, n := range vs.Names {
				if n.Name != "_" && ast.IsExported(n.Name) {
					names[n.Name] = true
				}
			}
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no %s constants found in %s", typeName, path)
	}
	return names, nil
}

// checkEnumSwitches flags switch statements that dispatch on an enum's
// constants but neither cover all of them nor carry a default clause.
func checkEnumSwitches(fset *token.FileSet, file *ast.File, rel string, outcomes map[string]bool, label string) []Finding {
	var findings []Finding
	ast.Inspect(file, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		covered := map[string]bool{}
		hasDefault := false
		usesOutcome := false
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			if cc.List == nil {
				hasDefault = true
				continue
			}
			for _, e := range cc.List {
				if name, ok := constName(e); ok && outcomes[name] {
					usesOutcome = true
					covered[name] = true
				}
			}
		}
		if !usesOutcome || hasDefault {
			return true
		}
		var missing []string
		for name := range outcomes {
			if !covered[name] {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			sort.Strings(missing)
			findings = append(findings, Finding{
				File: rel,
				Line: fset.Position(sw.Pos()).Line,
				Msg: fmt.Sprintf("switch over %s misses %s and has no default",
					label, strings.Join(missing, ", ")),
			})
		}
		return true
	})
	return findings
}

// constName extracts the bare or package-qualified identifier a case
// expression refers to (ONotActivated or inject.ONotActivated).
func constName(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		if _, ok := x.X.(*ast.Ident); ok {
			return x.Sel.Name, true
		}
	}
	return "", false
}

// checkDeterminism flags wall-clock reads and global-RNG use in packages on
// the deterministic replay path.
func checkDeterminism(fset *token.FileSet, file *ast.File, rel string) []Finding {
	imports := map[string]bool{}
	for _, imp := range file.Imports {
		imports[strings.Trim(imp.Path.Value, `"`)] = true
	}
	if !imports["time"] && !imports["math/rand"] {
		return nil
	}
	var findings []Finding
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Obj != nil { // shadowed identifier, not a package
			return true
		}
		switch {
		case pkg.Name == "time" && imports["time"] && sel.Sel.Name == "Now":
			findings = append(findings, Finding{
				File: rel, Line: fset.Position(sel.Pos()).Line,
				Msg: "time.Now in a deterministic replay path (outcomes must not depend on the wall clock)",
			})
		case pkg.Name == "rand" && imports["math/rand"] &&
			sel.Sel.Name != "New" && sel.Sel.Name != "NewSource":
			findings = append(findings, Finding{
				File: rel, Line: fset.Position(sel.Pos()).Line,
				Msg: fmt.Sprintf("rand.%s uses the global math/rand source in a deterministic replay path (use rand.New(rand.NewSource(seed)))", sel.Sel.Name),
			})
		}
		return true
	})
	return findings
}

// platformEnumConst reports whether an expression is a package-qualified
// reference to one of the platform enum constants.
func platformEnumConst(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Obj != nil {
		return false
	}
	switch {
	case pkg.Name == "isa" && (sel.Sel.Name == "CISC" || sel.Sel.Name == "RISC"):
		return true
	case pkg.Name == "kfi" && (sel.Sel.Name == "P4" || sel.Sel.Name == "G4"):
		return true
	}
	return false
}

// checkPlatformDispatch flags switch cases over, and ==/!= comparisons
// against, the platform enum constants. Other uses — map keys, registration
// arguments, slice literals — are deliberately not flagged: holding data per
// platform is fine, branching on identity is what the registry replaces.
func checkPlatformDispatch(fset *token.FileSet, file *ast.File, rel string) []Finding {
	var findings []Finding
	flag := func(pos token.Pos, what string) {
		findings = append(findings, Finding{
			File: rel, Line: fset.Position(pos).Line,
			Msg: what + " dispatches on the platform enum; resolve behavior through the internal/platform registry instead",
		})
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SwitchStmt:
			for _, stmt := range x.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if platformEnumConst(e) {
						flag(e.Pos(), "switch case")
						return true // one finding per switch is enough
					}
				}
			}
		case *ast.BinaryExpr:
			if (x.Op == token.EQL || x.Op == token.NEQ) &&
				(platformEnumConst(x.X) || platformEnumConst(x.Y)) {
				flag(x.Pos(), "comparison")
			}
		}
		return true
	})
	return findings
}

// platformDispatchExempt reports whether a repo-relative file may branch on
// the platform enum constants.
func platformDispatchExempt(rel string) bool {
	rel = filepath.ToSlash(rel)
	if _, ok := platformDispatchAllow[rel]; ok {
		return true
	}
	for _, d := range platformDispatchDirs {
		if strings.HasPrefix(rel, d+"/") {
			return true
		}
	}
	return false
}

// ctlplaneClockFile is the one control-plane file allowed to read the wall
// clock: it defines the injectable Clock seam everything else must use.
const ctlplaneClockFile = "internal/ctlplane/clock.go"

// inCtlplaneSeamScope reports whether a repo-relative file must route time
// and HTTP transport through the control plane's injectable seams.
func inCtlplaneSeamScope(rel string) bool {
	rel = filepath.ToSlash(rel)
	return strings.HasPrefix(rel, "internal/ctlplane/") && rel != ctlplaneClockFile
}

// httpAmbient lists the net/http package-level functions and variables that
// reach for the ambient default client or transport.
var httpAmbient = map[string]bool{
	"Get": true, "Post": true, "PostForm": true, "Head": true,
	"DefaultClient": true, "DefaultTransport": true,
}

// checkCtlplaneSeams flags wall-clock reads and ambient-HTTP use in
// internal/ctlplane outside the Clock seam. time.Now must come from an
// injected Clock; HTTP must go through an owned *http.Client.
func checkCtlplaneSeams(fset *token.FileSet, file *ast.File, rel string) []Finding {
	imports := map[string]bool{}
	for _, imp := range file.Imports {
		imports[strings.Trim(imp.Path.Value, `"`)] = true
	}
	if !imports["time"] && !imports["net/http"] {
		return nil
	}
	var findings []Finding
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Obj != nil { // shadowed identifier, not a package
			return true
		}
		switch {
		case pkg.Name == "time" && imports["time"] && sel.Sel.Name == "Now":
			findings = append(findings, Finding{
				File: rel, Line: fset.Position(sel.Pos()).Line,
				Msg: "time.Now in internal/ctlplane outside the Clock seam (inject a ctlplane.Clock; clock.go is the only wall-clock reader)",
			})
		case pkg.Name == "http" && imports["net/http"] && httpAmbient[sel.Sel.Name]:
			findings = append(findings, Finding{
				File: rel, Line: fset.Position(sel.Pos()).Line,
				Msg: fmt.Sprintf("http.%s uses the ambient default client/transport in internal/ctlplane (use an owned, injectable *http.Client)", sel.Sel.Name),
			})
		}
		return true
	})
	return findings
}

// inStepCallDir reports whether a repo-relative file may call a core's Step
// method directly instead of going through a platform.ExecEngine.
func inStepCallDir(rel string) bool {
	rel = filepath.ToSlash(rel)
	for _, d := range stepCallDirs {
		if strings.HasPrefix(rel, d+"/") {
			return true
		}
	}
	return false
}

// checkStepCalls flags method calls named Step outside the engine packages.
// The check is purely syntactic (no type information), which is safe because
// Step is the ISA cores' single-instruction entry point and no other type in
// the repo exposes a Step method; a new one would claim the name from the
// execution seam and should pick another.
func checkStepCalls(fset *token.FileSet, file *ast.File, rel string) []Finding {
	var findings []Finding
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Step" {
			return true
		}
		findings = append(findings, Finding{
			File: rel, Line: fset.Position(sel.Pos()).Line,
			Msg: "direct Step call outside the engine packages bypasses the selected execution engine; drive the core through a platform.ExecEngine (RunUntil) instead",
		})
		return true
	})
	return findings
}

// inDeterministicDir reports whether a repo-relative file lives in one of
// the guest-deterministic packages (or a subpackage of one).
func inDeterministicDir(rel string) bool {
	rel = filepath.ToSlash(rel)
	for _, d := range deterministicDirs {
		if strings.HasPrefix(rel, d+"/") {
			return true
		}
	}
	return false
}
