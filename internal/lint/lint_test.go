package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a fixture repo: a minimal Outcome definition plus the
// given files.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	base := map[string]string{
		outcomeSource: `package inject
type Outcome int
const (
	OA Outcome = iota + 1
	OB
	OC
)
`,
	}
	for k, v := range files {
		base[k] = v
	}
	for rel, src := range base {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func findingStrings(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.String())
	}
	return out
}

func TestExhaustiveOutcomeSwitch(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/stats/s.go": `package stats
func f(o int) {
	switch o {
	case OA:
	case OB:
	}
}
const (
	OA = 1
	OB = 2
)
`,
	})
	fs, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "OC") {
		t.Errorf("want one finding missing OC, got %v", findingStrings(fs))
	}
}

func TestExhaustiveSwitchSatisfiedByDefaultOrFullCover(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/stats/full.go": `package stats
import "x/inject"
func f(o inject.Outcome) {
	switch o {
	case inject.OA, inject.OB:
	case inject.OC:
	}
}
`,
		"internal/stats/def.go": `package stats
import "x/inject"
func g(o inject.Outcome) {
	switch o {
	case inject.OA:
	default:
	}
}
`,
		"internal/stats/unrelated.go": `package stats
func h(n int) {
	switch n {
	case 1:
	}
}
`,
	})
	fs, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("want no findings, got %v", findingStrings(fs))
	}
}

func TestDeterminismRule(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/machine/clock.go": `package machine
import (
	"math/rand"
	"time"
)
func bad() int64 {
	r := rand.Int()
	return time.Now().UnixNano() + int64(r)
}
func good() *rand.Rand {
	return rand.New(rand.NewSource(7))
}
`,
		// Tests are exempt even in deterministic dirs.
		"internal/machine/clock_test.go": `package machine
import "time"
func tbad() int64 { return time.Now().UnixNano() }
`,
		// crashnet is off the deterministic path.
		"internal/crashnet/net.go": `package crashnet
import "time"
func deadline() int64 { return time.Now().UnixNano() }
`,
	})
	fs, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		t.Fatalf("want 2 findings (rand.Int, time.Now), got %v", findingStrings(fs))
	}
	if !strings.Contains(fs[0].Msg, "rand.Int") || !strings.Contains(fs[1].Msg, "time.Now") {
		t.Errorf("unexpected findings: %v", findingStrings(fs))
	}
}

// TestRepoIsClean is the gate the lint.sh script enforces: the repository
// itself must pass its own linter.
func TestRepoIsClean(t *testing.T) {
	fs, err := Check("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("repository has lint findings:\n  %s", strings.Join(findingStrings(fs), "\n  "))
	}
}
