package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a fixture repo: a minimal Outcome definition plus the
// given files.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	base := map[string]string{
		outcomeSource: `package inject
type Outcome int
const (
	OA Outcome = iota + 1
	OB
	OC
)
`,
		classSource: `package staticsense
type Class uint8
const (
	ClassUnknown Class = iota
	ClassInert

	numClasses
)
`,
		engineSource: `package platform
type EngineKind uint8
const (
	EngineInterp EngineKind = iota + 1
	EnginePredecode
	EngineTranslate

	numEngineKinds
)
`,
	}
	for k, v := range files {
		base[k] = v
	}
	for rel, src := range base {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func findingStrings(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.String())
	}
	return out
}

func TestExhaustiveOutcomeSwitch(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/stats/s.go": `package stats
func f(o int) {
	switch o {
	case OA:
	case OB:
	}
}
const (
	OA = 1
	OB = 2
)
`,
	})
	fs, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "OC") {
		t.Errorf("want one finding missing OC, got %v", findingStrings(fs))
	}
}

// TestAppendedOutcomeConstantRejected mirrors the ODetected addition: when a
// new constant is appended to the Outcome block, every exhaustive no-default
// switch that predates it must be flagged until it handles the new outcome.
func TestAppendedOutcomeConstantRejected(t *testing.T) {
	root := writeTree(t, map[string]string{
		outcomeSource: `package inject
type Outcome int
const (
	OA Outcome = iota + 1
	OB
	OC
	ODetected
)
`,
		"internal/stats/s.go": `package stats
import "x/inject"
func f(o inject.Outcome) {
	switch o {
	case inject.OA, inject.OB, inject.OC:
	}
}
`,
	})
	fs, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "ODetected") {
		t.Errorf("want one finding missing ODetected, got %v", findingStrings(fs))
	}
}

// TestAppendedClassConstantRejected mirrors the outcome rule for the
// staticsense.Class lattice: appending a class constant must flag every
// exhaustive no-default Class switch outside the defining package until it
// handles the new class. The unexported count sentinel is not part of the
// enum and must not be demanded.
func TestAppendedClassConstantRejected(t *testing.T) {
	root := writeTree(t, map[string]string{
		classSource: `package staticsense
type Class uint8
const (
	ClassUnknown Class = iota
	ClassInert
	ClassMaskedReg

	numClasses
)
`,
		"internal/campaign/sense.go": `package campaign
import "x/staticsense"
func eligible(c staticsense.Class) bool {
	switch c {
	case staticsense.ClassUnknown:
		return false
	case staticsense.ClassInert:
		return true
	}
	return false
}
`,
		// The defining package itself may switch partially.
		"internal/staticsense/internal.go": `package staticsense
func detail(c Class) int {
	switch c {
	case ClassUnknown:
		return 0
	}
	return 1
}
`,
	})
	fs, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "ClassMaskedReg") ||
		!strings.Contains(fs[0].Msg, "staticsense.Class") {
		t.Errorf("want one finding missing ClassMaskedReg, got %v", findingStrings(fs))
	}
	if len(fs) == 1 && strings.Contains(fs[0].Msg, "numClasses") {
		t.Errorf("unexported sentinel demanded by the rule: %v", fs[0])
	}
}

func TestExhaustiveSwitchSatisfiedByDefaultOrFullCover(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/stats/full.go": `package stats
import "x/inject"
func f(o inject.Outcome) {
	switch o {
	case inject.OA, inject.OB:
	case inject.OC:
	}
}
`,
		"internal/stats/def.go": `package stats
import "x/inject"
func g(o inject.Outcome) {
	switch o {
	case inject.OA:
	default:
	}
}
`,
		"internal/stats/unrelated.go": `package stats
func h(n int) {
	switch n {
	case 1:
	}
}
`,
	})
	fs, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("want no findings, got %v", findingStrings(fs))
	}
}

func TestDeterminismRule(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/machine/clock.go": `package machine
import (
	"math/rand"
	"time"
)
func bad() int64 {
	r := rand.Int()
	return time.Now().UnixNano() + int64(r)
}
func good() *rand.Rand {
	return rand.New(rand.NewSource(7))
}
`,
		// Tests are exempt even in deterministic dirs.
		"internal/machine/clock_test.go": `package machine
import "time"
func tbad() int64 { return time.Now().UnixNano() }
`,
		// crashnet is off the deterministic path.
		"internal/crashnet/net.go": `package crashnet
import "time"
func deadline() int64 { return time.Now().UnixNano() }
`,
	})
	fs, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		t.Fatalf("want 2 findings (rand.Int, time.Now), got %v", findingStrings(fs))
	}
	if !strings.Contains(fs[0].Msg, "rand.Int") || !strings.Contains(fs[1].Msg, "time.Now") {
		t.Errorf("unexpected findings: %v", findingStrings(fs))
	}
}

func TestPlatformDispatchRule(t *testing.T) {
	root := writeTree(t, map[string]string{
		// Switch and comparison dispatch outside the registry: flagged.
		"internal/stats/dispatch.go": `package stats
import "x/isa"
func f(p isa.Platform) int {
	switch p {
	case isa.CISC:
		return 1
	case isa.RISC:
		return 2
	}
	if p == isa.RISC {
		return 3
	}
	return 0
}
`,
		// kfi-alias comparison: also flagged.
		"cmd/kfi-x/main.go": `package main
import "kfi"
func g(p kfi.Platform) bool { return p != kfi.G4 }
`,
		// Data uses are fine: map literals, registration calls, slices.
		"internal/kernel/data.go": `package kernel
import "x/isa"
var table = map[isa.Platform]int{isa.CISC: 1, isa.RISC: 2}
var order = []isa.Platform{isa.CISC, isa.RISC}
func init() { register(isa.CISC, 7) }
func register(p isa.Platform, n int) {}
`,
		// The registry and ISA packages may dispatch.
		"internal/platform/reg.go": `package platform
import "x/isa"
func h(p isa.Platform) bool { return p == isa.CISC }
`,
		"internal/risc/core.go": `package risc
import "x/isa"
func h(p isa.Platform) bool { return p == isa.RISC }
`,
		// Allowlisted file.
		"cmd/kfi-asm/main.go": `package main
import "kfi"
func d(p kfi.Platform) bool { return p == kfi.G4 }
`,
		// A local variable shadowing the package name is not the enum.
		"internal/stats/shadow.go": `package stats
func s() bool {
	type t struct{ CISC int }
	isa := t{CISC: 1}
	return isa.CISC == 1
}
`,
	})
	fs, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 3 {
		t.Fatalf("want 3 findings (switch, ==, !=), got %v", findingStrings(fs))
	}
	wantFiles := []string{"cmd/kfi-x/main.go", "internal/stats/dispatch.go", "internal/stats/dispatch.go"}
	for i, f := range fs {
		if filepath.ToSlash(f.File) != wantFiles[i] {
			t.Errorf("finding %d in %s, want %s: %s", i, f.File, wantFiles[i], f.Msg)
		}
		if !strings.Contains(f.Msg, "internal/platform registry") {
			t.Errorf("finding %d does not point at the registry: %s", i, f.Msg)
		}
	}
}

// TestEngineKindSwitchRule proves a half-wired engine dispatch fails lint:
// a switch over the EngineKind constants that misses a kind and has no
// default is flagged anywhere in the tree, while full coverage or a default
// clause (and the unexported count sentinel) satisfy the rule.
func TestEngineKindSwitchRule(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/campaign/eng.go": `package campaign
import "x/platform"
func label(k platform.EngineKind) string {
	switch k {
	case platform.EngineInterp:
		return "i"
	case platform.EnginePredecode:
		return "p"
	}
	return ""
}
`,
		"internal/stats/eng.go": `package stats
import "x/platform"
func full(k platform.EngineKind) int {
	switch k {
	case platform.EngineInterp, platform.EnginePredecode:
		return 1
	case platform.EngineTranslate:
		return 2
	}
	return 0
}
func def(k platform.EngineKind) int {
	switch k {
	case platform.EngineTranslate:
		return 2
	default:
		return 0
	}
}
`,
	})
	fs, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "EngineTranslate") ||
		!strings.Contains(fs[0].Msg, "platform.EngineKind") {
		t.Errorf("want one finding missing EngineTranslate, got %v", findingStrings(fs))
	}
	if len(fs) == 1 && strings.Contains(fs[0].Msg, "numEngineKinds") {
		t.Errorf("unexported sentinel demanded by the rule: %v", fs[0])
	}
}

// TestStepCallRule proves the engine seam is enforced: a direct core.Step()
// call outside the ISA packages and the registry is flagged, while the run
// loops inside them (and test files anywhere) may keep calling Step.
func TestStepCallRule(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/machine/loop.go": `package machine
type core interface{ Step() int }
func run(c core) int { return c.Step() }
`,
		"internal/cisc/cpu.go": `package cisc
type CPU struct{}
func (c *CPU) Step() int { return 0 }
func (c *CPU) RunUntil(limit uint64) int { return c.Step() }
`,
		"internal/platform/adapter.go": `package platform
type stepper interface{ Step() int }
func drive(s stepper) int { return s.Step() }
`,
		// Tests are exempt even outside the engine packages.
		"internal/machine/loop_test.go": `package machine
func tstep(c core) int { return c.Step() }
`,
	})
	fs, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || !strings.Contains(fs[0].File, "machine") ||
		!strings.Contains(fs[0].Msg, "ExecEngine") {
		t.Errorf("want one ExecEngine finding in internal/machine, got %v", findingStrings(fs))
	}
}

// TestRepoIsClean is the gate the lint.sh script enforces: the repository
// itself must pass its own linter.
func TestRepoIsClean(t *testing.T) {
	fs, err := Check("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("repository has lint findings:\n  %s", strings.Join(findingStrings(fs), "\n  "))
	}
}

func TestCtlplaneSeamRule(t *testing.T) {
	root := writeTree(t, map[string]string{
		// clock.go is the seam: its time.Now is the one allowed reader.
		"internal/ctlplane/clock.go": `package ctlplane
import "time"
func now() time.Time { return time.Now() }
`,
		"internal/ctlplane/bad.go": `package ctlplane
import (
	"net/http"
	"time"
)
func bad() {
	_ = time.Now()
	http.Get("http://example")
	_ = http.DefaultClient
	owned := &http.Client{}
	owned.Get("http://example")
	mux := http.NewServeMux()
	_ = mux
}
`,
	})
	fs, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	var seam []Finding
	for _, f := range fs {
		if strings.Contains(f.File, "ctlplane") {
			seam = append(seam, f)
		}
	}
	if len(seam) != 3 {
		t.Fatalf("ctlplane seam findings = %v, want exactly 3 (time.Now, http.Get, http.DefaultClient)",
			findingStrings(seam))
	}
	for _, want := range []string{"time.Now", "http.Get", "http.DefaultClient"} {
		found := false
		for _, f := range seam {
			if strings.Contains(f.Msg, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no finding mentions %s in %v", want, findingStrings(seam))
		}
	}
	for _, f := range seam {
		if strings.Contains(f.File, "clock.go") {
			t.Errorf("clock.go (the seam itself) was flagged: %s", f)
		}
	}
	// Lines 10-12 are the owned-client and mux uses; none may be flagged.
	for _, f := range seam {
		if f.Line >= 10 {
			t.Errorf("owned client / mux use was flagged: %s", f)
		}
	}
}
