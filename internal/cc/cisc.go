package cc

import (
	"fmt"

	"kfi/internal/cisc"
	"kfi/internal/isa"
	"kfi/internal/kir"
)

// CISC backend register assignment: EAX is the only caller-saved allocatable
// register (it doubles as the return register); EBX/ESI/EDI are callee-saved;
// ECX and EDX are reserved as spill/scratch registers. EBP is the frame
// pointer and ESP the stack pointer — the classic register-starved x86
// picture that drives the P4's stack traffic.
var (
	ciscCallerSaved = []int{cisc.EAX}
	ciscCalleeSaved = []int{cisc.EBX, cisc.ESI, cisc.EDI}
)

const (
	scrA = cisc.ECX // scratch for first operands / results
	scrB = cisc.EDX // scratch for second operands
)

type ciscFunc struct {
	p        *kir.Program
	im       *Image
	a        *cisc.Asm
	fn       *kir.Func
	lin      *linear
	alloc    *Alloc
	localOff []int32 // EBP-relative offsets of locals
	spillOff int32   // EBP-relative offset of spill slot 0 (descending)
	frame    int32   // bytes subtracted from ESP after callee saves
	labelSeq *int
	fused    map[*kir.Instr]bool
	// pendingCC holds the condition code of a fused compare awaiting its
	// branch; pendingReg is the compare's (otherwise unused) destination.
	pendingCC  uint8
	pendingReg kir.Reg
	hasPending bool
}

func compileCISC(p *kir.Program, im *Image) error {
	a := cisc.NewAsm()
	seq := 0
	starts := make(map[string]uint32, len(p.Funcs))
	ends := make(map[string]uint32, len(p.Funcs))
	for _, fn := range p.Funcs {
		starts[fn.Name] = a.Len()
		cf := &ciscFunc{p: p, im: im, a: a, fn: fn, labelSeq: &seq}
		if err := cf.compile(); err != nil {
			return fmt.Errorf("cc: %s: %w", fn.Name, err)
		}
		ends[fn.Name] = a.Len()
	}
	// Resolve symbols: functions at their labels, globals at their data
	// addresses.
	syms := make(map[string]uint32, len(im.Syms))
	for k, v := range im.Syms {
		syms[k] = v
	}
	code, err := a.Link(im.CodeBase, syms)
	if err != nil {
		return err
	}
	im.Code = code
	for _, fn := range p.Funcs {
		im.Syms[fn.Name] = im.CodeBase + starts[fn.Name]
		im.Funcs = append(im.Funcs, FuncRange{
			Name:  fn.Name,
			Start: im.CodeBase + starts[fn.Name],
			End:   im.CodeBase + ends[fn.Name],
		})
	}
	return nil
}

func (cf *ciscFunc) compile() error {
	cf.lin = linearize(cf.fn)
	cf.alloc = allocate(cf.fn, cf.lin, ciscCallerSaved, ciscCalleeSaved)
	cf.fused = fusibleCmps(cf.fn)

	// Frame layout below EBP: callee saves (pushed), then locals (packed at
	// natural width), then spill slots.
	layout := cf.im.Layout
	off := -4 * int32(len(cf.alloc.UsedCalleeSaved))
	cf.localOff = make([]int32, len(cf.fn.Locals))
	for i, lo := range cf.fn.Locals {
		size := int32(layout.LocalSlotSize(lo))
		off -= size
		off &^= 3 // keep slots word-aligned for simplicity of frame math
		cf.localOff[i] = off
	}
	off -= 4 * int32(cf.alloc.NSlots)
	cf.spillOff = off + 4*int32(cf.alloc.NSlots) - 4 // slot 0 at the top of the spill area
	cf.frame = -off - 4*int32(len(cf.alloc.UsedCalleeSaved))

	a := cf.a
	a.Label(cf.fn.Name)
	// Prologue.
	a.PushR(cisc.EBP)
	a.MovRR(cisc.EBP, cisc.ESP)
	for _, r := range cf.alloc.UsedCalleeSaved {
		a.PushR(uint8(r))
	}
	if cf.frame > 0 {
		a.SubRI(cisc.ESP, cf.frame)
	}
	// Move parameters from the stack into their homes.
	for i := 0; i < cf.fn.NParams; i++ {
		pr := kir.Reg(i + 1)
		src := int32(8 + 4*i)
		if cf.alloc.Spilled(pr) {
			a.Ld32(scrA, cisc.EBP, src)
			a.St32(cisc.EBP, cf.slotOff(pr), scrA)
		} else {
			a.Ld32(cf.home(pr), cisc.EBP, src)
		}
	}

	for bi, b := range cf.fn.Blocks {
		a.Label(cf.blockLabel(b.Name))
		for ii := range b.Instrs {
			if err := cf.instr(&b.Instrs[ii], bi); err != nil {
				return err
			}
		}
	}
	return nil
}

func (cf *ciscFunc) blockLabel(name string) string {
	return cf.fn.Name + "$" + name
}

func (cf *ciscFunc) newLabel() string {
	*cf.labelSeq++
	return fmt.Sprintf("%s$L%d", cf.fn.Name, *cf.labelSeq)
}

func (cf *ciscFunc) home(r kir.Reg) uint8 { return uint8(cf.alloc.Reg[r]) }

func (cf *ciscFunc) slotOff(r kir.Reg) int32 {
	return cf.spillOff - 4*int32(cf.alloc.Slot[r])
}

// use brings a virtual register's value into a physical register, loading
// spilled values into the given scratch register.
func (cf *ciscFunc) use(r kir.Reg, scratch uint8) uint8 {
	if !cf.alloc.Spilled(r) {
		return cf.home(r)
	}
	cf.a.Ld32(scratch, cisc.EBP, cf.slotOff(r))
	return scratch
}

// defReg returns the register a result should be computed into: the home
// register, or the given scratch for spilled destinations (finish with
// store()).
func (cf *ciscFunc) defReg(r kir.Reg, scratch uint8) uint8 {
	if !cf.alloc.Spilled(r) {
		return cf.home(r)
	}
	return scratch
}

// storeDef writes back a result computed into reg if the destination is
// spilled.
func (cf *ciscFunc) storeDef(r kir.Reg, reg uint8) {
	if cf.alloc.Spilled(r) {
		cf.a.St32(cisc.EBP, cf.slotOff(r), reg)
	}
}

func (cf *ciscFunc) epilogue() {
	a := cf.a
	n := len(cf.alloc.UsedCalleeSaved)
	if cf.frame > 0 || n > 0 {
		// lea -4n(%ebp),%esp — the Figure 7 epilogue shape.
		a.Lea(cisc.ESP, cisc.EBP, -4*int32(n))
	}
	for i := n - 1; i >= 0; i-- {
		a.PopR(uint8(cf.alloc.UsedCalleeSaved[i]))
	}
	a.PopR(cisc.EBP)
	a.Ret()
}

var ciscCC = map[kir.Pred]uint8{
	kir.Eq: cisc.CcE, kir.Ne: cisc.CcNE,
	kir.Lt: cisc.CcL, kir.Le: cisc.CcLE, kir.Gt: cisc.CcG, kir.Ge: cisc.CcGE,
	kir.ULt: cisc.CcB, kir.ULe: cisc.CcBE, kir.UGt: cisc.CcA, kir.UGe: cisc.CcAE,
}

func (cf *ciscFunc) instr(in *kir.Instr, blockIdx int) error {
	a := cf.a
	switch in.Kind {
	case kir.KConst:
		d := cf.defReg(in.Dst, scrA)
		a.MovRI(d, in.Imm)
		cf.storeDef(in.Dst, d)
	case kir.KMov:
		s := cf.use(in.A, scrA)
		d := cf.defReg(in.Dst, scrA)
		if d != s {
			a.MovRR(d, s)
		}
		cf.storeDef(in.Dst, d)
	case kir.KBin:
		cf.bin(in.Bin, in.Dst, in.A, in.B, nil)
	case kir.KBinImm:
		imm := in.Imm
		cf.bin(in.Bin, in.Dst, in.A, 0, &imm)
	case kir.KCmp, kir.KCmpImm:
		ra := cf.use(in.A, scrA)
		if in.Kind == kir.KCmp {
			a.CmpRR(ra, cf.use(in.B, scrB))
		} else {
			a.CmpRI(ra, in.Imm)
		}
		if cf.fused[in] {
			// The following branch consumes the flags directly.
			cf.pendingCC = ciscCC[in.Pred]
			cf.pendingReg = in.Dst
			cf.hasPending = true
			return nil
		}
		d := cf.defReg(in.Dst, scrA)
		a.SetCC(d, ciscCC[in.Pred])
		cf.storeDef(in.Dst, d)
	case kir.KLoad:
		cf.load(in.Dst, in.Width, in.Signed, cf.use(in.A, scrA), in.Imm)
	case kir.KStore:
		base := cf.use(in.A, scrA)
		val := cf.use(in.B, scrB)
		cf.store(in.Width, base, in.Imm, val)
	case kir.KLoadField:
		s := cf.p.Struct(in.Sym)
		f := s.Fields[in.Field]
		cf.load(in.Dst, f.Width, in.Signed, cf.use(in.A, scrA), int32(cf.im.Layout.FieldOffset(s, in.Field)))
	case kir.KStoreField:
		s := cf.p.Struct(in.Sym)
		f := s.Fields[in.Field]
		base := cf.use(in.A, scrA)
		val := cf.use(in.B, scrB)
		cf.store(f.Width, base, int32(cf.im.Layout.FieldOffset(s, in.Field)), val)
	case kir.KFieldAddr:
		s := cf.p.Struct(in.Sym)
		base := cf.use(in.A, scrA)
		d := cf.defReg(in.Dst, scrA)
		off := int32(cf.im.Layout.FieldOffset(s, in.Field))
		if off >= -128 && off <= 127 {
			a.Lea(d, base, off)
		} else {
			if d != base {
				a.MovRR(d, base)
			}
			a.AddRI(d, off)
		}
		cf.storeDef(in.Dst, d)
	case kir.KIndex:
		s := cf.p.Struct(in.Sym)
		size := int32(cf.im.Layout.StructSize(s))
		base := cf.use(in.A, scrA)
		idx := cf.use(in.B, scrB)
		d := cf.defReg(in.Dst, scrA)
		switch size {
		case 1, 2, 4, 8:
			sc := uint8(0)
			for 1<<sc != size {
				sc++
			}
			a.LeaIdx(d, base, idx, sc, 0)
		default:
			// d = idx*size + base, via scratch to avoid clobbering.
			if idx != scrB {
				a.MovRR(scrB, idx)
			}
			a.ImulRI(scrB, size)
			if d != base {
				a.MovRR(d, base)
			}
			a.AddRR(d, scrB)
		}
		cf.storeDef(in.Dst, d)
	case kir.KGlobalAddr:
		d := cf.defReg(in.Dst, scrA)
		a.MovRISym(d, in.Sym, in.Imm)
		cf.storeDef(in.Dst, d)
	case kir.KFuncAddr:
		d := cf.defReg(in.Dst, scrA)
		a.MovRISym(d, in.Sym, 0)
		cf.storeDef(in.Dst, d)
	case kir.KLocalAddr:
		d := cf.defReg(in.Dst, scrA)
		off := cf.localOff[cf.fn.LocalIndex(in.Sym)] + in.Imm
		if off >= -128 && off <= 127 {
			a.Lea(d, cisc.EBP, off)
		} else {
			a.MovRR(d, cisc.EBP)
			a.AddRI(d, off)
		}
		cf.storeDef(in.Dst, d)
	case kir.KCall, kir.KCallPtr:
		// Push arguments right to left.
		for i := len(in.Args) - 1; i >= 0; i-- {
			a.PushR(cf.use(in.Args[i], scrA))
		}
		if in.Kind == kir.KCall {
			a.CallSym(in.Sym)
		} else {
			a.CallR(cf.use(in.A, scrA))
		}
		if n := len(in.Args); n > 0 {
			a.AddRI(cisc.ESP, int32(4*n))
		}
		if in.Dst != 0 {
			if cf.alloc.Spilled(in.Dst) {
				a.St32(cisc.EBP, cf.slotOff(in.Dst), cisc.EAX)
			} else if cf.home(in.Dst) != cisc.EAX {
				a.MovRR(cf.home(in.Dst), cisc.EAX)
			}
		}
	case kir.KSyscall:
		// INT 0x80 convention: EAX=number, EBX/ECX/EDX=arguments. EBX is
		// callee-saved, so preserve it around the trap.
		a.PushR(cisc.EBX)
		for i := len(in.Args) - 1; i >= 0; i-- {
			a.PushR(cf.use(in.Args[i], scrA))
		}
		trapRegs := []uint8{cisc.EAX, cisc.EBX, cisc.ECX, cisc.EDX}
		for i := 0; i < len(in.Args); i++ {
			a.PopR(trapRegs[i])
		}
		a.Int(0x80)
		a.PopR(cisc.EBX)
		if in.Dst != 0 {
			if cf.alloc.Spilled(in.Dst) {
				a.St32(cisc.EBP, cf.slotOff(in.Dst), cisc.EAX)
			} else if cf.home(in.Dst) != cisc.EAX {
				a.MovRR(cf.home(in.Dst), cisc.EAX)
			}
		}
	case kir.KRet:
		if in.A != 0 {
			s := cf.use(in.A, scrA)
			if s != cisc.EAX {
				a.MovRR(cisc.EAX, s)
			}
		}
		cf.epilogue()
	case kir.KJmp:
		if !cf.fallsThrough(in.Then, blockIdx) {
			a.JmpSym(cf.blockLabel(in.Then))
		}
	case kir.KBr:
		if cf.hasPending && in.A == cf.pendingReg {
			cf.hasPending = false
			a.Jcc(cf.pendingCC, cf.blockLabel(in.Then))
		} else {
			c := cf.use(in.A, scrA)
			a.TestRR(c, c)
			a.Jcc(cisc.CcNE, cf.blockLabel(in.Then))
		}
		if !cf.fallsThrough(in.Else, blockIdx) {
			a.JmpSym(cf.blockLabel(in.Else))
		}
	case kir.KIrqOff:
		a.Cli()
	case kir.KIrqOn:
		a.Sti()
	case kir.KHalt:
		a.Hlt()
	case kir.KBug:
		a.Ud2()
	case kir.KCtxSw:
		prev := cf.use(in.A, scrA)
		next := cf.use(in.B, scrB)
		a.CtxSw(prev, next)
	default:
		return fmt.Errorf("unsupported instruction kind %d", in.Kind)
	}
	return nil
}

func (cf *ciscFunc) fallsThrough(target string, blockIdx int) bool {
	return blockIdx+1 < len(cf.fn.Blocks) && cf.fn.Blocks[blockIdx+1].Name == target
}

// bin lowers dst = a op b (or a op imm when imm != nil).
func (cf *ciscFunc) bin(op kir.BinOp, dst, ra, rb kir.Reg, imm *int32) {
	a := cf.a
	src := cf.use(ra, scrA)
	d := cf.defReg(dst, scrA)
	// Get the left operand into the destination register without clobbering
	// the right operand.
	if d != src {
		if imm == nil && !cf.alloc.Spilled(rb) && cf.home(rb) == d {
			// d holds b; compute in scratch instead.
			if src != scrA {
				a.MovRR(scrA, src)
			}
			cf.binOp(op, scrA, cf.home(rb), nil)
			a.MovRR(d, scrA)
			cf.storeDef(dst, d)
			return
		}
		a.MovRR(d, src)
	}
	if imm != nil {
		cf.binOp(op, d, 0, imm)
	} else {
		cf.binOp(op, d, cf.use(rb, scrB), nil)
	}
	cf.storeDef(dst, d)
}

// binOp emits d = d op (src|imm).
func (cf *ciscFunc) binOp(op kir.BinOp, d, src uint8, imm *int32) {
	a := cf.a
	if imm != nil {
		switch op {
		case kir.Add:
			a.AddRI(d, *imm)
		case kir.Sub:
			a.SubRI(d, *imm)
		case kir.Mul:
			a.ImulRI(d, *imm)
		case kir.And:
			a.AndRI(d, *imm)
		case kir.Or:
			a.OrRI(d, *imm)
		case kir.Xor:
			a.XorRI(d, *imm)
		case kir.Shl:
			a.ShlRI(d, int8(*imm&31))
		case kir.Shr:
			a.ShrRI(d, int8(*imm&31))
		case kir.Sar:
			a.SarRI(d, int8(*imm&31))
		case kir.Div, kir.Rem:
			// Immediate divide: materialize the divisor.
			a.MovRI(scrB, *imm)
			if op == kir.Div {
				a.IdivRR(d, scrB)
			} else {
				a.ModRR(d, scrB)
			}
		}
		return
	}
	switch op {
	case kir.Add:
		a.AddRR(d, src)
	case kir.Sub:
		a.SubRR(d, src)
	case kir.Mul:
		a.ImulRR(d, src)
	case kir.Div:
		a.IdivRR(d, src)
	case kir.Rem:
		a.ModRR(d, src)
	case kir.And:
		a.AndRR(d, src)
	case kir.Or:
		a.OrRR(d, src)
	case kir.Xor:
		a.XorRR(d, src)
	case kir.Shl:
		a.ShlRR(d, src)
	case kir.Shr:
		a.ShrRR(d, src)
	case kir.Sar:
		a.SarRR(d, src)
	}
}

func (cf *ciscFunc) load(dst kir.Reg, w kir.Width, signed bool, base uint8, off int32) {
	a := cf.a
	d := cf.defReg(dst, scrA)
	if off < -128 || off > 127 {
		switch w {
		case kir.W32, kir.W8:
			// 32-bit displacement forms exist for these widths.
		default:
			// Compute the address into scratch.
			if base != scrB {
				a.MovRR(scrB, base)
			}
			a.AddRI(scrB, off)
			base, off = scrB, 0
		}
	}
	switch {
	case w == kir.W32:
		a.Ld32(d, base, off)
	case w == kir.W16 && signed:
		a.Ld16sx(d, base, off)
	case w == kir.W16:
		a.Ld16zx(d, base, off)
	case signed:
		a.Ld8sx(d, base, off)
	default:
		a.Ld8zx(d, base, off)
	}
	cf.storeDef(dst, d)
}

func (cf *ciscFunc) store(w kir.Width, base uint8, off int32, val uint8) {
	a := cf.a
	if (off < -128 || off > 127) && w == kir.W16 {
		if base != scrA {
			a.MovRR(scrA, base)
		}
		a.AddRI(scrA, off)
		base, off = scrA, 0
	}
	switch w {
	case kir.W32:
		a.St32(base, off, val)
	case kir.W16:
		a.St16(base, off, val)
	default:
		a.St8(base, off, val)
	}
}

var _ = isa.CISC // keep the isa import for doc references
