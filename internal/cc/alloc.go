// Package cc compiles kernel-IR programs (internal/kir) to both simulated
// ISAs. The two backends deliberately differ where the real architectures
// differ — that contrast is the subject of the reproduced study:
//
//   - The CISC backend has only four allocatable registers (plus two scratch
//     registers reserved for spill traffic), pushes arguments and return
//     addresses on the stack, packs data at natural widths, and emits
//     8/16/32-bit memory operands.
//   - The RISC backend allocates from sixteen callee-saved registers, passes
//     arguments in registers, builds stwu/mflr frames with word-granular
//     slots, and pads scalar data to 32-bit slots.
//
// Register allocation is a classic linear scan over linearized code with
// loop-aware interval extension.
package cc

import (
	"sort"

	"kfi/internal/kir"
)

// linear is the linearized form of one function: a flat instruction list
// with block boundaries and resolved branch targets.
type linear struct {
	fn         *kir.Func
	instrs     []*kir.Instr
	blockOf    []int          // instruction index → block index
	blockStart map[string]int // block name → first instruction index
	blockIdx   map[string]int
}

func linearize(fn *kir.Func) *linear {
	l := &linear{
		fn:         fn,
		blockStart: make(map[string]int, len(fn.Blocks)),
		blockIdx:   make(map[string]int, len(fn.Blocks)),
	}
	for bi, b := range fn.Blocks {
		l.blockStart[b.Name] = len(l.instrs)
		l.blockIdx[b.Name] = bi
		for i := range b.Instrs {
			l.instrs = append(l.instrs, &b.Instrs[i])
			l.blockOf = append(l.blockOf, bi)
		}
	}
	return l
}

// interval is one virtual register's live range over linear indices.
type interval struct {
	reg        kir.Reg
	start, end int
	crossCall  bool
}

// uses returns the registers read by an instruction.
func uses(in *kir.Instr) []kir.Reg {
	var u []kir.Reg
	add := func(r kir.Reg) {
		if r != 0 {
			u = append(u, r)
		}
	}
	switch in.Kind {
	case kir.KBin, kir.KCmp:
		add(in.A)
		add(in.B)
	case kir.KBinImm, kir.KCmpImm, kir.KMov, kir.KLoad, kir.KLoadField,
		kir.KFieldAddr, kir.KBr, kir.KRet:
		add(in.A)
	case kir.KStore, kir.KStoreField:
		add(in.A)
		add(in.B)
	case kir.KIndex, kir.KCtxSw:
		add(in.A)
		add(in.B)
	case kir.KCall, kir.KSyscall:
		for _, r := range in.Args {
			add(r)
		}
	case kir.KCallPtr:
		add(in.A)
		for _, r := range in.Args {
			add(r)
		}
	}
	return u
}

// def returns the register written by an instruction (0 if none).
func def(in *kir.Instr) kir.Reg {
	switch in.Kind {
	case kir.KConst, kir.KBin, kir.KBinImm, kir.KCmp, kir.KCmpImm, kir.KMov,
		kir.KLoad, kir.KLoadField, kir.KFieldAddr, kir.KIndex,
		kir.KGlobalAddr, kir.KLocalAddr, kir.KFuncAddr:
		return in.Dst
	case kir.KCall, kir.KCallPtr, kir.KSyscall:
		return in.Dst
	}
	return 0
}

// isCall reports whether the instruction clobbers caller-saved registers
// (system calls clobber the same set via the kernel's trap path).
func isCall(in *kir.Instr) bool {
	return in.Kind == kir.KCall || in.Kind == kir.KCallPtr || in.Kind == kir.KSyscall
}

// computeIntervals builds conservative live intervals: [first definition or
// use, last use], extended across loops so that any interval overlapping a
// backward branch's span [target, branch] covers the whole span.
func computeIntervals(l *linear) []*interval {
	n := l.fn.NumRegs()
	ivs := make([]*interval, n+1)
	touch := func(r kir.Reg, idx int) {
		if r == 0 {
			return
		}
		iv := ivs[r]
		if iv == nil {
			ivs[r] = &interval{reg: r, start: idx, end: idx}
			return
		}
		if idx < iv.start {
			iv.start = idx
		}
		if idx > iv.end {
			iv.end = idx
		}
	}
	// Parameters are live from entry.
	for i := 0; i < l.fn.NParams; i++ {
		touch(kir.Reg(i+1), 0)
	}
	for idx, in := range l.instrs {
		for _, r := range uses(in) {
			touch(r, idx)
		}
		if d := def(in); d != 0 {
			touch(d, idx)
		}
	}

	// Collect backward edges.
	type edge struct{ lo, hi int }
	var edges []edge
	for idx, in := range l.instrs {
		var targets []string
		switch in.Kind {
		case kir.KJmp:
			targets = []string{in.Then}
		case kir.KBr:
			targets = []string{in.Then, in.Else}
		}
		for _, t := range targets {
			if s := l.blockStart[t]; s <= idx {
				edges = append(edges, edge{lo: s, hi: idx})
			}
		}
	}
	// Extend intervals across loops to a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, iv := range ivs {
			if iv == nil {
				continue
			}
			for _, e := range edges {
				if iv.start <= e.hi && iv.end >= e.lo {
					if iv.start > e.lo {
						iv.start = e.lo
						changed = true
					}
					if iv.end < e.hi {
						iv.end = e.hi
						changed = true
					}
				}
			}
		}
	}

	// Mark call crossings.
	var calls []int
	for idx, in := range l.instrs {
		if isCall(in) {
			calls = append(calls, idx)
		}
	}
	var out []*interval
	for _, iv := range ivs {
		if iv == nil {
			continue
		}
		for _, c := range calls {
			if iv.start < c && c < iv.end {
				iv.crossCall = true
				break
			}
		}
		out = append(out, iv)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].start != out[j].start {
			return out[i].start < out[j].start
		}
		return out[i].reg < out[j].reg
	})
	return out
}

// fusibleCmps finds comparison instructions whose only consumer is the
// immediately following conditional branch in the same block. Backends lower
// these as a fused compare-and-branch (cmp+jcc / cmpw+bc), the idiom real
// compilers emit and the paper's listings show.
func fusibleCmps(fn *kir.Func) map[*kir.Instr]bool {
	// Count uses of every register across the function.
	useCount := make(map[kir.Reg]int)
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			for _, r := range uses(&b.Instrs[i]) {
				useCount[r]++
			}
		}
	}
	out := make(map[*kir.Instr]bool)
	for _, b := range fn.Blocks {
		for i := 0; i+1 < len(b.Instrs); i++ {
			in := &b.Instrs[i]
			if in.Kind != kir.KCmp && in.Kind != kir.KCmpImm {
				continue
			}
			next := &b.Instrs[i+1]
			if next.Kind == kir.KBr && next.A == in.Dst && useCount[in.Dst] == 1 {
				out[in] = true
			}
		}
	}
	return out
}

// Alloc is the register-allocation result for one function.
type Alloc struct {
	// Reg maps each virtual register to a physical register, or -1 when the
	// value is spilled to a frame slot.
	Reg []int
	// Slot maps spilled virtual registers to frame slot indices.
	Slot []int
	// NSlots is the number of 4-byte spill slots required.
	NSlots int
	// UsedCalleeSaved lists the callee-saved physical registers the function
	// must preserve, in ascending order.
	UsedCalleeSaved []int
}

// Spilled reports whether a virtual register lives in a frame slot.
func (a *Alloc) Spilled(r kir.Reg) bool { return a.Reg[r] < 0 }

// allocate runs linear scan over the intervals. callerSaved registers are
// only given to intervals that do not cross a call; calleeSaved registers
// are reported in UsedCalleeSaved for prologue saves.
func allocate(fn *kir.Func, l *linear, callerSaved, calleeSaved []int) *Alloc {
	ivs := computeIntervals(l)
	a := &Alloc{
		Reg:  make([]int, fn.NumRegs()+1),
		Slot: make([]int, fn.NumRegs()+1),
	}
	for i := range a.Reg {
		a.Reg[i] = -1
		a.Slot[i] = -1
	}

	freeCaller := append([]int(nil), callerSaved...)
	freeCallee := append([]int(nil), calleeSaved...)
	type active struct {
		iv  *interval
		reg int
	}
	var actives []active
	usedCallee := make(map[int]bool)

	expire := func(now int) {
		kept := actives[:0]
		for _, ac := range actives {
			if ac.iv.end < now {
				if contains(calleeSaved, ac.reg) {
					freeCallee = append(freeCallee, ac.reg)
				} else {
					freeCaller = append(freeCaller, ac.reg)
				}
				continue
			}
			kept = append(kept, ac)
		}
		actives = kept
	}
	spillSlot := func(r kir.Reg) {
		a.Reg[r] = -1
		a.Slot[r] = a.NSlots
		a.NSlots++
	}

	for _, iv := range ivs {
		expire(iv.start)
		var reg = -1
		if !iv.crossCall && len(freeCaller) > 0 {
			reg = freeCaller[0]
			freeCaller = freeCaller[1:]
		} else if len(freeCallee) > 0 {
			reg = freeCallee[0]
			freeCallee = freeCallee[1:]
		}
		if reg >= 0 {
			a.Reg[iv.reg] = reg
			if contains(calleeSaved, reg) {
				usedCallee[reg] = true
			}
			actives = append(actives, active{iv: iv, reg: reg})
			continue
		}
		// No free register: spill the interval ending last, provided its
		// register class can host this interval.
		victim := -1
		for i, ac := range actives {
			if iv.crossCall && !contains(calleeSaved, ac.reg) {
				continue
			}
			if victim < 0 || ac.iv.end > actives[victim].iv.end {
				victim = i
			}
		}
		if victim >= 0 && actives[victim].iv.end > iv.end {
			ac := actives[victim]
			a.Reg[iv.reg] = ac.reg
			actives[victim] = active{iv: iv, reg: ac.reg}
			spillSlot(ac.iv.reg)
			continue
		}
		spillSlot(iv.reg)
	}

	for r := range usedCallee {
		a.UsedCalleeSaved = append(a.UsedCalleeSaved, r)
	}
	sort.Ints(a.UsedCalleeSaved)
	return a
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
