package cc

import (
	"fmt"
	"sort"

	"kfi/internal/isa"
	"kfi/internal/kir"
)

// FuncRange records where one compiled function lives in the code image,
// used by the profiler and the code-injection target generator.
type FuncRange struct {
	Name       string
	Start, End uint32 // [Start, End) absolute addresses
}

// Image is a linked guest binary for one platform.
type Image struct {
	Platform isa.Platform
	Layout   kir.Layout

	Code     []byte
	CodeBase uint32

	Data     []byte // initialized data (index 0 at DataBase)
	DataBase uint32

	BSSBase uint32
	BSSSize uint32

	HeapBase uint32
	HeapSize uint32

	// Syms maps function and global names to absolute addresses.
	Syms map[string]uint32
	// Funcs lists function code ranges in address order.
	Funcs []FuncRange
}

// Sym returns the address of a symbol, panicking on unknown names (a build
// bug, not a runtime condition).
func (im *Image) Sym(name string) uint32 {
	a, ok := im.Syms[name]
	if !ok {
		panic(fmt.Sprintf("cc: unknown symbol %q", name))
	}
	return a
}

// FuncAt returns the function containing the given code address.
func (im *Image) FuncAt(addr uint32) (FuncRange, bool) {
	i := sort.Search(len(im.Funcs), func(i int) bool { return im.Funcs[i].End > addr })
	if i < len(im.Funcs) && addr >= im.Funcs[i].Start {
		return im.Funcs[i], true
	}
	return FuncRange{}, false
}

// Bases fixes the load addresses for an image's sections.
type Bases struct {
	Code uint32
	Data uint32
	BSS  uint32
	// Heap places dynamically-backed globals; zero appends them after BSS.
	Heap uint32
}

// Options selects optional compilation passes applied before lowering.
type Options struct {
	// Harden applies the software fault-detection transforms
	// (kir.Harden) to the program before it reaches the backend. Both
	// backends compile the transformed IR through the ordinary pipeline, so
	// hardened images need no backend changes.
	Harden kir.HardenOpts
}

// CompileWith is Compile with optional pre-lowering passes. With zero
// Options it is exactly Compile: the program passes through untouched and
// the image is byte-identical.
func CompileWith(p *kir.Program, platform isa.Platform, bases Bases, opts Options) (*Image, error) {
	return Compile(kir.Harden(p, opts.Harden), platform, bases)
}

// Compile lowers a validated IR program to a linked image for the platform.
func Compile(p *kir.Program, platform isa.Platform, bases Bases) (*Image, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	layout := kir.NewLayout(platform)
	if bases.Heap == 0 {
		bases.Heap = bases.BSS + 0x20000
	}
	im := &Image{
		Platform: platform,
		Layout:   layout,
		CodeBase: bases.Code,
		DataBase: bases.Data,
		BSSBase:  bases.BSS,
		HeapBase: bases.Heap,
		Syms:     make(map[string]uint32),
	}

	// Lay out globals: initialized data then bss.
	order := isa.ByteOrder(platform)
	put := func(buf []byte, off uint32, w kir.Width, v uint32) {
		switch w {
		case kir.W8:
			buf[off] = byte(v)
		case kir.W16:
			order.PutUint16(buf[off:], uint16(v))
		default:
			order.PutUint32(buf[off:], v)
		}
	}
	dataOff := uint32(0)
	bssOff := uint32(0)
	heapOff := uint32(0)
	for _, g := range p.Globals {
		size := layout.GlobalSize(g)
		if g.Heap {
			im.Syms[g.Name] = bases.Heap + heapOff
			heapOff += (size + 15) &^ 15
			continue
		}
		if g.BSS {
			im.Syms[g.Name] = bases.BSS + bssOff
			bssOff += (size + 15) &^ 15
			continue
		}
		img := layout.EncodeGlobal(g, put)
		im.Syms[g.Name] = bases.Data + dataOff
		im.Data = append(im.Data, img...)
		for len(im.Data)%16 != 0 {
			im.Data = append(im.Data, 0)
		}
		dataOff = uint32(len(im.Data))
	}
	im.BSSSize = bssOff
	im.HeapSize = heapOff

	// Compile functions into one assembly unit through the registered
	// backend.
	backend, ok := backends[platform]
	if !ok {
		return nil, fmt.Errorf("cc: no compiler backend registered for %v", platform)
	}
	if err := backend(p, im); err != nil {
		return nil, err
	}
	sort.Slice(im.Funcs, func(i, j int) bool { return im.Funcs[i].Start < im.Funcs[j].Start })
	return im, nil
}

// Backend lowers a validated IR program into im's code section (appending to
// im.Code, registering Syms and Funcs).
type Backend func(p *kir.Program, im *Image) error

var backends = map[isa.Platform]Backend{}

// RegisterBackend registers a platform's compiler backend. The built-in
// backends register themselves in this package's init; extension platforms
// (which live above cc in the import graph) call this from their setup code.
func RegisterBackend(platform isa.Platform, b Backend) {
	if b == nil {
		panic("cc: RegisterBackend with nil Backend")
	}
	if _, dup := backends[platform]; dup {
		panic(fmt.Sprintf("cc: backend already registered for %v", platform))
	}
	backends[platform] = b
}

func init() {
	RegisterBackend(isa.CISC, compileCISC)
	RegisterBackend(isa.RISC, compileRISC)
}
