package cc

import (
	"encoding/binary"
	"fmt"
	"testing"

	"kfi/internal/cisc"
	"kfi/internal/isa"
	"kfi/internal/kir"
	"kfi/internal/mem"
	"kfi/internal/risc"
)

// Test address-space layout.
var testBases = Bases{Code: 0x10000, Data: 0x40000, BSS: 0x60000}

const (
	testStackBase = 0x80000
	testStackSize = 0x8000
	testRetSentry = 0xDEAD0000 // unmapped, 4-aligned: reaching it ends the run
	testMemSize   = 1 << 20
	testStepLimit = 5_000_000
)

// guest wraps a compiled image with enough machinery to call functions.
type guest struct {
	im   *Image
	mc   *mem.Memory
	cCPU *cisc.CPU
	rCPU *risc.CPU
}

func loadGuest(t *testing.T, im *Image) *guest {
	t.Helper()
	order := binary.ByteOrder(binary.LittleEndian)
	if im.Platform == isa.RISC {
		order = binary.BigEndian
	}
	m := mem.New(testMemSize, order)
	m.Map(im.CodeBase, uint32(len(im.Code)), mem.Present)
	m.Map(im.DataBase, uint32(len(im.Data))+mem.PageSize, mem.Present|mem.Writable)
	m.Map(im.BSSBase, im.BSSSize+mem.PageSize, mem.Present|mem.Writable)
	m.Map(testStackBase, testStackSize, mem.Present|mem.Writable)
	copy(m.RawBytes(im.CodeBase, uint32(len(im.Code))), im.Code)
	copy(m.RawBytes(im.DataBase, uint32(len(im.Data))), im.Data)
	g := &guest{im: im, mc: m}
	if im.Platform == isa.CISC {
		g.cCPU = cisc.NewCPU(m)
	} else {
		g.rCPU = risc.NewCPU(m)
	}
	return g
}

// call executes fn(args...) and returns the result register.
func (g *guest) call(t *testing.T, fn string, args ...uint32) (uint32, error) {
	t.Helper()
	entry := g.im.Sym(fn)
	if g.cCPU != nil {
		c := g.cCPU
		c.Regs[cisc.ESP] = testStackBase + testStackSize
		// Push args right to left, then the sentinel return address.
		for i := len(args) - 1; i >= 0; i-- {
			c.Regs[cisc.ESP] -= 4
			c.Mem.RawWrite(c.Regs[cisc.ESP], 4, args[i])
		}
		c.Regs[cisc.ESP] -= 4
		c.Mem.RawWrite(c.Regs[cisc.ESP], 4, testRetSentry)
		c.EIP = entry
		for i := 0; i < testStepLimit; i++ {
			if c.EIP == testRetSentry {
				return c.Regs[cisc.EAX], nil
			}
			if ev := c.Step(); ev.Kind != isa.EvNone {
				return 0, fmt.Errorf("cisc event %+v at eip=0x%x", ev, c.EIP)
			}
		}
		return 0, fmt.Errorf("cisc step limit")
	}
	c := g.rCPU
	c.R[risc.SP] = testStackBase + testStackSize - 16
	for i, v := range args {
		c.R[3+i] = v
	}
	c.LR = testRetSentry
	c.PC = entry
	for i := 0; i < testStepLimit; i++ {
		if c.PC == testRetSentry&^3 {
			return c.R[3], nil
		}
		if ev := c.Step(); ev.Kind != isa.EvNone {
			return 0, fmt.Errorf("risc event %+v at pc=0x%x", ev, c.PC)
		}
	}
	return 0, fmt.Errorf("risc step limit")
}

// compileBoth compiles the program for both platforms.
func compileBoth(t *testing.T, p *kir.Program) map[isa.Platform]*Image {
	t.Helper()
	out := make(map[isa.Platform]*Image, 2)
	for _, plat := range []isa.Platform{isa.CISC, isa.RISC} {
		im, err := Compile(p, plat, testBases)
		if err != nil {
			t.Fatalf("Compile(%v): %v", plat, err)
		}
		out[plat] = im
	}
	return out
}

// checkAgainstInterp runs fn on the interpreter and both compiled guests for
// each argument tuple and requires identical results.
func checkAgainstInterp(t *testing.T, p *kir.Program, fn string, argSets [][]uint32) {
	t.Helper()
	images := compileBoth(t, p)
	for _, plat := range []isa.Platform{isa.CISC, isa.RISC} {
		ip, err := kir.NewInterp(p, kir.NewLayout(plat))
		if err != nil {
			t.Fatal(err)
		}
		g := loadGuest(t, images[plat])
		for _, args := range argSets {
			want, err := ip.Call(fn, args...)
			if err != nil {
				t.Fatalf("interp %s%v: %v", fn, args, err)
			}
			got, err := g.call(t, fn, args...)
			if err != nil {
				t.Fatalf("[%v] %s%v: %v", plat, fn, args, err)
			}
			if got != want {
				t.Errorf("[%v] %s%v = %d, want %d (interp)", plat, fn, args, got, want)
			}
			// Reload for the next argument set so global state matches a
			// fresh interpreter... globals persist across calls in both
			// worlds, so only reset when the test says so.
		}
	}
}
