package cc

import (
	"testing"

	"kfi/internal/kir"
)

// buildLoopFn returns a function with a loop-carried variable and a
// temporary that dies inside the loop.
func buildLoopFn() *kir.Func {
	pb := kir.NewProgram()
	fb := pb.Func("f", 1, true)
	n := fb.Param(0)
	fb.Block("entry")
	acc := fb.Var()
	i := fb.Var()
	fb.ConstTo(acc, 0)
	fb.ConstTo(i, 0)
	fb.Jmp("head")
	fb.Block("head")
	c := fb.Cmp(kir.Lt, i, n)
	fb.Br(c, "body", "done")
	fb.Block("body")
	t := fb.MulI(i, 3) // dies within the iteration
	fb.BinTo(acc, kir.Add, acc, t)
	fb.BinImmTo(i, kir.Add, i, 1)
	fb.Jmp("head")
	fb.Block("done")
	fb.Ret(acc)
	return pb.Program().Func("f")
}

func TestIntervalsCoverLoops(t *testing.T) {
	fn := buildLoopFn()
	lin := linearize(fn)
	ivs := computeIntervals(lin)

	byReg := make(map[kir.Reg]*interval)
	for _, iv := range ivs {
		byReg[iv.reg] = iv
	}
	// Find the backward jump (end of the body block).
	backIdx := -1
	for idx, in := range lin.instrs {
		if in.Kind == kir.KJmp && lin.blockStart[in.Then] <= idx {
			backIdx = idx
		}
	}
	if backIdx < 0 {
		t.Fatal("no backward edge found")
	}
	// Loop-carried variables (acc=v2, i=v3) must span the whole loop.
	for _, r := range []kir.Reg{2, 3} {
		iv := byReg[r]
		if iv == nil {
			t.Fatalf("no interval for v%d", r)
		}
		if iv.end < backIdx {
			t.Errorf("v%d interval [%d,%d] does not reach the backward edge %d",
				r, iv.start, iv.end, backIdx)
		}
	}
}

func TestAllocateDisjointRegisters(t *testing.T) {
	fn := buildLoopFn()
	lin := linearize(fn)
	a := allocate(fn, lin, []int{10}, []int{20, 21, 22})

	// Two intervals alive at the same linear index must not share a
	// physical register.
	ivs := computeIntervals(lin)
	for i := 0; i < len(ivs); i++ {
		for j := i + 1; j < len(ivs); j++ {
			x, y := ivs[i], ivs[j]
			if x.start > y.end || y.start > x.end {
				continue // disjoint
			}
			rx, ry := a.Reg[x.reg], a.Reg[y.reg]
			if rx >= 0 && rx == ry {
				t.Errorf("v%d and v%d overlap but share register %d", x.reg, y.reg, rx)
			}
		}
	}
}

func TestAllocateSpillsUnderPressure(t *testing.T) {
	pb := kir.NewProgram()
	fb := pb.Func("f", 0, true)
	fb.Block("entry")
	var vals []kir.Reg
	for i := 0; i < 6; i++ {
		vals = append(vals, fb.Const(int32(i)))
	}
	acc := vals[0]
	for _, v := range vals[1:] {
		acc = fb.Add(acc, v)
	}
	fb.Ret(acc)
	fn := pb.Program().Func("f")
	lin := linearize(fn)
	a := allocate(fn, lin, nil, []int{1, 2}) // only two registers
	if a.NSlots == 0 {
		t.Error("six live values in two registers require spills")
	}
}

func TestCallCrossingAvoidsCallerSaved(t *testing.T) {
	pb := kir.NewProgram()
	g := pb.Func("g", 0, false)
	g.Block("entry")
	g.Ret(0)
	fb := pb.Func("f", 1, true)
	fb.Block("entry")
	live := fb.AddI(fb.Param(0), 5) // lives across the call
	fb.CallVoid("g")
	fb.Ret(fb.AddI(live, 1))
	fn := pb.Program().Func("f")
	lin := linearize(fn)
	a := allocate(fn, lin, []int{10}, []int{20})
	// "live" (v2) crosses the call: it must not sit in caller-saved r10.
	if a.Reg[2] == 10 {
		t.Error("call-crossing value allocated to a caller-saved register")
	}
}

func TestFusibleCmps(t *testing.T) {
	pb := kir.NewProgram()
	fb := pb.Func("f", 2, true)
	fb.Block("entry")
	c1 := fb.Cmp(kir.Lt, fb.Param(0), fb.Param(1)) // fusible: only the br uses it
	fb.Br(c1, "a", "b")
	fb.Block("a")
	c2 := fb.Cmp(kir.Eq, fb.Param(0), fb.Param(1)) // NOT fusible: also returned
	fb.Br(c2, "b", "c")
	fb.Block("b")
	fb.Ret(c2)
	fb.Block("c")
	fb.RetI(0)
	fn := pb.Program().Func("f")
	fused := fusibleCmps(fn)

	var cmp1, cmp2 *kir.Instr
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Kind == kir.KCmp {
				if cmp1 == nil {
					cmp1 = in
				} else {
					cmp2 = in
				}
			}
		}
	}
	if !fused[cmp1] {
		t.Error("single-use cmp immediately before br not fused")
	}
	if fused[cmp2] {
		t.Error("multi-use cmp fused (its value is also returned)")
	}
}

func TestUsesAndDefCoverage(t *testing.T) {
	// Every instruction kind must have sensible uses/def behavior; walk the
	// kernel program as a broad smoke check.
	pb := kir.NewProgram()
	fb := pb.Func("f", 2, true)
	fb.Local("buf", kir.W8, 8)
	fb.Block("entry")
	a := fb.Param(0)
	b := fb.Param(1)
	s := fb.Add(a, b)
	buf := fb.LocalAddr("buf", 0)
	fb.Store(kir.W8, buf, 0, s)
	v := fb.Load(kir.W8, buf, 0)
	no := fb.Const(1)
	sc := fb.Syscall(no, v)
	fb.Ret(sc)
	fn := pb.Program().Func("f")
	for _, blk := range fn.Blocks {
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			for _, u := range uses(in) {
				if u <= 0 || int(u) >= fn.NumRegs()+1 {
					t.Errorf("%v: bad use v%d", in, u)
				}
			}
			if d := def(in); d < 0 {
				t.Errorf("%v: bad def v%d", in, d)
			}
		}
	}
}
