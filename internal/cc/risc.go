package cc

import (
	"fmt"

	"kfi/internal/kir"
	"kfi/internal/risc"
)

// RISC backend register assignment: r14-r29 are allocatable (all
// callee-saved, so values survive calls in registers — the G4 behavior that
// lengthens code-error latencies); r3-r10 carry arguments and the return
// value; r11/r12 are scratch; r0 is the link-register shuttle; r31 is the
// frame base ("temporary stack pointer", as in the paper's kjournald
// listing); r30 is an address-materialization temporary.
var (
	riscCallerSaved []int // none: everything allocatable survives calls
	riscCalleeSaved = []int{14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29}
)

const (
	rScrA  = 11
	rScrB  = 12
	rFrame = 31 // frame base register
)

type riscFunc struct {
	p        *kir.Program
	im       *Image
	a        *risc.Asm
	fn       *kir.Func
	lin      *linear
	alloc    *Alloc
	localOff []int32
	spillOff int32
	frame    int32
	r30Slot  int32
	r31Slot  int32
	hasCalls bool
	labelSeq *int
	fused    map[*kir.Instr]bool
	// pendingPred holds a fused compare's predicate awaiting its branch.
	pendingPred kir.Pred
	pendingReg  kir.Reg
	hasPending  bool
}

func compileRISC(p *kir.Program, im *Image) error {
	a := risc.NewAsm()
	seq := 0
	starts := make(map[string]uint32, len(p.Funcs))
	ends := make(map[string]uint32, len(p.Funcs))
	for _, fn := range p.Funcs {
		starts[fn.Name] = a.Len()
		rf := &riscFunc{p: p, im: im, a: a, fn: fn, labelSeq: &seq}
		if err := rf.compile(); err != nil {
			return fmt.Errorf("cc: %s: %w", fn.Name, err)
		}
		ends[fn.Name] = a.Len()
	}
	syms := make(map[string]uint32, len(im.Syms))
	for k, v := range im.Syms {
		syms[k] = v
	}
	code, err := a.Link(im.CodeBase, syms)
	if err != nil {
		return err
	}
	im.Code = code
	for _, fn := range p.Funcs {
		im.Syms[fn.Name] = im.CodeBase + starts[fn.Name]
		im.Funcs = append(im.Funcs, FuncRange{
			Name:  fn.Name,
			Start: im.CodeBase + starts[fn.Name],
			End:   im.CodeBase + ends[fn.Name],
		})
	}
	return nil
}

func (rf *riscFunc) compile() error {
	rf.lin = linearize(rf.fn)
	rf.alloc = allocate(rf.fn, rf.lin, riscCallerSaved, riscCalleeSaved)
	rf.fused = fusibleCmps(rf.fn)
	for _, in := range rf.lin.instrs {
		if isCall(in) {
			rf.hasCalls = true
			break
		}
	}

	// Frame layout (from r1 upward): [0] back chain, [4..] spill slots,
	// locals (word-granular), callee saves, [frame-4] LR save.
	layout := rf.im.Layout
	off := int32(4)
	off += 4 * int32(rf.alloc.NSlots)
	rf.spillOff = 4
	rf.localOff = make([]int32, len(rf.fn.Locals))
	for i, lo := range rf.fn.Locals {
		rf.localOff[i] = off
		off += int32(layout.LocalSlotSize(lo))
	}
	saveBase := off
	off += 4 * int32(len(rf.alloc.UsedCalleeSaved))
	r30Slot := off
	r31Slot := off + 4
	off += 8 // r30/r31 compiler-temporary saves (they act as callee-saved)
	if rf.hasCalls {
		off += 4 // LR save slot
	}
	rf.frame = (off + 15) &^ 15

	a := rf.a
	a.Label(rf.fn.Name)
	// Prologue.
	if rf.hasCalls {
		a.Mflr(0)
	}
	a.Stwu(risc.SP, risc.SP, -rf.frame)
	if rf.hasCalls {
		a.Stw(0, risc.SP, rf.frame-4)
	}
	for i, r := range rf.alloc.UsedCalleeSaved {
		a.Stw(uint8(r), risc.SP, saveBase+4*int32(i))
	}
	a.Stw(30, risc.SP, r30Slot)
	a.Stw(rFrame, risc.SP, r31Slot)
	rf.r30Slot, rf.r31Slot = r30Slot, r31Slot
	// r31 doubles as the frame base ("temporary stack pointer").
	a.Mr(rFrame, risc.SP)
	// Move parameters from r3..r10 into their homes.
	for i := 0; i < rf.fn.NParams; i++ {
		pr := kir.Reg(i + 1)
		src := uint8(3 + i)
		if rf.alloc.Spilled(pr) {
			a.Stw(src, rFrame, rf.slotOff(pr))
		} else if rf.home(pr) != src {
			a.Mr(rf.home(pr), src)
		}
	}

	for bi, b := range rf.fn.Blocks {
		a.Label(rf.blockLabel(b.Name))
		for ii := range b.Instrs {
			if err := rf.instr(&b.Instrs[ii], bi); err != nil {
				return err
			}
		}
	}
	return nil
}

func (rf *riscFunc) blockLabel(name string) string { return rf.fn.Name + "$" + name }

func (rf *riscFunc) newLabel() string {
	*rf.labelSeq++
	return fmt.Sprintf("%s$L%d", rf.fn.Name, *rf.labelSeq)
}

func (rf *riscFunc) home(r kir.Reg) uint8 { return uint8(rf.alloc.Reg[r]) }

func (rf *riscFunc) slotOff(r kir.Reg) int32 { return rf.spillOff + 4*int32(rf.alloc.Slot[r]) }

func (rf *riscFunc) use(r kir.Reg, scratch uint8) uint8 {
	if !rf.alloc.Spilled(r) {
		return rf.home(r)
	}
	rf.a.Lwz(scratch, rFrame, rf.slotOff(r))
	return scratch
}

func (rf *riscFunc) defReg(r kir.Reg, scratch uint8) uint8 {
	if !rf.alloc.Spilled(r) {
		return rf.home(r)
	}
	return scratch
}

func (rf *riscFunc) storeDef(r kir.Reg, reg uint8) {
	if rf.alloc.Spilled(r) {
		rf.a.Stw(reg, rFrame, rf.slotOff(r))
	}
}

func (rf *riscFunc) epilogue() {
	a := rf.a
	if rf.hasCalls {
		a.Lwz(0, risc.SP, rf.frame-4)
		a.Mtlr(0)
	}
	saveBase := rf.r30Slot - 4*int32(len(rf.alloc.UsedCalleeSaved))
	for i, r := range rf.alloc.UsedCalleeSaved {
		a.Lwz(uint8(r), risc.SP, saveBase+4*int32(i))
	}
	a.Lwz(30, risc.SP, rf.r30Slot)
	a.Lwz(rFrame, risc.SP, rf.r31Slot)
	// Restore the stack pointer through the back chain stored by stwu — the
	// frame-pointer-on-stack discipline whose corruption produces the G4's
	// Stack Overflow crashes (paper §5.1).
	a.Lwz(risc.SP, risc.SP, 0)
	a.Blr()
}

func (rf *riscFunc) instr(in *kir.Instr, blockIdx int) error {
	a := rf.a
	switch in.Kind {
	case kir.KConst:
		d := rf.defReg(in.Dst, rScrA)
		a.Li32(d, in.Imm)
		rf.storeDef(in.Dst, d)
	case kir.KMov:
		s := rf.use(in.A, rScrA)
		d := rf.defReg(in.Dst, rScrA)
		if d != s {
			a.Mr(d, s)
		}
		rf.storeDef(in.Dst, d)
	case kir.KBin:
		ra := rf.use(in.A, rScrA)
		rb := rf.use(in.B, rScrB)
		d := rf.defReg(in.Dst, rScrA)
		rf.binOp(in.Bin, d, ra, rb)
		rf.storeDef(in.Dst, d)
	case kir.KBinImm:
		ra := rf.use(in.A, rScrA)
		d := rf.defReg(in.Dst, rScrA)
		rf.binImm(in.Bin, d, ra, in.Imm)
		rf.storeDef(in.Dst, d)
	case kir.KCmp, kir.KCmpImm:
		ra := rf.use(in.A, rScrA)
		unsigned := in.Pred >= kir.ULt
		if in.Kind == kir.KCmp {
			rb := rf.use(in.B, rScrB)
			if unsigned {
				a.Cmplw(ra, rb)
			} else {
				a.Cmpw(ra, rb)
			}
		} else if unsigned {
			if uint32(in.Imm) <= 0xFFFF {
				a.Cmplwi(ra, uint16(uint32(in.Imm)))
			} else {
				a.Li32(rScrB, in.Imm)
				a.Cmplw(ra, rScrB)
			}
		} else {
			if in.Imm >= -0x8000 && in.Imm <= 0x7FFF {
				a.Cmpwi(ra, in.Imm)
			} else {
				a.Li32(rScrB, in.Imm)
				a.Cmpw(ra, rScrB)
			}
		}
		if rf.fused[in] {
			// The following branch consumes CR0 directly.
			rf.pendingPred = in.Pred
			rf.pendingReg = in.Dst
			rf.hasPending = true
			return nil
		}
		// Materialize the predicate as 0/1 via a branch diamond.
		d := rf.defReg(in.Dst, rScrA)
		yes := rf.newLabel()
		done := rf.newLabel()
		rf.bcTrue(in.Pred, yes)
		a.Li(d, 0)
		a.B(done)
		a.Label(yes)
		a.Li(d, 1)
		a.Label(done)
		rf.storeDef(in.Dst, d)
	case kir.KLoad:
		rf.load(in.Dst, in.Width, in.Signed, rf.use(in.A, rScrA), in.Imm)
	case kir.KStore:
		base := rf.use(in.A, rScrA)
		val := rf.use(in.B, rScrB)
		rf.store(in.Width, base, in.Imm, val)
	case kir.KLoadField:
		s := rf.p.Struct(in.Sym)
		f := s.Fields[in.Field]
		rf.load(in.Dst, f.Width, in.Signed, rf.use(in.A, rScrA), int32(rf.im.Layout.FieldOffset(s, in.Field)))
	case kir.KStoreField:
		s := rf.p.Struct(in.Sym)
		f := s.Fields[in.Field]
		base := rf.use(in.A, rScrA)
		val := rf.use(in.B, rScrB)
		rf.store(f.Width, base, int32(rf.im.Layout.FieldOffset(s, in.Field)), val)
	case kir.KFieldAddr:
		s := rf.p.Struct(in.Sym)
		base := rf.use(in.A, rScrA)
		d := rf.defReg(in.Dst, rScrA)
		a.Addi(d, base, int32(rf.im.Layout.FieldOffset(s, in.Field)))
		rf.storeDef(in.Dst, d)
	case kir.KIndex:
		s := rf.p.Struct(in.Sym)
		size := int32(rf.im.Layout.StructSize(s))
		base := rf.use(in.A, rScrA)
		idx := rf.use(in.B, rScrB)
		d := rf.defReg(in.Dst, rScrA)
		switch {
		case size&(size-1) == 0:
			sh := uint8(0)
			for 1<<sh != size {
				sh++
			}
			if sh == 0 {
				a.Add(d, base, idx)
			} else {
				a.Slwi(30, idx, sh)
				a.Add(d, base, 30)
			}
		default:
			a.Mulli(30, idx, size)
			a.Add(d, base, 30)
		}
		rf.storeDef(in.Dst, d)
	case kir.KGlobalAddr:
		d := rf.defReg(in.Dst, rScrA)
		a.LiSym(d, in.Sym, in.Imm)
		rf.storeDef(in.Dst, d)
	case kir.KFuncAddr:
		d := rf.defReg(in.Dst, rScrA)
		a.LiSym(d, in.Sym, 0)
		rf.storeDef(in.Dst, d)
	case kir.KLocalAddr:
		d := rf.defReg(in.Dst, rScrA)
		a.Addi(d, rFrame, rf.localOff[rf.fn.LocalIndex(in.Sym)]+in.Imm)
		rf.storeDef(in.Dst, d)
	case kir.KCall, kir.KCallPtr:
		if in.Kind == kir.KCallPtr {
			a.Mtctr(rf.use(in.A, rScrA))
		}
		for i, arg := range in.Args {
			src := rf.use(arg, rScrA)
			if src != uint8(3+i) {
				a.Mr(uint8(3+i), src)
			}
		}
		if in.Kind == kir.KCall {
			a.Bl(in.Sym)
		} else {
			a.Bctrl()
		}
		if in.Dst != 0 {
			if rf.alloc.Spilled(in.Dst) {
				a.Stw(3, rFrame, rf.slotOff(in.Dst))
			} else if rf.home(in.Dst) != 3 {
				a.Mr(rf.home(in.Dst), 3)
			}
		}
	case kir.KSyscall:
		// sc convention: r0=number, r3-r5=arguments, result in r3.
		trapRegs := []uint8{0, 3, 4, 5}
		for i, arg := range in.Args {
			src := rf.use(arg, rScrA)
			if src != trapRegs[i] {
				a.Mr(trapRegs[i], src)
			}
		}
		a.Sc()
		if in.Dst != 0 {
			if rf.alloc.Spilled(in.Dst) {
				a.Stw(3, rFrame, rf.slotOff(in.Dst))
			} else if rf.home(in.Dst) != 3 {
				a.Mr(rf.home(in.Dst), 3)
			}
		}
	case kir.KRet:
		if in.A != 0 {
			s := rf.use(in.A, rScrA)
			if s != 3 {
				a.Mr(3, s)
			}
		}
		rf.epilogue()
	case kir.KJmp:
		if !rf.fallsThrough(in.Then, blockIdx) {
			a.B(rf.blockLabel(in.Then))
		}
	case kir.KBr:
		if rf.hasPending && in.A == rf.pendingReg {
			rf.hasPending = false
			rf.bcTrue(rf.pendingPred, rf.blockLabel(in.Then))
		} else {
			c := rf.use(in.A, rScrA)
			a.Cmpwi(c, 0)
			a.Bne(rf.blockLabel(in.Then))
		}
		if !rf.fallsThrough(in.Else, blockIdx) {
			a.B(rf.blockLabel(in.Else))
		}
	case kir.KIrqOff:
		a.Mfmsr(rScrA)
		// Clear MSR[EE] (0x8000): rlwinm rA,rS,0,17,15 keeps all bits except
		// bit 16 (PowerPC numbering).
		a.Rlwinm(rScrA, rScrA, 0, 17, 15)
		a.Mtmsr(rScrA)
	case kir.KIrqOn:
		a.Mfmsr(rScrA)
		a.Ori(rScrA, rScrA, 0x8000)
		a.Mtmsr(rScrA)
	case kir.KHalt:
		a.Halt()
	case kir.KBug:
		a.IllegalWord()
	case kir.KCtxSw:
		prev := rf.use(in.A, rScrA)
		next := rf.use(in.B, rScrB)
		a.CtxSw(prev, next)
	default:
		return fmt.Errorf("unsupported instruction kind %d", in.Kind)
	}
	return nil
}

func (rf *riscFunc) fallsThrough(target string, blockIdx int) bool {
	return blockIdx+1 < len(rf.fn.Blocks) && rf.fn.Blocks[blockIdx+1].Name == target
}

// bcTrue branches to label when the just-emitted comparison satisfies pred.
func (rf *riscFunc) bcTrue(p kir.Pred, label string) {
	a := rf.a
	switch p {
	case kir.Eq:
		a.Beq(label)
	case kir.Ne:
		a.Bne(label)
	case kir.Lt, kir.ULt:
		a.Blt(label)
	case kir.Le, kir.ULe:
		a.Ble(label)
	case kir.Gt, kir.UGt:
		a.Bgt(label)
	case kir.Ge, kir.UGe:
		a.Bge(label)
	}
}

func (rf *riscFunc) binOp(op kir.BinOp, d, ra, rb uint8) {
	a := rf.a
	switch op {
	case kir.Add:
		a.Add(d, ra, rb)
	case kir.Sub:
		a.Subf(d, rb, ra) // d = ra - rb
	case kir.Mul:
		a.Mullw(d, ra, rb)
	case kir.Div:
		a.Divw(d, ra, rb)
	case kir.Rem:
		// PowerPC has no remainder: rem = a - (a/b)*b.
		a.Divw(30, ra, rb)
		a.Mullw(30, 30, rb)
		a.Subf(d, 30, ra)
	case kir.And:
		a.And(d, ra, rb)
	case kir.Or:
		a.Or(d, ra, rb)
	case kir.Xor:
		a.Xor(d, ra, rb)
	case kir.Shl:
		a.Slw(d, ra, rb)
	case kir.Shr:
		a.Srw(d, ra, rb)
	case kir.Sar:
		a.Sraw(d, ra, rb)
	}
}

func (rf *riscFunc) binImm(op kir.BinOp, d, ra uint8, imm int32) {
	a := rf.a
	fits := imm >= -0x8000 && imm <= 0x7FFF
	switch {
	case op == kir.Add && fits:
		a.Addi(d, ra, imm)
	case op == kir.Sub && -imm >= -0x8000 && -imm <= 0x7FFF:
		a.Addi(d, ra, -imm)
	case op == kir.Mul && fits:
		a.Mulli(d, ra, imm)
	case op == kir.And && imm >= 0 && imm <= 0xFFFF:
		a.AndiRc(d, ra, uint16(imm))
	case op == kir.Or && imm >= 0 && imm <= 0xFFFF:
		a.Ori(d, ra, uint16(imm))
	case op == kir.Xor && imm >= 0 && imm <= 0xFFFF:
		a.Xori(d, ra, uint16(imm))
	case op == kir.Shl:
		a.Slwi(d, ra, uint8(imm&31))
	case op == kir.Shr:
		if imm&31 == 0 {
			if d != ra {
				a.Mr(d, ra)
			}
		} else {
			a.Srwi(d, ra, uint8(imm&31))
		}
	case op == kir.Sar:
		a.Srawi(d, ra, uint8(imm&31))
	default:
		a.Li32(30, imm)
		rf.binOp(op, d, ra, 30)
	}
}

func (rf *riscFunc) load(dst kir.Reg, w kir.Width, signed bool, base uint8, off int32) {
	a := rf.a
	d := rf.defReg(dst, rScrA)
	switch {
	case w == kir.W32:
		a.Lwz(d, base, off)
	case w == kir.W16 && signed:
		a.Lha(d, base, off)
	case w == kir.W16:
		a.Lhz(d, base, off)
	case signed:
		a.Lbz(d, base, off)
		a.Extsb(d, d)
	default:
		a.Lbz(d, base, off)
	}
	rf.storeDef(dst, d)
}

func (rf *riscFunc) store(w kir.Width, base uint8, off int32, val uint8) {
	a := rf.a
	switch w {
	case kir.W32:
		a.Stw(val, base, off)
	case kir.W16:
		a.Sth(val, base, off)
	default:
		a.Stb(val, base, off)
	}
}
