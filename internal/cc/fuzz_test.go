package cc

// Randomized differential testing with CONTROL FLOW: generated programs with
// loops, branches, memory traffic and calls must agree across the reference
// interpreter and both compiled backends. This is the strongest compiler
// correctness check in the repository.

import (
	"math/rand"
	"testing"

	"kfi/internal/isa"
	"kfi/internal/kir"
)

// genFunc builds a random function: an initialization block, a bounded loop
// whose body applies random ALU/memory operations to a working set, and a
// random conditional inside the loop.
func genFunc(pb *kir.ProgramBuilder, rng *rand.Rand, name string) {
	fb := pb.Func(name, 2, true)
	fb.Local("scratch", kir.W8, 64)
	a, b := fb.Param(0), fb.Param(1)

	fb.Block("entry")
	buf := fb.LocalAddr("scratch", 0)
	nVars := 2 + rng.Intn(4)
	vars := make([]kir.Reg, nVars)
	for i := range vars {
		vars[i] = fb.Var()
		fb.ConstTo(vars[i], rng.Int31n(1000)-500)
	}
	acc := fb.Var()
	fb.BinTo(acc, kir.Xor, a, b)
	i := fb.Var()
	fb.ConstTo(i, 0)
	limit := 3 + rng.Int31n(20)
	fb.Jmp("head")

	fb.Block("head")
	c := fb.CmpI(kir.Lt, i, limit)
	fb.Br(c, "body", "done")

	fb.Block("body")
	ops := []kir.BinOp{kir.Add, kir.Sub, kir.Mul, kir.And, kir.Or, kir.Xor}
	nOps := 1 + rng.Intn(6)
	for k := 0; k < nOps; k++ {
		switch rng.Intn(5) {
		case 0: // var op var
			d := vars[rng.Intn(nVars)]
			fb.BinTo(d, ops[rng.Intn(len(ops))], vars[rng.Intn(nVars)], acc)
		case 1: // acc op imm
			fb.BinImmTo(acc, ops[rng.Intn(len(ops))], acc, rng.Int31n(99)+1)
		case 2: // shift by masked count
			sh := []kir.BinOp{kir.Shl, kir.Shr, kir.Sar}[rng.Intn(3)]
			fb.BinImmTo(acc, sh, acc, rng.Int31n(31))
		case 3: // store/load through the scratch buffer
			off := fb.AndI(acc, 63)
			addr := fb.Add(buf, off)
			fb.Store(kir.W8, addr, 0, vars[rng.Intn(nVars)])
			v := fb.Load(kir.W8, addr, 0)
			fb.BinTo(acc, kir.Add, acc, v)
		case 4: // mix a var into acc
			fb.BinTo(acc, kir.Add, acc, vars[rng.Intn(nVars)])
		}
	}
	// Random conditional diamond inside the loop.
	cond := fb.CmpI([]kir.Pred{kir.Lt, kir.Gt, kir.Eq, kir.ULt}[rng.Intn(4)], acc, rng.Int31n(1000))
	fb.Br(cond, "then", "else")
	fb.Block("then")
	fb.BinImmTo(acc, kir.Add, acc, 13)
	fb.Jmp("latch")
	fb.Block("else")
	fb.BinImmTo(acc, kir.Xor, acc, 0x55)
	fb.Jmp("latch")
	fb.Block("latch")
	fb.BinImmTo(i, kir.Add, i, 1)
	fb.Jmp("head")

	fb.Block("done")
	// Fold the working set so every variable is observable.
	for _, v := range vars {
		fb.BinTo(acc, kir.Add, acc, v)
	}
	fb.Ret(acc)
}

func TestDifferentialRandomControlFlow(t *testing.T) {
	nProgs := 40
	if testing.Short() {
		nProgs = 10
	}
	rng := rand.New(rand.NewSource(2026))
	for pi := 0; pi < nProgs; pi++ {
		pb := kir.NewProgram()
		genFunc(pb, rng, "f")
		// A caller adds call/return traffic around the generated body.
		wrap := pb.Func("wrap", 2, true)
		wrap.Block("entry")
		r1 := wrap.Call("f", wrap.Param(0), wrap.Param(1))
		r2 := wrap.Call("f", wrap.Param(1), r1)
		wrap.Ret(wrap.Add(r1, r2))

		prog := pb.Program()
		args := [][]uint32{
			{0, 0},
			{rng.Uint32(), rng.Uint32()},
			{0xFFFFFFFF, 1},
		}
		checkAgainstInterp(t, prog, "wrap", args)
		if t.Failed() {
			t.Fatalf("divergence in generated program %d (seed 2026)", pi)
		}
	}
}

// TestDifferentialHardenedFaultFree proves hardened compilation is
// observationally transparent on fault-free inputs: fuzzed programs compiled
// with every hardening combination run to completion on both platforms with
// results identical to the unhardened build, and the synthesized detector is
// never reached (reaching it would raise a syscall event and fail the run).
func TestDifferentialHardenedFaultFree(t *testing.T) {
	nProgs := 15
	if testing.Short() {
		nProgs = 5
	}
	combos := []kir.HardenOpts{
		{Dup: true},
		{CFSig: true},
		{Dup: true, CFSig: true},
	}
	rng := rand.New(rand.NewSource(2077))
	for pi := 0; pi < nProgs; pi++ {
		pb := kir.NewProgram()
		genFunc(pb, rng, "f")
		wrap := pb.Func("wrap", 2, true)
		wrap.Block("entry")
		r1 := wrap.Call("f", wrap.Param(0), wrap.Param(1))
		r2 := wrap.Call("f", wrap.Param(1), r1)
		wrap.Ret(wrap.Add(r1, r2))
		prog := pb.Program()

		argSets := [][]uint32{
			{0, 0},
			{rng.Uint32(), rng.Uint32()},
			{0xFFFFFFFF, 1},
		}
		for _, plat := range []isa.Platform{isa.CISC, isa.RISC} {
			plainIm, err := Compile(prog, plat, testBases)
			if err != nil {
				t.Fatalf("Compile(%v): %v", plat, err)
			}
			want := make([]uint32, len(argSets))
			plain := loadGuest(t, plainIm)
			for ai, args := range argSets {
				v, err := plain.call(t, "wrap", args...)
				if err != nil {
					t.Fatalf("[%v] plain wrap%v: %v", plat, args, err)
				}
				want[ai] = v
			}
			for _, opts := range combos {
				hardIm, err := CompileWith(prog, plat, testBases, Options{Harden: opts})
				if err != nil {
					t.Fatalf("CompileWith(%v, %v): %v", plat, opts, err)
				}
				if len(hardIm.Code) <= len(plainIm.Code) {
					t.Errorf("[%v] %v image not larger than plain (%d <= %d)",
						plat, opts, len(hardIm.Code), len(plainIm.Code))
				}
				g := loadGuest(t, hardIm)
				for ai, args := range argSets {
					got, err := g.call(t, "wrap", args...)
					if err != nil {
						t.Fatalf("[%v] %v wrap%v: %v (program %d)", plat, opts, args, err, pi)
					}
					if got != want[ai] {
						t.Errorf("[%v] %v wrap%v = %d, want %d (program %d)",
							plat, opts, args, got, want[ai], pi)
					}
				}
			}
		}
	}
}

// TestDifferentialRecursionDepth drives deeper call stacks than the kernel
// uses, validating frame layout at depth on both backends.
func TestDifferentialRecursionDepth(t *testing.T) {
	pb := kir.NewProgram()
	fb := pb.Func("sumto", 1, true)
	n := fb.Param(0)
	fb.Block("entry")
	c := fb.CmpI(kir.Le, n, 0)
	fb.Br(c, "base", "rec")
	fb.Block("base")
	fb.RetI(0)
	fb.Block("rec")
	sub := fb.Call("sumto", fb.SubI(n, 1))
	fb.Ret(fb.Add(n, sub))

	checkAgainstInterp(t, pb.Program(), "sumto", [][]uint32{{0}, {1}, {15}, {40}})
}

// TestDifferentialMixedWidthGlobals stresses packed-vs-padded layout against
// the interpreter's platform-matched layout.
func TestDifferentialMixedWidthGlobals(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		pb := kir.NewProgram()
		// Random struct of 2-6 mixed-width fields.
		var fields []kir.Field
		widths := []kir.Width{kir.W8, kir.W16, kir.W32}
		nf := 2 + rng.Intn(5)
		for i := 0; i < nf; i++ {
			name := string(rune('a' + i))
			fields = append(fields, kir.Field{Name: name, Width: widths[rng.Intn(3)]})
		}
		s := pb.Struct("rec", fields...)
		pb.GlobalStruct("recs", s, 4)

		fb := pb.Func("churn", 2, true)
		fb.Block("entry")
		base := fb.GlobalAddr("recs", 0)
		acc := fb.Var()
		fb.ConstTo(acc, 0)
		// Write then read every field of every element.
		for e := 0; e < 4; e++ {
			idx := fb.Const(int32(e))
			p := fb.Index(s, base, idx)
			for fi, f := range fields {
				v := fb.BinImm(kir.Add, fb.Param(0), int32(e*10+fi))
				fb.StoreField(s, f.Name, p, v)
			}
			for _, f := range fields {
				v := fb.LoadField(s, f.Name, p)
				fb.BinTo(acc, kir.Mul, acc, fb.Const(31))
				fb.BinTo(acc, kir.Add, acc, v)
			}
		}
		fb.Ret(acc)

		checkAgainstInterp(t, pb.Program(), "churn",
			[][]uint32{{0, 0}, {rng.Uint32() & 0xFF, 0}, {0xFFFFFF00, 0}})
	}
}

// TestDifferentialSpillPressure keeps far more values live than either
// platform has allocatable registers (4 on the CISC backend), forcing the
// allocator through its spill paths; the fold at the end observes every
// value, so a single misplaced spill slot changes the result.
func TestDifferentialSpillPressure(t *testing.T) {
	for _, nLive := range []int{6, 12, 24} {
		pb := kir.NewProgram()
		fb := pb.Func("pressure", 2, true)
		fb.Block("entry")
		vars := make([]kir.Reg, nLive)
		for i := range vars {
			vars[i] = fb.Var()
			// Distinct derivations so copy-propagation cannot collapse them.
			fb.BinImmTo(vars[i], kir.Add, fb.Param(0), int32(i*i+1))
		}
		// A call in the middle forces caller-saved state across it.
		mid := fb.Call("leaf", fb.Param(1))
		acc := fb.Var()
		fb.MovTo(acc, mid)
		for i, v := range vars {
			op := []kir.BinOp{kir.Add, kir.Xor, kir.Sub}[i%3]
			fb.BinTo(acc, op, acc, v)
		}
		fb.Ret(acc)

		leaf := pb.Func("leaf", 1, true)
		leaf.Block("entry")
		leaf.Ret(leaf.BinImm(kir.Mul, leaf.Param(0), 3))

		checkAgainstInterp(t, pb.Program(), "pressure",
			[][]uint32{{0, 0}, {7, 9}, {0xFFFFFFF0, 123}})
	}
}

// TestDifferentialPredicateMaterialization returns comparison results as
// values (no consuming branch), forcing both backends through the unfused
// 0/1 materialization diamond rather than cmp+branch fusion.
func TestDifferentialPredicateMaterialization(t *testing.T) {
	preds := []kir.Pred{kir.Eq, kir.Ne, kir.Lt, kir.Le, kir.Gt, kir.Ge,
		kir.ULt, kir.ULe, kir.UGt, kir.UGe}
	for _, p := range preds {
		pb := kir.NewProgram()
		fb := pb.Func("matcmp", 2, true)
		fb.Block("entry")
		// Sum a register compare, an immediate compare, and a reuse of the
		// first result so the value genuinely flows.
		c1 := fb.Cmp(p, fb.Param(0), fb.Param(1))
		c2 := fb.CmpI(p, fb.Param(0), 100)
		s := fb.Add(c1, c2)
		fb.Ret(fb.Add(s, c1))

		checkAgainstInterp(t, pb.Program(), "matcmp", [][]uint32{
			{0, 0}, {1, 2}, {2, 1}, {100, 100},
			{0xFFFFFFFF, 1}, {1, 0xFFFFFFFF}, {0x80000000, 0x7FFFFFFF},
		})
	}
}
